// Internet (ones'-complement) checksum, including the RFC 1624 incremental update
// used by the in-cluster translation filter when it rewrites an IP address.
#pragma once

#include <cstdint>
#include <span>

namespace dvemig::net {

/// Plain internet checksum over a byte span (RFC 1071).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Fold a 32-bit accumulated sum into a 16-bit ones'-complement checksum.
std::uint16_t fold_checksum(std::uint32_t sum);

/// Accumulate a span into a running 32-bit sum (for pseudo-header + payload sums).
std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data, std::uint32_t sum);

/// RFC 1624 incremental update: given the old checksum and a 32-bit field that changed
/// from `old_value` to `new_value`, return the corrected checksum without re-summing
/// the whole packet. This is exactly what the translation filter does to the TCP
/// checksum after rewriting the IP header.
std::uint16_t checksum_adjust32(std::uint16_t checksum, std::uint32_t old_value,
                                std::uint32_t new_value);

}  // namespace dvemig::net
