// IPv4 addressing for the simulated cluster and internet.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/common/assert.hpp"

namespace dvemig::net {

struct Ipv4Addr {
  std::uint32_t value{0};  // host byte order

  static constexpr Ipv4Addr any() { return Ipv4Addr{0}; }
  static constexpr Ipv4Addr broadcast() { return Ipv4Addr{0xFFFFFFFFu}; }

  static constexpr Ipv4Addr octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                   std::uint8_t d) {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  std::string to_string() const {
    return std::to_string((value >> 24) & 0xFF) + "." + std::to_string((value >> 16) & 0xFF) +
           "." + std::to_string((value >> 8) & 0xFF) + "." + std::to_string(value & 0xFF);
  }

  constexpr bool is_broadcast() const { return value == 0xFFFFFFFFu; }
  constexpr auto operator<=>(const Ipv4Addr&) const = default;
};

using Port = std::uint16_t;

struct Endpoint {
  Ipv4Addr addr{};
  Port port{0};

  std::string to_string() const { return addr.to_string() + ":" + std::to_string(port); }
  constexpr auto operator<=>(const Endpoint&) const = default;
};

}  // namespace dvemig::net

template <>
struct std::hash<dvemig::net::Ipv4Addr> {
  std::size_t operator()(const dvemig::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<dvemig::net::Endpoint> {
  std::size_t operator()(const dvemig::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{e.addr.value} << 16) ^ e.port);
  }
};
