// Single-IP-address cluster router (Section II-A).
//
// Every DVE server node's public interface carries the *same* public IP. The router
// does no NAT and keeps no per-connection state: it simply broadcasts each packet
// arriving from the internet side to ALL cluster nodes. Only the node whose socket
// table (or capture filter) matches the packet consumes it; the rest drop it.
//
// This broadcast property is what makes in-cluster socket migration free of router
// updates, and it is the foundation of the incoming-packet-loss prevention mechanism:
// the migration *destination* already sees client packets before the socket exists
// there.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/link.hpp"

namespace dvemig::net {

class BroadcastRouter {
 public:
  BroadcastRouter(sim::Engine& engine, Ipv4Addr cluster_public_ip, LinkConfig link_config)
      : engine_(&engine), cluster_ip_(cluster_public_ip), link_config_(link_config) {}

  Ipv4Addr cluster_ip() const { return cluster_ip_; }

  /// Attach a cluster node's public interface. All nodes share cluster_ip();
  /// `node_key` only identifies the physical port. Returns the node's tx sink.
  PacketSink attach_node(std::uint32_t node_key, PacketSink sink);

  void detach_node(std::uint32_t node_key);

  /// Attach an internet-side host (a game client) with its own public address.
  /// Returns the client's tx sink.
  PacketSink attach_client(Ipv4Addr client_addr, PacketSink sink);

  void detach_client(Ipv4Addr client_addr);

  std::uint64_t broadcast_copies() const { return broadcast_copies_; }
  std::uint64_t to_clients() const { return to_clients_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct PortState {
    std::unique_ptr<Link> uplink;
    std::unique_ptr<Link> downlink;
    bool alive{true};
  };

  std::shared_ptr<PortState> make_port(PacketSink sink, PacketSink on_ingress);
  void from_client(Packet p);
  void from_node(Packet p);

  sim::Engine* engine_;
  Ipv4Addr cluster_ip_;
  LinkConfig link_config_;
  std::unordered_map<std::uint32_t, std::shared_ptr<PortState>> nodes_;
  std::unordered_map<Ipv4Addr, std::shared_ptr<PortState>> clients_;
  std::uint64_t broadcast_copies_{0};
  std::uint64_t to_clients_{0};
  std::uint64_t dropped_{0};
};

}  // namespace dvemig::net
