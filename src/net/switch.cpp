#include "src/net/switch.hpp"

namespace dvemig::net {

PacketSink Switch::attach(Ipv4Addr addr, PacketSink sink) {
  DVEMIG_EXPECTS(!addr.is_broadcast() && addr != Ipv4Addr::any());
  DVEMIG_EXPECTS(!ports_.contains(addr));

  auto port = std::make_shared<PortState>();
  port->uplink = std::make_unique<Link>(*engine_, link_config_);
  port->downlink = std::make_unique<Link>(*engine_, link_config_);
  port->downlink->set_sink(std::move(sink));
  port->uplink->set_sink([this, addr](Packet p) { forward(addr, std::move(p)); });
  ports_.emplace(addr, port);

  // The returned sink keeps the port alive even if detach() races with an
  // in-flight transmission; the alive flag stops delivery after detach.
  return [port](Packet p) {
    if (port->alive) port->uplink->transmit(std::move(p));
  };
}

void Switch::detach(Ipv4Addr addr) {
  auto it = ports_.find(addr);
  if (it == ports_.end()) return;
  it->second->alive = false;
  it->second->downlink->set_sink(nullptr);
  ports_.erase(it);
}

void Switch::forward(Ipv4Addr from, Packet p) {
  // Frames are steered by the resolved link-layer destination when present (the
  // sender's dst-cache decision), falling back to the IP destination.
  const Ipv4Addr hw_dst = p.link_dst == Ipv4Addr::any() ? p.dst : p.link_dst;
  if (p.dst.is_broadcast()) {
    for (auto& [addr, port] : ports_) {
      if (addr == from || !port->alive) continue;
      forwarded_ += 1;
      port->downlink->transmit(p);  // copy per receiver
    }
    return;
  }
  auto it = ports_.find(hw_dst);
  if (it == ports_.end() || !it->second->alive) {
    dropped_ += 1;
    return;
  }
  forwarded_ += 1;
  it->second->downlink->transmit(std::move(p));
}

}  // namespace dvemig::net
