#include "src/net/switch.hpp"

namespace dvemig::net {

std::size_t Switch::rail_of(const Packet& p, std::size_t rails) {
  if (rails <= 1) return 0;
  // Symmetric 5-tuple hash: src/dst (and sport/dport) enter commutatively so
  // both directions of a connection ride the same rail, preserving FIFO
  // ordering per flow. Broadcast floods always take rail 0.
  if (p.dst.is_broadcast()) return 0;
  const std::uint64_t h = std::uint64_t{p.src.value} + std::uint64_t{p.dst.value} +
                          std::uint64_t{p.sport()} + std::uint64_t{p.dport()} +
                          std::uint64_t{static_cast<std::uint8_t>(p.proto)};
  return static_cast<std::size_t>(h % rails);
}

PacketSink Switch::attach(Ipv4Addr addr, PacketSink sink) {
  DVEMIG_EXPECTS(!addr.is_broadcast() && addr != Ipv4Addr::any());
  DVEMIG_EXPECTS(!ports_.contains(addr));
  DVEMIG_EXPECTS(link_config_.rails >= 1);

  const auto rails = static_cast<std::size_t>(link_config_.rails);
  auto port = std::make_shared<PortState>();
  // The fan-in side shares one delivery sink across rails (the host does not
  // care which physical link a frame arrived on); the fan-out side is chosen
  // per packet by rail_of.
  auto shared_sink = std::make_shared<PacketSink>(std::move(sink));
  for (std::size_t r = 0; r < rails; ++r) {
    auto up = std::make_unique<Link>(*engine_, link_config_);
    auto down = std::make_unique<Link>(*engine_, link_config_);
    down->set_sink([shared_sink](Packet p) {
      if (*shared_sink) (*shared_sink)(std::move(p));
    });
    up->set_sink([this, addr](Packet p) { forward(addr, std::move(p)); });
    port->uplinks.push_back(std::move(up));
    port->downlinks.push_back(std::move(down));
  }
  ports_.emplace(addr, port);

  // The returned sink keeps the port alive even if detach() races with an
  // in-flight transmission; the alive flag stops delivery after detach.
  return [port, rails](Packet p) {
    if (!port->alive) return;
    port->uplinks[rail_of(p, rails)]->transmit(std::move(p));
  };
}

void Switch::detach(Ipv4Addr addr) {
  auto it = ports_.find(addr);
  if (it == ports_.end()) return;
  it->second->alive = false;
  for (auto& down : it->second->downlinks) down->set_sink(nullptr);
  ports_.erase(it);
}

void Switch::forward(Ipv4Addr from, Packet p) {
  // Frames are steered by the resolved link-layer destination when present (the
  // sender's dst-cache decision), falling back to the IP destination.
  const Ipv4Addr hw_dst = p.link_dst == Ipv4Addr::any() ? p.dst : p.link_dst;
  if (p.dst.is_broadcast()) {
    for (auto& [addr, port] : ports_) {
      if (addr == from || !port->alive) continue;
      forwarded_ += 1;
      port->downlinks[0]->transmit(p);  // copy per receiver
    }
    return;
  }
  auto it = ports_.find(hw_dst);
  if (it == ports_.end() || !it->second->alive) {
    dropped_ += 1;
    return;
  }
  forwarded_ += 1;
  auto& port = *it->second;
  port.downlinks[rail_of(p, port.downlinks.size())]->transmit(std::move(p));
}

}  // namespace dvemig::net
