// Packet model: explicit IPv4 + TCP/UDP header fields plus a payload.
//
// Headers are structured fields rather than raw bytes (the simulator never parses
// wire formats), but the transport checksum is a *real* internet checksum over the
// serialized pseudo-header + header + payload, so the translation filter's
// incremental checksum fixup (Section V-D of the paper) operates on genuine values.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/common/serial.hpp"
#include "src/net/address.hpp"

namespace dvemig::net {

enum class IpProto : std::uint8_t { tcp = 6, udp = 17 };

namespace tcp_flags {
inline constexpr std::uint8_t fin = 0x01;
inline constexpr std::uint8_t syn = 0x02;
inline constexpr std::uint8_t rst = 0x04;
inline constexpr std::uint8_t psh = 0x08;
inline constexpr std::uint8_t ack = 0x10;
}  // namespace tcp_flags

struct TcpHeader {
  Port sport{0};
  Port dport{0};
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint8_t flags{0};
  std::uint32_t window{65535};
  // TCP timestamps option (always present in this stack, as in modern Linux).
  std::uint32_t tsval{0};
  std::uint32_t tsecr{0};

  bool has(std::uint8_t f) const { return (flags & f) != 0; }
};

struct UdpHeader {
  Port sport{0};
  Port dport{0};
};

/// Copy-on-write payload bytes.
///
/// Copying a Packet shares the payload allocation instead of cloning it: the
/// single-IP router broadcasts every client packet to all N nodes (Section
/// V-B), and the capture queue stores stolen packets until reinjection — both
/// were N deep copies of the same bytes. Readers see plain byte access;
/// mutation (`operator[]`, `push_back`) detaches from any sharers first, so a
/// hook rewriting one broadcast copy never bleeds into the others.
class SharedPayload {
 public:
  SharedPayload() = default;
  SharedPayload(Buffer b)  // NOLINT(google-explicit-constructor)
      : data_(b.empty() ? nullptr : std::make_shared<Buffer>(std::move(b))) {}

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  std::span<const std::uint8_t> view() const {
    return data_ ? std::span<const std::uint8_t>(*data_)
                 : std::span<const std::uint8_t>{};
  }
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return view();
  }
  const std::uint8_t& operator[](std::size_t i) const { return (*data_)[i]; }

  /// Mutable access: detaches from sharers first (copy-on-write).
  std::uint8_t& operator[](std::size_t i) { return (*detach())[i]; }
  void push_back(std::uint8_t b) { detach()->push_back(b); }

  /// Deep copy into an owned Buffer (e.g. a socket receive queue keeping the
  /// bytes past the packet's lifetime).
  Buffer copy() const { return data_ ? *data_ : Buffer{}; }

  /// Take the bytes out, leaving the payload empty — moves when this is the
  /// sole owner, copies otherwise.
  Buffer take() {
    if (!data_) return {};
    Buffer out = data_.use_count() == 1 ? std::move(*data_) : *data_;
    data_.reset();
    return out;
  }

  /// Introspection for tests: do two payloads alias one allocation?
  bool shares_storage_with(const SharedPayload& o) const {
    return data_ != nullptr && data_ == o.data_;
  }

 private:
  Buffer* detach() {
    if (!data_) {
      data_ = std::make_shared<Buffer>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Buffer>(*data_);
    }
    return data_.get();
  }

  std::shared_ptr<Buffer> data_;
};

struct Packet {
  Ipv4Addr src{};
  Ipv4Addr dst{};
  IpProto proto{IpProto::udp};
  std::uint8_t ttl{64};
  TcpHeader tcp{};
  UdpHeader udp{};
  SharedPayload payload;      // COW: packet copies share the allocation
  std::uint16_t checksum{0};  // transport checksum (pseudo-header included)
  std::uint64_t id{0};        // trace id, unique per packet creation

  // --- link-layer / kernel metadata, NOT part of the wire image or checksum ---

  /// Resolved next-hop the frame is actually addressed to. Normally equals `dst`,
  /// but it is filled from the sending socket's *destination cache entry* — so after
  /// a translation filter rewrites `dst`, a stale cache entry still steers the frame
  /// to the old node (the Section V-D bug) until the cache entry is replaced too.
  Ipv4Addr link_dst{};  // 0.0.0.0 = "route by dst"

  /// sock_id of the local socket that emitted this packet (dst-cache key), 0 if none.
  std::uint64_t origin_sock_id{0};

  Port sport() const { return proto == IpProto::tcp ? tcp.sport : udp.sport; }
  Port dport() const { return proto == IpProto::tcp ? tcp.dport : udp.dport; }

  /// Bytes on the wire: Ethernet framing + IP header + transport header + payload.
  /// TCP includes the 12-byte timestamps option (10 bytes + padding).
  std::size_t wire_size() const;

  /// Transport header + payload only (what the bandwidth-independent parts care about).
  std::size_t transport_size() const;

  std::string describe() const;
};

/// Compute the transport checksum over pseudo-header + header fields + payload.
std::uint16_t compute_checksum(const Packet& p);

/// True when p.checksum matches compute_checksum(p).
bool checksum_ok(const Packet& p);

/// Fill in checksum and a fresh trace id.
void finalize(Packet& p);

/// Make packets; finalize() is applied.
Packet make_udp(Endpoint from, Endpoint to, Buffer payload);
Packet make_tcp(Endpoint from, Endpoint to, TcpHeader hdr, Buffer payload);

}  // namespace dvemig::net
