#include "src/net/link.hpp"

#include <algorithm>

namespace dvemig::net {

void Link::transmit(Packet p) {
  DVEMIG_EXPECTS(config_.bandwidth_bps > 0);
  FaultVerdict fault;
  if (fault_hook_) fault = fault_hook_->on_transmit(*this, p);
  const std::size_t wire = p.wire_size();
  const auto serialization =
      SimTime::nanoseconds(static_cast<std::int64_t>(static_cast<double>(wire) * 8.0 /
                                                     config_.bandwidth_bps * 1e9));

  const SimTime start = std::max(engine_->now(), busy_until_);
  busy_until_ = start + serialization;
  const SimTime arrival = busy_until_ + config_.latency;

  packets_ += 1;
  bytes_ += wire;

  if (!sink_) return;  // unconnected link drops (like an unplugged cable)
  if (fault.drop && !fault.duplicate) return;  // lost on the wire
  if (fault.duplicate && !fault.drop) {
    // Second copy delivers one serialization slot later, as if retransmitted
    // by a confused middlebox right behind the original.
    engine_->schedule_at(arrival + serialization + fault.extra_delay,
                         [this, pkt = p]() mutable {
                           if (sink_) sink_(std::move(pkt));
                         });
  }
  engine_->schedule_at(arrival + fault.extra_delay,
                       [this, pkt = std::move(p)]() mutable {
                         if (sink_) sink_(std::move(pkt));
                       });
}

}  // namespace dvemig::net
