#include "src/net/link.hpp"

#include <algorithm>

namespace dvemig::net {

void Link::transmit(Packet p) {
  DVEMIG_EXPECTS(config_.bandwidth_bps > 0);
  const std::size_t wire = p.wire_size();
  const auto serialization =
      SimTime::nanoseconds(static_cast<std::int64_t>(static_cast<double>(wire) * 8.0 /
                                                     config_.bandwidth_bps * 1e9));

  const SimTime start = std::max(engine_->now(), busy_until_);
  busy_until_ = start + serialization;
  const SimTime arrival = busy_until_ + config_.latency;

  packets_ += 1;
  bytes_ += wire;

  if (!sink_) return;  // unconnected link drops (like an unplugged cable)
  engine_->schedule_at(arrival, [this, pkt = std::move(p)]() mutable {
    if (sink_) sink_(std::move(pkt));
  });
}

}  // namespace dvemig::net
