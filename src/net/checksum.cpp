#include "src/net/checksum.hpp"

namespace dvemig::net {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data, std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;  // odd trailing byte
  return sum;
}

std::uint16_t fold_checksum(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold_checksum(checksum_accumulate(data, 0));
}

std::uint16_t checksum_adjust32(std::uint16_t checksum, std::uint32_t old_value,
                                std::uint32_t new_value) {
  // RFC 1624: HC' = ~(~HC + ~m + m'), computed 16 bits at a time.
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
  sum += static_cast<std::uint16_t>(~(old_value >> 16) & 0xFFFF);
  sum += static_cast<std::uint16_t>(~old_value & 0xFFFF);
  sum += (new_value >> 16) & 0xFFFF;
  sum += new_value & 0xFFFF;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

}  // namespace dvemig::net
