// Unidirectional timed link.
//
// Delivery time = serialization (wire_size / bandwidth) queued FIFO behind earlier
// transmissions, plus propagation latency. This is what prices every transfer in the
// experiments: the freeze-phase socket buffer of Fig. 5c literally rides these links.
#pragma once

#include <cstdint>
#include <functional>

#include "src/net/packet.hpp"
#include "src/sim/engine.hpp"

namespace dvemig::net {

using PacketSink = std::function<void(Packet)>;

struct LinkConfig {
  double bandwidth_bps{1e9};                         // GbE by default
  SimDuration latency{SimTime::microseconds(25)};    // one-way propagation + switching
  // Link aggregation (bonded NICs): each switch port carries `rails` independent
  // physical links, each at the full `bandwidth_bps`. Flows are pinned to a rail
  // by a deterministic 5-tuple hash (net::Switch), so one TCP stream never
  // exceeds a single rail's bandwidth — parallelism requires parallel flows,
  // exactly as on real bonded hardware. Only net::Switch honours this field; a
  // bare Link is always a single rail.
  int rails{1};
};

class Link {
 public:
  /// Process-wide fault-injection seam used by the model checker (src/mc).
  /// Consulted once per transmitted packet; the verdict can drop it, deliver a
  /// second copy, and/or add delivery delay (reordering it behind later
  /// traffic). One hook at most; production code never installs one.
  struct FaultVerdict {
    bool drop{false};
    bool duplicate{false};
    SimDuration extra_delay{SimTime::zero()};
  };
  class FaultHook {
   public:
    virtual ~FaultHook() = default;
    virtual FaultVerdict on_transmit(const Link& link, const Packet& p) = 0;
  };
  static void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  static FaultHook* fault_hook() { return fault_hook_; }

  Link(sim::Engine& engine, LinkConfig config) : engine_(&engine), config_(config) {}

  void set_sink(PacketSink sink) { sink_ = std::move(sink); }

  /// Queue a packet for transmission. Ownership of the payload moves with it.
  void transmit(Packet p);

  const LinkConfig& config() const { return config_; }

  // Cumulative statistics.
  std::uint64_t packets_sent() const { return packets_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  static inline FaultHook* fault_hook_ = nullptr;

  sim::Engine* engine_;
  LinkConfig config_;
  PacketSink sink_;
  SimTime busy_until_{SimTime::zero()};
  std::uint64_t packets_{0};
  std::uint64_t bytes_{0};
};

}  // namespace dvemig::net
