// In-cluster Ethernet switch for the private (local) network.
//
// Hosts attach with their local IP address. Forwarding is by destination address;
// the limited-broadcast address 255.255.255.255 floods all ports except the sender
// (this carries the conductor daemons' discovery and heartbeat datagrams).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/link.hpp"

namespace dvemig::net {

class Switch {
 public:
  Switch(sim::Engine& engine, LinkConfig link_config)
      : engine_(&engine), link_config_(link_config) {}

  /// Attach a host. `sink` receives packets forwarded to `addr`.
  /// Returns a sink the host uses to transmit into the switch.
  PacketSink attach(Ipv4Addr addr, PacketSink sink);

  /// Detach a host (machines "may join and leave at any time", Section IV).
  void detach(Ipv4Addr addr);

  bool attached(Ipv4Addr addr) const { return ports_.contains(addr); }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_unroutable() const { return dropped_; }

  /// Deterministic symmetric flow->rail pinning for aggregated ports
  /// (LinkConfig::rails > 1): both directions of a connection hash to the same
  /// rail, and distinct consecutive ports spread across rails.
  static std::size_t rail_of(const Packet& p, std::size_t rails);

 private:
  struct PortState {
    // One Link per rail and direction; index = rail_of(packet, rails).
    std::vector<std::unique_ptr<Link>> uplinks;    // host -> switch
    std::vector<std::unique_ptr<Link>> downlinks;  // switch -> host
    bool alive{true};  // false after detach; pending deliveries drop
  };

  void forward(Ipv4Addr from, Packet p);

  sim::Engine* engine_;
  LinkConfig link_config_;
  std::unordered_map<Ipv4Addr, std::shared_ptr<PortState>> ports_;
  std::uint64_t forwarded_{0};
  std::uint64_t dropped_{0};
};

}  // namespace dvemig::net
