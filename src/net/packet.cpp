#include "src/net/packet.hpp"

#include "src/net/checksum.hpp"

namespace dvemig::net {

namespace {

// Ethernet II header (14) + FCS (4) + preamble/SFD (8) + inter-frame gap (12).
constexpr std::size_t kEthernetOverhead = 38;
constexpr std::size_t kIpHeader = 20;
constexpr std::size_t kTcpHeader = 20;
constexpr std::size_t kTcpTimestampOption = 12;
constexpr std::size_t kUdpHeader = 8;

std::uint64_t next_packet_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}

void write_u32_be(BinaryWriter& w, std::uint32_t v) {
  w.u8(static_cast<std::uint8_t>(v >> 24));
  w.u8(static_cast<std::uint8_t>(v >> 16));
  w.u8(static_cast<std::uint8_t>(v >> 8));
  w.u8(static_cast<std::uint8_t>(v));
}

Buffer checksum_input(const Packet& p) {
  BinaryWriter w;
  // Pseudo-header. Addresses are written big-endian, as on the wire, so that the
  // RFC 1624 incremental checksum update over a 32-bit address value (used by the
  // translation filter) composes with the full checksum.
  write_u32_be(w, p.src.value);
  write_u32_be(w, p.dst.value);
  w.u8(0);
  w.u8(static_cast<std::uint8_t>(p.proto));
  w.u16(static_cast<std::uint16_t>(p.transport_size()));
  // Transport header (checksum field itself excluded, as on the wire).
  if (p.proto == IpProto::tcp) {
    w.u16(p.tcp.sport);
    w.u16(p.tcp.dport);
    w.u32(p.tcp.seq);
    w.u32(p.tcp.ack);
    w.u8(p.tcp.flags);
    w.u32(p.tcp.window);
    w.u32(p.tcp.tsval);
    w.u32(p.tcp.tsecr);
  } else {
    w.u16(p.udp.sport);
    w.u16(p.udp.dport);
    w.u16(static_cast<std::uint16_t>(p.payload.size()));
  }
  w.bytes(p.payload);
  return w.take();
}

}  // namespace

std::size_t Packet::transport_size() const {
  const std::size_t hdr =
      proto == IpProto::tcp ? kTcpHeader + kTcpTimestampOption : kUdpHeader;
  return hdr + payload.size();
}

std::size_t Packet::wire_size() const {
  // Minimum Ethernet frame is 64 bytes (incl. FCS); short packets are padded.
  const std::size_t frame = kIpHeader + transport_size() + 18;  // eth hdr + FCS
  return (frame < 64 ? 64 : frame) + (kEthernetOverhead - 18);
}

std::string Packet::describe() const {
  std::string s = proto == IpProto::tcp ? "TCP " : "UDP ";
  s += src.to_string() + ":" + std::to_string(sport()) + " -> " + dst.to_string() + ":" +
       std::to_string(dport());
  if (proto == IpProto::tcp) {
    s += " [";
    if (tcp.has(tcp_flags::syn)) s += "S";
    if (tcp.has(tcp_flags::ack)) s += "A";
    if (tcp.has(tcp_flags::fin)) s += "F";
    if (tcp.has(tcp_flags::rst)) s += "R";
    if (tcp.has(tcp_flags::psh)) s += "P";
    s += "] seq=" + std::to_string(tcp.seq) + " ack=" + std::to_string(tcp.ack);
  }
  s += " len=" + std::to_string(payload.size());
  return s;
}

std::uint16_t compute_checksum(const Packet& p) {
  const Buffer input = checksum_input(p);
  return internet_checksum(input);
}

bool checksum_ok(const Packet& p) { return p.checksum == compute_checksum(p); }

void finalize(Packet& p) {
  p.checksum = compute_checksum(p);
  p.id = next_packet_id();
}

Packet make_udp(Endpoint from, Endpoint to, Buffer payload) {
  Packet p;
  p.src = from.addr;
  p.dst = to.addr;
  p.proto = IpProto::udp;
  p.udp = UdpHeader{from.port, to.port};
  p.payload = std::move(payload);
  finalize(p);
  return p;
}

Packet make_tcp(Endpoint from, Endpoint to, TcpHeader hdr, Buffer payload) {
  Packet p;
  p.src = from.addr;
  p.dst = to.addr;
  p.proto = IpProto::tcp;
  hdr.sport = from.port;
  hdr.dport = to.port;
  p.tcp = hdr;
  p.payload = std::move(payload);
  finalize(p);
  return p;
}

}  // namespace dvemig::net
