#include "src/net/packet.hpp"

#include "src/net/checksum.hpp"

namespace dvemig::net {

namespace {

// Ethernet II header (14) + FCS (4) + preamble/SFD (8) + inter-frame gap (12).
constexpr std::size_t kEthernetOverhead = 38;
constexpr std::size_t kIpHeader = 20;
constexpr std::size_t kTcpHeader = 20;
constexpr std::size_t kTcpTimestampOption = 12;
constexpr std::size_t kUdpHeader = 8;

std::uint64_t next_packet_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}

// Ones'-complement accumulator over the checksum input stream, fed byte by
// byte so no serialized copy of the packet is ever materialized (the fold runs
// on every rx *and* every capture reinjection — it is a per-packet hot path).
// Byte order per field matches the historical BinaryWriter-based encoding
// exactly: addresses big-endian as on the wire (so the RFC 1624 incremental
// update over a 32-bit address value composes with the full checksum), all
// other header fields little-endian.
struct ChecksumAcc {
  std::uint32_t sum{0};
  bool high{true};  // next byte lands in the high half of a 16-bit word

  void byte(std::uint8_t b) {
    sum += high ? static_cast<std::uint32_t>(b) << 8 : static_cast<std::uint32_t>(b);
    high = !high;
  }
  void be32(std::uint32_t v) {
    byte(static_cast<std::uint8_t>(v >> 24));
    byte(static_cast<std::uint8_t>(v >> 16));
    byte(static_cast<std::uint8_t>(v >> 8));
    byte(static_cast<std::uint8_t>(v));
  }
  void le16(std::uint16_t v) {
    byte(static_cast<std::uint8_t>(v));
    byte(static_cast<std::uint8_t>(v >> 8));
  }
  void le32(std::uint32_t v) {
    byte(static_cast<std::uint8_t>(v));
    byte(static_cast<std::uint8_t>(v >> 8));
    byte(static_cast<std::uint8_t>(v >> 16));
    byte(static_cast<std::uint8_t>(v >> 24));
  }
  void span(std::span<const std::uint8_t> s) {
    std::size_t i = 0;
    // The TCP header fields above are an odd byte count, so the payload can
    // start mid-word; realign, then sum whole 16-bit words.
    if (!high && i < s.size()) byte(s[i++]);
    for (; i + 1 < s.size(); i += 2) {
      sum += static_cast<std::uint32_t>(s[i]) << 8 | s[i + 1];
    }
    if (i < s.size()) byte(s[i]);
  }
};

}  // namespace

std::size_t Packet::transport_size() const {
  const std::size_t hdr =
      proto == IpProto::tcp ? kTcpHeader + kTcpTimestampOption : kUdpHeader;
  return hdr + payload.size();
}

std::size_t Packet::wire_size() const {
  // Minimum Ethernet frame is 64 bytes (incl. FCS); short packets are padded.
  const std::size_t frame = kIpHeader + transport_size() + 18;  // eth hdr + FCS
  return (frame < 64 ? 64 : frame) + (kEthernetOverhead - 18);
}

std::string Packet::describe() const {
  std::string s = proto == IpProto::tcp ? "TCP " : "UDP ";
  s += src.to_string() + ":" + std::to_string(sport()) + " -> " + dst.to_string() + ":" +
       std::to_string(dport());
  if (proto == IpProto::tcp) {
    s += " [";
    if (tcp.has(tcp_flags::syn)) s += "S";
    if (tcp.has(tcp_flags::ack)) s += "A";
    if (tcp.has(tcp_flags::fin)) s += "F";
    if (tcp.has(tcp_flags::rst)) s += "R";
    if (tcp.has(tcp_flags::psh)) s += "P";
    s += "] seq=" + std::to_string(tcp.seq) + " ack=" + std::to_string(tcp.ack);
  }
  s += " len=" + std::to_string(payload.size());
  return s;
}

std::uint16_t compute_checksum(const Packet& p) {
  ChecksumAcc acc;
  // Pseudo-header.
  acc.be32(p.src.value);
  acc.be32(p.dst.value);
  acc.byte(0);
  acc.byte(static_cast<std::uint8_t>(p.proto));
  acc.le16(static_cast<std::uint16_t>(p.transport_size()));
  // Transport header (checksum field itself excluded, as on the wire).
  if (p.proto == IpProto::tcp) {
    acc.le16(p.tcp.sport);
    acc.le16(p.tcp.dport);
    acc.le32(p.tcp.seq);
    acc.le32(p.tcp.ack);
    acc.byte(p.tcp.flags);
    acc.le32(p.tcp.window);
    acc.le32(p.tcp.tsval);
    acc.le32(p.tcp.tsecr);
  } else {
    acc.le16(p.udp.sport);
    acc.le16(p.udp.dport);
    acc.le16(static_cast<std::uint16_t>(p.payload.size()));
  }
  acc.span(p.payload.view());
  return fold_checksum(acc.sum);
}

bool checksum_ok(const Packet& p) { return p.checksum == compute_checksum(p); }

void finalize(Packet& p) {
  p.checksum = compute_checksum(p);
  p.id = next_packet_id();
}

Packet make_udp(Endpoint from, Endpoint to, Buffer payload) {
  Packet p;
  p.src = from.addr;
  p.dst = to.addr;
  p.proto = IpProto::udp;
  p.udp = UdpHeader{from.port, to.port};
  p.payload = std::move(payload);
  finalize(p);
  return p;
}

Packet make_tcp(Endpoint from, Endpoint to, TcpHeader hdr, Buffer payload) {
  Packet p;
  p.src = from.addr;
  p.dst = to.addr;
  p.proto = IpProto::tcp;
  hdr.sport = from.port;
  hdr.dport = to.port;
  p.tcp = hdr;
  p.payload = std::move(payload);
  finalize(p);
  return p;
}

}  // namespace dvemig::net
