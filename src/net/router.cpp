#include "src/net/router.hpp"

namespace dvemig::net {

std::shared_ptr<BroadcastRouter::PortState> BroadcastRouter::make_port(
    PacketSink sink, PacketSink on_ingress) {
  auto port = std::make_shared<PortState>();
  port->uplink = std::make_unique<Link>(*engine_, link_config_);
  port->downlink = std::make_unique<Link>(*engine_, link_config_);
  port->downlink->set_sink(std::move(sink));
  port->uplink->set_sink(std::move(on_ingress));
  return port;
}

PacketSink BroadcastRouter::attach_node(std::uint32_t node_key, PacketSink sink) {
  DVEMIG_EXPECTS(!nodes_.contains(node_key));
  auto port = make_port(std::move(sink), [this](Packet p) { from_node(std::move(p)); });
  nodes_.emplace(node_key, port);
  return [port](Packet p) {
    if (port->alive) port->uplink->transmit(std::move(p));
  };
}

void BroadcastRouter::detach_node(std::uint32_t node_key) {
  auto it = nodes_.find(node_key);
  if (it == nodes_.end()) return;
  it->second->alive = false;
  it->second->downlink->set_sink(nullptr);
  nodes_.erase(it);
}

PacketSink BroadcastRouter::attach_client(Ipv4Addr client_addr, PacketSink sink) {
  DVEMIG_EXPECTS(client_addr != cluster_ip_);
  DVEMIG_EXPECTS(!clients_.contains(client_addr));
  auto port = make_port(std::move(sink), [this](Packet p) { from_client(std::move(p)); });
  clients_.emplace(client_addr, port);
  return [port](Packet p) {
    if (port->alive) port->uplink->transmit(std::move(p));
  };
}

void BroadcastRouter::detach_client(Ipv4Addr client_addr) {
  auto it = clients_.find(client_addr);
  if (it == clients_.end()) return;
  it->second->alive = false;
  it->second->downlink->set_sink(nullptr);
  clients_.erase(it);
}

void BroadcastRouter::from_client(Packet p) {
  if (p.dst != cluster_ip_) {
    dropped_ += 1;  // not for this service
    return;
  }
  // The defining behaviour: no connection tracking, no MAC rewriting — a copy of
  // every incoming packet reaches every cluster node's public interface. The
  // copies are shallow: Packet's payload is copy-on-write, so the N broadcast
  // copies share one allocation until a receiver mutates its payload.
  for (auto& [key, port] : nodes_) {
    if (!port->alive) continue;
    broadcast_copies_ += 1;
    port->downlink->transmit(p);
  }
}

void BroadcastRouter::from_node(Packet p) {
  const Ipv4Addr hw_dst = p.link_dst == Ipv4Addr::any() ? p.dst : p.link_dst;
  auto it = clients_.find(hw_dst);
  if (it == clients_.end() || !it->second->alive) {
    dropped_ += 1;
    return;
  }
  to_clients_ += 1;
  it->second->downlink->transmit(std::move(p));
}

}  // namespace dvemig::net
