// Fundamental value types shared by every layer.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>

namespace dvemig {

/// Simulated time in nanoseconds since simulation start.
///
/// A strong type rather than a bare integer so that durations, byte counts and
/// identifiers cannot be mixed up silently at call sites.
struct SimTime {
  std::int64_t ns{0};

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1'000}; }
  static constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000'000}; }

  constexpr double to_ms() const { return static_cast<double>(ns) / 1e6; }
  constexpr double to_us() const { return static_cast<double>(ns) / 1e3; }
  constexpr double to_sec() const { return static_cast<double>(ns) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimTime o) const { return SimTime{ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) { ns += o.ns; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns -= o.ns; return *this; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns / k}; }
};

/// Duration alias — same representation, used where the value is a span, not an instant.
using SimDuration = SimTime;

/// Process identifier, unique cluster-wide in this simulator.
struct Pid {
  std::uint32_t value{0};
  constexpr auto operator<=>(const Pid&) const = default;
};

/// Node identifier (index into the cluster's node list).
struct NodeId {
  std::uint32_t value{0};
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// File-descriptor number within one process.
using Fd = int;

}  // namespace dvemig

template <>
struct std::hash<dvemig::Pid> {
  std::size_t operator()(const dvemig::Pid& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.value);
  }
};

template <>
struct std::hash<dvemig::NodeId> {
  std::size_t operator()(const dvemig::NodeId& n) const noexcept {
    return std::hash<std::uint32_t>{}(n.value);
  }
};
