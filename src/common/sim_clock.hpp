// Thread-local bridge from wall-clock-free code to the simulated clock.
//
// The discrete-event engine (src/sim) publishes a "now" provider when it is
// constructed; anything below the sim layer — the logger's time prefix, the
// span tracer — reads the current simulated time through this indirection
// without depending on the engine. When no engine is alive (unit tests of the
// common layer, tool startup) the clock is simply unavailable.
#pragma once

#include <cstdint>

namespace dvemig {

class SimClock {
 public:
  using NowFn = std::int64_t (*)(const void* ctx);

  /// Install `fn(ctx)` as the current provider. The latest publisher wins
  /// (tests that construct engines back to back each take over the clock).
  static void publish(NowFn fn, const void* ctx);

  /// Remove the provider, but only if `ctx` is still the current publisher —
  /// a dying engine must not retract a newer engine's clock.
  static void retract(const void* ctx);

  static bool available();

  /// Current simulated time in nanoseconds; 0 when unavailable.
  static std::int64_t now_ns();
};

}  // namespace dvemig
