#include "src/common/cli.hpp"

#include <cstring>

namespace dvemig {

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "trace") out = LogLevel::trace;
  else if (name == "debug") out = LogLevel::debug;
  else if (name == "info") out = LogLevel::info;
  else if (name == "warn") out = LogLevel::warn;
  else if (name == "error") out = LogLevel::error;
  else if (name == "off") out = LogLevel::off;
  else return false;
  return true;
}

namespace {

/// Match `--name=value` or `--name value`; on a hit, `value` is filled and
/// `consumed` is 1 or 2 argv slots.
bool match_flag(char** argv, int argc, int i, const char* name,
                std::string& value, int& consumed) {
  const char* arg = argv[i];
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    value = arg + len + 1;
    consumed = 1;
    return true;
  }
  if (arg[len] == '\0' && i + 1 < argc) {
    value = argv[i + 1];
    consumed = 2;
    return true;
  }
  return false;
}

}  // namespace

CommonFlags parse_common_flags(int& argc, char** argv) {
  CommonFlags flags;
  int out = 1;
  for (int i = 1; i < argc;) {
    std::string value;
    int consumed = 0;
    if (match_flag(argv, argc, i, "--log-level", value, consumed)) {
      if (!parse_log_level(value, flags.log_level)) {
        DVEMIG_WARN("cli", "unknown --log-level '%s' (want trace|debug|info|"
                    "warn|error|off); keeping default", value.c_str());
      }
      i += consumed;
    } else if (match_flag(argv, argc, i, "--trace-out", value, consumed)) {
      flags.trace_out = value;
      i += consumed;
    } else if (match_flag(argv, argc, i, "--metrics-out", value, consumed)) {
      flags.metrics_out = value;
      i += consumed;
    } else {
      argv[out++] = argv[i++];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  Log::level() = flags.log_level;
  return flags;
}

}  // namespace dvemig
