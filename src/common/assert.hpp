// Contract-checking macros in the spirit of the C++ Core Guidelines' Expects/Ensures.
//
// Violations are programming errors, not recoverable conditions: they abort with a
// diagnostic. They stay enabled in all build types because the simulator's value is
// its invariants — a silently corrupted socket table produces plausible-looking but
// meaningless experiment numbers.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dvemig::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "dvemig: %s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace dvemig::detail

#define DVEMIG_EXPECTS(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dvemig::detail::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define DVEMIG_ENSURES(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dvemig::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__))

#define DVEMIG_ASSERT(cond)                                                       \
  ((cond) ? static_cast<void>(0)                                                  \
          : ::dvemig::detail::contract_failure("invariant", #cond, __FILE__, __LINE__))

#define DVEMIG_UNREACHABLE(msg) \
  ::dvemig::detail::contract_failure("unreachable", msg, __FILE__, __LINE__)
