// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run, so all randomness flows through an
// explicitly seeded xoshiro256** generator (seeded via splitmix64 as its authors
// recommend). std::mt19937 is avoided because its seeding and distribution behaviour
// differ across standard-library implementations.
#pragma once

#include <cstdint>

#include "src/common/assert.hpp"

namespace dvemig {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    DVEMIG_EXPECTS(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4]{};
};

}  // namespace dvemig
