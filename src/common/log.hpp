// Minimal leveled logger.
//
// The simulator is single-threaded (one discrete-event loop), so the logger needs no
// synchronisation. Levels are filtered at runtime; the default is `warn` so tests and
// benchmarks stay quiet unless asked.
//
// Lines are machine-parsable: `LEVEL|sim_time|tag|message`, where sim_time is
// the current simulated time in seconds (six decimals) from the engine's
// thread-local clock (src/common/sim_clock.hpp), or `-` when no engine is
// alive. Tests can intercept lines with set_sink().
#pragma once

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>

namespace dvemig {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class Log {
 public:
  using SinkFn = std::function<void(const std::string& line)>;

  static LogLevel& level() {
    static LogLevel lvl = LogLevel::warn;
    return lvl;
  }

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// Redirect formatted lines (without trailing newline) away from stderr.
  /// Pass nullptr to restore stderr. Single-threaded, like everything else.
  static void set_sink(SinkFn sink);

  static void write(LogLevel lvl, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

}  // namespace dvemig

#define DVEMIG_LOG(lvl, tag, ...)                             \
  do {                                                        \
    if (::dvemig::Log::enabled(lvl)) {                        \
      ::dvemig::Log::write(lvl, tag, __VA_ARGS__);            \
    }                                                         \
  } while (0)

#define DVEMIG_TRACE(tag, ...) DVEMIG_LOG(::dvemig::LogLevel::trace, tag, __VA_ARGS__)
#define DVEMIG_DEBUG(tag, ...) DVEMIG_LOG(::dvemig::LogLevel::debug, tag, __VA_ARGS__)
#define DVEMIG_INFO(tag, ...) DVEMIG_LOG(::dvemig::LogLevel::info, tag, __VA_ARGS__)
#define DVEMIG_WARN(tag, ...) DVEMIG_LOG(::dvemig::LogLevel::warn, tag, __VA_ARGS__)
#define DVEMIG_ERROR(tag, ...) DVEMIG_LOG(::dvemig::LogLevel::error, tag, __VA_ARGS__)
