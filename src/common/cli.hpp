// Shared command-line flags for the example and bench binaries.
//
// Every binary that calls parse_common_flags understands:
//   --log-level=<trace|debug|info|warn|error|off>   (also "--log-level warn")
//   --trace-out=<file>     Chrome trace_event JSON written at exit
//   --metrics-out=<file>   metrics-registry JSON written at exit
//
// Recognised flags are stripped from argv so positional arguments keep their
// meaning. The log level is applied immediately; the export paths are returned
// for obs::apply_common_flags (src/common cannot depend on src/obs).
#pragma once

#include <string>

#include "src/common/log.hpp"

namespace dvemig {

struct CommonFlags {
  LogLevel log_level{LogLevel::warn};
  std::string trace_out;
  std::string metrics_out;
};

/// Parse `name` ("debug", "warn", ...) into a level; false if unknown.
bool parse_log_level(const std::string& name, LogLevel& out);

/// Strip the shared flags from argv (compacting it in place, argc updated),
/// apply the log level, and return what was parsed. Unknown arguments are
/// left untouched. A malformed value warns and keeps the default.
CommonFlags parse_common_flags(int& argc, char** argv);

}  // namespace dvemig
