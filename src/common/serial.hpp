// Binary serialization used for checkpoint images, socket state dumps and
// middleware messages.
//
// The byte counts these writers produce are *measured* quantities in the
// experiments (Fig. 5c reports bytes transferred during the freeze phase), so the
// encoding is explicit and fixed-width little-endian — never `memcpy` of structs,
// whose padding would make sizes compiler-dependent.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/assert.hpp"

namespace dvemig {

using Buffer = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian values to a growable buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(Buffer buf) : buf_(std::move(buf)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return buf_.size(); }
  const Buffer& buffer() const { return buf_; }
  Buffer take() { return std::move(buf_); }

  /// Pre-size the backing buffer (the collective-subtraction path sizes the
  /// unified transfer buffer from the previous round so a freeze-phase dump
  /// never reallocates mid-serialization).
  void reserve(std::size_t n) { buf_.reserve(n); }

  /// Drop the contents but keep the capacity, so one writer can be reused
  /// across precopy rounds without re-paying the allocation.
  void clear() { buf_.clear(); }

  /// Current write position — take a mark before a section, then `patch_*` a
  /// placeholder at it or `truncate_to` it to roll the section back.
  std::size_t mark() const { return buf_.size(); }

  /// Discard everything written at or after `pos` (e.g. a delta section that
  /// hashed identical to the previous round and need not go on the wire).
  void truncate_to(std::size_t pos) {
    DVEMIG_EXPECTS(pos <= buf_.size());
    buf_.resize(pos);
  }

  /// Overwrite previously written bytes in place — size prefixes and flag
  /// bytes are written blind up front and back-patched once known, so records
  /// serialize straight into the final buffer with no intermediate copy.
  void patch_u8(std::uint8_t v, std::size_t pos) {
    DVEMIG_EXPECTS(pos + 1 <= buf_.size());
    buf_[pos] = v;
  }
  void patch_u32(std::uint32_t v, std::size_t pos) { patch_le(v, pos); }
  void patch_u64(std::uint64_t v, std::size_t pos) { patch_le(v, pos); }

  /// View of the bytes written since `pos` (for hashing a section in place).
  /// Aliases the backing buffer: invalidated by any subsequent write.
  std::span<const std::uint8_t> span_from(std::size_t pos) const {
    DVEMIG_EXPECTS(pos <= buf_.size());
    return std::span<const std::uint8_t>(buf_).subspan(pos);
  }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  template <typename T>
  void patch_le(T v, std::size_t pos) {
    DVEMIG_EXPECTS(pos + sizeof(T) <= buf_.size());
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  Buffer buf_;
};

/// Reads values written by BinaryWriter. Out-of-bounds reads are contract violations:
/// a checkpoint image that underflows is corrupt and continuing would fabricate state.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    DVEMIG_EXPECTS(pos_ + 1 <= data_.size());
    return data_[pos_++];
  }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(read_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Buffer blob() {
    const std::uint32_t n = u32();
    DVEMIG_EXPECTS(pos_ + n <= data_.size());
    Buffer out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const std::uint32_t n = u32();
    DVEMIG_EXPECTS(pos_ + n <= data_.size());
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// View of the next `n` bytes without copying; advances the cursor. The view
  /// aliases the reader's backing storage and must not outlive it.
  std::span<const std::uint8_t> span(std::size_t n) {
    DVEMIG_EXPECTS(pos_ + n <= data_.size());
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Skip `n` bytes (e.g. page payloads whose content the simulator ignores).
  void skip(std::size_t n) {
    DVEMIG_EXPECTS(pos_ + n <= data_.size());
    pos_ += n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  T read_le() {
    DVEMIG_EXPECTS(pos_ + sizeof(T) <= data_.size());
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

/// FNV-1a content hash, used by the incremental socket tracker to detect whether a
/// serialized field block changed since the previous precopy round.
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace dvemig
