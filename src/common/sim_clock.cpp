#include "src/common/sim_clock.hpp"

namespace dvemig {

namespace {
thread_local SimClock::NowFn g_now_fn = nullptr;
thread_local const void* g_now_ctx = nullptr;
}  // namespace

void SimClock::publish(NowFn fn, const void* ctx) {
  g_now_fn = fn;
  g_now_ctx = ctx;
}

void SimClock::retract(const void* ctx) {
  if (g_now_ctx == ctx) {
    g_now_fn = nullptr;
    g_now_ctx = nullptr;
  }
}

bool SimClock::available() { return g_now_fn != nullptr; }

std::int64_t SimClock::now_ns() {
  return g_now_fn != nullptr ? g_now_fn(g_now_ctx) : 0;
}

}  // namespace dvemig
