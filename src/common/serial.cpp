#include "src/common/serial.hpp"

namespace dvemig {

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace dvemig
