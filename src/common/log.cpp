#include "src/common/log.hpp"

#include "src/common/sim_clock.hpp"

namespace dvemig {

namespace {

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Log::SinkFn& sink_slot() {
  static Log::SinkFn sink;
  return sink;
}

}  // namespace

void Log::set_sink(SinkFn sink) { sink_slot() = std::move(sink); }

void Log::write(LogLevel lvl, const char* tag, const char* fmt, ...) {
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);

  // `LEVEL|sim_time|tag|message` — sim time in seconds, `-` without an engine.
  char time_buf[32];
  if (SimClock::available()) {
    std::snprintf(time_buf, sizeof time_buf, "%.6f",
                  static_cast<double>(SimClock::now_ns()) / 1e9);
  } else {
    std::snprintf(time_buf, sizeof time_buf, "-");
  }

  if (sink_slot()) {
    std::string line = level_name(lvl);
    line += '|';
    line += time_buf;
    line += '|';
    line += tag;
    line += '|';
    line += msg;
    sink_slot()(line);
    return;
  }
  std::fprintf(stderr, "%s|%s|%s|%s\n", level_name(lvl), time_buf, tag, msg);
}

}  // namespace dvemig
