#include "src/common/log.hpp"

namespace dvemig {

namespace {
const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel lvl, const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] %s: ", level_name(lvl), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dvemig
