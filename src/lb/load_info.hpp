// Load information exchanged by the conductor daemons (information policy,
// Section IV-D: periodic broadcast doubling as a heartbeat).
#pragma once

#include <cstdint>

#include "src/common/serial.hpp"
#include "src/common/types.hpp"
#include "src/net/address.hpp"

namespace dvemig::lb {

struct LoadInfo {
  net::Ipv4Addr node_local{};  // sender's cluster-local address
  std::uint32_t node_key{0};   // NodeId, for logging
  double utilization{0};       // capped [0, 1]
  double demand{0};            // uncapped
  double capacity_cores{0};
  std::uint32_t process_count{0};
  std::int64_t sent_at_ns{0};

  void serialize(BinaryWriter& w) const;
  static LoadInfo deserialize(BinaryReader& r);
};

struct ProcessLoad {
  Pid pid{};
  double cores{0};
};

}  // namespace dvemig::lb
