// cond — the decentralized conductor daemon (Section IV).
//
// Each node's conductor periodically broadcasts its load on the cluster network
// (information policy + heartbeat + discovery), maintains an approximation of the
// whole cluster's load from peers' broadcasts, and — when the transfer policy
// fires — picks a destination (location policy) and a process (selection policy),
// negotiates with the destination via a two-phase offer/accept exchange (a receiver
// participates in at most one migration at a time), and instructs the local migd.
// After a migration both ends enter a calm-down period.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "src/lb/load_monitor.hpp"
#include "src/lb/policies.hpp"
#include "src/mig/migd.hpp"

namespace dvemig::lb {

inline constexpr net::Port kCondPort = 7002;

class Conductor {
 public:
  using MigrationFn = std::function<void(const mig::MigrationStats&)>;

  Conductor(proc::Node& node, mig::Migd& migd, PolicyConfig cfg = {});

  /// Join the cluster: bind the control socket, start broadcasting and evaluating.
  void start();
  /// Leave the cluster (stop heartbeats; peers time the node out).
  void stop();

  /// Master switch for the balancing logic (heartbeats continue either way, so a
  /// disabled conductor still feeds peers' cluster-average estimates).
  void set_enabled(bool v) { enabled_ = v; }
  void set_strategy(mig::SocketMigStrategy s) { strategy_ = s; }
  void set_on_migration(MigrationFn fn) { on_migration_ = std::move(fn); }

  double cluster_average() const;
  std::size_t known_peers() const { return peers_.size(); }
  const PolicyConfig& config() const { return cfg_; }

  std::uint64_t migrations_initiated() const { return initiated_; }
  std::uint64_t offers_accepted() const { return accepted_; }
  std::uint64_t offers_rejected() const { return rejected_; }
  std::uint64_t solicits_sent() const { return solicits_sent_; }

 private:
  enum class MsgType : std::uint8_t {
    load_info = 1,
    mig_offer = 2,
    mig_accept = 3,
    mig_reject = 4,
    mig_release = 5,
    mig_solicit = 6,  // receiver-initiated: "I'm underloaded, send me work"
  };

  struct PeerState {
    LoadInfo info;
    SimTime last_seen{};
  };

  struct PendingOffer {
    std::uint64_t offer_id{0};
    net::Ipv4Addr dest{};
    Pid pid{};
  };

  sim::Engine& engine() const { return node_->engine(); }
  void on_readable();
  void heartbeat();
  void evaluate();
  void handle_load_info(const LoadInfo& info);
  void handle_offer(net::Endpoint from, std::uint64_t offer_id, double est_cores);
  void handle_solicit(net::Endpoint from);
  /// Sender-side negotiation toward a specific (or policy-chosen) destination.
  void try_offer(std::optional<net::Ipv4Addr> forced_dest);
  void handle_accept(std::uint64_t offer_id);
  void handle_reject(std::uint64_t offer_id);
  void handle_release();
  void send_ctrl(net::Ipv4Addr to, MsgType type, std::uint64_t offer_id,
                 double value = 0);
  std::vector<PeerView> fresh_peers() const;
  bool calm() const { return engine().now() < calm_until_; }

  proc::Node* node_;
  mig::Migd* migd_;
  LoadMonitor monitor_;
  PolicyConfig cfg_;
  mig::SocketMigStrategy strategy_{mig::SocketMigStrategy::incremental_collective};
  bool enabled_{true};
  bool running_{false};

  std::shared_ptr<stack::UdpSocket> sock_;
  sim::TimerHandle heartbeat_timer_;
  sim::TimerHandle offer_timer_;
  sim::TimerHandle receive_guard_timer_;

  std::unordered_map<net::Ipv4Addr, PeerState> peers_;
  std::optional<PendingOffer> pending_offer_;
  bool receiving_busy_{false};
  SimTime calm_until_{};

  std::uint64_t next_offer_id_{0};
  std::uint64_t initiated_{0};
  std::uint64_t accepted_{0};
  std::uint64_t rejected_{0};
  std::uint64_t solicits_sent_{0};
  MigrationFn on_migration_;
};

}  // namespace dvemig::lb
