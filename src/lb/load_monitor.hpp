// The conductor's view of local resource consumption — the role atop plays in the
// paper (Section IV: "the conductor retrieves load information via the atop
// utility").
#pragma once

#include <vector>

#include "src/lb/load_info.hpp"
#include "src/proc/node.hpp"

namespace dvemig::lb {

class LoadMonitor {
 public:
  explicit LoadMonitor(proc::Node& node) : node_(&node) {}

  double node_utilization() const { return node_->cpu().node_utilization(); }
  double node_demand() const { return node_->cpu().node_demand(); }
  double capacity_cores() const { return node_->cpu().capacity_cores(); }

  /// Per-process CPU consumption over the last window, restricted to processes
  /// that actually exist on the node (filters out kernel-side accounting).
  std::vector<ProcessLoad> process_loads() const;

  LoadInfo snapshot(std::uint32_t node_key) const;

 private:
  proc::Node* node_;
};

}  // namespace dvemig::lb
