#include "src/lb/policies.hpp"

#include <cmath>

namespace dvemig::lb {

bool should_initiate(double local_util, double cluster_avg, const PolicyConfig& cfg) {
  if (local_util > cfg.overload_threshold) return true;
  return local_util - cluster_avg > cfg.imbalance_threshold;
}

bool should_solicit(double local_util, double cluster_avg, const PolicyConfig& cfg) {
  return cluster_avg - local_util > cfg.imbalance_threshold;
}

std::optional<net::Ipv4Addr> choose_solicit_target(double cluster_avg,
                                                   const std::vector<PeerView>& peers) {
  std::optional<net::Ipv4Addr> best;
  double best_util = cluster_avg;  // only peers above the average qualify
  for (const PeerView& peer : peers) {
    if (peer.utilization > best_util) {
      best = peer.addr;
      best_util = peer.utilization;
    }
  }
  return best;
}

std::optional<net::Ipv4Addr> choose_destination(double local_util, double cluster_avg,
                                                const std::vector<PeerView>& peers,
                                                const PolicyConfig& cfg) {
  (void)cfg;
  // Target: a node as far below the average as we are above it, so that moving
  // roughly (local - avg) worth of load makes both sides meet at the mean.
  const double target = cluster_avg - (local_util - cluster_avg);
  std::optional<net::Ipv4Addr> best;
  double best_dist = 0;
  for (const PeerView& peer : peers) {
    if (peer.utilization >= cluster_avg) continue;  // only the lighter side
    const double dist = std::abs(peer.utilization - target);
    if (!best || dist < best_dist) {
      best = peer.addr;
      best_dist = dist;
    }
  }
  return best;
}

std::optional<Pid> choose_process(double local_util, double cluster_avg,
                                  double capacity_cores,
                                  const std::vector<ProcessLoad>& processes,
                                  const PolicyConfig& cfg) {
  const double excess_cores = (local_util - cluster_avg) * capacity_cores;
  std::optional<Pid> best;
  double best_dist = 0;
  for (const ProcessLoad& p : processes) {
    if (p.cores < cfg.min_process_cores) continue;
    const double dist = std::abs(p.cores - excess_cores);
    if (!best || dist < best_dist) {
      best = p.pid;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace dvemig::lb
