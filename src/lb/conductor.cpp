#include "src/lb/conductor.hpp"

#include "src/common/log.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::lb {

namespace {

struct LbMetrics {
  obs::Counter& initiated;
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& solicits;
  obs::Counter& heartbeats;
  obs::Gauge& cluster_avg;

  static LbMetrics& get() {
    auto& reg = obs::Registry::instance();
    static LbMetrics m{
        reg.counter("lb.migrations_initiated"),
        reg.counter("lb.offers_accepted"),
        reg.counter("lb.offers_rejected"),
        reg.counter("lb.solicits_sent"),
        reg.counter("lb.heartbeats_sent"),
        reg.gauge("lb.cluster_avg_utilization"),
    };
    return m;
  }
};

}  // namespace

Conductor::Conductor(proc::Node& node, mig::Migd& migd, PolicyConfig cfg)
    : node_(&node), migd_(&migd), monitor_(node), cfg_(cfg) {}

void Conductor::start() {
  DVEMIG_EXPECTS(!running_);
  running_ = true;
  sock_ = node_->stack().make_udp();
  sock_->bind(node_->local_addr(), kCondPort);
  sock_->set_on_readable([this] { on_readable(); });

  // Discovery: the first broadcast announces this node; answers arrive as the
  // peers' own periodic broadcasts. Nodes get distinct phases so heartbeats do
  // not synchronise cluster-wide.
  const SimDuration phase =
      SimTime::milliseconds(37 * (node_->id().value % 16) + 11);
  heartbeat_timer_ = engine().schedule_after(phase, [this] { heartbeat(); });
}

void Conductor::stop() {
  running_ = false;
  heartbeat_timer_.cancel();
  offer_timer_.cancel();
  receive_guard_timer_.cancel();
  if (sock_) {
    sock_->close();
    sock_.reset();
  }
}

void Conductor::heartbeat() {
  if (!running_) return;
  LoadInfo info = monitor_.snapshot(node_->id().value);
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::load_info));
  info.serialize(w);
  sock_->send_to(net::Endpoint{net::Ipv4Addr::broadcast(), kCondPort}, w.take());
  LbMetrics::get().heartbeats.add(1);

  evaluate();
  heartbeat_timer_ = engine().schedule_after(cfg_.heartbeat, [this] { heartbeat(); });
}

void Conductor::on_readable() {
  while (auto dgram = sock_->recv()) {
    BinaryReader r(dgram->data);
    const auto type = static_cast<MsgType>(r.u8());
    switch (type) {
      case MsgType::load_info:
        handle_load_info(LoadInfo::deserialize(r));
        break;
      case MsgType::mig_offer: {
        const std::uint64_t offer_id = r.u64();
        const double est = r.f64();
        handle_offer(dgram->from, offer_id, est);
        break;
      }
      case MsgType::mig_accept:
        handle_accept(r.u64());
        break;
      case MsgType::mig_reject:
        handle_reject(r.u64());
        break;
      case MsgType::mig_release:
        handle_release();
        break;
      case MsgType::mig_solicit:
        handle_solicit(dgram->from);
        break;
    }
  }
}

void Conductor::handle_load_info(const LoadInfo& info) {
  if (info.node_local == node_->local_addr()) return;  // our own broadcast echo
  peers_[info.node_local] = PeerState{info, engine().now()};
}

std::vector<PeerView> Conductor::fresh_peers() const {
  std::vector<PeerView> views;
  const SimTime now = engine().now();
  for (const auto& [addr, peer] : peers_) {
    if (now - peer.last_seen > cfg_.peer_timeout) continue;  // lost heartbeat
    views.push_back(PeerView{addr, peer.info.utilization});
  }
  return views;
}

double Conductor::cluster_average() const {
  double sum = monitor_.node_utilization();
  std::size_t count = 1;
  for (const PeerView& peer : fresh_peers()) {
    sum += peer.utilization;
    count += 1;
  }
  return sum / static_cast<double>(count);
}

void Conductor::evaluate() {
  if (!enabled_ || calm()) return;

  const double local = monitor_.node_utilization();
  const double avg = cluster_average();
  LbMetrics::get().cluster_avg.set(avg);

  // Sender-initiated side (the paper's algorithm).
  if (cfg_.initiation != Initiation::receiver &&
      should_initiate(local, avg, cfg_)) {
    try_offer(std::nullopt);
  }

  // Receiver-initiated side: underloaded nodes advertise capacity to the most
  // loaded peer, which then runs the regular two-phase offer toward us.
  if ((cfg_.initiation == Initiation::receiver ||
       cfg_.initiation == Initiation::symmetric) &&
      !receiving_busy_ && should_solicit(local, avg, cfg_)) {
    if (const auto target = choose_solicit_target(avg, fresh_peers())) {
      solicits_sent_ += 1;
      LbMetrics::get().solicits.add(1);
      send_ctrl(*target, MsgType::mig_solicit, 0);
    }
  }
}

void Conductor::try_offer(std::optional<net::Ipv4Addr> forced_dest) {
  if (pending_offer_ || migd_->busy_sending()) return;
  const double local = monitor_.node_utilization();
  const double avg = cluster_average();

  std::optional<net::Ipv4Addr> dest = forced_dest;
  if (!dest) dest = choose_destination(local, avg, fresh_peers(), cfg_);
  if (!dest) return;
  const auto pid =
      choose_process(local, avg, monitor_.capacity_cores(), monitor_.process_loads(),
                     cfg_);
  if (!pid) return;

  // Phase one of the two-phase commit: offer the migration to the receiver.
  const std::uint64_t offer_id = ++next_offer_id_;
  pending_offer_ = PendingOffer{offer_id, *dest, *pid};
  send_ctrl(*dest, MsgType::mig_offer, offer_id,
            node_->cpu().process_cores(*pid));
  offer_timer_ = engine().schedule_after(cfg_.offer_timeout, [this, offer_id] {
    if (pending_offer_ && pending_offer_->offer_id == offer_id) {
      pending_offer_.reset();  // receiver silent: treat as reject
    }
  });
}

void Conductor::handle_solicit(net::Endpoint from) {
  if (!enabled_ || !running_ || calm()) return;
  const double local = monitor_.node_utilization();
  const double avg = cluster_average();
  // Only answer when genuinely on the heavy side; the solicitor becomes the
  // forced destination of the regular sender-side negotiation.
  if (local - avg <= cfg_.imbalance_threshold / 2) return;
  try_offer(from.addr);
}

void Conductor::handle_offer(net::Endpoint from, std::uint64_t offer_id,
                             double est_cores) {
  (void)est_cores;
  // Receiver-side transfer policy: accept a single migration at a time, only when
  // not calming down and genuinely on the light side of the cluster.
  const bool acceptable = enabled_ && running_ && !receiving_busy_ && !calm() &&
                          monitor_.node_utilization() < cluster_average();
  if (!acceptable) {
    send_ctrl(from.addr, MsgType::mig_reject, offer_id);
    return;
  }
  receiving_busy_ = true;
  // Safety guard: if the sender dies mid-migration, free the slot eventually.
  receive_guard_timer_ = engine().schedule_after(
      SimTime::seconds(30), [this] { receiving_busy_ = false; });
  send_ctrl(from.addr, MsgType::mig_accept, offer_id);
}

void Conductor::handle_accept(std::uint64_t offer_id) {
  if (!pending_offer_ || pending_offer_->offer_id != offer_id) return;
  const PendingOffer offer = *pending_offer_;
  offer_timer_.cancel();

  if (node_->find(offer.pid) == nullptr || migd_->busy_sending()) {
    pending_offer_.reset();
    send_ctrl(offer.dest, MsgType::mig_release, offer_id);
    return;
  }

  initiated_ += 1;
  LbMetrics::get().initiated.add(1);
  const bool started = migd_->migrate(
      offer.pid, offer.dest, strategy_, [this, offer](const mig::MigrationStats& s) {
        pending_offer_.reset();
        calm_until_ = engine().now() + cfg_.calm_down;
        send_ctrl(offer.dest, MsgType::mig_release, offer.offer_id);
        if (on_migration_) on_migration_(s);
      });
  if (!started) {
    pending_offer_.reset();
    send_ctrl(offer.dest, MsgType::mig_release, offer_id);
  }
}

void Conductor::handle_reject(std::uint64_t offer_id) {
  if (!pending_offer_ || pending_offer_->offer_id != offer_id) return;
  rejected_ += 1;
  LbMetrics::get().rejected.add(1);
  offer_timer_.cancel();
  pending_offer_.reset();
}

void Conductor::handle_release() {
  receive_guard_timer_.cancel();
  receiving_busy_ = false;
  calm_until_ = engine().now() + cfg_.calm_down;
  accepted_ += 1;
  LbMetrics::get().accepted.add(1);
}

void Conductor::send_ctrl(net::Ipv4Addr to, MsgType type, std::uint64_t offer_id,
                          double value) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(offer_id);
  w.f64(value);
  sock_->send_to(net::Endpoint{to, kCondPort}, w.take());
}

}  // namespace dvemig::lb
