// The four load-balancing policies (Section IV), as pure, unit-testable functions.
//
//  transfer  — threshold-driven sender initiation: a node becomes a migration
//              initiator when its load exceeds a critical threshold or diverges
//              from the approximated cluster average by more than a margin;
//  location  — find a peer whose load sits on the *opposite side* of the cluster
//              average by about the same amount, so both converge to the mean;
//  selection — pick the process whose CPU consumption best matches the local
//              node's excess over the cluster average;
//  information — periodic broadcast (implemented by the conductor itself).
#pragma once

#include <optional>
#include <vector>

#include "src/common/types.hpp"
#include "src/lb/load_info.hpp"

namespace dvemig::lb {

/// Who starts a migration negotiation (the taxonomy of the paper's reference
/// [17], Shivaratri/Krueger/Singhal): the paper's algorithm is sender-initiated;
/// the other two are provided as drop-in variants.
enum class Initiation : std::uint8_t {
  sender,    // overloaded nodes push work away (the paper's choice)
  receiver,  // underloaded nodes solicit work from loaded peers
  symmetric, // both
};

struct PolicyConfig {
  Initiation initiation{Initiation::sender};
  double overload_threshold{0.90};   // "local load is over a critical threshold"
  double imbalance_threshold{0.12};  // "difference ... exceeds a certain value"
  SimDuration heartbeat{SimTime::seconds(1)};
  SimDuration peer_timeout{SimTime::seconds(5)};
  SimDuration calm_down{SimTime::seconds(10)};  // post-migration stabilisation
  SimDuration offer_timeout{SimTime::milliseconds(500)};
  double min_process_cores{0.02};  // don't bother migrating near-idle processes
};

struct PeerView {
  net::Ipv4Addr addr{};
  double utilization{0};
};

/// Transfer policy, sender side.
bool should_initiate(double local_util, double cluster_avg, const PolicyConfig& cfg);

/// Transfer policy, receiver side (receiver-initiated variants): true when this
/// node is underloaded enough to go looking for work.
bool should_solicit(double local_util, double cluster_avg, const PolicyConfig& cfg);

/// Location policy for solicitation: the most loaded peer above the average.
std::optional<net::Ipv4Addr> choose_solicit_target(double cluster_avg,
                                                   const std::vector<PeerView>& peers);

/// Location policy: the peer whose load is closest to (avg - (local - avg)),
/// restricted to peers below the average. Empty if no suitable peer exists.
std::optional<net::Ipv4Addr> choose_destination(double local_util, double cluster_avg,
                                                const std::vector<PeerView>& peers,
                                                const PolicyConfig& cfg);

/// Selection policy: the process whose CPU usage best matches the node's excess
/// (local - avg) * capacity cores. Empty if nothing migratable is worth moving.
std::optional<Pid> choose_process(double local_util, double cluster_avg,
                                  double capacity_cores,
                                  const std::vector<ProcessLoad>& processes,
                                  const PolicyConfig& cfg);

}  // namespace dvemig::lb
