#include "src/lb/load_monitor.hpp"

#include "src/obs/metrics.hpp"

namespace dvemig::lb {

std::vector<ProcessLoad> LoadMonitor::process_loads() const {
  std::vector<ProcessLoad> loads;
  for (const auto& [pid, cores] : node_->cpu().per_process_cores()) {
    if (node_->find(pid) == nullptr) continue;  // kernel work or departed process
    loads.push_back(ProcessLoad{pid, cores});
  }
  return loads;
}

LoadInfo LoadMonitor::snapshot(std::uint32_t node_key) const {
  LoadInfo info;
  info.node_local = node_->local_addr();
  info.node_key = node_key;
  info.utilization = node_utilization();
  info.demand = node_demand();
  info.capacity_cores = capacity_cores();
  info.process_count = static_cast<std::uint32_t>(node_->processes().size());
  info.sent_at_ns = node_->engine().now().ns;
  obs::Registry::instance().counter("lb.load_samples").add(1);
  obs::Registry::instance()
      .histogram("lb.node_utilization",
                 {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.5, 2.0})
      .record(info.utilization);
  return info;
}

}  // namespace dvemig::lb
