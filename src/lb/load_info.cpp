#include "src/lb/load_info.hpp"

namespace dvemig::lb {

void LoadInfo::serialize(BinaryWriter& w) const {
  w.u32(node_local.value);
  w.u32(node_key);
  w.f64(utilization);
  w.f64(demand);
  w.f64(capacity_cores);
  w.u32(process_count);
  w.i64(sent_at_ns);
}

LoadInfo LoadInfo::deserialize(BinaryReader& r) {
  LoadInfo info;
  info.node_local.value = r.u32();
  info.node_key = r.u32();
  info.utilization = r.f64();
  info.demand = r.f64();
  info.capacity_cores = r.f64();
  info.process_count = r.u32();
  info.sent_at_ns = r.i64();
  return info;
}

}  // namespace dvemig::lb
