// Windowed per-node / per-process CPU accounting.
//
// This is what the paper's conductor reads through `atop` (Section IV): node
// utilisation and per-process CPU consumption over the last sampling window.
// Demand beyond the node's capacity saturates the *reported* utilisation at 100 %,
// like a real machine pegged at its core count; the raw demand stays available for
// the simulation's own bookkeeping.
#pragma once

#include <unordered_map>

#include "src/common/types.hpp"
#include "src/sim/engine.hpp"

namespace dvemig::proc {

class CpuMeter {
 public:
  CpuMeter(sim::Engine& engine, double capacity_cores,
           SimDuration window = SimTime::seconds(1))
      : engine_(&engine), capacity_(capacity_cores), window_(window) {}
  ~CpuMeter() { rollover_timer_.cancel(); }

  /// Begin periodic window rollover (call once the node is live).
  void start();
  void stop() { rollover_timer_.cancel(); }

  /// Charge `cpu` of CPU time to process `pid` in the current window.
  void account(Pid pid, SimDuration cpu);

  double capacity_cores() const { return capacity_; }

  /// Node utilisation over the last completed window, in [0, 1] (capped).
  double node_utilization() const;
  /// Uncapped demand over the last completed window (may exceed 1).
  double node_demand() const;
  /// CPU cores consumed by `pid` over the last completed window (0 if unknown).
  double process_cores(Pid pid) const;
  const std::unordered_map<Pid, double>& per_process_cores() const {
    return last_per_process_;
  }

 private:
  void rollover();

  sim::Engine* engine_;
  double capacity_;
  SimDuration window_;
  sim::TimerHandle rollover_timer_;

  // Current (accumulating) window.
  std::unordered_map<Pid, std::int64_t> cur_ns_;
  std::int64_t cur_total_ns_{0};
  // Last completed window, normalised to cores.
  std::unordered_map<Pid, double> last_per_process_;
  double last_total_cores_{0};
};

}  // namespace dvemig::proc
