// Process address space: vm_area list + per-page dirty bits.
//
// This is the surface the precopy mechanism works against (Section V-A): the
// dirty-bit scan (`collect_and_clear_dirty`) stands in for walking PTE dirty bits,
// and the vm_area list is what the migration's own tracking list is diffed against
// each incremental loop.
//
// Page *contents* are not stored — the simulator transfers synthetic bytes of the
// right size — so a multi-gigabyte simulated cluster fits in host memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"

namespace dvemig::proc {

inline constexpr std::uint64_t kPageSize = 4096;

enum ProtBits : std::uint32_t {
  prot_read = 1,
  prot_write = 2,
  prot_exec = 4,
};

struct VmArea {
  std::uint64_t start{0};   // page aligned
  std::uint64_t length{0};  // page aligned, > 0
  std::uint32_t prot{prot_read | prot_write};
  bool file_backed{false};
  std::string name;  // "[heap]", "[stack]", "libfoo.so", …

  std::uint64_t end() const { return start + length; }
  std::uint64_t pages() const { return length / kPageSize; }
  bool contains(std::uint64_t addr) const { return addr >= start && addr < end(); }
};

class AddressSpace {
 public:
  /// Map a new area; returns its start address (simple bump allocation).
  std::uint64_t mmap(std::uint64_t length, std::uint32_t prot, std::string name,
                     bool file_backed = false);

  /// Restore path: map an area at its exact original address. Pages arrive clean
  /// (their content was just transferred by the checkpoint).
  void map_fixed(const VmArea& area);

  /// Unmap the area starting at `start` (must match an existing area exactly).
  void munmap(std::uint64_t start);

  /// Change protection bits of the area starting at `start`.
  void mprotect(std::uint64_t start, std::uint32_t prot);

  const VmArea* find_area(std::uint64_t addr) const;
  const std::vector<VmArea>& areas() const { return areas_; }

  /// Write access: mark the touched pages dirty.
  void touch(std::uint64_t addr, std::uint64_t len);

  /// Dirty `count` randomly chosen writable pages (models application activity).
  void touch_random(Rng& rng, std::uint64_t count);

  /// The dirty-bit scan: return all dirty page numbers and clear their bits.
  std::vector<std::uint64_t> collect_and_clear_dirty();

  std::size_t dirty_pages() const { return dirty_.size(); }
  std::uint64_t total_pages() const;
  std::uint64_t total_bytes() const { return total_pages() * kPageSize; }

 private:
  std::vector<VmArea> areas_;  // sorted by start, non-overlapping
  std::unordered_set<std::uint64_t> dirty_;  // page numbers (addr / kPageSize)
  std::uint64_t next_addr_{0x10000};
};

}  // namespace dvemig::proc
