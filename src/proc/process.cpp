#include "src/proc/process.hpp"

#include "src/proc/node.hpp"

namespace dvemig::proc {

Process::Process(Node& node, Pid pid, std::string name)
    : node_(&node), pid_(pid), name_(std::move(name)), rng_(0xF00DULL ^ pid.value) {
  // Every process starts with a main thread and a default-ish signal table.
  add_thread();
  signal_handlers_[15 /*SIGTERM*/] = 0;
  signal_handlers_[10 /*SIGUSR1, BLCR's checkpoint signal*/] = 0xC0DE0000;
}

ThreadContext& Process::add_thread() {
  ThreadContext t;
  t.tid = next_tid_++;
  t.pc = 0x400000 + t.tid * 0x10;
  t.sp = 0x7FFF0000 - t.tid * 0x100000;
  for (std::size_t i = 0; i < t.gp_regs.size(); ++i) {
    t.gp_regs[i] = (std::uint64_t{pid_.value} << 32) | (t.tid << 8) | i;
  }
  threads_.push_back(t);
  return threads_.back();
}

void Process::freeze() {
  DVEMIG_EXPECTS(!frozen_);
  frozen_ = true;
  if (app_) app_->stop();
}

void Process::resume() {
  DVEMIG_EXPECTS(frozen_);
  frozen_ = false;
  if (app_) app_->start(*this);
}

void Process::account_cpu(SimDuration cpu) { node_->cpu().account(pid_, cpu); }

}  // namespace dvemig::proc
