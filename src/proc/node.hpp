// A DVE server node: two network interfaces (shared public IP + unique local IP),
// a network stack, a CPU meter and a set of processes.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/proc/cpu_meter.hpp"
#include "src/proc/process.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::proc {

struct NodeConfig {
  NodeId id{};
  std::string name;
  net::Ipv4Addr public_addr{};  // the cluster-wide shared IP
  net::Ipv4Addr local_addr{};   // unique in-cluster IP
  double cpu_cores{2.0};        // the paper's nodes: dual-core Opterons
  SimDuration clock_offset{SimTime::zero()};  // boot-time skew (drives jiffies)
};

class Node {
 public:
  Node(sim::Engine& engine, NodeConfig config);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return config_.id; }
  const std::string& name() const { return config_.name; }
  net::Ipv4Addr public_addr() const { return config_.public_addr; }
  net::Ipv4Addr local_addr() const { return config_.local_addr; }

  sim::Engine& engine() const { return *engine_; }
  stack::NetStack& stack() { return stack_; }
  CpuMeter& cpu() { return cpu_; }
  const CpuMeter& cpu() const { return cpu_; }

  /// Create a process on this node.
  std::shared_ptr<Process> spawn(std::string name);
  /// Adopt a process object restored by the migration machinery.
  void adopt(std::shared_ptr<Process> proc);
  /// Remove a process (end of migration on the source, or app exit).
  void kill(Pid pid);

  std::shared_ptr<Process> find(Pid pid) const;
  const std::map<Pid, std::shared_ptr<Process>>& processes() const {
    return processes_;
  }

  /// Cluster-unique pid allocation (shared across all nodes, like a cluster PID
  /// namespace — keeps pids stable across migrations).
  static Pid allocate_pid();
  /// Rewind the cluster pid counter to its boot value. Pids seed each
  /// process's workload RNG, so a harness that runs several simulations in
  /// one OS process must reset between runs to make them comparable — only
  /// safe once every Node from the previous run is gone.
  static void reset_pid_counter();

 private:
  sim::Engine* engine_;
  NodeConfig config_;
  stack::NetStack stack_;
  CpuMeter cpu_;
  std::map<Pid, std::shared_ptr<Process>> processes_;
};

}  // namespace dvemig::proc
