// Simulated process: threads, address space, fd table, signal handlers, app logic.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/proc/app_logic.hpp"
#include "src/proc/file_table.hpp"
#include "src/proc/memory.hpp"

namespace dvemig::proc {

class Node;

struct ThreadContext {
  std::uint32_t tid{0};
  std::array<std::uint64_t, 16> gp_regs{};  // synthetic register file
  std::uint64_t pc{0};
  std::uint64_t sp{0};
  std::uint64_t signal_mask{0};
};

class Process {
 public:
  Process(Node& node, Pid pid, std::string name);

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  Node& node() const { return *node_; }

  AddressSpace& mem() { return mem_; }
  const AddressSpace& mem() const { return mem_; }
  FileTable& files() { return files_; }
  const FileTable& files() const { return files_; }

  std::vector<ThreadContext>& threads() { return threads_; }
  const std::vector<ThreadContext>& threads() const { return threads_; }
  ThreadContext& add_thread();

  std::map<int, std::uint64_t>& signal_handlers() { return signal_handlers_; }
  const std::map<int, std::uint64_t>& signal_handlers() const {
    return signal_handlers_;
  }

  void set_app(std::shared_ptr<AppLogic> app) { app_ = std::move(app); }
  const std::shared_ptr<AppLogic>& app() const { return app_; }

  /// Freeze: app execution halts (migration freeze phase).
  void freeze();
  /// Resume after restore (or after an aborted migration).
  void resume();
  bool frozen() const { return frozen_; }

  /// Charge CPU time to this process on its node's meter.
  void account_cpu(SimDuration cpu);

  /// Deterministic per-process RNG (page-touch patterns, workload jitter).
  Rng& rng() { return rng_; }

 private:
  Node* node_;
  Pid pid_;
  std::string name_;
  AddressSpace mem_;
  FileTable files_;
  std::vector<ThreadContext> threads_;
  std::map<int, std::uint64_t> signal_handlers_;
  std::shared_ptr<AppLogic> app_;
  bool frozen_{false};
  Rng rng_;
  std::uint32_t next_tid_{1};
};

}  // namespace dvemig::proc
