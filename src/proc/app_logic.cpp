#include "src/proc/app_logic.hpp"

#include <unordered_map>

#include "src/common/assert.hpp"

namespace dvemig::proc {

namespace {
std::unordered_map<std::string, AppLogic::Factory>& registry() {
  static std::unordered_map<std::string, AppLogic::Factory> r;
  return r;
}
}  // namespace

void AppLogic::register_kind(const std::string& kind, Factory factory) {
  DVEMIG_EXPECTS(factory != nullptr);
  registry()[kind] = std::move(factory);  // idempotent re-registration allowed
}

bool AppLogic::is_registered(const std::string& kind) {
  return registry().contains(kind);
}

std::shared_ptr<AppLogic> AppLogic::create(const std::string& kind, BinaryReader& r) {
  const auto it = registry().find(kind);
  DVEMIG_EXPECTS(it != registry().end());
  return it->second(r);
}

}  // namespace dvemig::proc
