#include "src/proc/node.hpp"

namespace dvemig::proc {

Node::Node(sim::Engine& engine, NodeConfig config)
    : engine_(&engine),
      config_(std::move(config)),
      stack_(engine, config_.name, config_.clock_offset),
      cpu_(engine, config_.cpu_cores) {
  cpu_.start();
}

namespace {
std::uint32_t g_pid_counter = 1000;
}  // namespace

Pid Node::allocate_pid() { return Pid{++g_pid_counter}; }

void Node::reset_pid_counter() { g_pid_counter = 1000; }

std::shared_ptr<Process> Node::spawn(std::string name) {
  auto proc = std::make_shared<Process>(*this, allocate_pid(), std::move(name));
  processes_.emplace(proc->pid(), proc);
  return proc;
}

void Node::adopt(std::shared_ptr<Process> proc) {
  DVEMIG_EXPECTS(proc != nullptr);
  DVEMIG_EXPECTS(!processes_.contains(proc->pid()));
  processes_.emplace(proc->pid(), std::move(proc));
}

void Node::kill(Pid pid) {
  const auto it = processes_.find(pid);
  DVEMIG_EXPECTS(it != processes_.end());
  processes_.erase(it);
}

std::shared_ptr<Process> Node::find(Pid pid) const {
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second;
}

}  // namespace dvemig::proc
