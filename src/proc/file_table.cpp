#include "src/proc/file_table.hpp"

namespace dvemig::proc {

Fd FileTable::next_fd() {
  while (entries_.contains(next_fd_)) ++next_fd_;
  return next_fd_++;
}

Fd FileTable::open_file(std::string path, std::uint32_t flags) {
  const Fd fd = next_fd();
  entries_.emplace(fd, OpenFile{FileKind::regular, std::move(path), 0, flags, nullptr});
  return fd;
}

Fd FileTable::attach_socket(std::shared_ptr<stack::Socket> socket) {
  DVEMIG_EXPECTS(socket != nullptr);
  const Fd fd = next_fd();
  entries_.emplace(fd, OpenFile{FileKind::socket, {}, 0, 0, std::move(socket)});
  return fd;
}

void FileTable::attach_socket_at(Fd fd, std::shared_ptr<stack::Socket> socket) {
  DVEMIG_EXPECTS(socket != nullptr);
  DVEMIG_EXPECTS(!entries_.contains(fd));
  entries_.emplace(fd, OpenFile{FileKind::socket, {}, 0, 0, std::move(socket)});
}

void FileTable::open_file_at(Fd fd, std::string path, std::uint64_t offset,
                             std::uint32_t flags) {
  DVEMIG_EXPECTS(!entries_.contains(fd));
  entries_.emplace(fd, OpenFile{FileKind::regular, std::move(path), offset, flags, nullptr});
}

void FileTable::seek(Fd fd, std::uint64_t offset) {
  OpenFile& f = get(fd);
  DVEMIG_EXPECTS(f.kind == FileKind::regular);
  f.offset = offset;
}

void FileTable::close(Fd fd) {
  const auto it = entries_.find(fd);
  DVEMIG_EXPECTS(it != entries_.end());
  entries_.erase(it);
  if (fd < next_fd_) next_fd_ = fd;  // lowest-free-fd semantics, like POSIX
}

const OpenFile& FileTable::get(Fd fd) const {
  const auto it = entries_.find(fd);
  DVEMIG_EXPECTS(it != entries_.end());
  return it->second;
}

OpenFile& FileTable::get(Fd fd) {
  const auto it = entries_.find(fd);
  DVEMIG_EXPECTS(it != entries_.end());
  return it->second;
}

std::size_t FileTable::socket_count() const {
  std::size_t n = 0;
  for (const auto& [fd, f] : entries_) {
    if (f.kind == FileKind::socket) ++n;
  }
  return n;
}

}  // namespace dvemig::proc
