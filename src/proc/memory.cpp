#include "src/proc/memory.hpp"

#include <algorithm>

namespace dvemig::proc {

std::uint64_t AddressSpace::mmap(std::uint64_t length, std::uint32_t prot,
                                 std::string name, bool file_backed) {
  DVEMIG_EXPECTS(length > 0);
  length = (length + kPageSize - 1) / kPageSize * kPageSize;
  const std::uint64_t start = next_addr_;
  next_addr_ += length + kPageSize;  // one-page guard gap between areas

  VmArea area{start, length, prot, file_backed, std::move(name)};
  const auto pos = std::lower_bound(
      areas_.begin(), areas_.end(), area,
      [](const VmArea& a, const VmArea& b) { return a.start < b.start; });
  areas_.insert(pos, std::move(area));

  // Fresh anonymous memory has never been checkpointed: every page is dirty.
  // File-backed pages start clean — their contents live on the (shared) file
  // system and are never part of a checkpoint (BLCR re-opens files by path).
  if (!file_backed) {
    for (std::uint64_t p = start / kPageSize; p < (start + length) / kPageSize; ++p) {
      dirty_.insert(p);
    }
  }
  return start;
}

void AddressSpace::map_fixed(const VmArea& area) {
  DVEMIG_EXPECTS(area.start % kPageSize == 0 && area.length % kPageSize == 0 &&
                 area.length > 0);
  DVEMIG_EXPECTS(find_area(area.start) == nullptr &&
                 find_area(area.end() - 1) == nullptr);
  const auto pos = std::lower_bound(
      areas_.begin(), areas_.end(), area,
      [](const VmArea& a, const VmArea& b) { return a.start < b.start; });
  areas_.insert(pos, area);
  next_addr_ = std::max(next_addr_, area.end() + kPageSize);
}

void AddressSpace::munmap(std::uint64_t start) {
  const auto it = std::find_if(areas_.begin(), areas_.end(),
                               [&](const VmArea& a) { return a.start == start; });
  DVEMIG_EXPECTS(it != areas_.end());
  for (std::uint64_t p = it->start / kPageSize; p < it->end() / kPageSize; ++p) {
    dirty_.erase(p);
  }
  areas_.erase(it);
}

void AddressSpace::mprotect(std::uint64_t start, std::uint32_t prot) {
  const auto it = std::find_if(areas_.begin(), areas_.end(),
                               [&](const VmArea& a) { return a.start == start; });
  DVEMIG_EXPECTS(it != areas_.end());
  it->prot = prot;
}

const VmArea* AddressSpace::find_area(std::uint64_t addr) const {
  for (const VmArea& a : areas_) {
    if (a.contains(addr)) return &a;
  }
  return nullptr;
}

void AddressSpace::touch(std::uint64_t addr, std::uint64_t len) {
  DVEMIG_EXPECTS(len > 0);
  const VmArea* area = find_area(addr);
  DVEMIG_EXPECTS(area != nullptr && area->contains(addr + len - 1));
  DVEMIG_EXPECTS((area->prot & prot_write) != 0);
  for (std::uint64_t p = addr / kPageSize; p <= (addr + len - 1) / kPageSize; ++p) {
    dirty_.insert(p);
  }
}

void AddressSpace::touch_random(Rng& rng, std::uint64_t count) {
  // Collect writable page ranges once; pick uniformly among them.
  std::vector<const VmArea*> writable;
  std::uint64_t total = 0;
  for (const VmArea& a : areas_) {
    if ((a.prot & prot_write) != 0) {
      writable.push_back(&a);
      total += a.pages();
    }
  }
  if (total == 0) return;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t k = rng.next_below(total);
    for (const VmArea* a : writable) {
      if (k < a->pages()) {
        dirty_.insert(a->start / kPageSize + k);
        break;
      }
      k -= a->pages();
    }
  }
}

std::vector<std::uint64_t> AddressSpace::collect_and_clear_dirty() {
  std::vector<std::uint64_t> pages(dirty_.begin(), dirty_.end());
  std::sort(pages.begin(), pages.end());
  dirty_.clear();
  return pages;
}

std::uint64_t AddressSpace::total_pages() const {
  std::uint64_t n = 0;
  for (const VmArea& a : areas_) n += a.pages();
  return n;
}

}  // namespace dvemig::proc
