// Application behaviour attached to a simulated process.
//
// Live migration moves a process *with* its logical state: the app's state rides in
// the checkpoint image as an opaque blob (in reality it lives in the address space
// pages; here it is serialized explicitly because pages carry no content). A kind
// registry reconstructs the right AppLogic subclass on the destination node.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/common/serial.hpp"

namespace dvemig::proc {

class Process;

class AppLogic {
 public:
  virtual ~AppLogic() = default;

  /// Registry key identifying the concrete type (e.g. "zone_server").
  virtual std::string kind() const = 0;

  /// Serialize logical state into the checkpoint image.
  virtual void serialize(BinaryWriter& w) const = 0;

  /// Begin (or resume) execution on the process's current node: schedule ticks,
  /// re-attach socket callbacks by fd, etc.
  virtual void start(Process& proc) = 0;

  /// Halt execution (cancel timers); called when the process freezes.
  virtual void stop() = 0;

  using Factory = std::function<std::shared_ptr<AppLogic>(BinaryReader&)>;

  static void register_kind(const std::string& kind, Factory factory);
  static bool is_registered(const std::string& kind);
  static std::shared_ptr<AppLogic> create(const std::string& kind, BinaryReader& r);
};

}  // namespace dvemig::proc
