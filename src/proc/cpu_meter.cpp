#include "src/proc/cpu_meter.hpp"

#include <algorithm>

namespace dvemig::proc {

void CpuMeter::start() {
  rollover_timer_ = engine_->schedule_after(window_, [this] { rollover(); });
}

void CpuMeter::rollover() {
  last_per_process_.clear();
  const double window_s = window_.to_sec();
  for (const auto& [pid, ns] : cur_ns_) {
    last_per_process_[pid] = static_cast<double>(ns) / 1e9 / window_s;
  }
  last_total_cores_ = static_cast<double>(cur_total_ns_) / 1e9 / window_s;
  cur_ns_.clear();
  cur_total_ns_ = 0;
  rollover_timer_ = engine_->schedule_after(window_, [this] { rollover(); });
}

void CpuMeter::account(Pid pid, SimDuration cpu) {
  DVEMIG_EXPECTS(cpu.ns >= 0);
  cur_ns_[pid] += cpu.ns;
  cur_total_ns_ += cpu.ns;
}

double CpuMeter::node_utilization() const {
  return std::min(1.0, node_demand());
}

double CpuMeter::node_demand() const {
  return capacity_ > 0 ? last_total_cores_ / capacity_ : 0.0;
}

double CpuMeter::process_cores(Pid pid) const {
  const auto it = last_per_process_.find(pid);
  return it == last_per_process_.end() ? 0.0 : it->second;
}

}  // namespace dvemig::proc
