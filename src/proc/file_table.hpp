// Per-process file descriptor table.
//
// The freeze phase iterates this table (Section III-C): regular files are re-opened
// by path on the destination (contents are assumed shared/replicated, Section II-A),
// while sockets take the collective socket-migration path.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"
#include "src/stack/socket.hpp"

namespace dvemig::proc {

enum class FileKind : std::uint8_t { regular, socket };

struct OpenFile {
  FileKind kind{FileKind::regular};
  // regular
  std::string path;
  std::uint64_t offset{0};
  std::uint32_t flags{0};
  // socket
  std::shared_ptr<stack::Socket> socket;
};

class FileTable {
 public:
  Fd open_file(std::string path, std::uint32_t flags = 0);
  Fd attach_socket(std::shared_ptr<stack::Socket> socket);
  /// Attach at a specific fd (restore path rebuilds the exact table).
  void attach_socket_at(Fd fd, std::shared_ptr<stack::Socket> socket);
  void open_file_at(Fd fd, std::string path, std::uint64_t offset, std::uint32_t flags);

  void seek(Fd fd, std::uint64_t offset);
  void close(Fd fd);

  const OpenFile& get(Fd fd) const;
  OpenFile& get(Fd fd);
  bool has(Fd fd) const { return entries_.contains(fd); }

  const std::map<Fd, OpenFile>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t socket_count() const;

 private:
  Fd next_fd();
  std::map<Fd, OpenFile> entries_;  // ordered: freeze-phase iteration is by fd
  Fd next_fd_{3};                   // 0-2 notionally stdio
};

}  // namespace dvemig::proc
