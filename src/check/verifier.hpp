// dvemig-verify — opt-in runtime auditor for cross-module invariants.
//
// The simulator's numbers only mean something if its state machines are honest:
// a silently corrupted socket table or an out-of-order migration handshake
// produces plausible-looking but wrong reproductions of the paper's figures.
// The Verifier hooks the discrete-event engine and, after every event (or every
// N events), re-derives the invariants the rest of the code merely assumes:
//
//  - SocketTable bijectivity: every ehash entry points at a live, hashed,
//    correctly-keyed TCP socket, and — via the stack's socket registry — every
//    socket that *claims* to be hashed really is in the table (Section V-C
//    unhash/rehash discipline). Same for bhash, plus the established-local-port
//    refcounts used by ephemeral allocation.
//  - TCP sequence-space sanity: snd_una <= snd_nxt, the write queue is
//    contiguous and brackets snd_una/snd_nxt, the out-of-order queue holds only
//    in-window segments beyond rcv_nxt, the receive queue is contiguous and its
//    byte counter is exact, and the lock-modelling queues (backlog/prequeue) are
//    empty unless the corresponding lock state justifies them.
//  - Capture dedup: no capture session queues two TCP packets with the same
//    (src, sport, dport, seq) — the paper's loss prevention stores duplicates
//    only once (Section V-B).
//  - Protocol ordering: every migd FrameChannel is checked against the paper's
//    migration state machine (see protocol_checker.hpp).
//
// A violation is a bug in the simulator, not a recoverable condition: by default
// the Verifier aborts with a diagnostic, exactly like DVEMIG_ASSERT. Tests that
// deliberately corrupt state set abort_on_violation = false and inspect
// violations() instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/protocol_checker.hpp"
#include "src/mig/capture.hpp"
#include "src/sim/engine.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::check {

struct Violation {
  std::string rule;    // dotted id, e.g. "ehash.key-mismatch"
  std::string detail;  // human-readable context
};

struct VerifierConfig {
  /// Audit after every Nth engine event (1 = every event).
  std::uint64_t every_n_events{1};
  /// Abort the process on the first violation (DVEMIG_ASSERT semantics).
  bool abort_on_violation{true};
  /// Cap on stored Violation records (the counter keeps counting past it).
  std::size_t max_recorded{256};
};

class Verifier final : public mig::FrameChannel::Observer {
 public:
  explicit Verifier(sim::Engine& engine, VerifierConfig cfg = {});
  ~Verifier() override;
  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  /// Audit this stack's socket tables and TCP control blocks. The stack must
  /// outlive the Verifier.
  void watch_stack(const stack::NetStack& st);
  /// Audit this capture manager's dedup invariant. Must outlive the Verifier.
  void watch_capture(const mig::CaptureManager& cm);

  /// Run every registered audit immediately (also what the engine hook calls).
  void audit_now();

  std::uint64_t audits_run() const { return audits_; }
  /// Individual invariant evaluations across all audits (cheap progress proof
  /// that the auditor actually looked at something).
  std::uint64_t checks_run() const { return checks_; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violation_count_ == 0; }

  ProtocolChecker& protocol() { return protocol_; }

  // --- mig::FrameChannel::Observer ---
  void on_channel_frame(const mig::FrameChannel& ch, bool outbound,
                        mig::MsgType type, std::size_t payload_len) override;
  void on_channel_closed(const mig::FrameChannel& ch) override;

 private:
  void on_event();
  void report(const std::string& rule, const std::string& detail);
  void audit_stack(const stack::NetStack& st);
  void audit_tcp(const stack::NetStack& st, const stack::FourTuple& key,
                 const stack::TcpSocket& tcp);
  void audit_capture(const mig::CaptureManager& cm);
  bool check(bool ok, const stack::NetStack& st, std::uint64_t sock_id,
             const char* rule, const char* what);

  sim::Engine* engine_;
  VerifierConfig cfg_;
  std::vector<const stack::NetStack*> stacks_;
  std::vector<const mig::CaptureManager*> captures_;
  std::vector<Violation> violations_;
  std::uint64_t violation_count_{0};
  std::uint64_t events_seen_{0};
  std::uint64_t audits_{0};
  std::uint64_t checks_{0};
  ProtocolChecker protocol_;
};

}  // namespace dvemig::check
