#include "src/check/verifier.hpp"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/common/log.hpp"
#include "src/stack/tcp_socket.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::check {

using stack::FourTuple;
using stack::NetStack;
using stack::Socket;
using stack::SocketType;
using stack::TcpSocket;
using stack::TcpState;
using stack::UdpSocket;
using stack::seq_le;
using stack::seq_lt;

Verifier::Verifier(sim::Engine& engine, VerifierConfig cfg)
    : engine_(&engine),
      cfg_(cfg),
      protocol_([this](const std::string& rule, const std::string& detail) {
        report(rule, detail);
      }) {
  DVEMIG_EXPECTS(cfg_.every_n_events >= 1);
  engine_->set_post_event_hook([this] { on_event(); });
  mig::FrameChannel::set_observer(this);
}

Verifier::~Verifier() {
  engine_->set_post_event_hook(nullptr);
  if (mig::FrameChannel::observer() == this) {
    mig::FrameChannel::set_observer(nullptr);
  }
}

void Verifier::watch_stack(const NetStack& st) { stacks_.push_back(&st); }

void Verifier::watch_capture(const mig::CaptureManager& cm) {
  captures_.push_back(&cm);
}

void Verifier::on_event() {
  events_seen_ += 1;
  if (events_seen_ % cfg_.every_n_events == 0) audit_now();
}

void Verifier::audit_now() {
  audits_ += 1;
  for (const NetStack* st : stacks_) audit_stack(*st);
  for (const mig::CaptureManager* cm : captures_) audit_capture(*cm);
}

void Verifier::report(const std::string& rule, const std::string& detail) {
  violation_count_ += 1;
  if (violations_.size() < cfg_.max_recorded) {
    violations_.push_back(Violation{rule, detail});
  }
  DVEMIG_ERROR("verify", "[%s] %s", rule.c_str(), detail.c_str());
  if (cfg_.abort_on_violation) {
    detail::contract_failure("dvemig-verify invariant", detail.c_str(),
                             rule.c_str(), 0);
  }
}

bool Verifier::check(bool ok, const NetStack& st, std::uint64_t sock_id,
                     const char* rule, const char* what) {
  checks_ += 1;
  if (!ok) {
    report(rule, "stack '" + st.name() + "' sock#" + std::to_string(sock_id) +
                     ": " + what);
  }
  return ok;
}

void Verifier::audit_tcp(const NetStack& st, const FourTuple& key,
                         const TcpSocket& tcp) {
  const auto& cb = tcp.cb();
  const std::uint64_t id = tcp.sock_id();

  check(!tcp.migration_disabled(), st, id, "ehash.disabled-socket",
        "migration-disabled socket still hashed");
  check(tcp.hashed_established(), st, id, "ehash.flag-mismatch",
        "socket in ehash but hashed_established() is false");
  check(key.local == tcp.local() && key.remote == tcp.remote(), st, id,
        "ehash.key-mismatch", "ehash key differs from socket endpoints");
  check(cb.state != TcpState::closed && cb.state != TcpState::listen, st, id,
        "ehash.bad-state", "closed/listening socket in ehash");

  // --- send sequence space ---
  check(seq_le(cb.snd_una, cb.snd_nxt), st, id, "tcp.snd-una-ahead",
        "snd_una is ahead of snd_nxt");
  const auto& wq = cb.write_queue;
  for (std::size_t i = 0; i + 1 < wq.size(); ++i) {
    if (!check(wq[i + 1].seq == wq[i].end_seq(), st, id, "tcp.write-queue-gap",
               "write queue segments are not contiguous")) {
      break;
    }
  }
  if (!wq.empty()) {
    check(seq_le(wq.front().seq, cb.snd_una), st, id, "tcp.write-queue-head",
          "acked data still heads the write queue");
    check(seq_lt(cb.snd_una, wq.front().end_seq()), st, id,
          "tcp.write-queue-stale", "fully acked segment not popped");
    check(seq_le(cb.snd_nxt, wq.back().end_seq()), st, id, "tcp.snd-nxt-runaway",
          "snd_nxt beyond the end of the write queue");
  } else {
    check(cb.snd_una == cb.snd_nxt, st, id, "tcp.inflight-without-queue",
          "bytes in flight but the write queue is empty");
  }

  // --- receive sequence space ---
  std::size_t rx_bytes = 0;
  for (std::size_t i = 0; i < cb.receive_queue.size(); ++i) {
    rx_bytes += cb.receive_queue[i].data.size();
    if (i + 1 < cb.receive_queue.size()) {
      const auto& cur = cb.receive_queue[i];
      const auto& nxt = cb.receive_queue[i + 1];
      if (!check(nxt.seq == cur.seq + static_cast<std::uint32_t>(cur.data.size()),
                 st, id, "tcp.receive-queue-gap",
                 "receive queue segments are not contiguous")) {
        break;
      }
    }
  }
  check(rx_bytes == cb.receive_queue_bytes, st, id, "tcp.rx-byte-counter",
        "receive_queue_bytes disagrees with the queue contents");

  for (const auto& [seq, seg] : cb.ooo_queue) {
    check(seq == seg.seq, st, id, "tcp.ooo-key-mismatch",
          "ooo map key differs from the segment's seq");
    check(stack::seq_gt(seq, cb.rcv_nxt), st, id, "tcp.ooo-not-beyond-rcv-nxt",
          "ooo segment at or before rcv_nxt was never drained");
    check(seq - cb.rcv_nxt < cb.rcv_wnd_max, st, id, "tcp.ooo-out-of-window",
          "ooo segment outside the receive window");
    check(!seg.data.empty() || seg.fin, st, id, "tcp.ooo-empty",
          "empty non-FIN segment buffered out of order");
  }

  // --- socket-lock queues (Section V-C1) ---
  check(cb.user_locked || cb.backlog.empty(), st, id, "tcp.backlog-unlocked",
        "backlog packets without the user lock held");
  check(cb.blocked_reader || cb.prequeue.empty(), st, id, "tcp.prequeue-no-reader",
        "prequeue packets without a blocked reader");
}

void Verifier::audit_stack(const NetStack& st) {
  const stack::SocketTable& table = st.table();

  // Table -> socket direction, plus the per-port established refcounts.
  std::unordered_map<std::uint16_t, std::uint32_t> port_refs;
  table.for_each_established(
      [&](const FourTuple& key, const std::shared_ptr<TcpSocket>& sock) {
        if (!check(sock != nullptr, st, 0, "ehash.null", "null ehash entry")) {
          return;
        }
        port_refs[key.local.port] += 1;
        audit_tcp(st, key, *sock);
      });
  for (const auto& [port, refs] : port_refs) {
    check(table.tcp_local_port_refs(port) == refs, st, 0, "ehash.port-refcount",
          "established local-port refcount disagrees with ehash");
  }
  check(table.tcp_tracked_port_count() == port_refs.size(), st, 0,
        "ehash.port-refcount-stale",
        "refcount table tracks ports with no established socket");

  table.for_each_bound([&](net::Port port, const std::shared_ptr<Socket>& sock) {
    if (!check(sock != nullptr, st, 0, "bhash.null", "null bhash entry")) return;
    const std::uint64_t id = sock->sock_id();
    check(port != 0, st, id, "bhash.port-zero", "socket bound to port 0");
    check(sock->local().port == port, st, id, "bhash.key-mismatch",
          "bhash key differs from the socket's local port");
    if (sock->type() == SocketType::tcp) {
      const auto& tcp = static_cast<const TcpSocket&>(*sock);
      check(tcp.hashed_bound(), st, id, "bhash.flag-mismatch",
            "TCP socket in bhash but hashed_bound() is false");
      check(tcp.state() == TcpState::listen, st, id, "bhash.tcp-not-listening",
            "non-listening TCP socket in bhash");
    } else {
      const auto& udp = static_cast<const UdpSocket&>(*sock);
      check(udp.cb().bound, st, id, "bhash.flag-mismatch",
            "UDP socket in bhash but cb().bound is false");
      check(!udp.migration_disabled(), st, id, "bhash.disabled-socket",
            "migration-disabled UDP socket still hashed");
    }
  });

  // Socket -> table direction: every socket claiming to be hashed is findable.
  st.for_each_socket([&](const Socket& sock) {
    const std::uint64_t id = sock.sock_id();
    if (sock.type() == SocketType::tcp) {
      const auto& tcp = static_cast<const TcpSocket&>(sock);
      if (tcp.hashed_established()) {
        const auto found =
            table.ehash_lookup(FourTuple{tcp.local(), tcp.remote()});
        check(found.get() == &tcp, st, id, "ehash.dangling-flag",
              "hashed_established() set but the socket is not in ehash");
      }
      if (tcp.hashed_bound()) {
        const auto bucket = table.bhash_lookup(tcp.local().port);
        const bool present = std::any_of(
            bucket.begin(), bucket.end(),
            [&](const auto& s) { return s.get() == &tcp; });
        check(present, st, id, "bhash.dangling-flag",
              "hashed_bound() set but the socket is not in bhash");
      }
    } else {
      const auto& udp = static_cast<const UdpSocket&>(sock);
      if (udp.cb().bound && !udp.migration_disabled()) {
        const auto bucket = table.bhash_lookup(udp.local().port);
        const bool present = std::any_of(
            bucket.begin(), bucket.end(),
            [&](const auto& s) { return s.get() == &udp; });
        check(present, st, id, "bhash.dangling-flag",
              "bound UDP socket is not in bhash");
      }
    }
  });
}

void Verifier::audit_capture(const mig::CaptureManager& cm) {
  // Per session: the queue must not hold two TCP packets with the same sequence
  // identity — the dedup set exists precisely to prevent this (Section V-B).
  std::unordered_map<std::uint64_t,
                     std::set<std::tuple<std::uint32_t, std::uint16_t,
                                         std::uint16_t, std::uint32_t>>>
      seen;
  cm.for_each_queued([&](std::uint64_t session, const net::Packet& p) {
    checks_ += 1;
    if (p.proto != net::IpProto::tcp) return;
    const auto key =
        std::make_tuple(p.src.value, p.tcp.sport, p.tcp.dport, p.tcp.seq);
    if (!seen[session].insert(key).second) {
      report("capture.duplicate-seq",
             "capture session " + std::to_string(session) +
                 " queues TCP seq " + std::to_string(p.tcp.seq) + " twice");
    }
  });
}

void Verifier::on_channel_frame(const mig::FrameChannel& ch, bool outbound,
                                mig::MsgType type, std::size_t payload_len) {
  (void)payload_len;
  protocol_.on_frame(&ch, outbound, type);
}

void Verifier::on_channel_closed(const mig::FrameChannel& ch) {
  protocol_.on_closed(&ch);
}

}  // namespace dvemig::check
