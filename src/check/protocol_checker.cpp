#include "src/check/protocol_checker.hpp"

#include <cstdio>

namespace dvemig::check {

using mig::MsgType;

void ProtocolChecker::violation(const void* chan, const char* rule, const Chan& st,
                                bool outbound, MsgType type, const char* extra) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "channel %p (%s): %s frame %s%s%s", chan,
                st.role == Role::source   ? "source"
                : st.role == Role::dest   ? "dest"
                                          : "role-unknown",
                outbound ? "outbound" : "inbound", mig::msg_type_name(type),
                extra[0] != '\0' ? " — " : "", extra);
  report_(rule, buf);
}

void ProtocolChecker::on_frame(const void* chan, bool outbound, MsgType type) {
  frames_seen_ += 1;
  Chan& st = channels_[chan];

  // Role inference: the first frame on a well-formed channel is mig_begin
  // (primary) or stripe_hello (secondary stripe channel), and only the source
  // emits either. The only other legal opener is mig_abort (a dest that
  // rejected an unparseable stream before ever seeing mig_begin).
  const bool first = st.role == Role::unknown && !st.begun && !st.aborted;
  if (first) {
    if (type == MsgType::mig_begin || type == MsgType::stripe_hello) {
      st.role = outbound ? Role::source : Role::dest;
    } else if (type != MsgType::mig_abort) {
      violation(chan, "protocol.first-frame", st, outbound, type,
                "expected mig_begin to open the channel");
      // Keep tracking with a best-effort role so one bad opener does not mute
      // every later check on the channel.
      st.role = outbound ? Role::source : Role::dest;
    }
  }

  if (st.aborted) {
    violation(chan, "protocol.frame-after-abort", st, outbound, type, "");
    return;
  }
  if (st.resumed) {
    violation(chan, "protocol.frame-after-resume", st, outbound, type, "");
    return;
  }

  if (type == MsgType::mig_abort) {
    st.aborted = true;
    return;
  }

  // Direction of this frame in protocol terms: true = source-to-dest.
  const bool s2d = (st.role == Role::source) == outbound;

  // A stripe channel carries only stripe segments (plus the terminal mig_abort
  // already handled above). Control frames and replies stay on the primary.
  if (st.is_stripe && type != MsgType::stripe_seg &&
      type != MsgType::stripe_hello) {
    violation(chan, "protocol.frame-on-stripe-channel", st, outbound, type,
              "only stripe segments travel on a stripe channel");
    return;
  }

  auto require_s2d = [&](bool want) {
    if (st.role == Role::unknown) return true;  // cannot judge direction
    if (s2d != want) {
      violation(chan, "protocol.direction", st, outbound, type,
                want ? "only the source sends this" : "only the dest sends this");
      return false;
    }
    return true;
  };

  switch (type) {
    case MsgType::mig_begin:
      require_s2d(true);
      if (st.begun) {
        violation(chan, "protocol.duplicate-begin", st, outbound, type, "");
      }
      st.begun = true;
      return;

    case MsgType::memory_delta:
      require_s2d(true);
      if (!st.begun) {
        violation(chan, "protocol.before-begin", st, outbound, type, "");
      }
      if (st.image_seen) {
        violation(chan, "protocol.delta-after-image", st, outbound, type,
                  "memory_delta after the final process image");
      }
      return;

    case MsgType::capture_request:
      require_s2d(true);
      if (!st.begun) {
        violation(chan, "protocol.before-begin", st, outbound, type, "");
      }
      if (st.image_seen) {
        violation(chan, "protocol.capture-after-image", st, outbound, type, "");
      }
      st.outstanding_captures += 1;
      return;

    case MsgType::capture_enabled:
      require_s2d(false);
      if (st.outstanding_captures == 0) {
        violation(chan, "protocol.capture-enabled-unrequested", st, outbound, type,
                  "no capture_request outstanding (duplicate or spurious ack)");
        return;
      }
      st.outstanding_captures -= 1;
      st.captures_enabled += 1;
      return;

    case MsgType::socket_state:
      require_s2d(true);
      if (!st.begun) {
        violation(chan, "protocol.before-begin", st, outbound, type, "");
      }
      if (st.image_seen) {
        violation(chan, "protocol.socket-after-image", st, outbound, type,
                  "socket state after the final process image");
      }
      st.outstanding_socket_states += 1;
      st.socket_states += 1;
      return;

    case MsgType::socket_ack:
      require_s2d(false);
      if (st.outstanding_socket_states == 0) {
        violation(chan, "protocol.ack-unrequested", st, outbound, type,
                  "no socket_state outstanding");
        return;
      }
      st.outstanding_socket_states -= 1;
      return;

    case MsgType::process_image:
      require_s2d(true);
      if (!st.begun) {
        violation(chan, "protocol.before-begin", st, outbound, type, "");
      }
      if (st.image_seen) {
        violation(chan, "protocol.duplicate-image", st, outbound, type, "");
      }
      // Section V-B ordering: the loss-prevention filters must be armed before
      // the freeze-phase transfer completes. A migration that moved socket state
      // but never saw capture_enabled would drop in-flight packets.
      if (st.captures_enabled == 0 && st.socket_states > 0) {
        violation(chan, "protocol.image-before-capture", st, outbound, type,
                  "process_image with socket state but no capture_enabled");
      }
      if (st.outstanding_captures != 0) {
        violation(chan, "protocol.image-while-capture-pending", st, outbound, type,
                  "process_image before every capture_request was acknowledged");
      }
      st.image_seen = true;
      return;

    case MsgType::resume_done:
      require_s2d(false);
      if (!st.image_seen) {
        violation(chan, "protocol.resume-before-image", st, outbound, type, "");
      }
      st.resumed = true;
      return;

    case MsgType::stripe_hello:
      require_s2d(true);
      if (!first) {
        violation(chan, "protocol.stripe-hello-misplaced", st, outbound, type,
                  "stripe_hello must be the channel's first frame");
      }
      st.is_stripe = true;
      return;

    case MsgType::stripe_seg:
      require_s2d(true);
      // Legal on a declared stripe channel, and on the primary once the
      // migration has begun (the primary doubles as stripe 0 at degree > 1).
      if (!st.is_stripe && !st.begun) {
        violation(chan, "protocol.stripe-seg-unexpected", st, outbound, type,
                  "stripe segment without stripe_hello or mig_begin");
      }
      return;

    case MsgType::mig_abort:
      return;  // handled above
  }
}

}  // namespace dvemig::check
