// Migration-protocol state-machine checker (one third of dvemig-verify).
//
// The paper's mechanism is a strict ordering (Sections III, V): mig_begin, then
// precopy deltas, then — inside the freeze — capture filters armed *before* any
// socket state ships and before the process image is transferred, then exactly
// one resume_done. A frame that arrives out of that order means the simulator's
// migd would have fabricated a migration the real kernel module could not have
// performed, so the checker treats every observed channel as an independent
// state machine and reports any illegal transition.
//
// The checker is deliberately decoupled from FrameChannel: it consumes
// (channel id, direction, type) triples, so unit tests can replay arbitrary
// sequences without sockets, and the Verifier can feed it from the live
// FrameChannel observer hook.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/mig/protocol.hpp"

namespace dvemig::check {

class ProtocolChecker {
 public:
  using ReportFn =
      std::function<void(const std::string& rule, const std::string& detail)>;

  explicit ProtocolChecker(ReportFn report) : report_(std::move(report)) {}

  /// Observe one frame on channel `chan` (any stable per-endpoint id).
  /// `outbound` is from that endpoint's point of view: the same logical frame is
  /// seen outbound on the sender's channel and inbound on the receiver's.
  void on_frame(const void* chan, bool outbound, mig::MsgType type);

  /// Forget a channel (its endpoint was destroyed).
  void on_closed(const void* chan) { channels_.erase(chan); }

  std::size_t active_channels() const { return channels_.size(); }
  std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  // Which end of the migd<->migd connection this channel belongs to, inferred
  // from the direction the first mig_begin travels in.
  enum class Role { unknown, source, dest };

  struct Chan {
    Role role{Role::unknown};
    bool begun{false};         // mig_begin observed
    bool is_stripe{false};     // stripe_hello opened the channel (data-only)
    bool image_seen{false};    // process_image observed (freeze is committed)
    bool resumed{false};       // resume_done observed
    bool aborted{false};       // mig_abort observed (terminal)
    int outstanding_captures{0};      // capture_request sent, enabled pending
    int outstanding_socket_states{0}; // socket_state sent, ack pending
    int captures_enabled{0};
    int socket_states{0};
  };

  void violation(const void* chan, const char* rule, const Chan& st, bool outbound,
                 mig::MsgType type, const char* extra);

  std::unordered_map<const void*, Chan> channels_;
  std::uint64_t frames_seen_{0};
  ReportFn report_;
};

}  // namespace dvemig::check
