// Checkpoint image structures (the BLCR-equivalent layer).
//
// A ProcessImage carries everything the freeze phase transfers *except* sockets,
// which take the dedicated socket-migration path (src/mig). Byte sizes of the
// serialized forms are measured quantities in the experiments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/serial.hpp"
#include "src/common/types.hpp"
#include "src/proc/process.hpp"

namespace dvemig::ckpt {

struct VmAreaImage {
  std::uint64_t start{0};
  std::uint64_t length{0};
  std::uint32_t prot{0};
  bool file_backed{false};
  std::string name;

  static VmAreaImage from(const proc::VmArea& a) {
    return VmAreaImage{a.start, a.length, a.prot, a.file_backed, a.name};
  }
  proc::VmArea to_area() const {
    return proc::VmArea{start, length, prot, file_backed, name};
  }
  bool same_extent(const VmAreaImage& o) const {
    return start == o.start && length == o.length && prot == o.prot;
  }
};

struct ThreadImage {
  std::uint32_t tid{0};
  std::array<std::uint64_t, 16> gp_regs{};
  std::uint64_t pc{0};
  std::uint64_t sp{0};
  std::uint64_t signal_mask{0};
};

struct FileImage {
  Fd fd{-1};
  std::string path;
  std::uint64_t offset{0};
  std::uint32_t flags{0};
};

/// Freeze-phase process metadata (open file table, descriptors, thread relations,
/// registers, signal handlers, ids — Figure 3's leader/per-thread transfers).
struct ProcessImage {
  Pid pid{};
  std::string name;
  std::vector<VmAreaImage> areas;
  std::vector<ThreadImage> threads;
  std::map<int, std::uint64_t> signal_handlers;
  std::vector<FileImage> regular_files;
  std::vector<Fd> socket_fds;  // order of reattachment on the destination
  std::string app_kind;
  Buffer app_blob;
  std::int64_t src_jiffies{0};       // source jiffies at checkpoint (Section V-C1)
  std::int64_t src_local_now_ns{0};  // source local clock at checkpoint

  void serialize(BinaryWriter& w) const;
  static ProcessImage deserialize(BinaryReader& r);
};

/// Capture the freeze-phase metadata of a process (sockets listed, not dumped).
ProcessImage snapshot_process(const proc::Process& proc);

/// One precopy round's address-space delta (vm_area diff + dirty pages).
struct MemoryDelta {
  std::vector<VmAreaImage> added_areas;
  std::vector<std::uint64_t> removed_areas;    // start addresses
  std::vector<VmAreaImage> modified_areas;     // extent/prot changed in place
  std::vector<std::uint64_t> dirty_pages;      // page numbers to (re)transfer

  /// Serialized size: metadata plus one page-size payload per dirty page.
  std::size_t transfer_bytes() const;
  void serialize(BinaryWriter& w) const;
  static MemoryDelta deserialize(BinaryReader& r);
  bool empty() const {
    return added_areas.empty() && removed_areas.empty() && modified_areas.empty() &&
           dirty_pages.empty();
  }
};

}  // namespace dvemig::ckpt
