#include "src/ckpt/image.hpp"

#include "src/proc/node.hpp"

namespace dvemig::ckpt {

namespace {

void write_area(BinaryWriter& w, const VmAreaImage& a) {
  w.u64(a.start);
  w.u64(a.length);
  w.u32(a.prot);
  w.u8(a.file_backed ? 1 : 0);
  w.str(a.name);
}

VmAreaImage read_area(BinaryReader& r) {
  VmAreaImage a;
  a.start = r.u64();
  a.length = r.u64();
  a.prot = r.u32();
  a.file_backed = r.u8() != 0;
  a.name = r.str();
  return a;
}

void write_thread(BinaryWriter& w, const ThreadImage& t) {
  w.u32(t.tid);
  for (const std::uint64_t reg : t.gp_regs) w.u64(reg);
  w.u64(t.pc);
  w.u64(t.sp);
  w.u64(t.signal_mask);
}

ThreadImage read_thread(BinaryReader& r) {
  ThreadImage t;
  t.tid = r.u32();
  for (std::uint64_t& reg : t.gp_regs) reg = r.u64();
  t.pc = r.u64();
  t.sp = r.u64();
  t.signal_mask = r.u64();
  return t;
}

}  // namespace

void ProcessImage::serialize(BinaryWriter& w) const {
  w.u32(pid.value);
  w.str(name);
  w.u32(static_cast<std::uint32_t>(areas.size()));
  for (const auto& a : areas) write_area(w, a);
  w.u32(static_cast<std::uint32_t>(threads.size()));
  for (const auto& t : threads) write_thread(w, t);
  w.u32(static_cast<std::uint32_t>(signal_handlers.size()));
  for (const auto& [sig, handler] : signal_handlers) {
    w.i32(sig);
    w.u64(handler);
  }
  w.u32(static_cast<std::uint32_t>(regular_files.size()));
  for (const auto& f : regular_files) {
    w.i32(f.fd);
    w.str(f.path);
    w.u64(f.offset);
    w.u32(f.flags);
  }
  w.u32(static_cast<std::uint32_t>(socket_fds.size()));
  for (const Fd fd : socket_fds) w.i32(fd);
  w.str(app_kind);
  w.blob(app_blob);
  w.i64(src_jiffies);
  w.i64(src_local_now_ns);
}

ProcessImage ProcessImage::deserialize(BinaryReader& r) {
  ProcessImage img;
  img.pid = Pid{r.u32()};
  img.name = r.str();
  const std::uint32_t na = r.u32();
  DVEMIG_EXPECTS(na <= r.remaining());  // each area consumes >= 1 byte
  img.areas.reserve(na);
  for (std::uint32_t i = 0; i < na; ++i) img.areas.push_back(read_area(r));
  const std::uint32_t nt = r.u32();
  DVEMIG_EXPECTS(nt <= r.remaining());
  img.threads.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) img.threads.push_back(read_thread(r));
  const std::uint32_t ns = r.u32();
  for (std::uint32_t i = 0; i < ns; ++i) {
    const int sig = r.i32();
    img.signal_handlers[sig] = r.u64();
  }
  const std::uint32_t nf = r.u32();
  DVEMIG_EXPECTS(nf <= r.remaining());
  img.regular_files.reserve(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    FileImage f;
    f.fd = r.i32();
    f.path = r.str();
    f.offset = r.u64();
    f.flags = r.u32();
    img.regular_files.push_back(std::move(f));
  }
  const std::uint32_t nsock = r.u32();
  DVEMIG_EXPECTS(nsock <= r.remaining());
  img.socket_fds.reserve(nsock);
  for (std::uint32_t i = 0; i < nsock; ++i) img.socket_fds.push_back(r.i32());
  img.app_kind = r.str();
  img.app_blob = r.blob();
  img.src_jiffies = r.i64();
  img.src_local_now_ns = r.i64();
  return img;
}

ProcessImage snapshot_process(const proc::Process& proc) {
  ProcessImage img;
  img.pid = proc.pid();
  img.name = proc.name();
  for (const auto& a : proc.mem().areas()) img.areas.push_back(VmAreaImage::from(a));
  for (const auto& t : proc.threads()) {
    ThreadImage ti;
    ti.tid = t.tid;
    ti.gp_regs = t.gp_regs;
    ti.pc = t.pc;
    ti.sp = t.sp;
    ti.signal_mask = t.signal_mask;
    img.threads.push_back(ti);
  }
  img.signal_handlers = proc.signal_handlers();
  for (const auto& [fd, file] : proc.files().entries()) {
    if (file.kind == proc::FileKind::regular) {
      img.regular_files.push_back(FileImage{fd, file.path, file.offset, file.flags});
    } else {
      img.socket_fds.push_back(fd);
    }
  }
  if (proc.app()) {
    img.app_kind = proc.app()->kind();
    BinaryWriter w;
    proc.app()->serialize(w);
    img.app_blob = w.take();
  }
  const auto& stk = proc.node().stack();
  img.src_jiffies = stk.jiffies();
  img.src_local_now_ns = stk.local_now_ns();
  return img;
}

std::size_t MemoryDelta::transfer_bytes() const {
  BinaryWriter w;
  serialize(w);
  return w.size();
}

void MemoryDelta::serialize(BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(added_areas.size()));
  for (const auto& a : added_areas) write_area(w, a);
  w.u32(static_cast<std::uint32_t>(removed_areas.size()));
  for (const std::uint64_t s : removed_areas) w.u64(s);
  w.u32(static_cast<std::uint32_t>(modified_areas.size()));
  for (const auto& a : modified_areas) write_area(w, a);
  w.u32(static_cast<std::uint32_t>(dirty_pages.size()));
  // Page payloads: the simulator stores no page contents, so a zero-filled
  // page-sized payload per dirty page keeps the transfer size honest.
  static const Buffer zero_page(proc::kPageSize, 0);
  for (const std::uint64_t page : dirty_pages) {
    w.u64(page);
    w.bytes(zero_page);
  }
}

MemoryDelta MemoryDelta::deserialize(BinaryReader& r) {
  MemoryDelta d;
  const std::uint32_t na = r.u32();
  for (std::uint32_t i = 0; i < na; ++i) d.added_areas.push_back(read_area(r));
  const std::uint32_t nr = r.u32();
  for (std::uint32_t i = 0; i < nr; ++i) d.removed_areas.push_back(r.u64());
  const std::uint32_t nm = r.u32();
  for (std::uint32_t i = 0; i < nm; ++i) d.modified_areas.push_back(read_area(r));
  const std::uint32_t np = r.u32();
  DVEMIG_EXPECTS(np <= r.remaining());  // each page record is > 1 byte
  d.dirty_pages.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    d.dirty_pages.push_back(r.u64());
    r.skip(proc::kPageSize);
  }
  return d;
}

}  // namespace dvemig::ckpt
