#include "src/ckpt/dirty_tracker.hpp"

#include <algorithm>

namespace dvemig::ckpt {

MemoryDelta DirtyTracker::round(proc::AddressSpace& mem) {
  MemoryDelta delta;
  rounds_ += 1;

  // --- vm_area diff: walk both sorted lists in lockstep ---
  std::vector<VmAreaImage> current;
  current.reserve(mem.areas().size());
  for (const auto& a : mem.areas()) current.push_back(VmAreaImage::from(a));

  std::size_t i = 0;  // tracked (previous round)
  std::size_t j = 0;  // current
  while (i < tracked_areas_.size() || j < current.size()) {
    if (i == tracked_areas_.size()) {
      delta.added_areas.push_back(current[j++]);
    } else if (j == current.size()) {
      delta.removed_areas.push_back(tracked_areas_[i++].start);
    } else if (tracked_areas_[i].start == current[j].start) {
      if (!tracked_areas_[i].same_extent(current[j])) {
        delta.modified_areas.push_back(current[j]);
      }
      ++i;
      ++j;
    } else if (tracked_areas_[i].start < current[j].start) {
      delta.removed_areas.push_back(tracked_areas_[i++].start);
    } else {
      delta.added_areas.push_back(current[j++]);
    }
  }
  tracked_areas_ = std::move(current);

  // --- dirty pages ---
  if (rounds_ == 1) {
    // First round: the destination has nothing yet, so every anonymous page is
    // transferred regardless of its dirty bit (a re-migrated process's pages are
    // clean — they were just restored — but must still ship in full).
    (void)mem.collect_and_clear_dirty();
    for (const auto& area : mem.areas()) {
      if (area.file_backed) continue;
      for (std::uint64_t p = area.start / proc::kPageSize;
           p < area.end() / proc::kPageSize; ++p) {
        delta.dirty_pages.push_back(p);
      }
    }
    std::sort(delta.dirty_pages.begin(), delta.dirty_pages.end());
  } else {
    delta.dirty_pages = mem.collect_and_clear_dirty();
  }
  return delta;
}

std::vector<DirtyTracker::ShardRange> DirtyTracker::shard_ranges(std::size_t count,
                                                                 std::size_t workers) {
  std::vector<ShardRange> out;
  if (count == 0 || workers == 0) return out;
  const std::size_t shards = std::min(count, workers);
  const std::size_t base = count / shards;
  const std::size_t extra = count % shards;  // first `extra` shards get one more
  std::size_t at = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out.push_back(ShardRange{at, at + len});
    at += len;
  }
  return out;
}

std::size_t DirtyTracker::max_shard(std::size_t count, std::size_t workers) {
  if (count == 0 || workers == 0) return 0;
  return (count + workers - 1) / workers;
}

}  // namespace dvemig::ckpt
