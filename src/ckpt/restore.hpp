// Restore side of checkpointing: rebuild a Process from a ProcessImage on the
// destination node. Socket reattachment is performed by the migration layer
// (src/mig); the app logic object is reconstructed here but only started when the
// process is resumed.
#pragma once

#include <memory>

#include "src/ckpt/image.hpp"
#include "src/proc/node.hpp"

namespace dvemig::ckpt {

/// Build a frozen Process on `dest` from the image: address-space layout, threads,
/// registers, signal handlers and regular files (re-opened by path, per the shared
/// file-system assumption of Section II-A). Returns the process *not yet adopted*
/// by the node and still frozen; callers attach sockets, adopt, then resume().
std::shared_ptr<proc::Process> restore_process(proc::Node& dest,
                                               const ProcessImage& img);

/// Apply an incremental memory delta to a process under restoration.
void apply_memory_delta(proc::Process& proc, const MemoryDelta& delta);

}  // namespace dvemig::ckpt
