// Incremental address-space tracking (Section V-A).
//
// Two mechanisms, exactly as in the paper:
//  1. dirty pages — read-and-clear of the per-page dirty bits (the kernel-module
//     equivalent of walking PTE dirty bits without touching kernel code);
//  2. vm_area diffing — a private tracking list holding last round's memory-area
//     layout, compared against the live vm_area list each loop to detect
//     insertions (mmap), removals (munmap) and in-place modifications.
#pragma once

#include <vector>

#include "src/ckpt/image.hpp"
#include "src/proc/memory.hpp"

namespace dvemig::ckpt {

class DirtyTracker {
 public:
  /// First round: the whole address space counts as new (full precopy transfer).
  /// Every later round returns only changes since the previous call.
  MemoryDelta round(proc::AddressSpace& mem);

  /// Number of rounds performed so far.
  std::size_t rounds() const { return rounds_; }

  /// Contiguous near-equal partition of `count` items across at most `workers`
  /// shards (the parallel data path's static work-split: deterministic, no
  /// balancing decisions at runtime). Returns only non-empty shards, the first
  /// `count % workers` of them one item larger.
  struct ShardRange {
    std::size_t begin{0};
    std::size_t end{0};  // exclusive
    std::size_t size() const { return end - begin; }
  };
  static std::vector<ShardRange> shard_ranges(std::size_t count, std::size_t workers);

  /// Size of the largest shard: ceil(count / workers); 0 when count == 0.
  static std::size_t max_shard(std::size_t count, std::size_t workers);

 private:
  std::vector<VmAreaImage> tracked_areas_;  // "our own tracking structures"
  std::size_t rounds_{0};
};

}  // namespace dvemig::ckpt
