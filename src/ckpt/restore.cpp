#include "src/ckpt/restore.hpp"

namespace dvemig::ckpt {

std::shared_ptr<proc::Process> restore_process(proc::Node& dest,
                                               const ProcessImage& img) {
  auto proc = std::make_shared<proc::Process>(dest, img.pid, img.name);
  proc->freeze();  // restoring processes stay frozen until migration completes

  // Address-space layout. Incremental deltas applied earlier in the migration are
  // semantically merged here: the final image's area list is authoritative.
  for (const auto& a : img.areas) {
    if (proc->mem().find_area(a.start) == nullptr) {
      proc->mem().map_fixed(a.to_area());
    }
  }

  // Threads: replace the constructor-made main thread with the checkpointed set.
  proc->threads().clear();
  for (const auto& t : img.threads) {
    proc::ThreadContext tc;
    tc.tid = t.tid;
    tc.gp_regs = t.gp_regs;
    tc.pc = t.pc;
    tc.sp = t.sp;
    tc.signal_mask = t.signal_mask;
    proc->threads().push_back(tc);
  }

  proc->signal_handlers() = img.signal_handlers;

  // Regular files re-open by path at the same fd and offset (file *contents* are
  // not transferred — Section III-A: shared or replicated file system).
  for (const auto& f : img.regular_files) {
    proc->files().open_file_at(f.fd, f.path, f.offset, f.flags);
  }

  // App logic: reconstruct but do not start; Process::resume() starts it.
  if (!img.app_kind.empty()) {
    BinaryReader r(img.app_blob);
    proc->set_app(proc::AppLogic::create(img.app_kind, r));
  }
  return proc;
}

void apply_memory_delta(proc::Process& proc, const MemoryDelta& delta) {
  auto& mem = proc.mem();
  for (const std::uint64_t start : delta.removed_areas) {
    if (mem.find_area(start) != nullptr) mem.munmap(start);
  }
  for (const auto& a : delta.added_areas) {
    if (mem.find_area(a.start) == nullptr) mem.map_fixed(a.to_area());
  }
  for (const auto& a : delta.modified_areas) {
    // Extent changes are modelled as replace-in-place.
    if (mem.find_area(a.start) != nullptr) mem.munmap(a.start);
    mem.map_fixed(a.to_area());
  }
  // Dirty-page payloads carry no content in the simulator; applying them is a
  // no-op beyond the transfer cost already paid on the wire.
}

}  // namespace dvemig::ckpt
