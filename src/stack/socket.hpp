// Socket base type shared by the UDP and TCP implementations.
#pragma once

#include <cstdint>
#include <memory>

#include "src/net/address.hpp"

namespace dvemig::stack {

class NetStack;

enum class SocketType : std::uint8_t { udp, tcp };

class Socket : public std::enable_shared_from_this<Socket> {
 public:
  virtual ~Socket() = default;

  SocketType type() const { return type_; }
  const net::Endpoint& local() const { return local_; }
  const net::Endpoint& remote() const { return remote_; }
  NetStack& stack() const { return *stack_; }

  /// Unique per-stack-creation id, used by the dst cache and trace logs.
  std::uint64_t sock_id() const { return sock_id_; }

  /// True once the socket has been unhashed for migration: it no longer receives
  /// packets and must not transmit.
  bool migration_disabled() const { return migration_disabled_; }
  void set_migration_disabled(bool v) { migration_disabled_ = v; }

 protected:
  Socket(NetStack& stack, SocketType type, std::uint64_t sock_id)
      : stack_(&stack), type_(type), sock_id_(sock_id) {}

  NetStack* stack_;
  SocketType type_;
  std::uint64_t sock_id_;
  net::Endpoint local_{};
  net::Endpoint remote_{};
  bool migration_disabled_{false};
};

}  // namespace dvemig::stack
