#include "src/stack/netfilter.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace dvemig::stack {

NetfilterChain::NetfilterChain() {
  for (auto& counter : pending_dead_) counter = std::make_shared<std::uint32_t>(0);
}

void NetfilterChain::compact(Hook hook) {
  auto& pending = *pending_dead_[static_cast<int>(hook)];
  if (pending == 0) return;
  std::erase_if(chain(hook), [](const Entry& e) { return !*e.alive; });
  pending = 0;
}

HookHandle NetfilterChain::register_hook(Hook hook, int priority, HookFn fn) {
  DVEMIG_EXPECTS(fn != nullptr);
  compact(hook);  // registration is rare: a good moment to pay the sweep
  auto alive = std::make_shared<bool>(true);
  auto& entries = chain(hook);
  Entry entry{priority, next_seq_++, alive, std::move(fn)};
  const auto pos = std::upper_bound(
      entries.begin(), entries.end(), entry, [](const Entry& a, const Entry& b) {
        return a.priority != b.priority ? a.priority < b.priority : a.seq < b.seq;
      });
  entries.insert(pos, std::move(entry));
  return HookHandle{std::move(alive), pending_dead_[static_cast<int>(hook)]};
}

Verdict NetfilterChain::run(Hook hook, net::Packet& p) {
  // Compact only when a release is pending (O(1) test on the per-packet path;
  // the old unconditional erase_if swept the whole chain for every packet).
  // Compaction never happens mid-iteration, so a hook releasing itself — or a
  // later hook — during this run merely flags the entry; the `alive` test
  // below keeps released hooks from firing again within the same pass.
  compact(hook);
  auto& entries = chain(hook);
  for (const auto& entry : entries) {
    if (!*entry.alive) continue;
    const Verdict v = entry.fn(p);
    if (v == Verdict::stolen) stolen_.get().add(1);
    if (v == Verdict::drop) dropped_.get().add(1);
    if (v != Verdict::accept) return v;
  }
  return Verdict::accept;
}

std::size_t NetfilterChain::hook_count(Hook hook) const {
  const auto& entries = chain(hook);
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [](const Entry& e) { return *e.alive; }));
}

}  // namespace dvemig::stack
