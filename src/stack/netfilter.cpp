#include "src/stack/netfilter.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::stack {

HookHandle NetfilterChain::register_hook(Hook hook, int priority, HookFn fn) {
  DVEMIG_EXPECTS(fn != nullptr);
  auto alive = std::make_shared<bool>(true);
  auto& entries = chain(hook);
  Entry entry{priority, next_seq_++, alive, std::move(fn)};
  const auto pos = std::upper_bound(
      entries.begin(), entries.end(), entry, [](const Entry& a, const Entry& b) {
        return a.priority != b.priority ? a.priority < b.priority : a.seq < b.seq;
      });
  entries.insert(pos, std::move(entry));
  return HookHandle{alive};
}

Verdict NetfilterChain::run(Hook hook, net::Packet& p) {
  auto& entries = chain(hook);
  // Prune dead registrations first so iteration below stays simple even if a hook
  // releases itself (or another) mid-run — released hooks fire at most this pass.
  std::erase_if(entries, [](const Entry& e) { return !*e.alive; });
  static obs::Counter& stolen = obs::Registry::instance().counter("nf.stolen");
  static obs::Counter& dropped = obs::Registry::instance().counter("nf.dropped");
  for (const auto& entry : entries) {
    if (!*entry.alive) continue;
    const Verdict v = entry.fn(p);
    if (v == Verdict::stolen) stolen.add(1);
    if (v == Verdict::drop) dropped.add(1);
    if (v != Verdict::accept) return v;
  }
  return Verdict::accept;
}

std::size_t NetfilterChain::hook_count(Hook hook) const {
  const auto& entries = chain(hook);
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(), [](const Entry& e) { return *e.alive; }));
}

}  // namespace dvemig::stack
