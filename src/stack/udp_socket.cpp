#include "src/stack/udp_socket.hpp"

#include "src/common/log.hpp"

namespace dvemig::stack {

UdpSocket::~UdpSocket() = default;

void UdpSocket::bind(net::Ipv4Addr addr, net::Port port) {
  DVEMIG_EXPECTS(!cb_.bound);
  DVEMIG_EXPECTS(addr == net::Ipv4Addr::any() || stack_->has_addr(addr));
  if (port == 0) port = stack_->table().allocate_ephemeral_port(SocketType::udp);
  DVEMIG_EXPECTS(!stack_->table().port_bound(port, SocketType::udp));
  local_ = net::Endpoint{addr, port};
  stack_->table().bhash_insert(shared_from_this(), port);
  cb_.bound = true;
}

void UdpSocket::connect(net::Endpoint remote) {
  if (!cb_.bound) bind(stack_->primary_addr(), 0);
  remote_ = remote;
  cb_.connected = true;
}

void UdpSocket::send_to(net::Endpoint to, Buffer data) {
  DVEMIG_EXPECTS(!migration_disabled());
  if (!cb_.bound) bind(stack_->primary_addr(), 0);
  net::Ipv4Addr src = local_.addr;
  if (src == net::Ipv4Addr::any()) src = stack_->primary_addr();
  net::Packet p = net::make_udp(net::Endpoint{src, local_.port}, to, std::move(data));
  cb_.datagrams_out += 1;
  stack_->send_from(*this, std::move(p));
}

void UdpSocket::send(Buffer data) {
  DVEMIG_EXPECTS(cb_.connected);
  send_to(remote_, std::move(data));
}

std::optional<UdpDatagram> UdpSocket::recv() {
  if (cb_.receive_queue.empty()) return std::nullopt;
  UdpDatagram d = std::move(cb_.receive_queue.front());
  cb_.receive_queue.pop_front();
  return d;
}

void UdpSocket::close() {
  if (cb_.bound) {
    stack_->table().bhash_remove(*this, local_.port);
    cb_.bound = false;
  }
  stack_->dst_cache_drop(sock_id_);
  on_readable_ = nullptr;
}

void UdpSocket::datagram_arrived(const net::Packet& p) {
  DVEMIG_ASSERT(!migration_disabled());
  if (cb_.connected &&
      (p.src != remote_.addr || p.udp.sport != remote_.port)) {
    return;  // connected sockets only accept their peer
  }
  if (cb_.receive_queue.size() >= cb_.rcvbuf_datagrams) {
    cb_.dropped_rcvbuf += 1;
    return;
  }
  cb_.datagrams_in += 1;
  cb_.receive_queue.push_back(
      UdpDatagram{net::Endpoint{p.src, p.udp.sport}, p.payload.copy()});
  if (on_readable_) on_readable_();
}

void UdpSocket::set_endpoints(net::Endpoint local, net::Endpoint remote, bool bound,
                              bool connected) {
  local_ = local;
  remote_ = remote;
  cb_.bound = bound;
  cb_.connected = connected;
}

}  // namespace dvemig::stack
