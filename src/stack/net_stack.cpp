#include "src/stack/net_stack.hpp"

#include <algorithm>

#include "src/common/log.hpp"
#include "src/common/serial.hpp"
#include "src/stack/tcp_socket.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::stack {

NetStack::NetStack(sim::Engine& engine, std::string name, SimDuration clock_offset)
    : engine_(&engine),
      name_(std::move(name)),
      clock_offset_(clock_offset),
      isn_rng_(fnv1a({reinterpret_cast<const std::uint8_t*>(name_.data()), name_.size()})) {
  DVEMIG_EXPECTS(clock_offset.ns >= 0);
  // Spread each host's ephemeral-port scan start across the range so two hosts
  // rarely mint the same source port (matters when sockets later migrate).
  table_.set_ephemeral_start(
      static_cast<net::Port>(49152 + isn_rng_.next_below(65536 - 49152)));
}

NetStack::~NetStack() = default;

void NetStack::add_interface(net::Ipv4Addr addr, net::PacketSink tx) {
  DVEMIG_EXPECTS(addr != net::Ipv4Addr::any() && !addr.is_broadcast());
  DVEMIG_EXPECTS(!has_addr(addr));
  interfaces_.push_back(Interface{addr, std::move(tx)});
}

bool NetStack::has_addr(net::Ipv4Addr addr) const {
  return std::any_of(interfaces_.begin(), interfaces_.end(),
                     [&](const Interface& i) { return i.addr == addr; });
}

net::Ipv4Addr NetStack::primary_addr() const {
  DVEMIG_EXPECTS(!interfaces_.empty());
  return interfaces_.front().addr;
}

const NetStack::Interface* NetStack::route_interface(net::Ipv4Addr src) const {
  for (const Interface& i : interfaces_) {
    if (i.addr == src) return &i;
  }
  return interfaces_.empty() ? nullptr : &interfaces_.front();
}

std::uint32_t NetStack::next_isn() { return static_cast<std::uint32_t>(isn_rng_.next_u64()); }

void NetStack::rx(net::Packet p) {
  stats_.rx_packets += 1;
  switch (netfilter_.run(Hook::local_in, p)) {
    case Verdict::stolen:
      stats_.rx_hook_stolen += 1;
      return;
    case Verdict::drop:
      stats_.rx_hook_dropped += 1;
      return;
    case Verdict::accept:
      break;
  }
  if (!net::checksum_ok(p)) {
    stats_.rx_bad_checksum += 1;
    return;
  }
  if (demux(p)) {
    stats_.rx_delivered += 1;
  } else {
    stats_.rx_no_socket += 1;
  }
}

void NetStack::reinject(net::Packet p) {
  // okfn() path: enters at the equivalent of ip_rcv_finish, i.e. *past* the
  // LOCAL_IN hooks (so a still-armed capture filter cannot re-steal its own
  // reinjected packets), but still subject to transport checksum verification.
  stats_.reinjected += 1;
  if (!net::checksum_ok(p)) {
    stats_.rx_bad_checksum += 1;
    return;
  }
  if (demux(p)) {
    stats_.rx_delivered += 1;
  } else {
    stats_.rx_no_socket += 1;
  }
}

bool NetStack::demux(net::Packet& p) {
  if (p.proto == net::IpProto::tcp) {
    const FourTuple tuple{net::Endpoint{p.dst, p.tcp.dport},
                          net::Endpoint{p.src, p.tcp.sport}};
    if (auto sock = table_.ehash_lookup(tuple)) {
      sock->segment_arrived(std::move(p));
      return true;
    }
    for (const auto& s : table_.bhash_lookup(p.tcp.dport)) {
      if (s->type() != SocketType::tcp) continue;
      auto listener = std::static_pointer_cast<TcpSocket>(s);
      if (listener->state() != TcpState::listen) continue;
      if (listener->local().addr != net::Ipv4Addr::any() &&
          listener->local().addr != p.dst) {
        continue;
      }
      listener->segment_arrived(std::move(p));
      return true;
    }
    // No owner. Crucially, NO RST is generated: in the single-IP broadcast
    // cluster every node sees every client packet, and only the port's owner may
    // answer — an RST from a non-owner would tear down other nodes' connections.
    return false;
  }

  // UDP. Limited-broadcast datagrams are delivered regardless of the socket's
  // bound address (the conductor's heartbeat relies on this).
  for (const auto& s : table_.bhash_lookup(p.udp.dport)) {
    if (s->type() != SocketType::udp) continue;
    auto sock = std::static_pointer_cast<UdpSocket>(s);
    if (!p.dst.is_broadcast() && sock->local().addr != net::Ipv4Addr::any() &&
        sock->local().addr != p.dst) {
      continue;
    }
    sock->datagram_arrived(p);
    return true;
  }
  return false;
}

void NetStack::send_from(Socket& sock, net::Packet p) {
  p.origin_sock_id = sock.sock_id();
  switch (netfilter_.run(Hook::local_out, p)) {
    case Verdict::stolen:
      return;
    case Verdict::drop:
      return;
    case Verdict::accept:
      break;
  }
  // Destination-cache routing: connection-oriented sockets resolve their next
  // hop once and keep reusing the cached entry even if a LOCAL_OUT hook rewrote
  // the IP header — exactly the stale-route hazard of Section V-D that the
  // translation daemon fixes by replacing the cache entry. Unconnected UDP
  // sockets (transd, conductor control traffic) route per packet, as in Linux.
  const bool per_socket_route =
      sock.type() == SocketType::tcp ||
      static_cast<const UdpSocket&>(sock).cb().connected;
  if (per_socket_route) {
    net::Ipv4Addr next_hop = dst_cache_lookup(p.origin_sock_id);
    if (next_hop == net::Ipv4Addr::any()) {
      next_hop = p.dst;
      dst_cache_replace(p.origin_sock_id, next_hop);
    }
    p.link_dst = next_hop;
  } else {
    p.link_dst = p.dst;
  }

  const Interface* iface = route_interface(p.src);
  if (iface == nullptr || !iface->tx) return;  // no route (host has no links)
  stats_.tx_packets += 1;
  iface->tx(std::move(p));
}

net::Ipv4Addr NetStack::dst_cache_lookup(std::uint64_t sock_id) const {
  const auto it = dst_cache_.find(sock_id);
  return it == dst_cache_.end() ? net::Ipv4Addr::any() : it->second;
}

void NetStack::dst_cache_replace(std::uint64_t sock_id, net::Ipv4Addr next_hop) {
  dst_cache_[sock_id] = next_hop;
}

void NetStack::dst_cache_drop(std::uint64_t sock_id) { dst_cache_.erase(sock_id); }

std::shared_ptr<UdpSocket> NetStack::make_udp() {
  auto sock = std::make_shared<UdpSocket>(*this, next_sock_id());
  socket_registry_.push_back(sock);
  return sock;
}

std::shared_ptr<TcpSocket> NetStack::make_tcp() {
  auto sock = std::make_shared<TcpSocket>(*this, next_sock_id());
  socket_registry_.push_back(sock);
  return sock;
}

void NetStack::for_each_socket(const std::function<void(const Socket&)>& fn) const {
  std::erase_if(socket_registry_, [](const auto& w) { return w.expired(); });
  for (const auto& weak : socket_registry_) {
    if (const auto sock = weak.lock()) fn(*sock);
  }
}

}  // namespace dvemig::stack
