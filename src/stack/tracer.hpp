// Packet tracer — the simulator's tcpdump (Section VI-B captures server packets
// with tcpdump to assess migration delay at the network packet level).
//
// Attaches at the edges of a host's netfilter chains: inbound packets are seen
// before any capture/translation hook runs, outbound packets after every hook
// (i.e. as they appear on the wire). Purely observational: always accepts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/stack/net_stack.hpp"

namespace dvemig::stack {

class PacketTracer {
 public:
  enum class Direction : std::uint8_t { in, out };

  struct Record {
    SimTime t{};
    Direction dir{Direction::in};
    net::Packet packet;
  };

  /// Attach to `stack`; recording starts immediately and stops at destruction.
  explicit PacketTracer(NetStack& stack, std::size_t max_records = 1u << 20);
  ~PacketTracer();
  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  /// Only record packets for which `fn` returns true (e.g. one UDP port).
  void set_filter(std::function<bool(const net::Packet&)> fn) {
    filter_ = std::move(fn);
  }

  const std::vector<Record>& records() const { return records_; }
  std::size_t dropped_by_cap() const { return dropped_; }
  void clear() { records_.clear(); }

  /// tcpdump-style text, one line per packet:
  ///   2.000157 OUT UDP 203.0.113.10:27960 > 100.64.1.1:49907 len 256
  std::string dump() const;
  static std::string format(const Record& rec);

 private:
  Verdict observe(Direction dir, const net::Packet& p);

  NetStack* stack_;
  std::size_t max_records_;
  std::function<bool(const net::Packet&)> filter_;
  std::vector<Record> records_;
  std::size_t dropped_{0};
  HookHandle in_hook_;
  HookHandle out_hook_;
};

}  // namespace dvemig::stack
