// Socket lookup tables, mirroring the two kernel hashtables the paper manipulates:
//
//  - `ehash` — established TCP connections, keyed by the full 4-tuple;
//  - `bhash` — bound sockets (TCP listeners and UDP), keyed by local port.
//
// Socket migration (Section V-C) begins by *unhashing* a socket from both tables —
// after which the stack no longer delivers packets to it — and ends by *rehashing*
// it on the destination node.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/assert.hpp"
#include "src/net/address.hpp"
#include "src/stack/socket.hpp"

namespace dvemig::stack {

class TcpSocket;
class UdpSocket;

struct FourTuple {
  net::Endpoint local;
  net::Endpoint remote;
  constexpr auto operator<=>(const FourTuple&) const = default;
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const noexcept {
    const std::uint64_t a = (std::uint64_t{t.local.addr.value} << 16) ^ t.local.port;
    const std::uint64_t b = (std::uint64_t{t.remote.addr.value} << 16) ^ t.remote.port;
    return std::hash<std::uint64_t>{}(a * 0x9E3779B97F4A7C15ULL ^ b);
  }
};

class SocketTable {
 public:
  // --- ehash (established TCP) ---

  void ehash_insert(const std::shared_ptr<TcpSocket>& sock, const FourTuple& key);
  void ehash_remove(const FourTuple& key);
  std::shared_ptr<TcpSocket> ehash_lookup(const FourTuple& key) const;
  std::size_t ehash_size() const { return ehash_.size(); }

  // --- bhash (bound: TCP listeners + UDP) ---

  void bhash_insert(const std::shared_ptr<Socket>& sock, net::Port port);
  void bhash_remove(const Socket& sock, net::Port port);
  /// All sockets bound to `port` (there may be a TCP listener and a UDP socket).
  std::vector<std::shared_ptr<Socket>> bhash_lookup(net::Port port) const;
  bool port_bound(net::Port port, SocketType type) const;
  std::size_t bhash_size() const;

  /// Allocate an unused ephemeral port (49152+) for the given protocol. For TCP
  /// this also avoids local ports of established connections — a migrated socket
  /// keeps its source-node port, so the destination must never hand the same port
  /// to a new connection toward the same peer.
  net::Port allocate_ephemeral_port(SocketType type);

  /// Start the ephemeral scan at a per-host position (reduces the chance that two
  /// hosts pick equal ports for connections that might later share a node).
  void set_ephemeral_start(net::Port port);

  // --- audit iteration (dvemig-verify, src/check) ---

  /// Visit every (4-tuple, socket) pair in ehash. Read-only; iteration order is
  /// unspecified.
  void for_each_established(
      const std::function<void(const FourTuple&, const std::shared_ptr<TcpSocket>&)>&
          fn) const;
  /// Visit every (port, socket) pair in bhash.
  void for_each_bound(
      const std::function<void(net::Port, const std::shared_ptr<Socket>&)>& fn) const;
  /// Reference count kept for an established-TCP local port (0 when untracked).
  std::uint32_t tcp_local_port_refs(net::Port port) const;
  /// Number of distinct local ports with a nonzero established-TCP refcount.
  std::size_t tcp_tracked_port_count() const { return tcp_local_ports_.size(); }

 private:
  std::unordered_map<FourTuple, std::shared_ptr<TcpSocket>, FourTupleHash> ehash_;
  std::unordered_map<net::Port, std::vector<std::shared_ptr<Socket>>> bhash_;
  std::unordered_map<net::Port, std::uint32_t> tcp_local_ports_;  // refcounts
  net::Port next_ephemeral_{49152};
};

}  // namespace dvemig::stack
