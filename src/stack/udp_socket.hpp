// UDP socket.
//
// Migration-wise UDP is the easy case (Section V-C2): besides the socket identity,
// only the receive queue needs to be tracked and transferred, and a bound server
// socket must be unhashed before and rehashed after the move. The control block is
// public (`cb()`), as in the kernel, so the socket extractor in src/mig can reach it.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "src/common/serial.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/socket.hpp"

namespace dvemig::stack {

struct UdpDatagram {
  net::Endpoint from;
  Buffer data;
};

struct UdpCb {
  bool bound{false};
  bool connected{false};
  std::deque<UdpDatagram> receive_queue;
  std::uint64_t datagrams_in{0};
  std::uint64_t datagrams_out{0};
  std::uint64_t dropped_rcvbuf{0};
  std::size_t rcvbuf_datagrams{4096};  // queue cap, like SO_RCVBUF
};

class UdpSocket final : public Socket {
 public:
  using ReadableFn = std::function<void()>;

  UdpSocket(NetStack& stack, std::uint64_t sock_id)
      : Socket(stack, SocketType::udp, sock_id) {}
  ~UdpSocket() override;

  /// Bind to (addr, port); port 0 picks an ephemeral port. Inserts into bhash.
  void bind(net::Ipv4Addr addr, net::Port port);
  /// Set the default remote and filter incoming datagrams to it.
  void connect(net::Endpoint remote);

  void send_to(net::Endpoint to, Buffer data);
  void send(Buffer data);  // connected form

  /// Pop the oldest datagram, if any.
  std::optional<UdpDatagram> recv();
  std::size_t pending() const { return cb_.receive_queue.size(); }

  /// Invoked whenever a datagram is queued (level-triggered "data available").
  void set_on_readable(ReadableFn fn) { on_readable_ = std::move(fn); }

  void close();

  /// Stack demux entry.
  void datagram_arrived(const net::Packet& p);

  UdpCb& cb() { return cb_; }
  const UdpCb& cb() const { return cb_; }

  /// Migration support: set identity fields without touching hash tables (the
  /// restorer manages hashing explicitly, mirroring unhash/rehash in the paper).
  void set_endpoints(net::Endpoint local, net::Endpoint remote, bool bound,
                     bool connected);

 private:
  UdpCb cb_;
  ReadableFn on_readable_;
};

}  // namespace dvemig::stack
