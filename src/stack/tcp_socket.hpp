// TCP socket with the structures socket migration manipulates (Section V-C1):
//
//  - write queue (outgoing, unacked + unsent segments),
//  - receive queue (in-order data the application has not read yet),
//  - out-of-order queue,
//  - backlog queue (segments arriving while the user holds the socket lock),
//  - prequeue (fast-path receive while a reader is blocked),
//  - retransmission timer, RTT estimation, congestion window,
//  - TCP timestamps generated from the host's *local* jiffies clock plus a
//    per-socket offset — the field the migration's timestamp adjustment corrects.
//
// PAWS (RFC 7323) is enforced on receive: a segment whose tsval is older than
// ts_recent is discarded. This is precisely why migrating a socket between hosts
// with different jiffies without adjusting timestamps stalls the connection — the
// ablation benchmark demonstrates it.
//
// The protocol control block is public (`cb()`), mirroring how the kernel's
// `struct tcp_sock` is open to the checkpointing module.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/common/serial.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/socket.hpp"

namespace dvemig::stack {

enum class TcpState : std::uint8_t {
  closed,
  listen,
  syn_sent,
  syn_rcvd,
  established,
  fin_wait1,
  fin_wait2,
  close_wait,
  last_ack,
  closing,
  time_wait,
};

const char* tcp_state_name(TcpState s);

// Sequence-space comparisons (wraparound-safe).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
inline bool seq_ge(std::uint32_t a, std::uint32_t b) { return seq_le(b, a); }

inline constexpr std::size_t kTcpMss = 1448;  // 1500 - IP - TCP - timestamps
inline constexpr std::int64_t kMinRtoNs = 200'000'000;   // Linux TCP_RTO_MIN
inline constexpr std::int64_t kMaxRtoNs = 4'000'000'000; // capped for simulation
inline constexpr std::int64_t kTimeWaitNs = 1'000'000'000;
/// Wakeup latency of a blocked reader: packets sit on the prequeue this long
/// before being processed "in the reader's context".
inline constexpr std::int64_t kPrequeueDrainNs = 30'000;

/// One entry of the write queue. SYN/FIN are represented as (possibly empty)
/// segments carrying the corresponding flag; they consume one sequence number.
struct TcpTxSegment {
  std::uint32_t seq{0};
  std::uint8_t flags{0};  // extra flags beyond ACK (syn/fin/psh)
  Buffer data;
  std::uint32_t retrans{0};
  std::int64_t sent_at_local_ns{-1};  // host-local clock stamp (adjusted on migration)
  std::uint32_t sent_tsval{0};

  std::uint32_t seq_len() const;
  std::uint32_t end_seq() const { return seq + seq_len(); }
};

/// One entry of the receive or out-of-order queue.
struct TcpRxSegment {
  std::uint32_t seq{0};
  Buffer data;
  bool fin{false};  // segment carried FIN (relevant when buffered out of order)
};

struct TcpCb {
  TcpState state{TcpState::closed};

  // Send sequence space.
  std::uint32_t iss{0};
  std::uint32_t snd_una{0};
  std::uint32_t snd_nxt{0};
  std::uint32_t snd_wnd{65535};  // peer-advertised window
  // Receive sequence space.
  std::uint32_t irs{0};
  std::uint32_t rcv_nxt{0};
  std::uint32_t rcv_wnd_max{1u << 20};

  // RTT estimation / retransmission (RFC 6298), nanoseconds.
  std::int64_t srtt_ns{0};
  std::int64_t rttvar_ns{0};
  std::int64_t rto_ns{kMinRtoNs};

  // Congestion control (bytes), NewReno-flavoured.
  std::uint32_t cwnd{10 * kTcpMss};
  std::uint32_t ssthresh{1u << 30};
  std::uint32_t dup_acks{0};

  // TCP timestamps.
  std::uint32_t ts_recent{0};   // most recent peer tsval (PAWS baseline)
  std::int64_t ts_offset{0};    // added to local jiffies when generating tsval
  std::uint32_t last_wnd_sent{0};

  // Queues.
  std::deque<TcpTxSegment> write_queue;      // [snd_una, …): unacked then unsent
  std::deque<TcpRxSegment> receive_queue;    // in-order, unread by the app
  std::size_t receive_queue_bytes{0};
  std::map<std::uint32_t, TcpRxSegment> ooo_queue;  // keyed by seq
  std::vector<net::Packet> backlog;          // held while user_locked
  std::vector<net::Packet> prequeue;         // fast-path while a reader is blocked

  // Socket-lock modelling.
  bool user_locked{false};
  bool blocked_reader{false};

  bool fin_queued{false};   // app called close(); FIN is (or will be) in write_queue
  std::uint32_t fin_seq{0};  // end-seq of our FIN once queued
  bool peer_fin_seen{false};

  // Counters.
  std::uint64_t bytes_in{0};
  std::uint64_t bytes_out{0};
  std::uint64_t segs_in{0};
  std::uint64_t segs_out{0};
  std::uint64_t retransmissions{0};
  std::uint64_t paws_drops{0};

  std::uint32_t inflight() const { return snd_nxt - snd_una; }
};

class TcpSocket final : public Socket {
 public:
  using Ptr = std::shared_ptr<TcpSocket>;
  using Callback = std::function<void()>;

  TcpSocket(NetStack& stack, std::uint64_t sock_id)
      : Socket(stack, SocketType::tcp, sock_id) {}
  ~TcpSocket() override;

  // --- application API ---

  void bind(net::Ipv4Addr addr, net::Port port);
  void listen(std::uint32_t backlog_limit = 128);
  void connect(net::Endpoint remote);

  /// Queue data for transmission (the send buffer is unbounded in this stack).
  void send(Buffer data);
  /// Read up to `max` bytes of in-order received data.
  Buffer read(std::size_t max = SIZE_MAX);
  std::size_t bytes_available() const { return cb_.receive_queue_bytes; }

  /// Pop a fully established connection from the accept queue (nullptr if empty).
  Ptr accept();
  std::size_t accept_queue_length() const { return accept_queue_.size(); }
  /// Established children awaiting accept() — migrated along with a listener.
  std::deque<Ptr>& accept_queue() { return accept_queue_; }

  /// Orderly close (FIN). Safe to call in any state.
  void close();
  /// Abortive close (RST to peer, if connected).
  void abort();

  // --- event callbacks (all optional) ---
  void set_on_connected(Callback fn) { on_connected_ = std::move(fn); }
  void set_on_readable(Callback fn) { on_readable_ = std::move(fn); }
  void set_on_accept_ready(Callback fn) { on_accept_ready_ = std::move(fn); }
  void set_on_peer_closed(Callback fn) { on_peer_closed_ = std::move(fn); }
  void set_on_reset(Callback fn) { on_reset_ = std::move(fn); }
  /// Fires whenever the write queue fully drains (all sent data acknowledged).
  /// Senders pacing on transfer completion — the precopy loop — hook this.
  void set_on_drained(Callback fn) { on_drained_ = std::move(fn); }
  bool drained() const { return cb_.write_queue.empty(); }

  // --- socket-lock modelling (Section V-C1) ---
  /// While "locked by the user" (app inside a syscall on this socket), arriving
  /// segments accumulate on the backlog and are processed at unlock.
  void lock_user();
  void unlock_user();
  /// While a blocked reader waits, segments take the prequeue fast path and are
  /// processed in the (simulated) reader context one event later.
  void set_blocked_reader(bool blocked);

  // --- stack-facing ---
  void segment_arrived(net::Packet p);

  // --- migration-facing ---
  TcpCb& cb() { return cb_; }
  const TcpCb& cb() const { return cb_; }
  /// Cancel every pending timer (migration "clears the retransmission timer").
  void clear_timers();
  /// Re-arm timers after restore on the destination node.
  void restart_timers_after_restore();
  /// Set identity without touching the hash tables (restorer manages hashing).
  void set_endpoints(net::Endpoint local, net::Endpoint remote);
  /// Drive the transmit path (used after restore to resume sending).
  void try_send();
  bool hashed_established() const { return hashed_established_; }
  void set_hashed_established(bool v) { hashed_established_ = v; }
  bool hashed_bound() const { return hashed_bound_; }
  void set_hashed_bound(bool v) { hashed_bound_ = v; }
  std::uint32_t accept_backlog_limit() const { return accept_backlog_limit_; }
  void set_accept_backlog_limit(std::uint32_t v) { accept_backlog_limit_ = v; }

  TcpState state() const { return cb_.state; }

 private:
  friend class NetStack;

  // Segment processing internals.
  void process_segment(net::Packet& p);
  void on_listen_segment(net::Packet& p);
  void on_syn_sent_segment(net::Packet& p);
  void established_input(net::Packet& p);
  bool paws_reject(const net::Packet& p) const;
  void handle_ack(const net::Packet& p);
  void handle_payload(net::Packet& p);
  void handle_fin(const net::Packet& p);
  void handle_rst();
  void enter_time_wait();
  void become_closed();

  // Transmit internals.
  void queue_segment(std::uint8_t flags, Buffer data);
  void transmit_segment(TcpTxSegment& seg);
  void send_ack();
  void send_control(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack);
  std::uint32_t advertised_window() const;
  std::uint32_t gen_tsval() const;

  // Timers.
  void arm_rto();
  void on_rto();
  void arm_persist();
  void on_persist();
  void process_backlog();
  void process_prequeue();

  void rtt_sample(std::int64_t rtt_ns);
  void notify_listener_established();

  TcpCb cb_;
  Callback on_connected_;
  Callback on_readable_;
  Callback on_accept_ready_;
  Callback on_peer_closed_;
  Callback on_reset_;
  Callback on_drained_;

  sim::TimerHandle rto_timer_;
  sim::TimerHandle time_wait_timer_;
  sim::TimerHandle prequeue_timer_;
  sim::TimerHandle persist_timer_;

  // Listener-side state.
  std::uint32_t accept_backlog_limit_{0};
  std::uint32_t embryo_count_{0};  // children still in SYN_RCVD
  std::deque<Ptr> accept_queue_;
  std::weak_ptr<TcpSocket> parent_listener_;

  bool hashed_established_{false};
  bool hashed_bound_{false};
  // Index of the first unsent segment in write_queue (== number of unacked
  // in-flight segments ahead of it). Derivable from snd_nxt; cached for O(1) sends.
  std::size_t next_unsent_idx_{0};
};

}  // namespace dvemig::stack
