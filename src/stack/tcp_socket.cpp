#include "src/stack/tcp_socket.hpp"

#include <algorithm>

#include "src/common/log.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::stack {

namespace {
constexpr std::uint32_t kMaxCwnd = 4u << 20;

obs::Counter& retransmit_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("tcp.retransmits");
  return c;
}

/// Segments parked on the backlog or prequeue instead of the fast path — the
/// queues the freeze phase must find empty (tcp_busy() in migd).
obs::Counter& queue_move_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("tcp.queue_moves");
  return c;
}

bool connected_state(TcpState s) {
  switch (s) {
    case TcpState::syn_rcvd:
    case TcpState::established:
    case TcpState::fin_wait1:
    case TcpState::fin_wait2:
    case TcpState::close_wait:
    case TcpState::last_ack:
    case TcpState::closing:
    case TcpState::time_wait:
      return true;
    default:
      return false;
  }
}
}  // namespace

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::closed: return "CLOSED";
    case TcpState::listen: return "LISTEN";
    case TcpState::syn_sent: return "SYN_SENT";
    case TcpState::syn_rcvd: return "SYN_RCVD";
    case TcpState::established: return "ESTABLISHED";
    case TcpState::fin_wait1: return "FIN_WAIT1";
    case TcpState::fin_wait2: return "FIN_WAIT2";
    case TcpState::close_wait: return "CLOSE_WAIT";
    case TcpState::last_ack: return "LAST_ACK";
    case TcpState::closing: return "CLOSING";
    case TcpState::time_wait: return "TIME_WAIT";
  }
  return "?";
}

std::uint32_t TcpTxSegment::seq_len() const {
  std::uint32_t len = static_cast<std::uint32_t>(data.size());
  if (flags & net::tcp_flags::syn) len += 1;
  if (flags & net::tcp_flags::fin) len += 1;
  return len;
}

TcpSocket::~TcpSocket() { clear_timers(); }

// ---------------------------------------------------------------- application API

void TcpSocket::bind(net::Ipv4Addr addr, net::Port port) {
  DVEMIG_EXPECTS(cb_.state == TcpState::closed);
  DVEMIG_EXPECTS(!hashed_bound_);
  DVEMIG_EXPECTS(addr == net::Ipv4Addr::any() || stack_->has_addr(addr));
  if (port == 0) port = stack_->table().allocate_ephemeral_port(SocketType::tcp);
  DVEMIG_EXPECTS(!stack_->table().port_bound(port, SocketType::tcp));
  local_ = net::Endpoint{addr, port};
}

void TcpSocket::listen(std::uint32_t backlog_limit) {
  DVEMIG_EXPECTS(cb_.state == TcpState::closed);
  DVEMIG_EXPECTS(local_.port != 0);  // must bind() first
  accept_backlog_limit_ = backlog_limit;
  cb_.state = TcpState::listen;
  stack_->table().bhash_insert(shared_from_this(),
                               local_.port);
  hashed_bound_ = true;
}

void TcpSocket::connect(net::Endpoint remote) {
  DVEMIG_EXPECTS(cb_.state == TcpState::closed);
  if (local_.port == 0) {
    local_ = net::Endpoint{stack_->primary_addr(),
                           stack_->table().allocate_ephemeral_port(SocketType::tcp)};
  }
  if (local_.addr == net::Ipv4Addr::any()) local_.addr = stack_->primary_addr();
  remote_ = remote;

  cb_.iss = stack_->next_isn();
  cb_.snd_una = cb_.iss;
  cb_.snd_nxt = cb_.iss;
  cb_.state = TcpState::syn_sent;

  stack_->table().ehash_insert(
      std::static_pointer_cast<TcpSocket>(shared_from_this()),
      FourTuple{local_, remote_});
  hashed_established_ = true;

  queue_segment(net::tcp_flags::syn, {});
  try_send();
}

void TcpSocket::send(Buffer data) {
  DVEMIG_EXPECTS(!migration_disabled());
  DVEMIG_EXPECTS(cb_.state == TcpState::established ||
                 cb_.state == TcpState::close_wait ||
                 cb_.state == TcpState::syn_sent || cb_.state == TcpState::syn_rcvd);
  DVEMIG_EXPECTS(!cb_.fin_queued);
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min(kTcpMss, data.size() - off);
    Buffer chunk(data.begin() + static_cast<std::ptrdiff_t>(off),
                 data.begin() + static_cast<std::ptrdiff_t>(off + n));
    const bool last = off + n == data.size();
    queue_segment(last ? net::tcp_flags::psh : 0, std::move(chunk));
    off += n;
  }
  try_send();
}

Buffer TcpSocket::read(std::size_t max) {
  const bool was_pinched = advertised_window() < kTcpMss;
  Buffer out;
  while (!cb_.receive_queue.empty() && out.size() < max) {
    TcpRxSegment& seg = cb_.receive_queue.front();
    const std::size_t take = std::min(seg.data.size(), max - out.size());
    out.insert(out.end(), seg.data.begin(),
               seg.data.begin() + static_cast<std::ptrdiff_t>(take));
    cb_.receive_queue_bytes -= take;
    if (take == seg.data.size()) {
      cb_.receive_queue.pop_front();
    } else {
      seg.data.erase(seg.data.begin(), seg.data.begin() + static_cast<std::ptrdiff_t>(take));
      seg.seq += static_cast<std::uint32_t>(take);
    }
  }
  // Window update: if the receive buffer was pinching the advertised window and the
  // read opened it up again, tell the peer so it can resume (poor man's window probe).
  if (was_pinched && advertised_window() >= kTcpMss && connected_state(cb_.state) &&
      !migration_disabled()) {
    send_ack();
  }
  return out;
}

TcpSocket::Ptr TcpSocket::accept() {
  if (accept_queue_.empty()) return nullptr;
  Ptr child = std::move(accept_queue_.front());
  accept_queue_.pop_front();
  return child;
}

void TcpSocket::close() {
  switch (cb_.state) {
    case TcpState::closed:
      return;
    case TcpState::listen: {
      // Abort connections nobody will ever accept.
      while (!accept_queue_.empty()) {
        accept_queue_.front()->abort();
        accept_queue_.pop_front();
      }
      become_closed();
      return;
    }
    case TcpState::syn_sent:
      become_closed();
      return;
    case TcpState::established:
    case TcpState::syn_rcvd:
    case TcpState::close_wait: {
      if (cb_.fin_queued) return;
      queue_segment(net::tcp_flags::fin, {});
      cb_.fin_queued = true;
      cb_.fin_seq = cb_.write_queue.back().end_seq();
      cb_.state = cb_.state == TcpState::close_wait ? TcpState::last_ack
                                                    : TcpState::fin_wait1;
      try_send();
      return;
    }
    default:
      return;  // close already in progress
  }
}

void TcpSocket::abort() {
  if (connected_state(cb_.state) && cb_.state != TcpState::time_wait &&
      !migration_disabled()) {
    send_control(net::tcp_flags::rst | net::tcp_flags::ack, cb_.snd_nxt, cb_.rcv_nxt);
  }
  become_closed();
}

// ---------------------------------------------------------------- lock modelling

void TcpSocket::lock_user() {
  DVEMIG_EXPECTS(!cb_.user_locked);
  cb_.user_locked = true;
}

void TcpSocket::unlock_user() {
  DVEMIG_EXPECTS(cb_.user_locked);
  cb_.user_locked = false;
  process_backlog();
}

void TcpSocket::set_blocked_reader(bool blocked) {
  cb_.blocked_reader = blocked;
  if (!blocked) process_prequeue();
}

void TcpSocket::process_backlog() {
  while (!cb_.backlog.empty() && !cb_.user_locked) {
    net::Packet p = std::move(cb_.backlog.front());
    cb_.backlog.erase(cb_.backlog.begin());
    process_segment(p);
  }
}

void TcpSocket::process_prequeue() {
  while (!cb_.prequeue.empty() && !cb_.user_locked) {
    net::Packet p = std::move(cb_.prequeue.front());
    cb_.prequeue.erase(cb_.prequeue.begin());
    process_segment(p);
  }
}

// ---------------------------------------------------------------- receive path

void TcpSocket::segment_arrived(net::Packet p) {
  DVEMIG_ASSERT(!migration_disabled());
  cb_.segs_in += 1;
  if (cb_.user_locked) {
    // The user holds the socket lock ("in a system call"): defer to the backlog,
    // processed at release time — exactly the queue the freeze phase must not see.
    cb_.backlog.push_back(std::move(p));
    queue_move_counter().add(1);
    return;
  }
  if (cb_.blocked_reader && cb_.state == TcpState::established) {
    // Fast-path receive: queue on the prequeue, processed in the blocked reader's
    // context (one simulation event later).
    cb_.prequeue.push_back(std::move(p));
    queue_move_counter().add(1);
    if (!prequeue_timer_.pending()) {
      // Processed in the blocked reader's context after its wakeup latency.
      prequeue_timer_ = stack_->engine().schedule_after(
          SimTime::nanoseconds(kPrequeueDrainNs), [self = shared_from_this(), this] {
            (void)self;
            process_prequeue();
          });
    }
    return;
  }
  process_segment(p);
}

void TcpSocket::process_segment(net::Packet& p) {
  switch (cb_.state) {
    case TcpState::closed:
      return;  // unhashed/closed socket: nothing to do (stack drops silently)
    case TcpState::listen:
      on_listen_segment(p);
      return;
    case TcpState::syn_sent:
      on_syn_sent_segment(p);
      return;
    default:
      established_input(p);
      return;
  }
}

void TcpSocket::on_listen_segment(net::Packet& p) {
  if (!p.tcp.has(net::tcp_flags::syn) || p.tcp.has(net::tcp_flags::ack) ||
      p.tcp.has(net::tcp_flags::rst)) {
    return;
  }
  const FourTuple tuple{net::Endpoint{p.dst, p.tcp.dport},
                        net::Endpoint{p.src, p.tcp.sport}};
  if (stack_->table().ehash_lookup(tuple)) return;  // duplicate SYN; child handles it
  if (accept_queue_.size() + embryo_count_ >= accept_backlog_limit_) {
    return;  // backlog full (embryos included): drop the SYN
  }

  auto child = stack_->make_tcp();
  child->local_ = tuple.local;
  child->remote_ = tuple.remote;
  child->parent_listener_ = std::static_pointer_cast<TcpSocket>(shared_from_this());
  TcpCb& ccb = child->cb_;
  ccb.irs = p.tcp.seq;
  ccb.rcv_nxt = p.tcp.seq + 1;
  ccb.ts_recent = p.tcp.tsval;
  ccb.snd_wnd = p.tcp.window;
  ccb.iss = stack_->next_isn();
  ccb.snd_una = ccb.iss;
  ccb.snd_nxt = ccb.iss;
  ccb.state = TcpState::syn_rcvd;

  stack_->table().ehash_insert(child, tuple);
  child->hashed_established_ = true;
  embryo_count_ += 1;
  child->queue_segment(net::tcp_flags::syn, {});
  child->try_send();
}

void TcpSocket::on_syn_sent_segment(net::Packet& p) {
  if (p.tcp.has(net::tcp_flags::rst)) {
    if (p.tcp.has(net::tcp_flags::ack) && p.tcp.ack == cb_.iss + 1) handle_rst();
    return;
  }
  if (!p.tcp.has(net::tcp_flags::syn) || !p.tcp.has(net::tcp_flags::ack)) return;
  if (p.tcp.ack != cb_.iss + 1) {
    send_control(net::tcp_flags::rst, p.tcp.ack, 0);
    return;
  }
  // SYN-ACK accepted.
  cb_.irs = p.tcp.seq;
  cb_.rcv_nxt = p.tcp.seq + 1;
  cb_.ts_recent = p.tcp.tsval;
  cb_.snd_wnd = p.tcp.window;
  cb_.snd_una = p.tcp.ack;
  DVEMIG_ASSERT(!cb_.write_queue.empty());
  if (cb_.write_queue.front().retrans == 0) {
    rtt_sample(stack_->local_now_ns() - cb_.write_queue.front().sent_at_local_ns);
  }
  cb_.write_queue.pop_front();
  if (next_unsent_idx_ > 0) --next_unsent_idx_;
  rto_timer_.cancel();
  cb_.state = TcpState::established;
  send_ack();
  if (on_connected_) on_connected_();
  try_send();
}

bool TcpSocket::paws_reject(const net::Packet& p) const {
  // PAWS (RFC 7323 §5.2): discard a non-RST segment whose timestamp is strictly
  // older than the last one seen in window. This is the check that kills a
  // migrated connection when the destination host's jiffies lag the source and
  // the socket's timestamps were not adjusted.
  if (p.tcp.has(net::tcp_flags::rst)) return false;
  if (cb_.ts_recent == 0) return false;
  return seq_lt(p.tcp.tsval, cb_.ts_recent);
}

void TcpSocket::established_input(net::Packet& p) {
  if (paws_reject(p)) {
    cb_.paws_drops += 1;
    send_ack();  // challenge ACK, as Linux does
    return;
  }
  if (p.tcp.has(net::tcp_flags::rst)) {
    // In-window check (simplified): accept RST whose seq is not behind rcv_nxt by
    // more than a window.
    if (seq_ge(p.tcp.seq, cb_.rcv_nxt - cb_.rcv_wnd_max)) handle_rst();
    return;
  }
  if (p.tcp.has(net::tcp_flags::syn)) {
    if (cb_.state == TcpState::syn_rcvd && p.tcp.seq == cb_.irs) {
      // Peer retransmitted its SYN: our SYN-ACK was lost; resend it.
      if (!cb_.write_queue.empty()) transmit_segment(cb_.write_queue.front());
    }
    return;
  }

  // Update ts_recent for acceptable, in-order-or-older segments.
  if (seq_le(p.tcp.seq, cb_.rcv_nxt) && seq_ge(p.tcp.tsval, cb_.ts_recent)) {
    cb_.ts_recent = p.tcp.tsval;
  }

  if (p.tcp.has(net::tcp_flags::ack)) handle_ack(p);
  if (cb_.state == TcpState::closed) return;  // RST-free teardown completed in ack
  handle_payload(p);
}

void TcpSocket::handle_ack(const net::Packet& p) {
  const std::uint32_t ack = p.tcp.ack;
  if (seq_gt(ack, cb_.snd_nxt)) {
    send_ack();  // acks data we never sent
    return;
  }

  if (cb_.state == TcpState::syn_rcvd && seq_ge(ack, cb_.iss + 1)) {
    cb_.state = TcpState::established;
    notify_listener_established();
  }

  const std::uint32_t old_wnd = cb_.snd_wnd;
  cb_.snd_wnd = p.tcp.window;

  if (seq_gt(ack, cb_.snd_una)) {
    const std::uint32_t acked = ack - cb_.snd_una;
    cb_.snd_una = ack;
    cb_.dup_acks = 0;

    while (!cb_.write_queue.empty() &&
           seq_le(cb_.write_queue.front().end_seq(), ack)) {
      const TcpTxSegment& seg = cb_.write_queue.front();
      if (seg.retrans == 0 && seg.sent_at_local_ns >= 0) {
        rtt_sample(stack_->local_now_ns() - seg.sent_at_local_ns);
      }
      cb_.write_queue.pop_front();
      if (next_unsent_idx_ > 0) --next_unsent_idx_;
    }

    // Congestion window growth: slow start below ssthresh, else Reno-style.
    if (cb_.cwnd < cb_.ssthresh) {
      cb_.cwnd = std::min<std::uint32_t>(cb_.cwnd + acked, kMaxCwnd);
    } else {
      cb_.cwnd = std::min<std::uint32_t>(
          cb_.cwnd + std::max<std::uint32_t>(
                         1, static_cast<std::uint32_t>(
                                std::uint64_t{kTcpMss} * kTcpMss / cb_.cwnd)),
          kMaxCwnd);
    }

    if (cb_.snd_una == cb_.snd_nxt) {
      rto_timer_.cancel();
      if (cb_.write_queue.empty() && on_drained_) {
        // Invoke a copy: the handler may replace or clear on_drained_.
        auto cb = on_drained_;
        cb();
      }
    } else {
      arm_rto();  // restart on forward progress
    }

    // Our FIN acknowledged?
    if (cb_.fin_queued && seq_ge(cb_.snd_una, cb_.fin_seq)) {
      switch (cb_.state) {
        case TcpState::fin_wait1: cb_.state = TcpState::fin_wait2; break;
        case TcpState::closing: enter_time_wait(); break;
        case TcpState::last_ack: become_closed(); break;
        default: break;
      }
    }
    if (cb_.state != TcpState::closed) try_send();
  } else if (ack == cb_.snd_una) {
    const bool bare = p.payload.empty() && !p.tcp.has(net::tcp_flags::fin);
    if (bare && cb_.inflight() > 0 && p.tcp.window == old_wnd) {
      cb_.dup_acks += 1;
      if (cb_.dup_acks == 3 && !cb_.write_queue.empty()) {
        // Fast retransmit.
        cb_.ssthresh = std::max<std::uint32_t>(cb_.inflight() / 2, 2 * kTcpMss);
        cb_.cwnd = cb_.ssthresh + 3 * kTcpMss;
        cb_.retransmissions += 1;
        retransmit_counter().add(1);
        cb_.write_queue.front().retrans += 1;
        transmit_segment(cb_.write_queue.front());
      }
    } else if (!bare || p.tcp.window != old_wnd) {
      try_send();  // window update may unblock transmission
    }
  }
}

void TcpSocket::handle_payload(net::Packet& p) {
  const bool fin = p.tcp.has(net::tcp_flags::fin);
  const std::uint32_t seq = p.tcp.seq;
  const std::uint32_t len = static_cast<std::uint32_t>(p.payload.size());
  if (len == 0 && !fin) return;  // pure ACK
  const std::uint32_t end = seq + len + (fin ? 1 : 0);

  if (seq_le(end, cb_.rcv_nxt)) {
    send_ack();  // entirely old: dup segment, re-ack
    return;
  }

  if (seq_gt(seq, cb_.rcv_nxt)) {
    // Out of order: buffer if in window, then duplicate-ACK to hint the gap.
    if (seq - cb_.rcv_nxt < cb_.rcv_wnd_max && !cb_.ooo_queue.contains(seq)) {
      cb_.ooo_queue.emplace(seq, TcpRxSegment{seq, p.payload.copy(), fin});
    }
    send_ack();
    return;
  }

  // In order (possibly with an already-received head to trim).
  bool delivered = false;
  bool fin_now = false;
  auto deliver = [&](std::uint32_t sseq, Buffer data, bool sfin) {
    const std::uint32_t head = cb_.rcv_nxt - sseq;
    if (head < data.size()) {
      Buffer fresh(data.begin() + head, data.end());
      cb_.rcv_nxt += static_cast<std::uint32_t>(fresh.size());
      cb_.receive_queue_bytes += fresh.size();
      cb_.bytes_in += fresh.size();
      cb_.receive_queue.push_back(TcpRxSegment{sseq + head, std::move(fresh), false});
      delivered = true;
    }
    if (sfin) {
      cb_.rcv_nxt += 1;
      fin_now = true;
    }
  };
  deliver(seq, p.payload.take(), fin);

  // Drain the out-of-order queue while it is contiguous.
  while (!cb_.ooo_queue.empty()) {
    auto it = cb_.ooo_queue.begin();
    const std::uint32_t sseq = it->first;
    const std::uint32_t send_ = sseq + static_cast<std::uint32_t>(it->second.data.size()) +
                                (it->second.fin ? 1 : 0);
    if (seq_gt(sseq, cb_.rcv_nxt)) break;        // gap remains
    if (seq_le(send_, cb_.rcv_nxt)) {            // fully duplicate
      cb_.ooo_queue.erase(it);
      continue;
    }
    TcpRxSegment seg = std::move(it->second);
    cb_.ooo_queue.erase(it);
    deliver(seg.seq, std::move(seg.data), seg.fin);
  }

  send_ack();
  if (delivered && on_readable_) on_readable_();
  if (fin_now) handle_fin(p);
}

void TcpSocket::handle_fin(const net::Packet&) {
  cb_.peer_fin_seen = true;
  switch (cb_.state) {
    case TcpState::established:
      cb_.state = TcpState::close_wait;
      if (on_peer_closed_) on_peer_closed_();
      break;
    case TcpState::fin_wait1:
      // Our FIN not yet acked (otherwise we'd be in fin_wait2): simultaneous close.
      cb_.state = TcpState::closing;
      break;
    case TcpState::fin_wait2:
      enter_time_wait();
      break;
    default:
      break;
  }
  if (cb_.state != TcpState::closed) send_ack();
}

void TcpSocket::handle_rst() {
  become_closed();
  if (on_reset_) on_reset_();
}

void TcpSocket::enter_time_wait() {
  cb_.state = TcpState::time_wait;
  rto_timer_.cancel();
  time_wait_timer_ = stack_->engine().schedule_after(
      SimTime::nanoseconds(kTimeWaitNs),
      [self = shared_from_this(), this] {
        (void)self;
        become_closed();
      });
}

void TcpSocket::become_closed() {
  if (cb_.state == TcpState::syn_rcvd) {
    if (auto parent = parent_listener_.lock()) {
      DVEMIG_ASSERT(parent->embryo_count_ > 0);
      parent->embryo_count_ -= 1;
      parent_listener_.reset();
    }
  }
  clear_timers();
  if (hashed_established_) {
    stack_->table().ehash_remove(FourTuple{local_, remote_});
    hashed_established_ = false;
  }
  if (hashed_bound_) {
    stack_->table().bhash_remove(*this, local_.port);
    hashed_bound_ = false;
  }
  stack_->dst_cache_drop(sock_id_);
  cb_.state = TcpState::closed;
}

void TcpSocket::notify_listener_established() {
  if (auto parent = parent_listener_.lock()) {
    DVEMIG_ASSERT(parent->embryo_count_ > 0);
    parent->embryo_count_ -= 1;
    parent->accept_queue_.push_back(
        std::static_pointer_cast<TcpSocket>(shared_from_this()));
    if (parent->on_accept_ready_) parent->on_accept_ready_();
  }
}

// ---------------------------------------------------------------- transmit path

void TcpSocket::queue_segment(std::uint8_t flags, Buffer data) {
  TcpTxSegment seg;
  seg.seq = cb_.write_queue.empty() ? cb_.snd_nxt : cb_.write_queue.back().end_seq();
  seg.flags = flags;
  seg.data = std::move(data);
  cb_.write_queue.push_back(std::move(seg));
}

void TcpSocket::try_send() {
  if (migration_disabled() || cb_.state == TcpState::closed ||
      cb_.state == TcpState::listen || cb_.state == TcpState::time_wait) {
    return;
  }
  const std::uint32_t wnd = std::min(cb_.cwnd, cb_.snd_wnd);
  while (next_unsent_idx_ < cb_.write_queue.size()) {
    TcpTxSegment& seg = cb_.write_queue[next_unsent_idx_];
    const std::uint32_t would_be_inflight = seg.end_seq() - cb_.snd_una;
    if (would_be_inflight > wnd) {
      // Window closed. If nothing is in flight there will be no ACK to reopen
      // transmission — arm the persist timer to probe the peer's window.
      if (cb_.inflight() == 0 && !persist_timer_.pending()) arm_persist();
      break;
    }
    transmit_segment(seg);
    cb_.snd_nxt = seg.end_seq();
    ++next_unsent_idx_;
  }
  if (cb_.inflight() > 0) {
    persist_timer_.cancel();
    if (!rto_timer_.pending()) arm_rto();
  }
}

void TcpSocket::transmit_segment(TcpTxSegment& seg) {
  DVEMIG_ASSERT(!migration_disabled());
  seg.sent_at_local_ns = stack_->local_now_ns();
  seg.sent_tsval = gen_tsval();

  net::TcpHeader hdr;
  hdr.seq = seg.seq;
  hdr.flags = seg.flags;
  // Every segment carries ACK except the very first SYN of an active open.
  const bool initial_syn =
      (seg.flags & net::tcp_flags::syn) != 0 && cb_.state == TcpState::syn_sent;
  if (!initial_syn) {
    hdr.flags |= net::tcp_flags::ack;
    hdr.ack = cb_.rcv_nxt;
  }
  hdr.window = advertised_window();
  hdr.tsval = seg.sent_tsval;
  hdr.tsecr = initial_syn ? 0 : cb_.ts_recent;
  cb_.last_wnd_sent = hdr.window;

  cb_.segs_out += 1;
  cb_.bytes_out += seg.data.size();
  net::Packet p = net::make_tcp(local_, remote_, hdr, seg.data);
  stack_->send_from(*this, std::move(p));
}

void TcpSocket::send_ack() {
  if (migration_disabled() || !connected_state(cb_.state)) return;
  send_control(net::tcp_flags::ack, cb_.snd_nxt, cb_.rcv_nxt);
}

void TcpSocket::send_control(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack) {
  net::TcpHeader hdr;
  hdr.seq = seq;
  hdr.ack = ack;
  hdr.flags = flags;
  hdr.window = advertised_window();
  hdr.tsval = gen_tsval();
  hdr.tsecr = cb_.ts_recent;
  cb_.last_wnd_sent = hdr.window;
  cb_.segs_out += 1;
  net::Packet p = net::make_tcp(local_, remote_, hdr, {});
  stack_->send_from(*this, std::move(p));
}

std::uint32_t TcpSocket::advertised_window() const {
  const std::size_t used = cb_.receive_queue_bytes;
  return used >= cb_.rcv_wnd_max
             ? 0
             : static_cast<std::uint32_t>(cb_.rcv_wnd_max - used);
}

std::uint32_t TcpSocket::gen_tsval() const {
  return static_cast<std::uint32_t>(stack_->jiffies() + cb_.ts_offset);
}

// ---------------------------------------------------------------- timers

void TcpSocket::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = stack_->engine().schedule_after(
      SimTime::nanoseconds(cb_.rto_ns),
      [self = shared_from_this(), this] {
        (void)self;
        on_rto();
      });
}

void TcpSocket::on_rto() {
  if (cb_.inflight() == 0 || cb_.write_queue.empty()) return;
  if (migration_disabled()) return;
  // Classic timeout recovery: retransmit the head, back off, collapse cwnd.
  cb_.ssthresh = std::max<std::uint32_t>(cb_.inflight() / 2, 2 * kTcpMss);
  cb_.cwnd = kTcpMss;
  cb_.rto_ns = std::min(cb_.rto_ns * 2, kMaxRtoNs);
  cb_.retransmissions += 1;
  retransmit_counter().add(1);
  cb_.dup_acks = 0;
  cb_.write_queue.front().retrans += 1;
  transmit_segment(cb_.write_queue.front());
  arm_rto();
}

void TcpSocket::arm_persist() {
  persist_timer_ = stack_->engine().schedule_after(
      SimTime::nanoseconds(cb_.rto_ns),
      [self = shared_from_this(), this] {
        (void)self;
        on_persist();
      });
}

void TcpSocket::on_persist() {
  if (migration_disabled() || next_unsent_idx_ >= cb_.write_queue.size()) return;
  if (cb_.inflight() > 0) return;  // regular transmission resumed meanwhile
  // Zero-window probe: force out the next segment; its ACK carries the window.
  TcpTxSegment& seg = cb_.write_queue[next_unsent_idx_];
  transmit_segment(seg);
  cb_.snd_nxt = seg.end_seq();
  ++next_unsent_idx_;
  arm_rto();
}

void TcpSocket::rtt_sample(std::int64_t rtt_ns) {
  if (rtt_ns < 0) return;
  if (cb_.srtt_ns == 0) {
    cb_.srtt_ns = rtt_ns;
    cb_.rttvar_ns = rtt_ns / 2;
  } else {
    const std::int64_t err = std::abs(cb_.srtt_ns - rtt_ns);
    cb_.rttvar_ns = (3 * cb_.rttvar_ns + err) / 4;
    cb_.srtt_ns = (7 * cb_.srtt_ns + rtt_ns) / 8;
  }
  cb_.rto_ns = std::clamp(cb_.srtt_ns + 4 * cb_.rttvar_ns, kMinRtoNs, kMaxRtoNs);
}

void TcpSocket::clear_timers() {
  rto_timer_.cancel();
  time_wait_timer_.cancel();
  prequeue_timer_.cancel();
  persist_timer_.cancel();
}

void TcpSocket::restart_timers_after_restore() {
  // Recompute the unsent boundary from snd_nxt, then restart the retransmission
  // timer (the paper: "the retransmission timer is restarted").
  next_unsent_idx_ = 0;
  while (next_unsent_idx_ < cb_.write_queue.size() &&
         seq_lt(cb_.write_queue[next_unsent_idx_].seq, cb_.snd_nxt)) {
    ++next_unsent_idx_;
  }
  if (cb_.inflight() > 0) arm_rto();
  if (cb_.state == TcpState::time_wait) enter_time_wait();
}

void TcpSocket::set_endpoints(net::Endpoint local, net::Endpoint remote) {
  local_ = local;
  remote_ = remote;
}

}  // namespace dvemig::stack
