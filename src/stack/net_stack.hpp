// Per-host network stack: interfaces, demultiplexing, netfilter, jiffies clock and
// the per-socket destination cache.
//
// One NetStack instance exists per simulated host — cluster nodes (which have a
// public and a local interface) as well as external game clients (one interface).
//
// The jiffies clock is deliberately *per-host*: each host boots with a different
// offset, exactly the situation that forces the TCP timestamp adjustment during
// socket migration (Section V-C1: "Different nodes can have different jiffies").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/link.hpp"
#include "src/sim/engine.hpp"
#include "src/stack/netfilter.hpp"
#include "src/stack/socket_table.hpp"

namespace dvemig::stack {

class UdpSocket;
class TcpSocket;

/// Linux increments jiffies every 10 ms (HZ=100, as on the paper's 2.6 kernels).
inline constexpr std::int64_t kJiffyNs = 10'000'000;

struct StackStats {
  std::uint64_t rx_packets{0};
  std::uint64_t rx_delivered{0};
  std::uint64_t rx_no_socket{0};
  std::uint64_t rx_bad_checksum{0};
  std::uint64_t rx_hook_dropped{0};
  std::uint64_t rx_hook_stolen{0};
  std::uint64_t tx_packets{0};
  std::uint64_t reinjected{0};
};

class NetStack {
 public:
  /// `clock_offset` models this host's boot time relative to simulation start:
  /// local_now() = engine.now() + clock_offset, jiffies() = local_now() / 10 ms.
  NetStack(sim::Engine& engine, std::string name, SimDuration clock_offset);
  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;
  ~NetStack();

  sim::Engine& engine() const { return *engine_; }
  const std::string& name() const { return name_; }

  // --- clock ---
  std::int64_t local_now_ns() const { return engine_->now().ns + clock_offset_.ns; }
  std::int64_t jiffies() const { return local_now_ns() / kJiffyNs; }
  std::uint32_t jiffies32() const { return static_cast<std::uint32_t>(jiffies()); }

  // --- interfaces ---
  void add_interface(net::Ipv4Addr addr, net::PacketSink tx);
  bool has_addr(net::Ipv4Addr addr) const;
  net::Ipv4Addr primary_addr() const;

  // --- wire entry / exit ---
  /// Entry point wired to the NIC: LOCAL_IN hooks -> checksum verify -> demux.
  void rx(net::Packet p);
  /// Reinjection entry used by the capture filter's okfn(): bypasses the LOCAL_IN
  /// hooks (like calling ip_rcv_finish directly) and goes straight to demux.
  void reinject(net::Packet p);
  /// Socket transmit path: LOCAL_OUT hooks -> dst-cache routing -> interface tx.
  void send_from(Socket& sock, net::Packet p);

  // --- destination cache (per originating socket) ---
  /// Returns the cached next-hop for a socket, or any() when not cached.
  net::Ipv4Addr dst_cache_lookup(std::uint64_t sock_id) const;
  void dst_cache_replace(std::uint64_t sock_id, net::Ipv4Addr next_hop);
  void dst_cache_drop(std::uint64_t sock_id);

  // --- sockets ---
  std::shared_ptr<UdpSocket> make_udp();
  std::shared_ptr<TcpSocket> make_tcp();
  SocketTable& table() { return table_; }
  const SocketTable& table() const { return table_; }
  NetfilterChain& netfilter() { return netfilter_; }

  std::uint64_t next_sock_id() { return ++sock_id_counter_; }
  std::uint32_t next_isn();

  /// Visit every socket created by this stack that is still alive (dvemig-verify
  /// uses this for the flag→table direction of the hash bijectivity check).
  /// Expired registry entries are pruned as a side effect.
  void for_each_socket(const std::function<void(const Socket&)>& fn) const;

  const StackStats& stats() const { return stats_; }

 private:
  struct Interface {
    net::Ipv4Addr addr;
    net::PacketSink tx;
  };

  /// Find the socket owning this packet and deliver; false if nobody matched.
  bool demux(net::Packet& p);
  const Interface* route_interface(net::Ipv4Addr src) const;

  sim::Engine* engine_;
  std::string name_;
  SimDuration clock_offset_;
  std::vector<Interface> interfaces_;
  SocketTable table_;
  NetfilterChain netfilter_;
  std::unordered_map<std::uint64_t, net::Ipv4Addr> dst_cache_;
  // Weak registry of every socket ever made; pruned lazily by for_each_socket.
  mutable std::vector<std::weak_ptr<Socket>> socket_registry_;
  std::uint64_t sock_id_counter_{0};
  Rng isn_rng_;
  StackStats stats_;
};

}  // namespace dvemig::stack
