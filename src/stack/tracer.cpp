#include "src/stack/tracer.hpp"

#include <climits>
#include <cstdio>

#include "src/common/log.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::stack {

PacketTracer::PacketTracer(NetStack& stack, std::size_t max_records)
    : stack_(&stack), max_records_(max_records) {
  in_hook_ = stack_->netfilter().register_hook(
      Hook::local_in, INT_MIN,
      [this](net::Packet& p) { return observe(Direction::in, p); });
  out_hook_ = stack_->netfilter().register_hook(
      Hook::local_out, INT_MAX,
      [this](net::Packet& p) { return observe(Direction::out, p); });
}

PacketTracer::~PacketTracer() {
  in_hook_.release();
  out_hook_.release();
}

Verdict PacketTracer::observe(Direction dir, const net::Packet& p) {
  if (!filter_ || filter_(p)) {
    if (records_.size() < max_records_) {
      records_.push_back(Record{stack_->engine().now(), dir, p});
    } else {
      if (dropped_ == 0) {
        // Warn exactly once per tracer: a silently truncated capture looks
        // identical to a quiet network and has burned whole debugging sessions.
        DVEMIG_WARN("tracer",
                    "packet trace full (%zu records); further packets are "
                    "dropped (dropped_by_cap() has the count)",
                    max_records_);
      }
      dropped_ += 1;
      obs::Registry::instance().counter("tracer.dropped_by_cap").add(1);
    }
  }
  return Verdict::accept;
}

std::string PacketTracer::format(const Record& rec) {
  char buf[192];
  const net::Packet& p = rec.packet;
  std::string flags;
  if (p.proto == net::IpProto::tcp) {
    flags = " [";
    if (p.tcp.has(net::tcp_flags::syn)) flags += "S";
    if (p.tcp.has(net::tcp_flags::ack)) flags += ".";
    if (p.tcp.has(net::tcp_flags::fin)) flags += "F";
    if (p.tcp.has(net::tcp_flags::rst)) flags += "R";
    flags += "] seq " + std::to_string(p.tcp.seq);
  }
  std::snprintf(buf, sizeof buf, "%11.6f %s %s %s:%u > %s:%u len %zu%s",
                rec.t.to_sec(), rec.dir == Direction::in ? "IN " : "OUT",
                p.proto == net::IpProto::tcp ? "TCP" : "UDP",
                p.src.to_string().c_str(), p.sport(), p.dst.to_string().c_str(),
                p.dport(), p.payload.size(), flags.c_str());
  return buf;
}

std::string PacketTracer::dump() const {
  std::string out;
  out.reserve(records_.size() * 80);
  for (const Record& rec : records_) {
    out += format(rec);
    out += '\n';
  }
  return out;
}

}  // namespace dvemig::stack
