// Netfilter-style hook chains (Section V-B, V-D).
//
// Two hook points are modelled, matching the ones the paper's kernel module uses:
//  - `local_in`  (NF_INET_LOCAL_IN)  — packets about to be delivered to this host;
//    the capture filter (loss prevention) and the incoming half of the translation
//    filter attach here;
//  - `local_out` (NF_INET_LOCAL_OUT) — packets emitted by local sockets; the outgoing
//    half of the translation filter attaches here.
//
// Hooks run in ascending priority order. A hook may mutate the packet (translation),
// steal it (capture), or drop it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/packet.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::stack {

enum class Hook : std::uint8_t { local_in = 0, local_out = 1 };

enum class Verdict : std::uint8_t {
  accept,  // continue down the chain / into the stack
  stolen,  // hook took ownership (e.g. queued for reinjection); stop processing
  drop,    // discard
};

using HookFn = std::function<Verdict(net::Packet&)>;

/// RAII registration handle; unregisters on destruction or explicit release().
class HookHandle {
 public:
  HookHandle() = default;
  void release() {
    if (alive_ && *alive_) {
      *alive_ = false;
      if (pending_dead_) *pending_dead_ += 1;
    }
    alive_.reset();
    pending_dead_.reset();
  }
  bool registered() const { return alive_ && *alive_; }

 private:
  friend class NetfilterChain;
  HookHandle(std::shared_ptr<bool> alive, std::shared_ptr<std::uint32_t> pending)
      : alive_(std::move(alive)), pending_dead_(std::move(pending)) {}
  std::shared_ptr<bool> alive_;
  // Per-hook-point released-entry count, shared with the owning chain: release()
  // bumps it, and the chain compacts only when it is non-zero — the per-packet
  // fast path pays one integer test instead of an erase_if sweep.
  std::shared_ptr<std::uint32_t> pending_dead_;
};

class NetfilterChain {
 public:
  NetfilterChain();

  [[nodiscard]] HookHandle register_hook(Hook hook, int priority, HookFn fn);

  /// Run the chain for `hook` over `p`. Dead registrations are pruned lazily:
  /// compaction happens only when a release is pending, at run entry or on the
  /// next registration — never mid-iteration, so a hook releasing itself (or
  /// another) while the chain runs stays safe.
  Verdict run(Hook hook, net::Packet& p);

  std::size_t hook_count(Hook hook) const;

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;  // stable order among equal priorities
    std::shared_ptr<bool> alive;
    HookFn fn;
  };

  std::vector<Entry>& chain(Hook hook) { return chains_[static_cast<int>(hook)]; }
  const std::vector<Entry>& chain(Hook hook) const {
    return chains_[static_cast<int>(hook)];
  }
  void compact(Hook hook);

  std::vector<Entry> chains_[2];
  std::shared_ptr<std::uint32_t> pending_dead_[2];
  std::uint64_t next_seq_{0};
  obs::CounterRef stolen_{"nf.stolen"};
  obs::CounterRef dropped_{"nf.dropped"};
};

}  // namespace dvemig::stack
