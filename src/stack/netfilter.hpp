// Netfilter-style hook chains (Section V-B, V-D).
//
// Two hook points are modelled, matching the ones the paper's kernel module uses:
//  - `local_in`  (NF_INET_LOCAL_IN)  — packets about to be delivered to this host;
//    the capture filter (loss prevention) and the incoming half of the translation
//    filter attach here;
//  - `local_out` (NF_INET_LOCAL_OUT) — packets emitted by local sockets; the outgoing
//    half of the translation filter attaches here.
//
// Hooks run in ascending priority order. A hook may mutate the packet (translation),
// steal it (capture), or drop it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/net/packet.hpp"

namespace dvemig::stack {

enum class Hook : std::uint8_t { local_in = 0, local_out = 1 };

enum class Verdict : std::uint8_t {
  accept,  // continue down the chain / into the stack
  stolen,  // hook took ownership (e.g. queued for reinjection); stop processing
  drop,    // discard
};

using HookFn = std::function<Verdict(net::Packet&)>;

/// RAII registration handle; unregisters on destruction or explicit release().
class HookHandle {
 public:
  HookHandle() = default;
  void release() {
    if (alive_) *alive_ = false;
    alive_.reset();
  }
  bool registered() const { return alive_ && *alive_; }

 private:
  friend class NetfilterChain;
  explicit HookHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class NetfilterChain {
 public:
  [[nodiscard]] HookHandle register_hook(Hook hook, int priority, HookFn fn);

  /// Run the chain for `hook` over `p`. Dead registrations are pruned lazily.
  Verdict run(Hook hook, net::Packet& p);

  std::size_t hook_count(Hook hook) const;

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;  // stable order among equal priorities
    std::shared_ptr<bool> alive;
    HookFn fn;
  };

  std::vector<Entry>& chain(Hook hook) { return chains_[static_cast<int>(hook)]; }
  const std::vector<Entry>& chain(Hook hook) const {
    return chains_[static_cast<int>(hook)];
  }

  std::vector<Entry> chains_[2];
  std::uint64_t next_seq_{0};
};

}  // namespace dvemig::stack
