#include "src/stack/socket_table.hpp"

#include <algorithm>

namespace dvemig::stack {

void SocketTable::ehash_insert(const std::shared_ptr<TcpSocket>& sock,
                               const FourTuple& key) {
  DVEMIG_EXPECTS(sock != nullptr);
  const auto [it, inserted] = ehash_.emplace(key, sock);
  (void)it;
  DVEMIG_EXPECTS(inserted);  // duplicate 4-tuples would mean two owners of a connection
  tcp_local_ports_[key.local.port] += 1;
}

void SocketTable::ehash_remove(const FourTuple& key) {
  const std::size_t erased = ehash_.erase(key);
  DVEMIG_EXPECTS(erased == 1);
  auto it = tcp_local_ports_.find(key.local.port);
  DVEMIG_ASSERT(it != tcp_local_ports_.end());
  if (--it->second == 0) tcp_local_ports_.erase(it);
}

std::shared_ptr<TcpSocket> SocketTable::ehash_lookup(const FourTuple& key) const {
  const auto it = ehash_.find(key);
  return it == ehash_.end() ? nullptr : it->second;
}

void SocketTable::bhash_insert(const std::shared_ptr<Socket>& sock, net::Port port) {
  DVEMIG_EXPECTS(sock != nullptr && port != 0);
  auto& bucket = bhash_[port];
  for (const auto& s : bucket) {
    // One bound socket per (port, protocol); no SO_REUSEPORT in this stack.
    DVEMIG_EXPECTS(s->type() != sock->type());
  }
  bucket.push_back(sock);
}

void SocketTable::bhash_remove(const Socket& sock, net::Port port) {
  auto it = bhash_.find(port);
  DVEMIG_EXPECTS(it != bhash_.end());
  auto& bucket = it->second;
  const auto pos = std::find_if(bucket.begin(), bucket.end(),
                                [&](const auto& s) { return s.get() == &sock; });
  DVEMIG_EXPECTS(pos != bucket.end());
  bucket.erase(pos);
  if (bucket.empty()) bhash_.erase(it);
}

std::vector<std::shared_ptr<Socket>> SocketTable::bhash_lookup(net::Port port) const {
  const auto it = bhash_.find(port);
  return it == bhash_.end() ? std::vector<std::shared_ptr<Socket>>{} : it->second;
}

bool SocketTable::port_bound(net::Port port, SocketType type) const {
  const auto it = bhash_.find(port);
  if (it == bhash_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const auto& s) { return s->type() == type; });
}

std::size_t SocketTable::bhash_size() const {
  std::size_t n = 0;
  for (const auto& [port, bucket] : bhash_) n += bucket.size();
  return n;
}

net::Port SocketTable::allocate_ephemeral_port(SocketType type) {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const net::Port candidate = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 65535 ? 49152 : next_ephemeral_ + 1;
    if (port_bound(candidate, type)) continue;
    if (type == SocketType::tcp && tcp_local_ports_.contains(candidate)) continue;
    return candidate;
  }
  DVEMIG_UNREACHABLE("ephemeral port space exhausted");
}

void SocketTable::for_each_established(
    const std::function<void(const FourTuple&, const std::shared_ptr<TcpSocket>&)>&
        fn) const {
  for (const auto& [key, sock] : ehash_) fn(key, sock);
}

void SocketTable::for_each_bound(
    const std::function<void(net::Port, const std::shared_ptr<Socket>&)>& fn) const {
  for (const auto& [port, bucket] : bhash_) {
    for (const auto& sock : bucket) fn(port, sock);
  }
}

std::uint32_t SocketTable::tcp_local_port_refs(net::Port port) const {
  const auto it = tcp_local_ports_.find(port);
  return it == tcp_local_ports_.end() ? 0 : it->second;
}

void SocketTable::set_ephemeral_start(net::Port port) {
  DVEMIG_EXPECTS(port >= 49152);
  next_ephemeral_ = port;
}

}  // namespace dvemig::stack
