// Machine-readable bench artifacts: every bench binary writes a
// BENCH_<name>.json so the perf trajectory between PRs is comparable.
//
// Schema (version 1):
//   {
//     "bench": "<name>", "schema": 1,
//     "provenance": { "schema_version": 1, "git": "<describe>", "seed": N },
//     "results": { "<key>": <number>, ... },       // bench-specific scalars
//     "notes":   { "<key>": "<string>", ... },
//     "metrics": <full metrics-registry snapshot>,
//     "spans":   { "completed": N, "dropped": N,
//                  "by_name": { "<span>": {"count": N, "total_us": X}, ... } }
//   }
//
// The provenance block is mandatory: tests/json_lint.hpp's bench_report_ok()
// rejects a report without schema_version, git and seed, and CI enforces it on
// every archived BENCH_*.json.
//
// add_standard_metrics() guarantees the three cross-bench keys every report
// must carry — freeze_time_ms, freeze_bytes, packet_delay_ms — pulled from the
// registry (worst case over every migration the bench ran).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dvemig::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Set (or overwrite) a scalar result.
  void result(const std::string& key, double value);
  void note(const std::string& key, const std::string& value);

  /// Record the RNG seed the bench ran with (part of the provenance block).
  /// Benches without randomness keep the recognisable default.
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Fill the mandatory cross-bench keys from the metrics registry:
  ///   freeze_time_ms   max of histogram mig.freeze_time_us
  ///   freeze_bytes     counter mig.freeze_bytes
  ///   packet_delay_ms  max of histogram capture.packet_delay_us
  /// Missing metrics (a bench that never migrated) become 0.
  void add_standard_metrics();

  std::string json() const;

  /// Write BENCH_<name>.json into $DVEMIG_BENCH_DIR (or the cwd), returning
  /// the path written, or an empty string on failure.
  std::string write() const;

 private:
  std::string name_;
  std::uint64_t seed_{0x5EEDC0DEULL};
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

}  // namespace dvemig::obs
