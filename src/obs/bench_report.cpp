#include "src/obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/common/log.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace dvemig::obs {

void BenchReport::result(const std::string& key, double value) {
  for (auto& [k, v] : results_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  results_.emplace_back(key, value);
}

void BenchReport::note(const std::string& key, const std::string& value) {
  for (auto& [k, v] : notes_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  notes_.emplace_back(key, value);
}

void BenchReport::add_standard_metrics() {
  const Registry& reg = Registry::instance();
  const Histogram* freeze = reg.find_histogram("mig.freeze_time_us");
  result("freeze_time_ms", freeze != nullptr ? freeze->max() / 1e3 : 0);
  const Counter* bytes = reg.find_counter("mig.freeze_bytes");
  result("freeze_bytes",
         bytes != nullptr ? static_cast<double>(bytes->value()) : 0);
  const Histogram* delay = reg.find_histogram("capture.packet_delay_us");
  result("packet_delay_ms", delay != nullptr ? delay->max() / 1e3 : 0);
}

// The build stamps the checkout via git describe (src/obs/CMakeLists.txt);
// builds outside a work tree fall back to "unknown".
#ifndef DVEMIG_GIT_DESCRIBE
#define DVEMIG_GIT_DESCRIBE "unknown"
#endif

std::string BenchReport::json() const {
  std::string out = "{\n\"bench\": \"" + json_escape(name_) +
                    "\",\n\"schema\": 1,\n\"provenance\": {\"schema_version\": 1"
                    ", \"git\": \"" +
                    json_escape(DVEMIG_GIT_DESCRIBE) +
                    "\", \"seed\": " + std::to_string(seed_) +
                    "},\n\"results\": {";
  bool first = true;
  for (const auto& [key, value] : results_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + json_escape(key) + "\": " + json_number(value);
  }
  out += first ? "}" : "\n}";
  out += ",\n\"notes\": {";
  first = true;
  for (const auto& [key, value] : notes_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
  }
  out += first ? "}" : "\n}";
  out += ",\n\"metrics\": " + Registry::instance().json();
  const Tracer& tracer = Tracer::instance();
  out += ",\n\"spans\": {\"completed\": " +
         std::to_string(tracer.completed_count()) +
         ", \"dropped\": " + std::to_string(tracer.dropped()) +
         ", \"by_name\": {";
  first = true;
  for (const auto& [name, stats] : tracer.summary()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"" + json_escape(name) +
           "\": {\"count\": " + std::to_string(stats.count) + ", \"total_us\": " +
           json_number(static_cast<double>(stats.total_ns) / 1e3) + "}";
  }
  out += first ? "}" : "\n}";
  out += "}\n}\n";
  return out;
}

std::string BenchReport::write() const {
  std::string dir;
  if (const char* v = std::getenv("DVEMIG_BENCH_DIR")) {
    if (v[0] != '\0') dir = std::string(v) + "/";
  }
  const std::string path = dir + "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    DVEMIG_WARN("obs", "cannot write bench report %s", path.c_str());
    return "";
  }
  const std::string body = json();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) return "";
  std::fprintf(stderr, "# bench report: %s\n", path.c_str());
  return path;
}

}  // namespace dvemig::obs
