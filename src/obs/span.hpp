// Span tracer — sim-time-stamped begin/end spans with nesting and key/value
// attributes, the tcpdump-for-phases the paper's evaluation implies: every
// migration phase (precopy round, freeze, capture arming, subtract, restore)
// becomes a first-class, exportable event instead of a hand-updated counter.
//
// Spans live on *tracks* (one per node/daemon, interned by name). Completed
// spans go into a bounded ring; open spans are held aside and can never be
// evicted, so an in-flight migration's `mig.freeze` span survives arbitrarily
// long traces. Two exports:
//   - chrome_trace_json(): Chrome `trace_event` array, loadable in
//     chrome://tracing and Perfetto (tracks map to tid, sim-time to ts);
//   - timeline_text(): plain-text, indentation = nesting depth.
//
// Time comes from SimClock (the engine's thread-local now provider); explicit
// `begin_at`/`end_at` exist for spans whose endpoints are reported by a remote
// peer on the same simulated timeline (e.g. the destination's resume time).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dvemig::obs {

using SpanId = std::uint64_t;  // 0 = "no span"

struct Span {
  SpanId id{0};
  std::uint32_t track{0};
  std::uint32_t depth{0};
  std::int64_t t_begin_ns{0};
  std::int64_t t_end_ns{-1};  // -1 while open (sim time is never negative)
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;

  bool open() const { return t_end_ns < 0; }
  std::int64_t duration_ns() const { return open() ? 0 : t_end_ns - t_begin_ns; }
};

struct SpanStats {
  std::uint64_t count{0};
  std::int64_t total_ns{0};
};

class Tracer {
 public:
  static Tracer& instance();

  explicit Tracer(std::size_t capacity = 1u << 16) : capacity_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Intern a track (node/daemon name) -> stable track id.
  std::uint32_t track(const std::string& name);
  const std::vector<std::string>& track_names() const { return tracks_; }

  SpanId begin(std::uint32_t track, std::string name);
  SpanId begin_at(std::uint32_t track, std::string name, std::int64_t t_ns);
  /// Attach a key/value attribute to an *open* span (no-op once completed).
  void attr(SpanId id, std::string key, std::string value);
  void end(SpanId id);
  void end_at(SpanId id, std::int64_t t_ns);

  /// Look up a span, open or completed. Pointers are invalidated by the next
  /// begin/end/clear — copy out what you need.
  const Span* find(SpanId id) const;
  /// Most recently completed span with this name (nullptr if none survive).
  const Span* last_completed(std::string_view name) const;

  std::size_t completed_count() const { return done_.size(); }
  std::size_t open_count() const { return open_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Completed spans evicted from the ring because it was full.
  std::uint64_t dropped() const { return dropped_; }

  void clear();

  /// Aggregate completed spans by name.
  std::map<std::string, SpanStats> summary() const;

  std::string chrome_trace_json() const;
  std::string timeline_text() const;
  /// Write chrome_trace_json() to `path`; false (and a warning) on failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  void complete(Span span);

  std::size_t capacity_;
  SpanId next_id_{1};
  std::uint64_t dropped_{0};
  std::vector<std::string> tracks_;
  std::unordered_map<SpanId, Span> open_;
  // Per-track stack of open span ids; its size at begin() is the new depth.
  std::unordered_map<std::uint32_t, std::vector<SpanId>> open_stacks_;
  std::deque<Span> done_;
};

/// RAII span for synchronous scopes. Asynchronous phases (anything that spans
/// engine events) must use Tracer::begin/end with a stored SpanId instead.
class ScopedSpan {
 public:
  ScopedSpan(std::uint32_t track, std::string name)
      : id_(Tracer::instance().begin(track, std::move(name))) {}
  ~ScopedSpan() { Tracer::instance().end(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }

 private:
  SpanId id_;
};

#define DVEMIG_OBS_CONCAT2(a, b) a##b
#define DVEMIG_OBS_CONCAT(a, b) DVEMIG_OBS_CONCAT2(a, b)
/// Open a span for the rest of the enclosing scope.
#define OBS_SPAN(track, name) \
  ::dvemig::obs::ScopedSpan DVEMIG_OBS_CONCAT(obs_span_, __LINE__)(track, name)

}  // namespace dvemig::obs
