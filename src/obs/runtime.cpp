#include "src/obs/runtime.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace dvemig::obs {

namespace {

struct ExportPaths {
  std::string trace_out;    // explicit override (CLI)
  std::string metrics_out;  // explicit override (CLI)
};

ExportPaths& paths() {
  static ExportPaths p;
  return p;
}

void write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

const char* env(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? v : nullptr;
}

/// Registry and Tracer live in one holder so the at-exit export (the holder's
/// destructor) runs while both are still alive, whatever their first-use order.
struct ObsCore {
  Registry registry;
  Tracer tracer;
  ~ObsCore() { export_now(); }
};

ObsCore& core() {
  static ObsCore c;
  return c;
}

}  // namespace

Registry& Registry::instance() { return core().registry; }
Tracer& Tracer::instance() { return core().tracer; }

void set_trace_out(std::string path) { paths().trace_out = std::move(path); }
void set_metrics_out(std::string path) { paths().metrics_out = std::move(path); }

void apply_common_flags(const CommonFlags& flags) {
  if (!flags.trace_out.empty()) set_trace_out(flags.trace_out);
  if (!flags.metrics_out.empty()) set_metrics_out(flags.metrics_out);
}

void export_now() {
  std::string trace = paths().trace_out;
  std::string metrics = paths().metrics_out;
  if (trace.empty()) {
    if (const char* v = env("DVEMIG_TRACE_OUT")) trace = v;
  }
  if (metrics.empty()) {
    if (const char* v = env("DVEMIG_METRICS_OUT")) metrics = v;
  }
  if (const char* dir = env("DVEMIG_OBS_DIR")) {
    const std::string pid = std::to_string(static_cast<long>(::getpid()));
    if (trace.empty()) trace = std::string(dir) + "/trace_" + pid + ".json";
    if (metrics.empty()) metrics = std::string(dir) + "/metrics_" + pid + ".json";
  }
  if (!trace.empty()) core().tracer.write_chrome_trace(trace);
  if (!metrics.empty()) write_text_file(metrics, core().registry.json());
}

}  // namespace dvemig::obs
