// Metrics registry — named counters, gauges and fixed-bucket histograms.
//
// Naming convention: `subsystem.noun_verb`, e.g. `mig.freeze_time_us`,
// `capture.dedup_hits`, `tcp.retransmits`, `lb.migrations_initiated`. Units go
// in the name suffix (`_us`, `_bytes`) — the registry stores bare numbers.
//
// The registry is process-global (the simulator is single-threaded) and
// append-only: a metric object, once created, lives for the rest of the
// process, so hot paths may cache `Counter&` references in function-local
// statics. `reset()` zeroes every value but never invalidates a reference.
//
// `json()` dumps a machine-readable snapshot; it is what the bench binaries
// embed into their BENCH_<name>.json artifacts and what the at-exit exporter
// writes when `DVEMIG_METRICS_OUT` / `DVEMIG_OBS_DIR` is set (src/obs/runtime).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dvemig::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_{0};
};

/// Fixed upper-bound buckets plus one overflow bucket, cumulative-free (each
/// bucket counts only its own range, the snapshot is trivially re-aggregable).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last one counts values past every bound.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0};
  double min_{0};
  double max_{0};
};

/// Default bounds for microsecond-scale latency histograms: 1us .. 10s, a
/// 1-2-5 ladder (matches the freeze-time range the paper's figures cover).
const std::vector<double>& default_latency_bounds_us();

class Registry {
 public:
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Returned references stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted on first creation; empty means the default
  /// microsecond-latency ladder.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zero every value; registrations (and references into them) survive.
  void reset();

  /// JSON snapshot: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Lazily-bound cached handle to a named counter.
///
/// The registry is append-only: `Registry::reset()` zeroes values but never
/// destroys a metric, so a bound pointer stays valid for the whole process.
/// What the old pattern — caching `Counter&` in *function-local statics* —
/// got wrong is ownership scope: the static outlives every object using it
/// and can never be re-audited per instance, and a multi-case bench process
/// that resets the registry between cases cannot tell a stale-but-valid
/// handle from one bound against a different registry generation. Holding a
/// `CounterRef` as an instance member scopes the cache to its owner; binding
/// is deferred to first use so constructing the owner costs no registry
/// lookup, and `rebind()` exists for harnesses that want to prove the handle
/// survives `reset()`.
class CounterRef {
 public:
  explicit CounterRef(std::string name) : name_(std::move(name)) {}

  Counter& get() {
    if (counter_ == nullptr) counter_ = &Registry::instance().counter(name_);
    return *counter_;
  }

  /// Drop the cached pointer and re-resolve on next use. `Registry::reset()`
  /// keeps old pointers valid, so this is never *required* — it exists so
  /// tests can assert that a re-resolved handle is the same object.
  void rebind() { counter_ = nullptr; }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Counter* counter_{nullptr};
};

/// Histogram analog of CounterRef; `bounds` is consulted on first creation only.
class HistogramRef {
 public:
  explicit HistogramRef(std::string name, std::vector<double> bounds = {})
      : name_(std::move(name)), bounds_(std::move(bounds)) {}

  Histogram& get() {
    if (hist_ == nullptr) hist_ = &Registry::instance().histogram(name_, bounds_);
    return *hist_;
  }

  void rebind() { hist_ = nullptr; }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<double> bounds_;
  Histogram* hist_{nullptr};
};

/// Escape a string for embedding in a JSON document (shared by the span
/// tracer's trace_event export and the bench reports).
std::string json_escape(const std::string& s);

/// Format a double as a JSON number (finite guaranteed; non-finite becomes 0).
std::string json_number(double v);

}  // namespace dvemig::obs
