#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dvemig::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds{
      1,      2,      5,      10,     20,      50,      100,     200,
      500,    1000,   2000,   5000,   10000,   20000,   50000,   100000,
      200000, 500000, 1000000, 2000000, 5000000, 10000000};
  return bounds;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = default_latency_bounds_us();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) v = 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string Registry::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(c->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(g->value());
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + json_number(h->sum()) +
           ", \"min\": " + json_number(h->min()) +
           ", \"max\": " + json_number(h->max()) + ", \"buckets\": [";
    const auto& bounds = h->bounds();
    const auto& buckets = h->bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? json_number(bounds[i]) : std::string("null");
      out += ", \"count\": " + std::to_string(buckets[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

}  // namespace dvemig::obs
