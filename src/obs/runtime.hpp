// Process-level observability runtime: singleton wiring and at-exit export.
//
// Every dvemig binary honours three environment variables, with zero per-binary
// code:
//   DVEMIG_TRACE_OUT=<file>    write the Chrome trace_event JSON at exit;
//   DVEMIG_METRICS_OUT=<file>  write the metrics-registry JSON at exit;
//   DVEMIG_OBS_DIR=<dir>       write both, as <dir>/trace_<pid>.json and
//                              <dir>/metrics_<pid>.json (CI failure artifacts).
// `set_trace_out`/`set_metrics_out` override the env (the shared --trace-out /
// --metrics-out CLI flags route here).
#pragma once

#include <string>

#include "src/common/cli.hpp"

namespace dvemig::obs {

/// Override/enable the at-exit chrome-trace export (empty disables override).
void set_trace_out(std::string path);
/// Override/enable the at-exit metrics-snapshot export.
void set_metrics_out(std::string path);

/// Apply the shared CLI flags (src/common/cli.hpp): --trace-out/--metrics-out.
/// The log level was already applied by parse_common_flags itself.
void apply_common_flags(const CommonFlags& flags);

/// Run the exports immediately (also happens automatically at process exit).
void export_now();

}  // namespace dvemig::obs
