#include "src/obs/span.hpp"

#include <algorithm>
#include <cstdio>

#include "src/common/log.hpp"
#include "src/common/sim_clock.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::obs {

std::uint32_t Tracer::track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<std::uint32_t>(i);
  }
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

SpanId Tracer::begin(std::uint32_t track, std::string name) {
  return begin_at(track, std::move(name), SimClock::now_ns());
}

SpanId Tracer::begin_at(std::uint32_t track, std::string name,
                        std::int64_t t_ns) {
  const SpanId id = next_id_++;
  Span span;
  span.id = id;
  span.track = track;
  span.t_begin_ns = t_ns;
  span.name = std::move(name);
  auto& stack = open_stacks_[track];
  span.depth = static_cast<std::uint32_t>(stack.size());
  stack.push_back(id);
  open_.emplace(id, std::move(span));
  return id;
}

void Tracer::attr(SpanId id, std::string key, std::string value) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::end(SpanId id) { end_at(id, SimClock::now_ns()); }

void Tracer::end_at(SpanId id, std::int64_t t_ns) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // unknown / already ended — tolerate
  Span span = std::move(it->second);
  open_.erase(it);
  auto& stack = open_stacks_[span.track];
  stack.erase(std::remove(stack.begin(), stack.end(), id), stack.end());
  span.t_end_ns = std::max(t_ns, span.t_begin_ns);
  complete(std::move(span));
}

void Tracer::complete(Span span) {
  if (done_.size() >= capacity_) {
    done_.pop_front();
    dropped_ += 1;
  }
  done_.push_back(std::move(span));
}

const Span* Tracer::find(SpanId id) const {
  const auto it = open_.find(id);
  if (it != open_.end()) return &it->second;
  for (auto rit = done_.rbegin(); rit != done_.rend(); ++rit) {
    if (rit->id == id) return &*rit;
  }
  return nullptr;
}

const Span* Tracer::last_completed(std::string_view name) const {
  for (auto rit = done_.rbegin(); rit != done_.rend(); ++rit) {
    if (rit->name == name) return &*rit;
  }
  return nullptr;
}

void Tracer::clear() {
  open_.clear();
  open_stacks_.clear();
  done_.clear();
  dropped_ = 0;
}

std::map<std::string, SpanStats> Tracer::summary() const {
  std::map<std::string, SpanStats> out;
  for (const Span& s : done_) {
    SpanStats& stats = out[s.name];
    stats.count += 1;
    stats.total_ns += s.duration_ns();
  }
  return out;
}

namespace {

void append_args(std::string& out, const Span& s) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < s.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += '"';
    out += json_escape(s.attrs[i].first);
    out += "\":\"";
    out += json_escape(s.attrs[i].second);
    out += '"';
  }
  out += "}";
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  // trace_event format: ts/dur in (fractional) microseconds, tracks as tids of
  // one synthetic process. "X" = complete span, "B" = still open at export,
  // "M" = metadata naming the tracks.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(i) + ",\"args\":{\"name\":\"" +
           json_escape(tracks_[i]) + "\"}}";
  }
  for (const Span& s : done_) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.t_begin_ns) / 1e3);
    out += "{\"name\":\"" + json_escape(s.name) +
           "\",\"cat\":\"dvemig\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s.track) + ",\"ts\":" + buf;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.duration_ns()) / 1e3);
    out += ",\"dur\":";
    out += buf;
    out += ",";
    append_args(out, s);
    out += "}";
  }
  // Deterministic order for open spans despite the unordered map.
  std::vector<const Span*> open;
  open.reserve(open_.size());
  for (const auto& [id, span] : open_) open.push_back(&span);
  std::sort(open.begin(), open.end(),
            [](const Span* a, const Span* b) { return a->id < b->id; });
  for (const Span* s : open) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s->t_begin_ns) / 1e3);
    out += "{\"name\":\"" + json_escape(s->name) +
           "\",\"cat\":\"dvemig\",\"ph\":\"B\",\"pid\":1,\"tid\":" +
           std::to_string(s->track) + ",\"ts\":" + buf + ",";
    append_args(out, *s);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::timeline_text() const {
  std::vector<const Span*> spans;
  spans.reserve(done_.size() + open_.size());
  for (const Span& s : done_) spans.push_back(&s);
  for (const auto& [id, span] : open_) spans.push_back(&span);
  std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
    if (a->t_begin_ns != b->t_begin_ns) return a->t_begin_ns < b->t_begin_ns;
    return a->id < b->id;
  });
  std::string out;
  char buf[128];
  for (const Span* s : spans) {
    const std::string& track =
        s->track < tracks_.size() ? tracks_[s->track] : "?";
    std::snprintf(buf, sizeof buf, "%12.6f %-12s %*s",
                  static_cast<double>(s->t_begin_ns) / 1e9, track.c_str(),
                  static_cast<int>(s->depth) * 2, "");
    out += buf;
    out += s->name;
    if (s->open()) {
      out += " [open]";
    } else {
      std::snprintf(buf, sizeof buf, " (%.3f ms)",
                    static_cast<double>(s->duration_ns()) / 1e6);
      out += buf;
    }
    for (const auto& [key, value] : s->attrs) {
      out += " " + key + "=" + value;
    }
    out += '\n';
  }
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    DVEMIG_WARN("obs", "cannot write trace to %s", path.c_str());
    return false;
  }
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace dvemig::obs
