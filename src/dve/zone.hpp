// Virtual-space partitioning (Section VI-C): a 10x10 grid of zones, each zone
// managed by one zone-server process; every DVE node initially hosts two grid
// rows (20 zones), matching Figure 5a.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"
#include "src/net/address.hpp"

namespace dvemig::dve {

using ZoneId = std::uint32_t;

/// Zone servers are addressed by port: the single-IP architecture identifies DVE
/// processes "by separate port numbers, instead of separate IP addresses".
inline constexpr net::Port kZonePortBase = 20000;

inline net::Port zone_port(ZoneId zone) {
  return static_cast<net::Port>(kZonePortBase + zone);
}

class ZoneGrid {
 public:
  ZoneGrid(std::uint32_t rows = 10, std::uint32_t cols = 10)
      : rows_(rows), cols_(cols) {}

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t zone_count() const { return rows_ * cols_; }

  ZoneId zone_at(std::uint32_t row, std::uint32_t col) const {
    DVEMIG_EXPECTS(row < rows_ && col < cols_);
    return row * cols_ + col;
  }
  std::uint32_t row_of(ZoneId z) const { return z / cols_; }
  std::uint32_t col_of(ZoneId z) const { return z % cols_; }

  /// Initial assignment: node i manages rows [i*rows/nodes, (i+1)*rows/nodes).
  std::uint32_t initial_node_of(ZoneId z, std::uint32_t node_count) const {
    DVEMIG_EXPECTS(node_count > 0);
    return row_of(z) * node_count / rows_;
  }
  std::vector<ZoneId> zones_of_node(std::uint32_t node, std::uint32_t node_count) const;

  /// One grid step from `z` toward `target` (diagonal moves allowed); returns `z`
  /// when already there.
  ZoneId step_toward(ZoneId z, ZoneId target) const;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
};

}  // namespace dvemig::dve
