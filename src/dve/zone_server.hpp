// Zone server process (Section VI-C): manages one zone of the virtual space.
//
// Real-time loop at 20 Hz; CPU consumption grows proportionally with the number of
// connected clients; maintains a listening TCP socket on the zone's well-known
// port (shared public IP), one TCP connection per client, and a MySQL session with
// the database server over the cluster network. Fully migratable: its logical
// state serializes into the checkpoint image and its sockets take the socket
// migration path, so clients and the DB session survive a node change untouched.
#pragma once

#include <memory>
#include <vector>

#include "src/dve/zone.hpp"
#include "src/proc/node.hpp"

namespace dvemig::dve {

struct ZoneServerConfig {
  ZoneId zone{0};
  SimDuration tick{SimTime::milliseconds(50)};  // 20 updates/s (Quake III default)
  std::size_t update_bytes{256};                // MMPOG average (Section VI-C)
  double base_cores{0.008};
  double per_client_cores{0.0007};
  // Worker threads beyond the main loop (AI, persistence flusher, ...). The
  // checkpoint's freeze phase synchronises all of them on the barrier and
  // transfers each thread's context (Figure 3).
  std::uint32_t worker_threads{2};
  bool active_updates{false};  // push updates to every client each tick
  // Memory footprint (heap dominates the precopy transfer).
  std::uint64_t heap_bytes{12ull << 20};
  std::uint64_t code_bytes{2ull << 20};
  std::uint64_t libs_bytes{4ull << 20};
  std::uint64_t stack_bytes{256ull << 10};
  std::uint64_t pages_per_tick{4};  // dirtying rate floor; grows with clients
  // Database session.
  bool use_db{true};
  net::Ipv4Addr db_addr{};
  SimDuration db_update_period{SimTime::seconds(1)};
  std::size_t db_query_bytes{160};
};

class ZoneServerApp final : public proc::AppLogic {
 public:
  static constexpr const char* kKind = "zone_server";

  explicit ZoneServerApp(ZoneServerConfig cfg) : cfg_(cfg) {}

  /// Create the process on `node`: address space, listener, DB session, app.
  static std::shared_ptr<proc::Process> launch(proc::Node& node,
                                               ZoneServerConfig cfg);

  /// Idempotently register the restore factory (also done by launch()).
  static void register_kind();

  // AppLogic interface.
  std::string kind() const override { return kKind; }
  void serialize(BinaryWriter& w) const override;
  void start(proc::Process& proc) override;
  void stop() override;

  const ZoneServerConfig& config() const { return cfg_; }
  std::size_t client_count() const { return client_fds_.size(); }
  std::uint64_t updates_sent() const { return updates_sent_; }
  std::uint64_t db_queries_sent() const { return db_queries_sent_; }
  std::uint64_t db_responses() const { return db_responses_; }
  std::uint64_t ticks() const { return ticks_; }
  Fd listener_fd() const { return listener_fd_; }
  Fd db_fd() const { return db_fd_; }

 private:
  static std::shared_ptr<proc::AppLogic> deserialize(BinaryReader& r);

  void tick();
  void db_update();
  void on_accept_ready();
  void on_db_readable();
  void adopt_client(Fd fd);
  void drop_client(Fd fd);
  stack::TcpSocket& tcp_at(Fd fd) const;

  ZoneServerConfig cfg_;
  proc::Process* proc_{nullptr};

  Fd listener_fd_{-1};
  Fd db_fd_{-1};
  std::vector<Fd> client_fds_;

  sim::TimerHandle tick_timer_;
  sim::TimerHandle db_timer_;

  std::uint32_t update_seq_{0};
  std::uint64_t updates_sent_{0};
  std::uint64_t db_queries_sent_{0};
  std::uint64_t db_responses_{0};
  std::uint64_t ticks_{0};
  Buffer db_rx_;  // partial DB responses across reads (and across migrations)
  // Absolute deadlines of the next tick / DB update, carried across migration so
  // the real-time loop catches up after a freeze instead of re-arming from zero.
  std::int64_t next_tick_at_ns_{-1};
  std::int64_t next_db_at_ns_{-1};
};

}  // namespace dvemig::dve
