// Client population and movement model (Section VI-C): 10,000 clients initially
// uniform over the 10x10 grid; during the experiment, clients from the middle
// regions gradually drift toward the up-left and down-right corners — the entity
// clustering reported as common in large-scale environments.
#pragma once

#include <memory>
#include <vector>

#include "src/dve/client.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone.hpp"

namespace dvemig::dve {

struct PopulationConfig {
  std::uint32_t client_count{10000};
  // Connection ramp: clients connect spread over this window from t=0.
  SimDuration connect_ramp{SimTime::seconds(10)};
  // Movement model.
  std::uint32_t middle_row_min{2};
  std::uint32_t middle_row_max{7};     // inclusive; rows 2..7 are "the middle"
  double moving_fraction{0.25};        // fraction of middle clients that drift
  // Movers head for a random zone inside the corner region (an NxN block at the
  // up-left / down-right corner), modelling clustering *around* the corners
  // rather than a single pathological zone.
  std::uint32_t corner_region{3};
  SimDuration move_interval{SimTime::seconds(2)};
  double move_step_prob{0.06};         // per mover per interval
  SimTime move_start{SimTime::seconds(60)};
  SimTime move_end{SimTime::seconds(720)};
  std::uint64_t seed{42};
};

class Population {
 public:
  Population(Testbed& testbed, const ZoneGrid& grid, PopulationConfig cfg = {});

  /// Create all clients and schedule their (ramped) connections.
  void populate();
  /// Begin the periodic movement steps.
  void start_movement();

  std::vector<std::uint32_t> clients_per_zone() const;
  std::uint32_t clients_in_zone(ZoneId z) const;
  std::size_t size() const { return members_.size(); }
  std::uint64_t total_resets() const;
  std::uint64_t zone_handoffs() const { return handoffs_; }

 private:
  struct Member {
    ClientHost* host{nullptr};
    std::unique_ptr<TcpDveClient> client;
    ZoneId zone{0};
    bool mover{false};
    ZoneId target{0};
  };

  void movement_step();

  Testbed* testbed_;
  ZoneGrid grid_;
  PopulationConfig cfg_;
  Rng rng_;
  std::vector<Member> members_;
  sim::TimerHandle move_timer_;
  std::uint64_t handoffs_{0};
};

}  // namespace dvemig::dve
