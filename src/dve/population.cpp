#include "src/dve/population.hpp"

#include <algorithm>

namespace dvemig::dve {

Population::Population(Testbed& testbed, const ZoneGrid& grid, PopulationConfig cfg)
    : testbed_(&testbed), grid_(grid), cfg_(cfg), rng_(cfg.seed) {}

void Population::populate() {
  members_.reserve(cfg_.client_count);
  const std::uint32_t region = std::max<std::uint32_t>(1, cfg_.corner_region);

  for (std::uint32_t i = 0; i < cfg_.client_count; ++i) {
    Member m;
    m.host = &testbed_->make_client_host();
    m.client = std::make_unique<TcpDveClient>(*m.host, testbed_->public_ip());
    // Uniform initial distribution over the zones.
    m.zone = static_cast<ZoneId>(i % grid_.zone_count());
    const std::uint32_t row = grid_.row_of(m.zone);
    const bool middle = row >= cfg_.middle_row_min && row <= cfg_.middle_row_max;
    m.mover = middle && rng_.chance(cfg_.moving_fraction);
    // Upper-middle clients head toward the up-left corner region; lower-middle
    // toward the down-right one. Each mover picks its own spot in the region.
    const std::uint32_t tr = static_cast<std::uint32_t>(rng_.next_below(region));
    const std::uint32_t tc = static_cast<std::uint32_t>(rng_.next_below(region));
    if (row < grid_.rows() / 2) {
      m.target = grid_.zone_at(tr, tc);
    } else {
      m.target = grid_.zone_at(grid_.rows() - 1 - tr, grid_.cols() - 1 - tc);
    }
    members_.push_back(std::move(m));
  }

  // Ramped connects so 10k handshakes do not fire in one instant.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const SimDuration when = SimTime::nanoseconds(
        cfg_.connect_ramp.ns * static_cast<std::int64_t>(i) /
        static_cast<std::int64_t>(members_.size()));
    testbed_->engine().schedule_after(when, [this, i] {
      Member& m = members_[i];
      m.client->connect_to_zone(m.zone);
    });
  }
}

void Population::start_movement() {
  move_timer_ = testbed_->engine().schedule_at(cfg_.move_start,
                                               [this] { movement_step(); });
}

void Population::movement_step() {
  const SimTime now = testbed_->engine().now();
  if (now > cfg_.move_end) return;  // clustering complete
  for (Member& m : members_) {
    if (!m.mover || m.zone == m.target) continue;
    if (!rng_.chance(cfg_.move_step_prob)) continue;
    const ZoneId next = grid_.step_toward(m.zone, m.target);
    m.zone = next;
    handoffs_ += 1;
    // Zone handoff: the client reconnects to the new zone's server port (the
    // application-layer client migration the paper contrasts with OS-level
    // balancing — it happens regardless of which node hosts the zone).
    m.client->connect_to_zone(next);
  }
  move_timer_ = testbed_->engine().schedule_after(cfg_.move_interval,
                                                  [this] { movement_step(); });
}

std::vector<std::uint32_t> Population::clients_per_zone() const {
  std::vector<std::uint32_t> counts(grid_.zone_count(), 0);
  for (const Member& m : members_) counts[m.zone] += 1;
  return counts;
}

std::uint32_t Population::clients_in_zone(ZoneId z) const {
  std::uint32_t n = 0;
  for (const Member& m : members_) {
    if (m.zone == z) ++n;
  }
  return n;
}

std::uint64_t Population::total_resets() const {
  std::uint64_t n = 0;
  for (const Member& m : members_) n += m.client->resets_seen();
  return n;
}

}  // namespace dvemig::dve
