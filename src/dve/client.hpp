// Game clients — hosts on the internet side of the broadcast router.
//
// Each client host runs its own NetStack (its TCP/UDP endpoints are full peers of
// the migratable server sockets), so "the transition is fully transparent from the
// peers' point of view" is checked against real protocol state, not assumed.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/dve/zone.hpp"
#include "src/net/router.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/tcp_socket.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::dve {

class ClientHost {
 public:
  ClientHost(sim::Engine& engine, net::BroadcastRouter& router, net::Ipv4Addr addr,
             std::string name, SimDuration clock_offset = SimTime::zero());
  ~ClientHost();
  ClientHost(const ClientHost&) = delete;
  ClientHost& operator=(const ClientHost&) = delete;

  stack::NetStack& stack() { return stack_; }
  net::Ipv4Addr addr() const { return addr_; }

 private:
  net::BroadcastRouter* router_;
  net::Ipv4Addr addr_;
  stack::NetStack stack_;
};

struct PacketRecord {
  SimTime t{};
  std::uint32_t seq{0};
};

/// OpenArena-style UDP client: sends a command datagram every `cmd_period`
/// (keeping itself known to the server) and records every received snapshot.
class UdpGameClient {
 public:
  UdpGameClient(ClientHost& host, net::Endpoint server,
                SimDuration cmd_period = SimTime::milliseconds(50));

  void start();
  void stop();

  const std::vector<PacketRecord>& received() const { return received_; }
  std::uint64_t commands_sent() const { return commands_sent_; }

  /// Largest gap between consecutive snapshot arrivals within [from, to].
  SimDuration max_gap(SimTime from, SimTime to) const;
  /// Count of missing snapshot sequence numbers over the recorded range.
  std::size_t missing_snapshots() const;

 private:
  void send_command();
  void on_readable();

  ClientHost* host_;
  net::Endpoint server_;
  SimDuration cmd_period_;
  std::shared_ptr<stack::UdpSocket> sock_;
  sim::TimerHandle cmd_timer_;
  std::vector<PacketRecord> received_;
  std::uint64_t commands_sent_{0};
};

/// DVE client: one TCP connection to the zone server of its current zone. The
/// zone is addressed purely by port on the shared public IP, so neither zone
/// handoffs nor server migrations require knowing which node serves the zone.
class TcpDveClient {
 public:
  TcpDveClient(ClientHost& host, net::Ipv4Addr server_ip);

  /// Connect (or hand off) to a zone's server; closes any previous connection.
  void connect_to_zone(ZoneId zone);
  void disconnect();
  bool connected() const;
  ZoneId zone() const { return zone_; }

  /// Active mode: send a `bytes`-sized message every `period` (fig. 5b/5c load).
  void set_active(SimDuration period, std::size_t bytes);
  void set_record(bool v) { record_ = v; }

  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t updates_received() const { return updates_received_; }
  std::uint64_t resets_seen() const { return resets_seen_; }
  const std::vector<PacketRecord>& records() const { return records_; }

 private:
  void on_readable();
  void send_message();

  ClientHost* host_;
  net::Ipv4Addr server_ip_;
  ZoneId zone_{0};
  std::shared_ptr<stack::TcpSocket> sock_;
  sim::TimerHandle send_timer_;
  SimDuration active_period_{SimTime::zero()};
  std::size_t active_bytes_{0};
  bool record_{false};

  Buffer rx_;
  std::uint64_t bytes_received_{0};
  std::uint64_t updates_received_{0};
  std::uint64_t resets_seen_{0};
  std::vector<PacketRecord> records_;
};

}  // namespace dvemig::dve
