#include "src/dve/testbed.hpp"

#include "src/dve/client.hpp"

namespace dvemig::dve {

namespace {

constexpr net::Ipv4Addr kClusterIp = net::Ipv4Addr::octets(203, 0, 113, 10);

net::Ipv4Addr node_local_addr(std::uint32_t i) {
  return net::Ipv4Addr::octets(192, 168, 1, static_cast<std::uint8_t>(10 + i));
}

constexpr net::Ipv4Addr kDbLocalAddr = net::Ipv4Addr::octets(192, 168, 1, 250);

}  // namespace

NodeBundle::NodeBundle(sim::Engine& engine, proc::NodeConfig node_cfg,
                       mig::CostModel cm, lb::PolicyConfig policy)
    : node(engine, std::move(node_cfg)),
      migd(node, cm),
      conductor(node, migd, policy) {}

Testbed::Testbed(TestbedConfig cfg)
    : cfg_(cfg),
      switch_(engine_, cfg.cluster_link),
      router_(engine_, kClusterIp, cfg.public_link) {
  for (std::uint32_t i = 0; i < cfg_.dve_nodes; ++i) {
    proc::NodeConfig nc;
    nc.id = NodeId{i + 1};
    nc.name = "node" + std::to_string(i + 1);
    nc.public_addr = kClusterIp;
    nc.local_addr = node_local_addr(i);
    nc.cpu_cores = cfg_.cpu_cores;
    // Distinct boot times: each node's jiffies run ahead of the previous one's —
    // the skew the TCP timestamp adjustment must absorb.
    nc.clock_offset = SimTime::seconds(100 + 137 * static_cast<std::int64_t>(i));

    auto bundle = std::make_unique<NodeBundle>(engine_, nc, cfg_.cost_model,
                                               cfg_.policy);
    proc::Node& n = bundle->node;
    // Local interface first: it is the default (primary) source for daemons.
    n.stack().add_interface(
        nc.local_addr,
        switch_.attach(nc.local_addr,
                       [&n](net::Packet p) { n.stack().rx(std::move(p)); }));
    n.stack().add_interface(
        kClusterIp,
        router_.attach_node(i, [&n](net::Packet p) { n.stack().rx(std::move(p)); }));

    bundle->migd.start();
    if (cfg_.start_conductors) {
      bundle->conductor.set_enabled(false);  // balancing opt-in per experiment
      bundle->conductor.start();
    }
    nodes_.push_back(std::move(bundle));
  }

  if (cfg_.with_db) {
    proc::NodeConfig dc;
    dc.id = NodeId{1000};
    dc.name = "dbserver";
    dc.public_addr = net::Ipv4Addr::any();
    dc.local_addr = kDbLocalAddr;
    dc.cpu_cores = 4.0;
    dc.clock_offset = SimTime::seconds(5000);
    db_node_ = std::make_unique<proc::Node>(engine_, dc);
    db_node_->stack().add_interface(
        kDbLocalAddr,
        switch_.attach(kDbLocalAddr, [this](net::Packet p) {
          db_node_->stack().rx(std::move(p));
        }));
    db_server_ = std::make_unique<DatabaseServer>(*db_node_);
    db_server_->start();
    db_translation_ = std::make_unique<mig::TranslationManager>(db_node_->stack());
    db_transd_ = std::make_unique<mig::Transd>(*db_node_, *db_translation_,
                                               cfg_.cost_model);
    db_transd_->start();
  }
}

ClientHost& Testbed::make_client_host() {
  const std::uint32_t n = next_client_ip_++;
  // 100.64.0.0/10 client address pool, skipping .0 and .255 host bytes.
  const net::Ipv4Addr addr = net::Ipv4Addr::octets(
      100, static_cast<std::uint8_t>(64 + n / 65025),
      static_cast<std::uint8_t>(1 + (n / 255) % 255),
      static_cast<std::uint8_t>(1 + n % 255));
  clients_.push_back(std::make_unique<ClientHost>(
      engine_, router_, addr, "cli" + std::to_string(n),
      SimTime::seconds(10 + static_cast<std::int64_t>(n % 977))));
  return *clients_.back();
}

}  // namespace dvemig::dve
