#include "src/dve/database.hpp"

#include <algorithm>

namespace dvemig::dve {

DatabaseServer::DatabaseServer(proc::Node& node, DatabaseConfig config)
    : node_(&node), config_(config) {}

void DatabaseServer::start() {
  listener_ = node_->stack().make_tcp();
  listener_->bind(node_->local_addr(), config_.port);
  listener_->listen(256);
  listener_->set_on_accept_ready([this] { on_accept_ready(); });
}

void DatabaseServer::on_accept_ready() {
  while (auto conn = listener_->accept()) {
    auto session = std::make_shared<Session>();
    session->server = this;
    session->sock = std::move(conn);
    session->sock->set_on_readable([s = session.get()] { s->on_readable(); });
    session->sock->set_on_peer_closed([this, s = session.get()] {
      s->sock->close();
      std::erase_if(sessions_, [s](const auto& e) { return e.get() == s; });
    });
    session->sock->set_on_reset([this, s = session.get()] {
      std::erase_if(sessions_, [s](const auto& e) { return e.get() == s; });
    });
    sessions_.push_back(std::move(session));
  }
}

void DatabaseServer::Session::on_readable() {
  Buffer chunk = sock->read();
  rx.insert(rx.end(), chunk.begin(), chunk.end());
  process();
}

void DatabaseServer::Session::process() {
  while (rx.size() >= 4) {
    BinaryReader len_reader({rx.data(), 4});
    const std::uint32_t len = len_reader.u32();
    if (rx.size() - 4 < len) break;
    rx.erase(rx.begin(), rx.begin() + 4 + len);

    server->queries_ += 1;
    auto& engine = server->node_->engine();
    engine.schedule_after(
        server->config_.processing_delay,
        [self = shared_from_this()] {
          if (self->sock->state() != stack::TcpState::established) return;
          BinaryWriter w;
          w.u32(static_cast<std::uint32_t>(self->server->config_.response_bytes));
          w.bytes(Buffer(self->server->config_.response_bytes, 0x42));
          self->sock->send(w.take());
        });
  }
}

}  // namespace dvemig::dve
