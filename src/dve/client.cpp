#include "src/dve/client.hpp"

#include <algorithm>

namespace dvemig::dve {

ClientHost::ClientHost(sim::Engine& engine, net::BroadcastRouter& router,
                       net::Ipv4Addr addr, std::string name,
                       SimDuration clock_offset)
    : router_(&router), addr_(addr), stack_(engine, std::move(name), clock_offset) {
  net::PacketSink tx =
      router.attach_client(addr, [this](net::Packet p) { stack_.rx(std::move(p)); });
  stack_.add_interface(addr, std::move(tx));
}

ClientHost::~ClientHost() { router_->detach_client(addr_); }

// ---------------------------------------------------------------- UdpGameClient

UdpGameClient::UdpGameClient(ClientHost& host, net::Endpoint server,
                             SimDuration cmd_period)
    : host_(&host), server_(server), cmd_period_(cmd_period) {}

void UdpGameClient::start() {
  sock_ = host_->stack().make_udp();
  sock_->bind(host_->addr(), 0);
  sock_->connect(server_);
  sock_->set_on_readable([this] { on_readable(); });
  send_command();
}

void UdpGameClient::stop() {
  cmd_timer_.cancel();
  if (sock_) sock_->close();
}

void UdpGameClient::send_command() {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(commands_sent_));
  w.bytes(Buffer(48, 0x7E));  // usercmd-sized payload
  sock_->send(w.take());
  commands_sent_ += 1;
  cmd_timer_ = host_->stack().engine().schedule_after(cmd_period_,
                                                      [this] { send_command(); });
}

void UdpGameClient::on_readable() {
  while (auto dgram = sock_->recv()) {
    BinaryReader r(dgram->data);
    const std::uint32_t seq = r.u32();
    received_.push_back(PacketRecord{host_->stack().engine().now(), seq});
  }
}

SimDuration UdpGameClient::max_gap(SimTime from, SimTime to) const {
  SimDuration best = SimTime::zero();
  const PacketRecord* prev = nullptr;
  for (const PacketRecord& rec : received_) {
    if (rec.t < from || rec.t > to) continue;
    if (prev != nullptr && rec.t - prev->t > best) best = rec.t - prev->t;
    prev = &rec;
  }
  return best;
}

std::size_t UdpGameClient::missing_snapshots() const {
  if (received_.empty()) return 0;
  std::size_t missing = 0;
  for (std::size_t i = 1; i < received_.size(); ++i) {
    const std::uint32_t a = received_[i - 1].seq;
    const std::uint32_t b = received_[i].seq;
    if (b > a + 1) missing += b - a - 1;
  }
  return missing;
}

// ---------------------------------------------------------------- TcpDveClient

TcpDveClient::TcpDveClient(ClientHost& host, net::Ipv4Addr server_ip)
    : host_(&host), server_ip_(server_ip) {}

void TcpDveClient::connect_to_zone(ZoneId zone) {
  disconnect();
  zone_ = zone;
  sock_ = host_->stack().make_tcp();
  sock_->bind(host_->addr(), 0);
  sock_->set_on_readable([this] { on_readable(); });
  sock_->set_on_reset([this] { resets_seen_ += 1; });
  sock_->connect(net::Endpoint{server_ip_, zone_port(zone)});
  if (active_period_ > SimTime::zero()) {
    send_timer_ = host_->stack().engine().schedule_after(active_period_,
                                                         [this] { send_message(); });
  }
}

void TcpDveClient::disconnect() {
  send_timer_.cancel();
  if (sock_) {
    sock_->close();
    sock_.reset();
  }
  rx_.clear();
}

bool TcpDveClient::connected() const {
  return sock_ && sock_->state() == stack::TcpState::established;
}

void TcpDveClient::set_active(SimDuration period, std::size_t bytes) {
  active_period_ = period;
  active_bytes_ = bytes;
}

void TcpDveClient::send_message() {
  if (!sock_) return;
  if (sock_->state() == stack::TcpState::established) {
    sock_->send(Buffer(active_bytes_, 0x6B));
  }
  send_timer_ = host_->stack().engine().schedule_after(active_period_,
                                                       [this] { send_message(); });
}

void TcpDveClient::on_readable() {
  Buffer chunk = sock_->read();
  bytes_received_ += chunk.size();
  rx_.insert(rx_.end(), chunk.begin(), chunk.end());
  // Updates are length-prefixed: u32 len | u32 seq | padding.
  while (rx_.size() >= 4) {
    BinaryReader r({rx_.data(), rx_.size()});
    const std::uint32_t len = r.u32();
    if (rx_.size() - 4 < len) break;
    if (len >= 4) {
      const std::uint32_t seq = r.u32();
      updates_received_ += 1;
      if (record_) {
        records_.push_back(PacketRecord{host_->stack().engine().now(), seq});
      }
    }
    rx_.erase(rx_.begin(), rx_.begin() + 4 + len);
  }
}

}  // namespace dvemig::dve
