// OpenArena-style FPS server (Section VI-B): UDP, 20 server frames per second,
// ~256-byte snapshots to every connected client. Used by the Figure 4 experiment:
// live-migrate the server mid-game and measure the packet-level delay.
#pragma once

#include <memory>
#include <vector>

#include "src/dve/zone.hpp"
#include "src/proc/node.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::dve {

struct GameServerConfig {
  net::Port port{27960};  // Quake III default
  SimDuration tick{SimTime::milliseconds(50)};  // 20 updates/s
  std::size_t snapshot_bytes{256};
  double base_cores{0.05};
  double per_client_cores{0.01};
  std::uint64_t heap_bytes{24ull << 20};
  std::uint64_t code_bytes{4ull << 20};
  // A game frame touches a large slice of the entity/world working set
  // (~2.7 MiB per 50 ms frame, ~55 MB/s) — this is what makes the paper's final
  // freeze transfer, and thus its ~20 ms downtime, non-trivial.
  std::uint64_t pages_per_tick{700};
  SimDuration client_timeout{SimTime::seconds(5)};
};

class GameServerApp final : public proc::AppLogic {
 public:
  static constexpr const char* kKind = "game_server";

  explicit GameServerApp(GameServerConfig cfg) : cfg_(cfg) {}

  static std::shared_ptr<proc::Process> launch(proc::Node& node,
                                               GameServerConfig cfg);
  static void register_kind();

  std::string kind() const override { return kKind; }
  void serialize(BinaryWriter& w) const override;
  void start(proc::Process& proc) override;
  void stop() override;

  std::size_t client_count() const { return clients_.size(); }
  std::uint64_t snapshots_sent() const { return snapshots_sent_; }
  std::uint32_t snapshot_seq() const { return snapshot_seq_; }

 private:
  struct ClientEntry {
    net::Endpoint endpoint{};
    std::int64_t last_seen_ns{0};
  };

  static std::shared_ptr<proc::AppLogic> deserialize(BinaryReader& r);
  void tick();
  void on_readable();
  stack::UdpSocket& udp() const;

  GameServerConfig cfg_;
  proc::Process* proc_{nullptr};
  Fd sock_fd_{-1};
  std::vector<ClientEntry> clients_;
  sim::TimerHandle tick_timer_;
  std::uint32_t snapshot_seq_{0};
  std::uint64_t snapshots_sent_{0};
  // Absolute deadline of the next server frame. Carried across migration so the
  // real-time loop *catches up* after the freeze instead of re-arming a full
  // 50 ms interval — this is what keeps the Figure 4 delay near the downtime.
  std::int64_t next_tick_at_ns_{-1};
};

}  // namespace dvemig::dve
