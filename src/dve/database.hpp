// MySQL-stand-in database server (Section II-A: "Database servers may store
// persistent state information, which is in turn accessed by the zone server
// processes").
//
// Protocol: length-prefixed requests (u32 len | payload); each request earns a
// length-prefixed response after a fixed processing delay. Runs on its own cluster
// node reachable over the local network — which makes every zone server's DB
// session an *in-cluster* connection that must survive migration via the
// translation-filter mechanism.
#pragma once

#include <memory>
#include <vector>

#include "src/proc/node.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::dve {

inline constexpr net::Port kDbPort = 3306;

struct DatabaseConfig {
  net::Port port{kDbPort};
  SimDuration processing_delay{SimTime::microseconds(200)};
  std::size_t response_bytes{64};
};

class DatabaseServer {
 public:
  DatabaseServer(proc::Node& node, DatabaseConfig config = {});

  void start();

  std::uint64_t queries_served() const { return queries_; }
  std::size_t active_sessions() const { return sessions_.size(); }

 private:
  struct Session : std::enable_shared_from_this<Session> {
    DatabaseServer* server{nullptr};
    stack::TcpSocket::Ptr sock;
    Buffer rx;

    void on_readable();
    void process();
  };

  void on_accept_ready();

  proc::Node* node_;
  DatabaseConfig config_;
  stack::TcpSocket::Ptr listener_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t queries_{0};
};

}  // namespace dvemig::dve
