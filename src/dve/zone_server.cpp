#include "src/dve/zone_server.hpp"

#include <algorithm>

#include "src/common/log.hpp"
#include "src/dve/database.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::dve {

void ZoneServerApp::register_kind() {
  if (proc::AppLogic::is_registered(kKind)) return;
  proc::AppLogic::register_kind(kKind, [](BinaryReader& r) { return deserialize(r); });
}

std::shared_ptr<proc::Process> ZoneServerApp::launch(proc::Node& node,
                                                     ZoneServerConfig cfg) {
  register_kind();
  auto proc = node.spawn("zone_" + std::to_string(cfg.zone));
  for (std::uint32_t i = 0; i < cfg.worker_threads; ++i) proc->add_thread();

  auto& mem = proc->mem();
  mem.mmap(cfg.code_bytes, proc::prot_read | proc::prot_exec, "zone_server",
           /*file_backed=*/true);
  mem.mmap(cfg.libs_bytes, proc::prot_read | proc::prot_exec, "libs",
           /*file_backed=*/true);
  mem.mmap(cfg.heap_bytes, proc::prot_read | proc::prot_write, "[heap]");
  mem.mmap(cfg.stack_bytes, proc::prot_read | proc::prot_write, "[stack]");
  proc->files().open_file("/var/log/zone_" + std::to_string(cfg.zone) + ".log");

  auto app = std::make_shared<ZoneServerApp>(cfg);

  auto listener = node.stack().make_tcp();
  listener->bind(node.public_addr(), zone_port(cfg.zone));
  listener->listen(512);
  app->listener_fd_ = proc->files().attach_socket(listener);

  if (cfg.use_db) {
    auto db = node.stack().make_tcp();
    db->bind(node.local_addr(), 0);
    db->connect(net::Endpoint{cfg.db_addr, kDbPort});
    app->db_fd_ = proc->files().attach_socket(db);
  }

  proc->set_app(app);
  app->start(*proc);
  return proc;
}

void ZoneServerApp::serialize(BinaryWriter& w) const {
  w.u32(cfg_.zone);
  w.i64(cfg_.tick.ns);
  w.u32(static_cast<std::uint32_t>(cfg_.update_bytes));
  w.f64(cfg_.base_cores);
  w.f64(cfg_.per_client_cores);
  w.u32(cfg_.worker_threads);
  w.u8(cfg_.active_updates ? 1 : 0);
  w.u64(cfg_.pages_per_tick);
  w.u8(cfg_.use_db ? 1 : 0);
  w.u32(cfg_.db_addr.value);
  w.i64(cfg_.db_update_period.ns);
  w.u32(static_cast<std::uint32_t>(cfg_.db_query_bytes));

  w.i32(listener_fd_);
  w.i32(db_fd_);
  w.u32(static_cast<std::uint32_t>(client_fds_.size()));
  for (const Fd fd : client_fds_) w.i32(fd);
  w.u32(update_seq_);
  w.u64(updates_sent_);
  w.u64(db_queries_sent_);
  w.u64(db_responses_);
  w.u64(ticks_);
  w.blob(db_rx_);
  w.i64(next_tick_at_ns_);
  w.i64(next_db_at_ns_);
}

std::shared_ptr<proc::AppLogic> ZoneServerApp::deserialize(BinaryReader& r) {
  ZoneServerConfig cfg;
  cfg.zone = r.u32();
  cfg.tick = SimTime::nanoseconds(r.i64());
  cfg.update_bytes = r.u32();
  cfg.base_cores = r.f64();
  cfg.per_client_cores = r.f64();
  cfg.worker_threads = r.u32();
  cfg.active_updates = r.u8() != 0;
  cfg.pages_per_tick = r.u64();
  cfg.use_db = r.u8() != 0;
  cfg.db_addr.value = r.u32();
  cfg.db_update_period = SimTime::nanoseconds(r.i64());
  cfg.db_query_bytes = r.u32();

  auto app = std::make_shared<ZoneServerApp>(cfg);
  app->listener_fd_ = r.i32();
  app->db_fd_ = r.i32();
  const std::uint32_t n = r.u32();
  DVEMIG_EXPECTS(n <= r.remaining());
  app->client_fds_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) app->client_fds_.push_back(r.i32());
  app->update_seq_ = r.u32();
  app->updates_sent_ = r.u64();
  app->db_queries_sent_ = r.u64();
  app->db_responses_ = r.u64();
  app->ticks_ = r.u64();
  app->db_rx_ = r.blob();
  app->next_tick_at_ns_ = r.i64();
  app->next_db_at_ns_ = r.i64();
  return app;
}

stack::TcpSocket& ZoneServerApp::tcp_at(Fd fd) const {
  const proc::OpenFile& file = proc_->files().get(fd);
  DVEMIG_ASSERT(file.kind == proc::FileKind::socket);
  return static_cast<stack::TcpSocket&>(*file.socket);
}

void ZoneServerApp::start(proc::Process& proc) {
  proc_ = &proc;

  // (Re)attach socket callbacks by fd — the same code path serves first launch
  // and post-migration resume, where the fds map to freshly restored sockets.
  tcp_at(listener_fd_).set_on_accept_ready([this] { on_accept_ready(); });
  if (db_fd_ >= 0) {
    tcp_at(db_fd_).set_on_readable([this] { on_db_readable(); });
  }
  for (const Fd fd : client_fds_) adopt_client(fd);

  // Resume the real-time loop where it left off (catch-up after a freeze).
  sim::Engine& engine = proc.node().engine();
  const SimTime tick_due = next_tick_at_ns_ >= 0
                               ? std::max(engine.now(), SimTime{next_tick_at_ns_})
                               : engine.now() + cfg_.tick;
  next_tick_at_ns_ = tick_due.ns;
  tick_timer_ = engine.schedule_at(tick_due, [this] { tick(); });
  if (db_fd_ >= 0) {
    const SimTime db_due = next_db_at_ns_ >= 0
                               ? std::max(engine.now(), SimTime{next_db_at_ns_})
                               : engine.now() + cfg_.db_update_period;
    next_db_at_ns_ = db_due.ns;
    db_timer_ = engine.schedule_at(db_due, [this] { db_update(); });
  }
  on_accept_ready();   // connections may have completed while frozen
  on_db_readable();    // reinjected DB responses may already be readable
}

void ZoneServerApp::stop() {
  tick_timer_.cancel();
  db_timer_.cancel();
}

void ZoneServerApp::on_accept_ready() {
  if (proc_ == nullptr || proc_->frozen()) return;
  while (auto conn = tcp_at(listener_fd_).accept()) {
    const Fd fd = proc_->files().attach_socket(conn);
    client_fds_.push_back(fd);
    adopt_client(fd);
  }
}

void ZoneServerApp::adopt_client(Fd fd) {
  stack::TcpSocket& sock = tcp_at(fd);
  sock.set_on_peer_closed([this, fd] { drop_client(fd); });
  sock.set_on_reset([this, fd] { drop_client(fd); });
  // Client requests are drained each tick; no per-message callback needed.
}

void ZoneServerApp::drop_client(Fd fd) {
  if (proc_ == nullptr || proc_->frozen()) return;
  const auto it = std::find(client_fds_.begin(), client_fds_.end(), fd);
  if (it == client_fds_.end()) return;
  client_fds_.erase(it);
  tcp_at(fd).close();
  proc_->files().close(fd);
}

void ZoneServerApp::tick() {
  if (proc_ == nullptr || proc_->frozen()) return;
  ticks_ += 1;
  const double n = static_cast<double>(client_fds_.size());

  // The real-time loop: process client events, govern interactions, respond
  // state updates — CPU grows proportionally with the clients in the zone.
  const double cores = cfg_.base_cores + cfg_.per_client_cores * n;
  proc_->account_cpu(SimTime::nanoseconds(
      static_cast<std::int64_t>(cores * static_cast<double>(cfg_.tick.ns))));
  proc_->mem().touch_random(proc_->rng(),
                            cfg_.pages_per_tick + client_fds_.size() / 32);

  if (cfg_.active_updates) {
    update_seq_ += 1;
    for (const Fd fd : client_fds_) {
      stack::TcpSocket& sock = tcp_at(fd);
      if (sock.state() != stack::TcpState::established) continue;
      // Drain whatever the client sent since the last tick (the "events").
      sock.lock_user();  // the app is inside a recv/send syscall pair
      (void)sock.read();
      BinaryWriter w;
      w.u32(static_cast<std::uint32_t>(cfg_.update_bytes - 4));
      w.u32(update_seq_);
      w.bytes(Buffer(cfg_.update_bytes - 8, 0x5A));
      sock.send(w.take());
      sock.unlock_user();
      updates_sent_ += 1;
    }
  } else {
    for (const Fd fd : client_fds_) (void)tcp_at(fd).read();
  }

  next_tick_at_ns_ = (proc_->node().engine().now() + cfg_.tick).ns;
  tick_timer_ = proc_->node().engine().schedule_after(cfg_.tick, [this] { tick(); });
}

void ZoneServerApp::db_update() {
  if (proc_ == nullptr || proc_->frozen()) return;
  stack::TcpSocket& db = tcp_at(db_fd_);
  if (db.state() == stack::TcpState::established ||
      db.state() == stack::TcpState::syn_sent) {
    BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(cfg_.db_query_bytes));
    w.bytes(Buffer(cfg_.db_query_bytes, 0x51));
    db.send(w.take());
    db_queries_sent_ += 1;
  }
  next_db_at_ns_ = (proc_->node().engine().now() + cfg_.db_update_period).ns;
  db_timer_ = proc_->node().engine().schedule_after(cfg_.db_update_period,
                                                    [this] { db_update(); });
}

void ZoneServerApp::on_db_readable() {
  if (proc_ == nullptr || proc_->frozen() || db_fd_ < 0) return;
  Buffer chunk = tcp_at(db_fd_).read();
  db_rx_.insert(db_rx_.end(), chunk.begin(), chunk.end());
  while (db_rx_.size() >= 4) {
    BinaryReader r({db_rx_.data(), 4});
    const std::uint32_t len = r.u32();
    if (db_rx_.size() - 4 < len) break;
    db_rx_.erase(db_rx_.begin(), db_rx_.begin() + 4 + len);
    db_responses_ += 1;
  }
}

}  // namespace dvemig::dve
