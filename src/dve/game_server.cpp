#include "src/dve/game_server.hpp"

#include <algorithm>

namespace dvemig::dve {

void GameServerApp::register_kind() {
  if (proc::AppLogic::is_registered(kKind)) return;
  proc::AppLogic::register_kind(kKind, [](BinaryReader& r) { return deserialize(r); });
}

std::shared_ptr<proc::Process> GameServerApp::launch(proc::Node& node,
                                                     GameServerConfig cfg) {
  register_kind();
  auto proc = node.spawn("openarena");

  auto& mem = proc->mem();
  mem.mmap(cfg.code_bytes, proc::prot_read | proc::prot_exec, "ioq3ded",
           /*file_backed=*/true);
  mem.mmap(cfg.heap_bytes, proc::prot_read | proc::prot_write, "[heap]");
  mem.mmap(512 << 10, proc::prot_read | proc::prot_write, "[stack]");

  auto app = std::make_shared<GameServerApp>(cfg);
  auto sock = node.stack().make_udp();
  sock->bind(node.public_addr(), cfg.port);
  app->sock_fd_ = proc->files().attach_socket(sock);

  proc->set_app(app);
  app->start(*proc);
  return proc;
}

void GameServerApp::serialize(BinaryWriter& w) const {
  w.u16(cfg_.port);
  w.i64(cfg_.tick.ns);
  w.u32(static_cast<std::uint32_t>(cfg_.snapshot_bytes));
  w.f64(cfg_.base_cores);
  w.f64(cfg_.per_client_cores);
  w.u64(cfg_.pages_per_tick);
  w.i64(cfg_.client_timeout.ns);
  w.i32(sock_fd_);
  w.u32(static_cast<std::uint32_t>(clients_.size()));
  for (const ClientEntry& c : clients_) {
    w.u32(c.endpoint.addr.value);
    w.u16(c.endpoint.port);
    w.i64(c.last_seen_ns);
  }
  w.u32(snapshot_seq_);
  w.u64(snapshots_sent_);
  w.i64(next_tick_at_ns_);
}

std::shared_ptr<proc::AppLogic> GameServerApp::deserialize(BinaryReader& r) {
  GameServerConfig cfg;
  cfg.port = r.u16();
  cfg.tick = SimTime::nanoseconds(r.i64());
  cfg.snapshot_bytes = r.u32();
  cfg.base_cores = r.f64();
  cfg.per_client_cores = r.f64();
  cfg.pages_per_tick = r.u64();
  cfg.client_timeout = SimTime::nanoseconds(r.i64());

  auto app = std::make_shared<GameServerApp>(cfg);
  app->sock_fd_ = r.i32();
  const std::uint32_t n = r.u32();
  DVEMIG_EXPECTS(n <= r.remaining());
  app->clients_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClientEntry c;
    c.endpoint.addr.value = r.u32();
    c.endpoint.port = r.u16();
    c.last_seen_ns = r.i64();
    app->clients_.push_back(c);
  }
  app->snapshot_seq_ = r.u32();
  app->snapshots_sent_ = r.u64();
  app->next_tick_at_ns_ = r.i64();
  return app;
}

stack::UdpSocket& GameServerApp::udp() const {
  const proc::OpenFile& file = proc_->files().get(sock_fd_);
  DVEMIG_ASSERT(file.kind == proc::FileKind::socket);
  return static_cast<stack::UdpSocket&>(*file.socket);
}

void GameServerApp::start(proc::Process& proc) {
  proc_ = &proc;
  udp().set_on_readable([this] { on_readable(); });
  // Resume the real-time loop where it left off: a frame that came due during
  // the freeze fires immediately (catch-up), preserving the update cadence.
  sim::Engine& engine = proc.node().engine();
  const SimTime due = next_tick_at_ns_ >= 0
                          ? std::max(engine.now(), SimTime{next_tick_at_ns_})
                          : engine.now() + cfg_.tick;
  next_tick_at_ns_ = due.ns;
  tick_timer_ = engine.schedule_at(due, [this] { tick(); });
  on_readable();  // reinjected client commands may already be queued
}

void GameServerApp::stop() { tick_timer_.cancel(); }

void GameServerApp::on_readable() {
  if (proc_ == nullptr || proc_->frozen()) return;
  while (auto dgram = udp().recv()) {
    const auto it = std::find_if(clients_.begin(), clients_.end(), [&](const auto& c) {
      return c.endpoint == dgram->from;
    });
    const std::int64_t now = proc_->node().engine().now().ns;
    if (it == clients_.end()) {
      clients_.push_back(ClientEntry{dgram->from, now});
    } else {
      it->last_seen_ns = now;
    }
  }
}

void GameServerApp::tick() {
  if (proc_ == nullptr || proc_->frozen()) return;
  const std::int64_t now = proc_->node().engine().now().ns;
  std::erase_if(clients_, [&](const ClientEntry& c) {
    return now - c.last_seen_ns > cfg_.client_timeout.ns;
  });

  const double cores =
      cfg_.base_cores + cfg_.per_client_cores * static_cast<double>(clients_.size());
  proc_->account_cpu(SimTime::nanoseconds(
      static_cast<std::int64_t>(cores * static_cast<double>(cfg_.tick.ns))));
  proc_->mem().touch_random(proc_->rng(), cfg_.pages_per_tick);

  snapshot_seq_ += 1;
  for (const ClientEntry& c : clients_) {
    BinaryWriter w;
    w.u32(snapshot_seq_);
    w.bytes(Buffer(cfg_.snapshot_bytes - 4, 0x3C));
    udp().send_to(c.endpoint, w.take());
    snapshots_sent_ += 1;
  }
  next_tick_at_ns_ = (proc_->node().engine().now() + cfg_.tick).ns;
  tick_timer_ = proc_->node().engine().schedule_after(cfg_.tick, [this] { tick(); });
}

}  // namespace dvemig::dve
