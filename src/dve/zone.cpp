#include "src/dve/zone.hpp"

namespace dvemig::dve {

std::vector<ZoneId> ZoneGrid::zones_of_node(std::uint32_t node,
                                            std::uint32_t node_count) const {
  std::vector<ZoneId> zones;
  for (ZoneId z = 0; z < zone_count(); ++z) {
    if (initial_node_of(z, node_count) == node) zones.push_back(z);
  }
  return zones;
}

ZoneId ZoneGrid::step_toward(ZoneId z, ZoneId target) const {
  std::uint32_t r = row_of(z);
  std::uint32_t c = col_of(z);
  const std::uint32_t tr = row_of(target);
  const std::uint32_t tc = col_of(target);
  if (r < tr) ++r;
  else if (r > tr) --r;
  if (c < tc) ++c;
  else if (c > tc) --c;
  return zone_at(r, c);
}

}  // namespace dvemig::dve
