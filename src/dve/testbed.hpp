// Testbed assembly: the experimental framework of Section VI-A — a dedicated
// single-IP-address cluster of DVE server nodes plus a MySQL database server,
// interconnected by GbE, with a broadcasting router on the public side.
#pragma once

#include <memory>
#include <vector>

#include "src/dve/client.hpp"
#include "src/dve/database.hpp"
#include "src/lb/conductor.hpp"
#include "src/mig/migd.hpp"
#include "src/net/router.hpp"
#include "src/net/switch.hpp"

namespace dvemig::dve {

struct TestbedConfig {
  std::uint32_t dve_nodes{5};
  double cpu_cores{2.0};  // dual-core Opterons
  net::LinkConfig cluster_link{1e9, SimTime::microseconds(15)};
  net::LinkConfig public_link{1e9, SimTime::microseconds(100)};
  bool with_db{true};
  bool start_conductors{true};
  mig::CostModel cost_model{};
  lb::PolicyConfig policy{};
};

/// One DVE server node with its daemons (Figure 2's software components; transd
/// lives inside Migd).
struct NodeBundle {
  NodeBundle(sim::Engine& engine, proc::NodeConfig node_cfg, mig::CostModel cm,
             lb::PolicyConfig policy);

  proc::Node node;
  mig::Migd migd;
  lb::Conductor conductor;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = {});

  sim::Engine& engine() { return engine_; }
  net::BroadcastRouter& router() { return router_; }
  net::Switch& cluster_switch() { return switch_; }
  const TestbedConfig& config() const { return cfg_; }

  net::Ipv4Addr public_ip() const { return router_.cluster_ip(); }

  std::size_t node_count() const { return nodes_.size(); }
  NodeBundle& node(std::size_t i) { return *nodes_.at(i); }

  proc::Node* db_node() { return db_node_.get(); }
  DatabaseServer* db() { return db_server_.get(); }
  mig::Transd& db_transd() { return *db_transd_; }
  mig::TranslationManager& db_translation() { return *db_translation_; }

  /// Create (and own) a client host with a fresh public address.
  ClientHost& make_client_host();

  void run_for(SimDuration d) { engine_.run_until(engine_.now() + d); }
  void run_until(SimTime t) { engine_.run_until(t); }

 private:
  TestbedConfig cfg_;
  sim::Engine engine_;
  net::Switch switch_;
  net::BroadcastRouter router_;
  std::vector<std::unique_ptr<NodeBundle>> nodes_;
  std::unique_ptr<proc::Node> db_node_;
  std::unique_ptr<DatabaseServer> db_server_;
  // transd must run on every host that can be the peer of a migrated in-cluster
  // connection (Section II-B) — the database server included.
  std::unique_ptr<mig::TranslationManager> db_translation_;
  std::unique_ptr<mig::Transd> db_transd_;
  std::vector<std::unique_ptr<ClientHost>> clients_;
  std::uint32_t next_client_ip_{0};
};

}  // namespace dvemig::dve
