// In-cluster local address translation (Sections III-C, V-D).
//
// Installed on the *peer* host of a migrated in-cluster connection (e.g. the MySQL
// server). Two netfilter hooks:
//   LOCAL_OUT — packets this host sends to the connection's original address IP1
//               are rewritten to the migration destination IP2;
//   LOCAL_IN  — packets arriving from IP2 have their source rewritten back to IP1,
//               so the local socket never notices the move.
//
// Both rewrites update the transport checksum incrementally (RFC 1624), and the
// install replaces the local socket's destination-cache entry — without which
// outgoing frames would still be steered to IP1 (the Section V-D pitfall; the
// `fix_dst_cache` switch exists so the ablation benchmark can demonstrate it).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/checksum.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::mig {

struct TranslationRule {
  net::IpProto proto{net::IpProto::tcp};
  net::Endpoint peer_local{};   // this host's socket endpoint (IP3:portB)
  net::Endpoint mig_old{};      // migrated socket's original endpoint (IP1:portA)
  net::Ipv4Addr mig_new_addr{}; // migration destination (IP2)

  void serialize(BinaryWriter& w) const;
  static TranslationRule deserialize(BinaryReader& r);
};

class TranslationManager {
 public:
  explicit TranslationManager(stack::NetStack& stack) : stack_(&stack) {}

  /// Install a translation rule; returns a rule id for removal.
  std::uint64_t install(TranslationRule rule, bool fix_dst_cache = true);
  void remove(std::uint64_t rule_id);

  /// Find the rule translating the connection of the local socket with endpoint
  /// `peer_local` toward original remote `mig_old`, if any. Used when a process
  /// that is itself the peer of a previously migrated connection migrates: the
  /// rule reveals where the other end really lives now.
  std::optional<TranslationRule> find_rule(net::Endpoint peer_local,
                                           net::Endpoint mig_old) const;

  /// Remove rules for one connection (cleanup after their subject moved away).
  void remove_matching(net::Endpoint peer_local, net::Endpoint mig_old);

  std::size_t active_rules() const { return rules_.size(); }
  std::uint64_t out_rewritten() const { return out_rewritten_; }
  std::uint64_t in_rewritten() const { return in_rewritten_; }

  /// Bench/test seam: route the two per-packet hooks through the pre-index
  /// full-map walk instead of the tuple-hash index (equivalence oracle for
  /// the connection_scale byte-identical gate). Process-wide.
  static void set_reference_mode(bool on);
  static bool reference_mode();

 private:
  // Rules are matched by exact tuples, so each hot path is one hash probe
  // (DESIGN.md §12). Keys pack (proto, endpoint, endpoint) into two words;
  // bucket values are rule ids kept in ascending order, so the oldest rule
  // wins — a deterministic refinement of the old first-in-map-order walk.
  using Key2 = std::pair<std::uint64_t, std::uint64_t>;
  struct Key2Hash {
    std::size_t operator()(const Key2& k) const {
      std::uint64_t h = k.first * 0x9E3779B97F4A7C15ULL;
      h ^= h >> 29;
      h = (h + k.second) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  using RuleIndex = std::unordered_map<Key2, std::vector<std::uint64_t>, Key2Hash>;

  static std::uint64_t pack_ep(net::Endpoint e) {
    return static_cast<std::uint64_t>(e.addr.value) << 16 | e.port;
  }
  static Key2 keyed(net::IpProto proto, net::Endpoint a, net::Endpoint b) {
    return {static_cast<std::uint64_t>(proto) << 48 | pack_ep(a), pack_ep(b)};
  }

  stack::Verdict on_local_out(net::Packet& p);
  stack::Verdict on_local_in(net::Packet& p);
  stack::Verdict on_local_out_reference(net::Packet& p);
  stack::Verdict on_local_in_reference(net::Packet& p);
  void rewrite_out(const TranslationRule& rule, net::Packet& p);
  void rewrite_in(const TranslationRule& rule, net::Packet& p);
  void link_rule(std::uint64_t id, const TranslationRule& rule);
  void unlink_rule(std::uint64_t id, const TranslationRule& rule);
  void update_hooks();
  void fix_cache(const TranslationRule& rule);

  stack::NetStack* stack_;
  std::unordered_map<std::uint64_t, TranslationRule> rules_;
  // LOCAL_OUT: (proto, peer_local, mig_old) — the tuple an outgoing packet
  // carries before rewriting.
  RuleIndex out_index_;
  // LOCAL_IN: (proto, peer_local, {mig_new_addr, mig_old.port}) — the tuple an
  // incoming packet carries before rewriting. Doubles as the chained-install
  // lookup: the rule to compose with is the one whose *output* address equals
  // the new rule's origin, which is exactly this key.
  RuleIndex in_index_;
  // Protoless (peer_local, mig_old) for find_rule / remove_matching.
  RuleIndex pair_index_;
  std::uint64_t next_rule_{0};
  stack::HookHandle out_hook_;
  stack::HookHandle in_hook_;
  std::uint64_t out_rewritten_{0};
  std::uint64_t in_rewritten_{0};
};

}  // namespace dvemig::mig
