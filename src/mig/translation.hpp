// In-cluster local address translation (Sections III-C, V-D).
//
// Installed on the *peer* host of a migrated in-cluster connection (e.g. the MySQL
// server). Two netfilter hooks:
//   LOCAL_OUT — packets this host sends to the connection's original address IP1
//               are rewritten to the migration destination IP2;
//   LOCAL_IN  — packets arriving from IP2 have their source rewritten back to IP1,
//               so the local socket never notices the move.
//
// Both rewrites update the transport checksum incrementally (RFC 1624), and the
// install replaces the local socket's destination-cache entry — without which
// outgoing frames would still be steered to IP1 (the Section V-D pitfall; the
// `fix_dst_cache` switch exists so the ablation benchmark can demonstrate it).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/net/checksum.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::mig {

struct TranslationRule {
  net::IpProto proto{net::IpProto::tcp};
  net::Endpoint peer_local{};   // this host's socket endpoint (IP3:portB)
  net::Endpoint mig_old{};      // migrated socket's original endpoint (IP1:portA)
  net::Ipv4Addr mig_new_addr{}; // migration destination (IP2)

  void serialize(BinaryWriter& w) const;
  static TranslationRule deserialize(BinaryReader& r);
};

class TranslationManager {
 public:
  explicit TranslationManager(stack::NetStack& stack) : stack_(&stack) {}

  /// Install a translation rule; returns a rule id for removal.
  std::uint64_t install(TranslationRule rule, bool fix_dst_cache = true);
  void remove(std::uint64_t rule_id);

  /// Find the rule translating the connection of the local socket with endpoint
  /// `peer_local` toward original remote `mig_old`, if any. Used when a process
  /// that is itself the peer of a previously migrated connection migrates: the
  /// rule reveals where the other end really lives now.
  std::optional<TranslationRule> find_rule(net::Endpoint peer_local,
                                           net::Endpoint mig_old) const;

  /// Remove rules for one connection (cleanup after their subject moved away).
  void remove_matching(net::Endpoint peer_local, net::Endpoint mig_old);

  std::size_t active_rules() const { return rules_.size(); }
  std::uint64_t out_rewritten() const { return out_rewritten_; }
  std::uint64_t in_rewritten() const { return in_rewritten_; }

 private:
  stack::Verdict on_local_out(net::Packet& p);
  stack::Verdict on_local_in(net::Packet& p);
  void update_hooks();
  void fix_cache(const TranslationRule& rule);

  stack::NetStack* stack_;
  std::unordered_map<std::uint64_t, TranslationRule> rules_;
  std::uint64_t next_rule_{0};
  stack::HookHandle out_hook_;
  stack::HookHandle in_hook_;
  std::uint64_t out_rewritten_{0};
  std::uint64_t in_rewritten_{0};
};

}  // namespace dvemig::mig
