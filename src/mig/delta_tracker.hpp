// Incremental collective socket tracking (Section III-C).
//
// During the precopy loop, each socket's serialized sections are hashed and
// compared against the previous round; only changed sections are emitted. By the
// time the loop timeout is short, most sections no longer change — which is what
// collapses the freeze-phase byte count in Fig. 5c.
#pragma once

#include <unordered_map>

#include "src/mig/socket_image.hpp"

namespace dvemig::mig {

class SocketDeltaTracker {
 public:
  /// Serialize the sections of `img` that changed since the last call for this
  /// socket into `out` (prefixed with proto/flags headers as the socket_state
  /// message expects). Returns the section flags emitted (none == unchanged).
  SectionFlags emit_tcp(const TcpImage& img, BinaryWriter& out, bool force_all);
  SectionFlags emit_udp(const UdpImage& img, BinaryWriter& out, bool force_all);

  /// Forget a socket (closed mid-precopy).
  void drop(std::uint64_t key);

  std::size_t tracked() const { return entries_.size(); }

 private:
  struct Entry {
    bool have{false};
    std::uint64_t stat_hash{0};
    std::uint64_t dyn_hash{0};
    std::uint64_t queues_hash{0};
  };

  std::unordered_map<std::uint64_t, Entry> entries_;
};

/// Destination-side staging: the latest version of every section received so far,
/// merged across precopy rounds and the freeze-phase dump.
struct StagedSocket {
  net::IpProto proto{net::IpProto::tcp};
  TcpImage tcp;
  UdpImage udp;
  bool have_static{false};
  bool have_dynamic{false};
  bool have_queues{false};

  bool complete() const {
    return proto == net::IpProto::tcp ? (have_static && have_dynamic && have_queues)
                                      : (have_static && have_queues);
  }
};

using SocketStaging = std::unordered_map<std::uint64_t, StagedSocket>;

/// Parse one socket record (as written by SocketDeltaTracker::emit_*) and merge it
/// into the staging area.
void read_socket_record(BinaryReader& r, SocketStaging& staging);

}  // namespace dvemig::mig
