// migd — the per-node process-migration daemon (Section II-B), together with
// transd, the translation daemon.
//
// A migration is driven by the source node's migd over a dedicated TCP connection
// to the destination's migd on the cluster network:
//
//   precopy  (process keeps running, Figure 3):
//     round k: dirty-page scan + vm_area diff -> memory_delta frame;
//              (incremental collective only) socket section deltas;
//              loop timeout halves each round until it reaches 20 ms.
//   freeze   (process unresponsive — this is the measured downtime):
//     1. capture_request -> destination arms loss-prevention filters -> ack;
//     2. translation requests to in-cluster peers' transd daemons -> acks;
//     3. sockets disabled (unhash, clear timers) and subtracted per strategy:
//          iterative              — per-socket request/ack round trips,
//          collective             — one unified buffer, one transfer,
//          incremental collective — unified buffer of *changes only*;
//     4. final memory delta + process image (fd table, threads, registers);
//     5. destination restores, adopts, resumes, reinjects captured packets,
//        replies resume_done.
//
// Freeze time = t(resume on destination) - t(freeze begin on source).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/dirty_tracker.hpp"
#include "src/ckpt/restore.hpp"
#include "src/mig/capture.hpp"
#include "src/mig/cost_model.hpp"
#include "src/mig/delta_tracker.hpp"
#include "src/mig/protocol.hpp"
#include "src/mig/translation.hpp"
#include "src/proc/node.hpp"

namespace dvemig::mig {

enum class SocketMigStrategy : std::uint8_t {
  iterative = 0,               // the earlier one-by-one approach (baseline)
  collective = 1,              // three-phase aggregated migration
  incremental_collective = 2,  // + precopy-phase socket delta tracking
};

const char* strategy_name(SocketMigStrategy s);

/// Parallel data-path configuration (PMigrate-style). The default degree of 1
/// is byte-for-byte today's serial behavior; degree N > 1 shards the
/// dirty-page scan, serialization and socket subtraction across N deterministic
/// workers and stripes every src->dst frame across N TCP channels.
struct MigrationConfig {
  /// Worker count == transfer stream count. Clamped to [1, kMaxParallelism].
  int parallelism{1};
  /// Segments in flight per stripe channel before the sender waits for the
  /// socket to drain (the pipeline's bounded send queue).
  int pipeline_depth{2};
  /// Stripe segment payload size; logical frames are cut at this granularity.
  std::uint32_t stripe_chunk_bytes{256 * 1024};
};

/// Upper bound on MigrationConfig::parallelism (stripe index fits a u8 and a
/// migration should not monopolise the node's ephemeral ports).
inline constexpr int kMaxParallelism = 16;

/// Options beyond the socket strategy.
struct MigrateOptions {
  SocketMigStrategy strategy{SocketMigStrategy::incremental_collective};
  /// true: precopy live migration (Figure 3). false: classic stop-and-copy —
  /// freeze immediately and transfer the whole image while the process is down
  /// (the baseline live migration is measured against).
  bool live{true};
  MigrationConfig config{};
};

struct MigrationStats {
  Pid pid{};
  std::string proc_name;
  SocketMigStrategy strategy{SocketMigStrategy::incremental_collective};
  bool live{true};
  int parallelism{1};
  net::Ipv4Addr src_node{};
  net::Ipv4Addr dst_node{};

  SimTime t_start{};
  SimTime t_freeze_begin{};
  SimTime t_resume{};

  int precopy_rounds{0};
  std::uint64_t precopy_channel_bytes{0};
  std::uint64_t precopy_socket_bytes{0};
  std::uint64_t freeze_channel_bytes{0};
  std::uint64_t freeze_socket_bytes{0};  // socket_state payloads in the freeze phase
  std::uint64_t socket_count{0};
  std::uint64_t captured{0};
  std::uint64_t reinjected{0};
  bool success{false};

  SimDuration freeze_time() const { return t_resume - t_freeze_begin; }
  SimDuration total_time() const { return t_resume - t_start; }
};

/// transd: installs translation filters on request (UDP control protocol).
class Transd {
 public:
  Transd(proc::Node& node, TranslationManager& translation, CostModel cm = {});

  void start();
  /// Ablation switch: when false, filters are installed without replacing the
  /// peer socket's destination-cache entry (reproduces the Section V-D bug).
  void set_fix_dst_cache(bool v) { fix_dst_cache_ = v; }

  std::uint64_t requests_served() const { return served_; }

 private:
  void on_readable();

  proc::Node* node_;
  TranslationManager* translation_;
  CostModel cm_;
  std::shared_ptr<stack::UdpSocket> sock_;
  bool fix_dst_cache_{true};
  std::uint64_t served_{0};
};

class Migd {
 public:
  using DoneFn = std::function<void(const MigrationStats&)>;

  Migd(proc::Node& node, CostModel cm = {});
  ~Migd();

  /// Start listening for inbound migrations (TCP kMigdPort on the local address).
  void start();

  /// Migrate `pid` to the node whose cluster-local address is `dest_local`.
  /// Returns false if this migd is already busy sending.
  bool migrate(Pid pid, net::Ipv4Addr dest_local, SocketMigStrategy strategy,
               DoneFn done);
  bool migrate(Pid pid, net::Ipv4Addr dest_local, MigrateOptions options,
               DoneFn done);

  bool busy_sending() const { return src_session_ != nullptr; }

  /// State probes for the model checker (src/mc): the source session's coarse
  /// phase (-1 when none is active; otherwise SourceSession::Phase as int) and
  /// the number of live destination sessions. Quiescence after a migration —
  /// success or failure — means src_phase() == -1 and dest_session_count() == 0.
  int src_phase() const;
  std::size_t dest_session_count() const { return dst_sessions_.size(); }

  proc::Node& node() const { return *node_; }
  CaptureManager& capture() { return capture_; }
  TranslationManager& translation() { return translation_; }
  Transd& transd() { return transd_; }
  const CostModel& cost_model() const { return cm_; }

  /// Ablation switch for the TCP timestamp adjustment on restore.
  void set_adjust_timestamps(bool v) { adjust_timestamps_ = v; }

 private:
  class SourceSession;
  class DestSession;
  friend class SourceSession;
  friend class DestSession;

  void on_accept_ready();
  void source_finished(const MigrationStats& stats);
  void release_dest_session(DestSession* session);

  /// Striped-transfer plumbing: locate the main (mig_begin-bearing) dest
  /// session of a migration, and iterate its stripe feeder sessions.
  std::shared_ptr<DestSession> find_dest_main(std::uint64_t mig_id);
  void for_each_feeder(std::uint64_t mig_id,
                       const std::function<void(DestSession&)>& fn);

  proc::Node* node_;
  CostModel cm_;
  CaptureManager capture_;
  TranslationManager translation_;
  Transd transd_;
  bool adjust_timestamps_{true};

  stack::TcpSocket::Ptr listener_;
  std::shared_ptr<SourceSession> src_session_;
  std::vector<std::shared_ptr<DestSession>> dst_sessions_;
  DoneFn done_;
  std::uint64_t next_mig_id_{0};  // per-daemon counter; combined with the
                                  // node address for a cluster-unique mig id
};

}  // namespace dvemig::mig
