// Socket state images: extraction on the source, restoration on the destination
// (Section V-C), with section-granular serialization so the incremental collective
// strategy can ship only what changed.
//
// A TCP image is split into three sections:
//   static  — identity + the bulk of the kernel structure (struct tcp_sock pad):
//             written once, practically never changes afterwards;
//   dynamic — sequence numbers, windows, RTT/congestion state, timestamps;
//   queues  — write / receive / out-of-order queue contents (real payload bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/serial.hpp"
#include "src/common/types.hpp"
#include "src/stack/tcp_socket.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::mig {

/// What the destination must match to capture packets for a migrating socket
/// (Section III-B: remote IP, remote port and local port).
struct CaptureSpec {
  net::IpProto proto{net::IpProto::tcp};
  bool match_remote{true};  // false for wildcard server sockets (UDP bind, listeners)
  net::Endpoint remote{};
  net::Port local_port{0};

  void serialize(BinaryWriter& w) const;
  static CaptureSpec deserialize(BinaryReader& r);
  bool matches(const net::Packet& p) const;

  // --- hash-index keys (DESIGN.md §12) -------------------------------------
  // The capture index is two-tier: an exact tier keyed by the full
  // (remote addr, remote port, local port) match tuple and a wildcard tier
  // keyed by local port alone. Packing the tuples into integers keeps the
  // per-packet lookup a single hash probe with no tuple hashing.

  /// (remote addr, remote port, local port) packed; exact-tier key.
  /// Only meaningful when match_remote is true.
  std::uint64_t exact_key() const {
    return pack_exact(remote.addr.value, remote.port, local_port);
  }
  /// Exact-tier key of the tuple a packet would have to match.
  static std::uint64_t exact_key_for(const net::Packet& p) {
    return pack_exact(p.src.value, p.sport(), p.dport());
  }
  /// (remote addr, remote port) packed; keys a wildcard spec's per-peer
  /// dedup map.
  static std::uint64_t peer_key_for(const net::Packet& p) {
    return static_cast<std::uint64_t>(p.src.value) << 16 | p.sport();
  }

 private:
  static std::uint64_t pack_exact(std::uint32_t raddr, net::Port rport,
                                  net::Port lport) {
    return static_cast<std::uint64_t>(raddr) << 32 |
           static_cast<std::uint64_t>(rport) << 16 | lport;
  }
};

enum class SectionFlags : std::uint8_t {
  none = 0,
  stat = 1,      // static section
  dyn = 2,       // dynamic section
  queues = 4,
  all = 7,
};
inline std::uint8_t operator&(SectionFlags a, SectionFlags b) {
  return static_cast<std::uint8_t>(a) & static_cast<std::uint8_t>(b);
}
inline SectionFlags operator|(SectionFlags a, SectionFlags b) {
  return static_cast<SectionFlags>(static_cast<std::uint8_t>(a) |
                                   static_cast<std::uint8_t>(b));
}

struct TcpSegmentImage {
  std::uint32_t seq{0};
  std::uint8_t flags{0};
  std::uint32_t retrans{0};
  std::int64_t sent_at_local_ns{-1};
  std::uint32_t sent_tsval{0};
  Buffer data;
};

struct TcpRxImage {
  std::uint32_t seq{0};
  bool fin{false};
  Buffer data;
};

struct TcpImage {
  // --- static section ---
  std::uint64_t src_sock_key{0};  // sock_id on the source (delta-tracking key)
  Fd fd{-1};                      // process fd; -1 for un-accepted listener children
  net::Endpoint local{};
  net::Endpoint remote{};
  bool listening{false};
  std::uint32_t backlog_limit{0};
  std::uint32_t iss{0};
  std::uint32_t irs{0};
  std::uint32_t rcv_wnd_max{0};

  // --- dynamic section ---
  std::uint8_t state{0};
  std::uint32_t snd_una{0};
  std::uint32_t snd_nxt{0};
  std::uint32_t snd_wnd{0};
  std::uint32_t rcv_nxt{0};
  std::int64_t srtt_ns{0};
  std::int64_t rttvar_ns{0};
  std::int64_t rto_ns{0};
  std::uint32_t cwnd{0};
  std::uint32_t ssthresh{0};
  std::uint32_t ts_recent{0};
  std::int64_t ts_offset{0};
  bool fin_queued{false};
  std::uint32_t fin_seq{0};
  bool peer_fin_seen{false};

  // --- queues section ---
  std::vector<TcpSegmentImage> write_queue;
  std::vector<TcpRxImage> receive_queue;
  std::vector<TcpRxImage> ooo_queue;

  // Listener children (fully established, waiting in the accept queue) ride along
  // with the listening socket's image as nested full images.
  std::vector<TcpImage> accept_children;

  void serialize_static(BinaryWriter& w) const;
  void serialize_dynamic(BinaryWriter& w) const;
  void serialize_queues(BinaryWriter& w) const;
  void deserialize_static(BinaryReader& r);
  void deserialize_dynamic(BinaryReader& r);
  void deserialize_queues(BinaryReader& r);
};

struct UdpImage {
  std::uint64_t src_sock_key{0};
  Fd fd{-1};
  net::Endpoint local{};
  net::Endpoint remote{};
  bool bound{false};
  bool connected{false};
  std::vector<std::pair<net::Endpoint, Buffer>> receive_queue;

  void serialize_static(BinaryWriter& w) const;
  void serialize_queues(BinaryWriter& w) const;  // UDP has no dynamic section
  void deserialize_static(BinaryReader& r);
  void deserialize_queues(BinaryReader& r);
};

/// A socket image of either protocol, as stored by the destination's staging area.
struct SocketImage {
  net::IpProto proto{net::IpProto::tcp};
  TcpImage tcp;
  UdpImage udp;

  Fd fd() const { return proto == net::IpProto::tcp ? tcp.fd : udp.fd; }
  std::uint64_t key() const {
    return proto == net::IpProto::tcp ? tcp.src_sock_key : udp.src_sock_key;
  }
};

// ---------------------------------------------------------------- extraction

/// Snapshot a TCP socket (including nested accept-queue children for listeners).
/// Precondition (Section V-C1): backlog and prequeue are empty and the socket is
/// not user-locked — guaranteed by signal-based checkpointing.
TcpImage extract_tcp(const stack::TcpSocket& sock, Fd fd);

UdpImage extract_udp(const stack::UdpSocket& sock, Fd fd);

/// Capture spec(s) needed before disabling this socket on the source.
std::vector<CaptureSpec> capture_specs_for_tcp(const stack::TcpSocket& sock);
CaptureSpec capture_spec_for_udp(const stack::UdpSocket& sock);

// ---------------------------------------------------------------- restoration

struct RestoreContext {
  stack::NetStack* stack{nullptr};          // destination stack
  net::Ipv4Addr src_node_local_addr{};      // rewritten to dst_node_local_addr
  net::Ipv4Addr dst_node_local_addr{};
  std::int64_t src_jiffies_at_ckpt{0};      // for the timestamp adjustment
  std::int64_t src_local_now_at_ckpt_ns{0};
  bool adjust_timestamps{true};             // ablation switch
};

/// Rebuild a TCP socket on the destination stack: allocate, fill the control
/// block (adjusting jiffies-domain timestamps by the source/destination delta),
/// rewrite an in-cluster local address, rehash into ehash/bhash and restart the
/// retransmission timer. The caller reinjects captured packets afterwards.
stack::TcpSocket::Ptr restore_tcp(const TcpImage& img, const RestoreContext& ctx);

std::shared_ptr<stack::UdpSocket> restore_udp(const UdpImage& img,
                                              const RestoreContext& ctx);

}  // namespace dvemig::mig
