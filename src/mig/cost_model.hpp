// Calibration constants for the migration mechanism.
//
// Everything the discrete-event simulation cannot derive from first principles
// (CPU costs of kernel work, the paper's loop-control parameters) is gathered here,
// as promised in DESIGN.md §5. Network costs are NOT here — they emerge from the
// simulated links and TCP stack.
//
// Values are chosen to be plausible for the paper's hardware (2.4 GHz dual-core
// Opteron, Linux 2.6, GbE) and produce freeze-time/bytes curves of the same shape
// and magnitude as Figures 5b/5c.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace dvemig::mig {

struct CostModel {
  // --- per-socket kernel work ---
  /// Full state subtraction of one socket (unhash, walk queues, copy fields).
  std::int64_t socket_subtract_ns{12'000};
  /// Additional serialization cost per byte subtracted.
  double per_byte_subtract_ns{0.35};
  /// Incremental tracking: hash/compare one socket's sections in a precopy round.
  std::int64_t socket_delta_check_ns{2'200};
  /// Restore one socket on the destination (allocate, fill, rehash, timers).
  std::int64_t socket_restore_ns{8'000};
  double per_byte_restore_ns{0.25};
  /// Install one capture filter on the destination.
  std::int64_t capture_install_ns{1'500};
  /// Install one translation filter on an in-cluster peer.
  std::int64_t translation_install_ns{2'500};

  // --- memory / process work ---
  /// Gather one dirty page into the transfer buffer.
  std::int64_t page_copy_ns{700};
  /// Serialize/delta-encode one byte of transfer payload in the parallel
  /// pipeline's middle stage. Only charged when MigrationConfig::parallelism
  /// > 1 — the serial (degree-1) path folds this into page_copy_ns, keeping
  /// its cost profile byte-for-byte identical to the pre-parallel code.
  double per_byte_serialize_ns{0.02};
  /// Freeze-phase process metadata work (fd table walk, thread regs, barrier).
  std::int64_t process_meta_ns{150'000};
  /// Destination-side process reconstruction (before socket attach).
  std::int64_t restore_meta_ns{200'000};
  /// Checkpoint-signal delivery and thread barrier entry at freeze start.
  std::int64_t signal_roundtrip_ns{60'000};

  // --- precopy loop control (Figure 3) ---
  std::int64_t initial_loop_timeout_ns{320'000'000};  // 320 ms
  double loop_decay{0.5};                             // timeout halves per round
  std::int64_t freeze_threshold_ns{20'000'000};       // the paper's 20 ms
  int max_precopy_rounds{16};

  /// Upper bound on one socket_state frame's payload. The collective
  /// strategies serialize every socket into one unified buffer; past ~10^5
  /// connections that buffer would outgrow the channel's kMaxFrameLen sanity
  /// cap, so the emit loop cuts it into self-contained frames (each with its
  /// own record-count prefix) at record boundaries. A dump that fits in one
  /// chunk — the common case — ships exactly as before chunking existed.
  std::int64_t socket_chunk_bytes{64LL * 1024 * 1024};

  /// Source-side watchdog on the whole migration. The protocol has no
  /// frame-level retransmission, so a lost control frame (capture_enabled,
  /// socket_ack, resume_done) would otherwise leave the source waiting forever
  /// with the process frozen — found by dvemig-mc's drop-fault exploration.
  /// Must comfortably exceed any legitimate migration duration.
  std::int64_t migration_watchdog_ns{30'000'000'000};  // 30 s

  SimDuration subtract_cost(std::size_t sockets, std::size_t bytes) const {
    return SimTime::nanoseconds(
        static_cast<std::int64_t>(sockets) * socket_subtract_ns +
        static_cast<std::int64_t>(static_cast<double>(bytes) * per_byte_subtract_ns));
  }
  SimDuration restore_cost(std::size_t sockets, std::size_t bytes) const {
    return SimTime::nanoseconds(
        static_cast<std::int64_t>(sockets) * socket_restore_ns +
        static_cast<std::int64_t>(static_cast<double>(bytes) * per_byte_restore_ns));
  }
};

/// Synthetic sizes of the kernel structures a real dump carries (Linux 2.6):
/// `struct tcp_sock` + inet/request/bind linkage + per-fd checkpoint metadata is
/// a few KiB of mostly-static fields, and each queued `struct sk_buff` carries
/// ≈ 240 B of header beyond its payload. These pads reproduce the paper's
/// ≈3.5 KiB/connection full-dump footprint (Fig. 5c); the incremental strategy
/// wins precisely because the static parts stop changing.
inline constexpr std::size_t kTcpSockStructPad = 2880;
inline constexpr std::size_t kUdpSockStructPad = 760;
inline constexpr std::size_t kSkbStructPad = 240;

}  // namespace dvemig::mig
