#include "src/mig/socket_image.hpp"

#include "src/mig/cost_model.hpp"
#include "src/mig/test_hooks.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::mig {

namespace {

obs::Counter& rehash_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("tcp.rehash");
  return c;
}

void write_endpoint(BinaryWriter& w, net::Endpoint e) {
  w.u32(e.addr.value);
  w.u16(e.port);
}

net::Endpoint read_endpoint(BinaryReader& r) {
  net::Endpoint e;
  e.addr.value = r.u32();
  e.port = r.u16();
  return e;
}

void write_struct_pad(BinaryWriter& w, std::size_t n) {
  // Stands in for the rest of the kernel structure (field-for-field dump of
  // struct tcp_sock / udp_sock); content is irrelevant, size is what is measured.
  static const Buffer pad(4096, 0xA5);
  DVEMIG_EXPECTS(n <= pad.size());
  w.bytes({pad.data(), n});
}

}  // namespace

// ---------------------------------------------------------------- CaptureSpec

void CaptureSpec::serialize(BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(match_remote ? 1 : 0);
  write_endpoint(w, remote);
  w.u16(local_port);
}

CaptureSpec CaptureSpec::deserialize(BinaryReader& r) {
  CaptureSpec s;
  s.proto = static_cast<net::IpProto>(r.u8());
  s.match_remote = r.u8() != 0;
  s.remote = read_endpoint(r);
  s.local_port = r.u16();
  return s;
}

bool CaptureSpec::matches(const net::Packet& p) const {
  if (p.proto != proto) return false;
  if (p.dport() != local_port) return false;
  if (match_remote && (p.src != remote.addr || p.sport() != remote.port)) return false;
  return true;
}

// ---------------------------------------------------------------- TCP sections

void TcpImage::serialize_static(BinaryWriter& w) const {
  w.u64(src_sock_key);
  w.i32(fd);
  write_endpoint(w, local);
  write_endpoint(w, remote);
  w.u8(listening ? 1 : 0);
  w.u32(backlog_limit);
  w.u32(iss);
  w.u32(irs);
  w.u32(rcv_wnd_max);
  write_struct_pad(w, kTcpSockStructPad);
  w.u32(static_cast<std::uint32_t>(accept_children.size()));
  for (const TcpImage& child : accept_children) {
    child.serialize_static(w);
    child.serialize_dynamic(w);
    child.serialize_queues(w);
  }
}

void TcpImage::deserialize_static(BinaryReader& r) {
  src_sock_key = r.u64();
  fd = r.i32();
  local = read_endpoint(r);
  remote = read_endpoint(r);
  listening = r.u8() != 0;
  backlog_limit = r.u32();
  iss = r.u32();
  irs = r.u32();
  rcv_wnd_max = r.u32();
  r.skip(kTcpSockStructPad);
  const std::uint32_t nchildren = r.u32();
  DVEMIG_EXPECTS(nchildren <= r.remaining());  // each child image is > 1 byte
  accept_children.resize(nchildren);
  for (TcpImage& child : accept_children) {
    child.deserialize_static(r);
    child.deserialize_dynamic(r);
    child.deserialize_queues(r);
  }
}

void TcpImage::serialize_dynamic(BinaryWriter& w) const {
  w.u8(state);
  w.u32(snd_una);
  w.u32(snd_nxt);
  w.u32(snd_wnd);
  w.u32(rcv_nxt);
  w.i64(srtt_ns);
  w.i64(rttvar_ns);
  w.i64(rto_ns);
  w.u32(cwnd);
  w.u32(ssthresh);
  w.u32(ts_recent);
  w.i64(ts_offset);
  w.u8(fin_queued ? 1 : 0);
  w.u32(fin_seq);
  w.u8(peer_fin_seen ? 1 : 0);
}

void TcpImage::deserialize_dynamic(BinaryReader& r) {
  state = r.u8();
  snd_una = r.u32();
  snd_nxt = r.u32();
  snd_wnd = r.u32();
  rcv_nxt = r.u32();
  srtt_ns = r.i64();
  rttvar_ns = r.i64();
  rto_ns = r.i64();
  cwnd = r.u32();
  ssthresh = r.u32();
  ts_recent = r.u32();
  ts_offset = r.i64();
  fin_queued = r.u8() != 0;
  fin_seq = r.u32();
  peer_fin_seen = r.u8() != 0;
}

void TcpImage::serialize_queues(BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(write_queue.size()));
  for (const auto& s : write_queue) {
    w.u32(s.seq);
    w.u8(s.flags);
    w.u32(s.retrans);
    w.i64(s.sent_at_local_ns);
    w.u32(s.sent_tsval);
    w.blob(s.data);
    write_struct_pad(w, kSkbStructPad);
  }
  auto write_rx = [&w](const std::vector<TcpRxImage>& q) {
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (const auto& s : q) {
      w.u32(s.seq);
      w.u8(s.fin ? 1 : 0);
      w.blob(s.data);
      write_struct_pad(w, kSkbStructPad);
    }
  };
  write_rx(receive_queue);
  write_rx(ooo_queue);
}

void TcpImage::deserialize_queues(BinaryReader& r) {
  write_queue.clear();
  receive_queue.clear();
  ooo_queue.clear();
  const std::uint32_t nw = r.u32();
  DVEMIG_EXPECTS(nw <= r.remaining());
  write_queue.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) {
    TcpSegmentImage s;
    s.seq = r.u32();
    s.flags = r.u8();
    s.retrans = r.u32();
    s.sent_at_local_ns = r.i64();
    s.sent_tsval = r.u32();
    s.data = r.blob();
    r.skip(kSkbStructPad);
    write_queue.push_back(std::move(s));
  }
  auto read_rx = [&r](std::vector<TcpRxImage>& q) {
    const std::uint32_t n = r.u32();
    DVEMIG_EXPECTS(n <= r.remaining());
    q.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      TcpRxImage s;
      s.seq = r.u32();
      s.fin = r.u8() != 0;
      s.data = r.blob();
      r.skip(kSkbStructPad);
      q.push_back(std::move(s));
    }
  };
  read_rx(receive_queue);
  read_rx(ooo_queue);
}

// ---------------------------------------------------------------- UDP sections

void UdpImage::serialize_static(BinaryWriter& w) const {
  w.u64(src_sock_key);
  w.i32(fd);
  write_endpoint(w, local);
  write_endpoint(w, remote);
  w.u8(bound ? 1 : 0);
  w.u8(connected ? 1 : 0);
  write_struct_pad(w, kUdpSockStructPad);
}

void UdpImage::deserialize_static(BinaryReader& r) {
  src_sock_key = r.u64();
  fd = r.i32();
  local = read_endpoint(r);
  remote = read_endpoint(r);
  bound = r.u8() != 0;
  connected = r.u8() != 0;
  r.skip(kUdpSockStructPad);
}

void UdpImage::serialize_queues(BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(receive_queue.size()));
  for (const auto& [from, data] : receive_queue) {
    write_endpoint(w, from);
    w.blob(data);
    write_struct_pad(w, kSkbStructPad);
  }
}

void UdpImage::deserialize_queues(BinaryReader& r) {
  receive_queue.clear();
  const std::uint32_t n = r.u32();
  DVEMIG_EXPECTS(n <= r.remaining());
  receive_queue.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const net::Endpoint from = read_endpoint(r);
    Buffer data = r.blob();
    r.skip(kSkbStructPad);
    receive_queue.emplace_back(from, std::move(data));
  }
}

// ---------------------------------------------------------------- extraction

TcpImage extract_tcp(const stack::TcpSocket& sock, Fd fd) {
  const stack::TcpCb& cb = sock.cb();
  // Signal-based checkpointing guarantees the process is out of any socket
  // syscall: the backlog and prequeue must be empty (Section V-C1).
  DVEMIG_EXPECTS(!cb.user_locked && !cb.blocked_reader);
  DVEMIG_EXPECTS(cb.backlog.empty() && cb.prequeue.empty());

  TcpImage img;
  img.src_sock_key = sock.sock_id();
  img.fd = fd;
  img.local = sock.local();
  img.remote = sock.remote();
  img.listening = cb.state == stack::TcpState::listen;
  img.backlog_limit = sock.accept_backlog_limit();
  img.iss = cb.iss;
  img.irs = cb.irs;
  img.rcv_wnd_max = cb.rcv_wnd_max;

  img.state = static_cast<std::uint8_t>(cb.state);
  img.snd_una = cb.snd_una;
  img.snd_nxt = cb.snd_nxt;
  img.snd_wnd = cb.snd_wnd;
  img.rcv_nxt = cb.rcv_nxt;
  img.srtt_ns = cb.srtt_ns;
  img.rttvar_ns = cb.rttvar_ns;
  img.rto_ns = cb.rto_ns;
  img.cwnd = cb.cwnd;
  img.ssthresh = cb.ssthresh;
  img.ts_recent = cb.ts_recent;
  img.ts_offset = cb.ts_offset;
  img.fin_queued = cb.fin_queued;
  img.fin_seq = cb.fin_seq;
  img.peer_fin_seen = cb.peer_fin_seen;

  for (const auto& s : cb.write_queue) {
    img.write_queue.push_back(TcpSegmentImage{s.seq, s.flags, s.retrans,
                                              s.sent_at_local_ns, s.sent_tsval,
                                              s.data});
  }
  for (const auto& s : cb.receive_queue) {
    img.receive_queue.push_back(TcpRxImage{s.seq, s.fin, s.data});
  }
  for (const auto& [seq, s] : cb.ooo_queue) {
    img.ooo_queue.push_back(TcpRxImage{s.seq, s.fin, s.data});
  }

  if (img.listening) {
    // Established children awaiting accept() ride along; half-open (SYN_RCVD)
    // embryos are dropped — the client's SYN retransmission is captured on the
    // destination and completes the handshake there.
    for (const auto& child : const_cast<stack::TcpSocket&>(sock).accept_queue()) {
      img.accept_children.push_back(extract_tcp(*child, -1));
    }
  }
  return img;
}

UdpImage extract_udp(const stack::UdpSocket& sock, Fd fd) {
  const stack::UdpCb& cb = sock.cb();
  UdpImage img;
  img.src_sock_key = sock.sock_id();
  img.fd = fd;
  img.local = sock.local();
  img.remote = sock.remote();
  img.bound = cb.bound;
  img.connected = cb.connected;
  for (const auto& d : cb.receive_queue) img.receive_queue.emplace_back(d.from, d.data);
  return img;
}

std::vector<CaptureSpec> capture_specs_for_tcp(const stack::TcpSocket& sock) {
  std::vector<CaptureSpec> specs;
  if (sock.cb().state == stack::TcpState::listen) {
    // A listener (and its children) may hear from anyone on its port; the
    // children additionally get precise 4-tuple specs.
    specs.push_back(CaptureSpec{net::IpProto::tcp, false, {}, sock.local().port});
    for (const auto& child : const_cast<stack::TcpSocket&>(sock).accept_queue()) {
      specs.push_back(
          CaptureSpec{net::IpProto::tcp, true, child->remote(), child->local().port});
    }
  } else {
    specs.push_back(
        CaptureSpec{net::IpProto::tcp, true, sock.remote(), sock.local().port});
  }
  return specs;
}

CaptureSpec capture_spec_for_udp(const stack::UdpSocket& sock) {
  if (sock.cb().connected) {
    return CaptureSpec{net::IpProto::udp, true, sock.remote(), sock.local().port};
  }
  return CaptureSpec{net::IpProto::udp, false, {}, sock.local().port};
}

// ---------------------------------------------------------------- restoration

namespace {

net::Endpoint rewrite_local(net::Endpoint local, const RestoreContext& ctx) {
  // In-cluster sockets carried the source node's local IP; on the destination the
  // socket speaks with the destination's local IP (the peer's translation filter
  // maps it back, Section III-C).
  if (local.addr == ctx.src_node_local_addr) {
    return net::Endpoint{ctx.dst_node_local_addr, local.port};
  }
  return local;  // shared public IP (or wildcard): unchanged
}

}  // namespace

stack::TcpSocket::Ptr restore_tcp(const TcpImage& img, const RestoreContext& ctx) {
  DVEMIG_EXPECTS(ctx.stack != nullptr);
  auto sock = ctx.stack->make_tcp();
  stack::TcpCb& cb = sock->cb();

  const net::Endpoint local = rewrite_local(img.local, ctx);
  sock->set_endpoints(local, img.remote);

  cb.state = static_cast<stack::TcpState>(img.state);
  cb.iss = img.iss;
  cb.irs = img.irs;
  cb.rcv_wnd_max = img.rcv_wnd_max;
  cb.snd_una = img.snd_una;
  cb.snd_nxt = img.snd_nxt;
  cb.snd_wnd = img.snd_wnd;
  cb.rcv_nxt = img.rcv_nxt;
  cb.srtt_ns = img.srtt_ns;
  cb.rttvar_ns = img.rttvar_ns;
  cb.rto_ns = img.rto_ns;
  cb.cwnd = img.cwnd;
  cb.ssthresh = img.ssthresh;
  cb.ts_recent = img.ts_recent;
  cb.ts_offset = img.ts_offset;
  cb.fin_queued = img.fin_queued;
  cb.fin_seq = img.fin_seq;
  cb.peer_fin_seen = img.peer_fin_seen;

  // --- TCP timestamp adjustment (Section V-C1) ---
  // Jiffies differ between hosts. tsval generation must continue monotonically
  // from where the source left off, and buffered local-clock stamps must be moved
  // into the destination's timebase, or RTT estimation and PAWS break.
  const std::int64_t jiffies_delta = ctx.src_jiffies_at_ckpt - ctx.stack->jiffies();
  const std::int64_t clock_delta_ns =
      ctx.stack->local_now_ns() - ctx.src_local_now_at_ckpt_ns;
  if (ctx.adjust_timestamps) {
    cb.ts_offset += jiffies_delta;
    obs::Registry::instance().counter("tcp.ts_fixups").add(1);
  }

  for (const auto& s : img.write_queue) {
    stack::TcpTxSegment seg;
    seg.seq = s.seq;
    seg.flags = s.flags;
    seg.retrans = s.retrans;
    seg.sent_at_local_ns =
        ctx.adjust_timestamps && s.sent_at_local_ns >= 0
            ? s.sent_at_local_ns + clock_delta_ns
            : s.sent_at_local_ns;
    seg.sent_tsval = s.sent_tsval;
    seg.data = s.data;
    cb.write_queue.push_back(std::move(seg));
  }
  for (const auto& s : img.receive_queue) {
    cb.receive_queue.push_back(stack::TcpRxSegment{s.seq, s.data, s.fin});
    cb.receive_queue_bytes += s.data.size();
  }
  for (const auto& s : img.ooo_queue) {
    cb.ooo_queue.emplace(s.seq, stack::TcpRxSegment{s.seq, s.data, s.fin});
  }

  // Rehash (ehash for connections, bhash for listeners) and restart timers.
  if (img.listening) {
    cb.state = stack::TcpState::listen;
    sock->set_accept_backlog_limit(img.backlog_limit);
    ctx.stack->table().bhash_insert(sock, local.port);
    sock->set_hashed_bound(true);
    rehash_counter().add(1);
    for (const TcpImage& child_img : img.accept_children) {
      auto child = restore_tcp(child_img, ctx);
      sock->accept_queue().push_back(std::move(child));
    }
  } else {
    ctx.stack->table().ehash_insert(sock, stack::FourTuple{local, img.remote});
    sock->set_hashed_established(true);
    rehash_counter().add(1);
  }
  sock->restart_timers_after_restore();
  return sock;
}

std::shared_ptr<stack::UdpSocket> restore_udp(const UdpImage& img,
                                              const RestoreContext& ctx) {
  DVEMIG_EXPECTS(ctx.stack != nullptr);
  auto sock = ctx.stack->make_udp();
  const net::Endpoint local = rewrite_local(img.local, ctx);
  if (mutation() == ProtocolMutation::swap_image_endpoints) {
    sock->set_endpoints(img.remote, local, img.bound, img.connected);
  } else {
    sock->set_endpoints(local, img.remote, img.bound, img.connected);
  }
  stack::UdpCb& cb = sock->cb();
  for (const auto& [from, data] : img.receive_queue) {
    cb.receive_queue.push_back(stack::UdpDatagram{from, data});
  }
  if (img.bound && mutation() != ProtocolMutation::skip_restore_rehash) {
    // Rehash the bound server socket on the destination (Section V-C2).
    ctx.stack->table().bhash_insert(sock, local.port);
    rehash_counter().add(1);
  }
  return sock;
}

}  // namespace dvemig::mig
