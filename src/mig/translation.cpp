#include "src/mig/translation.hpp"

#include <algorithm>

#include "src/stack/tcp_socket.hpp"

namespace dvemig::mig {

namespace {

bool g_reference_mode = false;

}  // namespace

void TranslationManager::set_reference_mode(bool on) { g_reference_mode = on; }
bool TranslationManager::reference_mode() { return g_reference_mode; }

void TranslationRule::serialize(BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(proto));
  w.u32(peer_local.addr.value);
  w.u16(peer_local.port);
  w.u32(mig_old.addr.value);
  w.u16(mig_old.port);
  w.u32(mig_new_addr.value);
}

TranslationRule TranslationRule::deserialize(BinaryReader& r) {
  TranslationRule rule;
  rule.proto = static_cast<net::IpProto>(r.u8());
  rule.peer_local.addr.value = r.u32();
  rule.peer_local.port = r.u16();
  rule.mig_old.addr.value = r.u32();
  rule.mig_old.port = r.u16();
  rule.mig_new_addr.value = r.u32();
  return rule;
}

namespace {

void index_add(std::vector<std::uint64_t>& bucket, std::uint64_t id) {
  // Keep ids ascending: a chained-update reinserts an old id, and the oldest
  // rule must stay the bucket's winner.
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), id), id);
}

}  // namespace

void TranslationManager::link_rule(std::uint64_t id, const TranslationRule& rule) {
  index_add(out_index_[keyed(rule.proto, rule.peer_local, rule.mig_old)], id);
  index_add(in_index_[keyed(rule.proto, rule.peer_local,
                            net::Endpoint{rule.mig_new_addr, rule.mig_old.port})],
            id);
  index_add(pair_index_[Key2{pack_ep(rule.peer_local), pack_ep(rule.mig_old)}], id);
}

void TranslationManager::unlink_rule(std::uint64_t id, const TranslationRule& rule) {
  const Key2 keys[3] = {
      keyed(rule.proto, rule.peer_local, rule.mig_old),
      keyed(rule.proto, rule.peer_local,
            net::Endpoint{rule.mig_new_addr, rule.mig_old.port}),
      Key2{pack_ep(rule.peer_local), pack_ep(rule.mig_old)},
  };
  RuleIndex* maps[3] = {&out_index_, &in_index_, &pair_index_};
  for (int i = 0; i < 3; ++i) {
    const auto it = maps[i]->find(keys[i]);
    if (it == maps[i]->end()) continue;
    std::erase(it->second, id);
    if (it->second.empty()) maps[i]->erase(it);
  }
}

std::uint64_t TranslationManager::install(TranslationRule rule, bool fix_dst_cache) {
  // Chained migrations compose: when the connection already has a rule mapping
  // ORIG -> X and the process now moves X -> Y, the peer's socket still emits
  // packets addressed to ORIG, so the rule must become ORIG -> Y (and if Y is
  // ORIG itself — the process returned home — the rule cancels out entirely).
  // The rule to compose with is the one whose *output* address equals the new
  // rule's origin — exactly the LOCAL_IN index key, so the probe is O(1).
  const Key2 chain = keyed(rule.proto, rule.peer_local,
                           net::Endpoint{rule.mig_old.addr, rule.mig_old.port});
  if (const auto bucket = in_index_.find(chain);
      bucket != in_index_.end() && !bucket->second.empty()) {
    const std::uint64_t id = bucket->second.front();
    TranslationRule& existing = rules_.find(id)->second;
    unlink_rule(id, existing);  // the in-index key is about to change
    existing.mig_new_addr = rule.mig_new_addr;
    if (fix_dst_cache) fix_cache(existing);
    if (existing.mig_old.addr == existing.mig_new_addr) {
      rules_.erase(id);  // identity mapping: the connection is back home
      update_hooks();
    } else {
      link_rule(id, existing);
    }
    return id;
  }

  const std::uint64_t id = ++next_rule_;
  rules_.emplace(id, rule);
  link_rule(id, rule);
  update_hooks();
  if (fix_dst_cache) fix_cache(rule);
  return id;
}

void TranslationManager::fix_cache(const TranslationRule& rule) {
  if (rule.proto != net::IpProto::tcp) return;
  // "Creating an accurate destination cache entry": find the local socket of
  // this connection and repoint its cached next hop at the new node. Without
  // this the IP header says IP2 but the frame still goes to IP1.
  const stack::FourTuple tuple{rule.peer_local, rule.mig_old};
  if (auto sock = stack_->table().ehash_lookup(tuple)) {
    stack_->dst_cache_replace(sock->sock_id(), rule.mig_new_addr);
  }
}

void TranslationManager::remove(std::uint64_t rule_id) {
  const auto it = rules_.find(rule_id);
  if (it != rules_.end()) {
    unlink_rule(rule_id, it->second);
    rules_.erase(it);
  }
  update_hooks();
}

std::optional<TranslationRule> TranslationManager::find_rule(
    net::Endpoint peer_local, net::Endpoint mig_old) const {
  const auto it = pair_index_.find(Key2{pack_ep(peer_local), pack_ep(mig_old)});
  if (it == pair_index_.end() || it->second.empty()) return std::nullopt;
  return rules_.find(it->second.front())->second;
}

void TranslationManager::remove_matching(net::Endpoint peer_local,
                                         net::Endpoint mig_old) {
  const auto it = pair_index_.find(Key2{pack_ep(peer_local), pack_ep(mig_old)});
  if (it != pair_index_.end()) {
    const std::vector<std::uint64_t> ids = it->second;  // unlink mutates the bucket
    for (const std::uint64_t id : ids) {
      const auto rit = rules_.find(id);
      unlink_rule(id, rit->second);
      rules_.erase(rit);
    }
  }
  update_hooks();
}

void TranslationManager::update_hooks() {
  if (rules_.empty()) {
    out_hook_.release();
    in_hook_.release();
    return;
  }
  if (!out_hook_.registered()) {
    out_hook_ = stack_->netfilter().register_hook(
        stack::Hook::local_out, /*priority=*/0,
        [this](net::Packet& p) { return on_local_out(p); });
  }
  if (!in_hook_.registered()) {
    in_hook_ = stack_->netfilter().register_hook(
        stack::Hook::local_in, /*priority=*/-10,  // before any capture hook
        [this](net::Packet& p) { return on_local_in(p); });
  }
}

void TranslationManager::rewrite_out(const TranslationRule& rule, net::Packet& p) {
  // Incremental checksum update (RFC 1624): only the 32-bit destination
  // address changed, so the full pseudo-header + payload fold is unnecessary.
  const std::uint32_t old_addr = p.dst.value;
  p.dst = rule.mig_new_addr;
  p.checksum = net::checksum_adjust32(p.checksum, old_addr, p.dst.value);
  out_rewritten_ += 1;
}

void TranslationManager::rewrite_in(const TranslationRule& rule, net::Packet& p) {
  const std::uint32_t old_addr = p.src.value;
  p.src = rule.mig_old.addr;
  p.checksum = net::checksum_adjust32(p.checksum, old_addr, p.src.value);
  in_rewritten_ += 1;
}

stack::Verdict TranslationManager::on_local_out(net::Packet& p) {
  if (g_reference_mode) return on_local_out_reference(p);
  const auto it = out_index_.find(
      keyed(p.proto, net::Endpoint{p.src, p.sport()}, net::Endpoint{p.dst, p.dport()}));
  if (it != out_index_.end() && !it->second.empty()) {
    rewrite_out(rules_.find(it->second.front())->second, p);
  }
  return stack::Verdict::accept;
}

stack::Verdict TranslationManager::on_local_in(net::Packet& p) {
  if (g_reference_mode) return on_local_in_reference(p);
  const auto it = in_index_.find(
      keyed(p.proto, net::Endpoint{p.dst, p.dport()}, net::Endpoint{p.src, p.sport()}));
  if (it != in_index_.end() && !it->second.empty()) {
    rewrite_in(rules_.find(it->second.front())->second, p);
  }
  return stack::Verdict::accept;
}

stack::Verdict TranslationManager::on_local_out_reference(net::Packet& p) {
  // Pre-index behavior, kept as the equivalence oracle: walk every rule.
  for (const auto& [id, rule] : rules_) {
    if (p.proto != rule.proto) continue;
    if (p.src != rule.peer_local.addr || p.sport() != rule.peer_local.port) continue;
    if (p.dst != rule.mig_old.addr || p.dport() != rule.mig_old.port) continue;
    rewrite_out(rule, p);
    break;
  }
  return stack::Verdict::accept;
}

stack::Verdict TranslationManager::on_local_in_reference(net::Packet& p) {
  for (const auto& [id, rule] : rules_) {
    if (p.proto != rule.proto) continue;
    if (p.dst != rule.peer_local.addr || p.dport() != rule.peer_local.port) continue;
    if (p.src != rule.mig_new_addr || p.sport() != rule.mig_old.port) continue;
    rewrite_in(rule, p);
    break;
  }
  return stack::Verdict::accept;
}

}  // namespace dvemig::mig
