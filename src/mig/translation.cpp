#include "src/mig/translation.hpp"

#include "src/stack/tcp_socket.hpp"

namespace dvemig::mig {

void TranslationRule::serialize(BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(proto));
  w.u32(peer_local.addr.value);
  w.u16(peer_local.port);
  w.u32(mig_old.addr.value);
  w.u16(mig_old.port);
  w.u32(mig_new_addr.value);
}

TranslationRule TranslationRule::deserialize(BinaryReader& r) {
  TranslationRule rule;
  rule.proto = static_cast<net::IpProto>(r.u8());
  rule.peer_local.addr.value = r.u32();
  rule.peer_local.port = r.u16();
  rule.mig_old.addr.value = r.u32();
  rule.mig_old.port = r.u16();
  rule.mig_new_addr.value = r.u32();
  return rule;
}

std::uint64_t TranslationManager::install(TranslationRule rule, bool fix_dst_cache) {
  // Chained migrations compose: when the connection already has a rule mapping
  // ORIG -> X and the process now moves X -> Y, the peer's socket still emits
  // packets addressed to ORIG, so the rule must become ORIG -> Y (and if Y is
  // ORIG itself — the process returned home — the rule cancels out entirely).
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    TranslationRule& existing = it->second;
    if (existing.proto != rule.proto || existing.peer_local != rule.peer_local ||
        existing.mig_old.port != rule.mig_old.port ||
        existing.mig_new_addr != rule.mig_old.addr) {
      continue;
    }
    const std::uint64_t id = it->first;
    existing.mig_new_addr = rule.mig_new_addr;
    if (fix_dst_cache) fix_cache(existing);
    if (existing.mig_old.addr == existing.mig_new_addr) {
      rules_.erase(it);  // identity mapping: the connection is back home
      update_hooks();
    }
    return id;
  }

  const std::uint64_t id = ++next_rule_;
  rules_.emplace(id, rule);
  update_hooks();
  if (fix_dst_cache) fix_cache(rule);
  return id;
}

void TranslationManager::fix_cache(const TranslationRule& rule) {
  if (rule.proto != net::IpProto::tcp) return;
  // "Creating an accurate destination cache entry": find the local socket of
  // this connection and repoint its cached next hop at the new node. Without
  // this the IP header says IP2 but the frame still goes to IP1.
  const stack::FourTuple tuple{rule.peer_local, rule.mig_old};
  if (auto sock = stack_->table().ehash_lookup(tuple)) {
    stack_->dst_cache_replace(sock->sock_id(), rule.mig_new_addr);
  }
}

void TranslationManager::remove(std::uint64_t rule_id) {
  rules_.erase(rule_id);
  update_hooks();
}

std::optional<TranslationRule> TranslationManager::find_rule(
    net::Endpoint peer_local, net::Endpoint mig_old) const {
  for (const auto& [id, rule] : rules_) {
    if (rule.peer_local == peer_local && rule.mig_old == mig_old) return rule;
  }
  return std::nullopt;
}

void TranslationManager::remove_matching(net::Endpoint peer_local,
                                         net::Endpoint mig_old) {
  std::erase_if(rules_, [&](const auto& entry) {
    return entry.second.peer_local == peer_local && entry.second.mig_old == mig_old;
  });
  update_hooks();
}

void TranslationManager::update_hooks() {
  if (rules_.empty()) {
    out_hook_.release();
    in_hook_.release();
    return;
  }
  if (!out_hook_.registered()) {
    out_hook_ = stack_->netfilter().register_hook(
        stack::Hook::local_out, /*priority=*/0,
        [this](net::Packet& p) { return on_local_out(p); });
  }
  if (!in_hook_.registered()) {
    in_hook_ = stack_->netfilter().register_hook(
        stack::Hook::local_in, /*priority=*/-10,  // before any capture hook
        [this](net::Packet& p) { return on_local_in(p); });
  }
}

stack::Verdict TranslationManager::on_local_out(net::Packet& p) {
  for (const auto& [id, rule] : rules_) {
    if (p.proto != rule.proto) continue;
    if (p.src != rule.peer_local.addr || p.sport() != rule.peer_local.port) continue;
    if (p.dst != rule.mig_old.addr || p.dport() != rule.mig_old.port) continue;
    const std::uint32_t old_addr = p.dst.value;
    p.dst = rule.mig_new_addr;
    p.checksum = net::checksum_adjust32(p.checksum, old_addr, p.dst.value);
    out_rewritten_ += 1;
    break;
  }
  return stack::Verdict::accept;
}

stack::Verdict TranslationManager::on_local_in(net::Packet& p) {
  for (const auto& [id, rule] : rules_) {
    if (p.proto != rule.proto) continue;
    if (p.dst != rule.peer_local.addr || p.dport() != rule.peer_local.port) continue;
    if (p.src != rule.mig_new_addr || p.sport() != rule.mig_old.port) continue;
    const std::uint32_t old_addr = p.src.value;
    p.src = rule.mig_old.addr;
    p.checksum = net::checksum_adjust32(p.checksum, old_addr, p.src.value);
    in_rewritten_ += 1;
    break;
  }
  return stack::Verdict::accept;
}

}  // namespace dvemig::mig
