// Wire protocol between the per-node daemons.
//
//  - migd <-> migd:   framed messages over a TCP connection on the cluster network;
//  - migd  -> transd: translation requests over UDP (port kTransdPort);
//  - conductors:      their own UDP protocol, defined in src/lb.
//
// Frames: u32 length (of type+payload) | u8 type | payload.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/serial.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::mig {

inline constexpr net::Port kMigdPort = 7000;
inline constexpr net::Port kTransdPort = 7001;

enum class MsgType : std::uint8_t {
  mig_begin = 1,      // src -> dst: pid, name, strategy, src node identity
  memory_delta = 2,   // src -> dst: one precopy round's (or final) memory delta
  capture_request = 3,  // src -> dst: capture specs to install
  capture_enabled = 4,  // dst -> src: all requested filters are armed
  socket_state = 5,   // src -> dst: socket section updates (full or delta)
  socket_ack = 6,     // dst -> src: per-dump ack (iterative strategy waits on it)
  process_image = 7,  // src -> dst: freeze-phase process metadata; triggers restore
  resume_done = 8,    // dst -> src: process resumed; carries timing + counters
  mig_abort = 9,      // either direction
};

const char* msg_type_name(MsgType t);

inline constexpr std::uint8_t kMsgTypeMin = 1;
inline constexpr std::uint8_t kMsgTypeMax = 9;

inline bool msg_type_valid(std::uint8_t v) {
  return v >= kMsgTypeMin && v <= kMsgTypeMax;
}

/// Largest frame length (type byte + payload) the receive side accepts. Frames
/// carry at most one precopy round's memory delta; anything past this cap is a
/// corrupted or hostile length field, not data.
inline constexpr std::uint32_t kMaxFrameLen = 256u * 1024 * 1024;

/// Sockets deliver a byte stream; FrameChannel reassembles protocol frames and
/// hands them to a callback. Also the send side: frame + stream into the socket.
///
/// Malformed input (zero-length frame, length above kMaxFrameLen, out-of-range
/// MsgType) does not reach the frame callback: the channel poisons itself, stops
/// parsing and reports through the error callback, so migd can answer with
/// mig_abort instead of feeding garbage to the deserializers.
class FrameChannel {
 public:
  using FrameFn = std::function<void(MsgType, BinaryReader&)>;
  using ErrorFn = std::function<void(const char* reason)>;

  /// Process-wide tap on every frame sent or delivered by any channel, plus
  /// channel teardown. This is how dvemig-verify's protocol checker watches the
  /// migd wire protocol without migd knowing about it. One observer at most.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// `outbound` is from this channel's point of view (true = send()).
    virtual void on_channel_frame(const FrameChannel& ch, bool outbound,
                                  MsgType type, std::size_t payload_len) = 0;
    virtual void on_channel_error(const FrameChannel& ch, const char* reason) {
      (void)ch;
      (void)reason;
    }
    virtual void on_channel_closed(const FrameChannel& ch) { (void)ch; }
  };

  static void set_observer(Observer* obs) { observer_ = obs; }
  static Observer* observer() { return observer_; }

  /// Process-wide fault-injection seam used by the model checker (src/mc).
  /// Consulted per frame on the send side, *before* the frame hits the byte
  /// stream — so `drop` means the peer never sees it, `duplicate` means it is
  /// framed twice back-to-back, and `kill` aborts the underlying socket (RST
  /// to the peer) modelling the sending daemon crashing at that point in the
  /// protocol. One hook at most; production code never installs one.
  enum class FaultAction : std::uint8_t { pass, drop, duplicate, kill };
  class FaultHook {
   public:
    virtual ~FaultHook() = default;
    virtual FaultAction on_send(const FrameChannel& ch, MsgType type,
                                std::size_t payload_len) = 0;
  };
  static void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  static FaultHook* fault_hook() { return fault_hook_; }

  explicit FrameChannel(stack::TcpSocket::Ptr sock);
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }
  /// Invoked (at most once) when the receive stream is malformed.
  void set_on_error(ErrorFn fn) { on_error_ = std::move(fn); }

  void send(MsgType type, const Buffer& payload);
  void send(MsgType type, BinaryWriter&& payload) { send(type, payload.buffer()); }

  stack::TcpSocket& socket() { return *sock_; }
  const stack::TcpSocket::Ptr& socket_ptr() const { return sock_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// True once malformed input poisoned the receive side.
  bool errored() const { return errored_; }

 private:
  void on_readable();
  void fail_rx(const char* reason);

  static inline Observer* observer_ = nullptr;
  static inline FaultHook* fault_hook_ = nullptr;

  stack::TcpSocket::Ptr sock_;
  Buffer rx_buffer_;
  FrameFn on_frame_;
  ErrorFn on_error_;
  std::uint64_t bytes_sent_{0};
  bool errored_{false};
};

}  // namespace dvemig::mig
