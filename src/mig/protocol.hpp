// Wire protocol between the per-node daemons.
//
//  - migd <-> migd:   framed messages over a TCP connection on the cluster network;
//  - migd  -> transd: translation requests over UDP (port kTransdPort);
//  - conductors:      their own UDP protocol, defined in src/lb.
//
// Frames: u32 length (of type+payload) | u8 type | payload.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/serial.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::mig {

inline constexpr net::Port kMigdPort = 7000;
inline constexpr net::Port kTransdPort = 7001;

enum class MsgType : std::uint8_t {
  mig_begin = 1,      // src -> dst: pid, name, strategy, src node identity
  memory_delta = 2,   // src -> dst: one precopy round's (or final) memory delta
  capture_request = 3,  // src -> dst: capture specs to install
  capture_enabled = 4,  // dst -> src: all requested filters are armed
  socket_state = 5,   // src -> dst: socket section updates (full or delta)
  socket_ack = 6,     // dst -> src: per-dump ack (iterative strategy waits on it)
  process_image = 7,  // src -> dst: freeze-phase process metadata; triggers restore
  resume_done = 8,    // dst -> src: process resumed; carries timing + counters
  mig_abort = 9,      // either direction
};

/// Sockets deliver a byte stream; FrameChannel reassembles protocol frames and
/// hands them to a callback. Also the send side: frame + stream into the socket.
class FrameChannel {
 public:
  using FrameFn = std::function<void(MsgType, BinaryReader&)>;

  explicit FrameChannel(stack::TcpSocket::Ptr sock);

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }

  void send(MsgType type, const Buffer& payload);
  void send(MsgType type, BinaryWriter&& payload) { send(type, payload.buffer()); }

  stack::TcpSocket& socket() { return *sock_; }
  const stack::TcpSocket::Ptr& socket_ptr() const { return sock_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void on_readable();

  stack::TcpSocket::Ptr sock_;
  Buffer rx_buffer_;
  FrameFn on_frame_;
  std::uint64_t bytes_sent_{0};
};

}  // namespace dvemig::mig
