// Wire protocol between the per-node daemons.
//
//  - migd <-> migd:   framed messages over a TCP connection on the cluster network;
//  - migd  -> transd: translation requests over UDP (port kTransdPort);
//  - conductors:      their own UDP protocol, defined in src/lb.
//
// Frames: u32 length (of type+payload) | u8 type | payload.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/common/serial.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::mig {

inline constexpr net::Port kMigdPort = 7000;
inline constexpr net::Port kTransdPort = 7001;

enum class MsgType : std::uint8_t {
  mig_begin = 1,      // src -> dst: pid, name, strategy, src node identity
  memory_delta = 2,   // src -> dst: one precopy round's (or final) memory delta
  capture_request = 3,  // src -> dst: capture specs to install
  capture_enabled = 4,  // dst -> src: all requested filters are armed
  socket_state = 5,   // src -> dst: socket section updates (full or delta)
  socket_ack = 6,     // dst -> src: per-dump ack (iterative strategy waits on it)
  process_image = 7,  // src -> dst: freeze-phase process metadata; triggers restore
  resume_done = 8,    // dst -> src: process resumed; carries timing + counters
  mig_abort = 9,      // either direction

  // Striped (multi-stream) transfer sublayer, parallelism > 1 only. A secondary
  // channel opens with exactly one stripe_hello (mig_id, stripe index); after
  // mig_begin every src->dst frame of that migration travels as stripe_seg
  // chunks spread round-robin across all channels (primary included) and is
  // reassembled in logical-sequence order on the destination. dst->src replies
  // and mig_abort always ride the primary channel unwrapped.
  stripe_hello = 10,  // src -> dst: u64 mig_id | u8 stripe_index (channel opener)
  stripe_seg = 11,    // src -> dst: u64 seq | u8 inner_type | u32 total | u32 offset | chunk
};

const char* msg_type_name(MsgType t);

inline constexpr std::uint8_t kMsgTypeMin = 1;
inline constexpr std::uint8_t kMsgTypeMax = 11;

inline bool msg_type_valid(std::uint8_t v) {
  return v >= kMsgTypeMin && v <= kMsgTypeMax;
}

/// Largest frame length (type byte + payload) the receive side accepts. Frames
/// carry at most one precopy round's memory delta; anything past this cap is a
/// corrupted or hostile length field, not data.
inline constexpr std::uint32_t kMaxFrameLen = 256u * 1024 * 1024;

/// Sockets deliver a byte stream; FrameChannel reassembles protocol frames and
/// hands them to a callback. Also the send side: frame + stream into the socket.
///
/// Malformed input (zero-length frame, length above kMaxFrameLen, out-of-range
/// MsgType) does not reach the frame callback: the channel poisons itself, stops
/// parsing and reports through the error callback, so migd can answer with
/// mig_abort instead of feeding garbage to the deserializers.
class FrameChannel {
 public:
  using FrameFn = std::function<void(MsgType, BinaryReader&)>;
  using ErrorFn = std::function<void(const char* reason)>;

  /// Process-wide tap on every frame sent or delivered by any channel, plus
  /// channel teardown. This is how dvemig-verify's protocol checker watches the
  /// migd wire protocol without migd knowing about it. One observer at most.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// `outbound` is from this channel's point of view (true = send()).
    virtual void on_channel_frame(const FrameChannel& ch, bool outbound,
                                  MsgType type, std::size_t payload_len) = 0;
    virtual void on_channel_error(const FrameChannel& ch, const char* reason) {
      (void)ch;
      (void)reason;
    }
    virtual void on_channel_closed(const FrameChannel& ch) { (void)ch; }
  };

  static void set_observer(Observer* obs) { observer_ = obs; }
  static Observer* observer() { return observer_; }

  /// Report a *logical* frame to the observer as if it crossed `ch` whole. The
  /// striping sublayer uses this so dvemig-verify sees the same logical
  /// protocol stream on the primary channel at any parallelism degree: the
  /// source reports each logical frame before chunking it into stripe_seg
  /// frames, the destination reports it again when reassembly completes.
  static void notify_frame(const FrameChannel& ch, bool outbound, MsgType type,
                           std::size_t payload_len) {
    if (observer_) observer_->on_channel_frame(ch, outbound, type, payload_len);
  }

  /// Process-wide fault-injection seam used by the model checker (src/mc).
  /// Consulted per frame on the send side, *before* the frame hits the byte
  /// stream — so `drop` means the peer never sees it, `duplicate` means it is
  /// framed twice back-to-back, and `kill` aborts the underlying socket (RST
  /// to the peer) modelling the sending daemon crashing at that point in the
  /// protocol. One hook at most; production code never installs one.
  enum class FaultAction : std::uint8_t { pass, drop, duplicate, kill };
  class FaultHook {
   public:
    virtual ~FaultHook() = default;
    virtual FaultAction on_send(const FrameChannel& ch, MsgType type,
                                std::size_t payload_len) = 0;
  };
  static void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  static FaultHook* fault_hook() { return fault_hook_; }

  explicit FrameChannel(stack::TcpSocket::Ptr sock);
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  ~FrameChannel();

  void set_on_frame(FrameFn fn) { on_frame_ = std::move(fn); }
  /// Invoked (at most once) when the receive stream is malformed.
  void set_on_error(ErrorFn fn) { on_error_ = std::move(fn); }

  /// The payload is copied into the frame before returning; callers may reuse
  /// (or let die) the backing storage immediately.
  void send(MsgType type, std::span<const std::uint8_t> payload);
  void send(MsgType type, BinaryWriter&& payload) { send(type, payload.buffer()); }

  stack::TcpSocket& socket() { return *sock_; }
  const stack::TcpSocket::Ptr& socket_ptr() const { return sock_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// True once malformed input poisoned the receive side.
  bool errored() const { return errored_; }

 private:
  void on_readable();
  void fail_rx(const char* reason);

  static inline Observer* observer_ = nullptr;
  static inline FaultHook* fault_hook_ = nullptr;

  stack::TcpSocket::Ptr sock_;
  Buffer rx_buffer_;
  FrameFn on_frame_;
  ErrorFn on_error_;
  std::uint64_t bytes_sent_{0};
  bool errored_{false};
};

/// Send half of the striped transfer sublayer (parallelism > 1).
///
/// Chunks each logical frame into stripe_seg frames of at most `chunk_bytes`
/// spread round-robin across the channels (index 0 = the migration's primary
/// channel), tagged with a per-logical-frame sequence number so the peer's
/// StripeReassembler restores logical order regardless of per-channel timing.
/// Per channel at most `pipeline_depth` segments sit in the socket's send
/// buffer; the rest wait in a queue and are pumped as the socket drains — the
/// bounded queue between the serialize and send stages of the pipeline.
///
/// Constructing the sender emits one stripe_hello on every secondary channel
/// (their opening frame). Not copyable; destroy before the channels.
class StripeSender {
 public:
  StripeSender(std::vector<FrameChannel*> channels, std::uint64_t mig_id,
               std::uint32_t chunk_bytes, int pipeline_depth);
  StripeSender(const StripeSender&) = delete;
  StripeSender& operator=(const StripeSender&) = delete;
  ~StripeSender();

  /// Queue one logical frame for striped transfer. Reported to the protocol
  /// observer as an outbound logical frame on the primary channel.
  void send(MsgType inner, std::span<const std::uint8_t> payload);

  /// Invoke `fn` once every queue is empty and every channel socket has fully
  /// drained (all segments ACKed). One waiter at most; replaces any previous.
  void when_drained(std::function<void()> fn);

  /// Clear socket callbacks and the drain waiter (session teardown).
  void detach_callbacks();

  std::uint64_t logical_frames() const { return logical_frames_; }
  std::uint64_t segments_sent() const { return segments_; }
  std::uint64_t segment_bytes() const { return segment_bytes_; }

 private:
  void pump(std::size_t channel);
  void on_channel_drained(std::size_t channel);
  void check_drained();

  std::vector<FrameChannel*> channels_;
  std::uint32_t chunk_bytes_;
  int pipeline_depth_;
  std::vector<std::deque<Buffer>> queues_;   // pre-built stripe_seg payloads
  std::vector<int> in_flight_;               // segments sent since last drain
  std::function<void()> on_all_drained_;
  std::uint64_t next_seq_{0};
  std::uint64_t logical_frames_{0};
  std::uint64_t segments_{0};
  std::uint64_t segment_bytes_{0};
};

/// Receive half of the striped transfer sublayer.
///
/// Collects stripe_seg payloads (from any channel of one migration) and
/// delivers complete logical frames in strictly ascending sequence order.
/// Invariants enforced on every segment — any violation reports through the
/// error callback and poisons the reassembler:
///   - inner type is a valid, non-stripe message type;
///   - total length within kMaxFrameLen; chunk within [offset, total];
///   - chunks of one frame never overlap or repeat, and agree on type/total;
///   - sequence numbers never revisit a delivered frame;
///   - at most kMaxPendingStripeFrames incomplete frames buffered.
/// Non-overlapping chunks inside [0, total] whose sizes sum to total
/// necessarily tile the frame exactly, so completeness == byte count.
class StripeReassembler {
 public:
  using DeliverFn = std::function<void(MsgType, BinaryReader&)>;
  using ErrorFn = std::function<void(const char* reason)>;

  /// Incomplete-frame buffering cap; beyond it the stream is declared hostile.
  static constexpr std::size_t kMaxPendingStripeFrames = 1024;

  StripeReassembler(DeliverFn deliver, ErrorFn on_error);
  ~StripeReassembler();

  /// Consume one stripe_seg payload. The deliver callback may destroy this
  /// reassembler; the call returns safely afterwards.
  void on_segment(BinaryReader& r);

  bool errored() const { return errored_; }
  std::uint64_t segments_received() const { return segments_; }
  std::uint64_t frames_delivered() const { return delivered_; }

 private:
  struct PendingFrame {
    std::uint8_t type{0};
    std::uint32_t total{0};
    Buffer data;
    std::uint64_t received{0};
    std::map<std::uint32_t, std::uint32_t> chunks;  // offset -> length
  };

  void fail(const char* reason);

  DeliverFn deliver_;
  ErrorFn on_error_;
  std::map<std::uint64_t, PendingFrame> pending_;
  std::uint64_t next_deliver_{0};
  std::uint64_t segments_{0};
  std::uint64_t delivered_{0};
  bool errored_{false};
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace dvemig::mig
