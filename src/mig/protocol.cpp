#include "src/mig/protocol.hpp"

namespace dvemig::mig {

FrameChannel::FrameChannel(stack::TcpSocket::Ptr sock) : sock_(std::move(sock)) {
  DVEMIG_EXPECTS(sock_ != nullptr);
  sock_->set_on_readable([this] { on_readable(); });
  // Data may already be waiting (frames that raced connection setup).
  on_readable();
}

void FrameChannel::send(MsgType type, const Buffer& payload) {
  BinaryWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size() + 1));
  frame.u8(static_cast<std::uint8_t>(type));
  frame.bytes(payload);
  bytes_sent_ += frame.size();
  sock_->send(frame.take());
}

void FrameChannel::on_readable() {
  Buffer chunk = sock_->read();
  rx_buffer_.insert(rx_buffer_.end(), chunk.begin(), chunk.end());

  std::size_t off = 0;
  while (rx_buffer_.size() - off >= 4) {
    BinaryReader len_reader({rx_buffer_.data() + off, 4});
    const std::uint32_t len = len_reader.u32();
    if (rx_buffer_.size() - off - 4 < len) break;  // incomplete frame
    BinaryReader body({rx_buffer_.data() + off + 4, len});
    const auto type = static_cast<MsgType>(body.u8());
    off += 4 + len;
    if (on_frame_) on_frame_(type, body);
  }
  if (off > 0) {
    rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

}  // namespace dvemig::mig
