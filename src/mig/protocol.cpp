#include "src/mig/protocol.hpp"

namespace dvemig::mig {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::mig_begin: return "mig_begin";
    case MsgType::memory_delta: return "memory_delta";
    case MsgType::capture_request: return "capture_request";
    case MsgType::capture_enabled: return "capture_enabled";
    case MsgType::socket_state: return "socket_state";
    case MsgType::socket_ack: return "socket_ack";
    case MsgType::process_image: return "process_image";
    case MsgType::resume_done: return "resume_done";
    case MsgType::mig_abort: return "mig_abort";
  }
  return "?";
}

FrameChannel::FrameChannel(stack::TcpSocket::Ptr sock) : sock_(std::move(sock)) {
  DVEMIG_EXPECTS(sock_ != nullptr);
  sock_->set_on_readable([this] { on_readable(); });
  // Data may already be waiting (frames that raced connection setup).
  on_readable();
}

FrameChannel::~FrameChannel() {
  // The socket can outlive the channel (the table holds it through FIN/RST
  // teardown), and a frame crossing the wire during shutdown — e.g. both ends
  // sending mig_abort to each other — would otherwise fire this callback on a
  // freed channel.
  sock_->set_on_readable(nullptr);
  if (observer_) observer_->on_channel_closed(*this);
}

void FrameChannel::send(MsgType type, const Buffer& payload) {
  // A poisoned receive side (fail_rx) must NOT block sending: answering
  // garbage with mig_abort is exactly how the migd fails fast. Only the
  // socket's state gates transmission — a killed channel aborted its socket,
  // and a connection reset under a still-running session (crossing mig_abort,
  // peer daemon crash) would trip the socket's send precondition; the frame
  // is lost either way.
  const stack::TcpState st = sock_->state();
  if (st != stack::TcpState::established && st != stack::TcpState::close_wait &&
      st != stack::TcpState::syn_sent && st != stack::TcpState::syn_rcvd) {
    return;
  }
  FaultAction action = FaultAction::pass;
  if (fault_hook_) action = fault_hook_->on_send(*this, type, payload.size());
  if (action == FaultAction::drop) return;  // the peer never sees this frame
  if (action == FaultAction::kill) {
    // Sending daemon "crashes" mid-protocol: RST the connection and go silent
    // (a dead daemon emits no further frames on this channel). The owning
    // session dies with its daemon — surface the crash as a channel error so
    // it tears down instead of lingering with capture sessions armed.
    errored_ = true;
    sock_->abort();
    if (observer_) observer_->on_channel_error(*this, "daemon killed");
    if (on_error_) on_error_("daemon killed");
    return;
  }
  const int copies = action == FaultAction::duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (observer_) observer_->on_channel_frame(*this, /*outbound=*/true, type,
                                               payload.size());
    BinaryWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size() + 1));
    frame.u8(static_cast<std::uint8_t>(type));
    frame.bytes(payload);
    bytes_sent_ += frame.size();
    sock_->send(frame.take());
  }
}

void FrameChannel::fail_rx(const char* reason) {
  errored_ = true;
  rx_buffer_.clear();
  // Stop listening: anything after a framing error is unparseable noise.
  sock_->set_on_readable(nullptr);
  if (observer_) observer_->on_channel_error(*this, reason);
  if (on_error_) on_error_(reason);
}

void FrameChannel::on_readable() {
  if (errored_) return;
  Buffer chunk = sock_->read();
  rx_buffer_.insert(rx_buffer_.end(), chunk.begin(), chunk.end());

  std::size_t off = 0;
  while (rx_buffer_.size() - off >= 4) {
    BinaryReader len_reader({rx_buffer_.data() + off, 4});
    const std::uint32_t len = len_reader.u32();
    if (len == 0) return fail_rx("zero-length frame");
    if (len > kMaxFrameLen) return fail_rx("frame length exceeds cap");
    if (rx_buffer_.size() - off - 4 < len) break;  // incomplete frame
    BinaryReader body({rx_buffer_.data() + off + 4, len});
    const std::uint8_t raw_type = body.u8();
    if (!msg_type_valid(raw_type)) return fail_rx("unknown frame type");
    const auto type = static_cast<MsgType>(raw_type);
    off += 4 + len;
    if (observer_) {
      observer_->on_channel_frame(*this, /*outbound=*/false, type, len - 1);
    }
    if (on_frame_) on_frame_(type, body);
    if (errored_) return;  // the frame callback tore the channel down
  }
  if (off > 0) {
    rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

}  // namespace dvemig::mig
