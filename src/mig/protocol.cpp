#include "src/mig/protocol.hpp"

#include <algorithm>

namespace dvemig::mig {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::mig_begin: return "mig_begin";
    case MsgType::memory_delta: return "memory_delta";
    case MsgType::capture_request: return "capture_request";
    case MsgType::capture_enabled: return "capture_enabled";
    case MsgType::socket_state: return "socket_state";
    case MsgType::socket_ack: return "socket_ack";
    case MsgType::process_image: return "process_image";
    case MsgType::resume_done: return "resume_done";
    case MsgType::mig_abort: return "mig_abort";
    case MsgType::stripe_hello: return "stripe_hello";
    case MsgType::stripe_seg: return "stripe_seg";
  }
  return "?";
}

FrameChannel::FrameChannel(stack::TcpSocket::Ptr sock) : sock_(std::move(sock)) {
  DVEMIG_EXPECTS(sock_ != nullptr);
  sock_->set_on_readable([this] { on_readable(); });
  // Data may already be waiting (frames that raced connection setup).
  on_readable();
}

FrameChannel::~FrameChannel() {
  // The socket can outlive the channel (the table holds it through FIN/RST
  // teardown), and a frame crossing the wire during shutdown — e.g. both ends
  // sending mig_abort to each other — would otherwise fire this callback on a
  // freed channel.
  sock_->set_on_readable(nullptr);
  if (observer_) observer_->on_channel_closed(*this);
}

void FrameChannel::send(MsgType type, std::span<const std::uint8_t> payload) {
  // A poisoned receive side (fail_rx) must NOT block sending: answering
  // garbage with mig_abort is exactly how the migd fails fast. Only the
  // socket's state gates transmission — a killed channel aborted its socket,
  // and a connection reset under a still-running session (crossing mig_abort,
  // peer daemon crash) would trip the socket's send precondition; the frame
  // is lost either way.
  const stack::TcpState st = sock_->state();
  if (st != stack::TcpState::established && st != stack::TcpState::close_wait &&
      st != stack::TcpState::syn_sent && st != stack::TcpState::syn_rcvd) {
    return;
  }
  FaultAction action = FaultAction::pass;
  if (fault_hook_) action = fault_hook_->on_send(*this, type, payload.size());
  if (action == FaultAction::drop) return;  // the peer never sees this frame
  if (action == FaultAction::kill) {
    // Sending daemon "crashes" mid-protocol: RST the connection and go silent
    // (a dead daemon emits no further frames on this channel). The owning
    // session dies with its daemon — surface the crash as a channel error so
    // it tears down instead of lingering with capture sessions armed.
    errored_ = true;
    sock_->abort();
    if (observer_) observer_->on_channel_error(*this, "daemon killed");
    if (on_error_) on_error_("daemon killed");
    return;
  }
  const int copies = action == FaultAction::duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (observer_) observer_->on_channel_frame(*this, /*outbound=*/true, type,
                                               payload.size());
    BinaryWriter frame;
    frame.reserve(payload.size() + 5);  // one allocation per frame
    frame.u32(static_cast<std::uint32_t>(payload.size() + 1));
    frame.u8(static_cast<std::uint8_t>(type));
    frame.bytes(payload);
    bytes_sent_ += frame.size();
    sock_->send(frame.take());
  }
}

void FrameChannel::fail_rx(const char* reason) {
  errored_ = true;
  rx_buffer_.clear();
  // Stop listening: anything after a framing error is unparseable noise.
  sock_->set_on_readable(nullptr);
  if (observer_) observer_->on_channel_error(*this, reason);
  if (on_error_) on_error_(reason);
}

void FrameChannel::on_readable() {
  if (errored_) return;
  Buffer chunk = sock_->read();
  rx_buffer_.insert(rx_buffer_.end(), chunk.begin(), chunk.end());

  std::size_t off = 0;
  while (rx_buffer_.size() - off >= 4) {
    BinaryReader len_reader({rx_buffer_.data() + off, 4});
    const std::uint32_t len = len_reader.u32();
    if (len == 0) return fail_rx("zero-length frame");
    if (len > kMaxFrameLen) return fail_rx("frame length exceeds cap");
    if (rx_buffer_.size() - off - 4 < len) break;  // incomplete frame
    BinaryReader body({rx_buffer_.data() + off + 4, len});
    const std::uint8_t raw_type = body.u8();
    if (!msg_type_valid(raw_type)) return fail_rx("unknown frame type");
    const auto type = static_cast<MsgType>(raw_type);
    off += 4 + len;
    if (observer_) {
      observer_->on_channel_frame(*this, /*outbound=*/false, type, len - 1);
    }
    if (on_frame_) on_frame_(type, body);
    if (errored_) return;  // the frame callback tore the channel down
  }
  if (off > 0) {
    rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

// ---------------------------------------------------------------------------
// Striped transfer sublayer
// ---------------------------------------------------------------------------

StripeSender::StripeSender(std::vector<FrameChannel*> channels, std::uint64_t mig_id,
                           std::uint32_t chunk_bytes, int pipeline_depth)
    : channels_(std::move(channels)),
      chunk_bytes_(chunk_bytes),
      pipeline_depth_(pipeline_depth),
      queues_(channels_.size()),
      in_flight_(channels_.size(), 0) {
  DVEMIG_EXPECTS(channels_.size() >= 2);
  DVEMIG_EXPECTS(chunk_bytes_ > 0);
  DVEMIG_EXPECTS(pipeline_depth_ > 0);
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->socket().set_on_drained([this, i] { on_channel_drained(i); });
    if (i == 0) continue;  // the primary channel already spoke mig_begin
    BinaryWriter hello;
    hello.u64(mig_id);
    hello.u8(static_cast<std::uint8_t>(i));
    channels_[i]->send(MsgType::stripe_hello, hello.buffer());
  }
}

StripeSender::~StripeSender() { detach_callbacks(); }

void StripeSender::detach_callbacks() {
  for (FrameChannel* ch : channels_) ch->socket().set_on_drained(nullptr);
  on_all_drained_ = nullptr;
}

void StripeSender::send(MsgType inner, std::span<const std::uint8_t> payload) {
  DVEMIG_EXPECTS(payload.size() < kMaxFrameLen);
  FrameChannel::notify_frame(*channels_[0], /*outbound=*/true, inner, payload.size());
  logical_frames_ += 1;
  const std::uint64_t seq = next_seq_++;
  const auto total = static_cast<std::uint32_t>(payload.size());
  std::uint32_t off = 0;
  std::size_t ch = 0;
  // An empty payload still travels as one (empty) segment so the sequence
  // number is consumed and the peer delivers the frame.
  do {
    const std::uint32_t chunk = std::min(chunk_bytes_, total - off);
    BinaryWriter seg;
    seg.u64(seq);
    seg.u8(static_cast<std::uint8_t>(inner));
    seg.u32(total);
    seg.u32(off);
    seg.bytes(std::span<const std::uint8_t>(payload.data() + off, chunk));
    queues_[ch].push_back(seg.take());
    ch = (ch + 1) % channels_.size();
    off += chunk;
  } while (off < total);
  for (std::size_t i = 0; i < channels_.size(); ++i) pump(i);
  check_drained();
}

void StripeSender::pump(std::size_t channel) {
  auto& q = queues_[channel];
  while (in_flight_[channel] < pipeline_depth_ && !q.empty()) {
    Buffer seg = std::move(q.front());
    q.pop_front();
    in_flight_[channel] += 1;
    segments_ += 1;
    segment_bytes_ += seg.size();
    channels_[channel]->send(MsgType::stripe_seg, seg);
  }
}

void StripeSender::on_channel_drained(std::size_t channel) {
  in_flight_[channel] = 0;
  pump(channel);
  check_drained();
}

void StripeSender::check_drained() {
  if (!on_all_drained_) return;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!queues_[i].empty() || !channels_[i]->socket().drained()) return;
  }
  auto fn = std::move(on_all_drained_);
  on_all_drained_ = nullptr;
  fn();
}

void StripeSender::when_drained(std::function<void()> fn) {
  on_all_drained_ = std::move(fn);
  check_drained();
}

StripeReassembler::StripeReassembler(DeliverFn deliver, ErrorFn on_error)
    : deliver_(std::move(deliver)), on_error_(std::move(on_error)) {}

StripeReassembler::~StripeReassembler() { *alive_ = false; }

void StripeReassembler::fail(const char* reason) {
  errored_ = true;
  pending_.clear();
  if (on_error_) on_error_(reason);
}

void StripeReassembler::on_segment(BinaryReader& r) {
  if (errored_) return;
  segments_ += 1;
  if (r.remaining() < 17) return fail("truncated stripe segment header");
  const std::uint64_t seq = r.u64();
  const std::uint8_t inner = r.u8();
  const std::uint32_t total = r.u32();
  const std::uint32_t offset = r.u32();
  const auto chunk_len = static_cast<std::uint32_t>(r.remaining());

  if (!msg_type_valid(inner)) return fail("stripe segment carries unknown type");
  const auto inner_type = static_cast<MsgType>(inner);
  if (inner_type == MsgType::stripe_hello || inner_type == MsgType::stripe_seg) {
    return fail("nested stripe framing");
  }
  if (seq < next_deliver_) return fail("stripe segment revisits delivered frame");
  if (total > kMaxFrameLen) return fail("stripe frame length exceeds cap");
  if (offset > total || chunk_len > total - offset) {
    return fail("stripe segment overflows frame");
  }

  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    if (pending_.size() >= kMaxPendingStripeFrames) {
      return fail("stripe reassembly backlog");
    }
    // `total` was bounds-checked against kMaxFrameLen above.
    PendingFrame fresh;
    fresh.type = inner;
    fresh.total = total;
    fresh.data = Buffer(total);
    it = pending_.emplace(seq, std::move(fresh)).first;
  }
  PendingFrame& p = it->second;
  if (p.type != inner || p.total != total) {
    return fail("stripe segments disagree on frame header");
  }
  auto [slot, inserted] = p.chunks.emplace(offset, chunk_len);
  if (!inserted) return fail("duplicate stripe segment");
  if (auto next = std::next(slot);
      next != p.chunks.end() && offset + chunk_len > next->first) {
    return fail("overlapping stripe segments");
  }
  if (slot != p.chunks.begin()) {
    auto prev = std::prev(slot);
    if (prev->first + prev->second > offset) return fail("overlapping stripe segments");
  }
  const auto chunk = r.span(chunk_len);
  std::copy(chunk.begin(), chunk.end(),
            p.data.begin() + static_cast<std::ptrdiff_t>(offset));
  p.received += chunk_len;

  // Deliver every complete frame at the head of the sequence. The deliver
  // callback may tear the owning session (and this object) down mid-loop; the
  // shared alive flag makes that safe.
  auto alive = alive_;
  while (true) {
    auto head = pending_.find(next_deliver_);
    if (head == pending_.end() || head->second.received != head->second.total) break;
    PendingFrame done = std::move(head->second);
    pending_.erase(head);
    next_deliver_ += 1;
    delivered_ += 1;
    BinaryReader body({done.data.data(), done.data.size()});
    deliver_(static_cast<MsgType>(done.type), body);
    if (!*alive || errored_) return;
  }
}

}  // namespace dvemig::mig
