#include "src/mig/delta_tracker.hpp"

namespace dvemig::mig {

// Both emitters serialize straight into the unified transfer buffer (the
// paper's "one buffer, one transfer" collective design, DESIGN.md §12): the
// record header is written blind with a zero flags placeholder, each section
// is serialized at the buffer tail and hashed *in place*, and a section that
// turns out unchanged is rolled back with truncate_to. No per-section scratch
// writers, no second copy — the wire bytes are identical to the old
// serialize-then-append encoding by construction.

SectionFlags SocketDeltaTracker::emit_tcp(const TcpImage& img, BinaryWriter& out,
                                          bool force_all) {
  const std::size_t record_at = out.mark();
  out.u8(static_cast<std::uint8_t>(net::IpProto::tcp));
  out.u64(img.src_sock_key);
  const std::size_t flags_at = out.mark();
  out.u8(0);  // SectionFlags, patched below once known

  Entry& e = entries_[img.src_sock_key];
  const bool keep_all = force_all || !e.have;
  SectionFlags flags = SectionFlags::none;

  const auto section = [&](const auto& serialize, std::uint64_t& stored_hash,
                           SectionFlags bit) {
    const std::size_t at = out.mark();
    serialize();
    const std::uint64_t h = fnv1a(out.span_from(at));
    if (keep_all || h != stored_hash) {
      flags = flags | bit;
    } else {
      out.truncate_to(at);  // unchanged since last round: not sent
    }
    stored_hash = h;  // always updated, matching the pre-rewrite tracker
  };
  section([&] { img.serialize_static(out); }, e.stat_hash, SectionFlags::stat);
  section([&] { img.serialize_dynamic(out); }, e.dyn_hash, SectionFlags::dyn);
  section([&] { img.serialize_queues(out); }, e.queues_hash, SectionFlags::queues);
  e.have = true;

  if (flags == SectionFlags::none) {
    out.truncate_to(record_at);  // nothing changed: drop the header too
    return flags;
  }
  out.patch_u8(static_cast<std::uint8_t>(flags), flags_at);
  return flags;
}

SectionFlags SocketDeltaTracker::emit_udp(const UdpImage& img, BinaryWriter& out,
                                          bool force_all) {
  const std::size_t record_at = out.mark();
  out.u8(static_cast<std::uint8_t>(net::IpProto::udp));
  out.u64(img.src_sock_key);
  const std::size_t flags_at = out.mark();
  out.u8(0);  // SectionFlags, patched below once known

  Entry& e = entries_[img.src_sock_key];
  const bool keep_all = force_all || !e.have;
  SectionFlags flags = SectionFlags::none;

  const auto section = [&](const auto& serialize, std::uint64_t& stored_hash,
                           SectionFlags bit) {
    const std::size_t at = out.mark();
    serialize();
    const std::uint64_t h = fnv1a(out.span_from(at));
    if (keep_all || h != stored_hash) {
      flags = flags | bit;
    } else {
      out.truncate_to(at);
    }
    stored_hash = h;
  };
  section([&] { img.serialize_static(out); }, e.stat_hash, SectionFlags::stat);
  section([&] { img.serialize_queues(out); }, e.queues_hash, SectionFlags::queues);
  e.have = true;

  if (flags == SectionFlags::none) {
    out.truncate_to(record_at);
    return flags;
  }
  out.patch_u8(static_cast<std::uint8_t>(flags), flags_at);
  return flags;
}

void SocketDeltaTracker::drop(std::uint64_t key) { entries_.erase(key); }

void read_socket_record(BinaryReader& r, SocketStaging& staging) {
  const auto proto = static_cast<net::IpProto>(r.u8());
  const std::uint64_t key = r.u64();
  const auto flags = static_cast<SectionFlags>(r.u8());

  StagedSocket& staged = staging[key];
  staged.proto = proto;
  if (proto == net::IpProto::tcp) {
    if (flags & SectionFlags::stat) {
      staged.tcp.deserialize_static(r);
      staged.have_static = true;
    }
    if (flags & SectionFlags::dyn) {
      staged.tcp.deserialize_dynamic(r);
      staged.have_dynamic = true;
    }
    if (flags & SectionFlags::queues) {
      staged.tcp.deserialize_queues(r);
      staged.have_queues = true;
    }
  } else {
    if (flags & SectionFlags::stat) {
      staged.udp.deserialize_static(r);
      staged.have_static = true;
    }
    if (flags & SectionFlags::queues) {
      staged.udp.deserialize_queues(r);
      staged.have_queues = true;
    }
  }
}

}  // namespace dvemig::mig
