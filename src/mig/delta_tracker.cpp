#include "src/mig/delta_tracker.hpp"

namespace dvemig::mig {

namespace {

std::uint64_t hash_buffer(const BinaryWriter& w) {
  return fnv1a({w.buffer().data(), w.buffer().size()});
}

}  // namespace

SectionFlags SocketDeltaTracker::emit_tcp(const TcpImage& img, BinaryWriter& out,
                                          bool force_all) {
  BinaryWriter stat, dyn, queues;
  img.serialize_static(stat);
  img.serialize_dynamic(dyn);
  img.serialize_queues(queues);
  const std::uint64_t sh = hash_buffer(stat);
  const std::uint64_t dh = hash_buffer(dyn);
  const std::uint64_t qh = hash_buffer(queues);

  Entry& e = entries_[img.src_sock_key];
  SectionFlags flags = SectionFlags::none;
  if (force_all || !e.have || sh != e.stat_hash) flags = flags | SectionFlags::stat;
  if (force_all || !e.have || dh != e.dyn_hash) flags = flags | SectionFlags::dyn;
  if (force_all || !e.have || qh != e.queues_hash) flags = flags | SectionFlags::queues;
  e.have = true;
  e.stat_hash = sh;
  e.dyn_hash = dh;
  e.queues_hash = qh;

  if (flags == SectionFlags::none) return flags;
  out.u8(static_cast<std::uint8_t>(net::IpProto::tcp));
  out.u64(img.src_sock_key);
  out.u8(static_cast<std::uint8_t>(flags));
  if (flags & SectionFlags::stat) out.bytes(stat.buffer());
  if (flags & SectionFlags::dyn) out.bytes(dyn.buffer());
  if (flags & SectionFlags::queues) out.bytes(queues.buffer());
  return flags;
}

SectionFlags SocketDeltaTracker::emit_udp(const UdpImage& img, BinaryWriter& out,
                                          bool force_all) {
  BinaryWriter stat, queues;
  img.serialize_static(stat);
  img.serialize_queues(queues);
  const std::uint64_t sh = hash_buffer(stat);
  const std::uint64_t qh = hash_buffer(queues);

  Entry& e = entries_[img.src_sock_key];
  SectionFlags flags = SectionFlags::none;
  if (force_all || !e.have || sh != e.stat_hash) flags = flags | SectionFlags::stat;
  if (force_all || !e.have || qh != e.queues_hash) flags = flags | SectionFlags::queues;
  e.have = true;
  e.stat_hash = sh;
  e.queues_hash = qh;

  if (flags == SectionFlags::none) return flags;
  out.u8(static_cast<std::uint8_t>(net::IpProto::udp));
  out.u64(img.src_sock_key);
  out.u8(static_cast<std::uint8_t>(flags));
  if (flags & SectionFlags::stat) out.bytes(stat.buffer());
  if (flags & SectionFlags::queues) out.bytes(queues.buffer());
  return flags;
}

void SocketDeltaTracker::drop(std::uint64_t key) { entries_.erase(key); }

void read_socket_record(BinaryReader& r, SocketStaging& staging) {
  const auto proto = static_cast<net::IpProto>(r.u8());
  const std::uint64_t key = r.u64();
  const auto flags = static_cast<SectionFlags>(r.u8());

  StagedSocket& staged = staging[key];
  staged.proto = proto;
  if (proto == net::IpProto::tcp) {
    if (flags & SectionFlags::stat) {
      staged.tcp.deserialize_static(r);
      staged.have_static = true;
    }
    if (flags & SectionFlags::dyn) {
      staged.tcp.deserialize_dynamic(r);
      staged.have_dynamic = true;
    }
    if (flags & SectionFlags::queues) {
      staged.tcp.deserialize_queues(r);
      staged.have_queues = true;
    }
  } else {
    if (flags & SectionFlags::stat) {
      staged.udp.deserialize_static(r);
      staged.have_static = true;
    }
    if (flags & SectionFlags::queues) {
      staged.udp.deserialize_queues(r);
      staged.have_queues = true;
    }
  }
}

}  // namespace dvemig::mig
