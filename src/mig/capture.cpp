#include "src/mig/capture.hpp"

#include <algorithm>

#include "src/mig/test_hooks.hpp"
#include "src/sim/engine.hpp"

namespace dvemig::mig {

namespace {

// Process-wide matching-mode switch (see set_reference_mode). Not a member so
// flipping it needs no CaptureManager handle in bench harnesses.
bool g_reference_mode = false;

}  // namespace

void CaptureManager::set_reference_mode(bool on) { g_reference_mode = on; }
bool CaptureManager::reference_mode() { return g_reference_mode; }

std::uint64_t CaptureManager::begin_session() {
  const std::uint64_t id = ++next_session_;
  sessions_.emplace(id, Session{});
  update_hook();
  return id;
}

void CaptureManager::add_spec(std::uint64_t session, CaptureSpec spec) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  SpecState& state = it->second.specs.emplace_back(SpecState{spec, {}, {}});
  const std::size_t pi = proto_index(spec.proto);
  if (!spec.match_remote) {
    wildcard_idx_[pi][spec.local_port].push_back(IndexEntry{session, &state});
    return;
  }
  exact_idx_[pi][spec.exact_key()].push_back(IndexEntry{session, &state});
  if (spec.proto != net::IpProto::tcp) return;
  // Seed the exact spec's dedup set from any same-session wildcard spec on the
  // same port: packets from this peer may already have been captured through
  // the wildcard tier (the iterative strategy installs the listener wildcard
  // before each accepted child's exact spec), and a retransmit arriving after
  // this point will now hit the exact tier instead. Without the seed it would
  // be queued twice — the pre-index session-level dedup set never had tiers.
  const auto wit = wildcard_idx_[pi].find(spec.local_port);
  if (wit == wildcard_idx_[pi].end()) return;
  const std::uint64_t peer =
      static_cast<std::uint64_t>(spec.remote.addr.value) << 16 | spec.remote.port;
  for (const IndexEntry& e : wit->second) {
    if (e.session != session) continue;
    const auto seen = e.state->seen_by_peer.find(peer);
    if (seen != e.state->seen_by_peer.end()) {
      state.seen_seq.insert(seen->second.begin(), seen->second.end());
    }
  }
}

void CaptureManager::drop_from_index(std::uint64_t session, Session& s) {
  for (const SpecState& state : s.specs) {
    const std::size_t pi = proto_index(state.spec.proto);
    if (state.spec.match_remote) {
      const auto it = exact_idx_[pi].find(state.spec.exact_key());
      if (it == exact_idx_[pi].end()) continue;
      std::erase_if(it->second,
                    [&](const IndexEntry& e) { return e.session == session; });
      if (it->second.empty()) exact_idx_[pi].erase(it);
    } else {
      const auto it = wildcard_idx_[pi].find(state.spec.local_port);
      if (it == wildcard_idx_[pi].end()) continue;
      std::erase_if(it->second,
                    [&](const IndexEntry& e) { return e.session == session; });
      if (it->second.empty()) wildcard_idx_[pi].erase(it);
    }
  }
}

std::size_t CaptureManager::finish_session(std::uint64_t session) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  drop_from_index(session, it->second);
  std::vector<net::Packet> queue = std::move(it->second.queue);
  const std::vector<std::int64_t> arrivals = std::move(it->second.arrival_ns);
  sessions_.erase(it);
  update_hook();
  // Reinjection phase (Section V-B): each packet is submitted back to the stack
  // via the okfn() equivalent, in arrival order.
  const std::int64_t now_ns = stack_->engine().now().ns;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    metrics_.packet_delay_us.get().record(static_cast<double>(now_ns - arrivals[i]) /
                                          1e3);
    stack_->reinject(std::move(queue[i]));
  }
  metrics_.reinjected.get().add(queue.size());
  return queue.size();
}

void CaptureManager::abort_session(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    drop_from_index(session, it->second);
    sessions_.erase(it);
  }
  update_hook();
}

std::size_t CaptureManager::total_specs() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) n += session.specs.size();
  return n;
}

std::size_t CaptureManager::queued(std::uint64_t session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.queue.size();
}

void CaptureManager::for_each_queued(
    const std::function<void(std::uint64_t, const net::Packet&)>& fn) const {
  for (const auto& [id, session] : sessions_) {
    for (const net::Packet& p : session.queue) fn(id, p);
  }
}

void CaptureManager::inject_queued_for_test(std::uint64_t session, net::Packet p) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  it->second.queue.push_back(std::move(p));
  it->second.arrival_ns.push_back(stack_->engine().now().ns);
}

void CaptureManager::update_hook() {
  if (sessions_.empty()) {
    hook_.release();
    return;
  }
  if (hook_.registered()) return;
  hook_ = stack_->netfilter().register_hook(
      stack::Hook::local_in, /*priority=*/0,
      [this](net::Packet& p) { return on_local_in(p); });
}

stack::Verdict CaptureManager::steal(Session& session, const net::Packet& p) {
  total_captured_ += 1;
  metrics_.captured.get().add(1);
  session.queue.push_back(p);
  session.arrival_ns.push_back(stack_->engine().now().ns);
  return stack::Verdict::stolen;
}

stack::Verdict CaptureManager::on_local_in(net::Packet& p) {
  if (g_reference_mode) return on_local_in_reference(p);
  // Exact tier first: an exact spec is strictly more specific than any
  // wildcard on the same port, and both can only coexist within one session
  // (a migrating listener plus its accepted children), where the choice is
  // unobservable — queue and dedup domain are shared.
  const std::size_t pi = proto_index(p.proto);
  const IndexEntry* hit = nullptr;
  bool exact_tier = false;
  if (const auto it = exact_idx_[pi].find(CaptureSpec::exact_key_for(p));
      it != exact_idx_[pi].end() && !it->second.empty()) {
    hit = &it->second.front();
    exact_tier = true;
  }
  if (hit == nullptr) {
    if (const auto it = wildcard_idx_[pi].find(p.dport());
        it != wildcard_idx_[pi].end() && !it->second.empty()) {
      hit = &it->second.front();
    }
  }
  if (hit == nullptr) return stack::Verdict::accept;
  const auto sit = sessions_.find(hit->session);
  DVEMIG_ASSERT(sit != sessions_.end());  // index never outlives its session
  if (p.proto == net::IpProto::tcp &&
      mutation() != ProtocolMutation::skip_capture_dedup) {
    const bool fresh =
        exact_tier
            ? hit->state->seen_seq.insert(p.tcp.seq).second
            : hit->state->seen_by_peer[CaptureSpec::peer_key_for(p)]
                  .insert(p.tcp.seq)
                  .second;
    if (!fresh) {
      total_deduplicated_ += 1;
      metrics_.dedup_hits.get().add(1);
      return stack::Verdict::stolen;  // duplicate stored only once
    }
  }
  return steal(sit->second, p);
}

stack::Verdict CaptureManager::on_local_in_reference(net::Packet& p) {
  // Pre-index behavior, kept verbatim as the equivalence oracle: scan every
  // session's spec list, dedup TCP via the session-level tuple set.
  for (auto& [id, session] : sessions_) {
    for (const SpecState& state : session.specs) {
      if (!state.spec.matches(p)) continue;
      if (p.proto == net::IpProto::tcp &&
          mutation() != ProtocolMutation::skip_capture_dedup) {
        const auto key =
            std::make_tuple(p.src.value, p.tcp.sport, p.tcp.dport, p.tcp.seq);
        if (!session.seen_tcp.insert(key).second) {
          total_deduplicated_ += 1;
          metrics_.dedup_hits.get().add(1);
          return stack::Verdict::stolen;  // duplicate stored only once
        }
      }
      return steal(session, p);
    }
  }
  return stack::Verdict::accept;
}

}  // namespace dvemig::mig
