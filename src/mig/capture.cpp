#include "src/mig/capture.hpp"

#include "src/mig/test_hooks.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/engine.hpp"

namespace dvemig::mig {

namespace {

struct CaptureMetrics {
  obs::Counter& captured;
  obs::Counter& dedup_hits;
  obs::Counter& reinjected;
  obs::Histogram& packet_delay_us;

  static CaptureMetrics& get() {
    auto& reg = obs::Registry::instance();
    static CaptureMetrics m{
        reg.counter("capture.captured"),
        reg.counter("capture.dedup_hits"),
        reg.counter("capture.reinjected"),
        reg.histogram("capture.packet_delay_us", obs::default_latency_bounds_us()),
    };
    return m;
  }
};

}  // namespace

std::uint64_t CaptureManager::begin_session() {
  const std::uint64_t id = ++next_session_;
  sessions_.emplace(id, Session{});
  update_hook();
  return id;
}

void CaptureManager::add_spec(std::uint64_t session, CaptureSpec spec) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  it->second.specs.push_back(spec);
}

std::size_t CaptureManager::finish_session(std::uint64_t session) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  std::vector<net::Packet> queue = std::move(it->second.queue);
  const std::vector<std::int64_t> arrivals = std::move(it->second.arrival_ns);
  sessions_.erase(it);
  update_hook();
  // Reinjection phase (Section V-B): each packet is submitted back to the stack
  // via the okfn() equivalent, in arrival order.
  auto& m = CaptureMetrics::get();
  const std::int64_t now_ns = stack_->engine().now().ns;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    m.packet_delay_us.record(static_cast<double>(now_ns - arrivals[i]) / 1e3);
    stack_->reinject(std::move(queue[i]));
  }
  m.reinjected.add(queue.size());
  return queue.size();
}

void CaptureManager::abort_session(std::uint64_t session) {
  sessions_.erase(session);
  update_hook();
}

std::size_t CaptureManager::total_specs() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) n += session.specs.size();
  return n;
}

std::size_t CaptureManager::queued(std::uint64_t session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.queue.size();
}

void CaptureManager::for_each_queued(
    const std::function<void(std::uint64_t, const net::Packet&)>& fn) const {
  for (const auto& [id, session] : sessions_) {
    for (const net::Packet& p : session.queue) fn(id, p);
  }
}

void CaptureManager::inject_queued_for_test(std::uint64_t session, net::Packet p) {
  const auto it = sessions_.find(session);
  DVEMIG_EXPECTS(it != sessions_.end());
  it->second.queue.push_back(std::move(p));
  it->second.arrival_ns.push_back(stack_->engine().now().ns);
}

void CaptureManager::update_hook() {
  if (sessions_.empty()) {
    hook_.release();
    return;
  }
  if (hook_.registered()) return;
  hook_ = stack_->netfilter().register_hook(
      stack::Hook::local_in, /*priority=*/0,
      [this](net::Packet& p) { return on_local_in(p); });
}

stack::Verdict CaptureManager::on_local_in(net::Packet& p) {
  for (auto& [id, session] : sessions_) {
    for (const CaptureSpec& spec : session.specs) {
      if (!spec.matches(p)) continue;
      if (p.proto == net::IpProto::tcp &&
          mutation() != ProtocolMutation::skip_capture_dedup) {
        const auto key = std::make_tuple(p.src.value, p.tcp.sport, p.tcp.dport,
                                         p.tcp.seq);
        if (!session.seen_tcp.insert(key).second) {
          total_deduplicated_ += 1;
          CaptureMetrics::get().dedup_hits.add(1);
          return stack::Verdict::stolen;  // duplicate stored only once
        }
      }
      total_captured_ += 1;
      CaptureMetrics::get().captured.add(1);
      session.queue.push_back(p);
      session.arrival_ns.push_back(stack_->engine().now().ns);
      return stack::Verdict::stolen;
    }
  }
  return stack::Verdict::accept;
}

}  // namespace dvemig::mig
