// Incoming packet-loss prevention (Sections III-B, V-B).
//
// The destination node installs a NF_INET_LOCAL_IN hook matching the migrating
// sockets' (remote IP, remote port, local port). Matching packets are *stolen* and
// queued while the socket is down; TCP packets are deduplicated by sequence number.
// After the socket is restored, the queue is reinjected through the stack's okfn()
// equivalent (NetStack::reinject), bypassing the hook itself.
//
// This works only because the single-IP router broadcasts every incoming packet to
// every node: the destination hears the client before it owns the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/mig/socket_image.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::mig {

class CaptureManager {
 public:
  explicit CaptureManager(stack::NetStack& stack) : stack_(&stack) {}

  /// Open a capture session (one per in-flight migration). Specs can be added
  /// incrementally (the iterative strategy adds them one socket at a time).
  std::uint64_t begin_session();
  void add_spec(std::uint64_t session, CaptureSpec spec);

  /// Reinject every captured packet in arrival order and tear down the session.
  /// Returns the number of packets reinjected.
  std::size_t finish_session(std::uint64_t session);

  /// Tear down without reinjection (failed migration).
  void abort_session(std::uint64_t session);

  std::size_t queued(std::uint64_t session) const;
  std::size_t active_sessions() const { return sessions_.size(); }
  /// Audit iteration (dvemig-verify): visit every queued packet of every open
  /// session, in arrival order within a session.
  void for_each_queued(
      const std::function<void(std::uint64_t session, const net::Packet&)>& fn) const;
  /// Test seam: enqueue a packet directly, bypassing the capture hook and the
  /// dedup filter. Exists so dvemig-verify tests can plant a corrupted queue
  /// and prove the auditor notices; production code must never call it.
  void inject_queued_for_test(std::uint64_t session, net::Packet p);
  std::size_t total_specs() const;
  std::uint64_t total_captured() const { return total_captured_; }
  std::uint64_t total_deduplicated() const { return total_deduplicated_; }

 private:
  struct Session {
    std::vector<CaptureSpec> specs;
    std::vector<net::Packet> queue;
    // Arrival sim-time of queue[i]; at reinjection, now - arrival is the real
    // delay each captured packet suffered (the `capture.packet_delay_us`
    // histogram — Figure 4's per-packet measurement rather than a bound).
    std::vector<std::int64_t> arrival_ns;
    // TCP dedup: (remote addr, remote port, local port, seq) seen so far.
    std::set<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t, std::uint32_t>>
        seen_tcp;
  };

  stack::Verdict on_local_in(net::Packet& p);
  void update_hook();

  stack::NetStack* stack_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_{0};
  stack::HookHandle hook_;
  std::uint64_t total_captured_{0};
  std::uint64_t total_deduplicated_{0};
};

}  // namespace dvemig::mig
