// Incoming packet-loss prevention (Sections III-B, V-B).
//
// The destination node installs a NF_INET_LOCAL_IN hook matching the migrating
// sockets' (remote IP, remote port, local port). Matching packets are *stolen* and
// queued while the socket is down; TCP packets are deduplicated by sequence number.
// After the socket is restored, the queue is reinjected through the stack's okfn()
// equivalent (NetStack::reinject), bypassing the hook itself.
//
// This works only because the single-IP router broadcasts every incoming packet to
// every node: the destination hears the client before it owns the socket.
//
// Matching is O(1) per packet (DESIGN.md §12): specs live in a two-tier hash
// index — an exact tier keyed by the packed (remote addr, remote port, local
// port) tuple and a wildcard tier (listeners, unconnected UDP binds) keyed by
// local port — maintained incrementally as specs are added and sessions end.
// The exact tier is probed first; within a tier, the oldest spec wins, which
// reproduces the pre-index scan's outcome for every overlap pattern the
// protocol can produce (a session's wildcard and exact specs share one queue
// and one logical dedup domain, so which of them matches is unobservable).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/mig/socket_image.hpp"
#include "src/obs/metrics.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::mig {

class CaptureManager {
 public:
  explicit CaptureManager(stack::NetStack& stack) : stack_(&stack) {}

  /// Open a capture session (one per in-flight migration). Specs can be added
  /// incrementally (the iterative strategy adds them one socket at a time).
  std::uint64_t begin_session();
  void add_spec(std::uint64_t session, CaptureSpec spec);

  /// Reinject every captured packet in arrival order and tear down the session.
  /// Returns the number of packets reinjected.
  std::size_t finish_session(std::uint64_t session);

  /// Tear down without reinjection (failed migration).
  void abort_session(std::uint64_t session);

  std::size_t queued(std::uint64_t session) const;
  std::size_t active_sessions() const { return sessions_.size(); }
  /// Audit iteration (dvemig-verify): visit every queued packet of every open
  /// session, in arrival order within a session.
  void for_each_queued(
      const std::function<void(std::uint64_t session, const net::Packet&)>& fn) const;
  /// Test seam: enqueue a packet directly, bypassing the capture hook and the
  /// dedup filter. Exists so dvemig-verify tests can plant a corrupted queue
  /// and prove the auditor notices; production code must never call it.
  void inject_queued_for_test(std::uint64_t session, net::Packet p);
  std::size_t total_specs() const;
  std::uint64_t total_captured() const { return total_captured_; }
  std::uint64_t total_deduplicated() const { return total_deduplicated_; }

  /// Bench/test seam: route matching through the pre-index linear scan (with
  /// the historical session-level dedup set) instead of the hash index. The
  /// connection_scale bench uses it to prove the index changes nothing
  /// sim-visible, and the property test uses it as the oracle. Process-wide.
  static void set_reference_mode(bool on);
  static bool reference_mode();

 private:
  struct SpecState {
    CaptureSpec spec;
    // Per-spec TCP dedup (indexed mode). An exact spec pins the whole match
    // tuple, so its key shrinks to the sequence number alone; a wildcard spec
    // still sees many peers and keys by packed (remote addr, remote port).
    std::unordered_set<std::uint32_t> seen_seq;
    std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>> seen_by_peer;
  };

  struct Session {
    // deque: SpecState addresses must stay stable — the index holds pointers.
    std::deque<SpecState> specs;
    std::vector<net::Packet> queue;
    // Arrival sim-time of queue[i]; at reinjection, now - arrival is the real
    // delay each captured packet suffered (the `capture.packet_delay_us`
    // histogram — Figure 4's per-packet measurement rather than a bound).
    std::vector<std::int64_t> arrival_ns;
    // Reference-mode TCP dedup only (session-scoped, as before the index):
    // (remote addr, remote port, local port, seq) seen so far.
    std::set<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t, std::uint32_t>>
        seen_tcp;
  };

  struct IndexEntry {
    std::uint64_t session;
    SpecState* state;
  };

  struct Metrics {
    obs::CounterRef captured{"capture.captured"};
    obs::CounterRef dedup_hits{"capture.dedup_hits"};
    obs::CounterRef reinjected{"capture.reinjected"};
    obs::HistogramRef packet_delay_us{"capture.packet_delay_us",
                                      obs::default_latency_bounds_us()};
  };

  static std::size_t proto_index(net::IpProto proto) {
    return proto == net::IpProto::tcp ? 0 : 1;
  }

  stack::Verdict on_local_in(net::Packet& p);
  stack::Verdict on_local_in_reference(net::Packet& p);
  stack::Verdict steal(Session& session, const net::Packet& p);
  void drop_from_index(std::uint64_t session, Session& s);
  void update_hook();

  stack::NetStack* stack_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  // Two-tier spec index, one pair of maps per protocol (proto_index).
  // Buckets keep insertion order; entry 0 is the match winner.
  std::unordered_map<std::uint64_t, std::vector<IndexEntry>> exact_idx_[2];
  std::unordered_map<std::uint16_t, std::vector<IndexEntry>> wildcard_idx_[2];
  std::uint64_t next_session_{0};
  stack::HookHandle hook_;
  std::uint64_t total_captured_{0};
  std::uint64_t total_deduplicated_{0};
  Metrics metrics_;
};

}  // namespace dvemig::mig
