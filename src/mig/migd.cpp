#include "src/mig/migd.hpp"

#include <algorithm>
#include <utility>

#include "src/common/log.hpp"
#include "src/mig/test_hooks.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

namespace dvemig::mig {

namespace {

/// Pseudo-pid used to charge kernel-side migration work to the CPU meter.
constexpr Pid kKernelPid{1};

/// Capacity hint per socket when pre-reserving the unified buffer for a full
/// dump (struct pads dominate: ~2.9 KB TCP + queues; generous is fine, the
/// buffer is recycled).
constexpr std::size_t kFullDumpReserveBytes = 4096;

/// The unified socket_state buffer, cut into self-contained frames at record
/// boundaries. Each chunk opens with its own record-count prefix (back-patched
/// when the chunk closes), so no frame outgrows the channel's kMaxFrameLen
/// sanity cap however many sockets a dump carries. A dump that fits in one
/// chunk — the common case — is byte-for-byte the pre-chunking single frame.
class SockStateChunks {
 public:
  SockStateChunks(Buffer spare, std::size_t limit)
      : buf_(std::move(spare)), limit_(limit) {
    buf_.clear();
    open();
  }

  BinaryWriter& writer() { return buf_; }
  void reserve(std::size_t n) { buf_.reserve(n); }

  /// Call after each emitted record: cuts a fresh chunk once the open one has
  /// outgrown the limit. Cutting only between records keeps every frame
  /// independently parseable; a chunk may overshoot by at most one record.
  void record_emitted() {
    total_ += 1;
    open_records_ += 1;
    if (buf_.size() - starts_.back() >= limit_) {
      close_open();
      open();
    }
  }

  std::uint32_t total_records() const { return total_; }
  /// Bytes of record payload, excluding the per-chunk count prefixes — what
  /// the subtraction cost model prices.
  std::size_t record_bytes() const {
    return buf_.size() - starts_.size() * sizeof(std::uint32_t);
  }
  /// Bytes that will actually go on the wire (prefixes included).
  std::size_t wire_bytes() const { return buf_.size(); }
  const std::vector<std::size_t>& starts() const { return starts_; }

  /// Patch the open chunk's count — or drop it entirely if a cut left it
  /// empty after the final record. Must run before take()/sending.
  void finish() {
    if (starts_.size() > 1 &&
        buf_.size() - starts_.back() == sizeof(std::uint32_t)) {
      buf_.truncate_to(starts_.back());
      starts_.pop_back();
      return;  // the now-last chunk was already patched when it closed
    }
    buf_.patch_u32(open_records_, starts_.back());
  }

  Buffer take() { return buf_.take(); }

 private:
  void open() {
    starts_.push_back(buf_.mark());
    buf_.u32(0);
    open_records_ = 0;
  }
  void close_open() { buf_.patch_u32(open_records_, starts_.back()); }

  BinaryWriter buf_;
  std::size_t limit_;
  std::vector<std::size_t> starts_;  // offset of each chunk's count prefix
  std::uint32_t open_records_{0};
  std::uint32_t total_{0};
};

obs::Tracer& tracer() { return obs::Tracer::instance(); }

/// Per-migration metrics, shared by source and destination roles. References
/// are stable for the process lifetime (the registry never evicts).
struct MigMetrics {
  obs::Counter& freeze_bytes;
  obs::Counter& precopy_bytes;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& restores;
  obs::Counter& stripe_segments;
  obs::Counter& stripe_bytes;
  obs::Histogram& freeze_time_us;
  obs::Histogram& total_time_us;
  obs::Histogram& precopy_rounds;

  static MigMetrics& get() {
    auto& reg = obs::Registry::instance();
    static MigMetrics m{
        reg.counter("mig.freeze_bytes"),
        reg.counter("mig.precopy_bytes"),
        reg.counter("mig.migrations_completed"),
        reg.counter("mig.migrations_failed"),
        reg.counter("mig.restores_completed"),
        reg.counter("mig.stripe_segments"),
        reg.counter("mig.stripe_bytes"),
        reg.histogram("mig.freeze_time_us", obs::default_latency_bounds_us()),
        reg.histogram("mig.total_time_us", obs::default_latency_bounds_us()),
        reg.histogram("mig.precopy_rounds", {1, 2, 4, 8, 16, 32, 64}),
    };
    return m;
  }
};

/// Disable a socket for migration: unhash from the lookup tables, clear timers,
/// stop transmission (Section V-C: "unhashing it from both the ehash and bhash
/// kernel hashtables and clearing the retransmission timer").
void disable_socket(stack::NetStack& st, stack::Socket& sock) {
  if (sock.type() == stack::SocketType::tcp) {
    auto& tcp = static_cast<stack::TcpSocket&>(sock);
    tcp.clear_timers();
    if (tcp.hashed_established()) {
      st.table().ehash_remove(stack::FourTuple{tcp.local(), tcp.remote()});
      tcp.set_hashed_established(false);
    }
    if (tcp.hashed_bound()) {
      st.table().bhash_remove(tcp, tcp.local().port);
      tcp.set_hashed_bound(false);
    }
    for (const auto& child : tcp.accept_queue()) disable_socket(st, *child);
  } else {
    auto& udp = static_cast<stack::UdpSocket&>(sock);
    if (udp.cb().bound && !udp.migration_disabled()) {
      st.table().bhash_remove(udp, udp.local().port);
      // cb().bound stays true: it is part of the state image.
    }
  }
  sock.set_migration_disabled(true);
  st.dst_cache_drop(sock.sock_id());
}

/// Roll back disable_socket after a failed migration: rehash the socket and
/// re-arm its timers so the resumed process can keep using it. Without this
/// the abort path wakes the process with its sockets unhashed and every send
/// trips the migration_disabled precondition (found by dvemig-mc's crash
/// preset: drop a freeze-phase frame, let the destination abort, resume).
void enable_socket(stack::NetStack& st,
                   const std::shared_ptr<stack::Socket>& sock) {
  if (!sock->migration_disabled()) return;
  sock->set_migration_disabled(false);
  if (sock->type() == stack::SocketType::tcp) {
    auto tcp = std::static_pointer_cast<stack::TcpSocket>(sock);
    if (tcp->cb().state == stack::TcpState::listen) {
      if (!tcp->hashed_bound()) {
        st.table().bhash_insert(tcp, tcp->local().port);
        tcp->set_hashed_bound(true);
      }
      for (const auto& child : tcp->accept_queue()) enable_socket(st, child);
    } else {
      if (!tcp->hashed_established()) {
        st.table().ehash_insert(tcp,
                                stack::FourTuple{tcp->local(), tcp->remote()});
        tcp->set_hashed_established(true);
      }
      tcp->restart_timers_after_restore();
    }
  } else {
    auto& udp = static_cast<stack::UdpSocket&>(*sock);
    if (udp.cb().bound) st.table().bhash_insert(sock, udp.local().port);
  }
}

/// A TCP socket is skippable in a precopy round if the user currently holds it
/// (Section V-C1: "the socket tracking mechanism during the precopy phase simply
/// omits sockets that are locked or being used for fast-path receiving").
bool tcp_busy(const stack::TcpSocket& tcp) {
  const auto& cb = tcp.cb();
  return cb.user_locked || cb.blocked_reader || !cb.backlog.empty() ||
         !cb.prequeue.empty();
}

}  // namespace

const char* strategy_name(SocketMigStrategy s) {
  switch (s) {
    case SocketMigStrategy::iterative: return "iterative";
    case SocketMigStrategy::collective: return "collective";
    case SocketMigStrategy::incremental_collective: return "incremental-collective";
  }
  return "?";
}

// ==================================================================== Transd

Transd::Transd(proc::Node& node, TranslationManager& translation, CostModel cm)
    : node_(&node), translation_(&translation), cm_(cm) {}

void Transd::start() {
  sock_ = node_->stack().make_udp();
  sock_->bind(node_->local_addr(), kTransdPort);
  sock_->set_on_readable([this] { on_readable(); });
}

void Transd::on_readable() {
  while (auto dgram = sock_->recv()) {
    BinaryReader r(dgram->data);
    const std::uint64_t req_id = r.u64();
    TranslationRule rule = TranslationRule::deserialize(r);
    const net::Endpoint requester = dgram->from;
    // Installing the filter takes kernel work; the ack follows it.
    node_->engine().schedule_after(
        SimTime::nanoseconds(cm_.translation_install_ns),
        [this, rule, req_id, requester] {
          node_->cpu().account(kKernelPid,
                               SimTime::nanoseconds(cm_.translation_install_ns));
          translation_->install(rule, fix_dst_cache_);
          served_ += 1;
          BinaryWriter ack;
          ack.u64(req_id);
          sock_->send_to(requester, ack.take());
        });
  }
}

// ==================================================================== sessions

class Migd::SourceSession : public std::enable_shared_from_this<Migd::SourceSession> {
 public:
  SourceSession(Migd& owner, std::shared_ptr<proc::Process> proc,
                net::Ipv4Addr dest, MigrateOptions options)
      : owner_(&owner), node_(&owner.node()), proc_(std::move(proc)), dest_(dest) {
    config_ = options.config;
    config_.parallelism = std::clamp(config_.parallelism, 1, kMaxParallelism);
    config_.pipeline_depth = std::max(config_.pipeline_depth, 1);
    config_.stripe_chunk_bytes = std::max<std::uint32_t>(config_.stripe_chunk_bytes, 4096);
    stats_.pid = proc_->pid();
    stats_.proc_name = proc_->name();
    stats_.strategy = options.strategy;
    stats_.live = options.live;
    stats_.parallelism = config_.parallelism;
    stats_.src_node = node_->local_addr();
    stats_.dst_node = dest;
    loop_timeout_ns_ = owner_->cm_.initial_loop_timeout_ns;
    obs_track_ = tracer().track(node_->name() + "/migd.src");
  }

  /// Coarse progress marker, mirrored 1:1 by the span tree: every write below
  /// sits next to the begin/end of the span that covers the same interval
  /// (tools/lint_dvemig.py enforces this pairing for new phase writes).
  enum class Phase : std::uint8_t { idle, connect, precopy, freeze, done };

  Phase phase() const { return phase_; }

  void begin() {
    stats_.t_start = engine().now();
    span_total_ = tracer().begin(obs_track_, "mig.total");
    tracer().attr(span_total_, "pid", std::to_string(stats_.pid.value));
    tracer().attr(span_total_, "strategy", strategy_name(stats_.strategy));
    tracer().attr(span_total_, "live", stats_.live ? "1" : "0");
    phase_ = Phase::connect;
    ctrl_ = node_->stack().make_udp();
    ctrl_->bind(node_->local_addr(), 0);
    ctrl_->set_on_readable([self = shared_from_this()] { self->on_ctrl_readable(); });

    sock_ = node_->stack().make_tcp();
    sock_->bind(node_->local_addr(), 0);
    sock_->set_on_connected([self = shared_from_this()] { self->on_connected(); });
    sock_->set_on_reset([self = shared_from_this()] { self->fail("connection reset"); });
    sock_->connect(net::Endpoint{dest_, kMigdPort});
    // Destinations without a reachable migd never answer the SYN; give up.
    connect_timer_ = engine().schedule_after(
        SimTime::seconds(2), [self = shared_from_this()] {
          if (self->sock_->state() != stack::TcpState::established) {
            self->sock_->abort();
            self->fail("destination migd unreachable");
          }
        });
    // No frame-level retransmission exists, so a lost control frame would
    // otherwise hang this session forever — with the process frozen if the
    // loss hits during the freeze phase.
    watchdog_ = engine().schedule_after(
        SimTime::nanoseconds(cm().migration_watchdog_ns),
        [self = shared_from_this()] { self->fail("migration watchdog expired"); });
  }

  MigrationStats& stats() { return stats_; }

  /// Break the session <-> socket/channel reference cycles: every callback
  /// installed above captures shared_from_this(), so a finished session would
  /// otherwise keep itself (and its sockets, trackers and staged state) alive
  /// forever. Must not run inside one of those callbacks — clearing a
  /// std::function that is currently executing destroys its captures mid-call.
  void detach_callbacks() {
    connect_timer_.cancel();
    watchdog_.cancel();
    if (stripes_) stripes_->detach_callbacks();
    on_stripes_ready_ = nullptr;
    for (auto& ch : stripe_channels_) {
      ch->set_on_frame(nullptr);
      ch->set_on_error(nullptr);
    }
    for (auto& s : stripe_socks_) {
      s->set_on_connected(nullptr);
      s->set_on_reset(nullptr);
      s->set_on_drained(nullptr);
    }
    if (channel_) {
      channel_->set_on_frame(nullptr);
      channel_->set_on_error(nullptr);
    }
    if (sock_) {
      sock_->set_on_connected(nullptr);
      sock_->set_on_reset(nullptr);
      sock_->set_on_drained(nullptr);
    }
    if (ctrl_) ctrl_->set_on_readable(nullptr);
  }

 private:
  struct MigSocket {
    Fd fd;
    std::shared_ptr<stack::Socket> sock;
    bool in_cluster{false};       // local addr is this node's cluster address
    bool translatable{false};     // connected in-cluster socket needing a filter
    net::Endpoint orig_remote{};  // remote endpoint as stored in the socket
    net::Endpoint effective_remote{};  // where the peer actually lives now
  };

  sim::Engine& engine() const { return node_->engine(); }
  const CostModel& cm() const { return owner_->cm_; }

  /// Spend `d` of (kernel/helper-thread) CPU, then continue.
  void after(SimDuration d, std::function<void()> fn) {
    after_parallel(d, d, std::move(fn));
  }

  /// Parallel stage: `cpu` of total work spread over the worker pool, whose
  /// slowest shard finishes after `elapsed`. The CPU meter is charged the full
  /// serial amount (the work does not shrink, it spreads), the continuation
  /// runs at the makespan. With cpu == elapsed this is the serial after().
  void after_parallel(SimDuration cpu, SimDuration elapsed, std::function<void()> fn) {
    node_->cpu().account(kKernelPid, cpu);
    engine().schedule_after(elapsed,
                            [self = shared_from_this(), fn = std::move(fn)] {
                              (void)self;
                              fn();
                            });
  }

  /// finish()/fail() run inside channel or socket callbacks; detach on a
  /// fresh event once the dispatch that called us has unwound.
  void detach_later() {
    engine().schedule_after(SimTime::zero(), [self = shared_from_this()] {
      self->detach_callbacks();
    });
  }

  /// End a span handle if it is still open; zero the handle either way.
  void close_span(obs::SpanId& id) {
    if (id != 0) tracer().end(id);
    id = 0;
  }

  void fail(const std::string& why) {
    // Duplicated mig_abort (or a reset racing an abort) must not fail twice:
    // the first failure already resumed the process, counted the metric and
    // handed the stats to the owner.
    if (phase_ == Phase::done) return;
    DVEMIG_WARN("migd", "migration of pid %u failed: %s", stats_.pid.value,
                why.c_str());
    // Undo the freeze's socket subtraction before waking the process: restore
    // retargeted remote endpoints, then rehash and re-enable every socket the
    // freeze disabled.
    for (const MigSocket& ms : sockets_) {
      if (ms.sock->migration_disabled() &&
          ms.effective_remote != ms.orig_remote) {
        if (ms.sock->type() == stack::SocketType::tcp) {
          auto& tcp = static_cast<stack::TcpSocket&>(*ms.sock);
          tcp.set_endpoints(tcp.local(), ms.orig_remote);
        } else {
          auto& udp = static_cast<stack::UdpSocket&>(*ms.sock);
          udp.set_endpoints(udp.local(), ms.orig_remote, udp.cb().bound,
                            udp.cb().connected);
        }
      }
      enable_socket(node_->stack(), ms.sock);
    }
    if (proc_->frozen()) proc_->resume();  // best effort: keep the source alive
    stats_.success = false;
    // Close the whole span tree inner-to-outer so depths unwind cleanly.
    close_span(span_stripe_connect_);
    close_span(span_stage_);
    close_span(span_round_);
    close_span(span_precopy_);
    close_span(span_freeze_);
    if (span_total_ != 0) tracer().attr(span_total_, "error", why);
    close_span(span_total_);
    phase_ = Phase::done;
    MigMetrics::get().failed.add(1);
    // Tell the destination the migration is dead — it may hold armed capture
    // filters and a staged image — and release both control sockets. A silent
    // source-side failure used to leak the dest session, whose filters kept
    // stealing the process's packets forever.
    if (channel_ && (sock_->state() == stack::TcpState::established ||
                     sock_->state() == stack::TcpState::close_wait)) {
      // mig_abort bypasses the stripe queues on purpose: it must not wait
      // behind megabytes of queued page data on a migration that is dead.
      channel_->send(MsgType::mig_abort, Buffer{});
    }
    if (stripes_) {
      auto& m = MigMetrics::get();
      m.stripe_segments.add(stripes_->segments_sent());
      m.stripe_bytes.add(stripes_->segment_bytes());
    }
    pending_frames_.clear();
    for (auto& s : stripe_socks_) s->close();
    if (sock_) sock_->close();
    if (ctrl_) ctrl_->close();
    detach_later();
    owner_->source_finished(stats_);
  }

  void on_connected() {
    channel_ = std::make_unique<FrameChannel>(sock_);
    channel_->set_on_frame(
        [self = shared_from_this()](MsgType t, BinaryReader& r) {
          self->on_frame(t, r);
        });
    // A malformed reply stream means the destination is garbage-in, garbage-out:
    // give up on the migration rather than deserialize noise. Deferred one event
    // so the channel is not torn down from inside its own receive path.
    channel_->set_on_error([self = shared_from_this()](const char* reason) {
      DVEMIG_WARN("migd", "pid %u source channel: %s", self->stats_.pid.value,
                  reason);
      self->engine().schedule_after(SimTime::zero(),
                                    [self] { self->fail("malformed frame"); });
    });
    mig_id_ = (std::uint64_t{node_->local_addr().value} << 20) | ++owner_->next_mig_id_;
    BinaryWriter w;
    w.u32(stats_.pid.value);
    w.str(proc_->name());
    w.u8(static_cast<std::uint8_t>(stats_.strategy));
    w.u32(node_->local_addr().value);
    w.u64(mig_id_);
    w.u8(static_cast<std::uint8_t>(config_.parallelism));
    logical_sent_ += w.size() + 5;  // counted like any other logical frame
    channel_->send(MsgType::mig_begin, std::move(w));
    connect_timer_.cancel();
    // Stripe connections are opened in the background; logical frames queue in
    // send_frame() until the striped sender is up, so neither the precopy loop
    // nor a stop-and-copy freeze waits on the extra handshakes.
    if (config_.parallelism > 1) open_stripes();
    if (stats_.live) {
      span_precopy_ = tracer().begin(obs_track_, "mig.precopy");
      phase_ = Phase::precopy;
      precopy_round();
    } else {
      // Stop-and-copy: no precopy — the process is down for the whole transfer
      // (the first tracker round inside the freeze ships the entire image).
      enter_freeze();
    }
  }

  // ---------------- striped transfer (parallelism > 1) ----------------

  void open_stripes() {
    span_stripe_connect_ = tracer().begin(obs_track_, "mig.stripe_connect");
    tracer().attr(span_stripe_connect_, "stripes",
                  std::to_string(config_.parallelism - 1));
    for (int i = 1; i < config_.parallelism; ++i) {
      auto s = node_->stack().make_tcp();
      s->bind(node_->local_addr(), 0);
      s->set_on_connected([self = shared_from_this()] { self->on_stripe_connected(); });
      s->set_on_reset(
          [self = shared_from_this()] { self->fail("stripe connection reset"); });
      s->connect(net::Endpoint{dest_, kMigdPort});
      stripe_socks_.push_back(std::move(s));
    }
  }

  void on_stripe_connected() {
    stripes_connected_ += 1;
    if (stripes_connected_ < config_.parallelism - 1) return;
    close_span(span_stripe_connect_);
    std::vector<FrameChannel*> chans;
    chans.push_back(channel_.get());
    for (auto& s : stripe_socks_) {
      auto ch = std::make_unique<FrameChannel>(s);
      // The destination never speaks on a stripe channel; any inbound frame or
      // framing noise there is a broken transport.
      ch->set_on_frame([self = shared_from_this()](MsgType, BinaryReader&) {
        self->fail("unexpected frame on stripe channel");
      });
      ch->set_on_error([self = shared_from_this()](const char* reason) {
        DVEMIG_WARN("migd", "pid %u stripe channel: %s", self->stats_.pid.value,
                    reason);
        self->engine().schedule_after(SimTime::zero(),
                                      [self] { self->fail("malformed frame"); });
      });
      stripe_channels_.push_back(std::move(ch));
      chans.push_back(stripe_channels_.back().get());
    }
    stripes_ = std::make_unique<StripeSender>(std::move(chans), mig_id_,
                                              config_.stripe_chunk_bytes,
                                              config_.pipeline_depth);
    for (auto& [type, payload] : pending_frames_) stripes_->send(type, payload);
    pending_frames_.clear();
    if (on_stripes_ready_) std::exchange(on_stripes_ready_, nullptr)();
  }

  /// Route one logical frame to the destination: directly on the primary
  /// channel at degree 1, through the striped sender otherwise (queued until
  /// the stripe connections finish). `logical_sent_` counts the frame exactly
  /// as FrameChannel would (payload + 5 framing bytes), so byte statistics are
  /// identical at every parallelism degree. Returns the payload buffer once
  /// the transport has copied it out, so hot paths can recycle the allocation
  /// (empty when the frame had to be queued, which consumes the buffer).
  Buffer send_frame(MsgType type, Buffer payload) {
    logical_sent_ += payload.size() + 5;
    if (config_.parallelism > 1) {
      if (stripes_) {
        stripes_->send(type, payload);
        return payload;
      }
      pending_frames_.emplace_back(type, std::move(payload));
      return {};
    }
    channel_->send(type, payload);
    return payload;
  }
  void send_frame(MsgType type, BinaryWriter&& w) {
    (void)send_frame(type, w.take());
  }

  /// Slice variant for the chunked socket_state path: both transports copy
  /// out of the span synchronously, so chunks of the unified buffer go on the
  /// wire with no intermediate allocation. Only the queued case (stripes not
  /// yet connected) must own its bytes.
  void send_frame_span(MsgType type, std::span<const std::uint8_t> payload) {
    logical_sent_ += payload.size() + 5;
    if (config_.parallelism > 1) {
      if (stripes_) {
        stripes_->send(type, payload);
      } else {
        pending_frames_.emplace_back(type, Buffer(payload.begin(), payload.end()));
      }
      return;
    }
    channel_->send(type, payload);
  }

  /// Ship a finish()ed unified buffer as one socket_state frame per chunk and
  /// return the allocation for recycling. Single chunk: the whole buffer IS
  /// the frame — exactly the pre-chunking send.
  Buffer send_socket_chunks(SockStateChunks&& chunks) {
    const std::vector<std::size_t> starts = chunks.starts();
    Buffer whole = chunks.take();
    if (starts.size() == 1) {
      return send_frame(MsgType::socket_state, std::move(whole));
    }
    const std::span<const std::uint8_t> all(whole);
    for (std::size_t i = 0; i < starts.size(); ++i) {
      const std::size_t end = i + 1 < starts.size() ? starts[i + 1] : whole.size();
      send_frame_span(MsgType::socket_state, all.subspan(starts[i], end - starts[i]));
    }
    return whole;
  }

  void on_frame(MsgType type, BinaryReader& r) {
    // A finished session can still see frames already in flight (a duplicated
    // mig_abort, a straggling ack); they refer to a migration that no longer
    // exists.
    if (phase_ == Phase::done) return;
    switch (type) {
      case MsgType::capture_enabled:
        if (on_capture_enabled_) std::exchange(on_capture_enabled_, nullptr)();
        return;
      case MsgType::socket_ack:
        if (on_socket_ack_) std::exchange(on_socket_ack_, nullptr)();
        return;
      case MsgType::resume_done: {
        // The destination reports its resume instant on the shared simulated
        // timeline; the freeze span ends there, not at frame arrival.
        const auto t_resume = SimTime::nanoseconds(r.i64());
        stats_.captured = r.u64();
        stats_.reinjected = r.u64();
        tracer().end_at(span_freeze_, t_resume.ns);
        tracer().end_at(span_total_, t_resume.ns);
        finish(t_resume);
        return;
      }
      case MsgType::mig_abort:
        fail("aborted by destination");
        return;
      default:
        fail("unexpected frame");
        return;
    }
  }

  // ---------------- precopy ----------------

  void precopy_round() {
    span_round_ = tracer().begin(obs_track_, "mig.precopy_round");
    ckpt::MemoryDelta delta = mem_tracker_.round(proc_->mem());
    const auto pages = static_cast<std::int64_t>(delta.dirty_pages.size());
    SimDuration cost = SimTime::nanoseconds(pages * cm().page_copy_ns);

    // Incremental collective: track socket changes during precopy as well,
    // serialized straight into the unified socket_state buffer behind a
    // back-patched record-count prefix. The allocation is recycled across
    // rounds (sock_spare_), so steady-state rounds allocate nothing.
    SockStateChunks chunks(std::move(sock_spare_),
                           static_cast<std::size_t>(cm().socket_chunk_bytes));
    std::size_t scanned = 0;
    std::size_t sock_bytes = 0;
    if (stats_.strategy == SocketMigStrategy::incremental_collective) {
      for (const auto& [fd, file] : proc_->files().entries()) {
        if (file.kind != proc::FileKind::socket) continue;
        scanned += 1;
        if (file.socket->type() == stack::SocketType::tcp) {
          const auto& tcp = static_cast<const stack::TcpSocket&>(*file.socket);
          if (tcp_busy(tcp)) continue;  // leave for a later loop or the freeze
          if (sock_tracker_.emit_tcp(extract_tcp(tcp, fd), chunks.writer(),
                                     false) != SectionFlags::none) {
            chunks.record_emitted();
          }
        } else {
          const auto& udp = static_cast<const stack::UdpSocket&>(*file.socket);
          if (sock_tracker_.emit_udp(extract_udp(udp, fd), chunks.writer(),
                                     false) != SectionFlags::none) {
            chunks.record_emitted();
          }
        }
      }
      sock_bytes = chunks.record_bytes();
      cost += SimTime::nanoseconds(
          static_cast<std::int64_t>(scanned) * cm().socket_delta_check_ns +
          static_cast<std::int64_t>(static_cast<double>(sock_bytes) *
                                    cm().per_byte_subtract_ns));
    }

    // Degree > 1: the scan shards across the worker pool (elapsed = largest
    // shard) and feeds the serialize stage, which is charged explicitly (the
    // serial path folds it into page_copy_ns). The CPU meter still pays the
    // full serial totals — parallelism spreads work, it does not shrink it.
    SimDuration elapsed = cost;
    SimDuration cpu = cost;
    const int par = config_.parallelism;
    if (par > 1) {
      const auto workers = static_cast<std::size_t>(par);
      const auto page_shard = static_cast<std::int64_t>(
          ckpt::DirtyTracker::max_shard(delta.dirty_pages.size(), workers));
      const auto sock_shard = static_cast<std::int64_t>(
          ckpt::DirtyTracker::max_shard(scanned, workers));
      const double est_bytes =
          static_cast<double>(delta.dirty_pages.size()) *
              static_cast<double>(proc::kPageSize + 8) +
          static_cast<double>(sock_bytes);
      const auto serialize_total = SimTime::nanoseconds(
          static_cast<std::int64_t>(est_bytes * cm().per_byte_serialize_ns));
      const auto serialize_shard = SimTime::nanoseconds(static_cast<std::int64_t>(
          est_bytes * cm().per_byte_serialize_ns / static_cast<double>(par)));
      elapsed = SimTime::nanoseconds(
                    page_shard * cm().page_copy_ns +
                    sock_shard * cm().socket_delta_check_ns +
                    static_cast<std::int64_t>(
                        static_cast<double>(sock_bytes) *
                        cm().per_byte_subtract_ns / static_cast<double>(par))) +
                serialize_shard;
      cpu = cost + serialize_total;
      tracer().attr(span_round_, "shards", std::to_string(par));
    }

    const std::uint32_t sock_records = chunks.total_records();
    after_parallel(cpu, elapsed, [this, delta = std::move(delta),
                                  chunks = std::move(chunks),
                                  sock_records]() mutable {
      BinaryWriter w;
      delta.serialize(w);
      send_frame(MsgType::memory_delta, std::move(w));
      if (sock_records > 0) {
        chunks.finish();
        stats_.precopy_socket_bytes += chunks.wire_bytes();
        sock_spare_ = send_socket_chunks(std::move(chunks));
      } else {
        sock_spare_ = chunks.take();
      }
      sock_spare_.clear();  // keep only the capacity for the next round
      stats_.precopy_rounds += 1;
      tracer().attr(span_round_, "round", std::to_string(stats_.precopy_rounds));
      tracer().attr(span_round_, "dirty_pages",
                    std::to_string(delta.dirty_pages.size()));
      tracer().attr(span_round_, "socket_records", std::to_string(sock_records));
      DVEMIG_DEBUG("migd", "pid %u precopy round %d: %zu dirty pages, %u socket "
                   "records, next timeout %.1f ms",
                   stats_.pid.value, stats_.precopy_rounds,
                   delta.dirty_pages.size(), sock_records,
                   static_cast<double>(loop_timeout_ns_) / 1e6);

      const bool last = loop_timeout_ns_ <= cm().freeze_threshold_ns ||
                        stats_.precopy_rounds >= cm().max_precopy_rounds;
      const SimDuration wait = SimTime::nanoseconds(loop_timeout_ns_);
      loop_timeout_ns_ = static_cast<std::int64_t>(
          static_cast<double>(loop_timeout_ns_) * cm().loop_decay);
      // Pace the loop on transfer completion: the timeout window starts once
      // this round's data has actually reached the destination. Otherwise
      // successive rounds pile up in the channel's send queue and the freeze
      // phase's tiny control messages crawl out behind megabytes of pages.
      wait_for_drain([self = shared_from_this(), wait, last] {
        // The round span covers scan + serialize + the transfer itself: it
        // closes when this round's bytes have actually left the send queue.
        self->close_span(self->span_round_);
        self->engine().schedule_after(wait, [self, last] {
          if (last) {
            self->enter_freeze();
          } else {
            self->precopy_round();
          }
        });
      });
    });
  }

  void wait_for_drain(std::function<void()> fn) {
    if (config_.parallelism > 1) {
      // The striped sender owns every channel's drain callback; "drained"
      // means all queues flushed and all stripe sockets fully ACKed. Frames
      // may still be parked waiting for the stripe connections — then drain
      // completion is re-armed the moment the sender comes up.
      if (!stripes_) {
        on_stripes_ready_ = [self = shared_from_this(), fn = std::move(fn)]() mutable {
          self->stripes_->when_drained(std::move(fn));
        };
        return;
      }
      stripes_->when_drained(std::move(fn));
      return;
    }
    if (sock_->drained()) {
      fn();
      return;
    }
    sock_->set_on_drained([self = shared_from_this(), fn = std::move(fn)] {
      self->sock_->set_on_drained(nullptr);
      fn();
    });
  }

  // ---------------- freeze ----------------

  void enter_freeze() {
    DVEMIG_DEBUG("migd", "pid %u entering freeze at %.3f ms", stats_.pid.value,
                 engine().now().to_ms());
    close_span(span_precopy_);
    span_freeze_ = tracer().begin(obs_track_, "mig.freeze");
    phase_ = Phase::freeze;
    stats_.t_freeze_begin = engine().now();  // == the span's begin instant
    // Striped transfers count logical frame bytes (payload + framing) — the
    // same quantity FrameChannel::bytes_sent() measures at degree 1, summed
    // across channels and without the stripe segment headers, so the byte
    // statistics are comparable (and equal, by test) at every degree.
    stats_.precopy_channel_bytes =
        config_.parallelism > 1 ? logical_sent_ : channel_->bytes_sent();
    proc_->freeze();

    // Gather the fd-ordered socket list (BLCR's fd table iteration).
    sockets_.clear();
    for (const auto& [fd, file] : proc_->files().entries()) {
      if (file.kind != proc::FileKind::socket) continue;
      MigSocket ms;
      ms.fd = fd;
      ms.sock = file.socket;
      ms.in_cluster = ms.sock->local().addr == node_->local_addr();
      ms.orig_remote = ms.sock->remote();
      ms.effective_remote = ms.orig_remote;
      if (ms.sock->type() == stack::SocketType::tcp) {
        const auto& tcp = static_cast<const stack::TcpSocket&>(*ms.sock);
        ms.translatable = ms.in_cluster && tcp.cb().state != stack::TcpState::listen;
      } else {
        ms.translatable =
            ms.in_cluster && static_cast<const stack::UdpSocket&>(*ms.sock).cb().connected;
      }
      if (ms.translatable) {
        // Mutual-migration support: if the peer of this connection migrated
        // earlier, a local translation rule knows its current host; the new
        // filter, the capture specs and the restored socket must all target
        // that host, not the connection's original address.
        if (const auto rule = owner_->translation_.find_rule(ms.sock->local(),
                                                             ms.orig_remote)) {
          ms.effective_remote.addr = rule->mig_new_addr;
        }
      }
      sockets_.push_back(std::move(ms));
    }
    stats_.socket_count = sockets_.size();

    after(SimTime::nanoseconds(cm().signal_roundtrip_ns), [this] {
      if (stats_.strategy == SocketMigStrategy::iterative) {
        iter_idx_ = 0;
        iterative_next();
      } else {
        collective_capture();
      }
    });
  }

  std::vector<CaptureSpec> specs_for(const MigSocket& ms) const {
    std::vector<CaptureSpec> specs;
    if (ms.sock->type() == stack::SocketType::tcp) {
      specs = capture_specs_for_tcp(static_cast<const stack::TcpSocket&>(*ms.sock));
    } else {
      specs = {capture_spec_for_udp(static_cast<const stack::UdpSocket&>(*ms.sock))};
    }
    if (ms.effective_remote != ms.orig_remote) {
      for (CaptureSpec& spec : specs) {
        if (spec.match_remote && spec.remote == ms.orig_remote) {
          spec.remote = ms.effective_remote;
        }
      }
    }
    return specs;
  }

  void send_capture_request(const std::vector<CaptureSpec>& specs,
                            std::function<void()> then) {
    span_stage_ = tracer().begin(obs_track_, "mig.capture_arm");
    tracer().attr(span_stage_, "specs", std::to_string(specs.size()));
    BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(specs.size()));
    for (const CaptureSpec& s : specs) s.serialize(w);
    on_capture_enabled_ = [this, then = std::move(then)] {
      close_span(span_stage_);
      then();
    };
    send_frame(MsgType::capture_request, std::move(w));
  }

  /// In-cluster connections need a translation filter on the peer before the
  /// socket goes down (Section III-C ordering). The filter is installed on the
  /// peer's *current* host (effective remote), which may itself be the result
  /// of an earlier migration.
  void request_translations(const std::vector<const MigSocket*>& socks,
                            std::function<void()> then) {
    DVEMIG_ASSERT(pending_trans_ == 0);
    span_stage_ = tracer().begin(obs_track_, "mig.translate");
    on_trans_done_ = [this, then = std::move(then)] {
      close_span(span_stage_);
      then();
    };
    for (const MigSocket* ms : socks) {
      if (!ms->translatable) continue;
      TranslationRule rule;
      rule.proto = ms->sock->type() == stack::SocketType::tcp ? net::IpProto::tcp
                                                              : net::IpProto::udp;
      rule.peer_local = ms->effective_remote;
      rule.mig_old = ms->sock->local();
      rule.mig_new_addr = dest_;
      BinaryWriter w;
      const std::uint64_t req = ++next_trans_req_;
      w.u64(req);
      rule.serialize(w);
      pending_trans_ += 1;
      ctrl_->send_to(net::Endpoint{ms->effective_remote.addr, kTransdPort}, w.take());
    }
    if (pending_trans_ == 0 && on_trans_done_) {
      std::exchange(on_trans_done_, nullptr)();
    }
  }

  /// Disable the socket and, for peers that moved, retarget the socket's remote
  /// endpoint to the peer's current host before extraction.
  void disable_for_migration(const MigSocket& ms) {
    disable_socket(node_->stack(), *ms.sock);
    if (ms.effective_remote != ms.orig_remote) {
      if (ms.sock->type() == stack::SocketType::tcp) {
        static_cast<stack::TcpSocket&>(*ms.sock)
            .set_endpoints(ms.sock->local(), ms.effective_remote);
      } else {
        auto& udp = static_cast<stack::UdpSocket&>(*ms.sock);
        udp.set_endpoints(udp.local(), ms.effective_remote, udp.cb().bound,
                          udp.cb().connected);
      }
    }
  }

  void on_ctrl_readable() {
    while (auto dgram = ctrl_->recv()) {
      BinaryReader r(dgram->data);
      (void)r.u64();  // req id; acks are counted, not matched individually
      DVEMIG_ASSERT(pending_trans_ > 0);
      pending_trans_ -= 1;
      if (pending_trans_ == 0 && on_trans_done_) {
        std::exchange(on_trans_done_, nullptr)();
      }
    }
  }

  /// Emit one socket's record. `force_all` distinguishes full dumps (iterative,
  /// collective) from incremental deltas.
  std::uint32_t emit_socket(const MigSocket& ms, BinaryWriter& out, bool force_all) {
    if (ms.sock->type() == stack::SocketType::tcp) {
      const auto& tcp = static_cast<const stack::TcpSocket&>(*ms.sock);
      return sock_tracker_.emit_tcp(extract_tcp(tcp, ms.fd), out, force_all) !=
                     SectionFlags::none
                 ? 1
                 : 0;
    }
    const auto& udp = static_cast<const stack::UdpSocket&>(*ms.sock);
    return sock_tracker_.emit_udp(extract_udp(udp, ms.fd), out, force_all) !=
                   SectionFlags::none
               ? 1
               : 0;
  }

  // Iterative: capture / translate / disable / subtract / dump / ack, one socket
  // at a time — the repeated computation/transmission interleaving the paper
  // identifies as the bottleneck.
  void iterative_next() {
    if (iter_idx_ == sockets_.size()) {
      final_transfer();
      return;
    }
    const std::size_t idx = iter_idx_;
    send_capture_request(specs_for(sockets_[idx]), [this, idx] {
      request_translations({&sockets_[idx]}, [this, idx] {
        const MigSocket& ms = sockets_[idx];
        disable_for_migration(ms);
        span_stage_ = tracer().begin(obs_track_, "mig.subtract");
        BinaryWriter buf(std::move(sock_spare_));
        buf.clear();
        buf.u32(0);  // record count, back-patched below
        const std::uint32_t records = emit_socket(ms, buf, /*force_all=*/true);
        const SimDuration cost =
            cm().subtract_cost(1, buf.size() - sizeof(std::uint32_t));
        after(cost, [this, buf = std::move(buf), records]() mutable {
          close_span(span_stage_);
          buf.patch_u32(records, 0);
          stats_.freeze_socket_bytes += buf.size();
          on_socket_ack_ = [this] {
            iter_idx_ += 1;
            iterative_next();
          };
          sock_spare_ = send_frame(MsgType::socket_state, buf.take());
          sock_spare_.clear();
        });
      });
    });
  }

  // Collective (Section III-C three-phase): one capture request for everything,
  // one unified state buffer, one transfer.
  void collective_capture() {
    std::vector<CaptureSpec> all;
    for (const MigSocket& ms : sockets_) {
      for (CaptureSpec& s : specs_for(ms)) all.push_back(s);
    }
    DVEMIG_DEBUG("migd", "pid %u collective capture: %zu specs for %zu sockets",
                 stats_.pid.value, all.size(), sockets_.size());
    send_capture_request(all, [this] {
      std::vector<const MigSocket*> socks;
      for (const MigSocket& ms : sockets_) socks.push_back(&ms);
      DVEMIG_DEBUG("migd", "pid %u capture enabled; requesting translations",
                   stats_.pid.value);
      request_translations(socks, [this] { collective_subtract(); });
    });
  }

  void collective_subtract() {
    span_stage_ = tracer().begin(obs_track_, "mig.subtract");
    for (const MigSocket& ms : sockets_) disable_for_migration(ms);

    const bool force = stats_.strategy == SocketMigStrategy::collective;
    // The unified transfer buffer — the paper's "one buffer, one transfer"
    // collective design, literally: every socket serializes straight into it
    // (no per-socket intermediates), behind a record-count prefix that is
    // back-patched before send. The allocation is recycled from the precopy
    // rounds, and full dumps pre-reserve so a 10^5-socket freeze never
    // reallocates mid-serialization.
    SockStateChunks chunks(std::move(sock_spare_),
                           static_cast<std::size_t>(cm().socket_chunk_bytes));
    if (force) {
      chunks.reserve(sizeof(std::uint32_t) +
                     sockets_.size() * kFullDumpReserveBytes);
    }
    std::uint32_t records = 0;
    // Per-socket record sizes, kept so the parallel path can price each
    // worker's batch. The emit itself stays serial in fd order — the unified
    // buffer is byte-identical at every degree; workers merely partition it.
    std::vector<std::size_t> record_bytes;
    record_bytes.reserve(sockets_.size());
    for (const MigSocket& ms : sockets_) {
      const std::size_t before = chunks.writer().size();
      const std::uint32_t emitted = emit_socket(ms, chunks.writer(), force);
      record_bytes.push_back(chunks.writer().size() - before);
      records += emitted;
      if (emitted > 0) chunks.record_emitted();
    }
    const std::size_t subtract_bytes = chunks.record_bytes();

    const auto batch_cost = [&](std::size_t n_socks, std::size_t n_bytes) {
      // Incremental tracking already paid the per-socket walk during precopy;
      // the freeze-phase check is a cheap hash compare per socket.
      return force ? cm().subtract_cost(n_socks, n_bytes)
                   : SimTime::nanoseconds(
                         static_cast<std::int64_t>(n_socks) *
                             cm().socket_delta_check_ns +
                         static_cast<std::int64_t>(static_cast<double>(n_bytes) *
                                                   cm().per_byte_subtract_ns));
    };
    const SimDuration cost = batch_cost(sockets_.size(), subtract_bytes);
    SimDuration elapsed = cost;
    if (config_.parallelism > 1) {
      // Workers subtract contiguous fd-order batches; the merge into the
      // unified buffer preserves that order. Elapsed = slowest batch.
      elapsed = SimTime::zero();
      for (const auto& shard : ckpt::DirtyTracker::shard_ranges(
               sockets_.size(), static_cast<std::size_t>(config_.parallelism))) {
        std::size_t shard_bytes = 0;
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          shard_bytes += record_bytes[i];
        }
        elapsed = std::max(elapsed, batch_cost(shard.size(), shard_bytes));
      }
      tracer().attr(span_stage_, "shards", std::to_string(config_.parallelism));
    }
    DVEMIG_DEBUG("migd", "pid %u subtract: %u records, %zu bytes", stats_.pid.value,
                 records, subtract_bytes);
    tracer().attr(span_stage_, "records", std::to_string(records));
    tracer().attr(span_stage_, "bytes", std::to_string(subtract_bytes));
    after_parallel(cost, elapsed,
                   [this, chunks = std::move(chunks), records]() mutable {
      close_span(span_stage_);
      if (records > 0) {
        chunks.finish();
        stats_.freeze_socket_bytes += chunks.wire_bytes();
        sock_spare_ = send_socket_chunks(std::move(chunks));
      } else {
        sock_spare_ = chunks.take();
      }
      sock_spare_.clear();
      final_transfer();
    });
  }

  // Final incremental memory step + BLCR's regular fd-table iteration (process
  // metadata, excluding the already-processed network connections).
  void final_transfer() {
    span_stage_ = tracer().begin(obs_track_, "mig.final_transfer");
    ckpt::MemoryDelta delta = mem_tracker_.round(proc_->mem());
    tracer().attr(span_stage_, "dirty_pages",
                  std::to_string(delta.dirty_pages.size()));
    const SimDuration cost = SimTime::nanoseconds(
        static_cast<std::int64_t>(delta.dirty_pages.size()) * cm().page_copy_ns +
        cm().process_meta_ns);
    SimDuration elapsed = cost;
    SimDuration cpu = cost;
    if (config_.parallelism > 1) {
      const auto workers = static_cast<std::size_t>(config_.parallelism);
      const auto page_shard = static_cast<std::int64_t>(
          ckpt::DirtyTracker::max_shard(delta.dirty_pages.size(), workers));
      const double est_bytes = static_cast<double>(delta.dirty_pages.size()) *
                               static_cast<double>(proc::kPageSize + 8);
      const auto serialize_total = SimTime::nanoseconds(
          static_cast<std::int64_t>(est_bytes * cm().per_byte_serialize_ns));
      elapsed = SimTime::nanoseconds(
          page_shard * cm().page_copy_ns + cm().process_meta_ns +
          static_cast<std::int64_t>(est_bytes * cm().per_byte_serialize_ns /
                                    static_cast<double>(config_.parallelism)));
      cpu = cost + serialize_total;
      tracer().attr(span_stage_, "shards", std::to_string(config_.parallelism));
    }
    after_parallel(cpu, elapsed, [this, delta = std::move(delta)]() mutable {
      close_span(span_stage_);
      BinaryWriter wm;
      delta.serialize(wm);
      send_frame(MsgType::memory_delta, std::move(wm));

      const ckpt::ProcessImage img = ckpt::snapshot_process(*proc_);
      BinaryWriter wi;
      img.serialize(wi);
      send_frame(MsgType::process_image, std::move(wi));
      // Now await resume_done.
    });
  }

  void finish(SimTime t_resume) {
    stats_.freeze_channel_bytes =
        (config_.parallelism > 1 ? logical_sent_ : channel_->bytes_sent()) -
        stats_.precopy_channel_bytes;
    stats_.success = true;

    // The stats' freeze window is *derived from the span tree*: the span is
    // the source of truth, so trace JSON and MigrationStats can never drift
    // apart. (Fallback to the frame-carried value if the ring already evicted
    // the span — possible only with a tiny tracer capacity.)
    if (const obs::Span* fz = tracer().find(span_freeze_)) {
      stats_.t_freeze_begin = SimTime::nanoseconds(fz->t_begin_ns);
      stats_.t_resume = SimTime::nanoseconds(fz->t_end_ns);
    } else {
      stats_.t_resume = t_resume;
    }
    span_freeze_ = 0;
    span_total_ = 0;
    phase_ = Phase::done;

    auto& m = MigMetrics::get();
    m.completed.add(1);
    m.freeze_bytes.add(stats_.freeze_channel_bytes);
    m.precopy_bytes.add(stats_.precopy_channel_bytes);
    if (stripes_) {
      m.stripe_segments.add(stripes_->segments_sent());
      m.stripe_bytes.add(stripes_->segment_bytes());
    }
    m.freeze_time_us.record(static_cast<double>(stats_.freeze_time().ns) / 1e3);
    m.total_time_us.record(static_cast<double>(stats_.total_time().ns) / 1e3);
    m.precopy_rounds.record(stats_.precopy_rounds);
    // Rules that translated for the just-migrated sockets are now dead weight on
    // this node (their subject no longer lives here): drop them.
    for (const MigSocket& ms : sockets_) {
      if (ms.translatable) {
        owner_->translation_.remove_matching(ms.sock->local(), ms.orig_remote);
      }
    }
    node_->kill(stats_.pid);
    for (auto& s : stripe_socks_) s->close();
    sock_->close();
    ctrl_->close();
    detach_later();
    owner_->source_finished(stats_);
  }

  Migd* owner_;
  proc::Node* node_;
  std::shared_ptr<proc::Process> proc_;
  net::Ipv4Addr dest_;
  MigrationStats stats_;
  MigrationConfig config_;

  stack::TcpSocket::Ptr sock_;
  std::unique_ptr<FrameChannel> channel_;
  std::shared_ptr<stack::UdpSocket> ctrl_;
  sim::TimerHandle connect_timer_;
  sim::TimerHandle watchdog_;

  // Striped transfer (parallelism > 1). The sender is declared after the
  // channels it references so destruction detaches it first.
  std::uint64_t mig_id_{0};
  std::vector<stack::TcpSocket::Ptr> stripe_socks_;
  std::vector<std::unique_ptr<FrameChannel>> stripe_channels_;
  std::unique_ptr<StripeSender> stripes_;
  std::vector<std::pair<MsgType, Buffer>> pending_frames_;  // pre-stripe-connect
  std::function<void()> on_stripes_ready_;
  int stripes_connected_{0};
  std::uint64_t logical_sent_{0};  // logical frame bytes incl. framing
  obs::SpanId span_stripe_connect_{0};

  ckpt::DirtyTracker mem_tracker_;
  SocketDeltaTracker sock_tracker_;
  // Recycled allocation for the unified socket_state buffer: each precopy
  // round / freeze dump takes it, serializes in place, and puts the (cleared)
  // storage back once the transport has copied the frame out.
  Buffer sock_spare_;
  std::int64_t loop_timeout_ns_{0};

  std::vector<MigSocket> sockets_;
  std::size_t iter_idx_{0};
  int pending_trans_{0};
  std::uint64_t next_trans_req_{0};

  std::function<void()> on_capture_enabled_;
  std::function<void()> on_socket_ack_;
  std::function<void()> on_trans_done_;

  Phase phase_{Phase::idle};
  std::uint32_t obs_track_{0};
  obs::SpanId span_total_{0};
  obs::SpanId span_precopy_{0};
  obs::SpanId span_round_{0};
  obs::SpanId span_freeze_{0};
  obs::SpanId span_stage_{0};  // current freeze stage (capture/translate/...)
};

// -------------------------------------------------------------- DestSession

class Migd::DestSession : public std::enable_shared_from_this<Migd::DestSession> {
 public:
  DestSession(Migd& owner, stack::TcpSocket::Ptr conn)
      : owner_(&owner), node_(&owner.node()), sock_(std::move(conn)) {}

  void begin() {
    channel_ = std::make_unique<FrameChannel>(sock_);
    channel_->set_on_frame(
        [self = shared_from_this()](MsgType t, BinaryReader& r) {
          self->on_frame(t, r);
        });
    // Malformed inbound frames: tell the source the migration is dead (mig_abort
    // is still sendable — only the receive side is poisoned), drop any armed
    // capture filters, and retire this session.
    channel_->set_on_error([self = shared_from_this()](const char* reason) {
      self->teardown(reason, /*notify_peer=*/true);
    });
    // A source that dies mid-migration (crash = RST, plain close = FIN before
    // resume_done) must not strand this session: armed capture filters would
    // keep stealing the process's packets with nobody left to reinject them.
    sock_->set_on_reset([self = shared_from_this()] {
      self->teardown("source connection reset", /*notify_peer=*/false);
    });
    sock_->set_on_peer_closed([self = shared_from_this()] {
      self->teardown("source closed before restore", /*notify_peer=*/false);
    });
  }

  /// Same cycle breaker as SourceSession::detach_callbacks(): the channel
  /// handlers and on_peer_closed capture shared_from_this(); a released
  /// session would otherwise pin itself (and the restored process image) in
  /// memory. Must not run inside one of those callbacks.
  void detach_callbacks() {
    if (channel_) {
      channel_->set_on_frame(nullptr);
      channel_->set_on_error(nullptr);
    }
    if (sock_) {
      sock_->set_on_peer_closed(nullptr);
      sock_->set_on_reset(nullptr);
    }
  }

 private:
  struct MigSocket {
    Fd fd;
    std::shared_ptr<stack::Socket> sock;
    bool in_cluster{false};       // local addr is this node's cluster address
    bool translatable{false};     // connected in-cluster socket needing a filter
    net::Endpoint orig_remote{};  // remote endpoint as stored in the socket
    net::Endpoint effective_remote{};  // where the peer actually lives now
  };

  sim::Engine& engine() const { return node_->engine(); }
  const CostModel& cm() const { return owner_->cm_; }

  void after(SimDuration d, std::function<void()> fn) {
    after_parallel(d, d, std::move(fn));
  }

  /// See SourceSession::after_parallel: serial CPU charge, parallel makespan.
  void after_parallel(SimDuration cpu, SimDuration elapsed, std::function<void()> fn) {
    node_->cpu().account(kKernelPid, cpu);
    engine().schedule_after(elapsed,
                            [self = shared_from_this(), fn = std::move(fn)] {
                              (void)self;
                              fn();
                            });
  }

  /// Common failure teardown: drop armed capture filters, optionally tell the
  /// peer, close and retire the session. Idempotent — the abort, reset and
  /// peer-closed paths can all fire for the same dead migration. The release
  /// is deferred one event because this runs inside channel/socket callbacks.
  void teardown(const char* why, bool notify_peer) {
    if (tearing_down_) return;
    if (is_feeder_) {
      // A stripe feeder owns no capture session or staged state; retire
      // quietly. But a feeder dying mid-migration (channel error, reset) dooms
      // the main session's transfer — propagate before retiring. After the
      // main session resumed (or already died) this is the normal close path.
      tearing_down_ = true;
      DVEMIG_DEBUG("migd", "stripe feeder %u on %s retired: %s",
                   static_cast<unsigned>(stripe_index_), node_->name().c_str(),
                   why);
      if (auto main = owner_->find_dest_main(mig_id_)) {
        main->teardown("stripe channel lost", notify_peer);
      }
      engine().schedule_after(SimTime::zero(), [self = shared_from_this()] {
        self->sock_->close();
        self->detach_callbacks();
        self->owner_->release_dest_session(self.get());
      });
      return;
    }
    if (resumed_) {
      // The migration is already committed on this side — the process is
      // adopted and running, captured packets reinjected. A channel error now
      // (source crash after resume_done, or this daemon's own send failing)
      // only means the graceful peer-closed handshake will never happen, so
      // retire the session quietly instead of aborting anything.
      tearing_down_ = true;
      engine().schedule_after(SimTime::zero(), [self = shared_from_this()] {
        self->sock_->close();
        self->detach_callbacks();
        self->owner_->release_dest_session(self.get());
      });
      return;
    }
    tearing_down_ = true;
    DVEMIG_WARN("migd", "dest session on %s torn down: %s",
                node_->name().c_str(), why);
    if (notify_peer && (sock_->state() == stack::TcpState::established ||
                        sock_->state() == stack::TcpState::close_wait)) {
      channel_->send(MsgType::mig_abort, Buffer{});
    }
    engine().schedule_after(SimTime::zero(), [self = shared_from_this()] {
      self->owner_->capture_.abort_session(self->capture_session_);
      self->sock_->close();
      self->detach_callbacks();
      self->owner_->release_dest_session(self.get());
    });
  }

  void on_frame(MsgType type, BinaryReader& r) {
    // A retired (or retiring) session can still see frames already in flight;
    // they belong to a migration that no longer exists.
    if (tearing_down_ || resumed_) return;
    if (is_feeder_) return on_feeder_frame(type, r);
    if (type == MsgType::stripe_hello) {
      // A stripe channel's opening frame turns this session into a feeder: it
      // owns no migration state and forwards segments to the main session.
      if (begun_) {
        teardown("stripe_hello on main channel", /*notify_peer=*/true);
        return;
      }
      if (r.remaining() < 9) {
        teardown("malformed stripe_hello", /*notify_peer=*/true);
        return;
      }
      mig_id_ = r.u64();
      stripe_index_ = r.u8();
      is_feeder_ = true;
      return;
    }
    if (type == MsgType::stripe_seg) {
      on_stripe_segment(r);
      return;
    }
    on_logical_frame(type, r);
  }

  /// Segments from any channel of this migration (the primary's arrive via
  /// on_frame, the feeders' are forwarded) meet in the reassembler.
  void on_stripe_segment(BinaryReader& r) {
    if (tearing_down_ || resumed_) return;
    if (!begun_ || !reasm_) {
      teardown("unexpected stripe segment", /*notify_peer=*/true);
      return;
    }
    reasm_->on_segment(r);
  }

  void on_feeder_frame(MsgType type, BinaryReader& r) {
    if (type != MsgType::stripe_seg) {
      teardown("unexpected frame on stripe channel", /*notify_peer=*/false);
      return;
    }
    auto main = owner_->find_dest_main(mig_id_);
    if (!main) {
      if (attached_once_) return;  // the migration already ended; late noise
      // Segments racing ahead of the primary channel's mig_begin (possible
      // under reordered delivery) park here until the main session appears.
      if (parked_segments_.size() >= kMaxParkedSegments) {
        teardown("stripe segment backlog before mig_begin", /*notify_peer=*/false);
        return;
      }
      const auto rest = r.span(r.remaining());
      parked_segments_.emplace_back(rest.begin(), rest.end());
      return;
    }
    attached_once_ = true;
    main->on_stripe_segment(r);
  }

  /// Replay segments parked before the main session's mig_begin arrived.
  void drain_parked(DestSession& main) {
    for (const Buffer& seg : parked_segments_) {
      BinaryReader r({seg.data(), seg.size()});
      main.on_stripe_segment(r);
      if (main.tearing_down_) break;
    }
    parked_segments_.clear();
  }

  void on_logical_frame(MsgType type, BinaryReader& r) {
    if (tearing_down_ || resumed_) return;
    switch (type) {
      case MsgType::mig_begin: {
        if (begun_) {
          // A duplicated mig_begin must not re-arm: begin_session() again
          // would orphan the first capture session and every spec in it.
          teardown("duplicate mig_begin", /*notify_peer=*/true);
          return;
        }
        begun_ = true;
        pid_ = Pid{r.u32()};
        name_ = r.str();
        strategy_ = static_cast<SocketMigStrategy>(r.u8());
        src_local_.value = r.u32();
        if (r.remaining() >= 9) {
          mig_id_ = r.u64();
          stripe_count_ = std::max<int>(1, r.u8());
        }
        // The capture session must exist before any parked stripe segment is
        // replayed below — a parked capture_request would otherwise arm
        // against session 0.
        capture_session_ = owner_->capture_.begin_session();
        if (stripe_count_ > 1) {
          reasm_ = std::make_unique<StripeReassembler>(
              [this](MsgType t, BinaryReader& rr) {
                if (tearing_down_ || resumed_) return;
                // Re-report the reassembled logical frame so the protocol
                // checker sees the same inbound stream as at degree 1.
                FrameChannel::notify_frame(*channel_, /*outbound=*/false, t,
                                           rr.remaining());
                on_logical_frame(t, rr);
              },
              [this](const char* reason) {
                teardown(reason, /*notify_peer=*/true);
              });
          // Stripe channels may have connected (and parked segments) before
          // this mig_begin crossed the primary channel.
          owner_->for_each_feeder(mig_id_, [this](DestSession& feeder) {
            feeder.attached_once_ = true;
            feeder.drain_parked(*this);
          });
        }
        return;
      }
      case MsgType::capture_request: {
        if (!begun_) {
          teardown("capture_request before mig_begin", /*notify_peer=*/true);
          return;
        }
        const std::uint32_t n = r.u32();
        DVEMIG_EXPECTS(n <= r.remaining());  // each spec consumes >= 1 byte
        std::vector<CaptureSpec> specs;
        specs.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          specs.push_back(CaptureSpec::deserialize(r));
        }
        DVEMIG_DEBUG("migd", "pid %u dest: capture_request with %u specs", pid_.value, n);
        after(SimTime::nanoseconds(static_cast<std::int64_t>(n) *
                                   cm().capture_install_ns),
              [this, specs = std::move(specs)] {
                // An abort can land while the filters are being installed;
                // arming against the already-dropped session would crash.
                if (tearing_down_) return;
                if (mutation() != ProtocolMutation::skip_capture_arm) {
                  for (const CaptureSpec& s : specs) {
                    owner_->capture_.add_spec(capture_session_, s);
                  }
                }
                channel_->send(MsgType::capture_enabled, Buffer{});
              });
        return;
      }
      case MsgType::socket_state: {
        if (!begun_) {
          teardown("socket_state before mig_begin", /*notify_peer=*/true);
          return;
        }
        socket_bytes_ += r.remaining() + 1;
        const std::uint32_t n = r.u32();
        (void)n;
        while (!r.at_end()) read_socket_record(r, staging_);
        BinaryWriter w;
        w.u32(n);
        channel_->send(MsgType::socket_ack, std::move(w));
        return;
      }
      case MsgType::memory_delta: {
        if (!begun_) {
          teardown("memory_delta before mig_begin", /*notify_peer=*/true);
          return;
        }
        memory_bytes_ += r.remaining() + 1;
        const ckpt::MemoryDelta delta = ckpt::MemoryDelta::deserialize(r);
        pages_received_ += delta.dirty_pages.size();
        return;
      }
      case MsgType::process_image: {
        if (!begun_ || restore_pending_) {
          teardown(restore_pending_ ? "duplicate process_image"
                                    : "process_image before mig_begin",
                   /*notify_peer=*/true);
          return;
        }
        restore_pending_ = true;
        img_ = ckpt::ProcessImage::deserialize(r);
        span_restore_ = tracer().begin(
            tracer().track(node_->name() + "/migd.dst"), "mig.restore");
        tracer().attr(span_restore_, "pid", std::to_string(img_.pid.value));
        const SimDuration cost =
            SimTime::nanoseconds(cm().restore_meta_ns) +
            cm().restore_cost(staging_.size(), socket_bytes_);
        SimDuration elapsed = cost;
        if (stripe_count_ > 1) {
          // Restore workers mirror the source's pool: socket reconstruction
          // shards across stripe_count_ workers, metadata stays serial.
          const auto workers = static_cast<std::size_t>(stripe_count_);
          elapsed = SimTime::nanoseconds(cm().restore_meta_ns) +
                    cm().restore_cost(
                        ckpt::DirtyTracker::max_shard(staging_.size(), workers),
                        ckpt::DirtyTracker::max_shard(
                            static_cast<std::size_t>(socket_bytes_), workers));
          tracer().attr(span_restore_, "shards", std::to_string(stripe_count_));
        }
        after_parallel(cost, elapsed, [this] { do_restore(); });
        return;
      }
      case MsgType::mig_abort:
        // Not just the capture session: the socket, the channel and the
        // session object itself are dead weight after an abort.
        teardown("aborted by source", /*notify_peer=*/false);
        return;
      default:
        teardown("unexpected frame", /*notify_peer=*/true);
        return;
    }
  }

  void do_restore() {
    // The session can be torn down (abort, source crash) while the restore
    // cost was being paid; restoring from a dropped capture session would
    // resurrect a migration both sides consider dead.
    if (tearing_down_) return;
    DVEMIG_DEBUG("migd", "pid %u restore on %s: %zu staged sockets, %llu socket "
                 "bytes, %llu pages",
                 img_.pid.value, node_->name().c_str(), staging_.size(),
                 static_cast<unsigned long long>(socket_bytes_),
                 static_cast<unsigned long long>(pages_received_));
    auto proc = ckpt::restore_process(*node_, img_);

    RestoreContext ctx;
    ctx.stack = &node_->stack();
    ctx.src_node_local_addr = src_local_;
    ctx.dst_node_local_addr = node_->local_addr();
    ctx.src_jiffies_at_ckpt = img_.src_jiffies;
    ctx.src_local_now_at_ckpt_ns = img_.src_local_now_ns;
    ctx.adjust_timestamps = owner_->adjust_timestamps_;

    // Reattach sockets at their original fds, in fd order. Validate the whole
    // staging set *before* touching the stack: a lost socket_state frame can
    // leave the image referencing sockets that never arrived (found by
    // dvemig-mc's drop-fault exploration), and noticing that halfway through
    // would leave freshly-rehashed sockets behind on an aborted restore.
    std::unordered_map<Fd, const StagedSocket*> by_fd;
    for (const auto& [key, staged] : staging_) {
      if (!staged.complete()) {
        teardown("incomplete staged socket record", /*notify_peer=*/true);
        return;
      }
      by_fd[staged.proto == net::IpProto::tcp ? staged.tcp.fd : staged.udp.fd] =
          &staged;
    }
    for (const Fd fd : img_.socket_fds) {
      if (by_fd.find(fd) == by_fd.end()) {
        teardown("process image references a socket that was never staged",
                 /*notify_peer=*/true);
        return;
      }
    }
    for (const Fd fd : img_.socket_fds) {
      const StagedSocket& staged = *by_fd.find(fd)->second;
      if (staged.proto == net::IpProto::tcp) {
        proc->files().attach_socket_at(fd, restore_tcp(staged.tcp, ctx));
      } else {
        proc->files().attach_socket_at(fd, restore_udp(staged.udp, ctx));
      }
    }

    node_->adopt(proc);
    proc->resume();

    // Reinjection after the sockets are rehashed (Section V-B).
    const std::size_t captured = owner_->capture_.queued(capture_session_);
    const std::size_t reinjected = owner_->capture_.finish_session(capture_session_);

    tracer().attr(span_restore_, "sockets", std::to_string(staging_.size()));
    tracer().attr(span_restore_, "reinjected", std::to_string(reinjected));
    tracer().end(span_restore_);
    span_restore_ = 0;
    MigMetrics::get().restores.add(1);
    resumed_ = true;

    BinaryWriter w;
    w.i64(engine().now().ns);
    w.u64(captured);
    w.u64(reinjected);
    const Buffer done_payload = w.take();
    channel_->send(MsgType::resume_done, done_payload);
    if (mutation() == ProtocolMutation::double_resume_done) {
      channel_->send(MsgType::resume_done, done_payload);
    }

    // Let the peer close first; drop our reference afterwards. The detach is
    // deferred one event because this handler is itself one of the callbacks
    // detach_callbacks() clears.
    sock_->set_on_peer_closed([self = shared_from_this()] {
      if (self->tearing_down_) return;
      self->tearing_down_ = true;
      self->sock_->close();
      self->engine().schedule_after(SimTime::zero(), [self] {
        self->detach_callbacks();
        self->owner_->release_dest_session(self.get());
      });
    });
  }

  Migd* owner_;
  proc::Node* node_;
  stack::TcpSocket::Ptr sock_;
  std::unique_ptr<FrameChannel> channel_;

  Pid pid_{};
  std::string name_;
  SocketMigStrategy strategy_{};
  net::Ipv4Addr src_local_{};
  std::uint64_t capture_session_{0};
  bool begun_{false};           // mig_begin received
  bool restore_pending_{false};  // process_image received, restore scheduled
  bool resumed_{false};          // restore complete, resume_done sent
  bool tearing_down_{false};     // failure teardown scheduled

  SocketStaging staging_;
  std::uint64_t socket_bytes_{0};
  std::uint64_t memory_bytes_{0};
  std::uint64_t pages_received_{0};
  ckpt::ProcessImage img_;
  obs::SpanId span_restore_{0};

  // --- striped transfer (parallelism > 1 on the source) ---
  std::uint64_t mig_id_{0};      // cluster-unique id binding stripes to a main
  int stripe_count_{1};          // source parallelism announced in mig_begin
  bool is_feeder_{false};        // this session is a secondary stripe channel
  std::uint8_t stripe_index_{0};
  bool attached_once_{false};    // feeder: segments flushed into the main once
  std::vector<Buffer> parked_segments_;  // feeder: segments before the main exists
  std::unique_ptr<StripeReassembler> reasm_;  // main: in-order frame reassembly
  static constexpr std::size_t kMaxParkedSegments = 4096;

  friend class Migd;
};

// ==================================================================== Migd

Migd::Migd(proc::Node& node, CostModel cm)
    : node_(&node),
      cm_(cm),
      capture_(node.stack()),
      translation_(node.stack()),
      transd_(node, translation_, cm) {}

Migd::~Migd() {
  // Sessions still parked here (a dest that saw mig_abort, or anything
  // mid-flight when the node goes down) hold themselves alive through their
  // shared_from_this() callback captures; break the cycles so dropping the
  // shared_ptrs below actually reclaims them.
  if (src_session_) src_session_->detach_callbacks();
  for (const auto& s : dst_sessions_) s->detach_callbacks();
}

void Migd::start() {
  transd_.start();
  listener_ = node_->stack().make_tcp();
  listener_->bind(node_->local_addr(), kMigdPort);
  listener_->listen(16);
  listener_->set_on_accept_ready([this] { on_accept_ready(); });
}

void Migd::on_accept_ready() {
  while (auto conn = listener_->accept()) {
    auto session = std::make_shared<DestSession>(*this, std::move(conn));
    dst_sessions_.push_back(session);
    session->begin();
  }
}

void Migd::release_dest_session(DestSession* session) {
  std::erase_if(dst_sessions_,
                [session](const auto& s) { return s.get() == session; });
}

std::shared_ptr<Migd::DestSession> Migd::find_dest_main(std::uint64_t mig_id) {
  if (mig_id == 0) return nullptr;
  for (const auto& s : dst_sessions_) {
    if (!s->is_feeder_ && s->begun_ && s->mig_id_ == mig_id &&
        !s->tearing_down_) {
      return s;
    }
  }
  return nullptr;
}

void Migd::for_each_feeder(std::uint64_t mig_id,
                           const std::function<void(DestSession&)>& fn) {
  if (mig_id == 0) return;
  // Copy first: fn may mutate dst_sessions_ (e.g. by tearing a feeder down).
  std::vector<std::shared_ptr<DestSession>> feeders;
  for (const auto& s : dst_sessions_) {
    if (s->is_feeder_ && s->mig_id_ == mig_id && !s->tearing_down_) {
      feeders.push_back(s);
    }
  }
  for (const auto& f : feeders) fn(*f);
}

bool Migd::migrate(Pid pid, net::Ipv4Addr dest_local, SocketMigStrategy strategy,
                   DoneFn done) {
  return migrate(pid, dest_local, MigrateOptions{strategy, true}, std::move(done));
}

bool Migd::migrate(Pid pid, net::Ipv4Addr dest_local, MigrateOptions options,
                   DoneFn done) {
  if (src_session_ != nullptr) return false;
  auto proc = node_->find(pid);
  DVEMIG_EXPECTS(proc != nullptr);
  done_ = std::move(done);
  src_session_ = std::make_shared<SourceSession>(*this, std::move(proc), dest_local,
                                                 options);
  src_session_->begin();
  return true;
}

void Migd::source_finished(const MigrationStats& stats) {
  src_session_.reset();
  if (done_) std::exchange(done_, nullptr)(stats);
}

int Migd::src_phase() const {
  return src_session_ ? static_cast<int>(src_session_->phase()) : -1;
}

}  // namespace dvemig::mig
