// Test-only protocol mutation hook.
//
// The mutation self-test (tests/test_mc.cpp, ISSUE 3) needs to prove that the
// model checker / verifier actually *detects* protocol bugs, not merely that a
// clean tree passes. Each enumerator below arms one deliberate, historically
// plausible bug on a production code path; with `none` (the default, and the
// only value production code ever sees) every gated branch is dead and the
// binary behaves identically to a tree without this header.
//
// Keep mutations cheap to audit: one `if (mutation() == ...)` at the exact
// line the bug would live on, nothing else.
#pragma once

#include <cstdint>

namespace dvemig::mig {

enum class ProtocolMutation : std::uint8_t {
  none = 0,
  /// capture.cpp: skip the TCP sequence-number dedup — a duplicated client
  /// packet during the freeze is queued (and later reinjected) twice.
  skip_capture_dedup,
  /// socket_image.cpp: restore a UDP socket without re-inserting it into
  /// bhash — the bound flag says hashed, the table disagrees (dangling flag).
  skip_restore_rehash,
  /// migd.cpp: the destination sends resume_done twice (a retry with no
  /// dedup guard on the sender).
  double_resume_done,
  /// migd.cpp: the destination acks capture_request without actually arming
  /// the filters — packets arriving during the freeze are silently lost.
  skip_capture_arm,
  /// socket_image.cpp: UDP image restore swaps local and remote endpoints
  /// (a transposed serializer-field pair on the read side).
  swap_image_endpoints,
};

inline ProtocolMutation& mutation_ref() {
  static ProtocolMutation m = ProtocolMutation::none;
  return m;
}
inline ProtocolMutation mutation() { return mutation_ref(); }
inline void set_mutation(ProtocolMutation m) { mutation_ref() = m; }

}  // namespace dvemig::mig
