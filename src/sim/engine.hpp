// Discrete-event simulation engine.
//
// One global event queue ordered by (time, sequence number). The sequence number makes
// same-timestamp ordering deterministic: two runs with the same seed schedule and fire
// events identically, which the experiment harnesses rely on.
//
// Everything in the simulated cluster — links, TCP timers, zone-server ticks, conductor
// heartbeats — is an event. The engine is intentionally single-threaded; parallelising a
// DES would trade reproducibility for speed the experiments do not need.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/types.hpp"

namespace dvemig::obs {
class Counter;
class Gauge;
}  // namespace dvemig::obs

namespace dvemig::sim {

using EventFn = std::function<void()>;

/// Cancellable handle to a scheduled event. Cancellation is lazy: the queue entry
/// stays but is skipped on pop. This is how the TCP retransmission timer is
/// "cleared" during socket migration.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancel the pending event. Safe to call repeatedly or on an empty handle.
  void cancel() {
    if (alive_) *alive_ = false;
    alive_.reset();
  }

  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit TimerHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Engine {
 public:
  /// Construction publishes this engine as the thread-local SimClock provider
  /// (the logger's time prefix and the span tracer read it); destruction
  /// retracts it. With several engines alive, the newest one owns the clock.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when` (must not be in the past).
  TimerHandle schedule_at(SimTime when, EventFn fn) {
    // Under a choice hook, now() can warp ahead of times computed from state
    // captured before the reordering (e.g. a link's busy-until); those events
    // are simply due immediately.
    if (choice_ && when < now_) when = now_;
    DVEMIG_EXPECTS(when >= now_);
    auto alive = std::make_shared<bool>(true);
    queue_.push(Event{when, next_seq_++, alive, std::move(fn)});
    return TimerHandle{alive};
  }

  /// Schedule `fn` to run `delay` after the current time.
  TimerHandle schedule_after(SimDuration delay, EventFn fn) {
    DVEMIG_EXPECTS(delay.ns >= 0);
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue drains or `limit` events fire. Returns events fired.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run events with timestamp <= `until`; afterwards now() == max(now, until).
  std::size_t run_until(SimTime until);

  /// Drop every pending event (used between independent experiment repetitions).
  void clear();

  std::size_t pending_events() const { return queue_.size(); }

  /// Install a hook that runs after every fired event, while the queue is
  /// quiescent. This is how the dvemig-verify auditor (src/check) observes the
  /// simulation: cross-module invariants hold *between* events, not during them.
  /// One hook at most; pass nullptr to uninstall.
  void set_post_event_hook(EventFn fn) { post_event_ = std::move(fn); }

  /// Model-checking seam (src/mc). When installed, events whose timestamps fall
  /// within `window` of the earliest pending event form a *ready set* — the
  /// physical system has no global clock, so their relative order is network
  /// jitter, not causality — and the hook picks which of them fires next (it
  /// receives the set size and returns an index). Firing a later-stamped member
  /// first advances now() to that member's timestamp; the bypassed events fire
  /// afterwards at the then-current time, exactly as if their delivery had been
  /// delayed by up to `window`. With no hook (the default), order is the usual
  /// deterministic (time, seq) order and nothing changes. Pass nullptr to
  /// uninstall. `max_ready` caps the set (bounds the branching factor).
  using ChoiceFn = std::function<std::size_t(std::size_t ready_count)>;
  void set_choice_hook(ChoiceFn fn, SimDuration window = SimTime::zero(),
                       std::size_t max_ready = 4) {
    choice_ = std::move(fn);
    choice_window_ = window;
    choice_max_ready_ = max_ready < 1 ? 1 : max_ready;
  }

  std::uint64_t events_fired() const { return events_fired_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    EventFn fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t events_fired_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  EventFn post_event_;
  ChoiceFn choice_;
  SimDuration choice_window_{SimTime::zero()};
  std::size_t choice_max_ready_{4};
  // Observability (src/obs): registry objects are process-lived, so caching
  // the pointers keeps the per-event cost to one integer add.
  obs::Counter* events_counter_;
  obs::Gauge* pending_gauge_;
  obs::Gauge* rate_gauge_;
  std::size_t peak_pending_{0};
};

}  // namespace dvemig::sim
