#include "src/sim/engine.hpp"

#include <algorithm>

#include "src/common/sim_clock.hpp"
#include "src/obs/metrics.hpp"

namespace dvemig::sim {

namespace {

std::int64_t engine_clock_thunk(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now().ns;
}

}  // namespace

Engine::Engine()
    : events_counter_(&obs::Registry::instance().counter("sim.events_fired")),
      pending_gauge_(&obs::Registry::instance().gauge("sim.pending_events_peak")),
      rate_gauge_(&obs::Registry::instance().gauge("sim.sim_seconds")) {
  SimClock::publish(&engine_clock_thunk, this);
}

Engine::~Engine() { SimClock::retract(this); }

bool Engine::fire_next() {
  if (queue_.size() > peak_pending_) {
    peak_pending_ = queue_.size();
    pending_gauge_->set(static_cast<double>(peak_pending_));
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled timer — skip
    if (choice_) {
      // Model-checking mode: gather the ready set (live events within the
      // commutativity window of the earliest due event) and let the hook pick.
      std::vector<Event> ready;
      ready.push_back(std::move(ev));
      const SimTime horizon =
          std::max(ready.front().when, now_) + choice_window_;
      while (ready.size() < choice_max_ready_ && !queue_.empty()) {
        if (!*queue_.top().alive) {
          queue_.pop();
          continue;
        }
        if (queue_.top().when > horizon) break;
        ready.push_back(queue_.top());
        queue_.pop();
      }
      std::size_t idx = 0;
      if (ready.size() > 1) {
        idx = choice_(ready.size());
        DVEMIG_ASSERT(idx < ready.size());
      }
      for (std::size_t i = 0; i < ready.size(); ++i) {
        if (i != idx) queue_.push(std::move(ready[i]));
      }
      ev = std::move(ready[idx]);
    }
    // Firing a later-stamped ready-set member first means the bypassed ones
    // deliver after it; when they come back around (possibly after the choice
    // hook was uninstalled), clamp instead of travelling backwards in time.
    if (ev.when < now_) ev.when = now_;
    now_ = ev.when;
    *ev.alive = false;  // consume before firing so re-arming inside fn works
    ev.fn();
    events_fired_ += 1;
    events_counter_->add(1);
    if (post_event_) post_event_();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  rate_gauge_->set(static_cast<double>(now_.ns) / 1e9);
  return fired;
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek through cancelled entries to find the next live event time.
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    if (fire_next()) ++fired;
  }
  if (now_ < until) now_ = until;
  rate_gauge_->set(static_cast<double>(now_.ns) / 1e9);
  return fired;
}

void Engine::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace dvemig::sim
