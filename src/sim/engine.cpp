#include "src/sim/engine.hpp"

namespace dvemig::sim {

bool Engine::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled timer — skip
    DVEMIG_ASSERT(ev.when >= now_);
    now_ = ev.when;
    *ev.alive = false;  // consume before firing so re-arming inside fn works
    ev.fn();
    events_fired_ += 1;
    if (post_event_) post_event_();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && fire_next()) ++fired;
  return fired;
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek through cancelled entries to find the next live event time.
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    if (fire_next()) ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

void Engine::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace dvemig::sim
