#include "src/mc/decision.hpp"

#include <sstream>

#include "src/common/assert.hpp"

namespace dvemig::mc {

std::uint64_t DecisionSource::next_rand() {
  // splitmix64: tiny, deterministic, good enough for schedule sampling. Not
  // std::mt19937 so the sequence is pinned across standard libraries.
  rng_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint32_t DecisionSource::choose(const char* site, std::uint32_t options,
                                     std::uint64_t state_hash) {
  DVEMIG_EXPECTS(options >= 1);
  const std::size_t idx = trace_.size();
  std::uint32_t chosen = 0;
  if (idx < prefix_.size()) {
    // A prescribed choice can exceed the option count if the prefix came from
    // a run whose schedule diverged (shouldn't happen with a stable world, but
    // a stale script must not crash the replayer).
    chosen = prefix_[idx] < options ? prefix_[idx] : options - 1;
  } else if (tail_ == Tail::random) {
    chosen = static_cast<std::uint32_t>(next_rand() % options);
  }
  trace_.push_back(Decision{site, chosen, options, state_hash});
  return chosen;
}

std::string Script::to_text() const {
  std::ostringstream out;
  out << "# dvemig-mc repro script\n";
  out << "preset " << preset << "\n";
  out << "tail " << tail << "\n";
  out << "seed " << seed << "\n";
  out << "mutation " << mutation << "\n";
  out << "choices";
  for (const std::uint32_t c : choices) out << " " << c;
  out << "\n";
  return out.str();
}

std::optional<Script> Script::parse(const std::string& text,
                                    std::string* error) {
  Script s;
  std::istringstream in(text);
  std::string line;
  bool saw_preset = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "preset") {
      ls >> s.preset;
      saw_preset = true;
    } else if (key == "tail") {
      ls >> s.tail;
    } else if (key == "seed") {
      ls >> s.seed;
    } else if (key == "mutation") {
      ls >> s.mutation;
    } else if (key == "choices") {
      std::uint32_t c = 0;
      while (ls >> c) s.choices.push_back(c);
    } else {
      if (error) *error = "unknown key: " + key;
      return std::nullopt;
    }
  }
  if (!saw_preset) {
    if (error) *error = "missing 'preset' line";
    return std::nullopt;
  }
  if (s.tail != "zeros" && s.tail != "random") {
    if (error) *error = "tail must be 'zeros' or 'random'";
    return std::nullopt;
  }
  return s;
}

}  // namespace dvemig::mc
