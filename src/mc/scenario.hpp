// Model-checking scenarios: one deterministic migration world per preset.
//
// A scenario builds a 2-node testbed with a migratable DVE workload, runs one
// migration under a DecisionSource (schedule choices + fault choices), and then
// judges the terminal state with two oracles:
//
//  - PR 1's check::Verifier invariants, audited throughout the run (socket
//    table bijectivity, TCP sequence-space sanity, capture dedup, protocol
//    frame ordering);
//  - end-to-end properties evaluated at quiescence: the migration terminates
//    (watchdog-bounded), the process exists on exactly one node, both migds and
//    capture managers are quiescent, no client snapshot was lost or duplicated,
//    the freeze window really captured in-flight traffic, and the service is
//    live again after resume.
//
// Presets pick the workload and the fault plan:
//   handshake — UDP game server, stop-and-copy, schedule choices only
//   precopy   — same workload, live precopy migration (Figure 3 loop)
//   freeze    — TCP zone server with active clients; client->server packets
//               are deterministically duplicated (capture-dedup workout) and
//               the migd connection suffers decision-driven link faults
//   crash     — stop-and-copy with frame-level drop/duplicate/kill decisions
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/mc/decision.hpp"
#include "src/mig/test_hooks.hpp"

namespace dvemig::mc {

/// Terminal judgement of one run.
struct RunResult {
  bool migration_done{false};  // the migd done-callback fired at all
  bool success{false};         // MigrationStats::success
  std::uint64_t captured{0};
  std::uint64_t reinjected{0};
  std::size_t faults_injected{0};
  std::size_t frame_faults_injected{0};
  std::uint64_t events{0};
  std::uint64_t final_state_hash{0};
  /// Every decision the run consumed (the explorer branches on these).
  std::vector<Decision> trace;
  /// Verifier violations plus "prop.*" end-to-end property failures, as
  /// "rule: detail" strings. Empty == the run is clean.
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
};

const std::vector<std::string>& preset_names();
bool preset_known(const std::string& preset);

const char* mutation_name(mig::ProtocolMutation m);
std::optional<mig::ProtocolMutation> mutation_from_name(const std::string& name);

/// Execute one deterministic run of `preset` with `mutation` armed, drawing
/// every nondeterministic choice from `decisions`.
RunResult run_scenario(const std::string& preset, mig::ProtocolMutation mutation,
                       DecisionSource& decisions);

}  // namespace dvemig::mc
