// Decision plumbing for the dvemig-mc model checker.
//
// A model-checking run is an ordinary deterministic simulation in which every
// nondeterministic point — which ready event fires next, whether a frame or
// packet suffers a fault — asks a DecisionSource instead of using the default.
// The source replays a prescribed *choice prefix* and then falls back to a tail
// policy (always-0 for DFS, a seeded PRNG for random walks). Because the
// simulation itself is deterministic, (prefix, tail, seed) fully identifies a
// run: the explorer enumerates runs by enumerating prefixes, and a violating
// run is reproduced by replaying its prefix — that is all a repro script is.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dvemig::mc {

/// One decision taken during a run: at site `site` (a stable label such as
/// "sched" or "frame:capture_request"), `options` alternatives were available
/// and `chosen` was taken while the world's protocol-state hash was `state`.
struct Decision {
  std::string site;
  std::uint32_t chosen{0};
  std::uint32_t options{1};
  std::uint64_t state{0};
};

/// Deterministic choice provider for one run.
class DecisionSource {
 public:
  enum class Tail : std::uint8_t {
    zeros,   // past the prefix, always take option 0 (the untouched schedule)
    random,  // past the prefix, draw from a seeded PRNG
  };

  DecisionSource(std::vector<std::uint32_t> prefix, Tail tail,
                 std::uint64_t seed)
      : prefix_(std::move(prefix)), tail_(tail), rng_(seed) {}

  std::uint32_t choose(const char* site, std::uint32_t options,
                       std::uint64_t state_hash);

  const std::vector<Decision>& trace() const { return trace_; }
  std::size_t prefix_size() const { return prefix_.size(); }

 private:
  std::uint64_t next_rand();

  std::vector<std::uint32_t> prefix_;
  Tail tail_;
  std::uint64_t rng_;
  std::vector<Decision> trace_;
};

/// A minimized-trace repro script: everything needed to replay one run.
/// Serialized as a line-oriented text file so tests can embed them as string
/// literals and `dvemig-mc --replay` can read them back.
struct Script {
  std::string preset{"handshake"};
  std::string tail{"zeros"};  // "zeros" | "random"
  std::uint64_t seed{0};
  std::string mutation{"none"};
  std::vector<std::uint32_t> choices;

  std::string to_text() const;
  static std::optional<Script> parse(const std::string& text,
                                     std::string* error = nullptr);
};

}  // namespace dvemig::mc
