#include "src/mc/scenario.hpp"

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "src/check/verifier.hpp"
#include "src/common/assert.hpp"
#include "src/dve/game_server.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/mc/fault.hpp"
#include "src/mig/migd.hpp"

namespace dvemig::mc {
namespace {

struct PresetPlan {
  bool tcp_workload{false};  // zone server + TCP client (else UDP game server)
  bool live{false};          // precopy live migration vs stop-and-copy
  int parallelism{1};        // striped data path degree (MigrationConfig)
  FaultConfig faults{};
  SimDuration choice_window{SimTime::microseconds(50)};
  std::size_t max_ready{3};
  bool expect_freeze_capture{false};
};

std::optional<PresetPlan> plan_for(const std::string& preset) {
  PresetPlan p;
  if (preset == "handshake") return p;
  if (preset == "precopy") {
    p.live = true;
    return p;
  }
  if (preset == "stripe") {
    // Striped data path: live precopy with two stripe channels, no faults —
    // explores stripe connect / reassembly interleavings against the same
    // oracles as "precopy".
    p.live = true;
    p.parallelism = 2;
    return p;
  }
  if (preset == "freeze") {
    p.tcp_workload = true;
    p.faults.link_faults = true;
    p.faults.max_faults = 1;
    p.faults.dup_client_tcp_port = dve::zone_port(1);
    p.expect_freeze_capture = true;
    return p;
  }
  if (preset == "crash") {
    p.faults.frame_faults = true;
    p.faults.allow_kill = true;
    p.faults.max_faults = 1;
    // Fault placement is the branching axis here; schedule jitter would square
    // the tree for little extra coverage.
    p.choice_window = SimTime::zero();
    p.max_ready = 1;
    return p;
  }
  return std::nullopt;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Protocol-state hash used for DFS visited-set pruning and trace annotation.
/// Deliberately coarse: it digests the migration-relevant state (migd phases,
/// sessions, capture books, process placement, socket-table shape), not packet
/// payloads — two states that differ only in payload bytes are equivalent for
/// exploring the protocol state machine.
std::uint64_t world_hash(dve::Testbed& world) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < world.node_count(); ++i) {
    auto& nb = world.node(i);
    h = fnv1a(h, static_cast<std::uint64_t>(nb.migd.src_phase() + 1));
    h = fnv1a(h, nb.migd.dest_session_count());
    h = fnv1a(h, nb.migd.busy_sending() ? 1 : 0);
    h = fnv1a(h, nb.migd.capture().active_sessions());
    h = fnv1a(h, nb.migd.capture().total_specs());
    h = fnv1a(h, nb.migd.capture().total_captured());
    // Process *placement* and freeze-state matter; pid identity must not (pids
    // come from a process-global counter, so hashing them would make every
    // run's states look novel and defeat the explorer's visited-set pruning).
    h = fnv1a(h, nb.node.processes().size());
    for (const auto& [pid, proc] : nb.node.processes()) {
      h = fnv1a(h, proc->frozen() ? 1 : 0);
    }
    h = fnv1a(h, nb.node.stack().table().ehash_size());
    h = fnv1a(h, nb.node.stack().table().bhash_size());
  }
  return h;
}

}  // namespace

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names{"handshake", "precopy", "stripe",
                                              "freeze", "crash"};
  return names;
}

bool preset_known(const std::string& preset) {
  return plan_for(preset).has_value();
}

const char* mutation_name(mig::ProtocolMutation m) {
  switch (m) {
    case mig::ProtocolMutation::none: return "none";
    case mig::ProtocolMutation::skip_capture_dedup: return "skip_capture_dedup";
    case mig::ProtocolMutation::skip_restore_rehash:
      return "skip_restore_rehash";
    case mig::ProtocolMutation::double_resume_done: return "double_resume_done";
    case mig::ProtocolMutation::skip_capture_arm: return "skip_capture_arm";
    case mig::ProtocolMutation::swap_image_endpoints:
      return "swap_image_endpoints";
  }
  return "none";
}

std::optional<mig::ProtocolMutation> mutation_from_name(
    const std::string& name) {
  using M = mig::ProtocolMutation;
  for (const M m : {M::none, M::skip_capture_dedup, M::skip_restore_rehash,
                    M::double_resume_done, M::skip_capture_arm,
                    M::swap_image_endpoints}) {
    if (name == mutation_name(m)) return m;
  }
  return std::nullopt;
}

RunResult run_scenario(const std::string& preset, mig::ProtocolMutation mutation,
                       DecisionSource& decisions) {
  const std::optional<PresetPlan> plan = plan_for(preset);
  DVEMIG_EXPECTS(plan.has_value());

  RunResult r;

  // Small-scope world: tiny images and short loop timeouts keep one run to a
  // few thousand events so DFS can afford thousands of runs. The watchdog is
  // what bounds runs where a fault eats a control frame.
  mig::CostModel cm;
  cm.initial_loop_timeout_ns = 4'000'000;
  cm.freeze_threshold_ns = 1'000'000;
  cm.max_precopy_rounds = 3;
  cm.migration_watchdog_ns = 2'000'000'000;

  dve::TestbedConfig tb;
  tb.dve_nodes = 2;
  tb.with_db = false;
  tb.start_conductors = false;
  tb.cost_model = cm;
  dve::Testbed world(tb);

  check::VerifierConfig vcfg;
  vcfg.every_n_events = 4;
  vcfg.abort_on_violation = false;
  vcfg.max_recorded = 64;
  check::Verifier verifier(world.engine(), vcfg);
  for (std::size_t i = 0; i < world.node_count(); ++i) {
    verifier.watch_stack(world.node(i).node.stack());
    verifier.watch_capture(world.node(i).migd.capture());
  }

  dve::ClientHost& client_host = world.make_client_host();
  verifier.watch_stack(client_host.stack());

  std::shared_ptr<proc::Process> proc;
  std::unique_ptr<dve::UdpGameClient> udp_client;
  std::unique_ptr<dve::TcpDveClient> tcp_client;
  std::function<std::uint64_t()> rx_count;

  if (plan->tcp_workload) {
    dve::ZoneServerConfig zs;
    zs.zone = 1;
    zs.tick = SimTime::milliseconds(20);
    zs.update_bytes = 64;
    zs.worker_threads = 1;
    zs.active_updates = true;
    zs.heap_bytes = 256ull << 10;
    zs.code_bytes = 32ull << 10;
    zs.libs_bytes = 32ull << 10;
    zs.stack_bytes = 16ull << 10;
    zs.pages_per_tick = 2;
    zs.use_db = false;
    proc = dve::ZoneServerApp::launch(world.node(0).node, zs);
    tcp_client = std::make_unique<dve::TcpDveClient>(client_host,
                                                     world.public_ip());
    tcp_client->connect_to_zone(1);
    // 1 ms sends guarantee in-flight client traffic inside any multi-ms freeze
    // window (the freeze-capture property depends on this).
    tcp_client->set_active(SimTime::milliseconds(1), 32);
    rx_count = [&c = *tcp_client] { return c.updates_received(); };
  } else {
    dve::GameServerConfig gs;
    gs.tick = SimTime::milliseconds(20);
    gs.snapshot_bytes = 64;
    gs.heap_bytes = 64ull << 10;
    gs.code_bytes = 16ull << 10;
    gs.pages_per_tick = 4;
    proc = dve::GameServerApp::launch(world.node(0).node, gs);
    udp_client = std::make_unique<dve::UdpGameClient>(
        client_host, net::Endpoint{world.public_ip(), gs.port},
        SimTime::milliseconds(20));
    udp_client->start();
    rx_count = [&c = *udp_client] {
      return static_cast<std::uint64_t>(c.received().size());
    };
  }

  // Deterministic warm-up: the client is connected and traffic is flowing
  // before the first decision point exists, so the explored space is the
  // migration itself, not connection establishment.
  world.run_for(SimTime::milliseconds(300));

  mig::set_mutation(mutation);
  FaultInjector faults(plan->faults, decisions,
                       [&world] { return world_hash(world); });
  world.engine().set_choice_hook(
      [&decisions, &world](std::size_t n) {
        return static_cast<std::size_t>(decisions.choose(
            "sched", static_cast<std::uint32_t>(n), world_hash(world)));
      },
      plan->choice_window, plan->max_ready);

  bool done = false;
  mig::MigrationStats stats;
  mig::MigrateOptions opts;
  opts.live = plan->live;
  opts.config.parallelism = plan->parallelism;
  const Pid pid = proc->pid();
  const bool started = world.node(0).migd.migrate(
      pid, world.node(1).node.local_addr(), opts,
      [&done, &stats](const mig::MigrationStats& s) {
        done = true;
        stats = s;
      });
  DVEMIG_EXPECTS(started);

  const SimTime deadline = world.engine().now() + SimTime::seconds(3);
  while (!done && world.engine().now() < deadline) {
    world.run_for(SimTime::milliseconds(10));
  }
  // Decisions stop here: the grace window (teardown events, liveness probing)
  // runs on the default deterministic schedule so it cannot enlarge the tree.
  world.engine().set_choice_hook({});
  const std::uint64_t rx_at_done = rx_count();
  world.run_for(SimTime::milliseconds(400));
  mig::set_mutation(mig::ProtocolMutation::none);

  r.migration_done = done;
  r.success = done && stats.success;
  r.captured = stats.captured;
  r.reinjected = stats.reinjected;
  r.faults_injected = faults.faults_injected();
  r.frame_faults_injected = faults.frame_faults_injected();
  r.events = world.engine().events_fired();
  r.final_state_hash = world_hash(world);

  auto viol = [&r](const char* rule, const std::string& detail) {
    r.violations.push_back(std::string(rule) + ": " + detail);
  };

  if (!done) {
    viol("prop.no-termination",
         "migration neither completed nor failed within the run bound");
  }

  // Exactly-once restore: the process must exist on exactly one node — the
  // destination after success, the source after a cleanly-aborted run. When a
  // frame fault may have eaten the resume_done commit ack, source and
  // destination can legitimately disagree (lost-commit-ack hazard, DESIGN.md
  // §9), so both-alive is tolerated there; losing the process never is.
  const bool on_src = world.node(0).node.find(pid) != nullptr;
  const bool on_dst = world.node(1).node.find(pid) != nullptr;
  if (!on_src && !on_dst) {
    viol("prop.process-lost", "migrated pid exists on no node");
  } else if (r.success && (!on_dst || on_src)) {
    viol("prop.exactly-once",
         "successful migration must leave the process on the destination only");
  } else if (done && !r.success && r.frame_faults_injected == 0 &&
             (!on_src || on_dst)) {
    viol("prop.exactly-once",
         "failed migration must roll back to the source only");
  }

  // Quiescence: once the migration reported its outcome (and the grace window
  // flushed deferred teardowns), no session state may linger on either side.
  if (done) {
    for (std::size_t i = 0; i < world.node_count(); ++i) {
      auto& nb = world.node(i);
      if (nb.migd.src_phase() != -1 || nb.migd.busy_sending()) {
        viol("prop.quiescence", nb.node.name() + ": source session still live");
      }
      if (nb.migd.dest_session_count() != 0) {
        viol("prop.quiescence",
             nb.node.name() + ": destination session still live");
      }
      if (nb.migd.capture().active_sessions() != 0) {
        viol("prop.quiescence", nb.node.name() + ": capture session leaked");
      }
    }
  }

  if (r.success && plan->expect_freeze_capture && r.faults_injected == 0) {
    if (stats.captured == 0) {
      viol("prop.freeze-capture",
           "no packet captured during the freeze despite 1 ms client sends");
    }
    if (stats.reinjected != stats.captured) {
      viol("prop.capture-reinject",
           "captured " + std::to_string(stats.captured) + " but reinjected " +
               std::to_string(stats.reinjected));
    }
  }

  if (r.success && r.faults_injected == 0) {
    if (rx_count() <= rx_at_done) {
      viol("prop.post-resume-liveness",
           "client received nothing in the grace window after resume");
    }
  }

  // UDP end-to-end packet accounting (the TCP workload gets the equivalent for
  // free from the stack's sequence-space invariants).
  if (udp_client && r.success && r.faults_injected == 0) {
    if (udp_client->missing_snapshots() != 0) {
      viol("prop.lost-snapshot",
           std::to_string(udp_client->missing_snapshots()) +
               " snapshot seq(s) never reached the client");
    }
    std::set<std::uint32_t> seen;
    for (const dve::PacketRecord& rec : udp_client->received()) {
      if (!seen.insert(rec.seq).second) {
        viol("prop.duplicate-snapshot",
             "client received snapshot seq " + std::to_string(rec.seq) +
                 " twice");
        break;
      }
    }
  }

  verifier.audit_now();
  for (const check::Violation& v : verifier.violations()) {
    // Frame-level faults tear holes in the protocol stream itself, so the
    // ordering checker legitimately fires on such runs; every structural
    // invariant still applies.
    if (r.frame_faults_injected > 0 && v.rule.rfind("protocol.", 0) == 0) {
      continue;
    }
    r.violations.push_back(v.rule + ": " + v.detail);
  }

  r.trace = decisions.trace();
  return r;
}

}  // namespace dvemig::mc
