// FaultPlan layer: decision-driven fault injection for dvemig-mc.
//
// Two seams, both process-wide statics installed for the duration of one run:
//
//  - mig::FrameChannel::FaultHook — per protocol frame on the send side:
//    drop (the peer never sees it), duplicate (framed twice), kill (the
//    sending daemon "crashes": RST). Frame faults tear holes in the protocol
//    stream itself, so runs that inject one legitimately trip the protocol-
//    ordering checker; the scenario oracle accounts for that.
//  - net::Link::FaultHook — per packet on the migd TCP connection: drop,
//    duplicate, delay. These live *below* TCP, which repairs them; the
//    protocol stream stays intact and every invariant must keep holding.
//
// Whether a given frame/packet suffers a fault is itself a decision from the
// DecisionSource, so the explorer enumerates fault placements exactly like
// schedule interleavings, under a shared `max_faults` budget per run.
#pragma once

#include <cstddef>
#include <functional>

#include "src/mc/decision.hpp"
#include "src/mig/protocol.hpp"
#include "src/net/link.hpp"

namespace dvemig::mc {

struct FaultConfig {
  /// Choice-driven drop/duplicate/kill of individual migd protocol frames.
  bool frame_faults{false};
  /// Adds "kill" (daemon crash at this phase of the protocol) to the frame
  /// fault options.
  bool allow_kill{false};
  /// Choice-driven drop/duplicate/delay of packets on the migd connection.
  bool link_faults{false};
  /// Total faults (frame + link) one run may inject. Keeps the search tree
  /// tractable: past the budget, fault sites stop being decision points.
  std::size_t max_faults{1};
  /// Delivery delay applied by the link "delay" fault (reorders the packet
  /// behind later traffic).
  SimDuration link_extra_delay{SimTime::microseconds(200)};
  /// Deterministically duplicate every client->server TCP packet on this port
  /// (0 = off). Not a decision point and not counted against max_faults; this
  /// exercises the capture dedup path (Section V-B) on every run of a scope.
  net::Port dup_client_tcp_port{0};
};

class FaultInjector final : public mig::FrameChannel::FaultHook,
                            public net::Link::FaultHook {
 public:
  using HashFn = std::function<std::uint64_t()>;

  /// Installs both process-wide hooks; the destructor removes them. At most
  /// one injector may exist at a time.
  FaultInjector(FaultConfig cfg, DecisionSource& decisions, HashFn state_hash);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  mig::FrameChannel::FaultAction on_send(const mig::FrameChannel& ch,
                                         mig::MsgType type,
                                         std::size_t payload_len) override;
  net::Link::FaultVerdict on_transmit(const net::Link& link,
                                      const net::Packet& p) override;

  std::size_t faults_injected() const { return injected_; }
  /// Frame-level faults only (these are the ones that legitimately break the
  /// protocol-ordering checker's expectations).
  std::size_t frame_faults_injected() const { return frame_injected_; }

 private:
  std::uint64_t hash() const { return state_hash_ ? state_hash_() : 0; }

  FaultConfig cfg_;
  DecisionSource* decisions_;
  HashFn state_hash_;
  std::size_t injected_{0};
  std::size_t frame_injected_{0};
};

}  // namespace dvemig::mc
