#include "src/mc/explorer.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/common/assert.hpp"

namespace dvemig::mc {

Explorer::Explorer(ExploreConfig cfg) : cfg_(std::move(cfg)) {
  DVEMIG_EXPECTS(preset_known(cfg_.preset));
}

RunResult Explorer::execute(const std::vector<std::uint32_t>& prefix,
                            DecisionSource::Tail tail, std::uint64_t seed) {
  DecisionSource ds(prefix, tail, seed);
  return run_scenario(cfg_.preset, cfg_.mutation, ds);
}

void Explorer::minimize(std::vector<std::uint32_t> prefix,
                        ExploreResult& result) {
  auto drop_trailing_zeros = [](std::vector<std::uint32_t>& p) {
    while (!p.empty() && p.back() == 0) p.pop_back();
  };
  // A zeros-tail run is unchanged by shortening its prefix across trailing
  // zeros, so that shrink needs no re-run; zeroing an interior choice does.
  drop_trailing_zeros(prefix);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] == 0) continue;
    std::vector<std::uint32_t> candidate = prefix;
    candidate[i] = 0;
    const RunResult probe =
        execute(candidate, DecisionSource::Tail::zeros, 0);
    result.runs += 1;
    if (!probe.clean()) {
      prefix = std::move(candidate);
      result.first_violation = probe;
    }
  }
  drop_trailing_zeros(prefix);
  result.repro.preset = cfg_.preset;
  result.repro.tail = "zeros";
  result.repro.seed = 0;
  result.repro.mutation = mutation_name(cfg_.mutation);
  result.repro.choices = std::move(prefix);
}

ExploreResult Explorer::dfs() {
  ExploreResult result;
  std::unordered_set<std::uint64_t> visited;
  std::vector<std::vector<std::uint32_t>> frontier;
  frontier.push_back({});

  while (!frontier.empty() && result.runs < cfg_.max_states) {
    const std::vector<std::uint32_t> prefix = std::move(frontier.back());
    frontier.pop_back();

    const RunResult run = execute(prefix, DecisionSource::Tail::zeros, 0);
    result.runs += 1;
    result.max_trace_len = std::max(result.max_trace_len, run.trace.size());

    if (!run.clean()) {
      result.violating_runs += 1;
      if (!result.has_violation) {
        result.has_violation = true;
        result.first_violation = run;
        minimize(prefix, result);
        if (cfg_.stop_on_violation) break;
      }
    }

    // Expand the untaken branches of every decision beyond the prescribed
    // prefix — unless the protocol state at that decision was already visited
    // (its subtree has been explored from an equivalent state) or the decision
    // index exceeds the depth bound. Reverse order keeps the frontier LIFO-
    // ordered so low branch indices are explored first.
    std::vector<std::vector<std::uint32_t>> expansions;
    for (std::size_t i = prefix.size(); i < run.trace.size(); ++i) {
      const Decision& d = run.trace[i];
      if (d.options <= 1) continue;
      if (i >= cfg_.max_depth) {
        result.pruned_depth += 1;
        continue;
      }
      if (visited.count(d.state) != 0) {
        result.pruned_visited += 1;
        continue;
      }
      std::vector<std::uint32_t> branch;
      branch.reserve(i + 1);
      for (std::size_t j = 0; j < i; ++j) branch.push_back(run.trace[j].chosen);
      for (std::uint32_t c = 1; c < d.options; ++c) {
        branch.push_back(c);
        expansions.push_back(branch);
        branch.pop_back();
      }
    }
    for (auto it = expansions.rbegin(); it != expansions.rend(); ++it) {
      frontier.push_back(std::move(*it));
    }
    for (const Decision& d : run.trace) visited.insert(d.state);
  }

  result.distinct_states = visited.size();
  result.exhausted = frontier.empty() &&
                     !(result.has_violation && cfg_.stop_on_violation);
  return result;
}

ExploreResult Explorer::random_walk() {
  ExploreResult result;
  std::unordered_set<std::uint64_t> visited;
  for (std::size_t k = 0;
       k < cfg_.random_runs && result.runs < cfg_.max_states; ++k) {
    const std::uint64_t seed = cfg_.seed + k;
    const RunResult run = execute({}, DecisionSource::Tail::random, seed);
    result.runs += 1;
    result.max_trace_len = std::max(result.max_trace_len, run.trace.size());
    for (const Decision& d : run.trace) visited.insert(d.state);
    if (!run.clean()) {
      result.violating_runs += 1;
      if (!result.has_violation) {
        result.has_violation = true;
        result.first_violation = run;
        // A random walk is reproduced by prescribing its full choice vector,
        // after which minimization proceeds exactly as for DFS.
        std::vector<std::uint32_t> prefix;
        prefix.reserve(run.trace.size());
        for (const Decision& d : run.trace) prefix.push_back(d.chosen);
        minimize(std::move(prefix), result);
        if (cfg_.stop_on_violation) break;
      }
    }
  }
  result.distinct_states = visited.size();
  return result;
}

RunResult replay_script(const Script& script) {
  DVEMIG_EXPECTS(preset_known(script.preset));
  const auto mutation = mutation_from_name(script.mutation);
  DVEMIG_EXPECTS(mutation.has_value());
  const auto tail = script.tail == "random" ? DecisionSource::Tail::random
                                            : DecisionSource::Tail::zeros;
  DecisionSource ds(script.choices, tail, script.seed);
  return run_scenario(script.preset, *mutation, ds);
}

}  // namespace dvemig::mc
