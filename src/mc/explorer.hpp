// Exhaustive small-scope exploration driver for dvemig-mc.
//
// Stateless model checking in the dBug/MoDist style: a run is fully identified
// by its decision vector, so the explorer enumerates runs by enumerating
// choice *prefixes* (the tail is the all-zeros default schedule). DFS expands
// every non-prefix decision point of a finished run into its untaken branches,
// pruned by
//   - a visited set keyed on the protocol-state hash at the decision point
//     (two interleavings that reach the same protocol state explore the same
//     subtree — expanding it once suffices), and
//   - an absolute decision-index depth bound (small-scope hypothesis: protocol
//     bugs show up within a handful of deviations from the happy path).
// A seeded random-walk mode samples deep interleavings the DFS bound excludes.
//
// The first violating run is shrunk to a minimal prescribed prefix (drop
// trailing zeros, then greedily zero every remaining choice, re-running after
// each step) and emitted as a Script that `dvemig-mc --replay` and the
// regression tests replay verbatim.
#pragma once

#include <cstddef>
#include <string>

#include "src/mc/decision.hpp"
#include "src/mc/scenario.hpp"

namespace dvemig::mc {

struct ExploreConfig {
  std::string preset{"handshake"};
  mig::ProtocolMutation mutation{mig::ProtocolMutation::none};
  /// Cap on scenario executions (runs ≈ explored schedule states).
  std::size_t max_states{20000};
  /// Absolute decision-index bound for DFS branch expansion.
  std::size_t max_depth{48};
  /// Random-walk mode: base seed and number of walks.
  std::uint64_t seed{1};
  std::size_t random_runs{200};
  /// Stop at the first violating run (and minimize it).
  bool stop_on_violation{true};
};

struct ExploreResult {
  std::size_t runs{0};
  std::size_t violating_runs{0};
  std::size_t distinct_states{0};  // visited protocol-state hashes
  std::size_t pruned_visited{0};   // branch points skipped: state already seen
  std::size_t pruned_depth{0};     // branch points skipped: beyond max_depth
  std::size_t max_trace_len{0};
  /// DFS only: the frontier drained before max_states was hit.
  bool exhausted{false};
  bool has_violation{false};
  RunResult first_violation;  // meaningful when has_violation
  Script repro;               // minimized, replays first_violation's failure
};

class Explorer {
 public:
  explicit Explorer(ExploreConfig cfg);

  /// Exhaustive DFS over choice prefixes from the empty prefix.
  ExploreResult dfs();
  /// `random_runs` independent seeded walks (seed, seed+1, ...).
  ExploreResult random_walk();

 private:
  RunResult execute(const std::vector<std::uint32_t>& prefix,
                    DecisionSource::Tail tail, std::uint64_t seed);
  /// Shrink a violating zeros-tail prefix; fills result.repro.
  void minimize(std::vector<std::uint32_t> prefix, ExploreResult& result);

  ExploreConfig cfg_;
};

/// Replay a repro script; returns the run's judgement.
RunResult replay_script(const Script& script);

}  // namespace dvemig::mc
