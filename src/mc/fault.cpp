#include "src/mc/fault.hpp"

#include <string>

#include "src/common/assert.hpp"

namespace dvemig::mc {

FaultInjector::FaultInjector(FaultConfig cfg, DecisionSource& decisions,
                             HashFn state_hash)
    : cfg_(cfg), decisions_(&decisions), state_hash_(std::move(state_hash)) {
  DVEMIG_EXPECTS(mig::FrameChannel::fault_hook() == nullptr);
  DVEMIG_EXPECTS(net::Link::fault_hook() == nullptr);
  mig::FrameChannel::set_fault_hook(this);
  net::Link::set_fault_hook(this);
}

FaultInjector::~FaultInjector() {
  mig::FrameChannel::set_fault_hook(nullptr);
  net::Link::set_fault_hook(nullptr);
}

mig::FrameChannel::FaultAction FaultInjector::on_send(
    const mig::FrameChannel& ch, mig::MsgType type, std::size_t payload_len) {
  (void)ch;
  (void)payload_len;
  using Action = mig::FrameChannel::FaultAction;
  if (!cfg_.frame_faults || injected_ >= cfg_.max_faults) return Action::pass;
  const std::uint32_t options = cfg_.allow_kill ? 4 : 3;
  const std::string site = std::string("frame:") + mig::msg_type_name(type);
  const std::uint32_t c = decisions_->choose(site.c_str(), options, hash());
  if (c == 0) return Action::pass;
  injected_ += 1;
  frame_injected_ += 1;
  switch (c) {
    case 1: return Action::drop;
    case 2: return Action::duplicate;
    default: return Action::kill;
  }
}

net::Link::FaultVerdict FaultInjector::on_transmit(const net::Link& link,
                                                   const net::Packet& p) {
  (void)link;
  net::Link::FaultVerdict v;
  if (cfg_.dup_client_tcp_port != 0 && p.proto == net::IpProto::tcp &&
      p.dport() == cfg_.dup_client_tcp_port) {
    v.duplicate = true;
  }
  const bool migd_traffic =
      p.proto == net::IpProto::tcp &&
      (p.dport() == mig::kMigdPort || p.sport() == mig::kMigdPort);
  if (!cfg_.link_faults || !migd_traffic || injected_ >= cfg_.max_faults) {
    return v;
  }
  // pass / drop / duplicate / delay. TCP sits above this seam and repairs all
  // three, so unlike frame faults these must never break the protocol.
  const std::uint32_t c = decisions_->choose("link", 4, hash());
  if (c == 0) return v;
  injected_ += 1;
  switch (c) {
    case 1: v.drop = true; break;
    case 2: v.duplicate = true; break;
    default: v.extra_delay = cfg_.link_extra_delay; break;
  }
  return v;
}

}  // namespace dvemig::mc
