// Connection-scale hot paths: per-packet filter match cost and end-to-end
// migration sweeps at 1k..100k connections (DESIGN.md §12).
//
// Three phases:
//   match  — host wall-clock cost of one capture-filter / translation-filter
//            decision as the number of installed specs/rules grows. The
//            indexed matchers must stay flat (ratio 100k/1k <= 1.5, gated in
//            CI); the pre-index linear scans are measured at small n as the
//            superlinear evidence.
//   sweep  — live-migrate a zone server holding n client TCP connections per
//            strategy, reporting sim freeze time/bytes plus host wall-clock
//            and peak RSS for the whole run.
//   ident  — the equivalence gate: at n=1000 every strategy is run twice,
//            once through the pre-index reference matchers and once through
//            the indexes; every sim-visible MigrationStats field must agree
//            exactly, or the bench exits non-zero.
//
// Usage: connection_scale [smoke]
//   smoke — CI-sized run: sweep {1k, 10k}; full adds {50k, 100k}.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/mig/capture.hpp"
#include "src/mig/translation.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"
#include "src/proc/node.hpp"

using namespace dvemig;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}

/// "VmRSS" / "VmHWM" from /proc/self/status, in MiB (0 off Linux).
double proc_status_mib(const char* key) {
#ifdef __linux__
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind(key, 0) == 0) {
      return std::stod(line.substr(std::strlen(key) + 1)) / 1024.0;
    }
  }
#endif
  return 0.0;
}

net::Ipv4Addr flow_addr(std::size_t i) {
  return net::Ipv4Addr::octets(10, static_cast<std::uint8_t>(1 + (i >> 16)),
                               static_cast<std::uint8_t>(i >> 8),
                               static_cast<std::uint8_t>(i));
}

// ---------------------------------------------------------------------------
// Phase "match": per-packet capture match cost vs installed spec count.
// ---------------------------------------------------------------------------

double capture_match_cost_ns(std::size_t specs, std::size_t packets,
                             bool reference) {
  mig::CaptureManager::set_reference_mode(reference);
  sim::Engine engine;
  stack::NetStack host(engine, "bench", SimTime::zero());
  mig::CaptureManager cap(host);
  const std::uint64_t session = cap.begin_session();
  for (std::size_t i = 0; i < specs; ++i) {
    cap.add_spec(session, mig::CaptureSpec{net::IpProto::tcp, true,
                                           net::Endpoint{flow_addr(i), 41000},
                                           9000});
  }

  // 512 hot flows spread across the spec table, seqs cycling in a small
  // window so most packets are dedup hits (bounded queue memory); every 4th
  // packet misses every spec (a port nothing matches).
  const std::size_t kFlows = std::min<std::size_t>(512, specs);
  const std::size_t stride = specs / kFlows;
  std::vector<net::Packet> pool;
  pool.reserve(2048);
  for (std::size_t k = 0; k < 2048; ++k) {
    const std::size_t flow = (k % kFlows) * stride;
    net::TcpHeader hdr;
    hdr.flags = net::tcp_flags::ack;
    hdr.seq = static_cast<std::uint32_t>(k / kFlows) % 16;
    const net::Port dport = k % 4 == 3 ? net::Port{9003} : net::Port{9000};
    pool.push_back(net::make_tcp({flow_addr(flow), 41000},
                                 {net::Ipv4Addr::octets(10, 0, 0, 99), dport},
                                 hdr, {}));
  }

  // Untimed warm-up: fault the tables in, warm the predictors and let the
  // core leave its idle frequency — otherwise the first timed scale point
  // (the 1k baseline) absorbs all the cold-start cost and the flatness ratio
  // swings run to run.
  for (std::size_t k = 0; k < packets; ++k) host.rx(pool[k % pool.size()]);
  double best_ns = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < packets; ++k) host.rx(pool[k % pool.size()]);
    const double ns = elapsed_s(t0) * 1e9 / static_cast<double>(packets);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  cap.abort_session(session);
  mig::CaptureManager::set_reference_mode(false);
  return best_ns;
}

double translation_match_cost_ns(std::size_t rules, std::size_t packets,
                                 bool reference) {
  mig::TranslationManager::set_reference_mode(reference);
  sim::Engine engine;
  stack::NetStack host(engine, "bench", SimTime::zero());
  mig::TranslationManager trans(host);
  // Distinct (peer_local, mig_old) per rule, so none chain-compose.
  for (std::size_t i = 0; i < rules; ++i) {
    trans.install(mig::TranslationRule{net::IpProto::tcp,
                                       net::Endpoint{flow_addr(i), 3306},
                                       net::Endpoint{flow_addr(i + rules), 45000},
                                       net::Ipv4Addr::octets(10, 200, 0, 1)},
                  /*fix_dst_cache=*/false);
  }
  const std::size_t kFlows = std::min<std::size_t>(512, rules);
  const std::size_t stride = rules / kFlows;
  std::vector<net::Packet> pool;
  pool.reserve(1024);
  for (std::size_t k = 0; k < 1024; ++k) {
    const std::size_t i = (k % kFlows) * stride;
    net::TcpHeader hdr;
    hdr.flags = net::tcp_flags::ack;
    // LOCAL_IN tuple of rule i: src = mig_new_addr, dst = peer_local.
    pool.push_back(net::make_tcp({net::Ipv4Addr::octets(10, 200, 0, 1), 45000},
                                 {flow_addr(i), 3306}, hdr, {}));
  }
  // Untimed warm-up, for the same reason as the capture measurement.
  for (std::size_t k = 0; k < packets; ++k) host.rx(pool[k % pool.size()]);
  double best_ns = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < packets; ++k) host.rx(pool[k % pool.size()]);
    const double ns = elapsed_s(t0) * 1e9 / static_cast<double>(packets);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  mig::TranslationManager::set_reference_mode(false);
  return best_ns;
}

// ---------------------------------------------------------------------------
// Phase "sweep": end-to-end migration at n connections.
// ---------------------------------------------------------------------------

struct SweepResult {
  mig::MigrationStats stats;
  double wall_s{0};
  double rss_mib{0};
};

SweepResult run_migration(std::size_t connections, mig::SocketMigStrategy strategy,
                          bool reference) {
  const auto t0 = Clock::now();
  mig::CaptureManager::set_reference_mode(reference);
  mig::TranslationManager::set_reference_mode(reference);
  // Pids seed each process's workload RNG; without the reset a second run in
  // this OS process would dirty different pages and the reference/indexed
  // comparison below would diverge for reasons unrelated to the filters.
  proc::Node::reset_pid_counter();

  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.start_conductors = false;
  // At 10^5 connections a legitimate incremental precopy runs its full 16
  // rounds with multi-second snapshot transfers per round — far past the
  // default 30 s watchdog that guards against lost control frames at normal
  // scale. Identical for the reference and indexed runs, so the
  // byte-identical comparison is unaffected.
  cfg.cost_model.migration_watchdog_ns = 600'000'000'000;
  dve::Testbed bed(cfg);

  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.active_updates = true;
  zs.db_addr = bed.db_node()->local_addr();
  zs.per_client_cores = std::min(0.0002, 0.5 / static_cast<double>(connections));
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  // Client hosts are shared (each holds one NetStack): enough hosts for port
  // diversity, far fewer than connections so 100k fits in memory.
  const std::size_t host_n = std::min<std::size_t>(connections, 256);
  std::vector<dve::ClientHost*> hosts;
  hosts.reserve(host_n);
  for (std::size_t i = 0; i < host_n; ++i) hosts.push_back(&bed.make_client_host());

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(*hosts[i % host_n], bed.public_ip());
    if (i < 256) c->set_active(SimTime::milliseconds(50), 48);  // a hot subset
    clients.push_back(std::move(c));
  }
  // Ramp fast enough that 100k connects fit in ~1s of sim time.
  const std::int64_t interval_us =
      std::max<std::int64_t>(5, 1'000'000 / static_cast<std::int64_t>(connections));
  for (std::size_t i = 0; i < connections; ++i) {
    bed.engine().schedule_after(
        SimTime::microseconds(interval_us * static_cast<std::int64_t>(i)),
        [&clients, i, &zs] { clients[i]->connect_to_zone(zs.zone); });
  }
  bed.run_for(SimTime::microseconds(interval_us * static_cast<std::int64_t>(connections)) +
              SimTime::milliseconds(400));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(), strategy,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  // Bounded wait, in slices: break as soon as the migration reports back
  // (plus one settle slice so reinjection/teardown traffic drains). The slice
  // grid is sim-deterministic, so reference and indexed runs see identical
  // schedules.
  for (int slice = 0; slice < 2400 && !done; ++slice) {
    bed.run_for(SimTime::milliseconds(250));
  }
  if (done) bed.run_for(SimTime::milliseconds(250));
  mig::CaptureManager::set_reference_mode(false);
  mig::TranslationManager::set_reference_mode(false);
  if (!done || !stats.success) {
    std::fprintf(stderr, "connection_scale: migration failed (n=%zu, %s)\n",
                 connections, mig::strategy_name(strategy));
    std::abort();
  }
  SweepResult r;
  r.stats = stats;
  r.wall_s = elapsed_s(t0);
  r.rss_mib = proc_status_mib("VmRSS");
  return r;
}

const char* strategy_key(mig::SocketMigStrategy s) {
  switch (s) {
    case mig::SocketMigStrategy::iterative: return "iterative";
    case mig::SocketMigStrategy::collective: return "collective";
    case mig::SocketMigStrategy::incremental_collective: return "incremental";
  }
  return "?";
}

bool stats_identical(const mig::MigrationStats& a, const mig::MigrationStats& b) {
  return a.t_freeze_begin == b.t_freeze_begin && a.t_resume == b.t_resume &&
         a.precopy_rounds == b.precopy_rounds &&
         a.precopy_channel_bytes == b.precopy_channel_bytes &&
         a.precopy_socket_bytes == b.precopy_socket_bytes &&
         a.freeze_channel_bytes == b.freeze_channel_bytes &&
         a.freeze_socket_bytes == b.freeze_socket_bytes &&
         a.socket_count == b.socket_count && a.captured == b.captured &&
         a.reinjected == b.reinjected && a.success == b.success;
}

}  // namespace

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;

  obs::BenchReport report("connection_scale");
  report.note("workload", smoke ? "smoke" : "full");

  const std::vector<mig::SocketMigStrategy> strategies = {
      mig::SocketMigStrategy::iterative, mig::SocketMigStrategy::collective,
      mig::SocketMigStrategy::incremental_collective};

  // ---- match: indexed cost must be flat in the spec count -----------------
  std::printf("# Per-packet filter match cost (host wall-clock)\n");
  std::printf("%-12s %10s %18s %22s\n", "specs", "mode", "capture_ns/pkt",
              "translation_ns/pkt");
  const std::vector<std::size_t> match_counts{1'000, 10'000, 50'000, 100'000};
  double cap_1k = 0, cap_100k = 0, trans_1k = 0, trans_100k = 0;
  for (const std::size_t n : match_counts) {
    const double cap_ns = capture_match_cost_ns(n, 100'000, /*reference=*/false);
    const double trans_ns = translation_match_cost_ns(n, 100'000, false);
    std::printf("%-12zu %10s %18.1f %22.1f\n", n, "indexed", cap_ns, trans_ns);
    std::fflush(stdout);
    const std::string suffix = "_n" + std::to_string(n);
    report.result("capture_match_ns" + suffix, cap_ns);
    report.result("translation_match_ns" + suffix, trans_ns);
    if (n == 1'000) cap_1k = cap_ns, trans_1k = trans_ns;
    if (n == 100'000) cap_100k = cap_ns, trans_100k = trans_ns;
  }
  // The old implementation, shown superlinear at a size it can still afford.
  double cap_linear_10k = 0;
  for (const std::size_t n : std::vector<std::size_t>{1'000, 10'000}) {
    const double cap_ns = capture_match_cost_ns(n, 2'000, /*reference=*/true);
    const double trans_ns = translation_match_cost_ns(n, 2'000, true);
    std::printf("%-12zu %10s %18.1f %22.1f\n", n, "linear", cap_ns, trans_ns);
    report.result("capture_match_linear_ns_n" + std::to_string(n), cap_ns);
    report.result("translation_match_linear_ns_n" + std::to_string(n), trans_ns);
    if (n == 10'000) cap_linear_10k = cap_ns;
  }
  // Flatness tolerates up to 2x: a 100k-entry index probes a TLB/cache-sparse
  // table and honestly costs ~1.5x the dense 1k one; a linear scan would cost
  // ~400x. The speedup gate below is the load-bearing one — it compares
  // against the reference scan measured seconds apart on the same core.
  const double cap_ratio = cap_100k / cap_1k;
  const double trans_ratio = trans_100k / trans_1k;
  const double linear_speedup = cap_linear_10k / cap_100k;
  report.result("match_cost_ratio_100k_over_1k", cap_ratio);
  report.result("translation_cost_ratio_100k_over_1k", trans_ratio);
  report.result("linear_10k_over_indexed_100k", linear_speedup);
  std::printf("# capture match cost ratio 100k/1k: %.2fx (gate: <= 2.0)\n",
              cap_ratio);
  std::printf("# linear@10k / indexed@100k: %.0fx (gate: >= 20)\n",
              linear_speedup);

  // ---- ident: indexed run == reference run, field for field, at n=1000 ----
  std::printf("#\n# Byte-identical gate (n=1000, reference vs indexed)\n");
  bool all_identical = true;
  std::vector<SweepResult> n1000_indexed(strategies.size());
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    const SweepResult ref = run_migration(1'000, strategies[si], /*reference=*/true);
    const SweepResult idx = run_migration(1'000, strategies[si], /*reference=*/false);
    n1000_indexed[si] = idx;
    const bool same = stats_identical(ref.stats, idx.stats);
    all_identical = all_identical && same;
    report.result(std::string("byte_identical_") + strategy_key(strategies[si]) +
                      "_n1000",
                  same ? 1.0 : 0.0);
    std::printf("%-24s %s  (freeze %.3f ms, %llu sock bytes)\n",
                strategy_key(strategies[si]), same ? "identical" : "MISMATCH",
                idx.stats.freeze_time().to_ms(),
                static_cast<unsigned long long>(idx.stats.freeze_socket_bytes));
    if (!same) {
      std::fprintf(stderr,
                   "connection_scale: %s diverged from reference at n=1000\n"
                   "  ref: freeze=%lld ns sock=%llu chan=%llu cap=%llu\n"
                   "  idx: freeze=%lld ns sock=%llu chan=%llu cap=%llu\n",
                   strategy_key(strategies[si]),
                   static_cast<long long>(ref.stats.freeze_time().ns),
                   static_cast<unsigned long long>(ref.stats.freeze_socket_bytes),
                   static_cast<unsigned long long>(ref.stats.freeze_channel_bytes),
                   static_cast<unsigned long long>(ref.stats.captured),
                   static_cast<long long>(idx.stats.freeze_time().ns),
                   static_cast<unsigned long long>(idx.stats.freeze_socket_bytes),
                   static_cast<unsigned long long>(idx.stats.freeze_channel_bytes),
                   static_cast<unsigned long long>(idx.stats.captured));
    }
  }

  // ---- sweep: freeze time/bytes + host cost per connection count ----------
  const std::vector<std::size_t> sweep_counts =
      smoke ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{1'000, 10'000, 50'000, 100'000};
  std::printf("#\n# Migration sweep\n");
  std::printf("%-10s %-14s %12s %16s %10s %10s\n", "conns", "strategy",
              "freeze_ms", "freeze_bytes", "wall_s", "rss_mib");
  for (const std::size_t n : sweep_counts) {
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      // n=1000 indexed runs already happened in the ident phase; reuse them.
      const SweepResult r = n == 1'000
                                ? n1000_indexed[si]
                                : run_migration(n, strategies[si], false);
      std::printf("%-10zu %-14s %12.3f %16llu %10.2f %10.1f\n", n,
                  strategy_key(strategies[si]), r.stats.freeze_time().to_ms(),
                  static_cast<unsigned long long>(r.stats.freeze_socket_bytes),
                  r.wall_s, r.rss_mib);
      std::fflush(stdout);
      const std::string suffix =
          std::string("_") + strategy_key(strategies[si]) + "_n" + std::to_string(n);
      report.result("freeze_ms" + suffix, r.stats.freeze_time().to_ms());
      report.result("freeze_socket_bytes" + suffix,
                    static_cast<double>(r.stats.freeze_socket_bytes));
      report.result("wall_s" + suffix, r.wall_s);
      report.result("rss_mib" + suffix, r.rss_mib);
    }
  }
  report.result("rss_peak_mib", proc_status_mib("VmHWM"));

  report.add_standard_metrics();
  report.write();
  if (!all_identical) return 1;
  if (cap_ratio > 2.0) {
    std::fprintf(stderr,
                 "connection_scale: capture match cost not flat (%.2fx)\n",
                 cap_ratio);
    return 1;
  }
  if (linear_speedup < 20.0) {
    std::fprintf(stderr,
                 "connection_scale: indexed match cost no longer beats the "
                 "linear scan (%.1fx)\n",
                 linear_speedup);
    return 1;
  }
  return 0;
}
