// Figure 4: packet delay due to migration — OpenArena server, 24 clients.
//
// The server updates its clients every 50 ms (20 snapshots/s). We live-migrate
// it mid-game, capture all server->client packets (the tcpdump equivalent is the
// clients' arrival records merged on a global timeline) and print packet number
// vs. time around the migration, exactly like the paper's scatter plot.
//
// Paper reference points: ~20 ms process downtime, ~25 ms delay of the first
// post-migration packet group relative to the expected 50 ms cadence, zero loss.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/client.hpp"
#include "src/dve/game_server.hpp"
#include "src/dve/testbed.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);

  dve::GameServerConfig gs;
  auto proc = dve::GameServerApp::launch(bed.node(0).node, gs);

  std::vector<std::unique_ptr<dve::UdpGameClient>> clients;
  for (int i = 0; i < 24; ++i) {
    auto c = std::make_unique<dve::UdpGameClient>(
        bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
    c->start();
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(3));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(3));
  if (!done || !stats.success) {
    std::fprintf(stderr, "fig4: migration failed\n");
    return 1;
  }

  // Merge all clients' packet arrivals into one ordered timeline.
  std::vector<dve::PacketRecord> all;
  std::size_t missing = 0;
  for (const auto& c : clients) {
    all.insert(all.end(), c->received().begin(), c->received().end());
    missing += c->missing_snapshots();
  }
  std::sort(all.begin(), all.end(),
            [](const dve::PacketRecord& a, const dve::PacketRecord& b) {
              return a.t < b.t;
            });

  // Window: ~125 ms before the freeze to ~150 ms after, relative time axis.
  const SimTime t0 = stats.t_freeze_begin - SimTime::milliseconds(125);
  const SimTime t1 = stats.t_freeze_begin + SimTime::milliseconds(150);

  std::printf("# Figure 4 — packet delay due to migration (OpenArena server, 24 "
              "clients)\n");
  std::printf("# time_ms packet_number node (time relative to window start; "
              "migration freeze begins at 125.0 ms)\n");
  int index = 0;
  SimTime prev{};
  double max_gap_ms = 0;
  bool have_prev = false;
  for (const auto& rec : all) {
    if (rec.t < t0 || rec.t > t1) continue;
    const bool after = rec.t >= stats.t_resume;
    if (have_prev && rec.t - prev > SimTime::milliseconds(1)) {
      const double gap = (rec.t - prev).to_ms();
      max_gap_ms = std::max(max_gap_ms, gap);
    }
    prev = rec.t;
    have_prev = true;
    std::printf("%8.2f %5d %s\n", (rec.t - t0).to_ms(), index++,
                after ? "destination" : "source");
  }

  const double cadence_ms = 50.0;
  std::printf("#\n# process freeze time (downtime) : %.2f ms (paper: ~20 ms)\n",
              stats.freeze_time().to_ms());
  std::printf("# max inter-burst gap            : %.2f ms (regular cadence: %.0f "
              "ms)\n",
              max_gap_ms, cadence_ms);
  std::printf("# delay vs expected transmission : ~%.2f ms (paper: ~25 ms)\n",
              std::max(0.0, max_gap_ms - cadence_ms));
  std::printf("# captured/reinjected during move: %llu/%llu packets\n",
              static_cast<unsigned long long>(stats.captured),
              static_cast<unsigned long long>(stats.reinjected));
  std::printf("# snapshots lost                 : %zu (must be 0)\n", missing);

  obs::BenchReport report("fig4_packet_delay");
  report.add_standard_metrics();
  report.result("downtime_ms", stats.freeze_time().to_ms());
  report.result("max_gap_ms", max_gap_ms);
  report.result("delay_vs_cadence_ms", std::max(0.0, max_gap_ms - cadence_ms));
  report.result("captured", static_cast<double>(stats.captured));
  report.result("reinjected", static_cast<double>(stats.reinjected));
  report.result("snapshots_lost", static_cast<double>(missing));
  report.note("strategy", mig::strategy_name(stats.strategy));
  report.write();
  return missing == 0 ? 0 : 1;
}
