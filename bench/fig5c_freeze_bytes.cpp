// Figure 5c: worst-case socket data transferred during the freeze phase vs.
// number of TCP connections.
//
// Paper reference points: iterative and collective ship the full per-connection
// kernel state (~3.5 MB at 1024 connections — iterative == collective by
// construction); incremental collective ships only the changes, roughly an
// order of magnitude less.
//
// Usage: fig5c_freeze_bytes [reps] [max_connections]
// (max_connections truncates the sweep — the CI smoke run uses 64.)
#include <cstdint>
#include <cstdio>
#include <string>

#include "freeze_sweep.hpp"
#include "src/common/cli.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;
using namespace dvemig::bench;

namespace {
std::string human(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%.2fMB", static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.1fkB", static_cast<double>(bytes) / 1024);
  }
  return buf;
}
}  // namespace

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::size_t max_n =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : SIZE_MAX;

  std::printf("# Figure 5c — socket bytes transferred during the freeze phase\n");
  std::printf("# (iterative/collective = full dumps; incremental = deltas only)\n");
  std::printf("%-12s %14s %14s %24s %12s\n", "connections", "iterative",
              "collective", "incremental-collective", "incr/full");

  obs::BenchReport report("fig5c_freeze_bytes");
  report.result("reps", reps);
  for (const std::size_t n : sweep_connection_counts()) {
    if (n > max_n) continue;
    const SweepPoint it =
        run_sweep_point(n, mig::SocketMigStrategy::iterative, reps);
    const SweepPoint co =
        run_sweep_point(n, mig::SocketMigStrategy::collective, reps);
    const SweepPoint inc =
        run_sweep_point(n, mig::SocketMigStrategy::incremental_collective, reps);
    const double ratio =
        static_cast<double>(inc.worst_freeze_socket_bytes) /
        static_cast<double>(std::max<std::uint64_t>(1, co.worst_freeze_socket_bytes));
    std::printf("%-12zu %14s %14s %24s %11.1f%%\n", n,
                human(it.worst_freeze_socket_bytes).c_str(),
                human(co.worst_freeze_socket_bytes).c_str(),
                human(inc.worst_freeze_socket_bytes).c_str(), 100.0 * ratio);
    std::fflush(stdout);
    const std::string suffix = "_n" + std::to_string(n);
    report.result("socket_bytes_iterative" + suffix,
                  static_cast<double>(it.worst_freeze_socket_bytes));
    report.result("socket_bytes_collective" + suffix,
                  static_cast<double>(co.worst_freeze_socket_bytes));
    report.result("socket_bytes_incremental" + suffix,
                  static_cast<double>(inc.worst_freeze_socket_bytes));
    report.result("incr_over_full_ratio" + suffix, ratio);
  }
  report.add_standard_metrics();
  report.write();

  std::printf("#\n# paper: ~3.5MB at 1024 connections for iterative/collective; "
              "incremental is ~an order of magnitude smaller\n");
  return 0;
}
