// Figure 5c: worst-case socket data transferred during the freeze phase vs.
// number of TCP connections.
//
// Paper reference points: iterative and collective ship the full per-connection
// kernel state (~3.5 MB at 1024 connections — iterative == collective by
// construction); incremental collective ships only the changes, roughly an
// order of magnitude less.
#include <cstdio>

#include "freeze_sweep.hpp"

using namespace dvemig;
using namespace dvemig::bench;

namespace {
std::string human(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof buf, "%.2fMB", static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof buf, "%.1fkB", static_cast<double>(bytes) / 1024);
  }
  return buf;
}
}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2;

  std::printf("# Figure 5c — socket bytes transferred during the freeze phase\n");
  std::printf("# (iterative/collective = full dumps; incremental = deltas only)\n");
  std::printf("%-12s %14s %14s %24s %12s\n", "connections", "iterative",
              "collective", "incremental-collective", "incr/full");

  for (const std::size_t n : sweep_connection_counts()) {
    const SweepPoint it =
        run_sweep_point(n, mig::SocketMigStrategy::iterative, reps);
    const SweepPoint co =
        run_sweep_point(n, mig::SocketMigStrategy::collective, reps);
    const SweepPoint inc =
        run_sweep_point(n, mig::SocketMigStrategy::incremental_collective, reps);
    const double ratio =
        static_cast<double>(inc.worst_freeze_socket_bytes) /
        static_cast<double>(std::max<std::uint64_t>(1, co.worst_freeze_socket_bytes));
    std::printf("%-12zu %14s %14s %24s %11.1f%%\n", n,
                human(it.worst_freeze_socket_bytes).c_str(),
                human(co.worst_freeze_socket_bytes).c_str(),
                human(inc.worst_freeze_socket_bytes).c_str(), 100.0 * ratio);
    std::fflush(stdout);
  }

  std::printf("#\n# paper: ~3.5MB at 1024 connections for iterative/collective; "
              "incremental is ~an order of magnitude smaller\n");
  return 0;
}
