// Figures 5a/5d/5e/5f: the full DVE load-balancing simulation.
//
//  5a — initial 10x10 zone partitioning and movement directions (printed);
//  5e — per-node CPU over time, load balancing DISABLED: the corner nodes
//       (node1, node5) saturate >95 % while the middle nodes fall below ~65 %;
//  5f — per-node CPU over time, load balancing ENABLED: spread stays tight;
//  5d — zone-server process count per node over time with balancing enabled
//       (node1/node5 shed processes; node3/node4 absorb them).
//
// Setup mirrors Section VI-C: 5 DVE nodes x 20 zone servers, 10,000 clients
// uniformly distributed, 20 updates/s x 256 B workload characteristics, one
// MySQL session per zone server, clients from the middle rows drifting toward
// the up-left and down-right corners over ~15 minutes.
//
//   fig5def_dve_loadbalance [clients] [duration_s]
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

namespace {

constexpr std::uint32_t kNodes = 5;

struct Sample {
  double t_s{0};
  std::array<double, kNodes> cpu{};
  std::array<int, kNodes> procs{};
};

struct SimResult {
  std::vector<Sample> samples;
  std::uint64_t migrations{0};
  std::uint64_t handoffs{0};
  double worst_freeze_ms{0};
};

SimResult run_dve(bool lb_enabled, std::uint32_t clients, std::int64_t duration_s) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = kNodes;
  dve::Testbed bed(cfg);
  dve::ZoneGrid grid;

  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (const dve::ZoneId z : grid.zones_of_node(n, kNodes)) {
      dve::ZoneServerConfig zs;
      zs.zone = z;
      zs.base_cores = 0.010;
      zs.per_client_cores = 0.0007;
      zs.db_addr = bed.db_node()->local_addr();
      dve::ZoneServerApp::launch(bed.node(n).node, zs);
    }
  }

  dve::PopulationConfig pc;
  pc.client_count = clients;
  pc.move_start = SimTime::seconds(60);
  pc.move_end = SimTime::seconds(duration_s * 4 / 5);
  pc.move_step_prob = 0.08;
  dve::Population pop(bed, grid, pc);
  pop.populate();
  pop.start_movement();

  SimResult result;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    bed.node(n).conductor.set_enabled(lb_enabled);
    bed.node(n).conductor.set_on_migration([&](const mig::MigrationStats& s) {
      if (!s.success) return;
      result.migrations += 1;
      result.worst_freeze_ms =
          std::max(result.worst_freeze_ms, s.freeze_time().to_ms());
      std::fprintf(stderr,
                   "# t=%7.1fs migrated %-10s %s -> %s (%d rounds, freeze %.2f ms, "
                   "%llu sockets)\n",
                   s.t_resume.to_sec(), s.proc_name.c_str(),
                   s.src_node.to_string().c_str(), s.dst_node.to_string().c_str(),
                   s.precopy_rounds, s.freeze_time().to_ms(),
                   static_cast<unsigned long long>(s.socket_count));
    });
  }

  for (std::int64_t t = 10; t <= duration_s; t += 10) {
    bed.run_until(SimTime::seconds(t));
    Sample sample;
    sample.t_s = static_cast<double>(t);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      sample.cpu[n] = bed.node(n).node.cpu().node_utilization() * 100.0;
      sample.procs[n] = static_cast<int>(bed.node(n).node.processes().size());
    }
    result.samples.push_back(sample);
  }
  result.handoffs = pop.zone_handoffs();

  if (pop.total_resets() != 0) {
    std::fprintf(stderr, "# WARNING: %llu client connections were reset\n",
                 static_cast<unsigned long long>(pop.total_resets()));
  }
  return result;
}

void print_cpu_series(const char* title, const SimResult& result) {
  std::printf("\n# %s\n", title);
  std::printf("%-8s %8s %8s %8s %8s %8s\n", "time_s", "node1", "node2", "node3",
              "node4", "node5");
  for (const Sample& s : result.samples) {
    std::printf("%-8.0f %8.1f %8.1f %8.1f %8.1f %8.1f\n", s.t_s, s.cpu[0], s.cpu[1],
                s.cpu[2], s.cpu[3], s.cpu[4]);
  }
}

void print_proc_series(const char* title, const SimResult& result) {
  std::printf("\n# %s\n", title);
  std::printf("%-8s %8s %8s %8s %8s %8s\n", "time_s", "node1", "node2", "node3",
              "node4", "node5");
  for (const Sample& s : result.samples) {
    std::printf("%-8.0f %8d %8d %8d %8d %8d\n", s.t_s, s.procs[0], s.procs[1],
                s.procs[2], s.procs[3], s.procs[4]);
  }
}

void print_fig5a() {
  dve::ZoneGrid grid;
  std::printf("# Figure 5a — initial virtual-space partitioning (10x10 zones, "
              "2 rows per node) and client drift directions\n");
  for (std::uint32_t r = 0; r < grid.rows(); ++r) {
    std::printf("#  ");
    for (std::uint32_t c = 0; c < grid.cols(); ++c) {
      std::printf("n%u ", grid.initial_node_of(grid.zone_at(r, c), kNodes) + 1);
    }
    if (r == 1) std::printf("  <- up-left corner region: upper-middle clients drift here");
    if (r == 8) std::printf("  <- down-right corner region: lower-middle clients drift here");
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  const std::uint32_t clients =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 10000;
  const std::int64_t duration = argc > 2 ? std::atoi(argv[2]) : 900;

  std::printf("# DVE load-balancing simulation: %u nodes, 100 zone servers, %u "
              "clients, %llds\n",
              kNodes, clients, static_cast<long long>(duration));
  print_fig5a();

  std::fprintf(stderr, "# running with load balancing DISABLED...\n");
  const SimResult off = run_dve(false, clients, duration);
  print_cpu_series(
      "Figure 5e — CPU consumption per node WITHOUT load balancing (%)", off);

  std::fprintf(stderr, "# running with load balancing ENABLED...\n");
  const SimResult on = run_dve(true, clients, duration);
  print_cpu_series(
      "Figure 5f — CPU consumption per node WITH load balancing (%)", on);
  print_proc_series(
      "Figure 5d — zone-server processes per node WITH load balancing", on);

  std::printf("\n# summary: %llu live migrations (worst freeze %.2f ms), %llu "
              "client zone handoffs\n",
              static_cast<unsigned long long>(on.migrations), on.worst_freeze_ms,
              static_cast<unsigned long long>(on.handoffs));
  std::printf("# paper: without LB node1/node5 exceed 95%% CPU while node3/node4 "
              "fall below ~65%%; with LB the spread stays much tighter\n");

  // CPU spread at the final sample: the figure's "tightness" as one scalar.
  auto final_spread = [](const SimResult& r) {
    if (r.samples.empty()) return 0.0;
    const auto& cpu = r.samples.back().cpu;
    const auto [lo, hi] = std::minmax_element(cpu.begin(), cpu.end());
    return *hi - *lo;
  };
  obs::BenchReport report("fig5def_dve_loadbalance");
  report.add_standard_metrics();
  report.result("clients", clients);
  report.result("duration_s", static_cast<double>(duration));
  report.result("migrations", static_cast<double>(on.migrations));
  report.result("worst_freeze_ms", on.worst_freeze_ms);
  report.result("zone_handoffs", static_cast<double>(on.handoffs));
  report.result("cpu_spread_final_lb_off_pct", final_spread(off));
  report.result("cpu_spread_final_lb_on_pct", final_spread(on));
  report.write();
  return 0;
}
