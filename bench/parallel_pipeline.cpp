// Parallel pipelined migration data path: precopy wall-clock and freeze time
// vs. parallelism degree on a large-image zone server (PMigrate-style
// worker-pool sharding + multi-stream striped transfer over a 4-rail cluster
// link).
//
// Expected shape: precopy wall-clock drops roughly with min(degree, rails)
// while freeze time does not regress — the pipeline parallelises the bulk
// transfer, not the freeze-phase handshakes.
//
// Usage: parallel_pipeline [smoke]
//   smoke — CI-sized run: 16 MiB heap, degrees {1,4} only.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

namespace {

struct DegreePoint {
  int degree{1};
  double precopy_ms{0};
  double freeze_ms{0};
  double total_ms{0};
  std::uint64_t precopy_bytes{0};
  std::uint64_t freeze_bytes{0};
};

DegreePoint run_degree(int degree, std::uint64_t heap_bytes,
                       std::int64_t initial_loop_timeout_ns) {
  mig::CostModel cm;
  cm.initial_loop_timeout_ns = initial_loop_timeout_ns;

  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.with_db = false;
  cfg.start_conductors = false;
  cfg.cost_model = cm;
  // Bonded cluster links: one TCP stream saturates a single 1 Gb/s rail, so
  // the parallel speedup needs independent rails to stripe across.
  cfg.cluster_link.rails = 4;
  dve::Testbed bed(cfg);

  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.use_db = false;
  zs.active_updates = true;
  zs.heap_bytes = heap_bytes;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  dve::TcpDveClient client(bed.make_client_host(), bed.public_ip());
  client.connect_to_zone(1);
  client.set_active(SimTime::milliseconds(50), 48);
  bed.run_for(SimTime::milliseconds(400));

  mig::MigrateOptions opts;
  opts.strategy = mig::SocketMigStrategy::incremental_collective;
  opts.live = true;
  opts.config.parallelism = degree;

  mig::MigrationStats stats;
  bool done = false;
  if (!bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                                opts, [&](const mig::MigrationStats& s) {
                                  stats = s;
                                  done = true;
                                })) {
    std::fprintf(stderr, "parallel_pipeline: migd busy\n");
    std::abort();
  }
  bed.run_for(SimTime::seconds(30));
  if (!done || !stats.success) {
    std::fprintf(stderr, "parallel_pipeline: migration failed at degree %d\n",
                 degree);
    std::abort();
  }

  DegreePoint p;
  p.degree = degree;
  p.precopy_ms = (stats.t_freeze_begin - stats.t_start).to_ms();
  p.freeze_ms = stats.freeze_time().to_ms();
  p.total_ms = stats.total_time().to_ms();
  p.precopy_bytes = stats.precopy_channel_bytes;
  p.freeze_bytes = stats.freeze_channel_bytes;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;

  const std::uint64_t heap_bytes = smoke ? (16ull << 20) : (96ull << 20);
  const std::int64_t loop_timeout_ns = smoke ? 20'000'000 : 80'000'000;
  const std::vector<int> degrees =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  std::printf("# Parallel pipelined data path — precopy/freeze vs degree "
              "(%llu MiB heap, 4-rail GbE)\n",
              static_cast<unsigned long long>(heap_bytes >> 20));
  std::printf("%-8s %14s %12s %12s %16s\n", "degree", "precopy_ms", "freeze_ms",
              "total_ms", "precopy_bytes");

  obs::BenchReport report("parallel_pipeline");
  report.note("workload", smoke ? "smoke" : "full");
  report.result("heap_mib", static_cast<double>(heap_bytes >> 20));
  report.result("rails", 4);

  double precopy_deg1 = 0;
  double precopy_deg4 = 0;
  for (const int degree : degrees) {
    const DegreePoint p = run_degree(degree, heap_bytes, loop_timeout_ns);
    std::printf("%-8d %14.2f %12.2f %12.2f %16llu\n", p.degree, p.precopy_ms,
                p.freeze_ms, p.total_ms,
                static_cast<unsigned long long>(p.precopy_bytes));
    std::fflush(stdout);
    const std::string suffix = "_deg" + std::to_string(degree);
    report.result("precopy_ms" + suffix, p.precopy_ms);
    report.result("freeze_ms" + suffix, p.freeze_ms);
    report.result("total_ms" + suffix, p.total_ms);
    report.result("precopy_bytes" + suffix, static_cast<double>(p.precopy_bytes));
    report.result("freeze_bytes" + suffix, static_cast<double>(p.freeze_bytes));
    if (degree == 1) precopy_deg1 = p.precopy_ms;
    if (degree == 4) precopy_deg4 = p.precopy_ms;
  }
  if (precopy_deg1 > 0 && precopy_deg4 > 0) {
    report.result("precopy_speedup_deg4", precopy_deg1 / precopy_deg4);
    std::printf("#\n# precopy speedup at degree 4: %.2fx\n",
                precopy_deg1 / precopy_deg4);
  }
  report.add_standard_metrics();
  report.write();
  return 0;
}
