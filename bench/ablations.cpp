// Ablation benchmarks for the design choices DESIGN.md calls out.
//
// Each row disables one mechanism of the migration pipeline and reports what
// breaks, quantitatively:
//
//   precopy (vs stop-and-copy)  — downtime explodes with the address-space size;
//   packet-loss prevention      — (conceptually) client packets during the freeze
//                                 are dropped instead of captured; measured via
//                                 captured counts and client-visible loss;
//   TCP timestamp adjustment    — PAWS at the peers discards everything the
//                                 migrated server sends: update stream stalls;
//   dst-cache replacement       — the DB session's responses are steered to the
//                                 old node: session stalls.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/client.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

namespace {

struct RunResult {
  mig::MigrationStats stats;
  std::uint64_t updates_after{0};   // client updates delivered in 3 s post-move
  std::uint64_t db_after{0};        // DB responses in 3 s post-move
};

RunResult run_case(bool live, bool adjust_timestamps, bool fix_dst_cache,
                   std::uint64_t heap_bytes) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  dve::Testbed bed(cfg);
  bed.node(1).migd.set_adjust_timestamps(adjust_timestamps);
  bed.db_transd().set_fix_dst_cache(fix_dst_cache);

  dve::ZoneServerConfig zs;
  zs.zone = 5;
  zs.active_updates = true;
  zs.heap_bytes = heap_bytes;
  zs.db_addr = bed.db_node()->local_addr();
  zs.db_update_period = SimTime::milliseconds(100);
  // Migrate node3 -> node2: the destination's jiffies lag the source's, the
  // worst case for unadjusted timestamps.
  auto proc = dve::ZoneServerApp::launch(bed.node(2).node, zs);

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < 8; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->set_active(SimTime::milliseconds(50), 48);
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(2));

  RunResult result;
  bool done = false;
  bed.node(2).migd.migrate(
      proc->pid(), bed.node(1).node.local_addr(),
      mig::MigrateOptions{mig::SocketMigStrategy::incremental_collective, live},
      [&](const mig::MigrationStats& s) {
        result.stats = s;
        done = true;
      });
  bed.run_for(SimTime::seconds(4));
  if (!done || !result.stats.success) {
    std::fprintf(stderr, "ablation run failed\n");
    std::abort();
  }

  std::uint64_t updates_at_move = 0;
  for (const auto& c : clients) updates_at_move += c->updates_received();
  auto moved = bed.node(1).node.find(proc->pid());
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  const std::uint64_t db_at_move = app->db_responses();

  bed.run_for(SimTime::seconds(3));
  for (const auto& c : clients) result.updates_after += c->updates_received();
  result.updates_after -= updates_at_move;
  result.db_after = app->db_responses() - db_at_move;
  return result;
}

void print_row(const char* name, const RunResult& r) {
  std::printf("%-28s %14.2f %16llu %16llu %12llu\n", name,
              r.stats.freeze_time().to_ms(),
              static_cast<unsigned long long>(r.updates_after),
              static_cast<unsigned long long>(r.db_after),
              static_cast<unsigned long long>(r.stats.captured));
}

}  // namespace

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  // "smoke" skips the heap sweep — the CI smoke job runs only the four rows.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  constexpr std::uint64_t kHeap = 12ull << 20;

  std::printf("# Ablations — zone server, 8 active clients + MySQL session, "
              "12 MiB heap\n");
  std::printf("# healthy post-migration: ~480 client updates and ~30 DB responses "
              "in 3 s\n");
  std::printf("%-28s %14s %16s %16s %12s\n", "configuration", "downtime_ms",
              "updates_in_3s", "db_resp_in_3s", "captured");

  obs::BenchReport report("ablations");
  auto record = [&report](const char* key, const RunResult& r) {
    const std::string k = key;
    report.result(k + "_downtime_ms", r.stats.freeze_time().to_ms());
    report.result(k + "_updates_in_3s", static_cast<double>(r.updates_after));
    report.result(k + "_db_resp_in_3s", static_cast<double>(r.db_after));
    report.result(k + "_captured", static_cast<double>(r.stats.captured));
  };

  const RunResult full = run_case(true, true, true, kHeap);
  print_row("full mechanism", full);
  record("full", full);
  const RunResult stopcopy = run_case(false, true, true, kHeap);
  print_row("no precopy (stop-and-copy)", stopcopy);
  record("no_precopy", stopcopy);
  const RunResult no_ts = run_case(true, false, true, kHeap);
  print_row("no timestamp adjustment", no_ts);
  record("no_ts_adjust", no_ts);
  const RunResult no_cache = run_case(true, true, false, kHeap);
  print_row("no dst-cache replacement", no_cache);
  record("no_dst_cache", no_cache);

  if (!smoke) {
    std::printf("\n# stop-and-copy downtime scales with the address space "
                "(live migration's does not):\n");
    std::printf("%-12s %18s %18s\n", "heap_MiB", "live_downtime_ms",
                "stopcopy_downtime_ms");
    for (const std::uint64_t mib : {4ull, 12ull, 32ull, 64ull}) {
      const RunResult live = run_case(true, true, true, mib << 20);
      const RunResult cold = run_case(false, true, true, mib << 20);
      std::printf("%-12llu %18.2f %18.2f\n", static_cast<unsigned long long>(mib),
                  live.stats.freeze_time().to_ms(), cold.stats.freeze_time().to_ms());
      const std::string suffix = "_heap" + std::to_string(mib) + "MiB";
      report.result("live_downtime_ms" + suffix, live.stats.freeze_time().to_ms());
      report.result("stopcopy_downtime_ms" + suffix,
                    cold.stats.freeze_time().to_ms());
    }
  }
  report.add_standard_metrics();
  report.write();
  return 0;
}
