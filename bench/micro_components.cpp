// Microbenchmarks (google-benchmark) for the building blocks whose costs the
// cost model abstracts on the simulated timeline — these measure the *host*
// implementation itself: serialization, hashing, checksums, dirty tracking,
// socket extraction/delta checks, and raw event-engine throughput.
#include <benchmark/benchmark.h>

#include "src/ckpt/dirty_tracker.hpp"
#include "src/ckpt/image.hpp"
#include "src/mig/delta_tracker.hpp"
#include "src/mig/socket_image.hpp"
#include "src/net/checksum.hpp"
#include "src/net/switch.hpp"
#include "src/proc/node.hpp"

namespace dvemig {
namespace {

void BM_BinaryWriterThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Buffer chunk(4096, 0x5A);
  for (auto _ : state) {
    BinaryWriter w;
    for (std::size_t i = 0; i < n / 4096; ++i) w.bytes(chunk);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BinaryWriterThroughput)->Arg(64 << 10)->Arg(1 << 20);

void BM_Fnv1a(benchmark::State& state) {
  const Buffer data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv1a(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(1 << 10)->Arg(64 << 10);

void BM_InternetChecksum(benchmark::State& state) {
  const Buffer data(static_cast<std::size_t>(state.range(0)), 0x37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(1500);

void BM_PacketChecksumFinalize(benchmark::State& state) {
  for (auto _ : state) {
    net::Packet p = net::make_udp({net::Ipv4Addr::octets(1, 1, 1, 1), 1},
                                  {net::Ipv4Addr::octets(2, 2, 2, 2), 2},
                                  Buffer(256, 0x11));
    benchmark::DoNotOptimize(p.checksum);
  }
}
BENCHMARK(BM_PacketChecksumFinalize);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(SimTime::nanoseconds(i), [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_DirtyTrackerRound(benchmark::State& state) {
  proc::AddressSpace mem;
  mem.mmap(static_cast<std::uint64_t>(state.range(0)) * proc::kPageSize,
           proc::prot_read | proc::prot_write, "[heap]");
  ckpt::DirtyTracker tracker;
  (void)tracker.round(mem);
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    mem.touch_random(rng, 128);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracker.round(mem));
  }
}
BENCHMARK(BM_DirtyTrackerRound)->Arg(4096);

struct TcpPairFixture {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{}};
  stack::NetStack a{engine, "a", SimTime::seconds(1)};
  stack::NetStack b{engine, "b", SimTime::seconds(2)};
  stack::TcpSocket::Ptr client;
  stack::TcpSocket::Ptr server;

  TcpPairFixture() {
    const auto addr_a = net::Ipv4Addr::octets(10, 0, 0, 1);
    const auto addr_b = net::Ipv4Addr::octets(10, 0, 0, 2);
    a.add_interface(addr_a,
                    sw.attach(addr_a, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(addr_b,
                    sw.attach(addr_b, [this](net::Packet p) { b.rx(std::move(p)); }));
    auto listener = b.make_tcp();
    listener->bind(addr_b, 9000);
    listener->listen(4);
    client = a.make_tcp();
    client->connect(net::Endpoint{addr_b, 9000});
    engine.run();
    server = listener->accept();
    client->send(Buffer(2048, 7));
    engine.run();
  }
};

void BM_TcpExtractFull(benchmark::State& state) {
  TcpPairFixture fx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::extract_tcp(*fx.server, 4));
  }
}
BENCHMARK(BM_TcpExtractFull);

void BM_TcpDeltaCheckUnchanged(benchmark::State& state) {
  TcpPairFixture fx;
  mig::SocketDeltaTracker tracker;
  BinaryWriter warmup;
  (void)tracker.emit_tcp(mig::extract_tcp(*fx.server, 4), warmup, false);
  for (auto _ : state) {
    BinaryWriter out;
    benchmark::DoNotOptimize(
        tracker.emit_tcp(mig::extract_tcp(*fx.server, 4), out, false));
  }
}
BENCHMARK(BM_TcpDeltaCheckUnchanged);

void BM_SimulatedTcpBulkTransfer(benchmark::State& state) {
  // Host-side cost of simulating a 1 MiB TCP transfer end to end.
  for (auto _ : state) {
    TcpPairFixture fx;
    fx.server->set_on_readable([srv = fx.server.get()] { (void)srv->read(); });
    fx.client->send(Buffer(1 << 20, 3));
    fx.engine.run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_SimulatedTcpBulkTransfer);

void BM_ProcessImageSerialize(benchmark::State& state) {
  sim::Engine engine;
  proc::NodeConfig nc;
  nc.id = NodeId{1};
  nc.name = "n";
  nc.public_addr = net::Ipv4Addr::octets(1, 1, 1, 1);
  nc.local_addr = net::Ipv4Addr::octets(10, 0, 0, 1);
  proc::Node node(engine, nc);
  auto proc = node.spawn("bench");
  proc->mem().mmap(12ull << 20, proc::prot_read | proc::prot_write, "[heap]");
  for (int i = 0; i < 8; ++i) proc->add_thread();
  for (int i = 0; i < 16; ++i) proc->files().open_file("/f" + std::to_string(i));
  const ckpt::ProcessImage img = ckpt::snapshot_process(*proc);
  for (auto _ : state) {
    BinaryWriter w;
    img.serialize(w);
    benchmark::DoNotOptimize(w.buffer().data());
  }
}
BENCHMARK(BM_ProcessImageSerialize);

}  // namespace
}  // namespace dvemig

BENCHMARK_MAIN();
