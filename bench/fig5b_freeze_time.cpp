// Figure 5b: worst-case process freeze time vs. number of TCP connections for
// iterative, collective and incremental collective socket migration.
//
// Paper reference points (5-node Opteron cluster, GbE): iterative grows steeply
// and roughly linearly with the transferred bytes; collective flattens it;
// incremental collective keeps >1000 connections under 40 ms.
#include <cstdio>

#include "freeze_sweep.hpp"

using namespace dvemig;
using namespace dvemig::bench;

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2;

  std::printf("# Figure 5b — worst-case process freeze time (ms) vs TCP connections\n");
  std::printf("# each process also maintains one MySQL session; %d repetition(s), "
              "worst case reported\n",
              reps);
  std::printf("%-12s %14s %14s %24s\n", "connections", "iterative", "collective",
              "incremental-collective");

  for (const std::size_t n : sweep_connection_counts()) {
    const SweepPoint it =
        run_sweep_point(n, mig::SocketMigStrategy::iterative, reps);
    const SweepPoint co =
        run_sweep_point(n, mig::SocketMigStrategy::collective, reps);
    const SweepPoint inc =
        run_sweep_point(n, mig::SocketMigStrategy::incremental_collective, reps);
    std::printf("%-12zu %14.2f %14.2f %24.2f\n", n, it.worst_freeze_ms,
                co.worst_freeze_ms, inc.worst_freeze_ms);
    std::fflush(stdout);
  }

  std::printf("#\n# paper: incremental collective stays below 40 ms even beyond "
              "1000 connections\n");
  return 0;
}
