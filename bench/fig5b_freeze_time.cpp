// Figure 5b: worst-case process freeze time vs. number of TCP connections for
// iterative, collective and incremental collective socket migration.
//
// Paper reference points (5-node Opteron cluster, GbE): iterative grows steeply
// and roughly linearly with the transferred bytes; collective flattens it;
// incremental collective keeps >1000 connections under 40 ms.
//
// Usage: fig5b_freeze_time [reps] [max_connections]
// (max_connections truncates the sweep — the CI smoke run uses 64.)
#include <cstdint>
#include <cstdio>
#include <string>

#include "freeze_sweep.hpp"
#include "src/common/cli.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;
using namespace dvemig::bench;

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  const int reps = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::size_t max_n =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : SIZE_MAX;

  std::printf("# Figure 5b — worst-case process freeze time (ms) vs TCP connections\n");
  std::printf("# each process also maintains one MySQL session; %d repetition(s), "
              "worst case reported\n",
              reps);
  std::printf("%-12s %14s %14s %24s\n", "connections", "iterative", "collective",
              "incremental-collective");

  obs::BenchReport report("fig5b_freeze_time");
  report.result("reps", reps);
  for (const std::size_t n : sweep_connection_counts()) {
    if (n > max_n) continue;
    const SweepPoint it =
        run_sweep_point(n, mig::SocketMigStrategy::iterative, reps);
    const SweepPoint co =
        run_sweep_point(n, mig::SocketMigStrategy::collective, reps);
    const SweepPoint inc =
        run_sweep_point(n, mig::SocketMigStrategy::incremental_collective, reps);
    std::printf("%-12zu %14.2f %14.2f %24.2f\n", n, it.worst_freeze_ms,
                co.worst_freeze_ms, inc.worst_freeze_ms);
    std::fflush(stdout);
    const std::string suffix = "_n" + std::to_string(n);
    report.result("freeze_ms_iterative" + suffix, it.worst_freeze_ms);
    report.result("freeze_ms_collective" + suffix, co.worst_freeze_ms);
    report.result("freeze_ms_incremental" + suffix, inc.worst_freeze_ms);
  }
  report.add_standard_metrics();
  report.write();

  std::printf("#\n# paper: incremental collective stays below 40 ms even beyond "
              "1000 connections\n");
  return 0;
}
