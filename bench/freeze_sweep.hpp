// Shared harness for the Fig. 5b / 5c sweeps: live-migrate a zone-server-like
// process holding N active client TCP connections (plus one MySQL session) and
// record worst-case freeze time and freeze-phase socket bytes per strategy.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig::bench {

struct SweepPoint {
  std::size_t connections{0};
  mig::SocketMigStrategy strategy{};
  double worst_freeze_ms{0};
  std::uint64_t worst_freeze_socket_bytes{0};
  std::uint64_t captured{0};
};

inline const std::vector<std::size_t>& sweep_connection_counts() {
  static const std::vector<std::size_t> counts{16, 32, 64, 128, 256, 512, 1024};
  return counts;
}

/// One migration run: returns the stats. Fresh testbed per run, `rep` varies the
/// traffic phase so "worst case over repetitions" is meaningful.
inline mig::MigrationStats run_freeze_case(std::size_t connections,
                                           mig::SocketMigStrategy strategy,
                                           int rep) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);

  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.active_updates = true;
  zs.db_addr = bed.db_node()->local_addr();
  zs.per_client_cores = 0.0002;  // keep the node itself unsaturated at N=1024
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->set_active(SimTime::milliseconds(50), 48);
    clients.push_back(std::move(c));
  }
  // Ramped connects; phase shifted per repetition.
  for (std::size_t i = 0; i < connections; ++i) {
    const SimDuration when =
        SimTime::microseconds(500 * static_cast<std::int64_t>(i) + 137 * rep);
    bed.engine().schedule_after(when, [&clients, i, &zs] {
      clients[i]->connect_to_zone(zs.zone);
    });
  }
  bed.run_for(SimTime::seconds(2) + SimTime::milliseconds(17 * rep));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(), strategy,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(8));
  if (!done || !stats.success) {
    std::fprintf(stderr, "freeze sweep: migration failed (n=%zu, %s)\n",
                 connections, mig::strategy_name(strategy));
    std::abort();
  }
  return stats;
}

inline SweepPoint run_sweep_point(std::size_t connections,
                                  mig::SocketMigStrategy strategy, int reps) {
  SweepPoint point;
  point.connections = connections;
  point.strategy = strategy;
  for (int rep = 0; rep < reps; ++rep) {
    const mig::MigrationStats stats = run_freeze_case(connections, strategy, rep);
    point.worst_freeze_ms =
        std::max(point.worst_freeze_ms, stats.freeze_time().to_ms());
    point.worst_freeze_socket_bytes =
        std::max(point.worst_freeze_socket_bytes, stats.freeze_socket_bytes);
    point.captured += stats.captured;
  }
  return point;
}

}  // namespace dvemig::bench
