file(REMOVE_RECURSE
  "CMakeFiles/dvemig_sim.dir/engine.cpp.o"
  "CMakeFiles/dvemig_sim.dir/engine.cpp.o.d"
  "libdvemig_sim.a"
  "libdvemig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
