file(REMOVE_RECURSE
  "libdvemig_sim.a"
)
