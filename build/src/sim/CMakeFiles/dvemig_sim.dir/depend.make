# Empty dependencies file for dvemig_sim.
# This may be replaced when dependencies are built.
