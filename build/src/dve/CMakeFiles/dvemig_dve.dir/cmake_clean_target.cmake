file(REMOVE_RECURSE
  "libdvemig_dve.a"
)
