file(REMOVE_RECURSE
  "CMakeFiles/dvemig_dve.dir/client.cpp.o"
  "CMakeFiles/dvemig_dve.dir/client.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/database.cpp.o"
  "CMakeFiles/dvemig_dve.dir/database.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/game_server.cpp.o"
  "CMakeFiles/dvemig_dve.dir/game_server.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/population.cpp.o"
  "CMakeFiles/dvemig_dve.dir/population.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/testbed.cpp.o"
  "CMakeFiles/dvemig_dve.dir/testbed.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/zone.cpp.o"
  "CMakeFiles/dvemig_dve.dir/zone.cpp.o.d"
  "CMakeFiles/dvemig_dve.dir/zone_server.cpp.o"
  "CMakeFiles/dvemig_dve.dir/zone_server.cpp.o.d"
  "libdvemig_dve.a"
  "libdvemig_dve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_dve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
