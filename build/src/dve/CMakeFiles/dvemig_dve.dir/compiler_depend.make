# Empty compiler generated dependencies file for dvemig_dve.
# This may be replaced when dependencies are built.
