# Empty dependencies file for dvemig_ckpt.
# This may be replaced when dependencies are built.
