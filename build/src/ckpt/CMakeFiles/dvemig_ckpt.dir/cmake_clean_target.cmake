file(REMOVE_RECURSE
  "libdvemig_ckpt.a"
)
