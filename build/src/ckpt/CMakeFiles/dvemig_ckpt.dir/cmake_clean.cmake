file(REMOVE_RECURSE
  "CMakeFiles/dvemig_ckpt.dir/dirty_tracker.cpp.o"
  "CMakeFiles/dvemig_ckpt.dir/dirty_tracker.cpp.o.d"
  "CMakeFiles/dvemig_ckpt.dir/image.cpp.o"
  "CMakeFiles/dvemig_ckpt.dir/image.cpp.o.d"
  "CMakeFiles/dvemig_ckpt.dir/restore.cpp.o"
  "CMakeFiles/dvemig_ckpt.dir/restore.cpp.o.d"
  "libdvemig_ckpt.a"
  "libdvemig_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
