# Empty compiler generated dependencies file for dvemig_common.
# This may be replaced when dependencies are built.
