file(REMOVE_RECURSE
  "libdvemig_common.a"
)
