file(REMOVE_RECURSE
  "CMakeFiles/dvemig_common.dir/log.cpp.o"
  "CMakeFiles/dvemig_common.dir/log.cpp.o.d"
  "CMakeFiles/dvemig_common.dir/serial.cpp.o"
  "CMakeFiles/dvemig_common.dir/serial.cpp.o.d"
  "libdvemig_common.a"
  "libdvemig_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
