
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/app_logic.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/app_logic.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/app_logic.cpp.o.d"
  "/root/repo/src/proc/cpu_meter.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/cpu_meter.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/cpu_meter.cpp.o.d"
  "/root/repo/src/proc/file_table.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/file_table.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/file_table.cpp.o.d"
  "/root/repo/src/proc/memory.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/memory.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/memory.cpp.o.d"
  "/root/repo/src/proc/node.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/node.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/node.cpp.o.d"
  "/root/repo/src/proc/process.cpp" "src/proc/CMakeFiles/dvemig_proc.dir/process.cpp.o" "gcc" "src/proc/CMakeFiles/dvemig_proc.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/dvemig_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvemig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvemig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvemig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
