# Empty compiler generated dependencies file for dvemig_proc.
# This may be replaced when dependencies are built.
