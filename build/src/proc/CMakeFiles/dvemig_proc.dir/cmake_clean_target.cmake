file(REMOVE_RECURSE
  "libdvemig_proc.a"
)
