file(REMOVE_RECURSE
  "CMakeFiles/dvemig_proc.dir/app_logic.cpp.o"
  "CMakeFiles/dvemig_proc.dir/app_logic.cpp.o.d"
  "CMakeFiles/dvemig_proc.dir/cpu_meter.cpp.o"
  "CMakeFiles/dvemig_proc.dir/cpu_meter.cpp.o.d"
  "CMakeFiles/dvemig_proc.dir/file_table.cpp.o"
  "CMakeFiles/dvemig_proc.dir/file_table.cpp.o.d"
  "CMakeFiles/dvemig_proc.dir/memory.cpp.o"
  "CMakeFiles/dvemig_proc.dir/memory.cpp.o.d"
  "CMakeFiles/dvemig_proc.dir/node.cpp.o"
  "CMakeFiles/dvemig_proc.dir/node.cpp.o.d"
  "CMakeFiles/dvemig_proc.dir/process.cpp.o"
  "CMakeFiles/dvemig_proc.dir/process.cpp.o.d"
  "libdvemig_proc.a"
  "libdvemig_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
