file(REMOVE_RECURSE
  "libdvemig_lb.a"
)
