file(REMOVE_RECURSE
  "CMakeFiles/dvemig_lb.dir/conductor.cpp.o"
  "CMakeFiles/dvemig_lb.dir/conductor.cpp.o.d"
  "CMakeFiles/dvemig_lb.dir/load_info.cpp.o"
  "CMakeFiles/dvemig_lb.dir/load_info.cpp.o.d"
  "CMakeFiles/dvemig_lb.dir/load_monitor.cpp.o"
  "CMakeFiles/dvemig_lb.dir/load_monitor.cpp.o.d"
  "CMakeFiles/dvemig_lb.dir/policies.cpp.o"
  "CMakeFiles/dvemig_lb.dir/policies.cpp.o.d"
  "libdvemig_lb.a"
  "libdvemig_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
