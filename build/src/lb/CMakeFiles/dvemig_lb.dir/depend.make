# Empty dependencies file for dvemig_lb.
# This may be replaced when dependencies are built.
