
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/net_stack.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/net_stack.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/net_stack.cpp.o.d"
  "/root/repo/src/stack/netfilter.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/netfilter.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/netfilter.cpp.o.d"
  "/root/repo/src/stack/socket_table.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/socket_table.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/socket_table.cpp.o.d"
  "/root/repo/src/stack/tcp_socket.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/tcp_socket.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/tcp_socket.cpp.o.d"
  "/root/repo/src/stack/tracer.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/tracer.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/tracer.cpp.o.d"
  "/root/repo/src/stack/udp_socket.cpp" "src/stack/CMakeFiles/dvemig_stack.dir/udp_socket.cpp.o" "gcc" "src/stack/CMakeFiles/dvemig_stack.dir/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dvemig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvemig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvemig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
