# Empty dependencies file for dvemig_stack.
# This may be replaced when dependencies are built.
