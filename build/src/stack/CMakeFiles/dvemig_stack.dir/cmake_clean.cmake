file(REMOVE_RECURSE
  "CMakeFiles/dvemig_stack.dir/net_stack.cpp.o"
  "CMakeFiles/dvemig_stack.dir/net_stack.cpp.o.d"
  "CMakeFiles/dvemig_stack.dir/netfilter.cpp.o"
  "CMakeFiles/dvemig_stack.dir/netfilter.cpp.o.d"
  "CMakeFiles/dvemig_stack.dir/socket_table.cpp.o"
  "CMakeFiles/dvemig_stack.dir/socket_table.cpp.o.d"
  "CMakeFiles/dvemig_stack.dir/tcp_socket.cpp.o"
  "CMakeFiles/dvemig_stack.dir/tcp_socket.cpp.o.d"
  "CMakeFiles/dvemig_stack.dir/tracer.cpp.o"
  "CMakeFiles/dvemig_stack.dir/tracer.cpp.o.d"
  "CMakeFiles/dvemig_stack.dir/udp_socket.cpp.o"
  "CMakeFiles/dvemig_stack.dir/udp_socket.cpp.o.d"
  "libdvemig_stack.a"
  "libdvemig_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
