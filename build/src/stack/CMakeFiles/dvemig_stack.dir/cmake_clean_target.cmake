file(REMOVE_RECURSE
  "libdvemig_stack.a"
)
