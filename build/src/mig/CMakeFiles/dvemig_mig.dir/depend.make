# Empty dependencies file for dvemig_mig.
# This may be replaced when dependencies are built.
