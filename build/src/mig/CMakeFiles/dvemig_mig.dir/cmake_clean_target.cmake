file(REMOVE_RECURSE
  "libdvemig_mig.a"
)
