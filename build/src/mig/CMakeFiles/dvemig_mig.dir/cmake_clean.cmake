file(REMOVE_RECURSE
  "CMakeFiles/dvemig_mig.dir/capture.cpp.o"
  "CMakeFiles/dvemig_mig.dir/capture.cpp.o.d"
  "CMakeFiles/dvemig_mig.dir/delta_tracker.cpp.o"
  "CMakeFiles/dvemig_mig.dir/delta_tracker.cpp.o.d"
  "CMakeFiles/dvemig_mig.dir/migd.cpp.o"
  "CMakeFiles/dvemig_mig.dir/migd.cpp.o.d"
  "CMakeFiles/dvemig_mig.dir/protocol.cpp.o"
  "CMakeFiles/dvemig_mig.dir/protocol.cpp.o.d"
  "CMakeFiles/dvemig_mig.dir/socket_image.cpp.o"
  "CMakeFiles/dvemig_mig.dir/socket_image.cpp.o.d"
  "CMakeFiles/dvemig_mig.dir/translation.cpp.o"
  "CMakeFiles/dvemig_mig.dir/translation.cpp.o.d"
  "libdvemig_mig.a"
  "libdvemig_mig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_mig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
