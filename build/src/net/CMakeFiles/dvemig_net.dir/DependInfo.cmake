
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/dvemig_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/dvemig_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/dvemig_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/dvemig_net.dir/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/dvemig_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/dvemig_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/dvemig_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/dvemig_net.dir/router.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/dvemig_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/dvemig_net.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dvemig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvemig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
