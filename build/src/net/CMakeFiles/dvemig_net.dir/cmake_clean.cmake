file(REMOVE_RECURSE
  "CMakeFiles/dvemig_net.dir/checksum.cpp.o"
  "CMakeFiles/dvemig_net.dir/checksum.cpp.o.d"
  "CMakeFiles/dvemig_net.dir/link.cpp.o"
  "CMakeFiles/dvemig_net.dir/link.cpp.o.d"
  "CMakeFiles/dvemig_net.dir/packet.cpp.o"
  "CMakeFiles/dvemig_net.dir/packet.cpp.o.d"
  "CMakeFiles/dvemig_net.dir/router.cpp.o"
  "CMakeFiles/dvemig_net.dir/router.cpp.o.d"
  "CMakeFiles/dvemig_net.dir/switch.cpp.o"
  "CMakeFiles/dvemig_net.dir/switch.cpp.o.d"
  "libdvemig_net.a"
  "libdvemig_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
