# Empty dependencies file for dvemig_net.
# This may be replaced when dependencies are built.
