file(REMOVE_RECURSE
  "libdvemig_net.a"
)
