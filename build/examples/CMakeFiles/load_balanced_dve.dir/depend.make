# Empty dependencies file for load_balanced_dve.
# This may be replaced when dependencies are built.
