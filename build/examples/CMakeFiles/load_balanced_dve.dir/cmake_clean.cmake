file(REMOVE_RECURSE
  "CMakeFiles/load_balanced_dve.dir/load_balanced_dve.cpp.o"
  "CMakeFiles/load_balanced_dve.dir/load_balanced_dve.cpp.o.d"
  "load_balanced_dve"
  "load_balanced_dve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balanced_dve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
