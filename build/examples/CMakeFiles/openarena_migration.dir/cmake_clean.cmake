file(REMOVE_RECURSE
  "CMakeFiles/openarena_migration.dir/openarena_migration.cpp.o"
  "CMakeFiles/openarena_migration.dir/openarena_migration.cpp.o.d"
  "openarena_migration"
  "openarena_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openarena_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
