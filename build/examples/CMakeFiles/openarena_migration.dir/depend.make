# Empty dependencies file for openarena_migration.
# This may be replaced when dependencies are built.
