file(REMOVE_RECURSE
  "CMakeFiles/db_failover.dir/db_failover.cpp.o"
  "CMakeFiles/db_failover.dir/db_failover.cpp.o.d"
  "db_failover"
  "db_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
