# Empty compiler generated dependencies file for db_failover.
# This may be replaced when dependencies are built.
