# Empty dependencies file for dvemig.
# This may be replaced when dependencies are built.
