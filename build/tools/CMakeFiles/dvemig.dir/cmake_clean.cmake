file(REMOVE_RECURSE
  "CMakeFiles/dvemig.dir/dvemig_cli.cpp.o"
  "CMakeFiles/dvemig.dir/dvemig_cli.cpp.o.d"
  "dvemig"
  "dvemig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvemig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
