# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_stack_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_stack_udp[1]_include.cmake")
include("/root/repo/build/tests/test_proc[1]_include.cmake")
include("/root/repo/build/tests/test_ckpt[1]_include.cmake")
include("/root/repo/build/tests/test_mig_socket[1]_include.cmake")
include("/root/repo/build/tests/test_mig_live[1]_include.cmake")
include("/root/repo/build/tests/test_lb[1]_include.cmake")
include("/root/repo/build/tests/test_dve[1]_include.cmake")
include("/root/repo/build/tests/test_mig_mutual[1]_include.cmake")
include("/root/repo/build/tests/test_stack_tcp2[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
include("/root/repo/build/tests/test_mig_live2[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_lb_initiation[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_conductor_edge[1]_include.cmake")
include("/root/repo/build/tests/test_accounting[1]_include.cmake")
include("/root/repo/build/tests/test_dve2[1]_include.cmake")
