file(REMOVE_RECURSE
  "CMakeFiles/test_dve.dir/test_dve.cpp.o"
  "CMakeFiles/test_dve.dir/test_dve.cpp.o.d"
  "test_dve"
  "test_dve.pdb"
  "test_dve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
