# Empty compiler generated dependencies file for test_dve.
# This may be replaced when dependencies are built.
