file(REMOVE_RECURSE
  "CMakeFiles/test_lb_initiation.dir/test_lb_initiation.cpp.o"
  "CMakeFiles/test_lb_initiation.dir/test_lb_initiation.cpp.o.d"
  "test_lb_initiation"
  "test_lb_initiation.pdb"
  "test_lb_initiation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_initiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
