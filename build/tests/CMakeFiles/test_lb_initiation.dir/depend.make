# Empty dependencies file for test_lb_initiation.
# This may be replaced when dependencies are built.
