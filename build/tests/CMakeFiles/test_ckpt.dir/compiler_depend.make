# Empty compiler generated dependencies file for test_ckpt.
# This may be replaced when dependencies are built.
