file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt.dir/test_ckpt.cpp.o"
  "CMakeFiles/test_ckpt.dir/test_ckpt.cpp.o.d"
  "test_ckpt"
  "test_ckpt.pdb"
  "test_ckpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
