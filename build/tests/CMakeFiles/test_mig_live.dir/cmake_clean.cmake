file(REMOVE_RECURSE
  "CMakeFiles/test_mig_live.dir/test_mig_live.cpp.o"
  "CMakeFiles/test_mig_live.dir/test_mig_live.cpp.o.d"
  "test_mig_live"
  "test_mig_live.pdb"
  "test_mig_live[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mig_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
