# Empty dependencies file for test_mig_live.
# This may be replaced when dependencies are built.
