# Empty compiler generated dependencies file for test_mig_live2.
# This may be replaced when dependencies are built.
