file(REMOVE_RECURSE
  "CMakeFiles/test_mig_live2.dir/test_mig_live2.cpp.o"
  "CMakeFiles/test_mig_live2.dir/test_mig_live2.cpp.o.d"
  "test_mig_live2"
  "test_mig_live2.pdb"
  "test_mig_live2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mig_live2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
