# Empty compiler generated dependencies file for test_stack_tcp2.
# This may be replaced when dependencies are built.
