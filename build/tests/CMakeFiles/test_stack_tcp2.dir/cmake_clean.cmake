file(REMOVE_RECURSE
  "CMakeFiles/test_stack_tcp2.dir/test_stack_tcp2.cpp.o"
  "CMakeFiles/test_stack_tcp2.dir/test_stack_tcp2.cpp.o.d"
  "test_stack_tcp2"
  "test_stack_tcp2.pdb"
  "test_stack_tcp2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_tcp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
