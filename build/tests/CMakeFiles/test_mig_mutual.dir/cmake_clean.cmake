file(REMOVE_RECURSE
  "CMakeFiles/test_mig_mutual.dir/test_mig_mutual.cpp.o"
  "CMakeFiles/test_mig_mutual.dir/test_mig_mutual.cpp.o.d"
  "test_mig_mutual"
  "test_mig_mutual.pdb"
  "test_mig_mutual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mig_mutual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
