# Empty dependencies file for test_mig_mutual.
# This may be replaced when dependencies are built.
