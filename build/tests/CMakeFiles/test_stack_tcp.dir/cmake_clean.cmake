file(REMOVE_RECURSE
  "CMakeFiles/test_stack_tcp.dir/test_stack_tcp.cpp.o"
  "CMakeFiles/test_stack_tcp.dir/test_stack_tcp.cpp.o.d"
  "test_stack_tcp"
  "test_stack_tcp.pdb"
  "test_stack_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
