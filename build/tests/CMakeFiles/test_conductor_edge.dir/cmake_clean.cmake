file(REMOVE_RECURSE
  "CMakeFiles/test_conductor_edge.dir/test_conductor_edge.cpp.o"
  "CMakeFiles/test_conductor_edge.dir/test_conductor_edge.cpp.o.d"
  "test_conductor_edge"
  "test_conductor_edge.pdb"
  "test_conductor_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conductor_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
