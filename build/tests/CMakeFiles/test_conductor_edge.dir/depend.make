# Empty dependencies file for test_conductor_edge.
# This may be replaced when dependencies are built.
