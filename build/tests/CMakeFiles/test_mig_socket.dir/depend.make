# Empty dependencies file for test_mig_socket.
# This may be replaced when dependencies are built.
