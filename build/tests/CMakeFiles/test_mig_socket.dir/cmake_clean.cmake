file(REMOVE_RECURSE
  "CMakeFiles/test_mig_socket.dir/test_mig_socket.cpp.o"
  "CMakeFiles/test_mig_socket.dir/test_mig_socket.cpp.o.d"
  "test_mig_socket"
  "test_mig_socket.pdb"
  "test_mig_socket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mig_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
