file(REMOVE_RECURSE
  "CMakeFiles/test_dve2.dir/test_dve2.cpp.o"
  "CMakeFiles/test_dve2.dir/test_dve2.cpp.o.d"
  "test_dve2"
  "test_dve2.pdb"
  "test_dve2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dve2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
