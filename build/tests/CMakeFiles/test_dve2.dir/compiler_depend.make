# Empty compiler generated dependencies file for test_dve2.
# This may be replaced when dependencies are built.
