# Empty compiler generated dependencies file for test_stack_udp.
# This may be replaced when dependencies are built.
