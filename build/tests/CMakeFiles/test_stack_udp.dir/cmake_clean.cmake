file(REMOVE_RECURSE
  "CMakeFiles/test_stack_udp.dir/test_stack_udp.cpp.o"
  "CMakeFiles/test_stack_udp.dir/test_stack_udp.cpp.o.d"
  "test_stack_udp"
  "test_stack_udp.pdb"
  "test_stack_udp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
