file(REMOVE_RECURSE
  "CMakeFiles/test_proc.dir/test_proc.cpp.o"
  "CMakeFiles/test_proc.dir/test_proc.cpp.o.d"
  "test_proc"
  "test_proc.pdb"
  "test_proc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
