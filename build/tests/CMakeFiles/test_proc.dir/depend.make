# Empty dependencies file for test_proc.
# This may be replaced when dependencies are built.
