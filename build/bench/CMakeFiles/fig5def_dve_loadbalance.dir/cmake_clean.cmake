file(REMOVE_RECURSE
  "CMakeFiles/fig5def_dve_loadbalance.dir/fig5def_dve_loadbalance.cpp.o"
  "CMakeFiles/fig5def_dve_loadbalance.dir/fig5def_dve_loadbalance.cpp.o.d"
  "fig5def_dve_loadbalance"
  "fig5def_dve_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5def_dve_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
