
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5def_dve_loadbalance.cpp" "bench/CMakeFiles/fig5def_dve_loadbalance.dir/fig5def_dve_loadbalance.cpp.o" "gcc" "bench/CMakeFiles/fig5def_dve_loadbalance.dir/fig5def_dve_loadbalance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dve/CMakeFiles/dvemig_dve.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/dvemig_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/mig/CMakeFiles/dvemig_mig.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/dvemig_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/dvemig_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/dvemig_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvemig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvemig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvemig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
