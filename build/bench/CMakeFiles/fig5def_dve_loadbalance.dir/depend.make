# Empty dependencies file for fig5def_dve_loadbalance.
# This may be replaced when dependencies are built.
