file(REMOVE_RECURSE
  "CMakeFiles/fig5c_freeze_bytes.dir/fig5c_freeze_bytes.cpp.o"
  "CMakeFiles/fig5c_freeze_bytes.dir/fig5c_freeze_bytes.cpp.o.d"
  "fig5c_freeze_bytes"
  "fig5c_freeze_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_freeze_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
