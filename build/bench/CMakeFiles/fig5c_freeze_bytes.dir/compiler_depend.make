# Empty compiler generated dependencies file for fig5c_freeze_bytes.
# This may be replaced when dependencies are built.
