# Empty dependencies file for fig5b_freeze_time.
# This may be replaced when dependencies are built.
