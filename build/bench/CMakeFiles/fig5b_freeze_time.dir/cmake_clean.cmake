file(REMOVE_RECURSE
  "CMakeFiles/fig5b_freeze_time.dir/fig5b_freeze_time.cpp.o"
  "CMakeFiles/fig5b_freeze_time.dir/fig5b_freeze_time.cpp.o.d"
  "fig5b_freeze_time"
  "fig5b_freeze_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_freeze_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
