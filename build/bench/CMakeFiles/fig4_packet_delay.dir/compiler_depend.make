# Empty compiler generated dependencies file for fig4_packet_delay.
# This may be replaced when dependencies are built.
