file(REMOVE_RECURSE
  "CMakeFiles/fig4_packet_delay.dir/fig4_packet_delay.cpp.o"
  "CMakeFiles/fig4_packet_delay.dir/fig4_packet_delay.cpp.o.d"
  "fig4_packet_delay"
  "fig4_packet_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_packet_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
