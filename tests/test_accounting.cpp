// Accounting and bookkeeping: migration CPU charges, socket-table stress,
// connected-UDP in-cluster migration, stats plumbing, and fd-table hygiene
// across a migration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig {
namespace {

TEST(SocketTableStress, ManyListenersAndConnections) {
  sim::Engine engine;
  net::Switch sw(engine, net::LinkConfig{});
  stack::NetStack a(engine, "a", SimTime::seconds(1));
  stack::NetStack b(engine, "b", SimTime::seconds(2));
  const auto addr_a = net::Ipv4Addr::octets(10, 0, 0, 1);
  const auto addr_b = net::Ipv4Addr::octets(10, 0, 0, 2);
  a.add_interface(addr_a, sw.attach(addr_a, [&](net::Packet p) { a.rx(std::move(p)); }));
  b.add_interface(addr_b, sw.attach(addr_b, [&](net::Packet p) { b.rx(std::move(p)); }));

  std::vector<stack::TcpSocket::Ptr> listeners;
  for (net::Port port = 20000; port < 20050; ++port) {
    auto l = b.make_tcp();
    l->bind(addr_b, port);
    l->listen(8);
    listeners.push_back(l);
  }
  std::vector<stack::TcpSocket::Ptr> clients;
  for (int i = 0; i < 200; ++i) {
    auto c = a.make_tcp();
    c->connect(net::Endpoint{addr_b, static_cast<net::Port>(20000 + i % 50)});
    clients.push_back(c);
  }
  engine.run();
  EXPECT_EQ(b.table().ehash_size(), 200u);
  EXPECT_EQ(b.table().bhash_size(), 50u);
  for (const auto& c : clients) {
    EXPECT_EQ(c->state(), stack::TcpState::established);
  }
  // Tear everything down; the tables must drain completely.
  for (auto& c : clients) c->close();
  for (auto& l : listeners) l->close();
  engine.run_until(engine.now() + SimTime::seconds(5));
  EXPECT_EQ(a.table().ehash_size(), 0u);
  EXPECT_EQ(b.table().ehash_size(), 0u);
  EXPECT_EQ(b.table().bhash_size(), 0u);
}

TEST(MigrationAccounting, KernelWorkChargedToCpuMeters) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.use_db = false;
  zs.base_cores = 0.0;  // the app itself is idle: all load below is migration work
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  bed.run_for(SimTime::milliseconds(500));

  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::collective,
                           [&](const mig::MigrationStats&) { done = true; });
  // The meter reports completed 1 s windows: sample the kernel pseudo-pid's
  // usage across the run and keep the peak.
  double peak_kernel_cores = 0;
  for (int i = 1; i <= 30; ++i) {
    bed.engine().schedule_after(SimTime::milliseconds(100 * i), [&] {
      peak_kernel_cores =
          std::max(peak_kernel_cores, bed.node(0).node.cpu().process_cores(Pid{1}));
    });
  }
  bed.run_for(SimTime::seconds(3));
  ASSERT_TRUE(done);
  // The dirty-page gathering (12 MiB image -> ~3000 pages x 0.7 us) was charged
  // to the source node's meter under the kernel pseudo-pid.
  EXPECT_GT(peak_kernel_cores, 0.0);
}

TEST(MigrationAccounting, FdTableIdenticalAfterMigration) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 2;
  zs.db_addr = bed.db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  bed.run_for(SimTime::milliseconds(500));

  // Record the fd layout before the move.
  std::map<Fd, proc::FileKind> before;
  for (const auto& [fd, f] : proc->files().entries()) before[fd] = f.kind;
  ASSERT_EQ(proc->files().socket_count(), 2u);  // listener + DB session
  ASSERT_EQ(before.size(), 3u);                 // + the log file

  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats&) { done = true; });
  bed.run_for(SimTime::seconds(3));
  ASSERT_TRUE(done);

  auto moved = bed.node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  std::map<Fd, proc::FileKind> after;
  for (const auto& [fd, f] : moved->files().entries()) after[fd] = f.kind;
  EXPECT_EQ(before, after);  // same fds, same kinds, nothing leaked or lost
  // The regular file was re-opened by path at the same fd.
  for (const auto& [fd, f] : moved->files().entries()) {
    if (f.kind == proc::FileKind::regular) {
      EXPECT_EQ(f.path, "/var/log/zone_2.log");
    } else {
      EXPECT_NE(f.socket, nullptr);
      EXPECT_FALSE(f.socket->migration_disabled());
    }
  }
}

TEST(MigrationAccounting, ConnectedUdpInClusterMigratesWithTranslation) {
  // A connected UDP socket toward an in-cluster peer (e.g. a metrics daemon)
  // takes the same translation path as TCP.
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  cfg.with_db = false;
  dve::Testbed bed(cfg);

  // Peer service on node 3's local address.
  auto peer = bed.node(2).node.stack().make_udp();
  peer->bind(bed.node(2).node.local_addr(), 8125);

  auto proc = bed.node(0).node.spawn("udp_emitter");
  proc->mem().mmap(1 << 20, proc::prot_read | proc::prot_write, "[heap]");
  auto sock = bed.node(0).node.stack().make_udp();
  sock->bind(bed.node(0).node.local_addr(), 0);
  sock->connect(net::Endpoint{bed.node(2).node.local_addr(), 8125});
  sock->send(Buffer{1});
  const Fd fd = proc->files().attach_socket(sock);
  bed.run_for(SimTime::milliseconds(100));
  ASSERT_EQ(peer->pending(), 1u);

  bool done = false;
  mig::MigrationStats stats;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::collective,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(3));
  ASSERT_TRUE(done && stats.success);

  auto moved = bed.node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  auto& moved_sock = static_cast<stack::UdpSocket&>(*moved->files().get(fd).socket);
  moved_sock.send(Buffer{2});
  bed.run_for(SimTime::milliseconds(100));
  ASSERT_EQ(peer->pending(), 2u);
  (void)peer->recv();
  const auto dgram = peer->recv();
  ASSERT_TRUE(dgram.has_value());
  // The translation filter rewrites the source back to the original address:
  // the peer never learns the emitter moved.
  EXPECT_EQ(dgram->from.addr, bed.node(0).node.local_addr());
  EXPECT_EQ(dgram->data, (Buffer{2}));
}

TEST(MigrationAccounting, StatsBytesAreConsistent) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 3;
  zs.use_db = false;
  zs.heap_bytes = 4ull << 20;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  bed.run_for(SimTime::milliseconds(500));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::collective,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(3));
  ASSERT_TRUE(done);
  EXPECT_GE(stats.t_freeze_begin, stats.t_start);
  EXPECT_GE(stats.t_resume, stats.t_freeze_begin);
  // The 4 MiB heap rides the precopy; freeze moves only deltas + metadata.
  EXPECT_GT(stats.precopy_channel_bytes, 4u << 20);
  EXPECT_LT(stats.freeze_channel_bytes, stats.precopy_channel_bytes);
  EXPECT_LE(stats.freeze_socket_bytes, stats.freeze_channel_bytes);
  EXPECT_EQ(stats.socket_count, 1u);  // just the listener
  EXPECT_EQ(stats.reinjected, stats.captured);
}

TEST(MigrationAccounting, WorkerThreadsRideTheImage) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 4;
  zs.use_db = false;
  zs.worker_threads = 7;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  ASSERT_EQ(proc->threads().size(), 8u);
  const auto tid_regs = proc->threads()[3].gp_regs;
  bed.run_for(SimTime::milliseconds(300));

  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats&) { done = true; });
  bed.run_for(SimTime::seconds(3));
  ASSERT_TRUE(done);
  auto moved = bed.node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  ASSERT_EQ(moved->threads().size(), 8u);
  EXPECT_EQ(moved->threads()[3].gp_regs, tid_regs);  // register files preserved
}

}  // namespace
}  // namespace dvemig
