// Reproducibility: identical configurations must produce bit-identical packet
// timelines, migration timings and experiment outputs — the property every
// benchmark in bench/ relies on.
#include <gtest/gtest.h>

#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/stack/tracer.hpp"

namespace dvemig {
namespace {

std::string run_traced_scenario() {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  stack::PacketTracer tracer(bed.node(1).node.stack());

  dve::ZoneServerConfig zs;
  zs.zone = 3;
  zs.active_updates = true;
  zs.db_addr = bed.db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < 6; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->set_active(SimTime::milliseconds(50), 40);
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(1));

  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats&) { done = true; });
  bed.run_for(SimTime::seconds(3));
  EXPECT_TRUE(done);
  return tracer.dump();
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalPacketTimelines) {
  const std::string first = run_traced_scenario();
  const std::string second = run_traced_scenario();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, MigrationStatsBitIdenticalAcrossRuns) {
  auto run_once = [] {
    dve::TestbedConfig cfg;
    cfg.dve_nodes = 2;
    dve::Testbed bed(cfg);
    dve::ZoneServerConfig zs;
    zs.zone = 1;
    zs.db_addr = bed.db_node()->local_addr();
    auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
    bed.run_for(SimTime::seconds(1));
    mig::MigrationStats stats;
    bool done = false;
    bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                             mig::SocketMigStrategy::collective,
                             [&](const mig::MigrationStats& s) {
                               stats = s;
                               done = true;
                             });
    bed.run_for(SimTime::seconds(3));
    EXPECT_TRUE(done);
    return stats;
  };
  const mig::MigrationStats a = run_once();
  const mig::MigrationStats b = run_once();
  EXPECT_EQ(a.t_freeze_begin.ns, b.t_freeze_begin.ns);
  EXPECT_EQ(a.t_resume.ns, b.t_resume.ns);
  EXPECT_EQ(a.precopy_channel_bytes, b.precopy_channel_bytes);
  EXPECT_EQ(a.freeze_channel_bytes, b.freeze_channel_bytes);
  EXPECT_EQ(a.freeze_socket_bytes, b.freeze_socket_bytes);
  EXPECT_EQ(a.captured, b.captured);
}

TEST(DeterminismTest, PopulationMovementReproducible) {
  auto run_once = [] {
    dve::TestbedConfig cfg;
    cfg.dve_nodes = 5;
    cfg.with_db = false;
    dve::Testbed bed(cfg);
    dve::ZoneGrid grid;
    for (std::uint32_t n = 0; n < 5; ++n) {
      for (const dve::ZoneId z : grid.zones_of_node(n, 5)) {
        dve::ZoneServerConfig zs;
        zs.zone = z;
        zs.use_db = false;
        zs.heap_bytes = 1 << 20;
        dve::ZoneServerApp::launch(bed.node(n).node, zs);
      }
    }
    dve::PopulationConfig pc;
    pc.client_count = 400;
    pc.move_start = SimTime::seconds(3);
    pc.move_step_prob = 0.3;
    dve::Population pop(bed, grid, pc);
    pop.populate();
    pop.start_movement();
    bed.run_for(SimTime::seconds(20));
    return pop.clients_per_zone();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dvemig
