#!/usr/bin/env python3
"""Self-tests for tools/lint_dvemig.py, run under ctest.

The serializer-symmetry rule is itself part of the checking story (ISSUE PR 3:
wire-format bugs the model checker cannot reach because both sides of the
simulator share the same build), so it gets the same treatment as the model
checker: plant real wire-format bugs in copies of the real serializers and
prove the rule catches every one — and stays quiet on the untouched sources.
"""
from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent
LINTER = REPO / "tools" / "lint_dvemig.py"


def run_lint(root: pathlib.Path) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def lint_mutated(src_rel: str, old: str, new: str) -> tuple[int, str]:
    """Copy one real source file into a scratch tree, mutate it, lint it.

    Only the mutated file is present, so unrelated module-level rules
    (hash-pairing) may fire too; callers assert on specific rule tags.
    """
    src = REPO / src_rel
    text = src.read_text()
    assert old in text, f"mutation anchor not found in {src_rel}: {old!r}"
    with tempfile.TemporaryDirectory() as tmp:
        tgt = pathlib.Path(tmp) / src_rel
        tgt.parent.mkdir(parents=True)
        tgt.write_text(text.replace(old, new, 1))
        return run_lint(pathlib.Path(tmp))


class RepoIsClean(unittest.TestCase):
    def test_whole_repo_lints_clean(self) -> None:
        code, out = run_lint(REPO)
        self.assertEqual(code, 0, out)


class SerializerSymmetry(unittest.TestCase):
    """Each planted wire-format bug must be caught; the original must pass."""

    def test_untouched_serializers_pass(self) -> None:
        _, out = lint_mutated("src/mig/socket_image.cpp", "w.u32(iss);", "w.u32(iss);")
        self.assertNotIn("[serializer-symmetry]", out)
        _, out = lint_mutated("src/ckpt/image.cpp", "w.str(name);", "w.str(name);")
        self.assertNotIn("[serializer-symmetry]", out)

    def test_catches_width_change_on_read_side(self) -> None:
        # TcpImage::deserialize_dynamic reads snd_una as the wrong width.
        code, out = lint_mutated(
            "src/mig/socket_image.cpp", "snd_una = r.u32();", "snd_una = r.u64();"
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)
        self.assertIn("serialize_dynamic", out)

    def test_catches_dropped_pad_skip(self) -> None:
        # UdpImage::deserialize_static forgets to skip the struct pad.
        code, out = lint_mutated(
            "src/mig/socket_image.cpp", "r.skip(kUdpSockStructPad);", ""
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)

    def test_catches_reordered_fields(self) -> None:
        # ProcessImage::deserialize reads a FileImage's flags before its offset.
        code, out = lint_mutated(
            "src/ckpt/image.cpp",
            "f.offset = r.u64();\n    f.flags = r.u32();",
            "f.flags = r.u32();\n    f.offset = r.u64();",
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)

    def test_catches_write_only_field(self) -> None:
        # A field appended to write_area with no matching read_area change.
        code, out = lint_mutated(
            "src/ckpt/image.cpp",
            "w.str(a.name);",
            "w.str(a.name);\n  w.u8(0);",
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)
        self.assertIn("write_area", out)


class PhaseSpanMultiline(unittest.TestCase):
    """The phase-span rule must see assignments that wrap across lines."""

    def lint_snippet(self, body: str) -> str:
        with tempfile.TemporaryDirectory() as tmp:
            tgt = pathlib.Path(tmp) / "src" / "mig" / "synthetic.cpp"
            tgt.parent.mkdir(parents=True)
            tgt.write_text(body)
            _, out = run_lint(pathlib.Path(tmp))
            return out

    def test_multiline_phase_write_without_span_is_flagged(self) -> None:
        out = self.lint_snippet(
            "void f() {\n"
            "  phase_ =\n"
            "      Phase::freeze;\n"
            "\n\n\n\n\n"
            "  unrelated();\n"
            "}\n"
        )
        self.assertIn("[phase-span]", out)

    def test_multiline_phase_write_with_adjacent_span_passes(self) -> None:
        out = self.lint_snippet(
            "void f() {\n"
            "  span_freeze_ = tracer().begin(\"freeze\");\n"
            "  phase_ =\n"
            "      Phase::freeze;\n"
            "}\n"
        )
        self.assertNotIn("[phase-span]", out)


if __name__ == "__main__":
    unittest.main()
