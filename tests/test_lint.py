#!/usr/bin/env python3
"""Self-tests for tools/lint_dvemig.py, run under ctest.

The serializer-symmetry rule is itself part of the checking story (ISSUE PR 3:
wire-format bugs the model checker cannot reach because both sides of the
simulator share the same build), so it gets the same treatment as the model
checker: plant real wire-format bugs in copies of the real serializers and
prove the rule catches every one — and stays quiet on the untouched sources.
"""
from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent
LINTER = REPO / "tools" / "lint_dvemig.py"


def run_lint(root: pathlib.Path) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def lint_mutated(src_rel: str, old: str, new: str) -> tuple[int, str]:
    """Copy one real source file into a scratch tree, mutate it, lint it.

    Only the mutated file is present, so unrelated module-level rules
    (hash-pairing) may fire too; callers assert on specific rule tags.
    """
    src = REPO / src_rel
    text = src.read_text()
    assert old in text, f"mutation anchor not found in {src_rel}: {old!r}"
    with tempfile.TemporaryDirectory() as tmp:
        tgt = pathlib.Path(tmp) / src_rel
        tgt.parent.mkdir(parents=True)
        tgt.write_text(text.replace(old, new, 1))
        return run_lint(pathlib.Path(tmp))


class RepoIsClean(unittest.TestCase):
    def test_whole_repo_lints_clean(self) -> None:
        code, out = run_lint(REPO)
        self.assertEqual(code, 0, out)


class SerializerSymmetry(unittest.TestCase):
    """Each planted wire-format bug must be caught; the original must pass."""

    def test_untouched_serializers_pass(self) -> None:
        _, out = lint_mutated("src/mig/socket_image.cpp", "w.u32(iss);", "w.u32(iss);")
        self.assertNotIn("[serializer-symmetry]", out)
        _, out = lint_mutated("src/ckpt/image.cpp", "w.str(name);", "w.str(name);")
        self.assertNotIn("[serializer-symmetry]", out)

    def test_catches_width_change_on_read_side(self) -> None:
        # TcpImage::deserialize_dynamic reads snd_una as the wrong width.
        code, out = lint_mutated(
            "src/mig/socket_image.cpp", "snd_una = r.u32();", "snd_una = r.u64();"
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)
        self.assertIn("serialize_dynamic", out)

    def test_catches_dropped_pad_skip(self) -> None:
        # UdpImage::deserialize_static forgets to skip the struct pad.
        code, out = lint_mutated(
            "src/mig/socket_image.cpp", "r.skip(kUdpSockStructPad);", ""
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)

    def test_catches_reordered_fields(self) -> None:
        # ProcessImage::deserialize reads a FileImage's flags before its offset.
        code, out = lint_mutated(
            "src/ckpt/image.cpp",
            "f.offset = r.u64();\n    f.flags = r.u32();",
            "f.flags = r.u32();\n    f.offset = r.u64();",
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)

    def test_catches_write_only_field(self) -> None:
        # A field appended to write_area with no matching read_area change.
        code, out = lint_mutated(
            "src/ckpt/image.cpp",
            "w.str(a.name);",
            "w.str(a.name);\n  w.u8(0);",
        )
        self.assertNotEqual(code, 0)
        self.assertIn("[serializer-symmetry]", out)
        self.assertIn("write_area", out)


class PhaseSpanMultiline(unittest.TestCase):
    """The phase-span rule must see assignments that wrap across lines."""

    def lint_snippet(self, body: str) -> str:
        with tempfile.TemporaryDirectory() as tmp:
            tgt = pathlib.Path(tmp) / "src" / "mig" / "synthetic.cpp"
            tgt.parent.mkdir(parents=True)
            tgt.write_text(body)
            _, out = run_lint(pathlib.Path(tmp))
            return out

    def test_multiline_phase_write_without_span_is_flagged(self) -> None:
        out = self.lint_snippet(
            "void f() {\n"
            "  phase_ =\n"
            "      Phase::freeze;\n"
            "\n\n\n\n\n"
            "  unrelated();\n"
            "}\n"
        )
        self.assertIn("[phase-span]", out)

    def test_multiline_phase_write_with_adjacent_span_passes(self) -> None:
        out = self.lint_snippet(
            "void f() {\n"
            "  span_freeze_ = tracer().begin(\"freeze\");\n"
            "  phase_ =\n"
            "      Phase::freeze;\n"
            "}\n"
        )
        self.assertNotIn("[phase-span]", out)


class NoLinearFilterScan(unittest.TestCase):
    """Linear scans over filter containers are only legal in the index files."""

    SCAN = (
        "void f() {\n"
        "  for (const auto& [id, rule] : rules_) {\n"
        "    (void)id; (void)rule;\n"
        "  }\n"
        "}\n"
    )

    def lint_snippet(self, rel: str, body: str) -> tuple[int, str]:
        with tempfile.TemporaryDirectory() as tmp:
            tgt = pathlib.Path(tmp) / rel
            tgt.parent.mkdir(parents=True)
            tgt.write_text(body)
            return run_lint(pathlib.Path(tmp))

    def test_scan_outside_index_files_is_flagged(self) -> None:
        code, out = self.lint_snippet("src/mig/other.cpp", self.SCAN)
        self.assertNotEqual(code, 0)
        self.assertIn("[no-linear-filter-scan]", out)
        self.assertIn("src/mig/other.cpp:2", out)

    def test_member_specs_scan_is_flagged(self) -> None:
        _, out = self.lint_snippet(
            "src/stack/other.cpp",
            "void g(Session& s) {\n"
            "  for (const SpecState& state : s.specs) { (void)state; }\n"
            "}\n",
        )
        self.assertIn("[no-linear-filter-scan]", out)

    def test_same_scan_in_index_implementation_passes(self) -> None:
        # Identical text, but in the exempt index implementation file.
        _, out = self.lint_snippet("src/mig/translation.cpp", self.SCAN)
        self.assertNotIn("[no-linear-filter-scan]", out)

    def test_call_and_local_ranges_are_not_matches(self) -> None:
        # `specs_for(...)` is a call, and `specs` a plain local — neither is a
        # scan over the indexed member containers.
        _, out = self.lint_snippet(
            "src/mig/other.cpp",
            "void h(MigrationSession& ms, std::vector<CaptureSpec> specs) {\n"
            "  for (CaptureSpec& s : specs_for(ms)) all.push_back(s);\n"
            "  for (const CaptureSpec& s : specs) use(s);\n"
            "}\n",
        )
        self.assertNotIn("[no-linear-filter-scan]", out)

    def test_real_tree_has_no_stray_scans(self) -> None:
        _, out = run_lint(REPO)
        self.assertNotIn("[no-linear-filter-scan]", out)


class DesignInventory(unittest.TestCase):
    """DESIGN.md §3 must name every src/ subdirectory that holds sources."""

    DESIGN_BOTH = (
        "# design\n\n## 3. Module inventory\n\n"
        "```\nsrc/alpha/   the alpha module\nsrc/beta/    the beta module\n```\n\n"
        "## 4. Next section\n"
    )

    def make_tree(self, tmp: str, design: str) -> pathlib.Path:
        root = pathlib.Path(tmp)
        for mod in ("alpha", "beta"):
            d = root / "src" / mod
            d.mkdir(parents=True)
            (d / "mod.hpp").write_text("// placeholder\n")
        (root / "DESIGN.md").write_text(design)
        return root

    def test_complete_inventory_passes(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_lint(self.make_tree(tmp, self.DESIGN_BOTH))
        self.assertEqual(code, 0, out)
        self.assertNotIn("[design-inventory]", out)

    def test_omitted_module_is_flagged(self) -> None:
        # Planted omission: src/beta exists on disk but not in §3.
        design = self.DESIGN_BOTH.replace("src/beta/    the beta module\n", "")
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_lint(self.make_tree(tmp, design))
        self.assertNotEqual(code, 0)
        self.assertIn("[design-inventory]", out)
        self.assertIn("src/beta/", out)
        self.assertNotIn("src/alpha/", out)

    def test_mention_outside_section_3_does_not_count(self) -> None:
        # src/beta is mentioned, but only in §4 — the inventory is still short.
        design = self.DESIGN_BOTH.replace(
            "src/beta/    the beta module\n", ""
        ) + "\nsrc/beta/ discussed here instead.\n"
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_lint(self.make_tree(tmp, design))
        self.assertNotEqual(code, 0)
        self.assertIn("[design-inventory]", out)

    def test_real_design_covers_real_tree(self) -> None:
        # The actual repo's §3 must cover the actual src/ tree (also implied by
        # RepoIsClean, but pinned here so a failure names the rule).
        _, out = run_lint(REPO)
        self.assertNotIn("[design-inventory]", out)


class ReadmeBenchTargets(unittest.TestCase):
    """README bench commands must name real targets in bench/CMakeLists.txt."""

    def make_tree(self, tmp: str, readme: str) -> pathlib.Path:
        root = pathlib.Path(tmp)
        (root / "bench").mkdir(parents=True)
        (root / "bench" / "CMakeLists.txt").write_text(
            "dvemig_bench(fig_real)\nadd_executable(micro_real micro_real.cpp)\n"
        )
        (root / "README.md").write_text(readme)
        return root

    def test_real_targets_pass(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_lint(
                self.make_tree(
                    tmp, "Run `./build/bench/fig_real` then ./build/bench/micro_real.\n"
                )
            )
        self.assertEqual(code, 0, out)
        self.assertNotIn("[readme-bench-targets]", out)

    def test_bogus_target_is_flagged(self) -> None:
        # Planted rot: the walkthrough names a bench that was never added.
        with tempfile.TemporaryDirectory() as tmp:
            code, out = run_lint(
                self.make_tree(
                    tmp,
                    "Run `./build/bench/fig_real`.\n"
                    "Then `./build/bench/fig_deleted 2` reproduces Fig. 9.\n",
                )
            )
        self.assertNotEqual(code, 0)
        self.assertIn("[readme-bench-targets]", out)
        self.assertIn("fig_deleted", out)
        self.assertIn("README.md:2", out)
        self.assertNotIn("fig_real'", out)

    def test_real_readme_names_real_targets(self) -> None:
        _, out = run_lint(REPO)
        self.assertNotIn("[readme-bench-targets]", out)


if __name__ == "__main__":
    unittest.main()
