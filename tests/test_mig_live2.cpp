// Second live-migration batch: the stop-and-copy baseline, failure paths,
// connections arriving mid-freeze, un-accepted listener children, and mixed
// UDP+TCP fd tables under the iterative strategy.
#include <gtest/gtest.h>

#include "src/dve/client.hpp"
#include "src/dve/game_server.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig {
namespace {

using mig::MigrateOptions;
using mig::MigrationStats;
using mig::SocketMigStrategy;

struct Live2Fixture : ::testing::Test {
  std::unique_ptr<dve::Testbed> bed;

  void SetUp() override {
    dve::TestbedConfig cfg;
    cfg.dve_nodes = 3;
    bed = std::make_unique<dve::Testbed>(cfg);
  }

  MigrationStats migrate_opts(Pid pid, std::size_t from, std::size_t to,
                              MigrateOptions options) {
    MigrationStats stats;
    bool done = false;
    EXPECT_TRUE(bed->node(from).migd.migrate(pid, bed->node(to).node.local_addr(),
                                             options, [&](const MigrationStats& s) {
                                               stats = s;
                                               done = true;
                                             }));
    bed->run_for(SimTime::seconds(6));
    EXPECT_TRUE(done);
    return stats;
  }
};

TEST_F(Live2Fixture, StopAndCopyWorksButDowntimeScalesWithMemory) {
  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.db_addr = bed->db_node()->local_addr();
  zs.heap_bytes = 16ull << 20;
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(1));

  const MigrationStats cold = migrate_opts(
      proc->pid(), 0, 1,
      MigrateOptions{SocketMigStrategy::incremental_collective, /*live=*/false});
  ASSERT_TRUE(cold.success);
  EXPECT_FALSE(cold.live);
  EXPECT_EQ(cold.precopy_rounds, 0);
  // The entire 16 MiB image moves while the process is frozen: >100 ms.
  EXPECT_GT(cold.freeze_time().to_ms(), 100.0);
  EXPECT_GT(cold.freeze_channel_bytes, 16u << 20);

  // The process still works afterwards.
  auto moved = bed->node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  const std::uint64_t db_before = app->db_responses();
  bed->run_for(SimTime::seconds(3));
  EXPECT_GT(app->db_responses(), db_before);
}

TEST_F(Live2Fixture, LiveBeatsStopAndCopyByOrdersOfMagnitude) {
  dve::ZoneServerConfig zs;
  zs.zone = 2;
  zs.use_db = false;
  zs.heap_bytes = 16ull << 20;
  auto p1 = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  zs.zone = 3;
  auto p2 = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(1));

  const MigrationStats live = migrate_opts(
      p1->pid(), 0, 1, MigrateOptions{SocketMigStrategy::incremental_collective, true});
  const MigrationStats cold = migrate_opts(
      p2->pid(), 0, 2,
      MigrateOptions{SocketMigStrategy::incremental_collective, false});
  ASSERT_TRUE(live.success && cold.success);
  EXPECT_LT(live.freeze_time().to_ms() * 20, cold.freeze_time().to_ms());
}

TEST_F(Live2Fixture, UnreachableDestinationFailsAndSourceSurvives) {
  dve::ZoneServerConfig zs;
  zs.zone = 4;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::milliseconds(500));

  MigrationStats stats;
  bool done = false;
  // The DB node runs transd but no migd: the connect times out.
  ASSERT_TRUE(bed->node(0).migd.migrate(proc->pid(), bed->db_node()->local_addr(),
                                        SocketMigStrategy::collective,
                                        [&](const MigrationStats& s) {
                                          stats = s;
                                          done = true;
                                        }));
  bed->run_for(SimTime::seconds(5));
  ASSERT_TRUE(done);
  EXPECT_FALSE(stats.success);

  // The process never left and keeps running.
  auto still = bed->node(0).node.find(proc->pid());
  ASSERT_NE(still, nullptr);
  EXPECT_FALSE(still->frozen());
  const auto* app = static_cast<const dve::ZoneServerApp*>(still->app().get());
  const std::uint64_t ticks = app->ticks();
  bed->run_for(SimTime::seconds(1));
  EXPECT_GT(app->ticks(), ticks);
  // And the migd is free for the next attempt.
  EXPECT_FALSE(bed->node(0).migd.busy_sending());
}

TEST_F(Live2Fixture, ConnectionArrivingMidFreezeCompletesAfterRestore) {
  // Stop-and-copy gives a long, predictable freeze window; a client SYN landing
  // inside it is captured on the destination and the handshake completes there.
  dve::ZoneServerConfig zs;
  zs.zone = 5;
  zs.use_db = false;
  zs.heap_bytes = 16ull << 20;  // ~130 ms frozen
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(1));

  MigrationStats stats;
  bool done = false;
  bed->node(0).migd.migrate(
      proc->pid(), bed->node(1).node.local_addr(),
      MigrateOptions{SocketMigStrategy::collective, /*live=*/false},
      [&](const MigrationStats& s) {
        stats = s;
        done = true;
      });

  auto& host = bed->make_client_host();
  dve::TcpDveClient late(host, bed->public_ip());
  bed->engine().schedule_after(SimTime::milliseconds(60), [&] {
    late.connect_to_zone(5);  // lands squarely inside the freeze
  });

  bed->run_for(SimTime::seconds(6));
  ASSERT_TRUE(done && stats.success);
  EXPECT_GT(stats.captured, 0u);  // the SYN (and its retransmits) were captured
  EXPECT_TRUE(late.connected());
  EXPECT_EQ(late.resets_seen(), 0u);
  auto moved = bed->node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(static_cast<const dve::ZoneServerApp*>(moved->app().get())->client_count(),
            1u);
}

TEST_F(Live2Fixture, UnacceptedChildMigratesInsideListener) {
  // A connection sits fully established in the listener's accept queue — the
  // app has not accepted it yet. It must ride along inside the listener image.
  auto proc = bed->node(0).node.spawn("plain_listener");
  proc->mem().mmap(1 << 20, proc::prot_read | proc::prot_write, "[heap]");
  auto listener = bed->node(0).node.stack().make_tcp();
  listener->bind(bed->node(0).node.public_addr(), 23456);
  listener->listen(8);
  const Fd lfd = proc->files().attach_socket(listener);

  auto& host = bed->make_client_host();
  auto client = host.stack().make_tcp();
  client->bind(host.addr(), 0);
  client->connect(net::Endpoint{bed->public_ip(), 23456});
  bed->run_for(SimTime::milliseconds(200));
  ASSERT_EQ(listener->accept_queue_length(), 1u);

  MigrationStats stats;
  bool done = false;
  bed->node(0).migd.migrate(proc->pid(), bed->node(2).node.local_addr(),
                            SocketMigStrategy::collective,
                            [&](const MigrationStats& s) {
                              stats = s;
                              done = true;
                            });
  bed->run_for(SimTime::seconds(3));
  ASSERT_TRUE(done && stats.success);

  auto moved = bed->node(2).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  auto& moved_listener =
      static_cast<stack::TcpSocket&>(*moved->files().get(lfd).socket);
  ASSERT_EQ(moved_listener.accept_queue_length(), 1u);
  auto server_side = moved_listener.accept();
  ASSERT_NE(server_side, nullptr);

  // The deferred connection is fully usable on the destination.
  client->send(Buffer(500, 0xEE));
  bed->run_for(SimTime::milliseconds(100));
  EXPECT_EQ(server_side->read().size(), 500u);
  server_side->send(Buffer(300, 0xDD));
  bed->run_for(SimTime::milliseconds(100));
  EXPECT_EQ(client->read().size(), 300u);
}

TEST_F(Live2Fixture, IterativeWithMixedUdpAndTcpSockets) {
  // A process owning an OpenArena-style UDP socket *and* TCP connections takes
  // the per-socket iterative path across both protocols.
  auto proc = bed->node(0).node.spawn("mixed");
  proc->mem().mmap(1 << 20, proc::prot_read | proc::prot_write, "[heap]");
  auto udp = bed->node(0).node.stack().make_udp();
  udp->bind(bed->node(0).node.public_addr(), 31000);
  proc->files().attach_socket(udp);
  const Fd ufd = 3;

  auto listener = bed->node(0).node.stack().make_tcp();
  listener->bind(bed->node(0).node.public_addr(), 31001);
  listener->listen(8);
  proc->files().attach_socket(listener);

  auto& host = bed->make_client_host();
  auto tcp_client = host.stack().make_tcp();
  tcp_client->bind(host.addr(), 0);
  tcp_client->connect(net::Endpoint{bed->public_ip(), 31001});
  auto udp_client = host.stack().make_udp();
  udp_client->bind(host.addr(), 0);
  udp_client->send_to(net::Endpoint{bed->public_ip(), 31000}, Buffer{1, 2});
  bed->run_for(SimTime::milliseconds(200));
  auto accepted = listener->accept();
  ASSERT_NE(accepted, nullptr);
  const Fd afd = proc->files().attach_socket(accepted);

  MigrationStats stats;
  bool done = false;
  bed->node(0).migd.migrate(proc->pid(), bed->node(1).node.local_addr(),
                            SocketMigStrategy::iterative,
                            [&](const MigrationStats& s) {
                              stats = s;
                              done = true;
                            });
  bed->run_for(SimTime::seconds(3));
  ASSERT_TRUE(done && stats.success);
  EXPECT_EQ(stats.socket_count, 3u);

  auto moved = bed->node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  // The queued datagram survived inside the UDP socket image.
  auto& moved_udp = static_cast<stack::UdpSocket&>(*moved->files().get(ufd).socket);
  ASSERT_EQ(moved_udp.pending(), 1u);
  EXPECT_EQ(moved_udp.recv()->data, (Buffer{1, 2}));
  // The accepted TCP connection still works.
  auto& moved_tcp = static_cast<stack::TcpSocket&>(*moved->files().get(afd).socket);
  tcp_client->send(Buffer(100, 0x44));
  bed->run_for(SimTime::milliseconds(100));
  EXPECT_EQ(moved_tcp.read().size(), 100u);
}

TEST_F(Live2Fixture, BackToBackMigrationsReuseMigd) {
  dve::ZoneServerConfig zs;
  zs.use_db = false;
  zs.heap_bytes = 2ull << 20;
  std::vector<Pid> pids;
  for (dve::ZoneId z = 1; z <= 3; ++z) {
    zs.zone = z;
    pids.push_back(dve::ZoneServerApp::launch(bed->node(0).node, zs)->pid());
  }
  bed->run_for(SimTime::milliseconds(300));
  for (const Pid pid : pids) {
    const MigrationStats s = migrate_opts(
        pid, 0, 1, MigrateOptions{SocketMigStrategy::incremental_collective, true});
    ASSERT_TRUE(s.success);
  }
  EXPECT_EQ(bed->node(0).node.processes().size(), 0u);
  EXPECT_EQ(bed->node(1).node.processes().size(), 3u);
}

}  // namespace
}  // namespace dvemig
