// End-to-end live-migration tests on the full testbed: all three socket
// migration strategies, loss prevention under traffic, listener migration,
// UDP server migration, DB-session survival through the translation filter,
// and the two ablations (timestamp adjustment off, dst-cache fix off).
#include <gtest/gtest.h>

#include <map>

#include "json_lint.hpp"
#include "src/check/verifier.hpp"
#include "src/obs/span.hpp"
#include "src/dve/game_server.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig {
namespace {

using mig::MigrationStats;
using mig::SocketMigStrategy;

struct LiveMigrationFixture : ::testing::Test {
  dve::TestbedConfig cfg;
  std::unique_ptr<dve::Testbed> bed;
  // Declared after `bed` so it detaches from the engine before teardown.
  std::unique_ptr<check::Verifier> verify;

  void SetUp() override {
    cfg.dve_nodes = 3;
    bed = std::make_unique<dve::Testbed>(cfg);
    // dvemig-verify rides along on every live-migration test: socket tables,
    // TCP control blocks, capture queues and the migd protocol all audited.
    check::VerifierConfig vcfg;
    vcfg.abort_on_violation = false;
    vcfg.every_n_events = 32;  // the testbed fires millions of events per test
    verify = std::make_unique<check::Verifier>(bed->engine(), vcfg);
    for (std::size_t i = 0; i < bed->node_count(); ++i) {
      verify->watch_stack(bed->node(i).node.stack());
      verify->watch_capture(bed->node(i).migd.capture());
    }
    if (bed->db_node() != nullptr) verify->watch_stack(bed->db_node()->stack());
  }

  void TearDown() override {
    if (verify) {
      EXPECT_TRUE(verify->clean())
          << verify->violations().front().rule << ": "
          << verify->violations().front().detail;
    }
  }

  MigrationStats migrate(Pid pid, std::size_t from, std::size_t to,
                         SocketMigStrategy strategy,
                         SimDuration budget = SimTime::seconds(5)) {
    MigrationStats stats;
    bool done = false;
    EXPECT_TRUE(bed->node(from).migd.migrate(
        pid, bed->node(to).node.local_addr(), strategy,
        [&](const MigrationStats& s) {
          stats = s;
          done = true;
        }));
    bed->run_for(budget);
    EXPECT_TRUE(done);
    return stats;
  }
};

TEST_F(LiveMigrationFixture, IdleZoneServerMigrates) {
  dve::ZoneServerConfig zs;
  zs.zone = 5;
  zs.db_addr = bed->db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();
  bed->run_for(SimTime::seconds(1));

  const MigrationStats stats =
      migrate(pid, 0, 1, SocketMigStrategy::incremental_collective);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(bed->node(0).node.find(pid), nullptr);
  ASSERT_NE(bed->node(1).node.find(pid), nullptr);
  EXPECT_GT(stats.precopy_rounds, 1);
  EXPECT_GT(stats.freeze_time().ns, 0);
  EXPECT_LT(stats.freeze_time().to_ms(), 20.0);

  // The restored server keeps ticking and talking to the DB on the new node.
  auto moved = bed->node(1).node.find(pid);
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  const std::uint64_t db_before = app->db_responses();
  bed->run_for(SimTime::seconds(3));
  EXPECT_GT(app->db_responses(), db_before);
}

TEST_F(LiveMigrationFixture, SourceProcessGoneAfterMigration) {
  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::milliseconds(500));
  const MigrationStats stats = migrate(proc->pid(), 0, 2, SocketMigStrategy::collective);
  EXPECT_TRUE(stats.success);
  // No residual dependencies: the source node holds neither the process nor any
  // of its sockets in the lookup tables.
  EXPECT_EQ(bed->node(0).node.find(stats.pid), nullptr);
  // The migd channel itself has finished closing by now: nothing remains.
  EXPECT_EQ(bed->node(0).node.stack().table().ehash_size(), 0u);
}

struct StrategyCase {
  SocketMigStrategy strategy;
};

class StrategyTransparency : public LiveMigrationFixture,
                             public ::testing::WithParamInterface<SocketMigStrategy> {};

// The paper's core claim, as a property: under *every* strategy, with clients
// actively exchanging data 20 times a second, migration loses no connection, no
// update, and stays invisible to the peers.
TEST_P(StrategyTransparency, ActiveClientsSurviveUnharmed) {
  dve::ZoneServerConfig zs;
  zs.zone = 9;
  zs.active_updates = true;
  zs.db_addr = bed->db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < 12; ++i) {
    auto& host = bed->make_client_host();
    auto c = std::make_unique<dve::TcpDveClient>(host, bed->public_ip());
    c->set_active(SimTime::milliseconds(50), 48);
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed->run_for(SimTime::seconds(2));

  const MigrationStats stats = migrate(pid, 0, 1, GetParam());
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.socket_count, 14u);  // listener + 12 clients + DB session

  bed->run_for(SimTime::seconds(2));
  auto moved = bed->node(1).node.find(pid);
  ASSERT_NE(moved, nullptr);
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  EXPECT_EQ(app->client_count(), 12u);

  std::uint64_t total_updates = 0;
  for (const auto& c : clients) {
    EXPECT_TRUE(c->connected());
    EXPECT_EQ(c->resets_seen(), 0u);
    total_updates += c->updates_received();
  }
  // ~6 s at 20 Hz x 12 clients, minus the connection ramp and freeze: all
  // updates the server sent were received (stream integrity; at most one tick's
  // worth may still be in flight at the sampling instant).
  EXPECT_GE(total_updates + 12, app->updates_sent());
  EXPECT_LE(total_updates, app->updates_sent());
  EXPECT_GT(total_updates, 12 * 20 * 4u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTransparency,
                         ::testing::Values(SocketMigStrategy::iterative,
                                           SocketMigStrategy::collective,
                                           SocketMigStrategy::incremental_collective),
                         [](const auto& suite_info) {
                           std::string name = mig::strategy_name(suite_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_F(LiveMigrationFixture, FreezeTimeOrdering) {
  // iterative >= collective >= incremental collective, with enough connections
  // for the differences to dominate noise.
  std::map<SocketMigStrategy, double> freeze_ms;
  for (const auto strategy :
       {SocketMigStrategy::iterative, SocketMigStrategy::collective,
        SocketMigStrategy::incremental_collective}) {
    dve::TestbedConfig local_cfg;
    local_cfg.dve_nodes = 2;
    dve::Testbed local_bed(local_cfg);
    dve::ZoneServerConfig zs;
    zs.zone = 3;
    zs.active_updates = true;
    zs.db_addr = local_bed.db_node()->local_addr();
    auto proc = dve::ZoneServerApp::launch(local_bed.node(0).node, zs);

    std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
    for (int i = 0; i < 64; ++i) {
      auto& host = local_bed.make_client_host();
      auto c = std::make_unique<dve::TcpDveClient>(host, local_bed.public_ip());
      c->set_active(SimTime::milliseconds(50), 48);
      c->connect_to_zone(zs.zone);
      clients.push_back(std::move(c));
    }
    local_bed.run_for(SimTime::seconds(2));

    MigrationStats stats;
    bool done = false;
    local_bed.node(0).migd.migrate(proc->pid(),
                                   local_bed.node(1).node.local_addr(), strategy,
                                   [&](const MigrationStats& s) {
                                     stats = s;
                                     done = true;
                                   });
    local_bed.run_for(SimTime::seconds(5));
    ASSERT_TRUE(done && stats.success);
    freeze_ms[strategy] = stats.freeze_time().to_ms();
  }
  EXPECT_GT(freeze_ms[SocketMigStrategy::iterative],
            freeze_ms[SocketMigStrategy::collective]);
  EXPECT_GT(freeze_ms[SocketMigStrategy::collective],
            freeze_ms[SocketMigStrategy::incremental_collective]);
}

TEST_F(LiveMigrationFixture, PacketsDuringFreezeCapturedNotLost) {
  // UDP game server with chatty clients: during the freeze window the clients
  // keep sending commands; the capture filter must hand every one of them to
  // the restored socket.
  dve::GameServerConfig gs;
  auto proc = dve::GameServerApp::launch(bed->node(0).node, gs);
  const Pid pid = proc->pid();

  std::vector<std::unique_ptr<dve::UdpGameClient>> clients;
  for (int i = 0; i < 24; ++i) {
    auto& host = bed->make_client_host();
    auto c = std::make_unique<dve::UdpGameClient>(
        host, net::Endpoint{bed->public_ip(), gs.port}, SimTime::milliseconds(5));
    c->start();
    clients.push_back(std::move(c));
  }
  bed->run_for(SimTime::seconds(2));

  const MigrationStats stats =
      migrate(pid, 0, 1, SocketMigStrategy::incremental_collective);
  EXPECT_TRUE(stats.success);
  // 24 clients at 5 ms cadence: the freeze window (>= a few hundred us) must
  // have seen client packets — all captured and reinjected, none dropped.
  EXPECT_GT(stats.captured, 0u);
  EXPECT_EQ(stats.captured, stats.reinjected);

  bed->run_for(SimTime::seconds(1));
  auto moved = bed->node(1).node.find(pid);
  ASSERT_NE(moved, nullptr);
  const auto* app = static_cast<const dve::GameServerApp*>(moved->app().get());
  EXPECT_EQ(app->client_count(), 24u);  // nobody timed out across the move
}

TEST_F(LiveMigrationFixture, ListenerAcceptsNewClientsAfterMigration) {
  dve::ZoneServerConfig zs;
  zs.zone = 4;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();
  bed->run_for(SimTime::milliseconds(500));
  const MigrationStats stats = migrate(pid, 0, 2, SocketMigStrategy::collective);
  ASSERT_TRUE(stats.success);

  // A brand-new client connects to the zone port after the move — the restored
  // listener on node 3 must accept it (same public IP, same port).
  auto& host = bed->make_client_host();
  dve::TcpDveClient late(host, bed->public_ip());
  late.connect_to_zone(zs.zone);
  bed->run_for(SimTime::seconds(1));
  EXPECT_TRUE(late.connected());
  auto moved = bed->node(2).node.find(pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(static_cast<const dve::ZoneServerApp*>(moved->app().get())->client_count(),
            1u);
}

TEST_F(LiveMigrationFixture, DbSessionContinuesViaTranslation) {
  dve::ZoneServerConfig zs;
  zs.zone = 8;
  zs.db_addr = bed->db_node()->local_addr();
  zs.db_update_period = SimTime::milliseconds(100);
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();
  bed->run_for(SimTime::seconds(1));

  const MigrationStats stats =
      migrate(pid, 0, 1, SocketMigStrategy::incremental_collective);
  ASSERT_TRUE(stats.success);

  auto moved = bed->node(1).node.find(pid);
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  const std::uint64_t before = app->db_responses();
  bed->run_for(SimTime::seconds(2));
  // ~20 more request/response round trips flowed through the translation filter.
  EXPECT_GE(app->db_responses(), before + 15);
  EXPECT_GE(app->db_responses() + 1, app->db_queries_sent());  // last may be in flight
  // The DB server never noticed: still exactly one session, no reconnect.
  EXPECT_EQ(bed->db()->active_sessions(), 1u);
}

TEST_F(LiveMigrationFixture, ChainedMigrationsKeepWorking) {
  dve::ZoneServerConfig zs;
  zs.zone = 2;
  zs.db_addr = bed->db_node()->local_addr();
  zs.db_update_period = SimTime::milliseconds(200);
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();
  bed->run_for(SimTime::seconds(1));

  // 0 -> 1 -> 2 -> 0: translation rules must compose across hops.
  ASSERT_TRUE(migrate(pid, 0, 1, SocketMigStrategy::incremental_collective).success);
  bed->run_for(SimTime::seconds(1));
  ASSERT_TRUE(migrate(pid, 1, 2, SocketMigStrategy::incremental_collective).success);
  bed->run_for(SimTime::seconds(1));
  ASSERT_TRUE(migrate(pid, 2, 0, SocketMigStrategy::incremental_collective).success);

  auto home = bed->node(0).node.find(pid);
  ASSERT_NE(home, nullptr);
  const auto* app = static_cast<const dve::ZoneServerApp*>(home->app().get());
  const std::uint64_t before = app->db_responses();
  bed->run_for(SimTime::seconds(2));
  EXPECT_GT(app->db_responses(), before);
  EXPECT_EQ(bed->db()->active_sessions(), 1u);
}

TEST_F(LiveMigrationFixture, AblationNoTimestampAdjustmentStallsTraffic) {
  // Destination jiffies lag the source's (node order reversed: node2's clock is
  // *behind* node3's). Without the adjustment the restored socket emits tsval
  // values in the peer's past -> PAWS discards them.
  dve::ZoneServerConfig zs;
  zs.zone = 6;
  zs.active_updates = true;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed->node(2).node, zs);  // largest offset
  const Pid pid = proc->pid();

  auto& host = bed->make_client_host();
  dve::TcpDveClient client(host, bed->public_ip());
  client.set_active(SimTime::milliseconds(50), 48);
  client.connect_to_zone(zs.zone);
  bed->run_for(SimTime::seconds(2));

  bed->node(1).migd.set_adjust_timestamps(false);  // the ablation
  MigrationStats stats;
  bool done = false;
  bed->node(2).migd.migrate(pid, bed->node(1).node.local_addr(),
                            SocketMigStrategy::incremental_collective,
                            [&](const MigrationStats& s) {
                              stats = s;
                              done = true;
                            });
  bed->run_for(SimTime::seconds(2));
  ASSERT_TRUE(done && stats.success);

  const std::uint64_t updates_at_migration = client.updates_received();
  bed->run_for(SimTime::seconds(3));
  // The client's PAWS check discards every update the moved server sends: the
  // stream stalls (the healthy run above would have delivered ~60 more).
  EXPECT_LT(client.updates_received() - updates_at_migration, 5u);
}

TEST_F(LiveMigrationFixture, AblationNoDstCacheFixStallsDbSession) {
  dve::ZoneServerConfig zs;
  zs.zone = 7;
  zs.db_addr = bed->db_node()->local_addr();
  zs.db_update_period = SimTime::milliseconds(100);
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  const Pid pid = proc->pid();
  bed->run_for(SimTime::seconds(1));

  // Reach into the DB host's transd and disable the dst-cache replacement —
  // reproducing the Section V-D bug.
  // (The testbed wires transd on the DB node; we emulate the broken install by
  // disabling the fix flag there.)
  bed->db_transd().set_fix_dst_cache(false);

  const MigrationStats stats =
      migrate(pid, 0, 1, SocketMigStrategy::incremental_collective);
  ASSERT_TRUE(stats.success);

  auto moved = bed->node(1).node.find(pid);
  const auto* app = static_cast<const dve::ZoneServerApp*>(moved->app().get());
  const std::uint64_t before = app->db_responses();
  bed->run_for(SimTime::seconds(3));
  // DB responses are steered to the old node by the stale cache entry: the
  // session makes (next to) no progress.
  EXPECT_LT(app->db_responses() - before, 3u);
}

TEST_F(LiveMigrationFixture, MigdRefusesConcurrentSends) {
  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.use_db = false;
  auto p1 = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  zs.zone = 2;
  auto p2 = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::milliseconds(200));

  bool done1 = false;
  ASSERT_TRUE(bed->node(0).migd.migrate(p1->pid(), bed->node(1).node.local_addr(),
                                        SocketMigStrategy::collective,
                                        [&](const MigrationStats&) { done1 = true; }));
  EXPECT_TRUE(bed->node(0).migd.busy_sending());
  EXPECT_FALSE(bed->node(0).migd.migrate(p2->pid(), bed->node(1).node.local_addr(),
                                         SocketMigStrategy::collective,
                                         [](const MigrationStats&) {}));
  bed->run_for(SimTime::seconds(3));
  EXPECT_TRUE(done1);
  EXPECT_FALSE(bed->node(0).migd.busy_sending());
}

TEST_F(LiveMigrationFixture, StatsAccounting) {
  dve::ZoneServerConfig zs;
  zs.zone = 3;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::milliseconds(300));
  const MigrationStats stats = migrate(proc->pid(), 0, 1, SocketMigStrategy::collective);
  ASSERT_TRUE(stats.success);
  EXPECT_EQ(stats.proc_name, "zone_3");
  EXPECT_EQ(stats.src_node, bed->node(0).node.local_addr());
  EXPECT_EQ(stats.dst_node, bed->node(1).node.local_addr());
  // The precopy moved the (12 MiB+) anonymous image; freeze moved far less.
  EXPECT_GT(stats.precopy_channel_bytes, 12u << 20);
  EXPECT_LT(stats.freeze_channel_bytes, 1u << 20);
  EXPECT_GT(stats.freeze_socket_bytes, 0u);
  EXPECT_LE(stats.t_freeze_begin, stats.t_resume);
  EXPECT_GE(stats.t_freeze_begin, stats.t_start);
}

TEST_F(LiveMigrationFixture, FreezeSpanMatchesStatsAndTraceExports) {
  // Acceptance criterion for the observability layer: a live migration yields
  // a Perfetto-loadable trace whose mig.freeze span equals MigStats exactly —
  // the stats are *derived from* the span, so drift is impossible by
  // construction, and this test pins that property.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();

  dve::ZoneServerConfig zs;
  zs.zone = 5;
  zs.db_addr = bed->db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(1));
  const MigrationStats stats =
      migrate(proc->pid(), 0, 1, SocketMigStrategy::incremental_collective);
  ASSERT_TRUE(stats.success);

  const obs::Span* freeze = tracer.last_completed("mig.freeze");
  ASSERT_NE(freeze, nullptr);
  EXPECT_EQ(freeze->duration_ns(), stats.freeze_time().ns);  // exact, not approx
  EXPECT_EQ(freeze->t_begin_ns, stats.t_freeze_begin.ns);
  EXPECT_EQ(freeze->t_end_ns, stats.t_resume.ns);

  // The whole phase tree completed, on both the source and destination tracks.
  for (const char* name : {"mig.total", "mig.precopy", "mig.precopy_round",
                           "mig.capture_arm", "mig.final_transfer", "mig.restore"}) {
    EXPECT_NE(tracer.last_completed(name), nullptr) << name;
  }
  EXPECT_EQ(tracer.open_count(), 0u);

  const std::string trace = tracer.chrome_trace_json();
  std::string err;
  EXPECT_TRUE(testutil::JsonLint::valid(trace, &err)) << err;
  EXPECT_NE(trace.find("\"name\":\"mig.freeze\""), std::string::npos);
  EXPECT_NE(trace.find("/migd.src"), std::string::npos);
  EXPECT_NE(trace.find("/migd.dst"), std::string::npos);
  tracer.clear();
}

}  // namespace
}  // namespace dvemig
