// Socket-migration building blocks: capture filters (loss prevention + seq
// dedup + reinjection), translation filters (header rewrite, checksum fixup,
// dst-cache replacement), socket images, timestamp adjustment, delta tracking.
#include <gtest/gtest.h>

#include "src/check/verifier.hpp"
#include "src/mig/capture.hpp"
#include "src/mig/cost_model.hpp"
#include "src/mig/delta_tracker.hpp"
#include "src/mig/socket_image.hpp"
#include "src/mig/translation.hpp"
#include "src/net/switch.hpp"

namespace dvemig::mig {
namespace {

using stack::NetStack;
using stack::TcpSocket;
using stack::TcpState;

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);
const net::Ipv4Addr kAddrC = net::Ipv4Addr::octets(10, 0, 0, 3);

check::VerifierConfig audit_cfg() {
  check::VerifierConfig cfg;
  cfg.abort_on_violation = false;  // report through gtest, not abort()
  return cfg;
}

struct ThreeHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  NetStack a{engine, "hostA", SimTime::seconds(100)};
  NetStack b{engine, "hostB", SimTime::seconds(350)};
  NetStack c{engine, "hostC", SimTime::seconds(900)};
  // dvemig-verify audits all three stacks after every event of every test.
  check::Verifier verify{engine, audit_cfg()};

  ThreeHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
    c.add_interface(kAddrC,
                    sw.attach(kAddrC, [this](net::Packet p) { c.rx(std::move(p)); }));
    verify.watch_stack(a);
    verify.watch_stack(b);
    verify.watch_stack(c);
  }

  ~ThreeHosts() {
    EXPECT_TRUE(verify.clean())
        << verify.violations().front().rule << ": "
        << verify.violations().front().detail;
  }

  std::pair<TcpSocket::Ptr, TcpSocket::Ptr> connect(NetStack& from, NetStack& to,
                                                    net::Ipv4Addr to_addr,
                                                    net::Port port) {
    auto listener = to.make_tcp();
    listener->bind(to_addr, port);
    listener->listen(8);
    auto client = from.make_tcp();
    client->connect(net::Endpoint{to_addr, port});
    engine.run();
    auto server = listener->accept();
    EXPECT_NE(server, nullptr);
    listener->close();
    return {client, server};
  }
};

// --------------------------------------------------------------- CaptureSpec

TEST(CaptureSpecTest, MatchSemantics) {
  CaptureSpec spec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000};
  net::TcpHeader hdr;
  net::Packet hit = net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, {});
  net::Packet wrong_port = net::make_tcp({kAddrA, 1111}, {kAddrB, 9001}, hdr, {});
  net::Packet wrong_src = net::make_tcp({kAddrA, 2222}, {kAddrB, 9000}, hdr, {});
  net::Packet wrong_proto = net::make_udp({kAddrA, 1111}, {kAddrB, 9000}, {});
  EXPECT_TRUE(spec.matches(hit));
  EXPECT_FALSE(spec.matches(wrong_port));
  EXPECT_FALSE(spec.matches(wrong_src));
  EXPECT_FALSE(spec.matches(wrong_proto));

  CaptureSpec wildcard{net::IpProto::tcp, false, {}, 9000};
  EXPECT_TRUE(wildcard.matches(hit));
  EXPECT_TRUE(wildcard.matches(wrong_src));  // remote ignored
}

TEST(CaptureSpecTest, SerializationRoundTrip) {
  CaptureSpec spec{net::IpProto::udp, true, net::Endpoint{kAddrC, 27960}, 5000};
  BinaryWriter w;
  spec.serialize(w);
  BinaryReader r(w.buffer());
  const CaptureSpec back = CaptureSpec::deserialize(r);
  EXPECT_EQ(back.proto, spec.proto);
  EXPECT_EQ(back.match_remote, spec.match_remote);
  EXPECT_EQ(back.remote, spec.remote);
  EXPECT_EQ(back.local_port, spec.local_port);
}

// ------------------------------------------------------------ CaptureManager

TEST(CaptureManagerTest, StealsMatchingPacketsAndReinjects) {
  ThreeHosts h;
  CaptureManager capture(h.b);
  const std::uint64_t session = capture.begin_session();
  capture.add_spec(session, CaptureSpec{net::IpProto::udp, false, {}, 5000});

  // No socket exists yet: without capture these packets would be lost.
  for (int i = 0; i < 3; ++i) {
    h.b.rx(net::make_udp({kAddrA, 1234}, {kAddrB, 5000},
                         Buffer{static_cast<std::uint8_t>(i)}));
  }
  EXPECT_EQ(capture.queued(session), 3u);
  EXPECT_EQ(h.b.stats().rx_hook_stolen, 3u);

  // Socket appears (as after restore); reinjection delivers in order.
  auto sock = h.b.make_udp();
  sock->bind(kAddrB, 5000);
  EXPECT_EQ(capture.finish_session(session), 3u);
  ASSERT_EQ(sock->pending(), 3u);
  EXPECT_EQ(sock->recv()->data, (Buffer{0}));
  EXPECT_EQ(sock->recv()->data, (Buffer{1}));
  EXPECT_EQ(sock->recv()->data, (Buffer{2}));
}

TEST(CaptureManagerTest, TcpSequenceDeduplication) {
  ThreeHosts h;
  CaptureManager capture(h.b);
  const std::uint64_t session = capture.begin_session();
  capture.add_spec(session,
                   CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000});

  net::TcpHeader hdr;
  hdr.seq = 5000;
  hdr.flags = net::tcp_flags::ack | net::tcp_flags::psh;
  // The same retransmitted segment arrives three times.
  for (int i = 0; i < 3; ++i) {
    h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer(10, 1)));
  }
  hdr.seq = 5010;  // a different segment
  h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer(10, 2)));

  EXPECT_EQ(capture.queued(session), 2u);  // duplicates stored only once
  EXPECT_EQ(capture.total_deduplicated(), 2u);
  capture.abort_session(session);
}

TEST(CaptureManagerTest, NonMatchingTrafficUnaffected) {
  ThreeHosts h;
  auto other = h.b.make_udp();
  other->bind(kAddrB, 6000);
  CaptureManager capture(h.b);
  const std::uint64_t session = capture.begin_session();
  capture.add_spec(session, CaptureSpec{net::IpProto::udp, false, {}, 5000});
  h.b.rx(net::make_udp({kAddrA, 1234}, {kAddrB, 6000}, Buffer{9}));
  EXPECT_EQ(other->pending(), 1u);  // flowed straight past the capture hook
  EXPECT_EQ(capture.queued(session), 0u);
  capture.abort_session(session);
}

TEST(CaptureManagerTest, HookRemovedWhenNoSessions) {
  ThreeHosts h;
  CaptureManager capture(h.b);
  EXPECT_EQ(h.b.netfilter().hook_count(stack::Hook::local_in), 0u);
  const std::uint64_t s1 = capture.begin_session();
  EXPECT_EQ(h.b.netfilter().hook_count(stack::Hook::local_in), 1u);
  const std::uint64_t s2 = capture.begin_session();
  EXPECT_EQ(h.b.netfilter().hook_count(stack::Hook::local_in), 1u);  // shared hook
  capture.abort_session(s1);
  capture.finish_session(s2);
  EXPECT_EQ(h.b.netfilter().hook_count(stack::Hook::local_in), 0u);
}

// --------------------------------------------------------- TranslationManager

TEST(TranslationTest, RuleSerializationRoundTrip) {
  TranslationRule rule{net::IpProto::tcp, net::Endpoint{kAddrC, 3306},
                       net::Endpoint{kAddrA, 45000}, kAddrB};
  BinaryWriter w;
  rule.serialize(w);
  BinaryReader r(w.buffer());
  const TranslationRule back = TranslationRule::deserialize(r);
  EXPECT_EQ(back.peer_local, rule.peer_local);
  EXPECT_EQ(back.mig_old, rule.mig_old);
  EXPECT_EQ(back.mig_new_addr, rule.mig_new_addr);
}

TEST(TranslationTest, OutgoingRewriteKeepsChecksumValid) {
  ThreeHosts h;
  TranslationManager trans(h.c);
  trans.install(TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrC, 3306},
                                net::Endpoint{kAddrA, 45000}, kAddrB});

  // Send from a C socket toward the *old* address; the LOCAL_OUT filter must
  // retarget it to B with a checksum that still verifies.
  auto [client, server] = h.connect(h.c, h.a, kAddrA, 45000);
  (void)server;
  // Hand-roll a socket with the rule's exact endpoints instead: the rule matches
  // (src C:3306, dst A:45000).
  auto peer = h.c.make_tcp();
  peer->bind(kAddrC, 3306);
  net::TcpHeader hdr;
  hdr.flags = net::tcp_flags::ack;
  hdr.seq = 1;
  net::Packet captured_at_b{};
  bool got_b = false;
  stack::HookHandle probe = h.b.netfilter().register_hook(
      stack::Hook::local_in, -50, [&](net::Packet& p) {
        captured_at_b = p;
        got_b = true;
        return stack::Verdict::stolen;
      });
  net::Packet p = net::make_tcp({kAddrC, 3306}, {kAddrA, 45000}, hdr, Buffer(32, 7));
  h.c.send_from(*peer, std::move(p));
  h.engine.run();
  ASSERT_TRUE(got_b);  // retargeted to B
  EXPECT_EQ(captured_at_b.dst, kAddrB);
  EXPECT_TRUE(net::checksum_ok(captured_at_b));  // incremental fixup correct
  EXPECT_EQ(trans.out_rewritten(), 1u);
  probe.release();
}

TEST(TranslationTest, IncomingRewriteRestoresOriginalSource) {
  ThreeHosts h;
  TranslationManager trans(h.c);
  trans.install(TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrC, 3306},
                                net::Endpoint{kAddrA, 45000}, kAddrB});
  // A packet from the migrated socket (now at B) arrives at C; the LOCAL_IN
  // filter must rewrite src back to A before the socket sees it.
  net::Packet seen{};
  stack::HookHandle probe = h.c.netfilter().register_hook(
      stack::Hook::local_in, 50, [&](net::Packet& p) {  // after the translation
        seen = p;
        return stack::Verdict::stolen;
      });
  net::TcpHeader hdr;
  hdr.flags = net::tcp_flags::ack;
  h.c.rx(net::make_tcp({kAddrB, 45000}, {kAddrC, 3306}, hdr, Buffer(16, 3)));
  EXPECT_EQ(seen.src, kAddrA);
  EXPECT_TRUE(net::checksum_ok(seen));
  EXPECT_EQ(trans.in_rewritten(), 1u);
  probe.release();
}

TEST(TranslationTest, DstCacheReplacedOnInstall) {
  ThreeHosts h;
  // Real connection C -> A so the peer socket and its dst cache exist.
  auto [peer, mig_sock] = h.connect(h.c, h.a, kAddrA, 45000);
  peer->send(Buffer(10, 1));
  h.engine.run();
  ASSERT_EQ(h.c.dst_cache_lookup(peer->sock_id()), kAddrA);

  TranslationManager trans(h.c);
  trans.install(TranslationRule{net::IpProto::tcp, peer->local(), peer->remote(),
                                kAddrB});
  EXPECT_EQ(h.c.dst_cache_lookup(peer->sock_id()), kAddrB);
}

TEST(TranslationTest, WithoutDstCacheFixFramesGoToOldNode) {
  ThreeHosts h;
  auto [peer, mig_sock] = h.connect(h.c, h.a, kAddrA, 45000);
  peer->send(Buffer(10, 1));
  h.engine.run();

  TranslationManager trans(h.c);
  trans.install(TranslationRule{net::IpProto::tcp, peer->local(), peer->remote(),
                                kAddrB},
                /*fix_dst_cache=*/false);  // the Section V-D bug, reproduced
  std::uint64_t to_b = 0, to_a_stale = 0;
  stack::HookHandle at_b = h.b.netfilter().register_hook(
      stack::Hook::local_in, -50, [&](net::Packet& p) {
        if (p.proto == net::IpProto::tcp && p.tcp.dport == 45000) ++to_b;
        (void)p;
        return stack::Verdict::accept;
      });
  stack::HookHandle at_a = h.a.netfilter().register_hook(
      stack::Hook::local_in, -50, [&](net::Packet& p) {
        // Header says B, but the stale cache steered the frame to A.
        if (p.proto == net::IpProto::tcp && p.dst == kAddrB) ++to_a_stale;
        return stack::Verdict::accept;
      });
  peer->send(Buffer(10, 2));
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(5));
  EXPECT_EQ(to_b, 0u);
  EXPECT_GE(to_a_stale, 1u);
  at_b.release();
  at_a.release();
}

TEST(TranslationTest, HooksRemovedWithLastRule) {
  ThreeHosts h;
  TranslationManager trans(h.c);
  const std::uint64_t r1 = trans.install(
      TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrC, 1}, net::Endpoint{kAddrA, 2},
                      kAddrB});
  EXPECT_EQ(trans.active_rules(), 1u);
  EXPECT_EQ(h.c.netfilter().hook_count(stack::Hook::local_out), 1u);
  trans.remove(r1);
  EXPECT_EQ(trans.active_rules(), 0u);
  EXPECT_EQ(h.c.netfilter().hook_count(stack::Hook::local_out), 0u);
}

// ------------------------------------------------------ extract/restore TCP

TEST(SocketImageTest, TcpExtractCapturesStateAndQueues) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  client->send(Buffer(3000, 5));  // lands in server's receive queue, unread
  h.engine.run();

  const TcpImage img = extract_tcp(*server, 4);
  EXPECT_EQ(img.fd, 4);
  EXPECT_EQ(img.local, server->local());
  EXPECT_EQ(img.remote, server->remote());
  EXPECT_EQ(static_cast<TcpState>(img.state), TcpState::established);
  EXPECT_EQ(img.rcv_nxt, server->cb().rcv_nxt);
  std::size_t rx_bytes = 0;
  for (const auto& s : img.receive_queue) rx_bytes += s.data.size();
  EXPECT_EQ(rx_bytes, 3000u);
}

TEST(SocketImageTest, TcpSectionsRoundTrip) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  client->send(Buffer(2000, 5));
  h.engine.run();
  const TcpImage img = extract_tcp(*server, 4);

  BinaryWriter ws, wd, wq;
  img.serialize_static(ws);
  img.serialize_dynamic(wd);
  img.serialize_queues(wq);
  // The static section carries the struct tcp_sock pad: this is what makes a
  // full dump ~kTcpSockStructPad bytes per connection.
  EXPECT_GT(ws.size(), kTcpSockStructPad);

  TcpImage back;
  BinaryReader rs(ws.buffer()), rd(wd.buffer()), rq(wq.buffer());
  back.deserialize_static(rs);
  back.deserialize_dynamic(rd);
  back.deserialize_queues(rq);
  EXPECT_EQ(back.local, img.local);
  EXPECT_EQ(back.remote, img.remote);
  EXPECT_EQ(back.snd_nxt, img.snd_nxt);
  EXPECT_EQ(back.rcv_nxt, img.rcv_nxt);
  EXPECT_EQ(back.receive_queue.size(), img.receive_queue.size());
  EXPECT_EQ(back.ts_offset, img.ts_offset);
}

TEST(SocketImageTest, RestoreRehashesAndPreservesData) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  client->send(Buffer(1000, 9));
  h.engine.run();
  const TcpImage img = extract_tcp(*server, 4);

  // "Migrate" B's socket to C. B's copy is disabled first.
  server->clear_timers();
  h.b.table().ehash_remove(stack::FourTuple{server->local(), server->remote()});
  server->set_hashed_established(false);
  server->set_migration_disabled(true);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = kAddrB;
  ctx.dst_node_local_addr = kAddrC;
  ctx.src_jiffies_at_ckpt = h.b.jiffies();
  ctx.src_local_now_at_ckpt_ns = h.b.local_now_ns();
  auto restored = restore_tcp(img, ctx);

  // Local address rewritten B -> C (in-cluster socket); rehashed on C.
  EXPECT_EQ(restored->local().addr, kAddrC);
  EXPECT_EQ(restored->local().port, img.local.port);
  EXPECT_EQ(h.c.table().ehash_lookup(
                stack::FourTuple{restored->local(), restored->remote()}),
            restored);
  EXPECT_EQ(restored->read(), Buffer(1000, 9));  // queued data survived
}

TEST(SocketImageTest, TimestampAdjustmentKeepsTsvalMonotonic) {
  ThreeHosts h;
  // a(+100s) -> migrate server socket from b(+350s) to c(+900s): jiffies jump
  // forward by 55,000 — without adjustment tsval would leap; migrating c -> b
  // would make it go backwards and trip PAWS. Check the offset math directly.
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  client->send(Buffer(100, 1));
  h.engine.run();
  const TcpImage img = extract_tcp(*server, 4);

  const std::uint32_t last_tsval_from_b =
      static_cast<std::uint32_t>(h.b.jiffies() + img.ts_offset);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = kAddrB;
  ctx.dst_node_local_addr = kAddrC;
  ctx.src_jiffies_at_ckpt = h.b.jiffies();
  ctx.src_local_now_at_ckpt_ns = h.b.local_now_ns();
  server->set_migration_disabled(true);
  h.b.table().ehash_remove(stack::FourTuple{server->local(), server->remote()});
  server->set_hashed_established(false);

  auto restored = restore_tcp(img, ctx);
  const std::uint32_t first_tsval_from_c =
      static_cast<std::uint32_t>(h.c.jiffies() + restored->cb().ts_offset);
  // Continues exactly where the source's timestamp clock left off.
  EXPECT_EQ(first_tsval_from_c, last_tsval_from_b);
}

TEST(SocketImageTest, TimestampAdjustmentDisabledLeavesSkew) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  const TcpImage img = extract_tcp(*server, 4);
  server->set_migration_disabled(true);
  h.b.table().ehash_remove(stack::FourTuple{server->local(), server->remote()});
  server->set_hashed_established(false);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = kAddrB;
  ctx.dst_node_local_addr = kAddrC;
  ctx.src_jiffies_at_ckpt = h.b.jiffies();
  ctx.src_local_now_at_ckpt_ns = h.b.local_now_ns();
  ctx.adjust_timestamps = false;  // the ablation
  auto restored = restore_tcp(img, ctx);
  const std::uint32_t tsval_c =
      static_cast<std::uint32_t>(h.c.jiffies() + restored->cb().ts_offset);
  const std::uint32_t tsval_b =
      static_cast<std::uint32_t>(h.b.jiffies() + img.ts_offset);
  EXPECT_NE(tsval_c, tsval_b);  // 550s of jiffies skew leaks through
}

TEST(SocketImageTest, PublicAddressNotRewritten) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  const TcpImage img = extract_tcp(*server, 4);
  server->set_migration_disabled(true);
  h.b.table().ehash_remove(stack::FourTuple{server->local(), server->remote()});
  server->set_hashed_established(false);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = net::Ipv4Addr::octets(9, 9, 9, 9);  // not B's addr
  ctx.dst_node_local_addr = kAddrC;
  ctx.src_jiffies_at_ckpt = h.b.jiffies();
  ctx.src_local_now_at_ckpt_ns = h.b.local_now_ns();
  auto restored = restore_tcp(img, ctx);
  EXPECT_EQ(restored->local().addr, kAddrB);  // treated as the shared public IP
}

TEST(SocketImageTest, ListenerWithAcceptQueueMigrates) {
  ThreeHosts h;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(8);
  auto c1 = h.a.make_tcp();
  auto c2 = h.a.make_tcp();
  c1->connect(net::Endpoint{kAddrB, 9000});
  c2->connect(net::Endpoint{kAddrB, 9000});
  h.engine.run();
  ASSERT_EQ(listener->accept_queue_length(), 2u);

  const TcpImage img = extract_tcp(*listener, 3);
  EXPECT_TRUE(img.listening);
  ASSERT_EQ(img.accept_children.size(), 2u);

  // Disable everything on B.
  for (const auto& child : listener->accept_queue()) {
    h.b.table().ehash_remove(stack::FourTuple{child->local(), child->remote()});
    child->set_hashed_established(false);
    child->set_migration_disabled(true);
  }
  h.b.table().bhash_remove(*listener, 9000);
  listener->set_hashed_bound(false);
  listener->set_migration_disabled(true);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = net::Ipv4Addr::octets(9, 9, 9, 9);
  ctx.dst_node_local_addr = kAddrC;
  ctx.src_jiffies_at_ckpt = h.b.jiffies();
  ctx.src_local_now_at_ckpt_ns = h.b.local_now_ns();
  auto restored = restore_tcp(img, ctx);
  EXPECT_EQ(restored->state(), TcpState::listen);
  EXPECT_EQ(restored->accept_queue_length(), 2u);
  auto child = restored->accept();
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->state(), TcpState::established);
  // The child is live on C: it can exchange data with its original peer.
  EXPECT_EQ(h.c.table().ehash_lookup(stack::FourTuple{child->local(), child->remote()}),
            child);
}

// ------------------------------------------------------ extract/restore UDP

TEST(SocketImageTest, UdpExtractRestoreWithQueue) {
  ThreeHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 27960);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 27960}, Buffer{1, 2, 3});
  h.engine.run();
  ASSERT_EQ(server->pending(), 1u);

  const UdpImage img = extract_udp(*server, 5);
  EXPECT_TRUE(img.bound);
  ASSERT_EQ(img.receive_queue.size(), 1u);

  h.b.table().bhash_remove(*server, 27960);
  server->set_migration_disabled(true);

  RestoreContext ctx;
  ctx.stack = &h.c;
  ctx.src_node_local_addr = net::Ipv4Addr::octets(9, 9, 9, 9);
  ctx.dst_node_local_addr = kAddrC;
  auto restored = restore_udp(img, ctx);
  EXPECT_TRUE(h.c.table().port_bound(27960, stack::SocketType::udp));
  ASSERT_EQ(restored->pending(), 1u);
  EXPECT_EQ(restored->recv()->data, (Buffer{1, 2, 3}));
}

// ------------------------------------------------------------- DeltaTracker

TEST(DeltaTrackerTest, FirstEmitIsFullThenNothingWhenUnchanged) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  SocketDeltaTracker tracker;
  const TcpImage img = extract_tcp(*server, 4);

  BinaryWriter out1;
  EXPECT_NE(tracker.emit_tcp(img, out1, false), SectionFlags::none);
  EXPECT_GT(out1.size(), kTcpSockStructPad);  // full dump

  BinaryWriter out2;
  EXPECT_EQ(tracker.emit_tcp(extract_tcp(*server, 4), out2, false),
            SectionFlags::none);
  EXPECT_EQ(out2.size(), 0u);  // unchanged socket costs zero bytes
}

TEST(DeltaTrackerTest, TrafficChangesOnlyDynamicAndQueues) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  SocketDeltaTracker tracker;
  BinaryWriter out1;
  (void)tracker.emit_tcp(extract_tcp(*server, 4), out1, false);

  client->send(Buffer(256, 1));
  h.engine.run();
  BinaryWriter out2;
  const SectionFlags flags = tracker.emit_tcp(extract_tcp(*server, 4), out2, false);
  EXPECT_NE(flags & SectionFlags::dyn, 0);
  EXPECT_NE(flags & SectionFlags::queues, 0);
  EXPECT_EQ(flags & SectionFlags::stat, 0);  // the big static pad is NOT resent
  EXPECT_LT(out2.size(), out1.size());
}

TEST(DeltaTrackerTest, MergeOnDestinationReassemblesImage) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  SocketDeltaTracker tracker;
  SocketStaging staging;

  BinaryWriter round1;
  (void)tracker.emit_tcp(extract_tcp(*server, 4), round1, false);
  BinaryReader r1(round1.buffer());
  read_socket_record(r1, staging);

  client->send(Buffer(512, 2));
  h.engine.run();
  const TcpImage latest = extract_tcp(*server, 4);
  BinaryWriter round2;
  (void)tracker.emit_tcp(latest, round2, false);
  BinaryReader r2(round2.buffer());
  read_socket_record(r2, staging);

  ASSERT_EQ(staging.size(), 1u);
  const StagedSocket& staged = staging.begin()->second;
  EXPECT_TRUE(staged.complete());
  EXPECT_EQ(staged.tcp.rcv_nxt, latest.rcv_nxt);  // dynamic section is current
  std::size_t rx = 0;
  for (const auto& s : staged.tcp.receive_queue) rx += s.data.size();
  EXPECT_EQ(rx, 512u);
}

TEST(DeltaTrackerTest, ForceAllResendsEverything) {
  ThreeHosts h;
  auto [client, server] = h.connect(h.a, h.b, kAddrB, 9000);
  h.engine.run();
  SocketDeltaTracker tracker;
  BinaryWriter out1, out2;
  (void)tracker.emit_tcp(extract_tcp(*server, 4), out1, true);
  (void)tracker.emit_tcp(extract_tcp(*server, 4), out2, true);
  EXPECT_NEAR(static_cast<double>(out2.size()), static_cast<double>(out1.size()), 8);
}

TEST(DeltaTrackerTest, UdpDeltas) {
  ThreeHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 27960);
  SocketDeltaTracker tracker;
  BinaryWriter out1;
  EXPECT_NE(tracker.emit_udp(extract_udp(*server, 5), out1, false),
            SectionFlags::none);
  BinaryWriter out2;
  EXPECT_EQ(tracker.emit_udp(extract_udp(*server, 5), out2, false),
            SectionFlags::none);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 27960}, Buffer{7});
  h.engine.run();
  BinaryWriter out3;
  EXPECT_NE(tracker.emit_udp(extract_udp(*server, 5), out3, false),
            SectionFlags::none);
  EXPECT_LT(out3.size(), out1.size());  // queue section only, no struct pad
}

}  // namespace
}  // namespace dvemig::mig
