// Mutual migration of in-cluster peers — the "careful synchronization among the
// hosts involved" the paper defers to future work (Section VI-C).
//
// Two processes hold a direct TCP connection to each other. Either end may
// migrate, repeatedly and in any order; the translation machinery must resolve
// where the peer *currently* lives (via the local translation rules), retarget
// the restored socket, and clean up rules whose subject moved away.
#include <gtest/gtest.h>

#include "src/dve/testbed.hpp"

namespace dvemig {
namespace {

using mig::MigrationStats;
using mig::SocketMigStrategy;

struct MutualFixture : ::testing::Test {
  std::unique_ptr<dve::Testbed> bed;
  std::shared_ptr<proc::Process> proc_a;
  std::shared_ptr<proc::Process> proc_b;
  Fd fd_a{-1};
  Fd fd_b{-1};
  // Where each process currently runs (node index).
  std::size_t at_a{0};
  std::size_t at_b{1};

  void SetUp() override {
    dve::TestbedConfig cfg;
    cfg.dve_nodes = 3;
    cfg.with_db = false;
    bed = std::make_unique<dve::Testbed>(cfg);

    proc_a = bed->node(0).node.spawn("peer_a");
    proc_b = bed->node(1).node.spawn("peer_b");
    proc_a->mem().mmap(1 << 20, proc::prot_read | proc::prot_write, "[heap]");
    proc_b->mem().mmap(1 << 20, proc::prot_read | proc::prot_write, "[heap]");

    // Direct in-cluster connection A(node1) <-> B(node2), like two neighboring
    // zone servers synchronising boundary state.
    auto listener = bed->node(1).node.stack().make_tcp();
    listener->bind(bed->node(1).node.local_addr(), 25000);
    listener->listen(4);
    auto sock_a = bed->node(0).node.stack().make_tcp();
    sock_a->bind(bed->node(0).node.local_addr(), 0);
    sock_a->connect(net::Endpoint{bed->node(1).node.local_addr(), 25000});
    bed->run_for(SimTime::milliseconds(50));
    auto sock_b = listener->accept();
    ASSERT_NE(sock_b, nullptr);
    listener->close();
    fd_a = proc_a->files().attach_socket(sock_a);
    fd_b = proc_b->files().attach_socket(sock_b);
  }

  stack::TcpSocket& sock_of(std::size_t node, Pid pid, Fd fd) {
    auto proc = bed->node(node).node.find(pid);
    EXPECT_NE(proc, nullptr);
    return static_cast<stack::TcpSocket&>(*proc->files().get(fd).socket);
  }

  /// Ping-pong: data must flow in both directions across the link.
  void expect_exchange(const char* when) {
    auto& sa = sock_of(at_a, proc_a->pid(), fd_a);
    auto& sb = sock_of(at_b, proc_b->pid(), fd_b);
    (void)sa.read();
    (void)sb.read();
    sa.send(Buffer(100, 0xA1));
    bed->run_for(SimTime::milliseconds(50));
    EXPECT_EQ(sb.read().size(), 100u) << "A->B failed " << when;
    sb.send(Buffer(64, 0xB2));
    bed->run_for(SimTime::milliseconds(50));
    EXPECT_EQ(sa.read().size(), 64u) << "B->A failed " << when;
  }

  MigrationStats migrate(Pid pid, std::size_t from, std::size_t to) {
    MigrationStats stats;
    bool done = false;
    EXPECT_TRUE(bed->node(from).migd.migrate(
        pid, bed->node(to).node.local_addr(),
        SocketMigStrategy::incremental_collective,
        [&](const MigrationStats& s) {
          stats = s;
          done = true;
        }));
    bed->run_for(SimTime::seconds(3));
    EXPECT_TRUE(done && stats.success);
    return stats;
  }
};

TEST_F(MutualFixture, OneEndMigrates) {
  expect_exchange("initially");
  migrate(proc_a->pid(), 0, 2);
  at_a = 2;
  expect_exchange("after A moved");
  // The filter lives on B's host and translates both directions.
  EXPECT_EQ(bed->node(1).migd.translation().active_rules(), 1u);
  EXPECT_GT(bed->node(1).migd.translation().out_rewritten(), 0u);
}

TEST_F(MutualFixture, BothEndsMigrate) {
  migrate(proc_a->pid(), 0, 2);
  at_a = 2;
  expect_exchange("after A moved");

  // Now the *peer* of a translated connection migrates: its migd must resolve
  // A's current host from the local rule and install the new filter there.
  migrate(proc_b->pid(), 1, 0);
  at_b = 0;
  expect_exchange("after B moved too");

  // B's old host no longer needs its rule about A (cleaned up on departure)...
  EXPECT_EQ(bed->node(1).migd.translation().active_rules(), 0u);
  // ...while A's host now holds the rule about B.
  EXPECT_EQ(bed->node(2).migd.translation().active_rules(), 1u);

  // The restored B speaks to A's real location directly.
  EXPECT_EQ(sock_of(at_b, proc_b->pid(), fd_b).remote().addr,
            bed->node(2).node.local_addr());
}

TEST_F(MutualFixture, RepeatedAlternatingMigrations) {
  expect_exchange("initially");
  migrate(proc_a->pid(), 0, 2);
  at_a = 2;
  expect_exchange("A: 1 -> 3");
  migrate(proc_b->pid(), 1, 0);
  at_b = 0;
  expect_exchange("B: 2 -> 1");
  migrate(proc_a->pid(), 2, 1);
  at_a = 1;
  expect_exchange("A: 3 -> 2");
  migrate(proc_b->pid(), 0, 2);
  at_b = 2;
  expect_exchange("B: 1 -> 3");

  // Each socket addresses its peer's host *as of its own last migration* (A last
  // moved while B sat on node1; B last moved while A sat on node2)...
  EXPECT_EQ(sock_of(at_a, proc_a->pid(), fd_a).remote().addr,
            bed->node(0).node.local_addr());
  EXPECT_EQ(sock_of(at_b, proc_b->pid(), fd_b).remote().addr,
            bed->node(1).node.local_addr());
  // ...and the hosts carry the translation rules that bridge the difference
  // (B moved away from node1 after A retargeted to it).
  EXPECT_GE(bed->node(1).migd.translation().active_rules(), 1u);
}

TEST_F(MutualFixture, TrafficInFlightDuringPeerMigration) {
  // A steady stream A->B while B migrates; every byte must arrive exactly once.
  migrate(proc_a->pid(), 0, 2);
  at_a = 2;

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  auto find_proc = [this](Pid pid) -> std::shared_ptr<proc::Process> {
    for (std::size_t n = 0; n < bed->node_count(); ++n) {
      if (auto p = bed->node(n).node.find(pid)) return p;
    }
    return nullptr;
  };
  // Sender and reader driven by engine events; both tolerate the freeze window.
  for (int i = 0; i < 150; ++i) {
    bed->engine().schedule_after(SimTime::milliseconds(20 * i), [&, this] {
      auto pa = find_proc(proc_a->pid());
      if (pa == nullptr || pa->frozen()) return;
      auto& sa = static_cast<stack::TcpSocket&>(*pa->files().get(fd_a).socket);
      if (sa.migration_disabled()) return;
      sa.send(Buffer(32, 0x77));
      sent += 32;
    });
    bed->engine().schedule_after(SimTime::milliseconds(20 * i + 10), [&, this] {
      auto pb = find_proc(proc_b->pid());
      if (pb == nullptr || pb->frozen()) return;
      auto& sb = static_cast<stack::TcpSocket&>(*pb->files().get(fd_b).socket);
      if (sb.migration_disabled()) return;
      received += sb.read().size();
    });
  }
  bool mig_done = false;
  bed->engine().schedule_after(SimTime::milliseconds(600), [&, this] {
    bed->node(1).migd.migrate(proc_b->pid(), bed->node(0).node.local_addr(),
                              SocketMigStrategy::incremental_collective,
                              [&](const MigrationStats& s) {
                                EXPECT_TRUE(s.success);
                                at_b = 0;
                                mig_done = true;
                              });
  });
  bed->run_for(SimTime::seconds(5));
  EXPECT_TRUE(mig_done);

  auto& sb = sock_of(at_b, proc_b->pid(), fd_b);
  received += sb.read().size();
  EXPECT_EQ(received, sent);  // nothing lost, nothing duplicated
  EXPECT_GT(sent, 100u * 32u / 2);
}

}  // namespace
}  // namespace dvemig
