// PacketTracer (the simulator's tcpdump) tests.
#include <gtest/gtest.h>

#include "src/net/checksum.hpp"
#include "src/net/switch.hpp"
#include "src/stack/tracer.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::stack {
namespace {

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{}};
  NetStack a{engine, "hostA", SimTime::seconds(1)};
  NetStack b{engine, "hostB", SimTime::seconds(2)};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
  }
};

TEST(TracerTest, RecordsBothDirections) {
  TwoHosts h;
  PacketTracer tracer(h.b);
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer(10, 1));
  h.engine.run();
  const auto req = server->recv();
  ASSERT_TRUE(req.has_value());
  h.engine.schedule_after(SimTime::milliseconds(1), [&] {
    server->send_to(req->from, Buffer(20, 2));
  });
  h.engine.run();

  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].dir, PacketTracer::Direction::in);
  EXPECT_EQ(tracer.records()[0].packet.payload.size(), 10u);
  EXPECT_EQ(tracer.records()[1].dir, PacketTracer::Direction::out);
  EXPECT_EQ(tracer.records()[1].packet.payload.size(), 20u);
  EXPECT_LT(tracer.records()[0].t, tracer.records()[1].t);
}

TEST(TracerTest, FilterRestrictsCapture) {
  TwoHosts h;
  PacketTracer tracer(h.b);
  tracer.set_filter([](const net::Packet& p) { return p.dport() == 5000; });
  auto s1 = h.b.make_udp();
  s1->bind(kAddrB, 5000);
  auto s2 = h.b.make_udp();
  s2->bind(kAddrB, 6000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  client->send_to(net::Endpoint{kAddrB, 6000}, Buffer{2});
  h.engine.run();
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].packet.dport(), 5000);
}

TEST(TracerTest, DumpFormat) {
  TwoHosts h;
  PacketTracer tracer(h.b);
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer(256, 1));
  h.engine.run();
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("IN  UDP"), std::string::npos);
  EXPECT_NE(dump.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(dump.find("> 10.0.0.2:5000 len 256"), std::string::npos);
}

TEST(TracerTest, CapLimitsMemory) {
  TwoHosts h;
  PacketTracer tracer(h.b, /*max_records=*/5);
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  for (int i = 0; i < 12; ++i) {
    client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  }
  h.engine.run();
  EXPECT_EQ(tracer.records().size(), 5u);
  EXPECT_EQ(tracer.dropped_by_cap(), 7u);
}

TEST(TracerTest, DetachesOnDestruction) {
  TwoHosts h;
  {
    PacketTracer tracer(h.b);
    EXPECT_EQ(h.b.netfilter().hook_count(Hook::local_in), 1u);
    EXPECT_EQ(h.b.netfilter().hook_count(Hook::local_out), 1u);
  }
  EXPECT_EQ(h.b.netfilter().hook_count(Hook::local_in), 0u);
  EXPECT_EQ(h.b.netfilter().hook_count(Hook::local_out), 0u);
}

TEST(TracerTest, ObservationDoesNotPerturbDelivery) {
  TwoHosts h;
  PacketTracer tracer(h.b);
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1, 2, 3});
  h.engine.run();
  ASSERT_EQ(server->pending(), 1u);
  EXPECT_EQ(server->recv()->data, (Buffer{1, 2, 3}));
}

TEST(TracerTest, SeesOutgoingAfterTranslationRewrites) {
  // The tracer sits at the wire edge: it must record the packet as rewritten by
  // LOCAL_OUT hooks, not as the socket emitted it.
  TwoHosts h;
  HookHandle rewrite = h.b.netfilter().register_hook(
      Hook::local_out, 0, [](net::Packet& p) {
        const std::uint32_t old = p.dst.value;
        p.dst = net::Ipv4Addr::octets(10, 0, 0, 9);
        p.checksum = net::checksum_adjust32(p.checksum, old, p.dst.value);
        return Verdict::accept;
      });
  PacketTracer tracer(h.b);
  auto sock = h.b.make_udp();
  sock->send_to(net::Endpoint{kAddrA, 7}, Buffer{1});
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].packet.dst, net::Ipv4Addr::octets(10, 0, 0, 9));
  rewrite.release();
}

}  // namespace
}  // namespace dvemig::stack
