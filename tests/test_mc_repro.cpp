// Regression replays of minimized traces that dvemig-mc found on earlier
// revisions of the migration protocol. Each script below once drove the
// simulator into an assert, a leak, or an oracle violation; replaying it must
// now come back clean. The scripts are verbatim `--repro-out` output, so they
// double as documentation of what each bug looked like on the wire.
//
// All of them use the crash preset: stop-and-copy migration where every migd
// frame send draws a pass/drop/duplicate/kill decision (choice 0/1/2/3). The
// Nth choice applies to the Nth frame of the handshake:
//   #0 mig_begin  #1 capture_request  #2 capture_enabled  #3 socket_state
//   #4 socket_ack #5 memory_delta     #6 process_image    #7 resume_done
#include <gtest/gtest.h>

#include <string>

#include "src/mc/explorer.hpp"

namespace dvemig::mc {
namespace {

RunResult replay(const char* script_text) {
  std::string error;
  const auto script = Script::parse(script_text, &error);
  EXPECT_TRUE(script.has_value()) << error;
  if (!script) return RunResult{};
  return replay_script(*script);
}

constexpr char kHeader[] =
    "# dvemig-mc repro script\n"
    "preset crash\n"
    "tail zeros\n"
    "seed 0\n"
    "mutation none\n";

// Source daemon "crashes" sending the very first frame. Earlier revisions let
// the crossing mig_abort fire the on_readable callback of an already-freed
// FrameChannel (the socket outlives the channel in the ehash through RST
// teardown) — a heap-use-after-free under ASan.
TEST(McRepro, KillAtMigBegin) {
  const RunResult r = replay((std::string(kHeader) + "choices 3\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.frame_faults_injected, 1u);
}

// mig_begin never arrives: the dest sees capture_request first and aborts,
// the source must roll its (still-runnable) process back.
TEST(McRepro, DropMigBegin) {
  const RunResult r = replay((std::string(kHeader) + "choices 1\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
}

// A duplicated mig_begin must not re-arm the dest session: begin_session()
// twice used to orphan the first capture session and every spec in it.
TEST(McRepro, DuplicateMigBegin) {
  const RunResult r = replay((std::string(kHeader) + "choices 2\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
}

// Dest daemon dies while acknowledging capture arming. Before the fix the
// self-aborted channel never surfaced a channel error, so the dest session —
// capture filters armed — leaked past quiescence, and the source kept sending
// frames into the dead connection (tripping the TCP socket's send
// precondition).
TEST(McRepro, KillAtCaptureEnabled) {
  const RunResult r = replay((std::string(kHeader) + "choices 0 0 3\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
}

// socket_state is dropped but process_image still arrives: the image then
// references a socket that was never staged. That was a hard
// DVEMIG_ASSERT(it != by_fd.end()) crash in do_restore; now it must be a
// graceful teardown with the source rolling back (which itself used to trip
// EXPECTS(!migration_disabled()) because the rollback resumed the process
// with its sockets still unhashed from the freeze subtraction).
TEST(McRepro, DropSocketStateThenRestore) {
  const RunResult r =
      replay((std::string(kHeader) + "choices 0 0 0 1\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
}

// Dest daemon dies while sending resume_done — after the migration is already
// committed on its side (process adopted, resumed, packets reinjected). The
// committed session used to ignore the channel error entirely and sit in the
// session table forever waiting for a peer-closed that can never arrive.
TEST(McRepro, KillAtResumeDone) {
  const RunResult r =
      replay((std::string(kHeader) + "choices 0 0 0 0 0 0 0 3\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);
}

// resume_done is dropped: the dest has committed but the source never learns
// it and watchdog-fails. This is the lost-commit-ack split-brain documented in
// DESIGN.md §9 — inherent without atomic commitment, so the exactly-once
// oracle tolerates both copies existing *only* when a frame fault was
// injected. The run must still terminate and pass every other property.
TEST(McRepro, DropResumeDoneSplitBrain) {
  const RunResult r =
      replay((std::string(kHeader) + "choices 0 0 0 0 0 0 0 1\n").c_str());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_TRUE(r.migration_done);
  EXPECT_FALSE(r.success);  // the *source* judges the migration failed
  EXPECT_EQ(r.frame_faults_injected, 1u);
}

}  // namespace
}  // namespace dvemig::mc
