// DVE application-layer tests: zone grid, database server, zone server
// behaviour (real-time loop, accept/drop, DB session, serialization), game
// server, clients and the population movement model.
#include <gtest/gtest.h>

#include "src/dve/game_server.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig::dve {
namespace {

// ------------------------------------------------------------------- ZoneGrid

TEST(ZoneGridTest, RowColMapping) {
  ZoneGrid grid;
  EXPECT_EQ(grid.zone_count(), 100u);
  EXPECT_EQ(grid.zone_at(0, 0), 0u);
  EXPECT_EQ(grid.zone_at(9, 9), 99u);
  EXPECT_EQ(grid.row_of(47), 4u);
  EXPECT_EQ(grid.col_of(47), 7u);
}

TEST(ZoneGridTest, InitialAssignmentTwoRowsPerNode) {
  ZoneGrid grid;
  for (ZoneId z = 0; z < grid.zone_count(); ++z) {
    EXPECT_EQ(grid.initial_node_of(z, 5), grid.row_of(z) / 2);
  }
  const auto node0 = grid.zones_of_node(0, 5);
  EXPECT_EQ(node0.size(), 20u);
  EXPECT_EQ(node0.front(), 0u);
  EXPECT_EQ(node0.back(), 19u);
}

TEST(ZoneGridTest, StepTowardMovesDiagonallyAndStops) {
  ZoneGrid grid;
  const ZoneId corner = grid.zone_at(0, 0);
  ZoneId z = grid.zone_at(4, 6);
  z = grid.step_toward(z, corner);
  EXPECT_EQ(z, grid.zone_at(3, 5));
  for (int i = 0; i < 20; ++i) z = grid.step_toward(z, corner);
  EXPECT_EQ(z, corner);
  EXPECT_EQ(grid.step_toward(corner, corner), corner);
}

TEST(ZoneGridTest, ZonePortMapping) {
  EXPECT_EQ(zone_port(0), 20000);
  EXPECT_EQ(zone_port(99), 20099);
}

// ------------------------------------------------------------------- Database

TEST(DatabaseTest, AnswersLengthPrefixedQueries) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  auto client = bed.node(0).node.stack().make_tcp();
  client->bind(bed.node(0).node.local_addr(), 0);
  client->connect(net::Endpoint{bed.db_node()->local_addr(), kDbPort});
  bed.run_for(SimTime::milliseconds(50));

  BinaryWriter q;
  q.u32(100);
  q.bytes(Buffer(100, 0x51));
  client->send(q.take());
  bed.run_for(SimTime::milliseconds(50));

  EXPECT_EQ(bed.db()->queries_served(), 1u);
  Buffer resp = client->read();
  ASSERT_GE(resp.size(), 4u);
  BinaryReader r(resp);
  EXPECT_EQ(r.u32(), 64u);  // configured response size
}

TEST(DatabaseTest, MultipleSessionsIndependent) {
  TestbedConfig cfg;
  cfg.dve_nodes = 2;
  Testbed bed(cfg);
  std::vector<stack::TcpSocket::Ptr> clients;
  for (std::size_t i = 0; i < 2; ++i) {
    auto c = bed.node(i).node.stack().make_tcp();
    c->bind(bed.node(i).node.local_addr(), 0);
    c->connect(net::Endpoint{bed.db_node()->local_addr(), kDbPort});
    clients.push_back(c);
  }
  bed.run_for(SimTime::milliseconds(50));
  EXPECT_EQ(bed.db()->active_sessions(), 2u);
  clients[0]->close();
  bed.run_for(SimTime::milliseconds(100));
  EXPECT_EQ(bed.db()->active_sessions(), 1u);
}

// ----------------------------------------------------------------- ZoneServer

struct ZoneServerFixture : ::testing::Test {
  TestbedConfig cfg;
  std::unique_ptr<Testbed> bed;

  void SetUp() override {
    cfg.dve_nodes = 2;
    bed = std::make_unique<Testbed>(cfg);
  }

  const ZoneServerApp* app_of(const std::shared_ptr<proc::Process>& proc) {
    return static_cast<const ZoneServerApp*>(proc->app().get());
  }
};

TEST_F(ZoneServerFixture, TicksAtTwentyHertzAndChargesCpu) {
  ZoneServerConfig zs;
  zs.zone = 0;
  zs.use_db = false;
  zs.base_cores = 0.5;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(2));
  const auto* app = app_of(proc);
  EXPECT_NEAR(static_cast<double>(app->ticks()), 40.0, 2.0);  // 20 Hz
  EXPECT_NEAR(bed->node(0).node.cpu().process_cores(proc->pid()), 0.5, 0.05);
}

TEST_F(ZoneServerFixture, AcceptsAndCountsClients) {
  ZoneServerConfig zs;
  zs.zone = 11;
  zs.use_db = false;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  std::vector<std::unique_ptr<TcpDveClient>> clients;
  for (int i = 0; i < 5; ++i) {
    auto c = std::make_unique<TcpDveClient>(bed->make_client_host(), bed->public_ip());
    c->connect_to_zone(11);
    clients.push_back(std::move(c));
  }
  bed->run_for(SimTime::seconds(1));
  EXPECT_EQ(app_of(proc)->client_count(), 5u);

  clients[0]->disconnect();
  clients[1]->disconnect();
  bed->run_for(SimTime::seconds(1));
  EXPECT_EQ(app_of(proc)->client_count(), 3u);  // FINs noticed, fds closed
}

TEST_F(ZoneServerFixture, CpuGrowsWithClientCount) {
  ZoneServerConfig zs;
  zs.zone = 12;
  zs.use_db = false;
  zs.base_cores = 0.01;
  zs.per_client_cores = 0.01;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  std::vector<std::unique_ptr<TcpDveClient>> clients;
  for (int i = 0; i < 10; ++i) {
    auto c = std::make_unique<TcpDveClient>(bed->make_client_host(), bed->public_ip());
    c->connect_to_zone(12);
    clients.push_back(std::move(c));
  }
  bed->run_for(SimTime::seconds(3));
  // base 0.01 + 10 clients x 0.01 = 0.11 cores.
  EXPECT_NEAR(bed->node(0).node.cpu().process_cores(proc->pid()), 0.11, 0.02);
}

TEST_F(ZoneServerFixture, ActiveUpdatesFlowToClients) {
  ZoneServerConfig zs;
  zs.zone = 13;
  zs.use_db = false;
  zs.active_updates = true;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  TcpDveClient client(bed->make_client_host(), bed->public_ip());
  client.set_record(true);
  client.connect_to_zone(13);
  bed->run_for(SimTime::seconds(2));
  // ~20 updates/s of 256 bytes each.
  EXPECT_NEAR(static_cast<double>(client.updates_received()), 38.0, 6.0);
  // At most the very last update may still be in flight at the sample instant.
  EXPECT_GE(client.updates_received() + 1, app_of(proc)->updates_sent());
  ASSERT_GE(client.records().size(), 2u);
  // Update cadence is the 50 ms real-time loop.
  const auto& recs = client.records();
  const double gap_ms = (recs[recs.size() - 1].t - recs[recs.size() - 2].t).to_ms();
  EXPECT_NEAR(gap_ms, 50.0, 5.0);
}

TEST_F(ZoneServerFixture, DbSessionPeriodicUpdates) {
  ZoneServerConfig zs;
  zs.zone = 14;
  zs.db_addr = bed->db_node()->local_addr();
  zs.db_update_period = SimTime::milliseconds(250);
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(3));
  const auto* app = app_of(proc);
  EXPECT_GE(app->db_queries_sent(), 10u);
  // The newest query's response may still be in flight.
  EXPECT_GE(app->db_responses() + 1, app->db_queries_sent());
}

TEST_F(ZoneServerFixture, AppStateSerializationRoundTrip) {
  ZoneServerConfig zs;
  zs.zone = 15;
  zs.use_db = false;
  zs.active_updates = true;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  TcpDveClient client(bed->make_client_host(), bed->public_ip());
  client.connect_to_zone(15);
  bed->run_for(SimTime::seconds(1));

  BinaryWriter w;
  proc->app()->serialize(w);
  BinaryReader r(w.buffer());
  auto restored = proc::AppLogic::create(ZoneServerApp::kKind, r);
  const auto* app = static_cast<const ZoneServerApp*>(restored.get());
  EXPECT_EQ(app->config().zone, 15u);
  EXPECT_TRUE(app->config().active_updates);
  EXPECT_EQ(app->client_count(), 1u);
  EXPECT_EQ(app->listener_fd(), app_of(proc)->listener_fd());
  EXPECT_EQ(app->updates_sent(), app_of(proc)->updates_sent());
}

TEST_F(ZoneServerFixture, FrozenServerStopsTicking) {
  ZoneServerConfig zs;
  zs.zone = 16;
  zs.use_db = false;
  auto proc = ZoneServerApp::launch(bed->node(0).node, zs);
  bed->run_for(SimTime::seconds(1));
  const std::uint64_t ticks = app_of(proc)->ticks();
  proc->freeze();
  bed->run_for(SimTime::seconds(1));
  EXPECT_EQ(app_of(proc)->ticks(), ticks);
  proc->resume();
  bed->run_for(SimTime::seconds(1));
  EXPECT_GT(app_of(proc)->ticks(), ticks + 15);
}

// ----------------------------------------------------------------- GameServer

TEST(GameServerTest, SnapshotsAtTwentyHertz) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  GameServerConfig gs;
  auto proc = GameServerApp::launch(bed.node(0).node, gs);

  std::vector<std::unique_ptr<UdpGameClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto c = std::make_unique<UdpGameClient>(
        bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
    c->start();
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(2));
  const auto* app = static_cast<const GameServerApp*>(proc->app().get());
  EXPECT_EQ(app->client_count(), 4u);
  for (const auto& c : clients) {
    EXPECT_NEAR(static_cast<double>(c->received().size()), 39.0, 4.0);  // 20/s
    EXPECT_EQ(c->missing_snapshots(), 0u);
  }
}

TEST(GameServerTest, SilentClientTimesOut) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  GameServerConfig gs;
  gs.client_timeout = SimTime::seconds(1);
  auto proc = GameServerApp::launch(bed.node(0).node, gs);
  auto client = std::make_unique<UdpGameClient>(
      bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
  client->start();
  bed.run_for(SimTime::milliseconds(500));
  const auto* app = static_cast<const GameServerApp*>(proc->app().get());
  EXPECT_EQ(app->client_count(), 1u);
  client->stop();  // goes silent
  bed.run_for(SimTime::seconds(3));
  EXPECT_EQ(app->client_count(), 0u);
}

// ----------------------------------------------------------------- Population

TEST(PopulationTest, UniformInitialDistribution) {
  TestbedConfig cfg;
  cfg.dve_nodes = 5;
  Testbed bed(cfg);
  ZoneGrid grid;
  // Zone servers for all 100 zones (idle, no DB, small heaps to keep this fast).
  for (std::uint32_t n = 0; n < 5; ++n) {
    for (const ZoneId z : grid.zones_of_node(n, 5)) {
      ZoneServerConfig zs;
      zs.zone = z;
      zs.use_db = false;
      zs.heap_bytes = 1 << 20;
      ZoneServerApp::launch(bed.node(n).node, zs);
    }
  }
  PopulationConfig pc;
  pc.client_count = 500;
  Population pop(bed, grid, pc);
  pop.populate();
  bed.run_for(SimTime::seconds(12));

  const auto counts = pop.clients_per_zone();
  for (const std::uint32_t c : counts) EXPECT_EQ(c, 5u);  // 500 / 100
  // Every client actually connected to its zone server.
  std::size_t connected = 0;
  for (std::uint32_t n = 0; n < 5; ++n) {
    for (const auto& [pid, proc] : bed.node(n).node.processes()) {
      connected +=
          static_cast<const ZoneServerApp*>(proc->app().get())->client_count();
    }
  }
  EXPECT_EQ(connected, 500u);
  EXPECT_EQ(pop.total_resets(), 0u);
}

TEST(PopulationTest, MovementDriftsTowardCorners) {
  TestbedConfig cfg;
  cfg.dve_nodes = 5;
  Testbed bed(cfg);
  ZoneGrid grid;
  for (std::uint32_t n = 0; n < 5; ++n) {
    for (const ZoneId z : grid.zones_of_node(n, 5)) {
      ZoneServerConfig zs;
      zs.zone = z;
      zs.use_db = false;
      zs.heap_bytes = 1 << 20;
      ZoneServerApp::launch(bed.node(n).node, zs);
    }
  }
  PopulationConfig pc;
  pc.client_count = 1000;
  pc.move_start = SimTime::seconds(5);
  pc.move_end = SimTime::seconds(120);
  pc.move_step_prob = 0.5;  // accelerated drift for the test
  Population pop(bed, grid, pc);
  pop.populate();
  pop.start_movement();
  bed.run_for(SimTime::seconds(60));

  // The corner regions gained population; the middle thinned out.
  const auto counts = pop.clients_per_zone();
  std::uint32_t corner_mass = 0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      corner_mass += counts[grid.zone_at(r, c)];
      corner_mass += counts[grid.zone_at(9 - r, 9 - c)];
    }
  }
  std::uint32_t middle_mass = 0;
  for (std::uint32_t r = 4; r <= 5; ++r) {
    for (std::uint32_t c = 0; c < 10; ++c) middle_mass += counts[grid.zone_at(r, c)];
  }
  EXPECT_GT(corner_mass, 280u);   // started at 180 (18 zones x 10)
  EXPECT_LT(middle_mass, 170u);   // started at 200
  EXPECT_GT(pop.zone_handoffs(), 500u);
  EXPECT_EQ(pop.total_resets(), 0u);  // handoffs are clean close+reconnect
}

}  // namespace
}  // namespace dvemig::dve
