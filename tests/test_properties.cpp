// Property-style parameterized sweeps over the core invariants:
//  - TCP delivers an exact byte stream under any drop pattern;
//  - live migration is transparent for any client count and any strategy;
//  - the conductor equalizes any initial imbalance without losing processes.
#include <gtest/gtest.h>

#include <tuple>

#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/net/switch.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig {
namespace {

// ------------------------------------------------- TCP stream-integrity sweep

struct TcpLossCase {
  int drop_every_nth;   // 0 = no loss
  std::size_t bytes;
};

class TcpStreamIntegrity : public ::testing::TestWithParam<TcpLossCase> {};

TEST_P(TcpStreamIntegrity, ExactByteStreamUnderLoss) {
  const TcpLossCase param = GetParam();
  sim::Engine engine;
  net::Switch sw(engine, net::LinkConfig{1e9, SimTime::microseconds(25)});
  stack::NetStack a(engine, "a", SimTime::seconds(11));
  stack::NetStack b(engine, "b", SimTime::seconds(77));
  const auto addr_a = net::Ipv4Addr::octets(10, 0, 0, 1);
  const auto addr_b = net::Ipv4Addr::octets(10, 0, 0, 2);
  a.add_interface(addr_a, sw.attach(addr_a, [&](net::Packet p) { a.rx(std::move(p)); }));
  b.add_interface(addr_b, sw.attach(addr_b, [&](net::Packet p) { b.rx(std::move(p)); }));

  auto listener = b.make_tcp();
  listener->bind(addr_b, 9000);
  listener->listen(4);
  auto client = a.make_tcp();
  client->connect(net::Endpoint{addr_b, 9000});
  engine.run();
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);

  int counter = 0;
  stack::HookHandle drop;
  if (param.drop_every_nth > 0) {
    drop = b.netfilter().register_hook(
        stack::Hook::local_in, -100, [&](net::Packet& p) {
          if (p.proto != net::IpProto::tcp || p.payload.empty()) {
            return stack::Verdict::accept;
          }
          return ++counter % param.drop_every_nth == 0 ? stack::Verdict::drop
                                                       : stack::Verdict::accept;
        });
  }

  Buffer sent(param.bytes);
  Rng rng(param.bytes ^ 0xABCD);
  for (auto& byte : sent) byte = static_cast<std::uint8_t>(rng.next_u64());
  Buffer got;
  server->set_on_readable([&] {
    Buffer chunk = server->read();
    got.insert(got.end(), chunk.begin(), chunk.end());
  });
  client->send(sent);
  engine.run_until(engine.now() + SimTime::seconds(30));
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_EQ(got, sent);
  drop.release();
}

INSTANTIATE_TEST_SUITE_P(
    LossPatterns, TcpStreamIntegrity,
    ::testing::Values(TcpLossCase{0, 200'000},    // clean path
                      TcpLossCase{23, 200'000},   // ~4 % loss
                      TcpLossCase{9, 120'000},    // ~11 % loss
                      TcpLossCase{4, 50'000},     // brutal 25 % loss
                      TcpLossCase{7, 1'000}),     // tiny transfer, early loss
    [](const auto& suite_info) {
      return "drop" + std::to_string(suite_info.param.drop_every_nth) + "_bytes" +
             std::to_string(suite_info.param.bytes);
    });

// --------------------------------------------- migration-transparency sweep

class MigrationScaling
    : public ::testing::TestWithParam<std::tuple<int, mig::SocketMigStrategy>> {};

TEST_P(MigrationScaling, TransparentForAnyClientCount) {
  const auto [nclients, strategy] = GetParam();
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);

  dve::ZoneServerConfig zs;
  zs.zone = 7;
  zs.active_updates = true;
  zs.per_client_cores = 0.0002;
  zs.db_addr = bed.db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < nclients; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->set_active(SimTime::milliseconds(50), 32);
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(2));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(), strategy,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(5));
  ASSERT_TRUE(done && stats.success);
  bed.run_for(SimTime::seconds(1));

  auto moved = bed.node(1).node.find(proc->pid());
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(static_cast<const dve::ZoneServerApp*>(moved->app().get())->client_count(),
            static_cast<std::size_t>(nclients));
  for (const auto& c : clients) {
    EXPECT_TRUE(c->connected());
    EXPECT_EQ(c->resets_seen(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClientCounts, MigrationScaling,
    ::testing::Combine(::testing::Values(1, 16, 96),
                       ::testing::Values(mig::SocketMigStrategy::iterative,
                                         mig::SocketMigStrategy::collective,
                                         mig::SocketMigStrategy::incremental_collective)),
    [](const auto& suite_info) {
      std::string name = mig::strategy_name(std::get<1>(suite_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return "n" + std::to_string(std::get<0>(suite_info.param)) + "_" + name;
    });

// ------------------------------------------------- load-balancing convergence

class LbConvergence : public ::testing::TestWithParam<int> {};

TEST_P(LbConvergence, EqualizesAnyInitialSplit) {
  // All `n` equal-weight processes start on node 1 of a 2-node cluster; the
  // conductors must end with a near-even split, never losing a process.
  const int n = GetParam();
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.policy.calm_down = SimTime::seconds(2);
  dve::Testbed bed(cfg);

  const double per_proc = 1.5 / n;  // total demand 1.5 of 2 cores
  for (int i = 0; i < n; ++i) {
    dve::ZoneServerConfig zs;
    zs.zone = static_cast<dve::ZoneId>(i);
    zs.use_db = false;
    zs.base_cores = per_proc;
    zs.heap_bytes = 1 << 20;
    dve::ZoneServerApp::launch(bed.node(0).node, zs);
  }
  for (std::size_t i = 0; i < 2; ++i) bed.node(i).conductor.set_enabled(true);
  bed.run_for(SimTime::seconds(60));

  const std::size_t on0 = bed.node(0).node.processes().size();
  const std::size_t on1 = bed.node(1).node.processes().size();
  EXPECT_EQ(on0 + on1, static_cast<std::size_t>(n));  // nothing lost
  EXPECT_LE(on0 > on1 ? on0 - on1 : on1 - on0, 2u);   // near-even split
  EXPECT_NEAR(bed.node(0).node.cpu().node_utilization(),
              bed.node(1).node.cpu().node_utilization(), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Splits, LbConvergence, ::testing::Values(4, 6, 10),
                         [](const auto& suite_info) {
                           return "procs" + std::to_string(suite_info.param);
                         });

}  // namespace
}  // namespace dvemig
