// Checkpoint layer tests: image round-trips, dirty/vm_area tracking, restore.
#include <gtest/gtest.h>

#include "src/ckpt/dirty_tracker.hpp"
#include "src/ckpt/restore.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::ckpt {
namespace {

proc::NodeConfig node_config(const char* name, int i) {
  return proc::NodeConfig{NodeId{static_cast<std::uint32_t>(i)},
                          name,
                          net::Ipv4Addr::octets(203, 0, 113, 10),
                          net::Ipv4Addr::octets(192, 168, 1, static_cast<std::uint8_t>(10 + i)),
                          2.0,
                          SimTime::seconds(100 * i)};
}

TEST(ProcessImageTest, SerializationRoundTrip) {
  sim::Engine engine;
  proc::Node node(engine, node_config("n1", 1));
  auto proc = node.spawn("zoned");
  proc->mem().mmap(8 * proc::kPageSize, proc::prot_read | proc::prot_write, "[heap]");
  proc->mem().mmap(4 * proc::kPageSize, proc::prot_read | proc::prot_exec, "code",
                   true);
  proc->files().open_file("/var/log/z.log");
  proc->add_thread();

  const ProcessImage img = snapshot_process(*proc);
  BinaryWriter w;
  img.serialize(w);
  BinaryReader r(w.buffer());
  const ProcessImage back = ProcessImage::deserialize(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(back.pid, img.pid);
  EXPECT_EQ(back.name, "zoned");
  ASSERT_EQ(back.areas.size(), 2u);
  EXPECT_EQ(back.areas[0].name, "[heap]");
  EXPECT_TRUE(back.areas[1].file_backed);
  EXPECT_EQ(back.threads.size(), 2u);
  EXPECT_EQ(back.threads[1].tid, img.threads[1].tid);
  EXPECT_EQ(back.threads[1].gp_regs, img.threads[1].gp_regs);
  ASSERT_EQ(back.regular_files.size(), 1u);
  EXPECT_EQ(back.regular_files[0].path, "/var/log/z.log");
  EXPECT_EQ(back.signal_handlers, img.signal_handlers);
  EXPECT_EQ(back.src_jiffies, node.stack().jiffies());
}

TEST(ProcessImageTest, SocketFdsListedSeparately) {
  sim::Engine engine;
  proc::Node node(engine, node_config("n1", 1));
  auto proc = node.spawn("s");
  const Fd rf = proc->files().open_file("/etc/conf");
  auto sock = node.stack().make_udp();
  const Fd sf = proc->files().attach_socket(sock);
  const ProcessImage img = snapshot_process(*proc);
  ASSERT_EQ(img.regular_files.size(), 1u);
  EXPECT_EQ(img.regular_files[0].fd, rf);
  ASSERT_EQ(img.socket_fds.size(), 1u);
  EXPECT_EQ(img.socket_fds[0], sf);
}

TEST(MemoryDeltaTest, SerializationRoundTripAndSizing) {
  MemoryDelta d;
  d.added_areas.push_back(VmAreaImage{0x1000, 0x2000, 3, false, "[heap]"});
  d.removed_areas.push_back(0x9000);
  d.dirty_pages = {4, 7, 9};

  const std::size_t bytes = d.transfer_bytes();
  // 3 pages at 4 KiB dominate the delta size.
  EXPECT_GT(bytes, 3 * proc::kPageSize);
  EXPECT_LT(bytes, 3 * proc::kPageSize + 512);

  BinaryWriter w;
  d.serialize(w);
  BinaryReader r(w.buffer());
  const MemoryDelta back = MemoryDelta::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back.dirty_pages, d.dirty_pages);
  ASSERT_EQ(back.added_areas.size(), 1u);
  EXPECT_EQ(back.added_areas[0].name, "[heap]");
  EXPECT_EQ(back.removed_areas, d.removed_areas);
  EXPECT_FALSE(back.empty());
}

TEST(DirtyTrackerTest, FirstRoundTransfersWholeAnonymousSpace) {
  proc::AddressSpace mem;
  mem.mmap(16 * proc::kPageSize, proc::prot_read | proc::prot_write, "[heap]");
  mem.mmap(8 * proc::kPageSize, proc::prot_read | proc::prot_exec, "code", true);
  DirtyTracker tracker;
  const MemoryDelta d = tracker.round(mem);
  EXPECT_EQ(d.dirty_pages.size(), 16u);  // file-backed pages excluded
  EXPECT_EQ(d.added_areas.size(), 2u);   // layout is new to the tracker
}

TEST(DirtyTrackerTest, SubsequentRoundsOnlyChanges) {
  proc::AddressSpace mem;
  const std::uint64_t heap =
      mem.mmap(16 * proc::kPageSize, proc::prot_read | proc::prot_write, "[heap]");
  DirtyTracker tracker;
  (void)tracker.round(mem);

  MemoryDelta d = tracker.round(mem);
  EXPECT_TRUE(d.empty());  // nothing changed

  mem.touch(heap + 5 * proc::kPageSize, 10);
  d = tracker.round(mem);
  EXPECT_EQ(d.dirty_pages.size(), 1u);
  EXPECT_TRUE(d.added_areas.empty());
}

TEST(DirtyTrackerTest, DetectsMmapAndMunmap) {
  proc::AddressSpace mem;
  const std::uint64_t a =
      mem.mmap(4 * proc::kPageSize, proc::prot_read | proc::prot_write, "a");
  DirtyTracker tracker;
  (void)tracker.round(mem);

  const std::uint64_t b =
      mem.mmap(2 * proc::kPageSize, proc::prot_read | proc::prot_write, "b");
  MemoryDelta d = tracker.round(mem);
  ASSERT_EQ(d.added_areas.size(), 1u);
  EXPECT_EQ(d.added_areas[0].start, b);
  EXPECT_EQ(d.dirty_pages.size(), 2u);  // the new area's pages

  mem.munmap(a);
  d = tracker.round(mem);
  ASSERT_EQ(d.removed_areas.size(), 1u);
  EXPECT_EQ(d.removed_areas[0], a);
}

TEST(DirtyTrackerTest, DetectsProtectionChange) {
  proc::AddressSpace mem;
  const std::uint64_t a =
      mem.mmap(2 * proc::kPageSize, proc::prot_read | proc::prot_write, "a");
  DirtyTracker tracker;
  (void)tracker.round(mem);
  mem.mprotect(a, proc::prot_read);
  const MemoryDelta d = tracker.round(mem);
  ASSERT_EQ(d.modified_areas.size(), 1u);
  EXPECT_EQ(d.modified_areas[0].prot, static_cast<std::uint32_t>(proc::prot_read));
}

TEST(RestoreTest, RebuildsProcessOnDestination) {
  sim::Engine engine;
  proc::Node src(engine, node_config("src", 1));
  proc::Node dst(engine, node_config("dst", 2));

  auto proc = src.spawn("zoned");
  proc->mem().mmap(8 * proc::kPageSize, proc::prot_read | proc::prot_write, "[heap]");
  proc->add_thread();
  proc->files().open_file("/data/world.db");
  proc->files().seek(3, 0);
  const ProcessImage img = snapshot_process(*proc);

  auto restored = restore_process(dst, img);
  EXPECT_TRUE(restored->frozen());
  EXPECT_EQ(restored->pid(), proc->pid());
  EXPECT_EQ(restored->threads().size(), 2u);
  EXPECT_EQ(restored->mem().areas().size(), 1u);
  EXPECT_EQ(restored->mem().areas()[0].start, proc->mem().areas()[0].start);
  EXPECT_EQ(restored->mem().dirty_pages(), 0u);  // arrived clean
  EXPECT_TRUE(restored->files().has(3));
  EXPECT_EQ(restored->files().get(3).path, "/data/world.db");

  dst.adopt(restored);
  restored->resume();
  EXPECT_FALSE(restored->frozen());
}

TEST(RestoreTest, AppBlobReconstructed) {
  struct CounterApp : proc::AppLogic {
    int value = 0;
    std::string kind() const override { return "counter"; }
    void serialize(BinaryWriter& w) const override { w.i32(value); }
    void start(proc::Process&) override {}
    void stop() override {}
  };
  proc::AppLogic::register_kind("counter", [](BinaryReader& r) {
    auto app = std::make_shared<CounterApp>();
    app->value = r.i32();
    return app;
  });

  sim::Engine engine;
  proc::Node src(engine, node_config("src", 1));
  proc::Node dst(engine, node_config("dst", 2));
  auto proc = src.spawn("counting");
  auto app = std::make_shared<CounterApp>();
  app->value = 31337;
  proc->set_app(app);

  const ProcessImage img = snapshot_process(*proc);
  auto restored = restore_process(dst, img);
  ASSERT_NE(restored->app(), nullptr);
  EXPECT_EQ(static_cast<CounterApp&>(*restored->app()).value, 31337);
}

TEST(RestoreTest, ApplyMemoryDeltaMutatesLayout) {
  sim::Engine engine;
  proc::Node dst(engine, node_config("dst", 2));
  auto proc = std::make_shared<proc::Process>(dst, Pid{7}, "x");

  MemoryDelta add;
  add.added_areas.push_back(VmAreaImage{0x10000, 4 * proc::kPageSize,
                                        proc::prot_read | proc::prot_write, false,
                                        "[heap]"});
  apply_memory_delta(*proc, add);
  EXPECT_NE(proc->mem().find_area(0x10000), nullptr);

  MemoryDelta mod;
  mod.modified_areas.push_back(VmAreaImage{0x10000, 8 * proc::kPageSize,
                                           proc::prot_read | proc::prot_write, false,
                                           "[heap]"});
  apply_memory_delta(*proc, mod);
  EXPECT_EQ(proc->mem().find_area(0x10000)->length, 8 * proc::kPageSize);

  MemoryDelta rem;
  rem.removed_areas.push_back(0x10000);
  apply_memory_delta(*proc, rem);
  EXPECT_EQ(proc->mem().find_area(0x10000), nullptr);
}

}  // namespace
}  // namespace dvemig::ckpt
