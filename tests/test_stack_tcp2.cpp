// Second TCP batch: teardown corner cases, reordering, backoff, half-close,
// PAWS boundary conditions, listener lifecycle.
#include <gtest/gtest.h>

#include <deque>

#include "src/net/switch.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::stack {
namespace {

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  NetStack a{engine, "hostA", SimTime::seconds(100)};
  NetStack b{engine, "hostB", SimTime::seconds(300)};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
  }

  std::pair<TcpSocket::Ptr, TcpSocket::Ptr> connect_pair() {
    auto listener = b.make_tcp();
    listener->bind(kAddrB, 9000);
    listener->listen(8);
    auto client = a.make_tcp();
    client->connect(net::Endpoint{kAddrB, 9000});
    engine.run();
    auto server = listener->accept();
    EXPECT_NE(server, nullptr);
    listener->close();
    return {client, server};
  }
};

TEST(TcpTeardown, SimultaneousClose) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  // Both ends close in the same instant: FINs cross in flight.
  client->close();
  server->close();
  h.engine.run_until(h.engine.now() + SimTime::seconds(3));
  EXPECT_EQ(client->state(), TcpState::closed);
  EXPECT_EQ(server->state(), TcpState::closed);
  EXPECT_EQ(h.a.table().ehash_size(), 0u);
  EXPECT_EQ(h.b.table().ehash_size(), 0u);
}

TEST(TcpTeardown, HalfCloseServerKeepsSending) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->close();  // client done sending; still willing to receive
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(50));
  ASSERT_EQ(server->state(), TcpState::close_wait);
  server->send(Buffer(2000, 4));  // data flows against the half-closed direction
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(50));
  EXPECT_EQ(client->read().size(), 2000u);
  server->close();
  h.engine.run_until(h.engine.now() + SimTime::seconds(3));
  EXPECT_EQ(client->state(), TcpState::closed);
}

TEST(TcpTeardown, CloseWithUnsentDataFlushesFirst) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(50'000, 2));
  client->close();  // FIN queued behind 50 kB of data
  Buffer got;
  server->set_on_readable([&, srv = server.get()] {
    Buffer chunk = srv->read();
    got.insert(got.end(), chunk.begin(), chunk.end());
  });
  h.engine.run_until(h.engine.now() + SimTime::seconds(1));
  EXPECT_EQ(got.size(), 50'000u);
  EXPECT_EQ(server->state(), TcpState::close_wait);  // FIN arrived after the data
}

TEST(TcpTeardown, ListenerCloseAbortsPendingAccepts) {
  TwoHosts h;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(8);
  auto c1 = h.a.make_tcp();
  auto c2 = h.a.make_tcp();
  bool r1 = false, r2 = false;
  c1->set_on_reset([&] { r1 = true; });
  c2->set_on_reset([&] { r2 = true; });
  c1->connect(net::Endpoint{kAddrB, 9000});
  c2->connect(net::Endpoint{kAddrB, 9000});
  h.engine.run();
  ASSERT_EQ(listener->accept_queue_length(), 2u);
  listener->close();  // nobody will ever accept these
  h.engine.run();
  EXPECT_TRUE(r1);
  EXPECT_TRUE(r2);
  EXPECT_FALSE(h.b.table().port_bound(9000, SocketType::tcp));
}

TEST(TcpBackoff, RtoDoublesPerTimeout) {
  TwoHosts h;
  auto client = h.a.make_tcp();
  client->connect(net::Endpoint{kAddrB, 9999});  // nobody listening, no RST
  const SimTime start = h.engine.now();
  h.engine.run_until(start + SimTime::milliseconds(1500));
  // SYN retransmits at ~200, 600, 1400 ms (doubling RTO): 3 by 1.5 s.
  EXPECT_EQ(client->cb().retransmissions, 3u);
  EXPECT_EQ(client->cb().rto_ns, 1'600'000'000);
}

TEST(TcpReorder, JitteredDeliveryStillInOrderToApp) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();

  // Chaos hook: steal every 7th data segment and reinject it 3 ms later —
  // guaranteed out-of-order arrival at the socket.
  int counter = 0;
  HookHandle chaos = h.b.netfilter().register_hook(
      Hook::local_in, -50, [&](net::Packet& p) {
        if (p.proto != net::IpProto::tcp || p.payload.empty()) {
          return Verdict::accept;
        }
        if (++counter % 7 != 0) return Verdict::accept;
        h.engine.schedule_after(SimTime::milliseconds(3),
                                [&h, pkt = p]() mutable { h.b.reinject(std::move(pkt)); });
        return Verdict::stolen;
      });

  Buffer sent(120'000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  Buffer got;
  server->set_on_readable([&, srv = server.get()] {
    Buffer chunk = srv->read();
    got.insert(got.end(), chunk.begin(), chunk.end());
  });
  client->send(sent);
  h.engine.run_until(h.engine.now() + SimTime::seconds(5));
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_EQ(got, sent);  // exactly-once, in-order, despite the mess
  chaos.release();
}

TEST(TcpPaws, EqualTsvalAccepted) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(10, 1));
  h.engine.run();
  // Two segments within the same jiffy share a tsval; the second must pass.
  client->send(Buffer(10, 2));
  h.engine.run();
  EXPECT_EQ(server->cb().paws_drops, 0u);
  EXPECT_EQ(server->bytes_available(), 20u);
}

TEST(TcpPaws, ChallengeAckOnOldTimestamp) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(10, 1));
  h.engine.run();
  const std::uint64_t acks_before = server->cb().segs_out;
  net::TcpHeader hdr;
  hdr.seq = client->cb().snd_nxt;
  hdr.ack = client->cb().rcv_nxt;
  hdr.flags = net::tcp_flags::ack | net::tcp_flags::psh;
  hdr.tsval = server->cb().ts_recent - 7;
  h.b.rx(net::make_tcp(client->local(), client->remote(), hdr, Buffer(4, 9)));
  EXPECT_EQ(server->cb().paws_drops, 1u);
  EXPECT_EQ(server->cb().segs_out, acks_before + 1);  // challenge ACK went out
}

TEST(TcpDuplex, SimultaneousBulkBothDirections) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  Buffer up(150'000, 0xAA), down(90'000, 0xBB);
  Buffer got_up, got_down;
  server->set_on_readable([&, srv = server.get()] {
    Buffer c = srv->read();
    got_up.insert(got_up.end(), c.begin(), c.end());
  });
  client->set_on_readable([&, cli = client.get()] {
    Buffer c = cli->read();
    got_down.insert(got_down.end(), c.begin(), c.end());
  });
  client->send(up);
  server->send(down);
  h.engine.run();
  EXPECT_EQ(got_up, up);
  EXPECT_EQ(got_down, down);
}

TEST(TcpIsn, DistinctAcrossConnections) {
  TwoHosts h;
  std::set<std::uint32_t> isns;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(64);
  for (int i = 0; i < 32; ++i) {
    auto c = h.a.make_tcp();
    c->connect(net::Endpoint{kAddrB, 9000});
    isns.insert(c->cb().iss);
  }
  EXPECT_EQ(isns.size(), 32u);
}

TEST(TcpPersist, ProbeRecoversFromClosedWindow) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  server->cb().rcv_wnd_max = 4096;
  client->send(Buffer(40'000, 1));
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(300));
  const std::size_t stuck_at = server->bytes_available();
  EXPECT_LT(stuck_at, 40'000u);
  // The app drains in small sips; persist probes + window updates must
  // eventually push everything through.
  std::size_t total = 0;
  std::function<void()> sip = [&] {
    total += server->read(2048).size();
    if (total < 40'000) {
      h.engine.schedule_after(SimTime::milliseconds(10), sip);
    }
  };
  h.engine.schedule_after(SimTime::milliseconds(1), sip);
  h.engine.run_until(h.engine.now() + SimTime::seconds(10));
  EXPECT_EQ(total, 40'000u);
}

TEST(TcpOutOfOrder, FinBufferedUntilGapFills) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  // Drop exactly one data segment so the FIN (sent right behind) arrives while
  // a gap is still open; the connection must still close cleanly.
  auto remaining = std::make_shared<int>(1);
  HookHandle drop = h.b.netfilter().register_hook(
      Hook::local_in, -100, [remaining](net::Packet& p) {
        if (p.proto == net::IpProto::tcp && !p.payload.empty() && *remaining > 0) {
          --*remaining;
          return Verdict::drop;
        }
        return Verdict::accept;
      });
  bool closed = false;
  server->set_on_peer_closed([&] { closed = true; });
  client->send(Buffer(6000, 3));
  client->close();
  h.engine.run_until(h.engine.now() + SimTime::seconds(2));
  EXPECT_TRUE(closed);
  EXPECT_EQ(server->read().size(), 6000u);
  EXPECT_EQ(server->state(), TcpState::close_wait);
  drop.release();
}

}  // namespace
}  // namespace dvemig::stack
