// TCP stack tests: handshake, data transfer, segmentation, loss recovery,
// out-of-order assembly, PAWS, socket-lock queues (backlog/prequeue), flow
// control, teardown, and the lookup tables.
#include <gtest/gtest.h>

#include "src/check/verifier.hpp"
#include "src/stack/net_stack.hpp"
#include "src/net/switch.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig::stack {
namespace {

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

check::VerifierConfig audit_cfg() {
  check::VerifierConfig cfg;
  cfg.abort_on_violation = false;  // report through gtest, not abort()
  return cfg;
}

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  NetStack a{engine, "hostA", SimTime::seconds(100)};
  NetStack b{engine, "hostB", SimTime::seconds(300)};
  // dvemig-verify audits both stacks after every event of every test.
  check::Verifier verify{engine, audit_cfg()};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
    verify.watch_stack(a);
    verify.watch_stack(b);
  }

  ~TwoHosts() {
    EXPECT_TRUE(verify.clean())
        << verify.violations().front().rule << ": "
        << verify.violations().front().detail;
  }

  /// Standard client(a) -> server(b) established pair on port 9000.
  std::pair<TcpSocket::Ptr, TcpSocket::Ptr> connect_pair() {
    auto listener = b.make_tcp();
    listener->bind(kAddrB, 9000);
    listener->listen(8);
    auto client = a.make_tcp();
    client->connect(net::Endpoint{kAddrB, 9000});
    engine.run();
    auto server = listener->accept();
    EXPECT_NE(server, nullptr);
    EXPECT_EQ(client->state(), TcpState::established);
    listener->close();
    return {client, server};
  }
};

TEST(TcpHelpers, SequenceComparisonWrapsAround) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x10u));  // wrapped: FFFFFFF0 < 10
  EXPECT_TRUE(seq_gt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_ge(5, 5));
  EXPECT_FALSE(seq_lt(5, 5));
}

TEST(TcpHandshake, ThreeWayEstablishesBothEnds) {
  TwoHosts h;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(8);

  bool connected = false;
  bool accept_ready = false;
  auto client = h.a.make_tcp();
  client->set_on_connected([&] { connected = true; });
  listener->set_on_accept_ready([&] { accept_ready = true; });
  client->connect(net::Endpoint{kAddrB, 9000});
  EXPECT_EQ(client->state(), TcpState::syn_sent);
  h.engine.run();

  EXPECT_TRUE(connected);
  EXPECT_TRUE(accept_ready);
  auto server = listener->accept();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->state(), TcpState::established);
  EXPECT_EQ(server->state(), TcpState::established);
  EXPECT_EQ(server->remote(), client->local());
  EXPECT_EQ(server->local(), client->remote());
}

TEST(TcpHandshake, ConnectionRefusedWhenNoListener) {
  TwoHosts h;
  auto client = h.a.make_tcp();
  client->connect(net::Endpoint{kAddrB, 9999});
  h.engine.run_until(SimTime::milliseconds(300));
  // No RST is generated (single-IP cluster semantics): the SYN is retransmitted.
  EXPECT_EQ(client->state(), TcpState::syn_sent);
  EXPECT_GE(client->cb().retransmissions, 1u);
}

TEST(TcpHandshake, BacklogLimitDropsExcessConnections) {
  TwoHosts h;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(2);
  std::vector<TcpSocket::Ptr> clients;
  for (int i = 0; i < 5; ++i) {
    auto c = h.a.make_tcp();
    c->connect(net::Endpoint{kAddrB, 9000});
    clients.push_back(c);
  }
  h.engine.run_until(SimTime::milliseconds(50));
  EXPECT_EQ(listener->accept_queue_length(), 2u);
}

TEST(TcpData, SmallMessageBothDirections) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer{'p', 'i', 'n', 'g'});
  h.engine.run();
  EXPECT_EQ(server->read(), (Buffer{'p', 'i', 'n', 'g'}));
  server->send(Buffer{'p', 'o', 'n', 'g'});
  h.engine.run();
  EXPECT_EQ(client->read(), (Buffer{'p', 'o', 'n', 'g'}));
}

TEST(TcpData, OnReadableFires) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  int notified = 0;
  server->set_on_readable([&] { ++notified; });
  client->send(Buffer(100, 1));
  h.engine.run();
  EXPECT_GE(notified, 1);
  EXPECT_EQ(server->bytes_available(), 100u);
}

TEST(TcpData, BulkTransferSegmentsAndReassembles) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  Buffer big(300'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  Buffer received;
  server->set_on_readable([&, srv = server.get()] {
    Buffer chunk = srv->read();
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  client->send(big);
  h.engine.run();
  ASSERT_EQ(received.size(), big.size());
  EXPECT_EQ(received, big);  // exact byte sequence preserved
  EXPECT_EQ(client->cb().retransmissions, 0u);
}

TEST(TcpData, ThroughputNearLineRate) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  const SimTime start = h.engine.now();
  std::size_t received = 0;
  server->set_on_readable([&, srv = server.get()] { received += srv->read().size(); });
  client->send(Buffer(4'000'000, 7));
  h.engine.run();
  const double secs = (h.engine.now() - start).to_sec();
  const double gbps = static_cast<double>(received) * 8 / secs / 1e9;
  EXPECT_GT(gbps, 0.70);  // should reach a good fraction of the 1 Gb/s link
  EXPECT_LT(gbps, 1.0);
}

TEST(TcpData, CongestionWindowGrowsFromSlowStart) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  const std::uint32_t initial_cwnd = client->cb().cwnd;
  server->set_on_readable([srv = server.get()] { (void)srv->read(); });
  client->send(Buffer(500'000, 7));
  h.engine.run();
  EXPECT_GT(client->cb().cwnd, initial_cwnd);
}

// Drop-injecting hook: drops the first `n` matching data segments entering `st`.
HookHandle drop_first_n(NetStack& st, int n, std::size_t min_payload = 1) {
  auto remaining = std::make_shared<int>(n);
  return st.netfilter().register_hook(
      Hook::local_in, -100, [remaining, min_payload](net::Packet& p) {
        if (p.proto == net::IpProto::tcp && p.payload.size() >= min_payload &&
            *remaining > 0) {
          --*remaining;
          return Verdict::drop;
        }
        return Verdict::accept;
      });
}

TEST(TcpLoss, RetransmissionRecoversDroppedSegment) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  HookHandle drop = drop_first_n(h.b, 1);
  Buffer received;
  server->set_on_readable([&, srv = server.get()] {
    Buffer chunk = srv->read();
    received.insert(received.end(), chunk.begin(), chunk.end());
  });
  Buffer msg(40'000);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i * 7);
  client->send(msg);
  h.engine.run();
  EXPECT_EQ(received, msg);
  EXPECT_GE(client->cb().retransmissions, 1u);
  drop.release();
}

TEST(TcpLoss, FastRetransmitTriggersOnDupAcks) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  HookHandle drop = drop_first_n(h.b, 1);
  server->set_on_readable([srv = server.get()] { (void)srv->read(); });
  const SimTime start = h.engine.now();
  client->send(Buffer(100'000, 3));
  h.engine.run();
  // Recovery must come from dup-acks well before the 200 ms RTO.
  EXPECT_LT((h.engine.now() - start).to_ms(), 150.0);
  EXPECT_GE(client->cb().retransmissions, 1u);
  drop.release();
}

TEST(TcpLoss, OutOfOrderSegmentsBufferedAndDelivered) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  HookHandle drop = drop_first_n(h.b, 1);
  bool saw_ooo = false;
  server->set_on_readable([&, srv = server.get()] {
    saw_ooo = saw_ooo || !srv->cb().ooo_queue.empty();
    (void)srv->read();
  });
  // Poll the out-of-order queue at fine grain while the gap is open (fast
  // retransmit closes it within a millisecond on this LAN).
  for (int i = 1; i <= 100; ++i) {
    h.engine.schedule_after(SimTime::microseconds(20 * i), [&] {
      saw_ooo = saw_ooo || !server->cb().ooo_queue.empty();
    });
  }
  client->send(Buffer(60'000, 9));
  h.engine.run();
  EXPECT_TRUE(saw_ooo);
  EXPECT_TRUE(server->cb().ooo_queue.empty());  // fully drained at the end
  drop.release();
}

TEST(TcpLoss, LostAckRecovered) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  // Drop pure ACKs arriving at the *client* (payload >= 0 means any tcp).
  auto remaining = std::make_shared<int>(2);
  HookHandle drop = h.a.netfilter().register_hook(
      Hook::local_in, -100, [remaining](net::Packet& p) {
        if (p.proto == net::IpProto::tcp && p.payload.empty() && *remaining > 0) {
          --*remaining;
          return Verdict::drop;
        }
        return Verdict::accept;
      });
  server->set_on_readable([srv = server.get()] { (void)srv->read(); });
  client->send(Buffer(10'000, 5));
  h.engine.run();
  EXPECT_EQ(client->cb().snd_una, client->cb().snd_nxt);  // eventually all acked
  drop.release();
}

TEST(TcpTimestamps, PawsDropsOldTsval) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(100, 1));
  h.engine.run();
  (void)server->read();

  // Forge a segment with a tsval far in the peer's past.
  net::TcpHeader hdr;
  hdr.seq = client->cb().snd_nxt;
  hdr.ack = client->cb().rcv_nxt;
  hdr.flags = net::tcp_flags::ack | net::tcp_flags::psh;
  hdr.tsval = server->cb().ts_recent - 1000;
  hdr.tsecr = 0;
  net::Packet p = net::make_tcp(client->local(), client->remote(), hdr, Buffer(10, 2));
  const std::uint64_t before = server->cb().paws_drops;
  h.b.rx(std::move(p));
  h.engine.run();
  EXPECT_EQ(server->cb().paws_drops, before + 1);
  EXPECT_EQ(server->bytes_available(), 0u);  // payload was not accepted
}

TEST(TcpTimestamps, TsRecentTracksPeer) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  const std::uint32_t before = server->cb().ts_recent;
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(500));
  client->send(Buffer(10, 1));
  h.engine.run();
  EXPECT_GT(server->cb().ts_recent, before);  // jiffies advanced ~50 ticks
}

TEST(TcpLock, UserLockDivertsToBacklog) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  server->lock_user();
  client->send(Buffer(500, 1));
  // Bounded run: the unacked segment keeps the client retransmitting while the
  // receiver holds the lock, so the event queue never drains on its own.
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(50));
  EXPECT_FALSE(server->cb().backlog.empty());  // held while "in a syscall"
  EXPECT_EQ(server->bytes_available(), 0u);
  server->unlock_user();
  EXPECT_TRUE(server->cb().backlog.empty());
  EXPECT_EQ(server->bytes_available(), 500u);
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(50));
  EXPECT_EQ(client->cb().snd_una, client->cb().snd_nxt);  // finally acked
}

TEST(TcpLock, BlockedReaderUsesPrequeue) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  server->set_blocked_reader(true);
  bool prequeued = false;
  // Sample the prequeue while the segment waits for the reader's wakeup.
  server->set_on_readable([&] {});
  client->send(Buffer(100, 1));
  for (int i = 1; i <= 30; ++i) {
    h.engine.schedule_after(SimTime::microseconds(10 * i), [&] {
      prequeued = prequeued || !server->cb().prequeue.empty();
    });
  }
  h.engine.run();
  // Processed "in the reader's context" one event later: delivered by now.
  EXPECT_TRUE(prequeued);
  EXPECT_TRUE(server->cb().prequeue.empty());
  EXPECT_EQ(server->bytes_available(), 100u);
  server->set_blocked_reader(false);
}

TEST(TcpFlowControl, ZeroWindowStallsSenderUntilRead) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  server->cb().rcv_wnd_max = 8 * 1024;  // tiny receive buffer
  client->send(Buffer(64 * 1024, 1));
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(100));
  // Receiver app never read: the sender must stall near the 8 KiB window (the
  // persist probe may land at most one extra segment).
  // The initial flight (one cwnd, sent under the handshake-advertised window)
  // plus at most a probe may land; far short of 64 KiB either way.
  const std::size_t stalled_at = server->bytes_available();
  EXPECT_GT(stalled_at, 0u);
  EXPECT_LE(stalled_at, 16 * 1024u);
  // App finally reads -> window updates -> the rest of the 64 KiB flows.
  std::size_t total = 0;
  std::function<void()> drain = [&] { total += server->read().size(); };
  server->set_on_readable(drain);
  drain();
  h.engine.run();
  EXPECT_EQ(total + 0u, 64 * 1024u);
}

TEST(TcpClose, OrderlyFinHandshake) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  bool server_saw_close = false;
  server->set_on_peer_closed([&] { server_saw_close = true; });
  client->close();
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(100));
  EXPECT_TRUE(server_saw_close);
  EXPECT_EQ(server->state(), TcpState::close_wait);
  EXPECT_EQ(client->state(), TcpState::fin_wait2);
  server->close();
  h.engine.run_until(h.engine.now() + SimTime::milliseconds(100));
  EXPECT_EQ(server->state(), TcpState::closed);
  EXPECT_EQ(client->state(), TcpState::time_wait);
  h.engine.run_until(h.engine.now() + SimTime::seconds(2));
  EXPECT_EQ(client->state(), TcpState::closed);  // TIME_WAIT expired
}

TEST(TcpClose, DataBeforeFinDelivered) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(1000, 6));
  client->close();
  h.engine.run();
  EXPECT_EQ(server->read().size(), 1000u);
  EXPECT_EQ(server->state(), TcpState::close_wait);
}

TEST(TcpClose, AbortSendsRst) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  bool reset_seen = false;
  server->set_on_reset([&] { reset_seen = true; });
  client->abort();
  h.engine.run();
  EXPECT_TRUE(reset_seen);
  EXPECT_EQ(server->state(), TcpState::closed);
  EXPECT_EQ(client->state(), TcpState::closed);
}

TEST(TcpTables, EstablishedSocketsInEhash) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  EXPECT_EQ(h.a.table().ehash_lookup(FourTuple{client->local(), client->remote()}),
            client);
  EXPECT_EQ(h.b.table().ehash_size(), 1u);
  client->close();
  server->close();
  h.engine.run_until(h.engine.now() + SimTime::seconds(3));
  EXPECT_EQ(h.a.table().ehash_size(), 0u);
  EXPECT_EQ(h.b.table().ehash_size(), 0u);
}

TEST(TcpTables, EphemeralPortsUniquePerConnection) {
  TwoHosts h;
  auto listener = h.b.make_tcp();
  listener->bind(kAddrB, 9000);
  listener->listen(64);
  std::set<net::Port> ports;
  std::vector<TcpSocket::Ptr> clients;
  for (int i = 0; i < 20; ++i) {
    auto c = h.a.make_tcp();
    c->connect(net::Endpoint{kAddrB, 9000});
    clients.push_back(c);
    ports.insert(c->local().port);
  }
  EXPECT_EQ(ports.size(), 20u);
  h.engine.run();
  for (const auto& c : clients) EXPECT_EQ(c->state(), TcpState::established);
}

TEST(TcpStats, CountersTrackTraffic) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  client->send(Buffer(5000, 1));
  h.engine.run();
  EXPECT_EQ(client->cb().bytes_out, 5000u);
  EXPECT_EQ(server->cb().bytes_in, 5000u);
  EXPECT_GT(server->cb().segs_in, 0u);
}

TEST(TcpRtt, SrttConvergesToPathRtt) {
  TwoHosts h;
  auto [client, server] = h.connect_pair();
  server->set_on_readable([srv = server.get()] { (void)srv->read(); });
  for (int i = 0; i < 20; ++i) {
    h.engine.schedule_after(SimTime::milliseconds(10 * (i + 1)),
                            [&, c = client.get()] { c->send(Buffer(100, 1)); });
  }
  h.engine.run();
  // Path RTT is ~2 * (25 us latency + serialization); srtt must land nearby.
  EXPECT_GT(client->cb().srtt_ns, 30'000);
  EXPECT_LT(client->cb().srtt_ns, 500'000);
  EXPECT_GE(client->cb().rto_ns, kMinRtoNs);
}

}  // namespace
}  // namespace dvemig::stack
