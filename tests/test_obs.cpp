// Observability layer tests: metrics registry (bucketing, reset, JSON), span
// tracer (nesting, eviction, Chrome trace export), the machine-parsable log
// format with sim-time prefixes, bench reports, and the PacketTracer edge
// cases (set_filter, format, the one-shot cap warning + metrics surface).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "json_lint.hpp"
#include "src/common/log.hpp"
#include "src/common/sim_clock.hpp"
#include "src/net/packet.hpp"
#include "src/net/switch.hpp"
#include "src/obs/bench_report.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/sim/engine.hpp"
#include "src/stack/tracer.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig {
namespace {

using testutil::JsonLint;

// ==================================================================== metrics

TEST(Metrics, CounterAndGaugeBasics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("x.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  reg.gauge("x.level").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 2.5);
  // Find-or-create returns the same object.
  EXPECT_EQ(&reg.counter("x.count"), &c);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
}

TEST(Metrics, HistogramBucketing) {
  obs::Histogram h({10, 20, 50});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; the last bucket is overflow.
  h.record(3);     // <= 10
  h.record(10);    // <= 10 (boundary is inclusive)
  h.record(10.5);  // <= 20
  h.record(50);    // <= 50
  h.record(51);    // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 3);
  EXPECT_DOUBLE_EQ(h.max(), 51);
  EXPECT_DOUBLE_EQ(h.sum(), 3 + 10 + 10.5 + 50 + 51);
  // Non-finite values are ignored, not mis-bucketed.
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 5u);
}

TEST(Metrics, ResetZeroesButKeepsReferences) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("keep.me");
  obs::Histogram& h = reg.histogram("keep.hist", {1, 2});
  c.add(7);
  h.record(1.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("keep.me").value(), 1u);
}

TEST(Metrics, JsonSnapshotIsValidJson) {
  obs::Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.level").set(-1.25);
  reg.histogram("c.lat_us", {10, 100}).record(42);
  const std::string doc = reg.json();
  std::string err;
  EXPECT_TRUE(JsonLint::valid(doc, &err)) << err << "\n" << doc;
  EXPECT_NE(doc.find("\"a.count\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"le\": null"), std::string::npos);  // overflow bucket
}

// ===================================================================== spans

TEST(Spans, NestingDepthsAndDurations) {
  sim::Engine engine;  // publishes the SimClock the tracer reads
  obs::Tracer tracer;
  const std::uint32_t track = tracer.track("node1/migd");

  const obs::SpanId outer = tracer.begin(track, "mig.total");
  engine.run_until(SimTime::milliseconds(10));
  const obs::SpanId inner = tracer.begin(track, "mig.freeze");
  EXPECT_EQ(tracer.find(outer)->depth, 0u);
  EXPECT_EQ(tracer.find(inner)->depth, 1u);

  engine.run_until(SimTime::milliseconds(25));
  tracer.end(inner);
  tracer.end(outer);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.completed_count(), 2u);

  const obs::Span* freeze = tracer.last_completed("mig.freeze");
  ASSERT_NE(freeze, nullptr);
  EXPECT_EQ(freeze->t_begin_ns, SimTime::milliseconds(10).ns);
  EXPECT_EQ(freeze->duration_ns(), SimTime::milliseconds(15).ns);
  EXPECT_EQ(tracer.last_completed("mig.total")->duration_ns(),
            SimTime::milliseconds(25).ns);
}

TEST(Spans, EndAtUsesRemoteTimestampExactly) {
  sim::Engine engine;
  obs::Tracer tracer;
  const std::uint32_t track = tracer.track("t");
  engine.run_until(SimTime::milliseconds(1));
  const obs::SpanId id = tracer.begin(track, "mig.freeze");
  // The destination reported its resume at t=21ms on the shared timeline.
  tracer.end_at(id, SimTime::milliseconds(21).ns);
  EXPECT_EQ(tracer.last_completed("mig.freeze")->duration_ns(),
            SimTime::milliseconds(20).ns);
}

TEST(Spans, AttrsAttachOnlyWhileOpen) {
  obs::Tracer tracer;
  const std::uint32_t track = tracer.track("t");
  const obs::SpanId id = tracer.begin(track, "s");
  tracer.attr(id, "pid", "42");
  tracer.end(id);
  tracer.attr(id, "late", "ignored");
  const obs::Span* s = tracer.last_completed("s");
  ASSERT_EQ(s->attrs.size(), 1u);
  EXPECT_EQ(s->attrs[0].first, "pid");
  EXPECT_EQ(s->attrs[0].second, "42");
}

TEST(Spans, RingEvictsCompletedButNeverOpenSpans) {
  obs::Tracer tracer(/*capacity=*/4);
  const std::uint32_t track = tracer.track("t");
  const obs::SpanId held = tracer.begin(track, "held.open");
  for (int i = 0; i < 10; ++i) {
    tracer.end(tracer.begin(track, "filler"));
  }
  EXPECT_EQ(tracer.completed_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  ASSERT_NE(tracer.find(held), nullptr);  // open span survived the churn
  EXPECT_TRUE(tracer.find(held)->open());
  tracer.end(held);
}

TEST(Spans, ChromeTraceJsonIsValidAndComplete) {
  sim::Engine engine;
  obs::Tracer tracer;
  const std::uint32_t track = tracer.track("node1/migd");
  engine.run_until(SimTime::microseconds(1500));
  const obs::SpanId a = tracer.begin(track, "mig.total");
  tracer.attr(a, "strategy", "incremental-collective");
  engine.run_until(SimTime::microseconds(2500));
  tracer.end(a);
  const obs::SpanId open = tracer.begin(track, "still.open");
  (void)open;

  const std::string doc = tracer.chrome_trace_json();
  std::string err;
  ASSERT_TRUE(JsonLint::valid(doc, &err)) << err << "\n" << doc;
  // "X" complete event with µs timestamps; "B" for the open span; "M" metadata
  // naming the track.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"mig.total\""), std::string::npos);
  EXPECT_NE(doc.find("node1/migd"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":1500.000"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(doc.find("\"strategy\":\"incremental-collective\""),
            std::string::npos);
}

TEST(Spans, TimelineTextIndentsByDepth) {
  sim::Engine engine;
  obs::Tracer tracer;
  const std::uint32_t track = tracer.track("t");
  const obs::SpanId outer = tracer.begin(track, "outer");
  const obs::SpanId inner = tracer.begin(track, "inner");
  tracer.end(inner);
  tracer.end(outer);
  const std::string text = tracer.timeline_text();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);
}

TEST(Spans, ScopedSpanMacro) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  const std::uint32_t track = tracer.track("macro");
  {
    OBS_SPAN(track, "scoped.work");
    EXPECT_EQ(tracer.open_count(), 1u);
  }
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_NE(tracer.last_completed("scoped.work"), nullptr);
  tracer.clear();
}

// ======================================================================= log

struct LogSinkCapture {
  std::vector<std::string> lines;
  LogSinkCapture() {
    Log::set_sink([this](const std::string& line) { lines.push_back(line); });
  }
  ~LogSinkCapture() { Log::set_sink(nullptr); }
};

TEST(LogFormat, MachineParsableWithSimTime) {
  sim::Engine engine;
  engine.run_until(SimTime::milliseconds(1500));
  LogSinkCapture sink;
  Log::write(LogLevel::info, "zone", "client %d joined", 7);
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_EQ(sink.lines[0], "INFO|1.500000|zone|client 7 joined");
}

TEST(LogFormat, DashWhenNoEngineAlive) {
  {
    sim::Engine engine;  // publish + retract so no provider remains
  }
  ASSERT_FALSE(SimClock::available());
  LogSinkCapture sink;
  Log::write(LogLevel::error, "boot", "no engine yet");
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_EQ(sink.lines[0], "ERROR|-|boot|no engine yet");
}

TEST(LogFormat, NewestEngineOwnsTheClock) {
  sim::Engine outer;
  outer.run_until(SimTime::seconds(5));
  {
    sim::Engine inner;
    inner.run_until(SimTime::seconds(1));
    EXPECT_EQ(SimClock::now_ns(), SimTime::seconds(1).ns);
  }
  // Destroying the newer engine must not leave a dangling provider; the
  // conservative rule is "no clock" rather than "stale clock".
  EXPECT_FALSE(SimClock::available());
}

// ================================================================ bench report

TEST(BenchReport, JsonValidAndCarriesStandardKeys) {
  obs::BenchReport report("unit_test");
  report.result("freeze_ms", 12.5);
  report.note("strategy", "collective");
  report.add_standard_metrics();
  const std::string doc = report.json();
  std::string err;
  EXPECT_TRUE(JsonLint::valid(doc, &err)) << err << "\n" << doc;
  EXPECT_NE(doc.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"freeze_time_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"freeze_bytes\""), std::string::npos);
  EXPECT_NE(doc.find("\"packet_delay_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"strategy\": \"collective\""), std::string::npos);
}

TEST(BenchReport, CarriesProvenanceAndPassesBenchLint) {
  obs::BenchReport report("prov_test");
  report.set_seed(0xABCDEF0123ULL);
  report.add_standard_metrics();
  const std::string doc = report.json();
  std::string err;
  EXPECT_TRUE(testutil::bench_report_ok(doc, &err)) << err << "\n" << doc;
  EXPECT_NE(doc.find("\"provenance\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"git\": \""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": " + std::to_string(0xABCDEF0123ULL)),
            std::string::npos);
}

TEST(BenchReport, BenchLintRejectsMissingProvenance) {
  // Structurally valid JSON, but no provenance block (a pre-schema report).
  const std::string legacy =
      "{\"bench\": \"old\", \"schema\": 1, \"results\": {}}";
  std::string err;
  EXPECT_TRUE(JsonLint::valid(legacy, &err)) << err;
  EXPECT_FALSE(testutil::bench_report_ok(legacy, &err));
  EXPECT_NE(err.find("provenance"), std::string::npos) << err;

  // Provenance present but incomplete: still rejected.
  const std::string partial =
      "{\"bench\": \"old\", \"schema\": 1, "
      "\"provenance\": {\"schema_version\": 1, \"git\": \"abc\"}, "
      "\"results\": {}}";
  EXPECT_TRUE(JsonLint::valid(partial, &err)) << err;
  EXPECT_FALSE(testutil::bench_report_ok(partial, &err));
  EXPECT_NE(err.find("seed"), std::string::npos) << err;

  // Invalid JSON is rejected before any key check.
  EXPECT_FALSE(testutil::bench_report_ok("{\"bench\": ", &err));
}

// ============================================================== packet tracer

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{}};
  stack::NetStack a{engine, "hostA", SimTime::seconds(1)};
  stack::NetStack b{engine, "hostB", SimTime::seconds(2)};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
  }
};

TEST(PacketTracerEdge, FormatZeroLengthUdp) {
  stack::PacketTracer::Record rec;
  rec.t = SimTime::milliseconds(2);
  rec.dir = stack::PacketTracer::Direction::out;
  rec.packet = net::make_udp(net::Endpoint{kAddrA, 27960},
                             net::Endpoint{kAddrB, 49907}, Buffer{});
  const std::string line = stack::PacketTracer::format(rec);
  EXPECT_EQ(line, "   0.002000 OUT UDP 10.0.0.1:27960 > 10.0.0.2:49907 len 0");
}

TEST(PacketTracerEdge, FormatTcpCarriesFlagsAndSeq) {
  net::TcpHeader hdr;
  hdr.sport = 80;
  hdr.dport = 5555;
  hdr.seq = 1234;
  hdr.flags = net::tcp_flags::syn | net::tcp_flags::ack;
  stack::PacketTracer::Record rec;
  rec.t = SimTime::seconds(1);
  rec.dir = stack::PacketTracer::Direction::in;
  rec.packet = net::make_tcp(net::Endpoint{kAddrB, 80}, net::Endpoint{kAddrA, 5555},
                             hdr, Buffer{});
  const std::string line = stack::PacketTracer::format(rec);
  EXPECT_EQ(line,
            "   1.000000 IN  TCP 10.0.0.2:80 > 10.0.0.1:5555 len 0 [S.] seq 1234");
}

TEST(PacketTracerEdge, SetFilterCanBeReplacedAndCleared) {
  TwoHosts h;
  stack::PacketTracer tracer(h.b);
  auto s1 = h.b.make_udp();
  s1->bind(kAddrB, 5000);
  auto s2 = h.b.make_udp();
  s2->bind(kAddrB, 6000);
  auto client = h.a.make_udp();

  tracer.set_filter([](const net::Packet& p) { return p.dport() == 5000; });
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  client->send_to(net::Endpoint{kAddrB, 6000}, Buffer{2});
  h.engine.run();
  EXPECT_EQ(tracer.records().size(), 1u);

  tracer.set_filter([](const net::Packet& p) { return p.dport() == 6000; });
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{3});
  client->send_to(net::Endpoint{kAddrB, 6000}, Buffer{4});
  h.engine.run();
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records().back().packet.dport(), 6000);

  tracer.set_filter(nullptr);  // back to capture-everything
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{5});
  client->send_to(net::Endpoint{kAddrB, 6000}, Buffer{6});
  h.engine.run();
  EXPECT_EQ(tracer.records().size(), 4u);
}

TEST(PacketTracerCap, WarnsOnceAndSurfacesDropCountInMetrics) {
  TwoHosts h;
  const std::uint64_t dropped_before =
      obs::Registry::instance().counter("tracer.dropped_by_cap").value();
  stack::PacketTracer tracer(h.b, /*max_records=*/2);
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();

  LogSinkCapture sink;
  for (int i = 0; i < 6; ++i) {
    client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  }
  h.engine.run();

  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.dropped_by_cap(), 4u);
  // The registry mirrors the per-tracer count, so CI metric snapshots show it.
  EXPECT_EQ(
      obs::Registry::instance().counter("tracer.dropped_by_cap").value(),
      dropped_before + 4);
  // Exactly one warning for the whole overflow, at the first dropped packet.
  std::size_t warnings = 0;
  for (const std::string& line : sink.lines) {
    if (line.find("packet trace full") != std::string::npos) warnings += 1;
  }
  EXPECT_EQ(warnings, 1u);
}

}  // namespace
}  // namespace dvemig
