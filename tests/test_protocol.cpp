// FrameChannel (the migd wire protocol) and netfilter chain edge cases, plus
// the malformed-frame corpus: hostile byte streams pushed through a real TCP
// socket must poison the channel (never the deserializers) and surface as
// mig_abort at the migd layer.
#include <gtest/gtest.h>

#include <string>

#include "src/check/verifier.hpp"
#include "src/dve/testbed.hpp"
#include "src/mig/protocol.hpp"
#include "src/net/switch.hpp"

namespace dvemig::mig {
namespace {

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct ChannelPair {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  stack::NetStack a{engine, "a", SimTime::seconds(1)};
  stack::NetStack b{engine, "b", SimTime::seconds(2)};
  std::unique_ptr<FrameChannel> client;
  std::unique_ptr<FrameChannel> server;

  ChannelPair() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
    auto listener = b.make_tcp();
    listener->bind(kAddrB, kMigdPort);
    listener->listen(4);
    auto csock = a.make_tcp();
    csock->connect(net::Endpoint{kAddrB, kMigdPort});
    engine.run();
    auto ssock = listener->accept();
    EXPECT_NE(ssock, nullptr);
    listener->close();
    client = std::make_unique<FrameChannel>(std::move(csock));
    server = std::make_unique<FrameChannel>(std::move(ssock));
  }
};

TEST(FrameChannelTest, RoundTripsTypedFrames) {
  ChannelPair p;
  std::vector<std::pair<MsgType, Buffer>> got;
  p.server->set_on_frame([&](MsgType t, BinaryReader& r) {
    Buffer body;
    while (!r.at_end()) body.push_back(r.u8());
    got.emplace_back(t, std::move(body));
  });
  p.client->send(MsgType::mig_begin, Buffer{1, 2, 3});
  p.client->send(MsgType::capture_request, Buffer{});
  p.engine.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, MsgType::mig_begin);
  EXPECT_EQ(got[0].second, (Buffer{1, 2, 3}));
  EXPECT_EQ(got[1].first, MsgType::capture_request);
  EXPECT_TRUE(got[1].second.empty());
}

TEST(FrameChannelTest, LargeFrameReassembledAcrossSegments) {
  ChannelPair p;
  Buffer payload(300'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  Buffer got;
  int frames = 0;
  p.server->set_on_frame([&](MsgType t, BinaryReader& r) {
    EXPECT_EQ(t, MsgType::memory_delta);
    while (!r.at_end()) got.push_back(r.u8());
    ++frames;
  });
  p.client->send(MsgType::memory_delta, payload);
  p.engine.run();
  EXPECT_EQ(frames, 1);  // one frame despite ~200 TCP segments
  EXPECT_EQ(got, payload);
}

TEST(FrameChannelTest, ManySmallFramesKeepOrder) {
  ChannelPair p;
  std::vector<std::uint32_t> seen;
  p.server->set_on_frame([&](MsgType, BinaryReader& r) { seen.push_back(r.u32()); });
  for (std::uint32_t i = 0; i < 200; ++i) {
    BinaryWriter w;
    w.u32(i);
    p.client->send(MsgType::socket_state, std::move(w));
  }
  p.engine.run();
  ASSERT_EQ(seen.size(), 200u);
  for (std::uint32_t i = 0; i < 200; ++i) EXPECT_EQ(seen[i], i);
}

TEST(FrameChannelTest, BidirectionalInterleaving) {
  ChannelPair p;
  int to_server = 0, to_client = 0;
  p.server->set_on_frame([&](MsgType, BinaryReader&) {
    ++to_server;
    p.server->send(MsgType::socket_ack, Buffer{});  // echo back
  });
  p.client->set_on_frame([&](MsgType t, BinaryReader&) {
    EXPECT_EQ(t, MsgType::socket_ack);
    ++to_client;
  });
  for (int i = 0; i < 50; ++i) p.client->send(MsgType::socket_state, Buffer(64, 1));
  p.engine.run();
  EXPECT_EQ(to_server, 50);
  EXPECT_EQ(to_client, 50);
}

TEST(FrameChannelTest, BytesSentCountsFraming) {
  ChannelPair p;
  p.client->send(MsgType::mig_begin, Buffer(100, 0));
  // 4 (length) + 1 (type) + 100 payload.
  EXPECT_EQ(p.client->bytes_sent(), 105u);
}

// ---------------------------------------------------- malformed-frame corpus

// A raw TCP sender facing a FrameChannel receiver: the bytes cross the real
// simulated stack (segmentation included), not a shortcut into the parser.
struct RawPair {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  stack::NetStack a{engine, "a", SimTime::seconds(1)};
  stack::NetStack b{engine, "b", SimTime::seconds(2)};
  stack::TcpSocket::Ptr raw;  // attacker end: writes arbitrary bytes
  std::unique_ptr<FrameChannel> server;
  std::vector<MsgType> frames;
  std::string error;

  RawPair() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
    auto listener = b.make_tcp();
    listener->bind(kAddrB, kMigdPort);
    listener->listen(4);
    raw = a.make_tcp();
    raw->connect(net::Endpoint{kAddrB, kMigdPort});
    engine.run();
    auto ssock = listener->accept();
    EXPECT_NE(ssock, nullptr);
    listener->close();
    server = std::make_unique<FrameChannel>(std::move(ssock));
    server->set_on_frame([this](MsgType t, BinaryReader&) { frames.push_back(t); });
    server->set_on_error([this](const char* reason) { error = reason; });
  }

  void send_raw(Buffer bytes) {
    raw->send(std::move(bytes));
    engine.run();
  }
};

TEST(MalformedFrame, TruncatedHeaderWaitsWithoutErroring) {
  RawPair p;
  p.send_raw(Buffer{5, 0});  // 2 of the 4 length bytes, then the peer goes quiet
  EXPECT_FALSE(p.server->errored());
  EXPECT_TRUE(p.frames.empty());
}

TEST(MalformedFrame, SplitValidFrameReassembles) {
  RawPair p;
  BinaryWriter w;
  w.u32(3);
  w.u8(static_cast<std::uint8_t>(MsgType::socket_state));
  w.u8(0xAA);
  w.u8(0xBB);
  Buffer full = w.take();
  p.send_raw(Buffer(full.begin(), full.begin() + 3));  // truncated header
  EXPECT_TRUE(p.frames.empty());
  EXPECT_FALSE(p.server->errored());
  p.send_raw(Buffer(full.begin() + 3, full.end()));  // remainder
  ASSERT_EQ(p.frames.size(), 1u);
  EXPECT_EQ(p.frames[0], MsgType::socket_state);
}

TEST(MalformedFrame, ZeroLengthFrameRejected) {
  RawPair p;
  BinaryWriter w;
  w.u32(0);
  p.send_raw(w.take());
  EXPECT_TRUE(p.server->errored());
  EXPECT_EQ(p.error, "zero-length frame");
  EXPECT_TRUE(p.frames.empty());
}

TEST(MalformedFrame, LengthOverflowRejectedBeforeBuffering) {
  RawPair p;
  BinaryWriter w;
  w.u32(kMaxFrameLen + 1);  // claims a ~256 MiB frame; no payload ever follows
  p.send_raw(w.take());
  EXPECT_TRUE(p.server->errored());
  EXPECT_EQ(p.error, "frame length exceeds cap");
}

TEST(MalformedFrame, UnknownTypeRejected) {
  RawPair p;
  BinaryWriter w;
  w.u32(1);
  w.u8(0xEE);  // not a MsgType
  p.send_raw(w.take());
  EXPECT_TRUE(p.server->errored());
  EXPECT_EQ(p.error, "unknown frame type");
  EXPECT_TRUE(p.frames.empty());
}

TEST(MalformedFrame, TypeZeroRejected) {
  RawPair p;
  BinaryWriter w;
  w.u32(1);
  w.u8(0);  // below kMsgTypeMin
  p.send_raw(w.take());
  EXPECT_TRUE(p.server->errored());
  EXPECT_EQ(p.error, "unknown frame type");
}

TEST(MalformedFrame, PoisonedChannelIgnoresLaterValidFrames) {
  RawPair p;
  BinaryWriter bad;
  bad.u32(0);
  p.send_raw(bad.take());
  ASSERT_TRUE(p.server->errored());

  BinaryWriter good;
  good.u32(1);
  good.u8(static_cast<std::uint8_t>(MsgType::mig_begin));
  p.send_raw(good.take());
  EXPECT_TRUE(p.frames.empty());  // parsing never resumes after poisoning
  EXPECT_TRUE(p.server->errored());
}

// Duplicate capture_enabled is well-formed framing but an illegal protocol
// step; it is dvemig-verify's state machine that catches it on live channels.
TEST(MalformedFrame, DuplicateCaptureEnabledTripsProtocolChecker) {
  ChannelPair p;
  check::VerifierConfig vcfg;
  vcfg.abort_on_violation = false;
  check::Verifier verify{p.engine, vcfg};

  p.client->set_on_frame([](MsgType, BinaryReader&) {});
  p.server->set_on_frame([](MsgType, BinaryReader&) {});
  p.client->send(MsgType::mig_begin, Buffer{});
  p.client->send(MsgType::capture_request, Buffer{});
  p.engine.run();
  p.server->send(MsgType::capture_enabled, Buffer{});
  p.engine.run();
  EXPECT_TRUE(verify.clean());

  p.server->send(MsgType::capture_enabled, Buffer{});  // duplicate
  p.engine.run();
  EXPECT_FALSE(verify.clean());
  ASSERT_FALSE(verify.violations().empty());
  EXPECT_EQ(verify.violations().front().rule, "protocol.capture-enabled-unrequested");
}

// The migd layer's reaction to a poisoned inbound stream: answer mig_abort so
// the source fails fast instead of hanging on a dead destination.
TEST(MalformedFrame, MigdAnswersGarbageWithMigAbort) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.with_db = false;
  cfg.start_conductors = false;
  dve::Testbed bed{cfg};

  auto raw = bed.node(1).node.stack().make_tcp();
  raw->bind(bed.node(1).node.local_addr(), 0);
  raw->connect(net::Endpoint{bed.node(0).node.local_addr(), kMigdPort});
  bed.run_for(SimTime::milliseconds(50));
  ASSERT_EQ(raw->state(), stack::TcpState::established);

  BinaryWriter w;
  w.u32(1);
  w.u8(0xEE);  // unknown type: dest migd's channel poisons itself
  raw->send(w.take());
  bed.run_for(SimTime::milliseconds(100));

  Buffer reply = raw->read();
  ASSERT_GE(reply.size(), 5u);
  BinaryReader r(reply);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(MsgType::mig_abort));
}

// ---------------------------------------------------------- netfilter edges

TEST(NetfilterEdge, HookReleasingItselfDuringRun) {
  sim::Engine engine;
  stack::NetStack st(engine, "x", SimTime::zero());
  int calls = 0;
  stack::HookHandle self;
  self = st.netfilter().register_hook(stack::Hook::local_in, 0,
                                      [&](net::Packet&) {
                                        ++calls;
                                        self.release();  // one-shot hook
                                        return stack::Verdict::accept;
                                      });
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1});
  net::Packet q = p;
  st.netfilter().run(stack::Hook::local_in, p);
  st.netfilter().run(stack::Hook::local_in, q);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(st.netfilter().hook_count(stack::Hook::local_in), 0u);
}

TEST(NetfilterEdge, StolenStopsLowerPriorityHooks) {
  sim::Engine engine;
  stack::NetStack st(engine, "x", SimTime::zero());
  int later_calls = 0;
  stack::HookHandle stealer = st.netfilter().register_hook(
      stack::Hook::local_in, 0, [](net::Packet&) { return stack::Verdict::stolen; });
  stack::HookHandle later = st.netfilter().register_hook(
      stack::Hook::local_in, 10, [&](net::Packet&) {
        ++later_calls;
        return stack::Verdict::accept;
      });
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1});
  EXPECT_EQ(st.netfilter().run(stack::Hook::local_in, p), stack::Verdict::stolen);
  EXPECT_EQ(later_calls, 0);
  stealer.release();
  later.release();
}

TEST(NetfilterEdge, MutationsVisibleDownstream) {
  sim::Engine engine;
  stack::NetStack st(engine, "x", SimTime::zero());
  stack::HookHandle first = st.netfilter().register_hook(
      stack::Hook::local_out, -5, [](net::Packet& p) {
        p.payload.push_back(0xEE);
        return stack::Verdict::accept;
      });
  std::size_t seen_len = 0;
  stack::HookHandle second = st.netfilter().register_hook(
      stack::Hook::local_out, 5, [&](net::Packet& p) {
        seen_len = p.payload.size();
        return stack::Verdict::accept;
      });
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1, 2});
  st.netfilter().run(stack::Hook::local_out, p);
  EXPECT_EQ(seen_len, 3u);
  first.release();
  second.release();
}

}  // namespace
}  // namespace dvemig::mig
