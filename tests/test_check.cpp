// dvemig-verify tests: deliberate corruption must trip the auditor, a legal
// migration must not. Three layers match the verifier's three audit families —
// protocol state machine (pure unit tests), socket-table/TCP invariants
// (corrupted live stacks), and capture dedup — plus a full-testbed regression
// that runs complete live migrations under the auditor with zero violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>

#include "src/check/verifier.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/net/switch.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/tcp_socket.hpp"

namespace dvemig {
namespace {

using check::ProtocolChecker;
using check::Verifier;
using check::VerifierConfig;
using mig::MsgType;

VerifierConfig lenient() {
  VerifierConfig cfg;
  cfg.abort_on_violation = false;  // tests inspect violations() instead
  return cfg;
}

bool has_rule(const Verifier& v, std::string_view rule) {
  return std::any_of(v.violations().begin(), v.violations().end(),
                     [&](const check::Violation& viol) { return viol.rule == rule; });
}

// ============================================================ protocol checker

// Replays frame sequences against both endpoints' channels, the way the live
// observer sees them: each logical frame is outbound on the sender's channel
// and inbound on the receiver's.
struct ProtocolTrace {
  std::vector<std::string> rules;
  ProtocolChecker checker{[this](const std::string& rule, const std::string&) {
    rules.push_back(rule);
  }};
  int src_chan{0};
  int dst_chan{0};

  void src_sends(MsgType t) {
    checker.on_frame(&src_chan, /*outbound=*/true, t);
    checker.on_frame(&dst_chan, /*outbound=*/false, t);
  }
  void dst_sends(MsgType t) {
    checker.on_frame(&dst_chan, /*outbound=*/true, t);
    checker.on_frame(&src_chan, /*outbound=*/false, t);
  }
  bool has(std::string_view rule) const {
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  }
};

TEST(ProtocolChecker, LegalLiveMigrationSequenceIsClean) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::memory_delta);   // precopy round 1
  t.src_sends(MsgType::memory_delta);   // precopy round 2
  t.src_sends(MsgType::capture_request);
  t.dst_sends(MsgType::capture_enabled);
  t.src_sends(MsgType::socket_state);
  t.dst_sends(MsgType::socket_ack);
  t.src_sends(MsgType::memory_delta);   // freeze-phase final delta
  t.src_sends(MsgType::process_image);
  t.dst_sends(MsgType::resume_done);
  EXPECT_TRUE(t.rules.empty()) << t.rules.front();
  EXPECT_EQ(t.checker.frames_seen(), 20u);  // 10 frames, 2 channel views each
  t.checker.on_closed(&t.src_chan);
  t.checker.on_closed(&t.dst_chan);
  EXPECT_EQ(t.checker.active_channels(), 0u);
}

TEST(ProtocolChecker, AbortOnlySequenceIsClean) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::memory_delta);
  t.dst_sends(MsgType::mig_abort);
  EXPECT_TRUE(t.rules.empty());
}

TEST(ProtocolChecker, ImageWithSocketStateButNoCaptureTrips) {
  // Section V-B: shipping socket state without ever arming the loss-prevention
  // filters means in-flight packets are silently dropped.
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::socket_state);
  t.dst_sends(MsgType::socket_ack);
  t.src_sends(MsgType::process_image);
  EXPECT_TRUE(t.has("protocol.image-before-capture"));
}

TEST(ProtocolChecker, ImageBeforeCaptureAckTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::capture_request);
  t.src_sends(MsgType::process_image);  // filters not confirmed armed yet
  EXPECT_TRUE(t.has("protocol.image-while-capture-pending"));
}

TEST(ProtocolChecker, DuplicateCaptureEnabledTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::capture_request);
  t.dst_sends(MsgType::capture_enabled);
  t.dst_sends(MsgType::capture_enabled);  // spurious second ack
  EXPECT_TRUE(t.has("protocol.capture-enabled-unrequested"));
}

TEST(ProtocolChecker, DeltaAfterImageTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::process_image);
  t.src_sends(MsgType::memory_delta);
  EXPECT_TRUE(t.has("protocol.delta-after-image"));
}

TEST(ProtocolChecker, ResumeBeforeImageTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.dst_sends(MsgType::resume_done);
  EXPECT_TRUE(t.has("protocol.resume-before-image"));
}

TEST(ProtocolChecker, FrameAfterAbortTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::mig_abort);
  t.src_sends(MsgType::memory_delta);
  EXPECT_TRUE(t.has("protocol.frame-after-abort"));
}

TEST(ProtocolChecker, FrameAfterResumeTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::process_image);
  t.dst_sends(MsgType::resume_done);
  t.src_sends(MsgType::memory_delta);
  EXPECT_TRUE(t.has("protocol.frame-after-resume"));
}

TEST(ProtocolChecker, ChannelMustOpenWithMigBegin) {
  ProtocolTrace t;
  t.src_sends(MsgType::memory_delta);
  EXPECT_TRUE(t.has("protocol.first-frame"));
}

TEST(ProtocolChecker, DestMayNotSendSourceFrames) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.dst_sends(MsgType::memory_delta);  // only the source ships memory
  EXPECT_TRUE(t.has("protocol.direction"));
}

TEST(ProtocolChecker, DuplicateBeginTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::mig_begin);
  EXPECT_TRUE(t.has("protocol.duplicate-begin"));
}

TEST(ProtocolChecker, DuplicateImageTrips) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::process_image);
  t.src_sends(MsgType::process_image);
  EXPECT_TRUE(t.has("protocol.duplicate-image"));
}

// ==================================================== socket-table/TCP audits

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct AuditFixture : ::testing::Test {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  stack::NetStack a{engine, "hostA", SimTime::seconds(100)};
  stack::NetStack b{engine, "hostB", SimTime::seconds(300)};
  Verifier verify{engine, lenient()};
  stack::TcpSocket::Ptr client, server;

  void SetUp() override {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
    verify.watch_stack(a);
    verify.watch_stack(b);

    auto listener = b.make_tcp();
    listener->bind(kAddrB, 9000);
    listener->listen(8);
    client = a.make_tcp();
    client->connect(net::Endpoint{kAddrB, 9000});
    engine.run();
    server = listener->accept();
    ASSERT_NE(server, nullptr);
    listener->close();
    engine.run();
  }
};

TEST_F(AuditFixture, EstablishedPairAuditsClean) {
  // The hook audited after every event of the handshake; nothing tripped.
  EXPECT_GT(verify.audits_run(), 0u);
  EXPECT_GT(verify.checks_run(), 0u);
  EXPECT_TRUE(verify.clean());
}

TEST_F(AuditFixture, SndUnaAheadOfSndNxtTrips) {
  client->cb().snd_una = client->cb().snd_nxt + 1;
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "tcp.snd-una-ahead"));
}

TEST_F(AuditFixture, HashedFlagClearedWhileStillInEhashTrips) {
  client->set_hashed_established(false);  // flag says unhashed, table disagrees
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "ehash.flag-mismatch"));
}

TEST_F(AuditFixture, EhashRemovalWithoutFlagClearTrips) {
  // The inverse corruption: unhash from the table but leave the socket
  // believing it is still reachable (a violated Section V-C unhash step).
  a.table().ehash_remove(stack::FourTuple{client->local(), client->remote()});
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "ehash.dangling-flag"));
}

TEST_F(AuditFixture, ReceiveByteCounterDriftTrips) {
  server->cb().receive_queue_bytes += 7;
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "tcp.rx-byte-counter"));
}

TEST_F(AuditFixture, WriteQueueGapTrips) {
  auto& cb = client->cb();
  cb.write_queue.push_back(stack::TcpTxSegment{cb.snd_nxt, 0, Buffer(10, 0xAB), 0, -1, 0});
  cb.write_queue.push_back(
      stack::TcpTxSegment{cb.snd_nxt + 11, 0, Buffer(5, 0xCD), 0, -1, 0});  // hole
  cb.snd_una = cb.write_queue.front().seq;
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "tcp.write-queue-gap"));
}

TEST_F(AuditFixture, StaleOooSegmentTrips) {
  auto& cb = server->cb();
  const std::uint32_t seq = cb.rcv_nxt - 10;  // at/before rcv_nxt: never drained
  cb.ooo_queue[seq] = stack::TcpRxSegment{seq, Buffer(4, 0xEE), false};
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "tcp.ooo-not-beyond-rcv-nxt"));
}

TEST_F(AuditFixture, BacklogWithoutUserLockTrips) {
  client->cb().backlog.emplace_back();
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "tcp.backlog-unlocked"));
}

TEST_F(AuditFixture, ViolationCountKeepsCountingPastRecordCap) {
  client->cb().snd_una = client->cb().snd_nxt + 1;
  const std::uint64_t before = verify.violation_count();
  verify.audit_now();
  verify.audit_now();
  EXPECT_GT(verify.violation_count(), before);
  EXPECT_FALSE(verify.clean());
}

// ============================================================== capture dedup

TEST(CaptureAudit, DuplicateQueuedSequenceTrips) {
  sim::Engine engine;
  stack::NetStack st{engine, "host", SimTime::seconds(100)};
  mig::CaptureManager cm{st};
  Verifier verify{engine, lenient()};
  verify.watch_capture(cm);

  const std::uint64_t session = cm.begin_session();
  net::Packet p;
  p.proto = net::IpProto::tcp;
  p.src = net::Ipv4Addr::octets(10, 0, 0, 9);
  p.tcp.sport = 4321;
  p.tcp.dport = 9000;
  p.tcp.seq = 777;
  cm.inject_queued_for_test(session, p);
  verify.audit_now();
  EXPECT_TRUE(verify.clean());  // one copy is fine

  cm.inject_queued_for_test(session, p);  // dedup filter bypassed: corruption
  verify.audit_now();
  EXPECT_TRUE(has_rule(verify, "capture.duplicate-seq"));
  cm.abort_session(session);
}

// ================================================== full-migration regression

// The acceptance test: complete live migrations on the real testbed, audited
// after every few events, finish with zero violations — including the protocol
// state machine fed by the live FrameChannel observer.
TEST(VerifiedMigration, LiveMigrationRunsCleanUnderAuditor) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  dve::Testbed bed{cfg};

  VerifierConfig vcfg = lenient();
  vcfg.every_n_events = 16;  // the testbed fires millions of events
  Verifier verify{bed.engine(), vcfg};
  for (std::size_t i = 0; i < bed.node_count(); ++i) {
    verify.watch_stack(bed.node(i).node.stack());
    verify.watch_capture(bed.node(i).migd.capture());
  }
  verify.watch_stack(bed.db_node()->stack());

  dve::ZoneServerConfig zs;
  zs.zone = 3;
  zs.db_addr = bed.db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  const Pid pid = proc->pid();
  bed.run_for(SimTime::seconds(1));

  mig::MigrationStats stats;
  bool done = false;
  ASSERT_TRUE(bed.node(0).migd.migrate(
      pid, bed.node(1).node.local_addr(),
      mig::SocketMigStrategy::incremental_collective,
      [&](const mig::MigrationStats& s) {
        stats = s;
        done = true;
      }));
  bed.run_for(SimTime::seconds(5));

  ASSERT_TRUE(done);
  EXPECT_TRUE(stats.success);
  EXPECT_GT(verify.audits_run(), 0u);
  EXPECT_GT(verify.checks_run(), 0u);
  // The live channels really were observed end to end.
  EXPECT_GT(verify.protocol().frames_seen(), 0u);
  EXPECT_TRUE(verify.clean()) << verify.violations().front().rule << ": "
                              << verify.violations().front().detail;
}

}  // namespace
}  // namespace dvemig
