// UDP socket and NetStack demux/netfilter/dst-cache tests.
#include <gtest/gtest.h>

#include "src/net/switch.hpp"
#include "src/stack/net_stack.hpp"
#include "src/stack/tcp_socket.hpp"
#include "src/stack/udp_socket.hpp"

namespace dvemig::stack {
namespace {

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  NetStack a{engine, "hostA", SimTime::seconds(100)};
  NetStack b{engine, "hostB", SimTime::seconds(300)};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
  }
};

TEST(UdpTest, SendToBoundSocket) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{'h', 'i'});
  h.engine.run();
  auto d = server->recv();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->data, (Buffer{'h', 'i'}));
  EXPECT_EQ(d->from.addr, kAddrA);
}

TEST(UdpTest, ReplyReachesEphemeralPort) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  h.engine.run();
  const auto req = server->recv();
  ASSERT_TRUE(req.has_value());
  server->send_to(req->from, Buffer{2});
  h.engine.run();
  const auto resp = client->recv();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->data, (Buffer{2}));
}

TEST(UdpTest, ConnectedSocketFiltersForeignSenders) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  server->connect(net::Endpoint{kAddrA, 7777});  // only accepts this peer

  auto right = h.a.make_udp();
  right->bind(kAddrA, 7777);
  auto wrong = h.a.make_udp();
  wrong->bind(kAddrA, 8888);

  right->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  wrong->send_to(net::Endpoint{kAddrB, 5000}, Buffer{2});
  h.engine.run();
  ASSERT_EQ(server->pending(), 1u);
  EXPECT_EQ(server->recv()->data, (Buffer{1}));
}

TEST(UdpTest, OnReadableCallback) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  int called = 0;
  server->set_on_readable([&] { ++called; });
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{2});
  h.engine.run();
  EXPECT_EQ(called, 2);
}

TEST(UdpTest, RcvbufCapDropsExcess) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  server->cb().rcvbuf_datagrams = 3;
  auto client = h.a.make_udp();
  for (int i = 0; i < 10; ++i) {
    client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{static_cast<std::uint8_t>(i)});
  }
  h.engine.run();
  EXPECT_EQ(server->pending(), 3u);
  EXPECT_EQ(server->cb().dropped_rcvbuf, 7u);
}

TEST(UdpTest, CloseUnbindsPort) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  EXPECT_TRUE(h.b.table().port_bound(5000, SocketType::udp));
  server->close();
  EXPECT_FALSE(h.b.table().port_bound(5000, SocketType::udp));
  auto again = h.b.make_udp();
  again->bind(kAddrB, 5000);  // rebinding after close must succeed
}

TEST(StackTest, NoSocketMeansSilentDrop) {
  TwoHosts h;
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 4242}, Buffer{1});
  h.engine.run();
  EXPECT_EQ(h.b.stats().rx_no_socket, 1u);
  EXPECT_EQ(h.b.stats().rx_delivered, 0u);
}

TEST(StackTest, CorruptedChecksumDropped) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  net::Packet p = net::make_udp({kAddrA, 1234}, {kAddrB, 5000}, Buffer{1, 2, 3});
  p.checksum ^= 0x5555;  // corrupt in flight
  h.b.rx(std::move(p));
  h.engine.run();
  EXPECT_EQ(h.b.stats().rx_bad_checksum, 1u);
  EXPECT_EQ(server->pending(), 0u);
}

TEST(StackTest, JiffiesDifferAcrossHosts) {
  TwoHosts h;
  // hostA booted at +100 s, hostB at +300 s: 200 s = 20,000 jiffies apart.
  EXPECT_EQ(h.b.jiffies() - h.a.jiffies(), 20'000);
  const std::int64_t ja = h.a.jiffies();
  h.engine.run_until(SimTime::milliseconds(100));
  EXPECT_EQ(h.a.jiffies(), ja + 10);  // 10 ms per jiffy
}

TEST(StackTest, HookDropVerdictCounts) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  HookHandle hook = h.b.netfilter().register_hook(
      Hook::local_in, 0, [](net::Packet&) { return Verdict::drop; });
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  h.engine.run();
  EXPECT_EQ(h.b.stats().rx_hook_dropped, 1u);
  EXPECT_EQ(server->pending(), 0u);
  hook.release();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{2});
  h.engine.run();
  EXPECT_EQ(server->pending(), 1u);
}

TEST(StackTest, HooksRunInPriorityOrder) {
  TwoHosts h;
  std::vector<int> order;
  HookHandle h2 = h.b.netfilter().register_hook(Hook::local_in, 10, [&](net::Packet&) {
    order.push_back(2);
    return Verdict::accept;
  });
  HookHandle h1 = h.b.netfilter().register_hook(Hook::local_in, -10, [&](net::Packet&) {
    order.push_back(1);
    return Verdict::accept;
  });
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  h.engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(StackTest, LocalOutHookSeesOutgoingPackets) {
  TwoHosts h;
  int seen = 0;
  HookHandle hook = h.a.netfilter().register_hook(Hook::local_out, 0,
                                                  [&](net::Packet&) {
                                                    ++seen;
                                                    return Verdict::accept;
                                                  });
  auto client = h.a.make_udp();
  client->send_to(net::Endpoint{kAddrB, 5000}, Buffer{1});
  h.engine.run();
  EXPECT_EQ(seen, 1);
}

TEST(StackTest, DstCachePopulatedForConnectedSocketsAndSteersFrames) {
  TwoHosts h;
  auto client = h.a.make_udp();
  client->connect(net::Endpoint{kAddrB, 5000});  // connected: per-socket route
  client->send(Buffer{1});
  EXPECT_EQ(h.a.dst_cache_lookup(client->sock_id()), kAddrB);
  h.engine.run();  // let the first (unowned) datagram drain away
  // Poison the cache: frames go to the cached hop, not the header destination.
  h.a.dst_cache_replace(client->sock_id(), net::Ipv4Addr::octets(10, 0, 0, 99));
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  client->send(Buffer{2});
  h.engine.run();
  EXPECT_EQ(server->pending(), 0u);  // misdelivered to a nonexistent port
  EXPECT_EQ(h.sw.dropped_unroutable(), 1u);
}

TEST(StackTest, UnconnectedUdpRoutesPerPacket) {
  // An unconnected UDP socket (like transd's control socket) answers many peers;
  // no per-socket cache entry may steer later datagrams to the first peer.
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  auto multi = h.a.make_udp();
  multi->send_to(net::Endpoint{net::Ipv4Addr::octets(10, 0, 0, 77), 5000}, Buffer{1});
  h.engine.run();
  multi->send_to(net::Endpoint{kAddrB, 5000}, Buffer{2});  // different peer
  h.engine.run();
  ASSERT_EQ(server->pending(), 1u);
  EXPECT_EQ(server->recv()->data, (Buffer{2}));
}

TEST(StackTest, ReinjectBypassesLocalInHooks) {
  TwoHosts h;
  auto server = h.b.make_udp();
  server->bind(kAddrB, 5000);
  int hook_hits = 0;
  HookHandle hook = h.b.netfilter().register_hook(Hook::local_in, 0,
                                                  [&](net::Packet&) {
                                                    ++hook_hits;
                                                    return Verdict::drop;
                                                  });
  net::Packet p = net::make_udp({kAddrA, 1234}, {kAddrB, 5000}, Buffer{9});
  h.b.reinject(std::move(p));
  EXPECT_EQ(hook_hits, 0);  // okfn() path skips LOCAL_IN
  EXPECT_EQ(server->pending(), 1u);
}

}  // namespace
}  // namespace dvemig::stack
