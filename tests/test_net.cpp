// Unit tests for src/net: addressing, packet checksums (incl. the RFC 1624
// incremental update), link timing, the cluster switch and the broadcast router.
#include <gtest/gtest.h>

#include "src/net/checksum.hpp"
#include "src/net/link.hpp"
#include "src/net/packet.hpp"
#include "src/net/router.hpp"
#include "src/net/switch.hpp"

namespace dvemig::net {
namespace {

TEST(AddressTest, OctetsAndToString) {
  const Ipv4Addr a = Ipv4Addr::octets(192, 168, 1, 10);
  EXPECT_EQ(a.value, 0xC0A8010Au);
  EXPECT_EQ(a.to_string(), "192.168.1.10");
  EXPECT_TRUE(Ipv4Addr::broadcast().is_broadcast());
  EXPECT_FALSE(a.is_broadcast());
}

TEST(AddressTest, EndpointEquality) {
  const Endpoint a{Ipv4Addr::octets(1, 2, 3, 4), 80};
  const Endpoint b{Ipv4Addr::octets(1, 2, 3, 4), 80};
  const Endpoint c{Ipv4Addr::octets(1, 2, 3, 4), 81};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "1.2.3.4:80");
}

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const Buffer data{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xDDF2 & 0xFFFF));
}

TEST(ChecksumTest, OddLengthHandled) {
  const Buffer data{0xAB};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xAB00 & 0xFFFF));
}

TEST(ChecksumTest, IncrementalAdjustMatchesRecompute) {
  // Changing a 32-bit address field and fixing up incrementally must equal a
  // from-scratch recompute — this is what the translation filter depends on.
  Packet p = make_udp({Ipv4Addr::octets(10, 0, 0, 1), 1111},
                      {Ipv4Addr::octets(10, 0, 0, 2), 2222}, Buffer(37, 0x5C));
  ASSERT_TRUE(checksum_ok(p));
  const Ipv4Addr new_dst = Ipv4Addr::octets(10, 0, 0, 77);
  p.checksum = checksum_adjust32(p.checksum, p.dst.value, new_dst.value);
  p.dst = new_dst;
  EXPECT_TRUE(checksum_ok(p));
}

TEST(ChecksumTest, IncrementalAdjustSourceAddress) {
  TcpHeader hdr;
  hdr.seq = 1000;
  hdr.flags = tcp_flags::ack;
  Packet p = make_tcp({Ipv4Addr::octets(192, 168, 1, 11), 3306},
                      {Ipv4Addr::octets(192, 168, 1, 12), 45000}, hdr,
                      Buffer(64, 0x42));
  ASSERT_TRUE(checksum_ok(p));
  const Ipv4Addr new_src = Ipv4Addr::octets(192, 168, 1, 13);
  p.checksum = checksum_adjust32(p.checksum, p.src.value, new_src.value);
  p.src = new_src;
  EXPECT_TRUE(checksum_ok(p));
}

TEST(PacketTest, ChecksumDetectsCorruption) {
  Packet p = make_udp({Ipv4Addr::octets(1, 1, 1, 1), 5}, {Ipv4Addr::octets(2, 2, 2, 2), 6},
                      Buffer{1, 2, 3});
  EXPECT_TRUE(checksum_ok(p));
  p.payload[1] ^= 0xFF;
  EXPECT_FALSE(checksum_ok(p));
  p.payload[1] ^= 0xFF;
  p.dst = Ipv4Addr::octets(9, 9, 9, 9);  // pseudo-header covered too
  EXPECT_FALSE(checksum_ok(p));
}

TEST(PacketTest, WireSizeIncludesOverheadAndPadding) {
  Packet small = make_udp({Ipv4Addr::octets(1, 1, 1, 1), 5},
                          {Ipv4Addr::octets(2, 2, 2, 2), 6}, Buffer{});
  EXPECT_EQ(small.wire_size(), 84u);  // padded to 64B frame + 20B preamble/IFG
  Packet big = make_udp({Ipv4Addr::octets(1, 1, 1, 1), 5},
                        {Ipv4Addr::octets(2, 2, 2, 2), 6}, Buffer(1000, 0));
  EXPECT_EQ(big.wire_size(), 1000 + 8 + 20 + 18 + 20u);
}

TEST(PacketTest, TcpHeaderFlagsAndDescribe) {
  TcpHeader hdr;
  hdr.flags = tcp_flags::syn | tcp_flags::ack;
  EXPECT_TRUE(hdr.has(tcp_flags::syn));
  EXPECT_TRUE(hdr.has(tcp_flags::ack));
  EXPECT_FALSE(hdr.has(tcp_flags::fin));
  Packet p = make_tcp({Ipv4Addr::octets(1, 1, 1, 1), 80},
                      {Ipv4Addr::octets(2, 2, 2, 2), 90}, hdr, {});
  EXPECT_NE(p.describe().find("[SA]"), std::string::npos);
}

TEST(PacketTest, UniqueTraceIds) {
  const Packet a = make_udp({{}, 1}, {Ipv4Addr::octets(1, 0, 0, 1), 2}, {});
  const Packet b = make_udp({{}, 1}, {Ipv4Addr::octets(1, 0, 0, 1), 2}, {});
  EXPECT_NE(a.id, b.id);
}

// ---------------------------------------------------------------- Link

TEST(LinkTest, DeliveryTimeIsSerializationPlusLatency) {
  sim::Engine engine;
  Link link(engine, LinkConfig{1e9, SimTime::microseconds(25)});
  SimTime arrival{};
  link.set_sink([&](Packet) { arrival = engine.now(); });
  Packet p = make_udp({Ipv4Addr::octets(1, 1, 1, 1), 1},
                      {Ipv4Addr::octets(2, 2, 2, 2), 2}, Buffer(1000, 0));
  const auto wire_bits = static_cast<double>(p.wire_size()) * 8.0;
  link.transmit(std::move(p));
  engine.run();
  const auto expected_ns =
      static_cast<std::int64_t>(wire_bits / 1e9 * 1e9) + 25'000;
  EXPECT_EQ(arrival.ns, expected_ns);
}

TEST(LinkTest, FifoQueueingDelaysSecondPacket) {
  sim::Engine engine;
  Link link(engine, LinkConfig{1e9, SimTime::microseconds(25)});
  std::vector<SimTime> arrivals;
  link.set_sink([&](Packet) { arrivals.push_back(engine.now()); });
  for (int i = 0; i < 3; ++i) {
    link.transmit(make_udp({Ipv4Addr::octets(1, 1, 1, 1), 1},
                           {Ipv4Addr::octets(2, 2, 2, 2), 2}, Buffer(1000, 0)));
  }
  engine.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const SimDuration gap1 = arrivals[1] - arrivals[0];
  const SimDuration gap2 = arrivals[2] - arrivals[1];
  EXPECT_EQ(gap1, gap2);           // back-to-back at line rate
  EXPECT_GT(gap1.ns, 8000);        // ~8.6 us serialization of 1086B
  EXPECT_EQ(link.packets_sent(), 3u);
}

TEST(LinkTest, UnconnectedLinkDropsWithoutCrash) {
  sim::Engine engine;
  Link link(engine, LinkConfig{});
  link.transmit(make_udp({{}, 1}, {Ipv4Addr::octets(1, 0, 0, 1), 2}, {}));
  engine.run();
  EXPECT_EQ(link.packets_sent(), 1u);
}

// ---------------------------------------------------------------- Switch

Packet mk(Ipv4Addr src, Ipv4Addr dst) {
  return make_udp({src, 100}, {dst, 200}, Buffer(10, 0));
}

TEST(SwitchTest, UnicastForwardsOnlyToDestination) {
  sim::Engine engine;
  Switch sw(engine, LinkConfig{});
  const Ipv4Addr a = Ipv4Addr::octets(10, 0, 0, 1);
  const Ipv4Addr b = Ipv4Addr::octets(10, 0, 0, 2);
  const Ipv4Addr c = Ipv4Addr::octets(10, 0, 0, 3);
  int got_b = 0, got_c = 0;
  auto tx_a = sw.attach(a, [](Packet) { FAIL() << "a should receive nothing"; });
  sw.attach(b, [&](Packet) { ++got_b; });
  sw.attach(c, [&](Packet) { ++got_c; });
  tx_a(mk(a, b));
  engine.run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 0);
}

TEST(SwitchTest, BroadcastFloodsAllExceptSender) {
  sim::Engine engine;
  Switch sw(engine, LinkConfig{});
  const Ipv4Addr a = Ipv4Addr::octets(10, 0, 0, 1);
  int received = 0;
  auto tx_a = sw.attach(a, [&](Packet) { ++received; });  // must NOT hear itself
  for (int i = 2; i <= 4; ++i) {
    sw.attach(Ipv4Addr::octets(10, 0, 0, static_cast<std::uint8_t>(i)),
              [&](Packet) { ++received; });
  }
  tx_a(mk(a, Ipv4Addr::broadcast()));
  engine.run();
  EXPECT_EQ(received, 3);
}

TEST(SwitchTest, UnroutableDropped) {
  sim::Engine engine;
  Switch sw(engine, LinkConfig{});
  const Ipv4Addr a = Ipv4Addr::octets(10, 0, 0, 1);
  auto tx_a = sw.attach(a, [](Packet) {});
  tx_a(mk(a, Ipv4Addr::octets(10, 0, 0, 99)));
  engine.run();
  EXPECT_EQ(sw.dropped_unroutable(), 1u);
}

TEST(SwitchTest, DetachStopsDelivery) {
  sim::Engine engine;
  Switch sw(engine, LinkConfig{});
  const Ipv4Addr a = Ipv4Addr::octets(10, 0, 0, 1);
  const Ipv4Addr b = Ipv4Addr::octets(10, 0, 0, 2);
  int got = 0;
  auto tx_a = sw.attach(a, [](Packet) {});
  sw.attach(b, [&](Packet) { ++got; });
  sw.detach(b);
  EXPECT_FALSE(sw.attached(b));
  tx_a(mk(a, b));
  engine.run();
  EXPECT_EQ(got, 0);
}

TEST(SwitchTest, LinkDstOverridesIpDestination) {
  // A stale destination-cache entry steers the frame to the wrong port even
  // though the IP header names the right host — the Section V-D hazard.
  sim::Engine engine;
  Switch sw(engine, LinkConfig{});
  const Ipv4Addr a = Ipv4Addr::octets(10, 0, 0, 1);
  const Ipv4Addr b = Ipv4Addr::octets(10, 0, 0, 2);
  const Ipv4Addr c = Ipv4Addr::octets(10, 0, 0, 3);
  int got_b = 0, got_c = 0;
  auto tx_a = sw.attach(a, [](Packet) {});
  sw.attach(b, [&](Packet) { ++got_b; });
  sw.attach(c, [&](Packet) { ++got_c; });
  Packet p = mk(a, b);
  p.link_dst = c;  // stale cache points at c
  tx_a(std::move(p));
  engine.run();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_c, 1);
}

// ---------------------------------------------------------------- Router

TEST(RouterTest, ClientPacketBroadcastToAllNodes) {
  sim::Engine engine;
  const Ipv4Addr vip = Ipv4Addr::octets(203, 0, 113, 10);
  BroadcastRouter router(engine, vip, LinkConfig{});
  int copies = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    router.attach_node(i, [&](Packet) { ++copies; });
  }
  const Ipv4Addr cli = Ipv4Addr::octets(100, 64, 0, 1);
  auto tx = router.attach_client(cli, [](Packet) {});
  tx(mk(cli, vip));
  engine.run();
  EXPECT_EQ(copies, 5);  // the defining single-IP-cluster property
  EXPECT_EQ(router.broadcast_copies(), 5u);
}

TEST(RouterTest, NodePacketReachesOnlyTargetClient) {
  sim::Engine engine;
  const Ipv4Addr vip = Ipv4Addr::octets(203, 0, 113, 10);
  BroadcastRouter router(engine, vip, LinkConfig{});
  auto node_tx = router.attach_node(0, [](Packet) {});
  const Ipv4Addr c1 = Ipv4Addr::octets(100, 64, 0, 1);
  const Ipv4Addr c2 = Ipv4Addr::octets(100, 64, 0, 2);
  int got1 = 0, got2 = 0;
  router.attach_client(c1, [&](Packet) { ++got1; });
  router.attach_client(c2, [&](Packet) { ++got2; });
  node_tx(mk(vip, c1));
  engine.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 0);
}

TEST(RouterTest, PacketForOtherDestinationDropped) {
  sim::Engine engine;
  const Ipv4Addr vip = Ipv4Addr::octets(203, 0, 113, 10);
  BroadcastRouter router(engine, vip, LinkConfig{});
  int copies = 0;
  router.attach_node(0, [&](Packet) { ++copies; });
  const Ipv4Addr cli = Ipv4Addr::octets(100, 64, 0, 1);
  auto tx = router.attach_client(cli, [](Packet) {});
  tx(mk(cli, Ipv4Addr::octets(8, 8, 8, 8)));  // not the cluster VIP
  engine.run();
  EXPECT_EQ(copies, 0);
  EXPECT_EQ(router.dropped(), 1u);
}

TEST(RouterTest, DetachedNodeStopsReceivingBroadcasts) {
  sim::Engine engine;
  const Ipv4Addr vip = Ipv4Addr::octets(203, 0, 113, 10);
  BroadcastRouter router(engine, vip, LinkConfig{});
  int copies = 0;
  router.attach_node(0, [&](Packet) { ++copies; });
  router.attach_node(1, [&](Packet) { ++copies; });
  router.detach_node(1);
  const Ipv4Addr cli = Ipv4Addr::octets(100, 64, 0, 1);
  auto tx = router.attach_client(cli, [](Packet) {});
  tx(mk(cli, vip));
  engine.run();
  EXPECT_EQ(copies, 1);
}

}  // namespace
}  // namespace dvemig::net
