// Model-checker self-test: prove dvemig-mc can actually catch protocol bugs.
//
// Five deliberate mutations of the migration protocol live behind the
// test-only hook in src/mig/test_hooks.hpp. Each one breaks a different layer
// (capture dedup, restore rehash, commit handshake, freeze arming, image
// endpoints), and each must be flagged by the checker's oracles — on the
// *untouched* schedule, no adversarial interleaving needed. A checker that
// cannot find a planted bug proves nothing about a clean HEAD.
#include <gtest/gtest.h>

#include <string>

#include "src/mc/explorer.hpp"

namespace dvemig::mc {
namespace {

using mig::ProtocolMutation;

RunResult zeros_run(const std::string& preset, ProtocolMutation m) {
  DecisionSource decisions({}, DecisionSource::Tail::zeros, 0);
  return run_scenario(preset, m, decisions);
}

// ------------------------------------------------------------ clean baseline

TEST(ModelChecker, HandshakeDfsExhaustsClean) {
  ExploreConfig cfg;
  cfg.preset = "handshake";
  Explorer ex{cfg};
  const ExploreResult r = ex.dfs();
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.has_violation);
  EXPECT_GT(r.runs, 1u);
  EXPECT_GT(r.distinct_states, 1u);
  EXPECT_GT(r.pruned_visited, 0u);  // state hashing must actually prune
}

TEST(ModelChecker, CrashDfsExhaustsClean) {
  ExploreConfig cfg;
  cfg.preset = "crash";
  Explorer ex{cfg};
  const ExploreResult r = ex.dfs();
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.has_violation);
  // Every frame type branches 4 ways (pass/drop/duplicate/kill); the scope is
  // tiny but must cover more than the happy path.
  EXPECT_GT(r.runs, 10u);
}

TEST(ModelChecker, RandomWalkSmoke) {
  ExploreConfig cfg;
  cfg.preset = "handshake";
  cfg.random_runs = 10;
  cfg.seed = 7;
  Explorer ex{cfg};
  const ExploreResult r = ex.random_walk();
  EXPECT_EQ(r.runs, 10u);
  EXPECT_FALSE(r.has_violation);
}

TEST(ModelChecker, DeterministicReplay) {
  const RunResult a = zeros_run("handshake", ProtocolMutation::none);
  const RunResult b = zeros_run("handshake", ProtocolMutation::none);
  EXPECT_EQ(a.final_state_hash, b.final_state_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

// -------------------------------------------------------- seeded mutations

struct MutationCase {
  ProtocolMutation mutation;
  const char* preset;
  const char* expect_rule;  // a violation whose rule starts with this
};

class MutationSelfTest : public ::testing::TestWithParam<MutationCase> {};

TEST_P(MutationSelfTest, SeededBugIsDetected) {
  const MutationCase& c = GetParam();
  const RunResult mutated = zeros_run(c.preset, c.mutation);
  ASSERT_FALSE(mutated.clean())
      << mutation_name(c.mutation) << " slipped past every oracle";
  bool matched = false;
  for (const auto& v : mutated.violations) {
    matched = matched || v.rfind(c.expect_rule, 0) == 0;
  }
  EXPECT_TRUE(matched) << "expected a '" << c.expect_rule
                       << "' violation; got: " << mutated.violations.front();
  // Control: the same run without the mutation must be clean, or the
  // "detection" above is just oracle noise.
  const RunResult control = zeros_run(c.preset, ProtocolMutation::none);
  EXPECT_TRUE(control.clean())
      << "preset " << c.preset
      << " is not clean on HEAD: " << control.violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, MutationSelfTest,
    ::testing::Values(
        MutationCase{ProtocolMutation::skip_capture_dedup, "freeze",
                     "capture.duplicate-seq"},
        MutationCase{ProtocolMutation::skip_restore_rehash, "handshake",
                     "bhash.dangling-flag"},
        MutationCase{ProtocolMutation::double_resume_done, "handshake",
                     "protocol.frame-after-resume"},
        MutationCase{ProtocolMutation::skip_capture_arm, "freeze",
                     "prop.freeze-capture"},
        MutationCase{ProtocolMutation::swap_image_endpoints, "handshake",
                     "prop.post-resume-liveness"}),
    [](const auto& suite_info) {
      return std::string(mutation_name(suite_info.param.mutation));
    });

// The explorer end-to-end: DFS finds a planted bug, minimizes it, and the
// emitted script replays to the same failure.
TEST(ModelChecker, ExplorerMinimizesAndReplaysSeededBug) {
  ExploreConfig cfg;
  cfg.preset = "handshake";
  cfg.mutation = ProtocolMutation::double_resume_done;
  Explorer ex{cfg};
  const ExploreResult r = ex.dfs();
  ASSERT_TRUE(r.has_violation);
  EXPECT_EQ(r.repro.preset, "handshake");
  EXPECT_EQ(r.repro.mutation, "double_resume_done");
  // Visible on the untouched schedule, so the minimizer must reach zero
  // prescribed choices.
  EXPECT_TRUE(r.repro.choices.empty());
  const RunResult replayed = replay_script(r.repro);
  EXPECT_FALSE(replayed.clean());
}

// ----------------------------------------------------------- script plumbing

TEST(ReproScript, RoundTripsThroughText) {
  Script s;
  s.preset = "crash";
  s.tail = "random";
  s.seed = 42;
  s.mutation = "skip_capture_arm";
  s.choices = {0, 0, 3, 1};
  const std::string text = s.to_text();
  std::string error;
  const auto parsed = Script::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->preset, s.preset);
  EXPECT_EQ(parsed->tail, s.tail);
  EXPECT_EQ(parsed->seed, s.seed);
  EXPECT_EQ(parsed->mutation, s.mutation);
  EXPECT_EQ(parsed->choices, s.choices);
}

TEST(ReproScript, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(Script::parse("not a script", &error).has_value());
  EXPECT_FALSE(Script::parse("choices 0 1\n", &error).has_value());  // no preset
  EXPECT_FALSE(
      Script::parse("preset crash\ntail sideways\n", &error).has_value());
}

}  // namespace
}  // namespace dvemig::mc
