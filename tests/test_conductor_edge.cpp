// Conductor edge cases: contention for a single receiver, node churn, offer
// timeouts, and thread preservation across policy-driven migrations.
#include <gtest/gtest.h>

#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig::lb {
namespace {

std::shared_ptr<proc::Process> server_with(dve::Testbed& bed, std::size_t node,
                                           dve::ZoneId zone, double cores) {
  dve::ZoneServerConfig zs;
  zs.zone = zone;
  zs.use_db = false;
  zs.base_cores = cores;
  zs.heap_bytes = 1 << 20;
  return dve::ZoneServerApp::launch(bed.node(node).node, zs);
}

TEST(ConductorContention, TwoSendersOneReceiver) {
  // Nodes 1 and 2 both overloaded, node 3 idle: both senders court node 3; the
  // receiver accepts one at a time (two-phase commit), and with calm-downs both
  // eventually shed load without node 3 ever accepting two at once.
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  cfg.policy.calm_down = SimTime::seconds(2);
  cfg.policy.imbalance_threshold = 0.10;
  dve::Testbed bed(cfg);
  for (dve::ZoneId z = 0; z < 3; ++z) server_with(bed, 0, z, 0.5);
  for (dve::ZoneId z = 3; z < 6; ++z) server_with(bed, 1, z, 0.5);

  int concurrent_receives = 0;
  int max_concurrent = 0;
  for (std::size_t i = 0; i < 3; ++i) bed.node(i).conductor.set_enabled(true);
  // Track arrival concurrency through process counts on node 3.
  std::size_t last_count = 0;
  for (int t = 1; t <= 60; ++t) {
    bed.run_until(SimTime::seconds(t));
    const std::size_t now = bed.node(2).node.processes().size();
    if (now > last_count) {
      concurrent_receives = static_cast<int>(now - last_count);
      max_concurrent = std::max(max_concurrent, concurrent_receives);
    }
    last_count = now;
  }
  EXPECT_GE(bed.node(2).node.processes().size(), 2u);  // both senders served
  EXPECT_LE(max_concurrent, 1);  // never two arrivals in one window
  const std::size_t total = bed.node(0).node.processes().size() +
                            bed.node(1).node.processes().size() +
                            bed.node(2).node.processes().size();
  EXPECT_EQ(total, 6u);  // nothing lost in the contention
}

TEST(ConductorContention, RejectedSenderRetriesLater) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  cfg.policy.calm_down = SimTime::seconds(2);
  cfg.policy.imbalance_threshold = 0.10;
  dve::Testbed bed(cfg);
  for (dve::ZoneId z = 0; z < 2; ++z) server_with(bed, 0, z, 0.6);
  for (dve::ZoneId z = 2; z < 4; ++z) server_with(bed, 1, z, 0.6);
  for (std::size_t i = 0; i < 3; ++i) bed.node(i).conductor.set_enabled(true);
  bed.run_for(SimTime::seconds(45));
  const std::uint64_t rejections = bed.node(0).conductor.offers_rejected() +
                                   bed.node(1).conductor.offers_rejected();
  // With both senders racing for the same receiver, at least one offer was
  // turned down along the way — and balancing still completed.
  EXPECT_GE(bed.node(2).node.processes().size(), 1u);
  (void)rejections;  // rejections may be 0 if calm-downs happened to interleave
}

TEST(ConductorChurn, LateJoinerGetsLoad) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.policy.calm_down = SimTime::seconds(2);
  dve::Testbed bed(cfg);
  for (dve::ZoneId z = 0; z < 4; ++z) server_with(bed, 0, z, 0.35);
  bed.node(0).conductor.set_enabled(true);
  // Node 2's conductor joins only at t = 10 s.
  bed.node(1).conductor.stop();
  bed.run_for(SimTime::seconds(10));
  EXPECT_EQ(bed.node(1).node.processes().size(), 0u);
  bed.node(1).conductor.start();
  bed.node(1).conductor.set_enabled(true);
  bed.run_for(SimTime::seconds(30));
  EXPECT_GE(bed.node(1).node.processes().size(), 1u);  // discovered and used
}

TEST(ConductorChurn, ThreadsSurvivePolicyDrivenMigration) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.policy.calm_down = SimTime::seconds(2);
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.use_db = false;
  zs.base_cores = 0.7;
  zs.worker_threads = 5;
  zs.heap_bytes = 1 << 20;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  const Pid pid = proc->pid();
  ASSERT_EQ(proc->threads().size(), 6u);  // main + 5 workers
  server_with(bed, 0, 2, 0.7);

  for (std::size_t i = 0; i < 2; ++i) bed.node(i).conductor.set_enabled(true);
  bed.run_for(SimTime::seconds(30));
  // One of the two heavy processes moved; wherever the threaded one ended up,
  // its full thread set came along (Figure 3's per-thread context transfer).
  auto find = [&](Pid p) {
    auto a = bed.node(0).node.find(p);
    return a ? a : bed.node(1).node.find(p);
  };
  auto moved = find(pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->threads().size(), 6u);
  EXPECT_EQ(bed.node(1).node.processes().size(), 1u);
}

TEST(ConductorChurn, DepartedNodeLoadExcludedFromAverage) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  dve::Testbed bed(cfg);
  server_with(bed, 2, 1, 1.2);  // node 3 very hot
  bed.run_for(SimTime::seconds(3));
  const double avg_with = bed.node(0).conductor.cluster_average();
  bed.node(2).conductor.stop();  // hot node leaves
  bed.run_for(SimTime::seconds(8));  // past the peer timeout
  const double avg_without = bed.node(0).conductor.cluster_average();
  EXPECT_GT(avg_with, avg_without + 0.1);
}

}  // namespace
}  // namespace dvemig::lb
