// Unit tests for the discrete-event engine: ordering, determinism, timers.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.hpp"

namespace dvemig::sim {
namespace {

TEST(EngineTest, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(SimTime::milliseconds(30), [&] { order.push_back(3); });
  engine.schedule_at(SimTime::milliseconds(10), [&] { order.push_back(1); });
  engine.schedule_at(SimTime::milliseconds(20), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), SimTime::milliseconds(30));
}

TEST(EngineTest, SameTimestampFiresInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime::milliseconds(5), [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::milliseconds(10), [&] { ++fired; });
  engine.schedule_at(SimTime::milliseconds(30), [&] { ++fired; });
  engine.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), SimTime::milliseconds(20));  // idle time advances
  engine.run_until(SimTime::milliseconds(40));
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventAtBoundaryIncluded) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::milliseconds(10), [&] { ++fired; });
  engine.run_until(SimTime::milliseconds(10));
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  SimTime inner{};
  engine.schedule_at(SimTime::milliseconds(5), [&] {
    engine.schedule_after(SimTime::milliseconds(7), [&] { inner = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(inner, SimTime::milliseconds(12));
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine engine;
  int fired = 0;
  TimerHandle h = engine.schedule_at(SimTime::milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(EngineTest, CancelIsIdempotentAndSafeOnEmptyHandle) {
  Engine engine;
  TimerHandle h;
  h.cancel();  // empty handle: no-op
  h = engine.schedule_at(SimTime::milliseconds(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_EQ(engine.run(), 0u);
}

TEST(EngineTest, HandleConsumedAfterFiring) {
  Engine engine;
  TimerHandle h = engine.schedule_at(SimTime::milliseconds(1), [] {});
  engine.run();
  EXPECT_FALSE(h.pending());
}

TEST(EngineTest, RearmInsideCallback) {
  Engine engine;
  int count = 0;
  TimerHandle h;
  std::function<void()> tick = [&] {
    if (++count < 5) h = engine.schedule_after(SimTime::milliseconds(10), tick);
  };
  h = engine.schedule_after(SimTime::milliseconds(10), tick);
  engine.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), SimTime::milliseconds(50));
}

TEST(EngineTest, RunWithLimitStopsEarly) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime::milliseconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(engine.pending_events(), 7u);
}

TEST(EngineTest, ClearDropsEverything) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(SimTime::milliseconds(1), [&] { ++fired; });
  engine.clear();
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(EngineTest, CancelledEventsSkippedByRunUntil) {
  Engine engine;
  int fired = 0;
  TimerHandle h1 = engine.schedule_at(SimTime::milliseconds(5), [&] { ++fired; });
  engine.schedule_at(SimTime::milliseconds(50), [&] { ++fired; });
  h1.cancel();
  engine.run_until(SimTime::milliseconds(10));
  EXPECT_EQ(fired, 0);
  engine.run_until(SimTime::milliseconds(100));
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace dvemig::sim
