// Load-balancing middleware tests: the four policies as pure functions, plus
// conductor integration on a small cluster (discovery, heartbeats, two-phase
// commit, calm-down, and an actual policy-driven migration).
#include <gtest/gtest.h>

#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/lb/conductor.hpp"
#include "src/lb/policies.hpp"

namespace dvemig::lb {
namespace {

// ------------------------------------------------------------- transfer policy

TEST(TransferPolicyTest, OverloadThresholdTriggers) {
  PolicyConfig cfg;
  EXPECT_TRUE(should_initiate(0.95, 0.93, cfg));   // over the critical threshold
  EXPECT_FALSE(should_initiate(0.85, 0.80, cfg));  // neither condition
}

TEST(TransferPolicyTest, ImbalanceTriggersEvenBelowThreshold) {
  PolicyConfig cfg;
  EXPECT_TRUE(should_initiate(0.70, 0.50, cfg));   // 0.20 above the average
  EXPECT_FALSE(should_initiate(0.70, 0.65, cfg));  // within the margin
}

// ------------------------------------------------------------- location policy

TEST(LocationPolicyTest, PicksOppositeSideOfAverage) {
  PolicyConfig cfg;
  // local 0.9, avg 0.6 -> target 0.3; the 0.32 peer is the mirror image.
  const std::vector<PeerView> peers{
      {net::Ipv4Addr::octets(1, 0, 0, 1), 0.55},
      {net::Ipv4Addr::octets(1, 0, 0, 2), 0.32},
      {net::Ipv4Addr::octets(1, 0, 0, 3), 0.10},
  };
  const auto dest = choose_destination(0.9, 0.6, peers, cfg);
  ASSERT_TRUE(dest.has_value());
  EXPECT_EQ(*dest, net::Ipv4Addr::octets(1, 0, 0, 2));
}

TEST(LocationPolicyTest, IgnoresPeersAboveAverage) {
  PolicyConfig cfg;
  const std::vector<PeerView> peers{
      {net::Ipv4Addr::octets(1, 0, 0, 1), 0.92},
      {net::Ipv4Addr::octets(1, 0, 0, 2), 0.91},
  };
  EXPECT_FALSE(choose_destination(0.95, 0.90, peers, cfg).has_value());
}

TEST(LocationPolicyTest, EmptyPeerSet) {
  PolicyConfig cfg;
  EXPECT_FALSE(choose_destination(0.9, 0.5, {}, cfg).has_value());
}

// ------------------------------------------------------------ selection policy

TEST(SelectionPolicyTest, PicksProcessMatchingExcess) {
  PolicyConfig cfg;
  // local 0.9, avg 0.6, 2 cores -> excess = 0.6 cores; pid 2 fits best.
  const std::vector<ProcessLoad> procs{
      {Pid{1}, 0.10}, {Pid{2}, 0.55}, {Pid{3}, 1.40}};
  const auto pid = choose_process(0.9, 0.6, 2.0, procs, cfg);
  ASSERT_TRUE(pid.has_value());
  EXPECT_EQ(*pid, Pid{2});
}

TEST(SelectionPolicyTest, SkipsNearIdleProcesses) {
  PolicyConfig cfg;
  const std::vector<ProcessLoad> procs{{Pid{1}, 0.005}, {Pid{2}, 0.001}};
  EXPECT_FALSE(choose_process(0.9, 0.6, 2.0, procs, cfg).has_value());
}

TEST(SelectionPolicyTest, NoProcesses) {
  PolicyConfig cfg;
  EXPECT_FALSE(choose_process(0.9, 0.6, 2.0, {}, cfg).has_value());
}

// --------------------------------------------------------- conductor integration

TEST(ConductorTest, DiscoveryViaHeartbeats) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 4;
  dve::Testbed bed(cfg);
  bed.run_for(SimTime::seconds(3));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(bed.node(i).conductor.known_peers(), 3u) << "node " << i;
  }
}

TEST(ConductorTest, ClusterAverageApproximation) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  // Synthetic load on node 0 only: ~1.0 core of 2 -> 50 %; node 1 idle.
  for (int i = 0; i < 100; ++i) {
    bed.engine().schedule_at(SimTime::milliseconds(50 * i), [&bed] {
      bed.node(0).node.cpu().account(Pid{500}, SimTime::milliseconds(50));
    });
  }
  bed.run_for(SimTime::seconds(4));
  EXPECT_NEAR(bed.node(0).conductor.cluster_average(), 0.25, 0.08);
  EXPECT_NEAR(bed.node(1).conductor.cluster_average(), 0.25, 0.08);
}

TEST(ConductorTest, PeerTimesOutAfterStop) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  dve::Testbed bed(cfg);
  bed.run_for(SimTime::seconds(3));
  EXPECT_EQ(bed.node(0).conductor.known_peers(), 2u);
  bed.node(2).conductor.stop();  // node leaves the cluster
  bed.run_for(SimTime::seconds(8));
  // Stale entries are filtered from the fresh-peer view used by the average;
  // with node2 silent, node0 sees only node1's contribution.
  const double avg = bed.node(0).conductor.cluster_average();
  EXPECT_GE(avg, 0.0);
  // Re-join works too.
  bed.node(2).conductor.start();
  bed.run_for(SimTime::seconds(3));
  EXPECT_EQ(bed.node(2).conductor.known_peers(), 2u);
}

struct LbFixture : ::testing::Test {
  // Two zone servers with very different loads on node 0; node 1 idle. The
  // conductor must move load until both sides approach the average.
  dve::TestbedConfig cfg;
  std::unique_ptr<dve::Testbed> bed;

  void SetUp() override {
    cfg.dve_nodes = 2;
    cfg.policy.calm_down = SimTime::seconds(3);
    bed = std::make_unique<dve::Testbed>(cfg);
  }

  std::shared_ptr<proc::Process> heavy_server(std::size_t node, dve::ZoneId zone,
                                              double cores) {
    dve::ZoneServerConfig zs;
    zs.zone = zone;
    zs.use_db = false;
    zs.base_cores = cores;
    zs.heap_bytes = 2ull << 20;  // keep precopy quick in tests
    return dve::ZoneServerApp::launch(bed->node(node).node, zs);
  }
};

TEST_F(LbFixture, SenderInitiatedMigrationEqualizesLoad) {
  // Node 0: 1.6 cores demand (80 %); node 1: idle. The conductor should ship a
  // process across so both end near 40 %.
  auto p1 = heavy_server(0, 1, 0.8);
  auto p2 = heavy_server(0, 2, 0.8);

  int migrations = 0;
  mig::MigrationStats last;
  for (std::size_t i = 0; i < 2; ++i) {
    bed->node(i).conductor.set_enabled(true);
    bed->node(i).conductor.set_on_migration([&](const mig::MigrationStats& s) {
      ++migrations;
      last = s;
    });
  }
  bed->run_for(SimTime::seconds(20));

  EXPECT_GE(migrations, 1);
  EXPECT_TRUE(last.success);
  // One process per node now.
  EXPECT_EQ(bed->node(0).node.processes().size(), 1u);
  EXPECT_EQ(bed->node(1).node.processes().size(), 1u);
  bed->run_for(SimTime::seconds(3));
  EXPECT_NEAR(bed->node(0).node.cpu().node_utilization(), 0.4, 0.1);
  EXPECT_NEAR(bed->node(1).node.cpu().node_utilization(), 0.4, 0.1);
}

TEST_F(LbFixture, DisabledConductorNeverMigrates) {
  heavy_server(0, 1, 0.8);
  heavy_server(0, 2, 0.8);
  int migrations = 0;
  bed->node(0).conductor.set_on_migration(
      [&](const mig::MigrationStats&) { ++migrations; });
  bed->run_for(SimTime::seconds(15));
  EXPECT_EQ(migrations, 0);
  EXPECT_EQ(bed->node(0).node.processes().size(), 2u);
}

TEST_F(LbFixture, BalancedClusterStaysPut) {
  heavy_server(0, 1, 0.7);
  heavy_server(1, 2, 0.7);
  int migrations = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    bed->node(i).conductor.set_enabled(true);
    bed->node(i).conductor.set_on_migration(
        [&](const mig::MigrationStats&) { ++migrations; });
  }
  bed->run_for(SimTime::seconds(15));
  EXPECT_EQ(migrations, 0);  // no imbalance, no churn
}

TEST_F(LbFixture, ReceiverRejectsWhenBusyOrLoaded) {
  // Both nodes loaded identically high: neither is "on the opposite side", so
  // offers never even fire; crank one node slightly to force an offer and let
  // the receiver-side policy reject it (receiver not below average).
  heavy_server(0, 1, 0.9);
  heavy_server(0, 2, 0.9);
  heavy_server(1, 3, 0.9);
  heavy_server(1, 4, 0.9);
  for (std::size_t i = 0; i < 2; ++i) bed->node(i).conductor.set_enabled(true);
  bed->run_for(SimTime::seconds(15));
  // Fully saturated on both sides: no destination below average exists.
  EXPECT_EQ(bed->node(0).node.processes().size(), 2u);
  EXPECT_EQ(bed->node(1).node.processes().size(), 2u);
}

TEST_F(LbFixture, CalmDownLimitsMigrationRate) {
  // Four equal processes all on node 0; equalisation needs 2 migrations, and
  // the 3 s calm-down forces them to be spaced apart.
  for (dve::ZoneId z = 1; z <= 4; ++z) heavy_server(0, z, 0.45);
  std::vector<double> times;
  for (std::size_t i = 0; i < 2; ++i) {
    bed->node(i).conductor.set_enabled(true);
    bed->node(i).conductor.set_on_migration([&](const mig::MigrationStats& s) {
      times.push_back(s.t_resume.to_sec());
    });
  }
  bed->run_for(SimTime::seconds(40));
  ASSERT_GE(times.size(), 2u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i] - times[i - 1], 3.0);  // calm-down respected
  }
  EXPECT_EQ(bed->node(0).node.processes().size(), 2u);
  EXPECT_EQ(bed->node(1).node.processes().size(), 2u);
}

}  // namespace
}  // namespace dvemig::lb
