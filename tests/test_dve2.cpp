// Second DVE batch: client metrics, fragmented DB protocol frames, handoff
// bookkeeping, and zone-server/population consistency under churn.
#include <gtest/gtest.h>

#include "src/dve/game_server.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig::dve {
namespace {

TEST(UdpGameClientMetrics, MaxGapReflectsServerStall) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  GameServerConfig gs;
  auto proc = GameServerApp::launch(bed.node(0).node, gs);
  UdpGameClient client(bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
  client.start();
  bed.run_for(SimTime::seconds(2));

  // Freeze the server for 180 ms: the client sees a gap of ~180+50 ms.
  bed.engine().schedule_after(SimTime::milliseconds(10), [&] { proc->freeze(); });
  bed.engine().schedule_after(SimTime::milliseconds(190), [&] { proc->resume(); });
  const SimTime from = bed.engine().now();
  bed.run_for(SimTime::seconds(2));

  const double gap_ms = client.max_gap(from, bed.engine().now()).to_ms();
  EXPECT_GT(gap_ms, 150.0);
  EXPECT_LT(gap_ms, 300.0);
}

TEST(UdpGameClientMetrics, MissingSnapshotsCountsSeqHoles) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  GameServerConfig gs;
  auto proc = GameServerApp::launch(bed.node(0).node, gs);
  UdpGameClient client(bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
  client.start();
  bed.run_for(SimTime::seconds(1));

  // Drop exactly three snapshots at the server's LOCAL_OUT hook.
  auto remaining = std::make_shared<int>(3);
  stack::HookHandle drop = bed.node(0).node.stack().netfilter().register_hook(
      stack::Hook::local_out, -10, [remaining](net::Packet& p) {
        if (p.proto == net::IpProto::udp && p.sport() == 27960 && *remaining > 0) {
          --*remaining;
          return stack::Verdict::drop;
        }
        return stack::Verdict::accept;
      });
  bed.run_for(SimTime::seconds(2));
  EXPECT_EQ(client.missing_snapshots(), 3u);
  drop.release();
  (void)proc;
}

TEST(DatabaseProtocol, QueryFragmentedAcrossSendsStillAnswered) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  auto client = bed.node(0).node.stack().make_tcp();
  client->bind(bed.node(0).node.local_addr(), 0);
  client->connect(net::Endpoint{bed.db_node()->local_addr(), kDbPort});
  bed.run_for(SimTime::milliseconds(50));

  // Length prefix in one send, body split across two more.
  BinaryWriter prefix;
  prefix.u32(100);
  client->send(prefix.take());
  bed.run_for(SimTime::milliseconds(20));
  client->send(Buffer(60, 0x51));
  bed.run_for(SimTime::milliseconds(20));
  EXPECT_EQ(bed.db()->queries_served(), 0u);  // still incomplete
  client->send(Buffer(40, 0x51));
  bed.run_for(SimTime::milliseconds(50));
  EXPECT_EQ(bed.db()->queries_served(), 1u);
  EXPECT_GE(client->read().size(), 4u);
}

TEST(DatabaseProtocol, PipelinedQueriesAllAnswered) {
  TestbedConfig cfg;
  cfg.dve_nodes = 1;
  Testbed bed(cfg);
  auto client = bed.node(0).node.stack().make_tcp();
  client->bind(bed.node(0).node.local_addr(), 0);
  client->connect(net::Endpoint{bed.db_node()->local_addr(), kDbPort});
  bed.run_for(SimTime::milliseconds(50));

  BinaryWriter w;
  for (int i = 0; i < 10; ++i) {
    w.u32(32);
    w.bytes(Buffer(32, 0x51));
  }
  client->send(w.take());  // 10 queries in one TCP burst
  bed.run_for(SimTime::milliseconds(100));
  EXPECT_EQ(bed.db()->queries_served(), 10u);
  // 10 responses of (4 + 64) bytes each.
  EXPECT_EQ(client->read().size(), 10u * 68u);
}

TEST(ZoneHandoff, ClientMovesBetweenZonesCleanly) {
  TestbedConfig cfg;
  cfg.dve_nodes = 2;
  Testbed bed(cfg);
  ZoneServerConfig zs;
  zs.use_db = false;
  zs.zone = 10;
  auto p1 = ZoneServerApp::launch(bed.node(0).node, zs);
  zs.zone = 20;
  auto p2 = ZoneServerApp::launch(bed.node(1).node, zs);

  TcpDveClient client(bed.make_client_host(), bed.public_ip());
  client.connect_to_zone(10);
  bed.run_for(SimTime::milliseconds(300));
  auto* a1 = static_cast<const ZoneServerApp*>(p1->app().get());
  auto* a2 = static_cast<const ZoneServerApp*>(p2->app().get());
  EXPECT_EQ(a1->client_count(), 1u);
  EXPECT_EQ(a2->client_count(), 0u);
  EXPECT_EQ(client.zone(), 10u);

  client.connect_to_zone(20);  // handoff: close + reconnect to the new port
  bed.run_for(SimTime::milliseconds(500));
  EXPECT_EQ(a1->client_count(), 0u);  // old server noticed the FIN
  EXPECT_EQ(a2->client_count(), 1u);
  EXPECT_EQ(client.zone(), 20u);
  EXPECT_EQ(client.resets_seen(), 0u);
}

TEST(ZoneConsistency, PopulationAndServersAgreeUnderChurn) {
  TestbedConfig cfg;
  cfg.dve_nodes = 5;
  cfg.with_db = false;
  Testbed bed(cfg);
  ZoneGrid grid;
  std::vector<std::shared_ptr<proc::Process>> procs;
  for (std::uint32_t n = 0; n < 5; ++n) {
    for (const ZoneId z : grid.zones_of_node(n, 5)) {
      ZoneServerConfig zs;
      zs.zone = z;
      zs.use_db = false;
      zs.heap_bytes = 1 << 20;
      procs.push_back(ZoneServerApp::launch(bed.node(n).node, zs));
    }
  }
  PopulationConfig pc;
  pc.client_count = 600;
  pc.move_start = SimTime::seconds(3);
  pc.move_step_prob = 0.4;
  Population pop(bed, grid, pc);
  pop.populate();
  pop.start_movement();
  bed.run_for(SimTime::seconds(30));
  // Let in-flight handoffs settle, then compare the two views of the world.
  bed.run_for(SimTime::seconds(2));

  const auto by_population = pop.clients_per_zone();
  std::size_t total_on_servers = 0;
  for (const auto& proc : procs) {
    const auto* app = static_cast<const ZoneServerApp*>(proc->app().get());
    EXPECT_EQ(app->client_count(), by_population[app->config().zone])
        << "zone " << app->config().zone;
    total_on_servers += app->client_count();
  }
  EXPECT_EQ(total_on_servers, 600u);
  EXPECT_EQ(pop.total_resets(), 0u);
}

}  // namespace
}  // namespace dvemig::dve
