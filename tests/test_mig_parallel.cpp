// Parallel pipelined data path (PMigrate-style striping) tests:
//  - shard helpers (static work split used by every sharded cost);
//  - StripeReassembler hardening (ordering, overlap, caps, poisoning);
//  - protocol-checker stripe rules;
//  - stripe frames on the wire only at parallelism > 1;
//  - the headline equivalence property: parallelism in {1, 2, 8} produces
//    byte-identical process and socket images on the destination and identical
//    MigrationStats byte counts, for both stop-and-copy and live precopy.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "src/check/protocol_checker.hpp"
#include "src/ckpt/dirty_tracker.hpp"
#include "src/ckpt/image.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/mig/delta_tracker.hpp"
#include "src/mig/migd.hpp"
#include "src/mig/protocol.hpp"
#include "src/mig/socket_image.hpp"

namespace dvemig {
namespace {

using check::ProtocolChecker;
using ckpt::DirtyTracker;
using mig::FrameChannel;
using mig::MsgType;
using mig::StripeReassembler;

// ================================================================ shard split

TEST(ShardSplit, RangesPartitionExactly) {
  const auto ranges = DirtyTracker::shard_ranges(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  // First count % workers shards get the extra item: 3, 3, 2, 2.
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
  std::size_t at = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, at);
    at = r.end;
  }
  EXPECT_EQ(at, 10u);
}

TEST(ShardSplit, FewerItemsThanWorkersYieldsOnlyNonEmptyShards) {
  const auto ranges = DirtyTracker::shard_ranges(3, 8);
  ASSERT_EQ(ranges.size(), 3u);
  for (const auto& r : ranges) EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(DirtyTracker::shard_ranges(0, 8).empty());
  EXPECT_TRUE(DirtyTracker::shard_ranges(5, 0).empty());
}

TEST(ShardSplit, MaxShardIsCeilDivision) {
  EXPECT_EQ(DirtyTracker::max_shard(10, 4), 3u);
  EXPECT_EQ(DirtyTracker::max_shard(8, 4), 2u);
  EXPECT_EQ(DirtyTracker::max_shard(3, 8), 1u);
  EXPECT_EQ(DirtyTracker::max_shard(0, 4), 0u);
  EXPECT_EQ(DirtyTracker::max_shard(7, 1), 7u);
}

// ============================================================ reassembler unit

Buffer make_seg(std::uint64_t seq, MsgType inner, std::uint32_t total,
                std::uint32_t off, const std::vector<std::uint8_t>& chunk) {
  BinaryWriter w;
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(inner));
  w.u32(total);
  w.u32(off);
  w.bytes(std::span<const std::uint8_t>(chunk.data(), chunk.size()));
  return w.take();
}

struct ReasmHarness {
  std::vector<std::pair<MsgType, Buffer>> delivered;
  std::string error;
  StripeReassembler reasm{
      [this](MsgType t, BinaryReader& r) {
        const auto body = r.span(r.remaining());
        delivered.emplace_back(t, Buffer(body.begin(), body.end()));
      },
      [this](const char* reason) { error = reason; }};

  void feed(const Buffer& seg) {
    BinaryReader r({seg.data(), seg.size()});
    reasm.on_segment(r);
  }
};

TEST(StripeReassembler, DeliversLogicalFramesInSeqOrder) {
  ReasmHarness h;
  // Frame 1 (one chunk) arrives before frame 0 (two chunks, second first).
  h.feed(make_seg(1, MsgType::socket_state, 2, 0, {9, 9}));
  EXPECT_TRUE(h.delivered.empty());
  h.feed(make_seg(0, MsgType::memory_delta, 4, 2, {3, 4}));
  EXPECT_TRUE(h.delivered.empty());
  h.feed(make_seg(0, MsgType::memory_delta, 4, 0, {1, 2}));
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].first, MsgType::memory_delta);
  EXPECT_EQ(h.delivered[0].second, (Buffer{1, 2, 3, 4}));
  EXPECT_EQ(h.delivered[1].first, MsgType::socket_state);
  EXPECT_EQ(h.delivered[1].second, (Buffer{9, 9}));
  EXPECT_TRUE(h.error.empty());
  EXPECT_EQ(h.reasm.frames_delivered(), 2u);
  EXPECT_EQ(h.reasm.segments_received(), 3u);
}

TEST(StripeReassembler, EmptyLogicalFrameCompletesImmediately) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::capture_request, 0, 0, {}));
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_TRUE(h.delivered[0].second.empty());
}

TEST(StripeReassembler, TruncatedHeaderPoisons) {
  ReasmHarness h;
  Buffer short_seg(10, 0);
  h.feed(short_seg);
  EXPECT_TRUE(h.reasm.errored());
  EXPECT_EQ(h.error, "truncated stripe segment header");
}

TEST(StripeReassembler, UnknownOrNestedInnerTypePoisons) {
  {
    ReasmHarness h;
    h.feed(make_seg(0, static_cast<MsgType>(99), 1, 0, {1}));
    EXPECT_EQ(h.error, "stripe segment carries unknown type");
  }
  {
    ReasmHarness h;
    h.feed(make_seg(0, MsgType::stripe_seg, 1, 0, {1}));
    EXPECT_EQ(h.error, "nested stripe framing");
  }
}

TEST(StripeReassembler, StaleSeqPoisons) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::memory_delta, 1, 0, {7}));
  ASSERT_EQ(h.delivered.size(), 1u);
  h.feed(make_seg(0, MsgType::memory_delta, 1, 0, {7}));
  EXPECT_EQ(h.error, "stripe segment revisits delivered frame");
}

TEST(StripeReassembler, OversizeTotalPoisons) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::memory_delta, mig::kMaxFrameLen + 1, 0, {1}));
  EXPECT_EQ(h.error, "stripe frame length exceeds cap");
}

TEST(StripeReassembler, ChunkBeyondTotalPoisons) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::memory_delta, 3, 2, {1, 2}));
  EXPECT_EQ(h.error, "stripe segment overflows frame");
  ReasmHarness h2;
  h2.feed(make_seg(0, MsgType::memory_delta, 3, 4, {}));
  EXPECT_EQ(h2.error, "stripe segment overflows frame");
}

TEST(StripeReassembler, DuplicateAndOverlappingChunksPoison) {
  {
    ReasmHarness h;
    h.feed(make_seg(0, MsgType::memory_delta, 4, 0, {1, 2}));
    h.feed(make_seg(0, MsgType::memory_delta, 4, 0, {1, 2}));
    EXPECT_EQ(h.error, "duplicate stripe segment");
  }
  {
    ReasmHarness h;  // new chunk overlaps the previous one's tail
    h.feed(make_seg(0, MsgType::memory_delta, 8, 0, {1, 2, 3, 4}));
    h.feed(make_seg(0, MsgType::memory_delta, 8, 2, {5, 6, 7, 8}));
    EXPECT_EQ(h.error, "overlapping stripe segments");
  }
  {
    ReasmHarness h;  // new chunk overlaps the next one's head
    h.feed(make_seg(0, MsgType::memory_delta, 8, 4, {5, 6, 7, 8}));
    h.feed(make_seg(0, MsgType::memory_delta, 8, 2, {3, 4, 5}));
    EXPECT_EQ(h.error, "overlapping stripe segments");
  }
}

TEST(StripeReassembler, MismatchedFrameHeaderPoisons) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::memory_delta, 4, 0, {1, 2}));
  h.feed(make_seg(0, MsgType::socket_state, 4, 2, {3, 4}));
  EXPECT_EQ(h.error, "stripe segments disagree on frame header");
}

TEST(StripeReassembler, PendingBacklogCapPoisons) {
  ReasmHarness h;
  // Frames 1..kMax stay incomplete (frame 0 never arrives, nothing delivers).
  for (std::uint64_t seq = 1; seq <= StripeReassembler::kMaxPendingStripeFrames;
       ++seq) {
    h.feed(make_seg(seq, MsgType::memory_delta, 2, 0, {1}));
    ASSERT_TRUE(h.error.empty()) << "at seq " << seq;
  }
  h.feed(make_seg(StripeReassembler::kMaxPendingStripeFrames + 1,
                  MsgType::memory_delta, 2, 0, {1}));
  EXPECT_EQ(h.error, "stripe reassembly backlog");
}

TEST(StripeReassembler, PoisonedStreamIgnoresLaterSegments) {
  ReasmHarness h;
  h.feed(make_seg(0, MsgType::stripe_seg, 1, 0, {1}));
  ASSERT_TRUE(h.reasm.errored());
  const auto segs = h.reasm.segments_received();
  h.feed(make_seg(1, MsgType::memory_delta, 1, 0, {1}));
  EXPECT_EQ(h.reasm.segments_received(), segs);  // dropped, not processed
  EXPECT_TRUE(h.delivered.empty());
}

// ======================================================= checker stripe rules

struct ProtocolTrace {
  std::vector<std::string> rules;
  ProtocolChecker checker{[this](const std::string& rule, const std::string&) {
    rules.push_back(rule);
  }};
  int src_chan{0};
  int dst_chan{0};

  void src_sends(MsgType t) {
    checker.on_frame(&src_chan, /*outbound=*/true, t);
    checker.on_frame(&dst_chan, /*outbound=*/false, t);
  }
  void dst_sends(MsgType t) {
    checker.on_frame(&dst_chan, /*outbound=*/true, t);
    checker.on_frame(&src_chan, /*outbound=*/false, t);
  }
  bool has(std::string_view rule) const {
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  }
};

TEST(ProtocolCheckerStripe, StripeChannelLifecycleIsClean) {
  ProtocolTrace t;
  t.src_sends(MsgType::stripe_hello);
  t.src_sends(MsgType::stripe_seg);
  t.src_sends(MsgType::stripe_seg);
  t.src_sends(MsgType::mig_abort);  // teardown is always legal
  EXPECT_TRUE(t.rules.empty()) << t.rules.front();
}

TEST(ProtocolCheckerStripe, SegsOnPrimaryAfterBeginAreClean) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::stripe_seg);  // primary doubles as stripe 0
  t.dst_sends(MsgType::resume_done);
  EXPECT_FALSE(t.has("protocol.stripe-seg-unexpected"));
}

TEST(ProtocolCheckerStripe, MisplacedHelloFires) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  t.src_sends(MsgType::stripe_hello);  // hello must open the channel
  EXPECT_TRUE(t.has("protocol.stripe-hello-misplaced"));
}

TEST(ProtocolCheckerStripe, SegWithoutHelloOrBeginFires) {
  ProtocolTrace t;
  t.src_sends(MsgType::stripe_seg);
  EXPECT_TRUE(t.has("protocol.first-frame"));
  EXPECT_TRUE(t.has("protocol.stripe-seg-unexpected"));
}

TEST(ProtocolCheckerStripe, ControlFrameOnStripeChannelFires) {
  ProtocolTrace t;
  t.src_sends(MsgType::stripe_hello);
  t.src_sends(MsgType::memory_delta);
  EXPECT_TRUE(t.has("protocol.frame-on-stripe-channel"));
}

TEST(ProtocolCheckerStripe, WrongDirectionStripeFramesFire) {
  ProtocolTrace t;
  t.src_sends(MsgType::mig_begin);
  // Open a second, dest-originated channel: hello from the dest is backwards.
  int rogue_src = 0, rogue_dst = 0;
  t.checker.on_frame(&rogue_dst, /*outbound=*/true, MsgType::stripe_hello);
  t.checker.on_frame(&rogue_src, /*outbound=*/false, MsgType::stripe_hello);
  // Role inference marks the sender as "source", so direction reads legal on
  // the rogue channel itself — but a dest-bound reply on it now misfires.
  t.checker.on_frame(&rogue_dst, /*outbound=*/true, MsgType::socket_ack);
  EXPECT_TRUE(t.has("protocol.frame-on-stripe-channel"));
}

// ===================================================== end-to-end equivalence

/// Serialized destination-side process image with run-varying identifiers
/// (global pid/tid counters) normalised away.
Buffer normalized_image(const proc::Process& p) {
  ckpt::ProcessImage img = ckpt::snapshot_process(p);
  img.pid = Pid{};
  std::uint32_t next_tid = 1;
  for (auto& th : img.threads) {
    th.tid = next_tid++;
    // The synthetic register file embeds the (globally allocated) pid in the
    // high half of every register; mask it, keep the thread-local low half.
    for (auto& reg : th.gp_regs) reg &= 0xFFFFFFFFull;
  }
  BinaryWriter w;
  img.serialize(w);
  return w.take();
}

/// Full socket image dump (every section, fresh tracker) in fd order. The
/// node-global sock id is a run-local artifact (the dest allocates P channel
/// sockets before the restore at degree P); replace it with the stable fd.
Buffer dump_sockets(const proc::Process& p) {
  mig::SocketDeltaTracker tracker;
  BinaryWriter w;
  for (const auto& [fd, file] : p.files().entries()) {
    if (file.kind != proc::FileKind::socket) continue;
    if (file.socket->type() == stack::SocketType::tcp) {
      const auto& tcp = static_cast<const stack::TcpSocket&>(*file.socket);
      mig::TcpImage img = mig::extract_tcp(tcp, fd);
      img.src_sock_key = static_cast<std::uint64_t>(fd);
      tracker.emit_tcp(img, w, /*force_all=*/true);
    } else {
      const auto& udp = static_cast<const stack::UdpSocket&>(*file.socket);
      mig::UdpImage img = mig::extract_udp(udp, fd);
      img.src_sock_key = static_cast<std::uint64_t>(fd);
      tracker.emit_udp(img, w, /*force_all=*/true);
    }
  }
  return w.take();
}

struct DegreeRun {
  mig::MigrationStats stats;
  Buffer image;
  Buffer sockets;
};

/// One migration at `degree`, sampled at the same absolute sim time for every
/// degree. The workload is deliberately static (a zone tick that never fires,
/// an idle client): every state difference at the fixed sample instant would
/// be caused by the data path itself, which must not leak into the image.
DegreeRun run_degree(int degree, bool live) {
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.with_db = false;
  cfg.start_conductors = false;
  cfg.cluster_link.rails = 4;
  dve::Testbed bed(cfg);
  // Restore-time jiffies adjustment depends on when the restore runs — which
  // is exactly what varies across degrees. Disable it so the images compare.
  bed.node(1).migd.set_adjust_timestamps(false);

  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.tick = SimTime::seconds(100);  // never fires within the run
  zs.use_db = false;
  zs.heap_bytes = 1ull << 20;
  zs.code_bytes = 128ull << 10;
  zs.libs_bytes = 128ull << 10;
  zs.stack_bytes = 32ull << 10;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  const Pid pid = proc->pid();

  dve::TcpDveClient client(bed.make_client_host(), bed.public_ip());
  client.connect_to_zone(1);
  bed.run_for(SimTime::milliseconds(200));

  mig::MigrateOptions opts;
  opts.strategy = mig::SocketMigStrategy::incremental_collective;
  opts.live = live;
  opts.config.parallelism = degree;

  DegreeRun out;
  bool done = false;
  EXPECT_TRUE(bed.node(0).migd.migrate(
      pid, bed.node(1).node.local_addr(), opts,
      [&](const mig::MigrationStats& s) {
        out.stats = s;
        done = true;
      }));
  bed.run_until(SimTime::seconds(2));
  EXPECT_TRUE(done) << "degree " << degree;
  EXPECT_TRUE(out.stats.success) << "degree " << degree;
  EXPECT_EQ(out.stats.parallelism, degree);

  auto moved = bed.node(1).node.find(pid);
  EXPECT_NE(moved, nullptr);
  if (moved != nullptr) {
    out.image = normalized_image(*moved);
    out.sockets = dump_sockets(*moved);
  }
  return out;
}

std::string first_diff(const Buffer& a, const Buffer& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return "first diff at offset " + std::to_string(i) + ": " +
             std::to_string(a[i]) + " vs " + std::to_string(b[i]) +
             " (sizes " + std::to_string(a.size()) + "/" +
             std::to_string(b.size()) + ")";
    }
  }
  return "sizes " + std::to_string(a.size()) + "/" + std::to_string(b.size());
}

void expect_equivalent(const DegreeRun& base, const DegreeRun& other,
                       int degree) {
  EXPECT_EQ(base.image, other.image)
      << "process image diverged at degree " << degree << ": "
      << first_diff(base.image, other.image);
  EXPECT_EQ(base.sockets, other.sockets)
      << "socket image diverged at degree " << degree;
  EXPECT_EQ(base.stats.precopy_rounds, other.stats.precopy_rounds);
  EXPECT_EQ(base.stats.precopy_channel_bytes, other.stats.precopy_channel_bytes);
  EXPECT_EQ(base.stats.precopy_socket_bytes, other.stats.precopy_socket_bytes);
  EXPECT_EQ(base.stats.freeze_channel_bytes, other.stats.freeze_channel_bytes);
  EXPECT_EQ(base.stats.freeze_socket_bytes, other.stats.freeze_socket_bytes);
  EXPECT_EQ(base.stats.socket_count, other.stats.socket_count);
}

TEST(ParallelEquivalence, StopAndCopyImagesAreDegreeInvariant) {
  const DegreeRun d1 = run_degree(1, /*live=*/false);
  ASSERT_FALSE(d1.image.empty());
  for (const int degree : {2, 8}) {
    const DegreeRun dn = run_degree(degree, /*live=*/false);
    expect_equivalent(d1, dn, degree);
  }
}

TEST(ParallelEquivalence, LivePrecopyImagesAreDegreeInvariant) {
  const DegreeRun d1 = run_degree(1, /*live=*/true);
  ASSERT_FALSE(d1.image.empty());
  EXPECT_GT(d1.stats.precopy_rounds, 1);
  for (const int degree : {2, 8}) {
    const DegreeRun dn = run_degree(degree, /*live=*/true);
    expect_equivalent(d1, dn, degree);
  }
}

// ============================================================ wire-level tap

struct StripeCounter : FrameChannel::Observer {
  int hellos_out{0};
  std::uint64_t segs_out{0};
  void on_channel_frame(const FrameChannel&, bool outbound, MsgType type,
                        std::size_t) override {
    if (!outbound) return;
    if (type == MsgType::stripe_hello) hellos_out += 1;
    if (type == MsgType::stripe_seg) segs_out += 1;
  }
};

TEST(ParallelWire, StripeFramesAppearOnlyAboveDegreeOne) {
  {
    StripeCounter tap;
    FrameChannel::set_observer(&tap);
    (void)run_degree(1, /*live=*/true);
    FrameChannel::set_observer(nullptr);
    EXPECT_EQ(tap.hellos_out, 0);
    EXPECT_EQ(tap.segs_out, 0u);
  }
  {
    StripeCounter tap;
    FrameChannel::set_observer(&tap);
    (void)run_degree(8, /*live=*/true);
    FrameChannel::set_observer(nullptr);
    EXPECT_EQ(tap.hellos_out, 7);  // one per secondary channel
    EXPECT_GT(tap.segs_out, 0u);
  }
}

}  // namespace
}  // namespace dvemig
