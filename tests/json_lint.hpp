// Minimal strict JSON validator for tests — no third-party dependency.
//
// Validates full JSON syntax (objects, arrays, strings with escapes, numbers,
// true/false/null) and rejects trailing garbage. Deliberately a validator, not
// a parser: tests assert validity of exported documents (metrics snapshots,
// Chrome trace_event files, bench reports), then grep for expected substrings.
#pragma once

#include <cctype>
#include <string>

namespace dvemig::testutil {

class JsonLint {
 public:
  /// True iff `text` is one complete, syntactically valid JSON value.
  static bool valid(const std::string& text, std::string* error = nullptr) {
    JsonLint lint(text);
    lint.skip_ws();
    const bool ok = lint.value() && (lint.skip_ws(), lint.pos_ == text.size());
    if (!ok && error != nullptr) {
      *error = "invalid JSON near offset " + std::to_string(lint.pos_);
    }
    return ok;
  }

 private:
  explicit JsonLint(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    pos_ += 1;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_ += 1;
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            pos_ += 1;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) pos_ += 1;
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // leading zeros are invalid JSON
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      pos_ += 1;
      if (peek() == '+' || peek() == '-') pos_ += 1;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_{0};
};

/// Validates a BenchReport JSON document: syntactically valid JSON that also
/// carries the mandatory provenance block ("schema_version", "git", "seed").
/// Substring matching is deliberate — the keys are emitted verbatim by
/// obs::BenchReport::json() and nothing else in a report nests a "provenance"
/// object.
inline bool bench_report_ok(const std::string& text, std::string* error = nullptr) {
  if (!JsonLint::valid(text, error)) return false;
  if (text.find("\"provenance\"") == std::string::npos) {
    if (error != nullptr) *error = "bench report has no provenance block";
    return false;
  }
  for (const char* key : {"\"schema_version\"", "\"git\"", "\"seed\""}) {
    if (text.find(key) == std::string::npos) {
      if (error != nullptr) {
        *error = std::string("bench report provenance lacks ") + key;
      }
      return false;
    }
  }
  return true;
}

}  // namespace dvemig::testutil
