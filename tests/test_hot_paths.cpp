// Connection-scale hot paths (DESIGN.md §12): the capture/translation filter
// indexes, the netfilter lazy prune, copy-on-write packet payloads, the
// in-place serialization writer primitives, and the registry-reset-safe
// metric handles. Each index change also carries an equivalence test against
// the pre-index reference implementation.
#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/mig/capture.hpp"
#include "src/mig/protocol.hpp"
#include "src/mig/socket_image.hpp"
#include "src/mig/translation.hpp"
#include "src/net/checksum.hpp"
#include "src/net/switch.hpp"
#include "src/obs/metrics.hpp"
#include "src/stack/net_stack.hpp"

namespace dvemig::mig {
namespace {

using stack::NetStack;

const net::Ipv4Addr kAddrA = net::Ipv4Addr::octets(10, 0, 0, 1);
const net::Ipv4Addr kAddrB = net::Ipv4Addr::octets(10, 0, 0, 2);
const net::Ipv4Addr kAddrC = net::Ipv4Addr::octets(10, 0, 0, 3);
const net::Ipv4Addr kAddrD = net::Ipv4Addr::octets(10, 0, 0, 4);

struct TwoHosts {
  sim::Engine engine;
  net::Switch sw{engine, net::LinkConfig{1e9, SimTime::microseconds(25)}};
  NetStack a{engine, "hostA", SimTime::seconds(100)};
  NetStack b{engine, "hostB", SimTime::seconds(350)};

  TwoHosts() {
    a.add_interface(kAddrA,
                    sw.attach(kAddrA, [this](net::Packet p) { a.rx(std::move(p)); }));
    b.add_interface(kAddrB,
                    sw.attach(kAddrB, [this](net::Packet p) { b.rx(std::move(p)); }));
  }
};

// ------------------------------------------------------- netfilter lazy prune

TEST(NetfilterPruneTest, SelfReleaseDuringRunIsSafeAndSweptLater) {
  stack::NetfilterChain nf;
  int first_runs = 0, second_runs = 0;
  stack::HookHandle h1, h2;
  h1 = nf.register_hook(stack::Hook::local_in, 0, [&](net::Packet&) {
    first_runs += 1;
    h1.release();  // a hook tearing itself down mid-run
    return stack::Verdict::accept;
  });
  h2 = nf.register_hook(stack::Hook::local_in, 10, [&](net::Packet&) {
    second_runs += 1;
    return stack::Verdict::accept;
  });

  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1});
  EXPECT_EQ(nf.run(stack::Hook::local_in, p), stack::Verdict::accept);
  EXPECT_EQ(first_runs, 1);
  EXPECT_EQ(second_runs, 1);  // the chain kept running past the self-release
  EXPECT_FALSE(h1.registered());
  EXPECT_EQ(nf.hook_count(stack::Hook::local_in), 1u);

  // Next run compacts the dead entry and never calls it again.
  EXPECT_EQ(nf.run(stack::Hook::local_in, p), stack::Verdict::accept);
  EXPECT_EQ(first_runs, 1);
  EXPECT_EQ(second_runs, 2);
  h2.release();
}

TEST(NetfilterPruneTest, ReleaseOfLaterHookDuringRunSkipsItSamePass) {
  stack::NetfilterChain nf;
  int later_runs = 0;
  stack::HookHandle killer, victim;
  killer = nf.register_hook(stack::Hook::local_out, 0, [&](net::Packet&) {
    victim.release();  // releases a hook *behind* it in the same pass
    return stack::Verdict::accept;
  });
  victim = nf.register_hook(stack::Hook::local_out, 10, [&](net::Packet&) {
    later_runs += 1;
    return stack::Verdict::accept;
  });
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1});
  nf.run(stack::Hook::local_out, p);
  EXPECT_EQ(later_runs, 0);  // the alive flag stops it within the same pass
  nf.run(stack::Hook::local_out, p);
  EXPECT_EQ(later_runs, 0);
  killer.release();
}

TEST(NetfilterPruneTest, RegistrationAfterReleasesKeepsOrderAndCount) {
  stack::NetfilterChain nf;
  std::vector<int> order;
  auto mk = [&](int tag, int prio) {
    return nf.register_hook(stack::Hook::local_in, prio, [&order, tag](net::Packet&) {
      order.push_back(tag);
      return stack::Verdict::accept;
    });
  };
  stack::HookHandle h1 = mk(1, 0), h2 = mk(2, 5), h3 = mk(3, 10);
  h2.release();
  // Registration compacts the pending release, then inserts in priority order.
  stack::HookHandle h4 = mk(4, 7);
  EXPECT_EQ(nf.hook_count(stack::Hook::local_in), 3u);
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1});
  nf.run(stack::Hook::local_in, p);
  EXPECT_EQ(order, (std::vector<int>{1, 4, 3}));
  h1.release();
  h3.release();
  h4.release();
}

// --------------------------------------------------------- checksum equivalence

// The historical checksum implementation serialized pseudo-header + transport
// header + payload into a scratch buffer and folded that. Rebuild that exact
// byte stream here and check the allocation-free accumulator agrees on it.
Buffer reference_checksum_input(const net::Packet& p) {
  Buffer b;
  auto be32 = [&](std::uint32_t v) {
    b.push_back(static_cast<std::uint8_t>(v >> 24));
    b.push_back(static_cast<std::uint8_t>(v >> 16));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v));
  };
  auto le16 = [&](std::uint16_t v) {
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  auto le32 = [&](std::uint32_t v) {
    b.push_back(static_cast<std::uint8_t>(v));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
    b.push_back(static_cast<std::uint8_t>(v >> 16));
    b.push_back(static_cast<std::uint8_t>(v >> 24));
  };
  be32(p.src.value);
  be32(p.dst.value);
  b.push_back(0);
  b.push_back(static_cast<std::uint8_t>(p.proto));
  le16(static_cast<std::uint16_t>(p.transport_size()));
  if (p.proto == net::IpProto::tcp) {
    le16(p.tcp.sport);
    le16(p.tcp.dport);
    le32(p.tcp.seq);
    le32(p.tcp.ack);
    b.push_back(p.tcp.flags);
    le32(p.tcp.window);
    le32(p.tcp.tsval);
    le32(p.tcp.tsecr);
  } else {
    le16(p.udp.sport);
    le16(p.udp.dport);
    le16(static_cast<std::uint16_t>(p.payload.size()));
  }
  const auto payload = p.payload.view();
  b.insert(b.end(), payload.begin(), payload.end());
  return b;
}

TEST(ChecksumTest, InPlaceAccumulatorMatchesBufferedReference) {
  // Odd/even payload lengths exercise the odd-tail and realignment paths (the
  // TCP payload starts at odd offset 37 in the historical stream).
  for (const std::size_t len : {0u, 1u, 2u, 3u, 32u, 33u, 255u}) {
    Buffer payload(len);
    for (std::size_t i = 0; i < len; ++i) payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
    net::TcpHeader hdr;
    hdr.seq = 0xDEADBEEF;
    hdr.ack = 0x12345678;
    hdr.flags = net::tcp_flags::ack | net::tcp_flags::psh;
    hdr.tsval = 111;
    hdr.tsecr = 222;
    net::Packet t = net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, payload);
    EXPECT_EQ(net::compute_checksum(t),
              net::internet_checksum(reference_checksum_input(t)))
        << "tcp payload len " << len;
    net::Packet u = net::make_udp({kAddrA, 1111}, {kAddrB, 9000}, payload);
    EXPECT_EQ(net::compute_checksum(u),
              net::internet_checksum(reference_checksum_input(u)))
        << "udp payload len " << len;
  }
}

TEST(ChecksumTest, IncrementalAdjustEqualsFullRecompute) {
  // RFC 1624 update after an address rewrite (exactly what the translation
  // filter does) must land on the same checksum as re-summing the packet.
  for (const std::size_t len : {0u, 15u, 64u}) {
    net::TcpHeader hdr;
    hdr.flags = net::tcp_flags::ack;
    hdr.seq = 42;
    net::Packet p = net::make_tcp({kAddrC, 3306}, {kAddrA, 45000}, hdr, Buffer(len, 9));
    ASSERT_TRUE(net::checksum_ok(p));

    net::Packet out = p;  // LOCAL_OUT rewrite: dst A -> B
    const std::uint32_t old_dst = out.dst.value;
    out.dst = kAddrB;
    out.checksum = net::checksum_adjust32(out.checksum, old_dst, out.dst.value);
    EXPECT_EQ(out.checksum, net::compute_checksum(out)) << "len " << len;

    net::Packet in = p;  // LOCAL_IN rewrite: src C -> D
    const std::uint32_t old_src = in.src.value;
    in.src = kAddrD;
    in.checksum = net::checksum_adjust32(in.checksum, old_src, in.src.value);
    EXPECT_EQ(in.checksum, net::compute_checksum(in)) << "len " << len;
  }
}

// ------------------------------------------------- registry-reset-safe handles

TEST(MetricHandleTest, CounterRefSurvivesRegistryReset) {
  obs::CounterRef ref("test.hot_paths.counter");
  ref.get().add(3);
  EXPECT_EQ(ref.get().value(), 3u);

  obs::Registry::instance().reset();
  // reset() zeroes values but keeps registrations: the cached handle stays
  // valid and usable without rebinding.
  EXPECT_EQ(ref.get().value(), 0u);
  ref.get().add(1);
  EXPECT_EQ(ref.get().value(), 1u);

  obs::Counter* before = &ref.get();
  ref.rebind();
  EXPECT_EQ(&ref.get(), before);  // re-resolves to the very same object
}

TEST(MetricHandleTest, HistogramRefSurvivesRegistryReset) {
  obs::HistogramRef ref("test.hot_paths.hist", {1.0, 10.0});
  ref.get().record(5.0);
  EXPECT_EQ(ref.get().count(), 1u);
  obs::Registry::instance().reset();
  EXPECT_EQ(ref.get().count(), 0u);
  ref.get().record(0.5);
  EXPECT_EQ(ref.get().count(), 1u);
  obs::Histogram* before = &ref.get();
  ref.rebind();
  EXPECT_EQ(&ref.get(), before);
}

// ---------------------------------------------------------- COW packet payload

TEST(SharedPayloadTest, PacketCopiesShareUntilMutation) {
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{1, 2, 3});
  net::Packet q = p;  // the broadcast router's per-node copy
  EXPECT_TRUE(p.payload.shares_storage_with(q.payload));

  q.payload[0] = 99;  // mutation detaches the mutating copy only
  EXPECT_FALSE(p.payload.shares_storage_with(q.payload));
  EXPECT_EQ(p.payload[0], 1);
  EXPECT_EQ(q.payload[0], 99);
}

TEST(SharedPayloadTest, TakeMovesWhenSoleOwnerCopiesWhenShared) {
  net::Packet p = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{4, 5});
  net::Packet q = p;
  const Buffer from_shared = q.payload.take();  // copies: p still holds bytes
  EXPECT_EQ(from_shared, (Buffer{4, 5}));
  EXPECT_TRUE(q.payload.empty());
  EXPECT_EQ(p.payload.size(), 2u);

  const Buffer from_sole = p.payload.take();  // sole owner: moves out
  EXPECT_EQ(from_sole, (Buffer{4, 5}));
  EXPECT_TRUE(p.payload.empty());

  net::Packet r = net::make_udp({kAddrA, 1}, {kAddrB, 2}, Buffer{7});
  EXPECT_EQ(r.payload.copy(), Buffer{7});  // deep copy leaves payload intact
  EXPECT_EQ(r.payload.size(), 1u);
}

// ------------------------------------------------- BinaryWriter patch/rollback

TEST(BinaryWriterTest, MarkPatchTruncateSpanFrom) {
  BinaryWriter w;
  w.reserve(64);
  const std::size_t count_at = w.mark();
  w.u32(0);  // placeholder, back-patched below
  w.u8(0xAA);
  const std::size_t section_at = w.mark();
  w.u32(0x11223344);
  EXPECT_EQ(w.span_from(section_at).size(), 4u);
  EXPECT_EQ(w.span_from(section_at)[0], 0x44);  // little-endian

  w.truncate_to(section_at);  // roll the section back
  EXPECT_EQ(w.size(), 5u);
  w.patch_u32(7, count_at);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u8(), 0xAA);
  EXPECT_EQ(r.remaining(), 0u);

  w.clear();
  EXPECT_EQ(w.size(), 0u);
}

// ------------------------------------------------------------- capture index

TEST(CaptureIndexTest, ExactAndWildcardTiersBothCapture) {
  TwoHosts h;
  CaptureManager cap(h.b);
  const std::uint64_t s = cap.begin_session();
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000});
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, false, {}, 9000});

  net::TcpHeader hdr;
  hdr.seq = 100;
  hdr.flags = net::tcp_flags::ack;
  // Exact-tier hit and wildcard-tier hit (unknown remote) both steal.
  h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer{1}));
  h.b.rx(net::make_tcp({kAddrC, 2222}, {kAddrB, 9000}, hdr, Buffer{2}));
  EXPECT_EQ(cap.queued(s), 2u);

  // A retransmit through either tier dedups: the session is one dedup domain.
  h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer{1}));
  h.b.rx(net::make_tcp({kAddrC, 2222}, {kAddrB, 9000}, hdr, Buffer{2}));
  EXPECT_EQ(cap.queued(s), 2u);
  EXPECT_EQ(cap.total_deduplicated(), 2u);
  cap.abort_session(s);
}

TEST(CaptureIndexTest, WildcardSeedsDedupOfLaterExactSpec) {
  // The iterative strategy adds specs one socket at a time: a listener's
  // wildcard spec may capture a peer's segment before the accepted child's
  // exact spec is installed. The exact spec must inherit those seen seqs, or
  // the retransmit would be queued twice.
  TwoHosts h;
  CaptureManager cap(h.b);
  const std::uint64_t s = cap.begin_session();
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, false, {}, 9000});

  net::TcpHeader hdr;
  hdr.seq = 500;
  hdr.flags = net::tcp_flags::ack;
  h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer{1}));
  EXPECT_EQ(cap.queued(s), 1u);

  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000});
  h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer{1}));  // retransmit
  EXPECT_EQ(cap.queued(s), 1u);  // deduped across the tier boundary
  EXPECT_EQ(cap.total_deduplicated(), 1u);
  cap.abort_session(s);
}

TEST(CaptureIndexTest, AbortRemovesSpecsFromIndex) {
  TwoHosts h;
  CaptureManager cap(h.b);
  const std::uint64_t s1 = cap.begin_session();
  const std::uint64_t s2 = cap.begin_session();
  cap.add_spec(s1, CaptureSpec{net::IpProto::udp, false, {}, 5000});
  cap.add_spec(s2, CaptureSpec{net::IpProto::udp, false, {}, 6000});

  cap.abort_session(s1);
  const std::uint64_t before = cap.total_captured();
  h.b.rx(net::make_udp({kAddrA, 1}, {kAddrB, 5000}, Buffer{1}));  // aborted port
  EXPECT_EQ(cap.total_captured(), before);  // no stale index entry fired
  h.b.rx(net::make_udp({kAddrA, 1}, {kAddrB, 6000}, Buffer{2}));
  EXPECT_EQ(cap.queued(s2), 1u);  // the surviving session still captures
  cap.abort_session(s2);
}

TEST(CaptureIndexTest, DedupMetricsCountersPinned) {
  // The obs counters the capture path feeds must count exactly as before the
  // index: one `captured` per queued packet, one `dedup_hits` per suppressed
  // retransmit.
  obs::Registry::instance().reset();
  TwoHosts h;
  CaptureManager cap(h.b);
  const std::uint64_t s = cap.begin_session();
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000});
  net::TcpHeader hdr;
  hdr.flags = net::tcp_flags::ack;
  for (const std::uint32_t seq : {10u, 10u, 10u, 20u}) {
    hdr.seq = seq;
    h.b.rx(net::make_tcp({kAddrA, 1111}, {kAddrB, 9000}, hdr, Buffer{1}));
  }
  const obs::Counter* captured =
      obs::Registry::instance().find_counter("capture.captured");
  const obs::Counter* dedup =
      obs::Registry::instance().find_counter("capture.dedup_hits");
  ASSERT_NE(captured, nullptr);
  ASSERT_NE(dedup, nullptr);
  EXPECT_EQ(captured->value(), 2u);
  EXPECT_EQ(dedup->value(), 2u);
  cap.abort_session(s);
}

// Property test: on a random packet stream, the indexed matcher makes exactly
// the decisions the pre-index linear scan made — same stolen set, same queue
// order, same dedup count.
struct StreamResult {
  std::vector<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t, std::uint8_t,
                         std::uint32_t>>
      queued;
  std::uint64_t captured{0};
  std::uint64_t deduplicated{0};
};

StreamResult run_capture_stream(bool reference, std::uint32_t seed) {
  CaptureManager::set_reference_mode(reference);
  TwoHosts h;
  CaptureManager cap(h.b);
  const std::uint64_t s = cap.begin_session();
  // Overlapping specs: exact + wildcard on one port, wildcard-only on another,
  // exact-only on a third, plus UDP.
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrA, 1111}, 9000});
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, false, {}, 9000});
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, false, {}, 9001});
  cap.add_spec(s, CaptureSpec{net::IpProto::tcp, true, net::Endpoint{kAddrC, 3333}, 9002});
  cap.add_spec(s, CaptureSpec{net::IpProto::udp, false, {}, 5000});

  std::mt19937 rng(seed);
  const net::Ipv4Addr srcs[] = {kAddrA, kAddrC, kAddrD};
  const std::uint16_t sports[] = {1111, 2222, 3333};
  const std::uint16_t dports[] = {9000, 9001, 9002, 9003, 5000};
  for (int i = 0; i < 400; ++i) {
    const net::Ipv4Addr src = srcs[rng() % 3];
    const std::uint16_t sport = sports[rng() % 3];
    const std::uint16_t dport = dports[rng() % 5];
    if (rng() % 4 == 0) {
      h.b.rx(net::make_udp({src, sport}, {kAddrB, dport}, Buffer{1}));
    } else {
      net::TcpHeader hdr;
      hdr.flags = net::tcp_flags::ack;
      hdr.seq = rng() % 8;  // small seq space: plenty of dedup hits
      h.b.rx(net::make_tcp({src, sport}, {kAddrB, dport}, hdr, Buffer{2}));
    }
  }

  StreamResult out;
  cap.for_each_queued([&](std::uint64_t, const net::Packet& p) {
    out.queued.emplace_back(p.src.value, p.sport(), p.dport(),
                            static_cast<std::uint8_t>(p.proto),
                            p.proto == net::IpProto::tcp ? p.tcp.seq : 0);
  });
  out.captured = cap.total_captured();
  out.deduplicated = cap.total_deduplicated();
  cap.abort_session(s);
  CaptureManager::set_reference_mode(false);
  return out;
}

TEST(CaptureIndexTest, PropertyIndexedEqualsLinearScan) {
  for (const std::uint32_t seed : {1u, 7u, 42u}) {
    const StreamResult ref = run_capture_stream(/*reference=*/true, seed);
    const StreamResult idx = run_capture_stream(/*reference=*/false, seed);
    EXPECT_GT(ref.captured, 0u);
    EXPECT_GT(ref.deduplicated, 0u);  // the stream must exercise dedup
    EXPECT_EQ(idx.queued, ref.queued) << "seed " << seed;
    EXPECT_EQ(idx.captured, ref.captured) << "seed " << seed;
    EXPECT_EQ(idx.deduplicated, ref.deduplicated) << "seed " << seed;
  }
}

// ---------------------------------------------------------- translation index

TEST(TranslationIndexTest, ChainedInstallComposesInPlace) {
  TwoHosts h;
  TranslationManager trans(h.b);
  const std::uint64_t id1 = trans.install(
      TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                      net::Endpoint{kAddrA, 45000}, kAddrC});
  // The process moves again C -> D: the new rule's origin is the old rule's
  // output, so it must compose into ORIG -> D, not stack a second rule.
  const std::uint64_t id2 = trans.install(
      TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                      net::Endpoint{kAddrC, 45000}, kAddrD});
  EXPECT_EQ(id2, id1);
  EXPECT_EQ(trans.active_rules(), 1u);
  const auto rule = trans.find_rule(net::Endpoint{kAddrB, 3306},
                                    net::Endpoint{kAddrA, 45000});
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->mig_new_addr, kAddrD);

  // And home again D -> A: the composed rule becomes identity and dissolves.
  trans.install(TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                                net::Endpoint{kAddrD, 45000}, kAddrA});
  EXPECT_EQ(trans.active_rules(), 0u);
}

TEST(TranslationIndexTest, OldestRuleWinsOnDuplicateTuple) {
  TwoHosts h;
  TranslationManager trans(h.b);
  const std::uint64_t id1 = trans.install(
      TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                      net::Endpoint{kAddrA, 45000}, kAddrC});
  trans.install(TranslationRule{net::IpProto::udp, net::Endpoint{kAddrB, 3306},
                                net::Endpoint{kAddrA, 45000}, kAddrD});
  EXPECT_EQ(trans.active_rules(), 2u);

  // Protoless lookup: the oldest matching rule is the deterministic winner.
  const auto rule = trans.find_rule(net::Endpoint{kAddrB, 3306},
                                    net::Endpoint{kAddrA, 45000});
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->mig_new_addr, kAddrC);
  (void)id1;

  trans.remove_matching(net::Endpoint{kAddrB, 3306}, net::Endpoint{kAddrA, 45000});
  EXPECT_EQ(trans.active_rules(), 0u);  // removes every rule of the pair
  EXPECT_FALSE(trans.find_rule(net::Endpoint{kAddrB, 3306},
                               net::Endpoint{kAddrA, 45000})
                   .has_value());
}

TEST(TranslationIndexTest, IndexedRewriteEqualsReferenceWalk) {
  for (const bool reference : {true, false}) {
    TranslationManager::set_reference_mode(reference);
    TwoHosts h;
    TranslationManager trans(h.b);
    trans.install(TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                                  net::Endpoint{kAddrA, 45000}, kAddrC});
    net::Packet seen{};
    bool got = false;
    stack::HookHandle probe = h.b.netfilter().register_hook(
        stack::Hook::local_in, 50, [&](net::Packet& p) {
          seen = p;
          got = true;
          return stack::Verdict::stolen;
        });
    net::TcpHeader hdr;
    hdr.flags = net::tcp_flags::ack;
    h.b.rx(net::make_tcp({kAddrC, 45000}, {kAddrB, 3306}, hdr, Buffer(16, 3)));
    ASSERT_TRUE(got) << "reference=" << reference;
    EXPECT_EQ(seen.src, kAddrA) << "reference=" << reference;
    EXPECT_TRUE(net::checksum_ok(seen)) << "reference=" << reference;
    EXPECT_EQ(trans.in_rewritten(), 1u);
    probe.release();
    TranslationManager::set_reference_mode(false);
  }
}

TEST(TranslationIndexTest, NonMatchingPacketUntouchedByIndex) {
  TwoHosts h;
  TranslationManager trans(h.b);
  trans.install(TranslationRule{net::IpProto::tcp, net::Endpoint{kAddrB, 3306},
                                net::Endpoint{kAddrA, 45000}, kAddrC});
  net::Packet seen{};
  stack::HookHandle probe = h.b.netfilter().register_hook(
      stack::Hook::local_in, 50, [&](net::Packet& p) {
        seen = p;
        return stack::Verdict::stolen;
      });
  net::TcpHeader hdr;
  hdr.flags = net::tcp_flags::ack;
  // Same port pair, different remote address: must not match the rule.
  h.b.rx(net::make_tcp({kAddrD, 45000}, {kAddrB, 3306}, hdr, Buffer{1}));
  EXPECT_EQ(seen.src, kAddrD);
  EXPECT_EQ(trans.in_rewritten(), 0u);
  probe.release();
}

// ------------------------------------------------- chunked socket_state dumps

// Counts outbound socket_state frames across every channel. Registered only
// while no dvemig-verify instance is alive (one observer at most).
struct FrameCounter : FrameChannel::Observer {
  int socket_state_frames = 0;
  void on_channel_frame(const FrameChannel&, bool outbound, MsgType type,
                        std::size_t) override {
    if (outbound && type == MsgType::socket_state) socket_state_frames += 1;
  }
};

MigrationStats run_collective_with_chunk_limit(std::int64_t chunk_bytes,
                                               int* socket_state_frames) {
  // Pids seed each process's workload RNG; resetting makes the two runs of
  // this test identical up to the freeze-phase send being compared.
  proc::Node::reset_pid_counter();
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.cost_model.socket_chunk_bytes = chunk_bytes;
  dve::Testbed bed(cfg);
  dve::ZoneServerConfig zs;
  zs.zone = 4;
  zs.use_db = false;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < 8; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(1));

  FrameCounter counter;
  FrameChannel::set_observer(&counter);
  MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(
      proc->pid(), bed.node(1).node.local_addr(), SocketMigStrategy::collective,
      [&](const MigrationStats& s) {
        stats = s;
        done = true;
      });
  bed.run_for(SimTime::seconds(5));
  FrameChannel::set_observer(nullptr);
  EXPECT_TRUE(done);
  for (const auto& c : clients) {
    EXPECT_TRUE(c->connected());
    EXPECT_EQ(c->resets_seen(), 0u);
  }
  *socket_state_frames = counter.socket_state_frames;
  return stats;
}

TEST(SocketChunkTest, TinyChunkLimitSplitsDumpWithoutChangingOutcome) {
  int chunked_frames = 0;
  int whole_frames = 0;
  const MigrationStats chunked =
      run_collective_with_chunk_limit(2048, &chunked_frames);
  const MigrationStats whole =
      run_collective_with_chunk_limit(64LL * 1024 * 1024, &whole_frames);

  ASSERT_TRUE(chunked.success);
  ASSERT_TRUE(whole.success);
  // A full TCP record (~2.9 KiB of struct pad alone) overshoots the 2 KiB
  // limit by itself, so the unified dump splits into many frames; the default
  // limit ships the pre-chunking single frame.
  EXPECT_GT(chunked_frames, 1);
  EXPECT_EQ(whole_frames, 1);
  EXPECT_EQ(chunked.socket_count, whole.socket_count);
  EXPECT_EQ(chunked.captured, chunked.reinjected);
  EXPECT_EQ(whole.captured, whole.reinjected);
  // Chunking changes framing, not payload: the dumps differ by exactly one
  // u32 record-count prefix per extra frame.
  EXPECT_EQ(chunked.freeze_socket_bytes,
            whole.freeze_socket_bytes +
                sizeof(std::uint32_t) *
                    static_cast<std::uint64_t>(chunked_frames - whole_frames));
}

}  // namespace
}  // namespace dvemig::mig
