// Unit tests for src/common: binary serialization, hashing, RNG, time types.
#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/serial.hpp"
#include "src/common/types.hpp"

namespace dvemig {
namespace {

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(SimTime::microseconds(3).ns, 3'000);
  EXPECT_EQ(SimTime::milliseconds(3).ns, 3'000'000);
  EXPECT_EQ(SimTime::seconds(3).ns, 3'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(1500).to_sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(1500).to_ms(), 1.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::milliseconds(10);
  const SimTime b = SimTime::milliseconds(4);
  EXPECT_EQ((a + b).ns, SimTime::milliseconds(14).ns);
  EXPECT_EQ((a - b).ns, SimTime::milliseconds(6).ns);
  EXPECT_EQ((b * 3).ns, SimTime::milliseconds(12).ns);
  EXPECT_EQ((a / 2).ns, SimTime::milliseconds(5).ns);
  EXPECT_LT(b, a);
}

TEST(BinaryRoundTrip, Scalars) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, BlobsAndStrings) {
  BinaryWriter w;
  w.blob(Buffer{1, 2, 3, 4, 5});
  w.str("hello dvemig");
  w.blob({});
  w.str("");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.blob(), (Buffer{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.str(), "hello dvemig");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.str().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, SkipAndRemaining) {
  BinaryWriter w;
  w.u32(7);
  w.bytes(Buffer(100, 0xEE));
  w.u32(9);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.remaining(), 104u);
  r.skip(100);
  EXPECT_EQ(r.u32(), 9u);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, LittleEndianLayout) {
  BinaryWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);  // LSB first
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(Fnv1aTest, KnownValuesAndSensitivity) {
  const Buffer empty;
  EXPECT_EQ(fnv1a(empty), 0xCBF29CE484222325ULL);  // FNV offset basis
  const Buffer a{'a'};
  const Buffer b{'b'};
  EXPECT_NE(fnv1a(a), fnv1a(b));
  Buffer long1(1000, 0x11);
  Buffer long2 = long1;
  long2[999] = 0x12;
  EXPECT_NE(fnv1a(long1), fnv1a(long2));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(99);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace dvemig
