// Tests for the process/OS substrate: address spaces and dirty tracking, fd
// tables, CPU metering, processes and nodes.
#include <gtest/gtest.h>

#include "src/proc/node.hpp"

namespace dvemig::proc {
namespace {

TEST(AddressSpaceTest, MmapAlignsAndMarksDirty) {
  AddressSpace mem;
  const std::uint64_t start = mem.mmap(10'000, prot_read | prot_write, "[heap]");
  EXPECT_EQ(start % kPageSize, 0u);
  const VmArea* area = mem.find_area(start);
  ASSERT_NE(area, nullptr);
  EXPECT_EQ(area->length, 12'288u);  // rounded to 3 pages
  EXPECT_EQ(mem.dirty_pages(), 3u);  // fresh anonymous memory is all dirty
}

TEST(AddressSpaceTest, FileBackedPagesStartClean) {
  AddressSpace mem;
  mem.mmap(8 * kPageSize, prot_read | prot_exec, "libfoo.so", /*file_backed=*/true);
  EXPECT_EQ(mem.dirty_pages(), 0u);  // nothing to checkpoint: contents on disk
  mem.mmap(2 * kPageSize, prot_read | prot_write, "[heap]");
  EXPECT_EQ(mem.dirty_pages(), 2u);
}

TEST(AddressSpaceTest, CollectAndClearResetsDirtyBits) {
  AddressSpace mem;
  const std::uint64_t start = mem.mmap(4 * kPageSize, prot_read | prot_write, "x");
  auto pages = mem.collect_and_clear_dirty();
  EXPECT_EQ(pages.size(), 4u);
  EXPECT_EQ(mem.dirty_pages(), 0u);
  mem.touch(start + kPageSize + 5, 1);
  pages = mem.collect_and_clear_dirty();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], start / kPageSize + 1);
}

TEST(AddressSpaceTest, TouchSpanningPages) {
  AddressSpace mem;
  const std::uint64_t start = mem.mmap(4 * kPageSize, prot_read | prot_write, "x");
  (void)mem.collect_and_clear_dirty();
  mem.touch(start + kPageSize - 1, 2);  // straddles pages 0 and 1
  EXPECT_EQ(mem.dirty_pages(), 2u);
}

TEST(AddressSpaceTest, TouchRandomDirtiesWritablePagesOnly) {
  AddressSpace mem;
  mem.mmap(16 * kPageSize, prot_read | prot_exec, "code", true);
  const std::uint64_t heap = mem.mmap(16 * kPageSize, prot_read | prot_write, "h");
  (void)mem.collect_and_clear_dirty();
  Rng rng(1);
  mem.touch_random(rng, 64);
  for (const std::uint64_t p : mem.collect_and_clear_dirty()) {
    EXPECT_GE(p, heap / kPageSize);
  }
}

TEST(AddressSpaceTest, MunmapRemovesAreaAndDirtyBits) {
  AddressSpace mem;
  const std::uint64_t a = mem.mmap(2 * kPageSize, prot_read | prot_write, "a");
  const std::uint64_t b = mem.mmap(2 * kPageSize, prot_read | prot_write, "b");
  mem.munmap(a);
  EXPECT_EQ(mem.find_area(a), nullptr);
  EXPECT_NE(mem.find_area(b), nullptr);
  EXPECT_EQ(mem.dirty_pages(), 2u);  // only b's pages remain
  EXPECT_EQ(mem.total_pages(), 2u);
}

TEST(AddressSpaceTest, MapFixedRestoresExactLayoutWithoutDirtying) {
  AddressSpace src;
  const std::uint64_t start = src.mmap(4 * kPageSize, prot_read | prot_write, "x");
  AddressSpace dst;
  dst.map_fixed(*src.find_area(start));
  const VmArea* area = dst.find_area(start);
  ASSERT_NE(area, nullptr);
  EXPECT_EQ(area->length, 4 * kPageSize);
  EXPECT_EQ(dst.dirty_pages(), 0u);  // restored pages arrive clean
  // Subsequent mmap must not collide with the restored area.
  const std::uint64_t next = dst.mmap(kPageSize, prot_read | prot_write, "y");
  EXPECT_GE(next, start + 4 * kPageSize);
}

TEST(AddressSpaceTest, MprotectChangesBits) {
  AddressSpace mem;
  const std::uint64_t a = mem.mmap(kPageSize, prot_read | prot_write, "a");
  mem.mprotect(a, prot_read);
  EXPECT_EQ(mem.find_area(a)->prot, static_cast<std::uint32_t>(prot_read));
}

TEST(FileTableTest, OpenCloseAndLowestFdReuse) {
  FileTable files;
  const Fd f1 = files.open_file("/a");
  const Fd f2 = files.open_file("/b");
  const Fd f3 = files.open_file("/c");
  EXPECT_EQ(f2, f1 + 1);
  files.close(f2);
  EXPECT_EQ(files.open_file("/d"), f2);  // POSIX lowest-free-fd
  EXPECT_TRUE(files.has(f3));
  EXPECT_EQ(files.get(f1).path, "/a");
}

TEST(FileTableTest, SeekUpdatesOffset) {
  FileTable files;
  const Fd fd = files.open_file("/log");
  files.seek(fd, 4096);
  EXPECT_EQ(files.get(fd).offset, 4096u);
}

TEST(FileTableTest, RestorePathPreservesFds) {
  FileTable files;
  files.open_file_at(7, "/var/x", 100, 2);
  EXPECT_EQ(files.get(7).offset, 100u);
  const Fd fd = files.open_file("/y");
  EXPECT_NE(fd, 7);
}

TEST(CpuMeterTest, WindowedUtilization) {
  sim::Engine engine;
  CpuMeter meter(engine, 2.0);  // dual core
  meter.start();
  const Pid p{42};
  // 1.0 core-seconds of work during the first 1 s window on a 2-core node.
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime::milliseconds(100 * i),
                       [&] { meter.account(p, SimTime::milliseconds(100)); });
  }
  engine.run_until(SimTime::milliseconds(1100));
  EXPECT_NEAR(meter.node_utilization(), 0.5, 1e-9);
  EXPECT_NEAR(meter.process_cores(p), 1.0, 1e-9);
}

TEST(CpuMeterTest, DemandCanExceedCapacityButUtilizationCaps) {
  sim::Engine engine;
  CpuMeter meter(engine, 2.0);
  meter.start();
  engine.schedule_at(SimTime::milliseconds(10),
                     [&] { meter.account(Pid{1}, SimTime::milliseconds(3000)); });
  engine.run_until(SimTime::milliseconds(1100));
  EXPECT_NEAR(meter.node_demand(), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(meter.node_utilization(), 1.0);
}

TEST(CpuMeterTest, WindowRollsOver) {
  sim::Engine engine;
  CpuMeter meter(engine, 1.0);
  meter.start();
  engine.schedule_at(SimTime::milliseconds(100),
                     [&] { meter.account(Pid{1}, SimTime::milliseconds(500)); });
  engine.run_until(SimTime::milliseconds(1100));
  EXPECT_NEAR(meter.node_utilization(), 0.5, 1e-9);
  engine.run_until(SimTime::milliseconds(2100));  // idle second window
  EXPECT_NEAR(meter.node_utilization(), 0.0, 1e-9);
}

struct NodeFixture : ::testing::Test {
  sim::Engine engine;
  NodeConfig config{NodeId{1},
                    "n1",
                    net::Ipv4Addr::octets(203, 0, 113, 10),
                    net::Ipv4Addr::octets(192, 168, 1, 10),
                    2.0,
                    SimTime::seconds(100)};
  Node node{engine, config};
};

TEST_F(NodeFixture, SpawnFindKill) {
  auto proc = node.spawn("zoned");
  EXPECT_EQ(node.find(proc->pid()), proc);
  EXPECT_EQ(node.processes().size(), 1u);
  node.kill(proc->pid());
  EXPECT_EQ(node.find(proc->pid()), nullptr);
}

TEST_F(NodeFixture, PidsAreClusterUnique) {
  auto p1 = node.spawn("a");
  auto p2 = node.spawn("b");
  EXPECT_NE(p1->pid(), p2->pid());
}

TEST_F(NodeFixture, ProcessStartsWithMainThreadAndHandlers) {
  auto proc = node.spawn("a");
  EXPECT_EQ(proc->threads().size(), 1u);
  EXPECT_TRUE(proc->signal_handlers().contains(10));  // BLCR's SIGUSR1 slot
  auto& t = proc->add_thread();
  EXPECT_EQ(t.tid, 2u);
  EXPECT_EQ(proc->threads().size(), 2u);
}

TEST_F(NodeFixture, FreezeAndResumeToggleAndDriveApp) {
  struct TestApp : AppLogic {
    int starts = 0, stops = 0;
    std::string kind() const override { return "test"; }
    void serialize(BinaryWriter&) const override {}
    void start(Process&) override { ++starts; }
    void stop() override { ++stops; }
  };
  auto proc = node.spawn("a");
  auto app = std::make_shared<TestApp>();
  proc->set_app(app);
  EXPECT_FALSE(proc->frozen());
  proc->freeze();
  EXPECT_TRUE(proc->frozen());
  EXPECT_EQ(app->stops, 1);
  proc->resume();
  EXPECT_FALSE(proc->frozen());
  EXPECT_EQ(app->starts, 1);
}

TEST_F(NodeFixture, AccountCpuReachesNodeMeter) {
  auto proc = node.spawn("a");
  engine.schedule_at(SimTime::milliseconds(10),
                     [&] { proc->account_cpu(SimTime::milliseconds(200)); });
  engine.run_until(SimTime::milliseconds(1100));
  EXPECT_NEAR(node.cpu().process_cores(proc->pid()), 0.2, 1e-9);
}

TEST(AppRegistryTest, RegisterAndCreate) {
  struct BlobApp : AppLogic {
    int value = 0;
    std::string kind() const override { return "blob"; }
    void serialize(BinaryWriter& w) const override { w.i32(value); }
    void start(Process&) override {}
    void stop() override {}
  };
  AppLogic::register_kind("blob", [](BinaryReader& r) {
    auto app = std::make_shared<BlobApp>();
    app->value = r.i32();
    return app;
  });
  EXPECT_TRUE(AppLogic::is_registered("blob"));
  EXPECT_FALSE(AppLogic::is_registered("no_such"));

  BlobApp original;
  original.value = 77;
  BinaryWriter w;
  original.serialize(w);
  BinaryReader r(w.buffer());
  auto restored = AppLogic::create("blob", r);
  EXPECT_EQ(static_cast<BlobApp&>(*restored).value, 77);
}

}  // namespace
}  // namespace dvemig::proc
