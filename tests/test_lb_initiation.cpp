// Receiver-initiated and symmetric transfer-policy variants (the taxonomy of
// the paper's reference [17]; the paper itself uses sender-initiated).
#include <gtest/gtest.h>

#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"

namespace dvemig::lb {
namespace {

TEST(InitiationPolicyTest, ShouldSolicitWhenUnderloaded) {
  PolicyConfig cfg;
  EXPECT_TRUE(should_solicit(0.30, 0.60, cfg));
  EXPECT_FALSE(should_solicit(0.55, 0.60, cfg));
  EXPECT_FALSE(should_solicit(0.80, 0.60, cfg));
}

TEST(InitiationPolicyTest, SolicitTargetIsMostLoadedAboveAverage) {
  const std::vector<PeerView> peers{
      {net::Ipv4Addr::octets(1, 0, 0, 1), 0.72},
      {net::Ipv4Addr::octets(1, 0, 0, 2), 0.95},
      {net::Ipv4Addr::octets(1, 0, 0, 3), 0.41},
  };
  const auto target = choose_solicit_target(0.6, peers);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, net::Ipv4Addr::octets(1, 0, 0, 2));

  // Nobody above the average: nothing to solicit from.
  EXPECT_FALSE(choose_solicit_target(0.99, peers).has_value());
}

struct InitiationFixture : ::testing::Test {
  std::unique_ptr<dve::Testbed> make_bed(Initiation initiation) {
    dve::TestbedConfig cfg;
    cfg.dve_nodes = 2;
    cfg.policy.initiation = initiation;
    cfg.policy.calm_down = SimTime::seconds(2);
    // Keep the hot node under the hard overload threshold so only the chosen
    // initiation style can trigger anything.
    cfg.policy.overload_threshold = 2.0;
    cfg.policy.imbalance_threshold = 0.10;
    auto bed = std::make_unique<dve::Testbed>(cfg);
    // 1.2 cores of demand on node 1 (60 %); node 2 idle -> avg 30 %, gap 30 %.
    for (int i = 0; i < 4; ++i) {
      dve::ZoneServerConfig zs;
      zs.zone = static_cast<dve::ZoneId>(i);
      zs.use_db = false;
      zs.base_cores = 0.3;
      zs.heap_bytes = 1 << 20;
      dve::ZoneServerApp::launch(bed->node(0).node, zs);
    }
    for (std::size_t i = 0; i < 2; ++i) bed->node(i).conductor.set_enabled(true);
    return bed;
  }
};

TEST_F(InitiationFixture, ReceiverInitiatedPullsWork) {
  auto bed = make_bed(Initiation::receiver);
  bed->run_for(SimTime::seconds(30));
  // The idle node solicited, the loaded node answered with offers.
  EXPECT_GT(bed->node(1).conductor.solicits_sent(), 0u);
  EXPECT_GT(bed->node(0).conductor.migrations_initiated(), 0u);
  EXPECT_GE(bed->node(1).node.processes().size(), 1u);
  EXPECT_NEAR(bed->node(0).node.cpu().node_utilization(),
              bed->node(1).node.cpu().node_utilization(), 0.2);
}

TEST_F(InitiationFixture, SenderModeNeverSolicits) {
  auto bed = make_bed(Initiation::sender);
  bed->run_for(SimTime::seconds(20));
  EXPECT_EQ(bed->node(0).conductor.solicits_sent(), 0u);
  EXPECT_EQ(bed->node(1).conductor.solicits_sent(), 0u);
  // Sender-initiated still balances (imbalance threshold exceeded).
  EXPECT_GE(bed->node(1).node.processes().size(), 1u);
}

TEST_F(InitiationFixture, SymmetricConvergesAtLeastAsFast) {
  auto bed = make_bed(Initiation::symmetric);
  bed->run_for(SimTime::seconds(30));
  EXPECT_EQ(bed->node(0).node.processes().size(), 2u);
  EXPECT_EQ(bed->node(1).node.processes().size(), 2u);
}

TEST_F(InitiationFixture, LoadedNodeIgnoresSolicitsWhenNotHeavy) {
  // Balanced cluster in receiver mode: solicits may be sent by neither side
  // (nobody is under the average by the threshold), so nothing migrates.
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  cfg.policy.initiation = Initiation::receiver;
  dve::Testbed bed(cfg);
  for (std::size_t n = 0; n < 2; ++n) {
    dve::ZoneServerConfig zs;
    zs.zone = static_cast<dve::ZoneId>(n);
    zs.use_db = false;
    zs.base_cores = 0.6;
    zs.heap_bytes = 1 << 20;
    dve::ZoneServerApp::launch(bed.node(n).node, zs);
    bed.node(n).conductor.set_enabled(true);
  }
  bed.run_for(SimTime::seconds(15));
  EXPECT_EQ(bed.node(0).node.processes().size(), 1u);
  EXPECT_EQ(bed.node(1).node.processes().size(), 1u);
}

}  // namespace
}  // namespace dvemig::lb
