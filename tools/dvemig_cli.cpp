// dvemig — command-line scenario runner for the library.
//
//   dvemig migrate   [--clients N] [--strategy S] [--heap MiB] [--cold]
//                    [--trace] [--no-ts-adjust] [--no-dst-fix]
//   dvemig dve       [--clients N] [--seconds S] [--lb on|off]
//                    [--initiation sender|receiver|symmetric]
//   dvemig openarena [--clients N] [--seconds S]
//   dvemig help
//
// Every scenario is deterministic: the same flags reproduce the same output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dve/game_server.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/stack/tracer.hpp"

using namespace dvemig;

namespace {

struct Args {
  std::map<std::string, std::string> values;
  bool has(const std::string& key) const { return values.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  long num(const std::string& key, long fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
};

Args parse(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    // Flags may be bare (--trace) or valued (--clients 24).
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.values[key] = argv[++i];
    } else {
      args.values[key] = "1";
    }
  }
  return args;
}

mig::SocketMigStrategy parse_strategy(const std::string& name) {
  if (name == "iterative") return mig::SocketMigStrategy::iterative;
  if (name == "collective") return mig::SocketMigStrategy::collective;
  if (name == "incremental" || name == "incremental-collective") {
    return mig::SocketMigStrategy::incremental_collective;
  }
  std::fprintf(stderr, "unknown strategy: %s\n", name.c_str());
  std::exit(2);
}

lb::Initiation parse_initiation(const std::string& name) {
  if (name == "sender") return lb::Initiation::sender;
  if (name == "receiver") return lb::Initiation::receiver;
  if (name == "symmetric") return lb::Initiation::symmetric;
  std::fprintf(stderr, "unknown initiation mode: %s\n", name.c_str());
  std::exit(2);
}

int cmd_migrate(const Args& args) {
  const long nclients = args.num("clients", 24);
  const auto strategy = parse_strategy(args.get("strategy", "incremental"));
  const bool live = !args.has("cold");

  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  if (args.has("no-ts-adjust")) bed.node(1).migd.set_adjust_timestamps(false);
  if (args.has("no-dst-fix")) bed.db_transd().set_fix_dst_cache(false);

  dve::ZoneServerConfig zs;
  zs.zone = 1;
  zs.active_updates = true;
  zs.heap_bytes = static_cast<std::uint64_t>(args.num("heap", 12)) << 20;
  zs.db_addr = bed.db_node()->local_addr();
  zs.per_client_cores = 0.0002;
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);

  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (long i = 0; i < nclients; ++i) {
    auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                 bed.public_ip());
    c->set_active(SimTime::milliseconds(50), 48);
    c->connect_to_zone(zs.zone);
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(2));

  std::unique_ptr<stack::PacketTracer> tracer;
  if (args.has("trace")) {
    tracer = std::make_unique<stack::PacketTracer>(bed.node(1).node.stack(), 4000);
    tracer->set_filter([&](const net::Packet& p) {
      return p.dport() == dve::zone_port(zs.zone) ||
             p.sport() == dve::zone_port(zs.zone);
    });
  }

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::MigrateOptions{strategy, live},
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(8));
  if (!done || !stats.success) {
    std::printf("migration FAILED\n");
    return 1;
  }

  std::printf("migrated %s (%ld clients, %s, %s)\n", stats.proc_name.c_str(),
              nclients, mig::strategy_name(strategy),
              live ? "live precopy" : "stop-and-copy");
  std::printf("  precopy rounds      : %d (%.1f MB on the wire)\n",
              stats.precopy_rounds,
              static_cast<double>(stats.precopy_channel_bytes) / (1 << 20));
  std::printf("  freeze time         : %.2f ms\n", stats.freeze_time().to_ms());
  std::printf("  freeze socket bytes : %llu\n",
              static_cast<unsigned long long>(stats.freeze_socket_bytes));
  std::printf("  captured/reinjected : %llu/%llu\n",
              static_cast<unsigned long long>(stats.captured),
              static_cast<unsigned long long>(stats.reinjected));

  std::uint64_t resets = 0;
  for (const auto& c : clients) resets += c->resets_seen();
  std::printf("  client resets       : %llu\n",
              static_cast<unsigned long long>(resets));

  bed.run_for(SimTime::seconds(2));
  std::uint64_t recent = 0;
  for (const auto& c : clients) recent += c->updates_received();
  std::printf("  post-move updates   : %llu delivered in total\n",
              static_cast<unsigned long long>(recent));

  if (tracer) {
    std::printf("\n--- packet trace at the destination (last 30) ---\n");
    const auto& recs = tracer->records();
    const std::size_t from = recs.size() > 30 ? recs.size() - 30 : 0;
    for (std::size_t i = from; i < recs.size(); ++i) {
      std::printf("%s\n", stack::PacketTracer::format(recs[i]).c_str());
    }
  }
  return 0;
}

int cmd_dve(const Args& args) {
  const long nclients = args.num("clients", 2000);
  const long seconds = args.num("seconds", 300);
  const bool lb_on = args.get("lb", "on") == "on";

  dve::TestbedConfig cfg;
  cfg.dve_nodes = 5;
  cfg.policy.initiation = parse_initiation(args.get("initiation", "sender"));
  dve::Testbed bed(cfg);
  dve::ZoneGrid grid;
  for (std::uint32_t n = 0; n < 5; ++n) {
    for (const dve::ZoneId z : grid.zones_of_node(n, 5)) {
      dve::ZoneServerConfig zs;
      zs.zone = z;
      zs.base_cores = 0.010;
      zs.per_client_cores = 0.0007 * 10000 / static_cast<double>(nclients);
      zs.db_addr = bed.db_node()->local_addr();
      dve::ZoneServerApp::launch(bed.node(n).node, zs);
    }
  }
  dve::PopulationConfig pc;
  pc.client_count = static_cast<std::uint32_t>(nclients);
  pc.move_start = SimTime::seconds(seconds / 15);
  pc.move_end = SimTime::seconds(seconds * 4 / 5);
  pc.move_step_prob = 0.08;
  dve::Population pop(bed, grid, pc);
  pop.populate();
  pop.start_movement();

  int migrations = 0;
  for (std::uint32_t n = 0; n < 5; ++n) {
    bed.node(n).conductor.set_enabled(lb_on);
    bed.node(n).conductor.set_on_migration([&](const mig::MigrationStats& s) {
      ++migrations;
      std::printf("  >> t=%.0fs migrated %s %s -> %s (freeze %.2f ms)\n",
                  s.t_resume.to_sec(), s.proc_name.c_str(),
                  s.src_node.to_string().c_str(), s.dst_node.to_string().c_str(),
                  s.freeze_time().to_ms());
    });
  }

  std::printf("%-8s %8s %8s %8s %8s %8s   (CPU %%, LB %s)\n", "time", "node1",
              "node2", "node3", "node4", "node5", lb_on ? "on" : "off");
  const long step = std::max(10L, seconds / 15);
  for (long t = step; t <= seconds; t += step) {
    bed.run_until(SimTime::seconds(t));
    std::printf("%6lds  %8.1f %8.1f %8.1f %8.1f %8.1f\n", t,
                bed.node(0).node.cpu().node_utilization() * 100,
                bed.node(1).node.cpu().node_utilization() * 100,
                bed.node(2).node.cpu().node_utilization() * 100,
                bed.node(3).node.cpu().node_utilization() * 100,
                bed.node(4).node.cpu().node_utilization() * 100);
  }
  std::printf("migrations: %d, zone handoffs: %llu, client resets: %llu\n",
              migrations, static_cast<unsigned long long>(pop.zone_handoffs()),
              static_cast<unsigned long long>(pop.total_resets()));
  return pop.total_resets() == 0 ? 0 : 1;
}

int cmd_openarena(const Args& args) {
  const long nclients = args.num("clients", 24);
  const long seconds = args.num("seconds", 6);

  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);
  dve::GameServerConfig gs;
  auto proc = dve::GameServerApp::launch(bed.node(0).node, gs);
  std::vector<std::unique_ptr<dve::UdpGameClient>> clients;
  for (long i = 0; i < nclients; ++i) {
    auto c = std::make_unique<dve::UdpGameClient>(
        bed.make_client_host(), net::Endpoint{bed.public_ip(), gs.port});
    c->start();
    clients.push_back(std::move(c));
  }
  bed.run_for(SimTime::seconds(seconds / 2));

  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(proc->pid(), bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(seconds - seconds / 2));
  if (!done || !stats.success) {
    std::printf("migration FAILED\n");
    return 1;
  }
  std::size_t lost = 0;
  for (const auto& c : clients) lost += c->missing_snapshots();
  std::printf("OpenArena, %ld players: downtime %.2f ms, captured %llu, lost %zu\n",
              nclients, stats.freeze_time().to_ms(),
              static_cast<unsigned long long>(stats.captured), lost);
  return lost == 0 ? 0 : 1;
}

int cmd_help() {
  std::printf(
      "dvemig — OS-level process live migration for DVE clusters (simulated)\n\n"
      "  dvemig migrate   [--clients N] [--strategy iterative|collective|incremental]\n"
      "                   [--heap MiB] [--cold] [--trace] [--no-ts-adjust] [--no-dst-fix]\n"
      "  dvemig dve       [--clients N] [--seconds S] [--lb on|off]\n"
      "                   [--initiation sender|receiver|symmetric]\n"
      "  dvemig openarena [--clients N] [--seconds S]\n"
      "  dvemig help\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return cmd_help();
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "migrate") return cmd_migrate(args);
  if (cmd == "dve") return cmd_dve(args);
  if (cmd == "openarena") return cmd_openarena(args);
  return cmd_help();
}
