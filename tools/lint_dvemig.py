#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules
-----
naked-abort
    ``std::abort``/C ``abort()``/C ``assert()`` are forbidden outside
    ``src/common/assert.hpp``: contract failures must go through the DVEMIG_*
    macros so they print a diagnostic and stay enabled in every build type.
    (``sock->abort()``/``sock.abort()`` — the TCP RST path — and
    ``static_assert`` are not matches.)

reader-unchecked-length
    A length read off the wire (``BinaryReader::u32()``/``u64()``) must not be
    fed to an allocation (``reserve``/``resize``/``Buffer(n)``) without a
    bounds check between the read and the use. BinaryReader's own accessors
    bounds-check every *read*, but an attacker-controlled length used as an
    allocation size bypasses that. A check is any later mention of the variable
    in a DVEMIG_EXPECTS/DVEMIG_ASSERT, a comparison against a cap constant
    (``kMax*``), or ``std::min``.

hash-pairing
    Any module (``src/<dir>``) that inserts into the kernel-mirroring socket
    hashtables must also contain the matching remove (``ehash_insert``/
    ``ehash_remove``, ``bhash_insert``/``bhash_remove``). Section V-C's
    unhash/rehash discipline is a pairing discipline: an insert-only module is
    how dangling table entries are born. The rule is per module, not per file —
    e.g. socket restore inserts in socket_image.cpp while the matching unhash
    lives in migd.cpp, both in src/mig. The tables' own implementation and
    tests (which corrupt tables on purpose) are exempt.

phase-span
    In ``src/mig/``, every write to a migration phase enum (``phase_ =
    Phase::...``) must sit within 3 lines of a span operation (``OBS_SPAN``, a
    ``Tracer::begin``/``end`` via ``tracer()``, or a stored ``span*`` handle).
    The phase enum and the span tree are two views of the same state machine;
    a phase transition without the matching trace span silently disappears
    from the Chrome-trace/Perfetto timeline the benches and CI archive.
    The assignment is matched across line breaks (``phase_ =`` on one line,
    ``Phase::...`` on the next is still a transition).

no-linear-filter-scan
    Range-for loops over the capture-spec / translation-rule containers
    (``rules_``, ``specs_``, ``.specs``/``->specs`` members) are forbidden
    outside the two index implementations (src/mig/capture.cpp,
    src/mig/translation.cpp). Per-packet matching is O(1) through the tuple
    hash indexes of DESIGN.md §12; a new linear scan over those containers
    quietly reintroduces the O(n·m) hot path the index removed. Loops over
    plain locals (e.g. a deserialized ``specs`` vector) or calls such as
    ``specs_for(...)`` are not matches — the rule anchors on member-style
    container names.

serializer-symmetry
    Every serialize/deserialize pair (``serialize*``/``deserialize*`` methods,
    ``write_X``/``read_X`` free helpers) defined in the same file must put and
    get the *same sequence of wire fields*. The bodies are tokenized into
    their BinaryWriter/BinaryReader operations — ``w.u32`` must line up with
    ``r.u32``, ``w.blob`` with ``r.blob``, raw ``bytes``/``write_struct_pad``
    with ``r.skip``, ``write_endpoint`` with ``read_endpoint``, and nested
    ``serialize_X(w)`` calls with ``deserialize_X(r)`` — and any divergence is
    a wire-format bug: the reader consumes garbage from that field onward.
    This is how the checkpoint images (src/ckpt/image.cpp), socket images
    (src/mig/socket_image.cpp) and protocol payloads stay decodable; a field
    added to one side only corrupts every migration silently.

design-inventory
    Every ``src/`` subdirectory that contains sources must be named in
    DESIGN.md's §3 module inventory (``src/<dir>/``). The inventory is the
    map newcomers navigate by; a subsystem that ships without a §3 line is
    invisible to them. Judged against the tree, so the rule fires the moment
    a new ``src/<dir>`` lands without its documentation.

readme-bench-targets
    Every ``./build/bench/<name>`` command in README.md must name a real
    target in bench/CMakeLists.txt. The "Reproducing the figures" walkthrough
    is only worth trusting if each command it prints actually builds; a
    renamed or deleted bench must take its README line with it.

The two doc rules are repo-level: they read DESIGN.md / README.md /
bench/CMakeLists.txt relative to --root and are skipped when those files do
not exist (so file-scoped scratch runs stay quiet).

Exit status is nonzero if any violation is found. Usage:
    tools/lint_dvemig.py [--root REPO_ROOT] [file ...]
With no files, lints every .cpp/.hpp under src/.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

ABORT_ALLOWED = {"src/common/assert.hpp"}
PAIRING_EXEMPT_MODULES = {"src/stack"}  # the tables' own implementation

# `abort(`/`assert(` not preceded by an identifier char, `.`, `->`, `::`, or
# `_`. (`::` excludes member definitions like `TcpSocket::abort()`; bare
# `std::abort` still matches because the regex anchors on the `s` of `std`.)
RE_NAKED_ABORT = re.compile(r"(?<![\w.>:])(?:std::\s*)?abort\s*\(")
RE_NAKED_ASSERT = re.compile(r"(?<![\w.>:])assert\s*\(")
# Declarations such as `void abort();` are the RST-path member, not a call.
RE_ABORT_DECL = re.compile(r"\bvoid\s+(?:\w+::)*abort\s*\(")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

RE_LEN_READ = re.compile(
    r"(?:auto|const auto|std::uint32_t|std::uint64_t|const std::uint32_t|"
    r"const std::uint64_t|uint32_t|uint64_t)\s+(\w+)\s*=\s*\w+(?:\.|->)u(?:32|64)\(\)"
)
RE_PAIRS = [("ehash_insert", "ehash_remove"), ("bhash_insert", "bhash_remove")]

# Searched over the whole file text (not per line): the assignment regularly
# wraps, e.g. `phase_ =\n    Phase::freeze;`, and a per-line scan silently
# missed those transitions.
RE_PHASE_WRITE = re.compile(r"\bphase_?\s*=\s*(?:\w+::)*Phase::\w+")
RE_SPAN_OP = re.compile(r"OBS_SPAN|[Ss]pan|tracer\s*\(\)|obs::")

# no-linear-filter-scan: a range-for whose range names a filter container in
# member style. Bare locals (`: specs)`) intentionally do not match.
RE_LINEAR_FILTER_SCAN = re.compile(
    r"\bfor\s*\([^;)]*:\s*[^)]*(?:\brules_\b|\bspecs_\b|(?:\.|->)specs\b)"
)
LINEAR_SCAN_ALLOWED = {"src/mig/capture.cpp", "src/mig/translation.cpp"}

# serializer-symmetry: function definitions taking a BinaryWriter&/BinaryReader&
# whose name marks them as one half of a wire-format pair.
RE_SERIAL_FN = re.compile(
    r"\b((?:\w+::)*)(serialize\w*|deserialize\w*|write_\w+|read_\w+)"
    r"\s*\(\s*Binary(Writer|Reader)\s*&\s*(\w+)"
)
SERIAL_PRIMS = "u8|u16|u32|u64|i32|i64|f64|str|blob|bytes|skip"

# How far (in lines) an allocation may sit from the length read it consumes.
SCAN_WINDOW = 40
# How far (in lines) a span operation may sit from the phase write it mirrors.
PHASE_SPAN_WINDOW = 3


def strip_noise(line: str) -> str:
    """Remove string literals and line comments so they can't fake matches."""
    return RE_LINE_COMMENT.sub("", RE_STRING.sub('""', line))


def module_of(rel: str) -> str:
    """src/mig/migd.cpp -> src/mig; anything else -> its parent directory."""
    parts = rel.split("/")
    return "/".join(parts[:2]) if len(parts) > 2 else parts[0]


def extract_body(text: str, open_brace: int) -> str:
    """Return the brace-balanced body starting at text[open_brace] == '{'."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1 : i]
    return text[open_brace + 1 :]  # unbalanced (truncated file): best effort


def normalize_serial_name(name: str) -> str:
    """deserialize_static -> serialize_static, read_endpoint -> write_endpoint."""
    if name.startswith("deserialize"):
        return "serialize" + name[len("deserialize") :]
    if name.startswith("read_"):
        return "write_" + name[len("read_") :]
    return name


def wire_tokens(body: str, var: str) -> list[tuple[str, int]]:
    """The ordered wire operations a serializer body performs through `var`.

    Returns (token, offset) pairs. Tokens are normalized so a writer and its
    reader produce identical streams when the formats agree:
      w.u32(..)            <-> r.u32()             -> 'u32' (etc. for prims)
      w.bytes(..) / pads   <-> r.skip(..)          -> 'raw'
      write_endpoint(w,..) <-> read_endpoint(r)    -> 'endpoint'
      x.serialize_foo(w)   <-> x.deserialize_foo(r)-> 'call:serialize_foo'
    """
    v = re.escape(var)
    rx = re.compile(
        rf"\b{v}\s*\.\s*(?P<prim>{SERIAL_PRIMS})\s*\("
        rf"|\b(?:write|read)_(?P<helper>\w+)\s*\(\s*{v}\b"
        rf"|\b(?P<call>(?:de)?serialize\w*)\s*\(\s*{v}\b"
    )
    tokens: list[tuple[str, int]] = []
    for m in rx.finditer(body):
        if m.group("prim"):
            t = m.group("prim")
            tokens.append(("raw" if t in ("bytes", "skip") else t, m.start()))
        elif m.group("helper"):
            h = m.group("helper")
            tokens.append(("raw" if h == "struct_pad" else h, m.start()))
        else:
            tokens.append(
                ("call:" + normalize_serial_name(m.group("call")), m.start())
            )
    return tokens


def lint_file(
    path: pathlib.Path,
    rel: str,
    problems: list[str],
    hash_calls: dict[str, dict[str, str]],
) -> None:
    try:
        raw_lines = path.read_text().splitlines()
    except (OSError, UnicodeDecodeError) as exc:
        problems.append(f"{rel}:0: [io] cannot read file: {exc}")
        return
    lines = [strip_noise(l) for l in raw_lines]
    text = "\n".join(lines)

    # --- naked-abort ---
    if rel not in ABORT_ALLOWED:
        for i, line in enumerate(lines, 1):
            if RE_NAKED_ABORT.search(line) and not RE_ABORT_DECL.search(line):
                problems.append(
                    f"{rel}:{i}: [naked-abort] raw abort() — use the DVEMIG_* "
                    "contract macros from src/common/assert.hpp"
                )
            if RE_NAKED_ASSERT.search(line):
                problems.append(
                    f"{rel}:{i}: [naked-abort] C assert() — use DVEMIG_ASSERT "
                    "(stays enabled in release builds)"
                )

    # --- reader-unchecked-length ---
    for i, line in enumerate(lines, 1):
        m = RE_LEN_READ.search(line)
        if not m:
            continue
        var = m.group(1)
        window = lines[i : i + SCAN_WINDOW]
        alloc = re.compile(
            r"(?:reserve|resize)\s*\(\s*" + re.escape(var) + r"\b"
            r"|Buffer\s+\w+\s*\(\s*" + re.escape(var) + r"\b"
        )
        guard = re.compile(
            r"(?:DVEMIG_EXPECTS|DVEMIG_ASSERT|DVEMIG_ENSURES|std::min|kMax\w*)"
            r"[^;]*\b" + re.escape(var) + r"\b"
            r"|\b" + re.escape(var) + r"\b\s*(?:<=?|>=?)\s*"
        )
        guarded = bool(guard.search(line))
        for w in window:
            if guard.search(w):
                guarded = True
            if alloc.search(w):
                if not guarded:
                    problems.append(
                        f"{rel}:{i}: [reader-unchecked-length] wire length "
                        f"'{var}' used as an allocation size without a bounds "
                        "check (DVEMIG_EXPECTS / cap comparison) first"
                    )
                break

    # Offset of each line's first character in `text`, for mapping whole-text
    # regex matches back to 1-based line numbers.
    line_starts = [0]
    for l in lines:
        line_starts.append(line_starts[-1] + len(l) + 1)

    def line_of(offset: int) -> int:
        lo, hi = 0, len(lines) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    # --- phase-span --- (matched on the joined text: the assignment can wrap)
    if rel.startswith("src/mig/"):
        for m in RE_PHASE_WRITE.finditer(text):
            i = line_of(m.start())
            lo = max(0, i - 1 - PHASE_SPAN_WINDOW)
            hi = min(len(lines), i + PHASE_SPAN_WINDOW)
            if not any(RE_SPAN_OP.search(l) for l in lines[lo:hi]):
                problems.append(
                    f"{rel}:{i}: [phase-span] phase transition without an "
                    "adjacent span begin/end — keep the trace timeline and "
                    "the phase enum in lockstep (see src/obs/span.hpp)"
                )

    # --- no-linear-filter-scan --- (joined text: the for header can wrap)
    if rel not in LINEAR_SCAN_ALLOWED:
        for m in RE_LINEAR_FILTER_SCAN.finditer(text):
            problems.append(
                f"{rel}:{line_of(m.start())}: [no-linear-filter-scan] "
                "range-for over a packet-filter container — per-packet "
                "matching must go through the tuple-hash indexes "
                "(DESIGN.md §12); scans live only in src/mig/capture.cpp "
                "and src/mig/translation.cpp"
            )

    # --- serializer-symmetry ---
    serial_fns: dict[str, dict[str, tuple[list[tuple[str, int]], int]]] = {}
    for m in RE_SERIAL_FN.finditer(text):
        # Definition, not declaration/call: an opening brace before the next
        # semicolon. (Calls never name the Binary* type, declarations end ';'.)
        brace = text.find("{", m.end())
        semi = text.find(";", m.end())
        if brace == -1 or (semi != -1 and semi < brace):
            continue
        body = extract_body(text, brace)
        side = "writer" if m.group(3) == "Writer" else "reader"
        key = m.group(1) + normalize_serial_name(m.group(2))
        tokens = [(t, off + brace + 1) for t, off in wire_tokens(body, m.group(4))]
        # First definition wins (a name reused across classes in one file is
        # keyed by its qualifier, so collisions mean identical re-definitions).
        serial_fns.setdefault(key, {}).setdefault(
            side, (tokens, brace + 1)
        )
    for key, sides in sorted(serial_fns.items()):
        if "writer" not in sides or "reader" not in sides:
            continue  # the pair may live in another file (or not exist yet)
        wtok, _ = sides["writer"]
        rtok, rbody_off = sides["reader"]
        for i in range(max(len(wtok), len(rtok))):
            put = wtok[i][0] if i < len(wtok) else "<end>"
            get = rtok[i][0] if i < len(rtok) else "<end>"
            if put == get:
                continue
            at = line_of(rtok[i][1] if i < len(rtok) else rbody_off)
            problems.append(
                f"{rel}:{at}: [serializer-symmetry] {key}: wire field #{i} is "
                f"written as '{put}' but read as '{get}' — the decoder "
                "consumes garbage from this field onward"
            )
            break

    # --- hash-pairing (collected per file, judged per module in main) ---
    if not rel.startswith("tests/"):
        for ins, rem in RE_PAIRS:
            for name in (ins, rem):
                if re.search(rf"\b{name}\s*\(", text):
                    hash_calls.setdefault(module_of(rel), {}).setdefault(
                        name, rel
                    )


def lint_docs(root: pathlib.Path, problems: list[str]) -> None:
    """Repo-level documentation rules (design-inventory, readme-bench-targets)."""
    design = root / "DESIGN.md"
    src = root / "src"
    if design.exists() and src.is_dir():
        text = design.read_text()
        heading = re.search(r"^##\s*3\..*$", text, re.MULTILINE)
        if heading is None:
            problems.append(
                "DESIGN.md:0: [design-inventory] no '## 3.' module-inventory "
                "section found"
            )
        else:
            line = text.count("\n", 0, heading.start()) + 1
            end = text.find("\n## ", heading.end())
            section = text[heading.end() : end if end != -1 else len(text)]
            for d in sorted(p for p in src.iterdir() if p.is_dir()):
                if not any(d.glob("*.cpp")) and not any(d.glob("*.hpp")):
                    continue
                if f"src/{d.name}/" not in section:
                    problems.append(
                        f"DESIGN.md:{line}: [design-inventory] src/{d.name}/ "
                        "is absent from the §3 module inventory — every src/ "
                        "subdirectory must be documented there"
                    )
    readme = root / "README.md"
    bench_cmake = root / "bench" / "CMakeLists.txt"
    if readme.exists() and bench_cmake.exists():
        targets = set(
            re.findall(
                r"(?:dvemig_bench|add_executable)\s*\(\s*(\w+)",
                bench_cmake.read_text(),
            )
        )
        for i, rline in enumerate(readme.read_text().splitlines(), 1):
            for m in re.finditer(r"\./build/bench/(\w+)", rline):
                if m.group(1) not in targets:
                    problems.append(
                        f"README.md:{i}: [readme-bench-targets] "
                        f"'./build/bench/{m.group(1)}' names no target in "
                        "bench/CMakeLists.txt — every command in the "
                        "walkthrough must actually build"
                    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("files", nargs="*", help="files to lint (default: src/**)")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    if args.files:
        targets = [pathlib.Path(f).resolve() for f in args.files]
    else:
        targets = sorted(
            p
            for ext in ("*.cpp", "*.hpp")
            for p in (root / "src").rglob(ext)
        )

    problems: list[str] = []
    hash_calls: dict[str, dict[str, str]] = {}
    lint_docs(root, problems)
    count = 0
    for path in targets:
        if path.suffix not in {".cpp", ".hpp"}:
            continue
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        count += 1
        lint_file(path, rel, problems, hash_calls)

    # hash-pairing is a module-level judgment: an insert anywhere in a module
    # must have the matching remove reachable somewhere in the same module.
    for module, calls in sorted(hash_calls.items()):
        if module in PAIRING_EXEMPT_MODULES:
            continue
        for ins, rem in RE_PAIRS:
            if ins in calls and rem not in calls:
                problems.append(
                    f"{calls[ins]}:0: [hash-pairing] module {module} calls "
                    f"{ins}() but never {rem}() — Section V-C's unhash/rehash "
                    "discipline requires the pair to be reachable from the "
                    "same module"
                )

    for p in problems:
        print(p)
    print(
        f"lint_dvemig: {count} files, "
        f"{len(problems)} problem{'s' if len(problems) != 1 else ''}",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
