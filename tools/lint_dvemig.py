#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules
-----
naked-abort
    ``std::abort``/C ``abort()``/C ``assert()`` are forbidden outside
    ``src/common/assert.hpp``: contract failures must go through the DVEMIG_*
    macros so they print a diagnostic and stay enabled in every build type.
    (``sock->abort()``/``sock.abort()`` — the TCP RST path — and
    ``static_assert`` are not matches.)

reader-unchecked-length
    A length read off the wire (``BinaryReader::u32()``/``u64()``) must not be
    fed to an allocation (``reserve``/``resize``/``Buffer(n)``) without a
    bounds check between the read and the use. BinaryReader's own accessors
    bounds-check every *read*, but an attacker-controlled length used as an
    allocation size bypasses that. A check is any later mention of the variable
    in a DVEMIG_EXPECTS/DVEMIG_ASSERT, a comparison against a cap constant
    (``kMax*``), or ``std::min``.

hash-pairing
    Any module (``src/<dir>``) that inserts into the kernel-mirroring socket
    hashtables must also contain the matching remove (``ehash_insert``/
    ``ehash_remove``, ``bhash_insert``/``bhash_remove``). Section V-C's
    unhash/rehash discipline is a pairing discipline: an insert-only module is
    how dangling table entries are born. The rule is per module, not per file —
    e.g. socket restore inserts in socket_image.cpp while the matching unhash
    lives in migd.cpp, both in src/mig. The tables' own implementation and
    tests (which corrupt tables on purpose) are exempt.

phase-span
    In ``src/mig/``, every write to a migration phase enum (``phase_ =
    Phase::...``) must sit within 3 lines of a span operation (``OBS_SPAN``, a
    ``Tracer::begin``/``end`` via ``tracer()``, or a stored ``span*`` handle).
    The phase enum and the span tree are two views of the same state machine;
    a phase transition without the matching trace span silently disappears
    from the Chrome-trace/Perfetto timeline the benches and CI archive.

Exit status is nonzero if any violation is found. Usage:
    tools/lint_dvemig.py [--root REPO_ROOT] [file ...]
With no files, lints every .cpp/.hpp under src/.
"""
from __future__ import annotations

import argparse
import pathlib
import re
import sys

ABORT_ALLOWED = {"src/common/assert.hpp"}
PAIRING_EXEMPT_MODULES = {"src/stack"}  # the tables' own implementation

# `abort(`/`assert(` not preceded by an identifier char, `.`, `->`, `::`, or
# `_`. (`::` excludes member definitions like `TcpSocket::abort()`; bare
# `std::abort` still matches because the regex anchors on the `s` of `std`.)
RE_NAKED_ABORT = re.compile(r"(?<![\w.>:])(?:std::\s*)?abort\s*\(")
RE_NAKED_ASSERT = re.compile(r"(?<![\w.>:])assert\s*\(")
# Declarations such as `void abort();` are the RST-path member, not a call.
RE_ABORT_DECL = re.compile(r"\bvoid\s+(?:\w+::)*abort\s*\(")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

RE_LEN_READ = re.compile(
    r"(?:auto|const auto|std::uint32_t|std::uint64_t|const std::uint32_t|"
    r"const std::uint64_t|uint32_t|uint64_t)\s+(\w+)\s*=\s*\w+(?:\.|->)u(?:32|64)\(\)"
)
RE_PAIRS = [("ehash_insert", "ehash_remove"), ("bhash_insert", "bhash_remove")]

RE_PHASE_WRITE = re.compile(r"\bphase_?\s*=\s*(?:\w+::)*Phase::\w+")
RE_SPAN_OP = re.compile(r"OBS_SPAN|[Ss]pan|tracer\s*\(\)|obs::")

# How far (in lines) an allocation may sit from the length read it consumes.
SCAN_WINDOW = 40
# How far (in lines) a span operation may sit from the phase write it mirrors.
PHASE_SPAN_WINDOW = 3


def strip_noise(line: str) -> str:
    """Remove string literals and line comments so they can't fake matches."""
    return RE_LINE_COMMENT.sub("", RE_STRING.sub('""', line))


def module_of(rel: str) -> str:
    """src/mig/migd.cpp -> src/mig; anything else -> its parent directory."""
    parts = rel.split("/")
    return "/".join(parts[:2]) if len(parts) > 2 else parts[0]


def lint_file(
    path: pathlib.Path,
    rel: str,
    problems: list[str],
    hash_calls: dict[str, dict[str, str]],
) -> None:
    try:
        raw_lines = path.read_text().splitlines()
    except (OSError, UnicodeDecodeError) as exc:
        problems.append(f"{rel}:0: [io] cannot read file: {exc}")
        return
    lines = [strip_noise(l) for l in raw_lines]
    text = "\n".join(lines)

    # --- naked-abort ---
    if rel not in ABORT_ALLOWED:
        for i, line in enumerate(lines, 1):
            if RE_NAKED_ABORT.search(line) and not RE_ABORT_DECL.search(line):
                problems.append(
                    f"{rel}:{i}: [naked-abort] raw abort() — use the DVEMIG_* "
                    "contract macros from src/common/assert.hpp"
                )
            if RE_NAKED_ASSERT.search(line):
                problems.append(
                    f"{rel}:{i}: [naked-abort] C assert() — use DVEMIG_ASSERT "
                    "(stays enabled in release builds)"
                )

    # --- reader-unchecked-length ---
    for i, line in enumerate(lines, 1):
        m = RE_LEN_READ.search(line)
        if not m:
            continue
        var = m.group(1)
        window = lines[i : i + SCAN_WINDOW]
        alloc = re.compile(
            r"(?:reserve|resize)\s*\(\s*" + re.escape(var) + r"\b"
            r"|Buffer\s+\w+\s*\(\s*" + re.escape(var) + r"\b"
        )
        guard = re.compile(
            r"(?:DVEMIG_EXPECTS|DVEMIG_ASSERT|DVEMIG_ENSURES|std::min|kMax\w*)"
            r"[^;]*\b" + re.escape(var) + r"\b"
            r"|\b" + re.escape(var) + r"\b\s*(?:<=?|>=?)\s*"
        )
        guarded = bool(guard.search(line))
        for w in window:
            if guard.search(w):
                guarded = True
            if alloc.search(w):
                if not guarded:
                    problems.append(
                        f"{rel}:{i}: [reader-unchecked-length] wire length "
                        f"'{var}' used as an allocation size without a bounds "
                        "check (DVEMIG_EXPECTS / cap comparison) first"
                    )
                break

    # --- phase-span ---
    if rel.startswith("src/mig/"):
        for i, line in enumerate(lines, 1):
            if not RE_PHASE_WRITE.search(line):
                continue
            lo = max(0, i - 1 - PHASE_SPAN_WINDOW)
            hi = min(len(lines), i + PHASE_SPAN_WINDOW)
            if not any(RE_SPAN_OP.search(l) for l in lines[lo:hi]):
                problems.append(
                    f"{rel}:{i}: [phase-span] phase transition without an "
                    "adjacent span begin/end — keep the trace timeline and "
                    "the phase enum in lockstep (see src/obs/span.hpp)"
                )

    # --- hash-pairing (collected per file, judged per module in main) ---
    if not rel.startswith("tests/"):
        for ins, rem in RE_PAIRS:
            for name in (ins, rem):
                if re.search(rf"\b{name}\s*\(", text):
                    hash_calls.setdefault(module_of(rel), {}).setdefault(
                        name, rel
                    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("files", nargs="*", help="files to lint (default: src/**)")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    if args.files:
        targets = [pathlib.Path(f).resolve() for f in args.files]
    else:
        targets = sorted(
            p
            for ext in ("*.cpp", "*.hpp")
            for p in (root / "src").rglob(ext)
        )

    problems: list[str] = []
    hash_calls: dict[str, dict[str, str]] = {}
    count = 0
    for path in targets:
        if path.suffix not in {".cpp", ".hpp"}:
            continue
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        count += 1
        lint_file(path, rel, problems, hash_calls)

    # hash-pairing is a module-level judgment: an insert anywhere in a module
    # must have the matching remove reachable somewhere in the same module.
    for module, calls in sorted(hash_calls.items()):
        if module in PAIRING_EXEMPT_MODULES:
            continue
        for ins, rem in RE_PAIRS:
            if ins in calls and rem not in calls:
                problems.append(
                    f"{calls[ins]}:0: [hash-pairing] module {module} calls "
                    f"{ins}() but never {rem}() — Section V-C's unhash/rehash "
                    "discipline requires the pair to be reachable from the "
                    "same module"
                )

    for p in problems:
        print(p)
    print(
        f"lint_dvemig: {count} files, "
        f"{len(problems)} problem{'s' if len(problems) != 1 else ''}",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
