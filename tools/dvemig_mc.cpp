// dvemig-mc — deterministic model checker for the migd migration protocol.
//
// Drives the simulator's migration scenarios (src/mc) through exhaustive
// small-scope schedule/fault exploration and judges every terminal state with
// the dvemig-verify invariants plus end-to-end migration properties.
//
//   dvemig-mc --preset handshake                 # DFS until the scope is exhausted
//   dvemig-mc --preset crash --mode random       # seeded random walks
//   dvemig-mc --preset freeze --mutation skip_capture_dedup
//   dvemig-mc --replay repro.mcs                 # re-run a minimized trace
//
// Exit status: 0 = no violation, 1 = violation found, 2 = usage/setup error.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/mc/explorer.hpp"

namespace {

using dvemig::mc::ExploreConfig;
using dvemig::mc::ExploreResult;
using dvemig::mc::RunResult;
using dvemig::mc::Script;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--preset handshake|precopy|freeze|crash]\n"
               "          [--mode dfs|random] [--max-states N] [--max-depth N]\n"
               "          [--seed N] [--runs N] [--mutation NAME]\n"
               "          [--no-stop-on-violation] [--repro-out FILE]\n"
               "       %s --replay FILE\n",
               argv0, argv0);
  return 2;
}

void print_run(const RunResult& r) {
  std::printf("  done=%d success=%d captured=%llu reinjected=%llu faults=%zu "
              "decisions=%zu events=%llu\n",
              r.migration_done ? 1 : 0, r.success ? 1 : 0,
              static_cast<unsigned long long>(r.captured),
              static_cast<unsigned long long>(r.reinjected), r.faults_injected,
              r.trace.size(), static_cast<unsigned long long>(r.events));
  for (const std::string& v : r.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
}

void print_trace(const RunResult& r) {
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const dvemig::mc::Decision& d = r.trace[i];
    if (d.options <= 1) continue;  // forced moves carry no information
    std::printf("  #%-3zu %-24s chose %u of %u  state=%016llx\n", i,
                d.site.c_str(), d.chosen, d.options,
                static_cast<unsigned long long>(d.state));
  }
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dvemig-mc: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const std::optional<Script> script = Script::parse(buf.str(), &error);
  if (!script) {
    std::fprintf(stderr, "dvemig-mc: bad script %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!dvemig::mc::preset_known(script->preset) ||
      !dvemig::mc::mutation_from_name(script->mutation)) {
    std::fprintf(stderr, "dvemig-mc: script %s names an unknown preset or "
                 "mutation\n", path.c_str());
    return 2;
  }
  std::printf("replaying %s (preset %s, %zu prescribed choices)\n",
              path.c_str(), script->preset.c_str(), script->choices.size());
  const RunResult r = dvemig::mc::replay_script(*script);
  print_run(r);
  print_trace(r);
  std::printf(r.clean() ? "replay: clean\n" : "replay: VIOLATION\n");
  return r.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ExploreConfig cfg;
  std::string mode = "dfs";
  std::string mutation = "none";
  std::string repro_out;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    try {
      if (arg == "--preset") {
        if (auto v = value()) cfg.preset = *v; else return usage(argv[0]);
      } else if (arg == "--mode") {
        if (auto v = value()) mode = *v; else return usage(argv[0]);
      } else if (arg == "--max-states") {
        if (auto v = value()) cfg.max_states = std::stoul(*v);
        else return usage(argv[0]);
      } else if (arg == "--max-depth") {
        if (auto v = value()) cfg.max_depth = std::stoul(*v);
        else return usage(argv[0]);
      } else if (arg == "--seed") {
        if (auto v = value()) cfg.seed = std::stoull(*v);
        else return usage(argv[0]);
      } else if (arg == "--runs") {
        if (auto v = value()) cfg.random_runs = std::stoul(*v);
        else return usage(argv[0]);
      } else if (arg == "--mutation") {
        if (auto v = value()) mutation = *v; else return usage(argv[0]);
      } else if (arg == "--no-stop-on-violation") {
        cfg.stop_on_violation = false;
      } else if (arg == "--repro-out") {
        if (auto v = value()) repro_out = *v; else return usage(argv[0]);
      } else if (arg == "--replay") {
        if (auto v = value()) replay_path = *v; else return usage(argv[0]);
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "dvemig-mc: bad number in %s\n", arg.c_str());
      return 2;
    }
  }

  if (!replay_path.empty()) return replay_file(replay_path);

  if (!dvemig::mc::preset_known(cfg.preset)) {
    std::fprintf(stderr, "dvemig-mc: unknown preset '%s'\n",
                 cfg.preset.c_str());
    return 2;
  }
  const auto mut = dvemig::mc::mutation_from_name(mutation);
  if (!mut) {
    std::fprintf(stderr, "dvemig-mc: unknown mutation '%s'\n",
                 mutation.c_str());
    return 2;
  }
  cfg.mutation = *mut;
  if (mode != "dfs" && mode != "random") return usage(argv[0]);

  std::printf("dvemig-mc: preset=%s mode=%s mutation=%s max-states=%zu "
              "max-depth=%zu\n",
              cfg.preset.c_str(), mode.c_str(), mutation.c_str(),
              cfg.max_states, cfg.max_depth);

  dvemig::mc::Explorer explorer(cfg);
  const ExploreResult res =
      mode == "dfs" ? explorer.dfs() : explorer.random_walk();

  std::printf("explored %zu run(s), %zu distinct protocol state(s), "
              "longest trace %zu decision(s)\n",
              res.runs, res.distinct_states, res.max_trace_len);
  std::printf("pruned: %zu by visited-state, %zu by depth bound\n",
              res.pruned_visited, res.pruned_depth);
  if (mode == "dfs") {
    std::printf(res.exhausted
                    ? "scope exhausted: every unpruned interleaving explored\n"
                    : "scope NOT exhausted (hit --max-states or stopped on a "
                      "violation)\n");
  }

  if (!res.has_violation) {
    std::printf("result: no violations\n");
    return 0;
  }

  std::printf("result: %zu violating run(s); first, minimized to %zu "
              "prescribed choice(s):\n",
              res.violating_runs, res.repro.choices.size());
  print_run(res.first_violation);
  print_trace(res.first_violation);
  std::printf("repro script:\n%s", res.repro.to_text().c_str());
  if (!repro_out.empty()) {
    std::ofstream out(repro_out);
    out << res.repro.to_text();
    std::printf("written to %s\n", repro_out.c_str());
  }
  return 1;
}
