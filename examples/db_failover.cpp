// Evacuation / maintenance use-case — the fault-tolerance and power-management
// direction sketched in the paper's future work (Section VIII).
//
// A node must be taken down for maintenance. Every process it hosts — three
// zone servers with clients and live MySQL sessions — is live-migrated away
// one by one; the node ends up empty and can be powered off, while every
// client connection and DB session keeps running elsewhere.
//
//   ./build/examples/db_failover [--log-level=debug] [--trace-out=trace.json]
#include <cstdio>
#include <vector>

#include "src/common/cli.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  dve::Testbed bed(cfg);

  // Three zone servers on the node to be evacuated (node 1).
  std::vector<Pid> pids;
  for (dve::ZoneId z = 1; z <= 3; ++z) {
    dve::ZoneServerConfig zs;
    zs.zone = z;
    zs.active_updates = true;
    zs.db_addr = bed.db_node()->local_addr();
    zs.db_update_period = SimTime::milliseconds(200);
    pids.push_back(dve::ZoneServerApp::launch(bed.node(0).node, zs)->pid());
  }

  // Six clients per zone.
  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (dve::ZoneId z = 1; z <= 3; ++z) {
    for (int i = 0; i < 6; ++i) {
      auto c = std::make_unique<dve::TcpDveClient>(bed.make_client_host(),
                                                   bed.public_ip());
      c->set_active(SimTime::milliseconds(50), 48);
      c->connect_to_zone(z);
      clients.push_back(std::move(c));
    }
  }
  bed.run_for(SimTime::seconds(2));
  std::printf("node1 hosts %zu processes; beginning evacuation\n",
              bed.node(0).node.processes().size());

  // Drain node1: round-robin the processes to nodes 2 and 3.
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const std::size_t target = 1 + i % 2;
    mig::MigrationStats stats;
    bool done = false;
    bed.node(0).migd.migrate(pids[i], bed.node(target).node.local_addr(),
                             mig::SocketMigStrategy::incremental_collective,
                             [&](const mig::MigrationStats& s) {
                               stats = s;
                               done = true;
                             });
    bed.run_for(SimTime::seconds(4));
    if (!done || !stats.success) {
      std::printf("evacuation of pid %u FAILED\n", pids[i].value);
      return 1;
    }
    std::printf("  pid %u -> %s (freeze %.2f ms)\n", pids[i].value,
                bed.node(target).node.name().c_str(), stats.freeze_time().to_ms());
  }

  std::printf("node1 now hosts %zu processes (safe to power off)\n",
              bed.node(0).node.processes().size());

  bed.run_for(SimTime::seconds(3));
  std::uint64_t resets = 0;
  std::uint64_t updates = 0;
  for (const auto& c : clients) {
    resets += c->resets_seen();
    updates += c->updates_received();
  }
  std::printf("clients: %llu updates received, %llu resets; DB sessions alive: %zu\n",
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(resets), bed.db()->active_sessions());
  const bool ok = resets == 0 && bed.node(0).node.processes().empty() &&
                  bed.db()->active_sessions() == 3;
  std::printf("%s\n", ok ? "evacuation completed transparently" : "EVACUATION BROKE CLIENTS");
  return ok ? 0 : 1;
}
