// Quickstart: the smallest end-to-end use of the library.
//
// Build a two-node single-IP cluster with a database server, run a zone server
// with a handful of game clients on node 1, then live-migrate it to node 2 while
// traffic flows. The client connections, the MySQL session and the update stream
// all survive; the process freeze time is printed.
//
//   ./build/examples/quickstart [--log-level=debug] [--trace-out=trace.json]
#include <cstdio>

#include "src/common/cli.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 2;
  dve::Testbed bed(cfg);

  // A zone server on node 1, updating its clients 20 times per second.
  dve::ZoneServerConfig zs;
  zs.zone = 7;
  zs.active_updates = true;
  zs.db_addr = bed.db_node()->local_addr();
  auto proc = dve::ZoneServerApp::launch(bed.node(0).node, zs);
  const Pid pid = proc->pid();

  // Eight clients connect to the zone's port on the shared public IP and chat
  // with the server at 20 Hz.
  std::vector<std::unique_ptr<dve::TcpDveClient>> clients;
  for (int i = 0; i < 8; ++i) {
    auto& host = bed.make_client_host();
    auto client = std::make_unique<dve::TcpDveClient>(host, bed.public_ip());
    client->set_active(SimTime::milliseconds(50), 64);
    client->connect_to_zone(zs.zone);
    clients.push_back(std::move(client));
  }

  bed.run_for(SimTime::seconds(3));
  const auto* app =
      static_cast<const dve::ZoneServerApp*>(proc->app().get());
  std::printf("t=3s   zone server on %s: %zu clients, %llu updates sent, "
              "%llu DB responses\n",
              bed.node(0).node.name().c_str(), app->client_count(),
              static_cast<unsigned long long>(app->updates_sent()),
              static_cast<unsigned long long>(app->db_responses()));

  // Live-migrate the zone server to node 2 (incremental collective sockets).
  mig::MigrationStats stats;
  bool done = false;
  bed.node(0).migd.migrate(pid, bed.node(1).node.local_addr(),
                           mig::SocketMigStrategy::incremental_collective,
                           [&](const mig::MigrationStats& s) {
                             stats = s;
                             done = true;
                           });
  bed.run_for(SimTime::seconds(3));

  if (!done || !stats.success) {
    std::printf("migration FAILED\n");
    return 1;
  }

  auto moved = bed.node(1).node.find(pid);
  const auto* app2 =
      moved ? static_cast<const dve::ZoneServerApp*>(moved->app().get()) : nullptr;
  std::printf("migrated pid %u -> %s in %d precopy rounds\n", pid.value,
              bed.node(1).node.name().c_str(), stats.precopy_rounds);
  std::printf("  process freeze time : %.2f ms\n", stats.freeze_time().to_ms());
  std::printf("  freeze-phase bytes  : %llu (socket state: %llu)\n",
              static_cast<unsigned long long>(stats.freeze_channel_bytes),
              static_cast<unsigned long long>(stats.freeze_socket_bytes));
  std::printf("  captured/reinjected : %llu/%llu packets\n",
              static_cast<unsigned long long>(stats.captured),
              static_cast<unsigned long long>(stats.reinjected));
  if (app2 != nullptr) {
    std::printf("t=6s   zone server on %s: %zu clients, %llu updates sent, "
                "%llu DB responses\n",
                bed.node(1).node.name().c_str(), app2->client_count(),
                static_cast<unsigned long long>(app2->updates_sent()),
                static_cast<unsigned long long>(app2->db_responses()));
  }

  std::uint64_t updates = 0, resets = 0;
  for (const auto& c : clients) {
    updates += c->updates_received();
    resets += c->resets_seen();
  }
  std::printf("clients: %llu updates received, %llu connection resets\n",
              static_cast<unsigned long long>(updates),
              static_cast<unsigned long long>(resets));
  return resets == 0 && app2 != nullptr && app2->client_count() == 8 ? 0 : 1;
}
