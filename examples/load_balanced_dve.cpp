// Load-balanced DVE — a compact version of the Section VI-C/D experiment.
//
// Three nodes, 30 zones (3 rows of the grid per node), 900 clients. Clients
// drift toward the corners; the decentralized conductors notice the imbalance
// and live-migrate zone servers until node loads converge. Prints a per-node
// CPU/process-count timeline and each migration decision as it happens.
//
//   ./build/examples/load_balanced_dve [--log-level=debug] [--trace-out=trace.json]
#include <cstdio>

#include "src/common/cli.hpp"
#include "src/dve/population.hpp"
#include "src/dve/testbed.hpp"
#include "src/dve/zone_server.hpp"
#include "src/obs/runtime.hpp"

using namespace dvemig;

int main(int argc, char** argv) {
  obs::apply_common_flags(parse_common_flags(argc, argv));
  dve::TestbedConfig cfg;
  cfg.dve_nodes = 3;
  cfg.policy.calm_down = SimTime::seconds(5);
  cfg.policy.imbalance_threshold = 0.08;
  dve::Testbed bed(cfg);
  dve::ZoneGrid grid(6, 5);  // 30 zones: rows 0-1 -> node1, 2-3 -> node2, 4-5 -> node3

  for (std::uint32_t n = 0; n < 3; ++n) {
    for (const dve::ZoneId z : grid.zones_of_node(n, 3)) {
      dve::ZoneServerConfig zs;
      zs.zone = z;
      zs.base_cores = 0.015;
      zs.per_client_cores = 0.004;
      zs.db_addr = bed.db_node()->local_addr();
      dve::ZoneServerApp::launch(bed.node(n).node, zs);
    }
  }

  dve::PopulationConfig pc;
  pc.client_count = 900;
  pc.middle_row_min = 2;
  pc.middle_row_max = 3;
  pc.moving_fraction = 0.6;
  pc.move_start = SimTime::seconds(20);
  pc.move_end = SimTime::seconds(160);
  pc.move_step_prob = 0.25;
  pc.corner_region = 2;
  dve::Population pop(bed, grid, pc);
  pop.populate();
  pop.start_movement();

  for (std::uint32_t n = 0; n < 3; ++n) {
    bed.node(n).conductor.set_enabled(true);
    bed.node(n).conductor.set_on_migration([&](const mig::MigrationStats& s) {
      std::printf("    >> migrated %-8s %s -> %s (freeze %.2f ms, %llu sockets)\n",
                  s.proc_name.c_str(), s.src_node.to_string().c_str(),
                  s.dst_node.to_string().c_str(), s.freeze_time().to_ms(),
                  static_cast<unsigned long long>(s.socket_count));
    });
  }

  std::printf("%-8s | %22s | %22s\n", "time", "CPU%% per node", "zone servers per node");
  for (int t = 20; t <= 240; t += 20) {
    bed.run_until(SimTime::seconds(t));
    std::printf("%6ds  |  %5.1f  %5.1f  %5.1f  |  %6zu %6zu %6zu\n", t,
                bed.node(0).node.cpu().node_utilization() * 100,
                bed.node(1).node.cpu().node_utilization() * 100,
                bed.node(2).node.cpu().node_utilization() * 100,
                bed.node(0).node.processes().size(),
                bed.node(1).node.processes().size(),
                bed.node(2).node.processes().size());
  }

  std::printf("client zone handoffs: %llu, connection resets: %llu (must be 0)\n",
              static_cast<unsigned long long>(pop.zone_handoffs()),
              static_cast<unsigned long long>(pop.total_resets()));
  return pop.total_resets() == 0 ? 0 : 1;
}
